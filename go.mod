module distmwis

go 1.23
