// Lowerbound: a walking tour of the Section 7 reduction.
//
// Theorem 4 says finding an Ω(n/Δ)-size independent set with success
// probability ≥ 1 − 1/log n needs Ω(log* n) rounds. The proof converts any
// fast approximate-MaxIS algorithm A into an MIS algorithm for the cycle —
// contradicting Naor's Ω(log* n) bound — by running A on a cycle of
// cliques C₁ and filling the gaps. This example runs every step of that
// conversion and prints what the proof predicts at each one, then shows
// the plain-cycle failure mode that forces the clique blow-up.
package main

import (
	"fmt"
	"os"

	"distmwis/internal/graph/gen"
	"distmwis/internal/lowerbound"
	"distmwis/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lowerbound: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const n0, n1 = 96, 24
	fmt.Printf("C = cycle on n0=%d nodes;  C1 = cycle of %d cliques of size n1=%d (n=%d, log* n = %d)\n\n",
		n0, n0, n1, n0*n1, stats.LogStar(float64(n0*n1)))

	res, err := lowerbound.RandMIS(n0, n1, lowerbound.RankingAlgorithm(2), 7)
	if err != nil {
		return err
	}
	fmt.Printf("step 1: ranking algorithm on C1 found |I1| = %d in %d rounds\n", res.I1Size, res.SimRounds)
	fmt.Printf("step 2: mapped to C: max gap between consecutive members = %d (Prop. 9: stays O(T))\n", res.MaxGap)
	fmt.Printf("step 3: sequential gap filling cost = %d rounds (largest component of C \\ N+[I])\n", res.FillRounds)
	valid := gen.Cycle(n0).IsMaximalIS(res.MIS)
	fmt.Printf("result: maximal independent set of C valid = %v, total ≈ %d rounds = O(T(n0·n1))\n\n",
		valid, res.SimRounds+res.FillRounds)

	fmt.Println("contrast: the same idea WITHOUT the clique blow-up (truncated whp algorithm on the plain cycle):")
	for _, tr := range []int{3, 6, 9} {
		set, _, err := lowerbound.TruncatedLuby(tr)(gen.Cycle(8192), 7)
		if err != nil {
			return err
		}
		fmt.Printf("  Luby cut off after %d rounds on C_8192: max gap = %d  (≫ T — the failure Prop. 8 fixes)\n",
			tr, lowerbound.MaxGapOnCycle(set))
	}
	fmt.Println("\nthe clique blow-up amplifies per-region success probability, keeping every gap O(T);")
	fmt.Println("that is why a o(log* n)-round approximate-MaxIS algorithm would violate Naor's bound.")
	return nil
}
