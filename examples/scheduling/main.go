// Scheduling: maximum-weight independent set as wireless link scheduling.
//
// The classic application the paper's introduction gestures at: radio
// transmitters scattered in the plane interfere when they are close, so a
// set of transmissions that can run simultaneously is an independent set in
// the unit-disk conflict graph. Weights are per-link utilities; scheduling
// the best compatible set per slot is MaxIS.
//
// The example builds a random unit-disk conflict graph, runs three
// schedulers — the paper's Theorem 2 pipeline, the prior Δ-approximation
// baseline of Bar-Yehuda et al. [8], and the one-round expectation-only
// baseline [17] — and compares achieved utility and distributed round cost.
package main

import (
	"fmt"
	"math"
	"math/rand/v2"
	"os"

	"distmwis/internal/exact"
	"distmwis/internal/graph"
	"distmwis/internal/maxis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "scheduling: %v\n", err)
		os.Exit(1)
	}
}

// unitDisk builds the conflict graph of n links placed uniformly in the
// unit square: two links conflict when their transmitters are within
// radius r.
func unitDisk(n int, r float64, seed uint64) (*graph.Graph, error) {
	rng := rand.New(rand.NewPCG(seed, 0xd15c))
	xs := make([]float64, n)
	ys := make([]float64, n)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
		// Utility: log-normal-ish spread so weights matter.
		b.SetWeight(i, 1+int64(math.Exp(rng.NormFloat64()*1.2)*100))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy < r*r {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

func run() error {
	const (
		links  = 600
		radius = 0.08
		eps    = 0.5
	)
	g, err := unitDisk(links, radius, 7)
	if err != nil {
		return err
	}
	fmt.Printf("conflict graph: %d links, %d conflicts, Δ=%d, total utility=%d\n",
		g.N(), g.M(), g.MaxDegree(), g.TotalWeight())
	fmt.Printf("certified utility upper bound (clique cover): %d\n\n", exact.CliqueCoverUpperBound(g))

	cfg := maxis.Config{Seed: 99}

	thm2, err := maxis.Theorem2(g, eps, cfg)
	if err != nil {
		return err
	}
	report("Theorem 2 (1+ε)Δ-approx", thm2.Weight, thm2.Metrics.Rounds, g)

	base, err := maxis.BarYehuda(g, cfg)
	if err != nil {
		return err
	}
	report("Bar-Yehuda et al. [8] Δ-approx", base.Weight, base.Metrics.Rounds, g)

	one, err := maxis.OneRound(g, cfg)
	if err != nil {
		return err
	}
	report("one-round ranking [17]", one.Weight, one.Metrics.Rounds, g)

	greedyW, _ := exact.GreedyMWIS(g)
	fmt.Printf("%-34s utility=%8d (centralized reference)\n", "sequential greedy", greedyW)
	return nil
}

func report(name string, weight int64, rounds int, g *graph.Graph) {
	fmt.Printf("%-34s utility=%8d rounds=%4d (%.1f%% of w(V))\n",
		name, weight, rounds, 100*float64(weight)/float64(g.TotalWeight()))
}
