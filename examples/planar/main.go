// Planar: the Theorem 3 arboricity algorithm on planar graphs.
//
// Planar graphs have arboricity at most 3 while their maximum degree can be
// arbitrarily large — exactly the α < Δ/(8(1+ε)) regime where the paper's
// 8(1+ε)α-approximation (Theorem 3) beats every Δ-based guarantee. The
// example runs both pipelines on a random Apollonian network (a maximal
// planar graph) and prints the guarantees and achieved weights side by
// side.
package main

import (
	"fmt"
	"os"

	"distmwis/internal/exact"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "planar: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n     = 800
		eps   = 0.5
		alpha = 3 // planar graphs decompose into ≤ 3 forests
	)
	g := gen.Weighted(gen.Apollonian(n, 11), gen.UniformWeights(10_000), 11)
	fmt.Printf("Apollonian network: n=%d m=%d Δ=%d (planar ⇒ α ≤ 3; degeneracy=%d)\n",
		g.N(), g.M(), g.MaxDegree(), g.ArboricityUpperBound())
	fmt.Printf("total weight=%d, clique-cover OPT upper bound=%d\n\n",
		g.TotalWeight(), exact.CliqueCoverUpperBound(g))

	cfg := maxis.Config{Seed: 5}

	arb, err := maxis.Theorem3(g, alpha, eps, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 3 (arboricity):  weight=%8d  guarantee OPT/%.1f  phases=%d rounds=%d\n",
		arb.Weight, maxis.Guarantee8Alpha(alpha, eps), arb.Phases, arb.Metrics.Rounds)

	deg, err := maxis.Theorem2(g, eps, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Theorem 2 (degree):      weight=%8d  guarantee OPT/%.1f  phases=%d rounds=%d\n",
		deg.Weight, maxis.GuaranteeDelta(g.MaxDegree(), eps), deg.Phases, deg.Metrics.Rounds)

	fmt.Printf("\nguarantee improvement: %.1fx (8(1+ε)α = %.1f vs (1+ε)Δ = %.1f)\n",
		maxis.GuaranteeDelta(g.MaxDegree(), eps)/maxis.Guarantee8Alpha(alpha, eps),
		maxis.Guarantee8Alpha(alpha, eps), maxis.GuaranteeDelta(g.MaxDegree(), eps))
	return nil
}
