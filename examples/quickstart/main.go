// Quickstart: build a weighted graph, run the paper's Theorem 2 pipeline
// (sparsify → good-nodes → local-ratio boosting), and inspect the result.
package main

import (
	"fmt"
	"os"

	"distmwis/internal/graph"
	"distmwis/internal/maxis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A small conflict graph: 8 tasks, edges = mutual exclusion, weights =
	// task values.
	b := graph.NewBuilder(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {0, 4}, {2, 6}} {
		b.AddEdge(e[0], e[1])
	}
	b.SetWeights([]int64{10, 3, 7, 2, 9, 4, 8, 1})
	g, err := b.Build()
	if err != nil {
		return err
	}

	// (1+ε)Δ-approximation with ε = 0.5. The zero-value Config selects
	// Luby's MIS as the black box and CONGEST with B = 8·log₂ n bits.
	res, err := maxis.Theorem2(g, 0.5, maxis.Config{Seed: 42})
	if err != nil {
		return err
	}

	fmt.Printf("graph: n=%d m=%d Δ=%d total weight=%d\n", g.N(), g.M(), g.MaxDegree(), g.TotalWeight())
	fmt.Printf("independent set (weight %d, guarantee ≥ OPT/%.1f):\n", res.Weight, maxis.GuaranteeDelta(g.MaxDegree(), 0.5))
	for v, in := range res.Set {
		if in {
			fmt.Printf("  task %d (weight %d)\n", v, g.Weight(v))
		}
	}
	fmt.Printf("CONGEST cost: %d rounds, %d messages, %d bits\n",
		res.Metrics.Rounds, res.Metrics.Messages, res.Metrics.Bits)
	return nil
}
