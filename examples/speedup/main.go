// Speedup: the paper's headline — approximating MaxIS is exponentially
// easier than computing an MIS.
//
// The example sweeps n on sparse unweighted graphs and prints measured
// CONGEST rounds for (a) a full MIS via Luby and Ghaffari, and (b) the
// Theorem 5 O(1/ε)-round (1+ε)(Δ+1)-approximation. The MIS columns grow
// with n; the approximation column does not — the measured face of the
// Ω(√(log n / log log n)) MIS lower bound [31] that the approximation
// escapes.
package main

import (
	"fmt"
	"os"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/mis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "speedup: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const eps = 0.5
	fmt.Printf("%8s %4s | %10s %13s | %14s %9s %9s\n",
		"n", "Δ", "Luby MIS", "Ghaffari MIS", "Thm5 rounds", "|I|", "bound")
	for _, n := range []int{1 << 9, 1 << 11, 1 << 13, 1 << 15} {
		g := gen.GNP(n, 10/float64(n), 3)
		luby, err := mis.Compute(mis.Luby{}, g)
		if err != nil {
			return err
		}
		ghaf, err := mis.Compute(mis.Ghaffari{}, g)
		if err != nil {
			return err
		}
		apx, err := maxis.Theorem5(g, eps, maxis.Config{Seed: 3})
		if err != nil {
			return err
		}
		bound := float64(g.N()) / ((1 + eps) * float64(g.MaxDegree()+1))
		fmt.Printf("%8d %4d | %10d %13d | %14d %9d %9.0f\n",
			n, g.MaxDegree(), luby.Exec.Rounds, ghaf.Exec.Rounds,
			apx.Metrics.Rounds, graph.SetSize(apx.Set), bound)
	}
	fmt.Println("\nMIS rounds grow with n; the (1+ε)(Δ+1)-approximation stays flat (Theorems 2/5).")
	return nil
}
