GO ?= go

.PHONY: all vet build test race fuzz experiments recovery-sweep clean

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke runs of every fuzz target; extend -fuzztime for real campaigns.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReaderRobust -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzWriteReadMirror -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzChecksumBurst -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzInjectorCorruptDetect -fuzztime=10s ./internal/fault/
	$(GO) test -run='^$$' -fuzz=FuzzEngineFaultDeterminism -fuzztime=10s ./internal/fault/

experiments:
	$(GO) run ./cmd/experiments -o EXPERIMENTS.md

# E20: reliable-transport recovery sweep (retention and overhead vs the
# passive fault layer on the E18 grid).
recovery-sweep:
	$(GO) run ./cmd/experiments -run E20

clean:
	$(GO) clean ./...
