GO ?= go

.PHONY: all vet lint build build-cmds test race fuzz experiments recovery-sweep serve loadtest smoke chaos-soak mutate-soak cluster-soak bench-serve bench-json bench-diff bench-scale clean

# PR number stamped into the bench-json report filename.
PR ?= 6

all: vet build test

vet:
	$(GO) vet ./...

# Static analysis beyond go vet. staticcheck is not vendored and the
# target never installs anything: it runs the tool when present and
# prints the install hint otherwise (CI installs it in the lint job).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not found; skipping (install: go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke runs of every fuzz target; extend -fuzztime for real campaigns.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReaderRobust -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzWriteReadMirror -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzChecksumBurst -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzInjectorCorruptDetect -fuzztime=10s ./internal/fault/
	$(GO) test -run='^$$' -fuzz=FuzzEngineFaultDeterminism -fuzztime=10s ./internal/fault/
	$(GO) test -run='^$$' -fuzz=FuzzParamsNormalize -fuzztime=10s ./internal/maxis/
	$(GO) test -run='^$$' -fuzz=FuzzChoose -fuzztime=10s ./internal/plan/

build-cmds:
	$(GO) build -o bin/ ./cmd/...

# Run the MaxIS service daemon on :8080 (see cmd/maxisd for flags).
serve:
	$(GO) run ./cmd/maxisd -addr :8080 -workers 4

# Push a 10-second closed-loop load burst at a running daemon.
loadtest:
	$(GO) run ./cmd/loadgen -addr http://localhost:8080 -rps 1000 \
		-concurrency 16 -duration 10s -repeat 0.9

# End-to-end serving smoke: boot maxisd, probe health + metrics, 5s loadgen
# burst with zero failures, clean SIGTERM drain. Used by CI.
smoke:
	./scripts/smoke.sh

# Deterministic chaos soak: pinned fault schedule, retrying client,
# crash/recovery via the write-ahead journal, goroutine-leak check.
# Used by the CI chaos-smoke job.
chaos-soak:
	$(GO) test -race -run TestChaosSoak -count=1 -v ./internal/soak/

# Deterministic mutation soak: storms of journaled PATCHes raced against
# readers under injected 500s/resets/panics, shadow-state hash verification,
# healed-answer quality climb to "full", crash/replay of the graph journal.
# Used by the CI chaos-smoke job.
mutate-soak:
	$(GO) test -race -run TestMutationSoak -count=1 -v ./internal/soak/

# Deterministic sharded-serving soak: three chaos-injected backends behind
# the cluster coordinator, one killed mid-run; asserts ≥99% availability,
# verified answers, and the prober settling on the survivors.
# Used by the CI chaos-smoke job.
cluster-soak:
	$(GO) test -race -run TestClusterSoak -count=1 -v ./internal/soak/

# Serving-layer benchmarks: cache hit vs cold solve, scheduler overhead.
bench-serve:
	$(GO) test -run='^$$' -bench=BenchmarkServe -benchtime=10x .

# Machine-readable benchmark snapshot: round loop, solver end-to-end and
# serving cold/hot paths, with allocation stats, written to BENCH_$(PR).json.
bench-json:
	@{ $(GO) test -run='^$$' -benchmem -benchtime=5x \
		-bench='^(BenchmarkE13Headline|BenchmarkServeColdVsCacheHit|BenchmarkServeSchedulerDepth1)$$' . ; \
	   $(GO) test -run='^$$' -benchmem -benchtime=5x \
		-bench='^BenchmarkMessageDelivery$$' ./internal/congest/ ; } \
		| $(GO) run ./cmd/benchjson -o BENCH_$(PR).json
	@echo "wrote BENCH_$(PR).json"

# Benchmark regression gate: compares the two highest-numbered
# BENCH_<n>.json snapshots in the repo root and fails on >15% ns/op or
# allocs/op regressions. Pinned to the macro benchmarks only: the
# nanosecond-scale MessageDelivery microbenchmarks are pure noise at the
# snapshot's -benchtime=5x and would trip the gate randomly.
bench-diff:
	$(GO) run ./cmd/benchdiff -pin \
		BenchmarkE13Headline,BenchmarkServeColdVsCacheHit/cold,BenchmarkServeColdVsCacheHit/hit,BenchmarkServeSchedulerDepth1

# Scale benchmarks, one iteration each: the 1M-node seam-parity suite and
# the 10M-node round loop. Minutes of wall clock — not part of `make test`.
bench-scale:
	$(GO) test -run='^$$' -benchtime=1x -benchmem \
		-bench='^(BenchmarkPowerLawSeams1M|BenchmarkRoundLoop10M)$$' .

experiments:
	$(GO) run ./cmd/experiments -o EXPERIMENTS.md

# E20: reliable-transport recovery sweep (retention and overhead vs the
# passive fault layer on the E18 grid).
recovery-sweep:
	$(GO) run ./cmd/experiments -run E20

clean:
	$(GO) clean ./...
