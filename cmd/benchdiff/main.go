// Command benchdiff compares two benchjson reports (BENCH_<pr>.json) and
// fails when a pinned benchmark regressed beyond a threshold on ns/op or
// allocs/op. It is the CI tripwire closing the loop around the per-PR
// benchmark snapshots: benchjson archives the numbers, benchdiff refuses
// the next PR when the numbers move the wrong way.
//
// Usage:
//
//	benchdiff [-threshold 0.15] [-pin Name1,Name2] [OLD.json NEW.json]
//
// With no positional arguments it scans the working directory for files
// named BENCH_<n>.json and compares the two highest n (the previous and
// the current PR snapshot). The default pin set is every benchmark present
// in both reports; -pin narrows it to a comma-separated list of names
// (sub-benchmark paths included, e.g. BenchmarkServeColdVsCacheHit/hit).
//
// Exit status: 0 when no pinned benchmark regressed beyond the threshold,
// 1 on regression, 2 on usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result mirrors the benchjson schema (cmd/benchjson); only the fields the
// comparison needs are decoded.
type Result struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Report mirrors the benchjson file format.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.15, "max tolerated relative regression (0.15 = +15%)")
	pin := fs.String("pin", "", "comma-separated benchmark names to enforce (default: all common)")
	dir := fs.String("dir", ".", "directory scanned for BENCH_<n>.json when no files are given")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	oldPath, newPath := "", ""
	switch fs.NArg() {
	case 0:
		var ok bool
		var err error
		oldPath, newPath, ok, err = latestPair(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		if !ok {
			// The first PR of a repo (or a fresh CI workspace) has nothing to
			// compare against. That is not a failure — the gate exists to
			// catch regressions between snapshots, not to demand history.
			fmt.Fprintln(stdout, "benchdiff: no baseline, skipping")
			return 0
		}
	case 2:
		oldPath, newPath = fs.Arg(0), fs.Arg(1)
	default:
		fmt.Fprintln(stderr, "benchdiff: want zero or two positional arguments: [OLD.json NEW.json]")
		return 2
	}
	oldRep, err := load(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newRep, err := load(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "benchdiff: %s -> %s (threshold %+.0f%%)\n", oldPath, newPath, *threshold*100)
	regressions := Compare(oldRep, newRep, pinSet(*pin), *threshold, stdout)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(stderr, "benchdiff: REGRESSION %s\n", r)
		}
		return 1
	}
	fmt.Fprintln(stdout, "benchdiff: ok")
	return 0
}

// benchFile matches the per-PR snapshot naming scheme, capturing n.
var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestPair finds the two highest-numbered BENCH_<n>.json in dir:
// the previous snapshot and the current one. ok is false when fewer than
// two snapshots exist — no baseline to diff against, which callers treat
// as a skip rather than an error.
func latestPair(dir string) (oldPath, newPath string, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", false, err
	}
	type snap struct {
		n    int
		path string
	}
	var snaps []snap
	for _, e := range entries {
		if m := benchFile.FindStringSubmatch(e.Name()); m != nil {
			n, _ := strconv.Atoi(m[1])
			snaps = append(snaps, snap{n, filepath.Join(dir, e.Name())})
		}
	}
	if len(snaps) < 2 {
		return "", "", false, nil
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].n < snaps[j].n })
	return snaps[len(snaps)-2].path, snaps[len(snaps)-1].path, true, nil
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &rep, nil
}

// pinSet parses the -pin list; nil means "every common benchmark".
func pinSet(pin string) map[string]bool {
	if strings.TrimSpace(pin) == "" {
		return nil
	}
	set := make(map[string]bool)
	for _, name := range strings.Split(pin, ",") {
		if name = strings.TrimSpace(name); name != "" {
			set[name] = true
		}
	}
	return set
}

// Compare prints a delta line per pinned benchmark and returns descriptions
// of those whose ns/op or allocs/op regressed beyond threshold. Benchmarks
// present in only one report are reported but never fail the diff: new
// benchmarks appear and obsolete ones retire as the suite evolves, and
// punishing that would teach people not to add benchmarks.
func Compare(oldRep, newRep *Report, pins map[string]bool, threshold float64, out io.Writer) []string {
	oldBy := byName(oldRep)
	newBy := byName(newRep)
	names := make([]string, 0, len(oldBy))
	for name := range oldBy {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		if pins != nil && !pins[name] {
			continue
		}
		o := oldBy[name]
		n, ok := newBy[name]
		if !ok {
			fmt.Fprintf(out, "  %-50s retired (not in new report)\n", name)
			continue
		}
		nsDelta := rel(o.NsPerOp, n.NsPerOp)
		line := fmt.Sprintf("  %-50s ns/op %12.0f -> %12.0f (%+6.1f%%)", name, o.NsPerOp, n.NsPerOp, nsDelta*100)
		if nsDelta > threshold {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %+.1f%% (limit %+.0f%%)", name, nsDelta*100, threshold*100))
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			aDelta := rel(*o.AllocsPerOp, *n.AllocsPerOp)
			line += fmt.Sprintf("  allocs/op %10.0f -> %10.0f (%+6.1f%%)", *o.AllocsPerOp, *n.AllocsPerOp, aDelta*100)
			if aDelta > threshold {
				regressions = append(regressions, fmt.Sprintf("%s: allocs/op %+.1f%% (limit %+.0f%%)", name, aDelta*100, threshold*100))
			}
		}
		fmt.Fprintln(out, line)
	}
	for name := range newBy {
		if _, ok := oldBy[name]; !ok && (pins == nil || pins[name]) {
			fmt.Fprintf(out, "  %-50s new (no baseline)\n", name)
		}
	}
	for name := range pins {
		if _, ok := oldBy[name]; !ok {
			if _, ok := newBy[name]; !ok {
				regressions = append(regressions, fmt.Sprintf("%s: pinned but missing from both reports", name))
			}
		}
	}
	return regressions
}

func byName(rep *Report) map[string]Result {
	m := make(map[string]Result, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		m[b.Name] = b
	}
	return m
}

// rel is the signed relative change new vs old; an old value of zero can
// only regress (to any positive value) — treated as +inf via a large
// sentinel so the threshold always trips.
func rel(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return 1e9
	}
	return (newV - oldV) / oldV
}
