package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldReport = `{"benchmarks": [
  {"name": "BenchmarkE13Headline", "ns_per_op": 34941836, "allocs_per_op": 215988},
  {"name": "BenchmarkServeSchedulerDepth1", "ns_per_op": 100000, "allocs_per_op": 50},
  {"name": "BenchmarkRetired", "ns_per_op": 5}
]}`

func TestComparePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "BENCH_6.json", oldReport)
	newP := writeReport(t, dir, "BENCH_7.json", `{"benchmarks": [
	  {"name": "BenchmarkE13Headline", "ns_per_op": 33000000, "allocs_per_op": 70892},
	  {"name": "BenchmarkServeSchedulerDepth1", "ns_per_op": 110000, "allocs_per_op": 55},
	  {"name": "BenchmarkNew", "ns_per_op": 7}
	]}`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{oldP, newP}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	for _, want := range []string{"BenchmarkE13Headline", "retired", "new (no baseline)"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestCompareFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "BENCH_6.json", oldReport)
	newP := writeReport(t, dir, "BENCH_7.json", `{"benchmarks": [
	  {"name": "BenchmarkE13Headline", "ns_per_op": 50000000, "allocs_per_op": 215988},
	  {"name": "BenchmarkServeSchedulerDepth1", "ns_per_op": 100000, "allocs_per_op": 50}
	]}`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{oldP, newP}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (ns/op +43%%)", code)
	}
	if !strings.Contains(stderr.String(), "REGRESSION BenchmarkE13Headline: ns/op") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

func TestCompareFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "BENCH_6.json", oldReport)
	newP := writeReport(t, dir, "BENCH_7.json", `{"benchmarks": [
	  {"name": "BenchmarkE13Headline", "ns_per_op": 34941836, "allocs_per_op": 300000},
	  {"name": "BenchmarkServeSchedulerDepth1", "ns_per_op": 100000, "allocs_per_op": 50}
	]}`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{oldP, newP}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (allocs/op +39%%)", code)
	}
	if !strings.Contains(stderr.String(), "allocs/op") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

func TestThresholdFlagLoosens(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "BENCH_6.json", `{"benchmarks": [{"name": "B", "ns_per_op": 100}]}`)
	newP := writeReport(t, dir, "BENCH_7.json", `{"benchmarks": [{"name": "B", "ns_per_op": 130}]}`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{oldP, newP}, &stdout, &stderr); code != 1 {
		t.Fatalf("default threshold: exit %d, want 1 on +30%%", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-threshold", "0.5", oldP, newP}, &stdout, &stderr); code != 0 {
		t.Fatalf("-threshold 0.5: exit %d, stderr: %s", code, stderr.String())
	}
}

func TestPinNarrowsAndRequiresPresence(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "BENCH_6.json", `{"benchmarks": [
	  {"name": "BenchmarkCare", "ns_per_op": 100},
	  {"name": "BenchmarkNoise", "ns_per_op": 100}
	]}`)
	newP := writeReport(t, dir, "BENCH_7.json", `{"benchmarks": [
	  {"name": "BenchmarkCare", "ns_per_op": 105},
	  {"name": "BenchmarkNoise", "ns_per_op": 900}
	]}`)
	var stdout, stderr bytes.Buffer
	// Noise regressed 9x but is not pinned: must pass.
	if code := run([]string{"-pin", "BenchmarkCare", oldP, newP}, &stdout, &stderr); code != 0 {
		t.Fatalf("pinned run: exit %d, stderr: %s", code, stderr.String())
	}
	// A pinned benchmark missing from both reports is itself a failure:
	// silently dropping the tripwire must not pass CI.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-pin", "BenchmarkGone", oldP, newP}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing pin: exit %d, want 1", code)
	}
}

func TestAutodiscoverLatestPair(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, dir, "BENCH_5.json", `{"benchmarks": [{"name": "B", "ns_per_op": 1}]}`)
	writeReport(t, dir, "BENCH_6.json", `{"benchmarks": [{"name": "B", "ns_per_op": 100}]}`)
	writeReport(t, dir, "BENCH_7.json", `{"benchmarks": [{"name": "B", "ns_per_op": 101}]}`)
	writeReport(t, dir, "BENCH_note.json", `not even json`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	// 6 -> 7 (+1%), not 5 -> 7 (+10000%): proves the pair choice.
	if !strings.Contains(stdout.String(), "BENCH_6.json") || !strings.Contains(stdout.String(), "BENCH_7.json") {
		t.Fatalf("stdout: %s", stdout.String())
	}
}

// Fewer than two snapshots means there is no baseline to regress against —
// a skip, not a failure: the first PR of a repo must not fail its own CI.
func TestAutodiscoverSkipsWithoutBaseline(t *testing.T) {
	for name, files := range map[string][]string{
		"empty":           nil,
		"single-snapshot": {"BENCH_7.json"},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			for _, f := range files {
				writeReport(t, dir, f, `{"benchmarks": [{"name": "B", "ns_per_op": 1}]}`)
			}
			var stdout, stderr bytes.Buffer
			if code := run([]string{"-dir", dir}, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, want 0 skip; stderr: %s", code, stderr.String())
			}
			if !strings.Contains(stdout.String(), "no baseline, skipping") {
				t.Fatalf("stdout missing skip notice:\n%s", stdout.String())
			}
		})
	}
}

// An unreadable directory is still a hard error: "skip" is only for the
// legitimately-empty case, never for a misconfigured -dir.
func TestAutodiscoverBadDirStillFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", filepath.Join(t.TempDir(), "nope")}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2 on unreadable dir", code)
	}
}

func TestZeroBaselineAlwaysRegresses(t *testing.T) {
	if rel(0, 5) < 1 {
		t.Fatal("zero baseline must read as a regression")
	}
	if rel(0, 0) != 0 {
		t.Fatal("0 -> 0 is not a regression")
	}
}
