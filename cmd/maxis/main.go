// Command maxis runs one distributed MaxIS approximation algorithm on one
// generated graph and reports the outcome: set weight, certified bounds,
// and CONGEST metrics (rounds, messages, bits, max message size).
//
// Usage examples:
//
//	maxis -graph gnp -n 1000 -p 0.05 -weights poly2 -alg theorem2 -eps 0.5
//	maxis -graph apollonian -n 500 -alg theorem3 -alpha 3 -eps 1
//	maxis -graph cycle -n 4096 -alg theorem5 -eps 0.25
//	maxis -graph clique -n 200 -weights uniform -maxw 1000 -alg baseline
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"distmwis/internal/exact"
	"distmwis/internal/fault"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/plan"
	"distmwis/internal/protocol"
	"distmwis/internal/trace"

	// Imported for their registry side effects: every solver and MIS black
	// box this command accepts comes from the protocol registry, so the
	// algorithm packages must be linked in.
	_ "distmwis/internal/mis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("maxis", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphKind  = fs.String("graph", "gnp", "cycle|path|clique|star|grid|torus|gnp|tree|forests|apollonian|caterpillar|coc")
		n          = fs.Int("n", 1000, "number of nodes (or per-dimension size)")
		p          = fs.Float64("p", 0.05, "edge probability for gnp")
		k          = fs.Int("k", 2, "forest count for -graph forests / legs for caterpillar / n1 for coc")
		weights    = fs.String("weights", "unit", "unit|uniform|poly2|poly3|expspread|skewed")
		maxW       = fs.Int64("maxw", 1000, "max weight for -weights uniform")
		algName    = fs.String("alg", "theorem2", "auto|"+strings.Join(maxis.AlgorithmNames(), "|"))
		eps        = fs.Float64("eps", 0.5, "epsilon for boosted algorithms")
		alpha      = fs.Int("alpha", 0, "arboricity bound for theorem3 (0 = degeneracy)")
		deadlineMS = fs.Int64("deadline-ms", 0, "work budget for -alg auto as a deadline (0 = unlimited)")
		seed       = fs.Uint64("seed", 1, "random seed")
		misName    = fs.String("mis", "luby", "MIS black box: "+strings.Join(protocol.Names(protocol.KindMIS), "|"))
		local      = fs.Bool("local", false, "LOCAL model (no bandwidth bound)")
		showOpt    = fs.Bool("opt", false, "also compute exact OPT (small graphs only)")
		doTrace    = fs.Bool("trace", false, "record a per-round trace and print the phase timeline")
		traceOut   = fs.String("trace-out", "", "write the per-round trace to a file (.csv → CSV, else JSON lines); implies -trace")

		faultRate    = fs.Float64("fault-rate", 0, "per-message loss probability (enables fault injection)")
		faultDup     = fs.Float64("fault-dup", 0, "per-message duplication probability")
		faultCorrupt = fs.Float64("fault-corrupt", 0, "per-message corruption probability (detected via CRC-8)")
		faultCrash   = fs.Float64("fault-crash", 0, "fraction of nodes crash-stopped at round 3 of each phase")
		faultBack    = fs.Int("fault-back", 0, "round crashed nodes recover at (0 = crash-stop)")
		faultSeed    = fs.Uint64("fault-seed", 0, "adversary seed (0 = derive from -seed)")

		reliableOn = fs.Bool("reliable", false, "install the ARQ transport: retransmit lost/corrupted messages until the execution matches the fault-free run")
		cpEvery    = fs.Int("checkpoint-every", 0, "with -reliable, snapshot process state every N logical rounds so crash-recovered nodes resync by replay")
		repair     = fs.Bool("repair", false, "run the self-healing monitor on the final set: conflicting edges withdraw their lower-weight endpoint")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := validateFlags(flagValues{
		alg: *algName, weights: *weights, eps: *eps, n: *n, maxW: *maxW,
		alpha: *alpha, checkpointEvery: *cpEvery, reliable: *reliableOn,
		faultBack: *faultBack, faultCrash: *faultCrash,
	}); err != nil {
		fmt.Fprintf(stderr, "maxis: %v\n", err)
		return 1
	}

	g, err := buildGraph(*graphKind, *n, *p, *k, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "maxis: %v\n", err)
		return 1
	}
	g, err = applyWeights(g, *weights, *maxW, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "maxis: %v\n", err)
		return 1
	}

	misAlg, err := protocol.MISByName(*misName)
	if err != nil {
		fmt.Fprintf(stderr, "maxis: %v\n", err)
		return 1
	}
	cfg := maxis.Config{Seed: *seed, MIS: misAlg, Local: *local}
	// -alg auto resolves through the planner against the -deadline-ms
	// budget; the decision line shows what was picked and why it fits.
	if *algName == plan.Auto {
		d, err := plan.Choose(plan.Request{
			Profile:    protocol.ProfileOf(g),
			Params:     protocol.Params{Eps: *eps, Alpha: *alpha},
			Budget:     plan.ForDeadline(*deadlineMS, 0),
			MIS:        misAlg,
			AllowLocal: *local,
		})
		if err != nil {
			fmt.Fprintf(stderr, "maxis: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "planner: %s\n", d)
		*algName = d.Alg
	}
	// The uniform and skewed generators bound their weights by -maxw, so
	// the runtime can skip its own weight scan.
	if *weights == "uniform" || *weights == "skewed" {
		cfg.MaxWeight = *maxW
	}
	var ring *trace.Ring
	if *doTrace || *traceOut != "" {
		ring = trace.NewRing(0)
		cfg.Tracer = ring
		cfg.TraceLabel = *algName
	}
	sched := fault.Schedule{
		Seed:      *faultSeed,
		Loss:      *faultRate,
		Dup:       *faultDup,
		Corrupt:   *faultCorrupt,
		CrashFrac: *faultCrash,
		CrashAt:   3,
		CrashBack: *faultBack,
	}
	if sched.Seed == 0 {
		sched.Seed = *seed + 77
	}
	var stats fault.Stats
	if err := sched.ValidateFor(g.N()); err != nil {
		fmt.Fprintf(stderr, "maxis: %v\n", err)
		return 1
	}
	if sched.Enabled() {
		cfg.Faults = sched
		cfg.FaultStats = &stats
	}
	cfg.Reliable = *reliableOn
	cfg.CheckpointEvery = *cpEvery
	cfg.Repair = *repair

	fmt.Fprintf(stdout, "graph: %s  n=%d m=%d Δ=%d W=%d w(V)=%d\n",
		*graphKind, g.N(), g.M(), g.MaxDegree(), g.MaxWeight(), g.TotalWeight())

	res, guarantee, err := runAlgorithm(*algName, g, *eps, *alpha, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "maxis: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "algorithm: %s (mis=%s, eps=%g)\n", *algName, *misName, *eps)
	fmt.Fprintf(stdout, "independent set: size=%d weight=%d\n", graph.SetSize(res.Set), res.Weight)
	if guarantee != "" {
		fmt.Fprintf(stdout, "guarantee: %s\n", guarantee)
	}
	fmt.Fprintf(stdout, "rounds=%d messages=%d bits=%d maxMsgBits=%d phases=%d\n",
		res.Metrics.Rounds, res.Metrics.Messages, res.Metrics.Bits,
		res.Metrics.MaxMessageBits, res.Metrics.Phases)
	if sched.Enabled() {
		// Re-run fault-free on the same seed to quantify the degradation.
		cleanCfg := cfg
		cleanCfg.Faults = fault.Schedule{}
		cleanCfg.FaultStats = nil
		clean, _, err := runAlgorithm(*algName, g, *eps, *alpha, cleanCfg)
		if err != nil {
			fmt.Fprintf(stderr, "maxis: fault-free baseline: %v\n", err)
			return 1
		}
		rep := fault.Compare(g, res.Set, clean.Weight, res.Metrics.Truncations > 0)
		fmt.Fprintf(stdout, "faults: lost=%d corrupted=%d duplicated=%d truncatedPhases=%d\n",
			res.Metrics.FaultLost, res.Metrics.FaultCorrupted, res.Metrics.FaultDuplicated,
			res.Metrics.Truncations)
		if *reliableOn {
			fmt.Fprintf(stdout, "transport: retransmits=%d acks=%d recoveries=%d replayedRounds=%d deadPorts=%d\n",
				res.Metrics.Retransmits, res.Metrics.TransportAcks,
				res.Metrics.Recoveries, res.Metrics.ReplayedRounds, res.Metrics.DeadPorts)
		}
		fmt.Fprintf(stdout, "safety: independent=%t weight=%d fault-free=%d retention=%.3f\n",
			rep.Independent, rep.Weight, rep.Baseline, rep.Retention)
		if err := rep.Err(); err != nil {
			fmt.Fprintf(stderr, "maxis: %v\n", err)
			return 1
		}
	}
	keys := make([]string, 0, len(res.Extra))
	for key := range res.Extra {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fmt.Fprintf(stdout, "  %s=%.2f\n", key, res.Extra[key])
	}
	if ring != nil {
		if *doTrace {
			fmt.Fprintf(stdout, "trace: %d runs, %d rounds recorded (%d evicted)\n",
				len(ring.Runs()), len(ring.Rounds()), ring.Dropped())
			fmt.Fprint(stdout, trace.Summarize(ring.Rounds()).String())
		}
		if *traceOut != "" {
			if err := writeTrace(*traceOut, ring.Rounds()); err != nil {
				fmt.Fprintf(stderr, "maxis: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "trace written to %s\n", *traceOut)
		}
	}
	if *showOpt {
		opt, _, err := exact.MWIS(g)
		if err != nil {
			fmt.Fprintf(stderr, "maxis: exact: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "OPT=%d ratio=%.3f\n", opt, float64(opt)/float64(res.Weight))
	} else {
		fmt.Fprintf(stdout, "certified OPT upper bound (clique cover)=%d\n", exact.CliqueCoverUpperBound(g))
	}
	return 0
}

// flagValues carries the flags that interact; validateFlags rejects
// combinations that would previously be silently ignored.
type flagValues struct {
	alg, weights    string
	eps             float64
	n               int
	maxW            int64
	alpha           int
	checkpointEvery int
	reliable        bool
	faultBack       int
	faultCrash      float64
}

// validateFlags fails fast on flag combinations that have no effect or no
// meaning, instead of running with them silently dropped.
func validateFlags(v flagValues) error {
	if v.n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", v.n)
	}
	if v.checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be non-negative, got %d", v.checkpointEvery)
	}
	if v.checkpointEvery > 0 && !v.reliable {
		return fmt.Errorf("-checkpoint-every only takes effect with -reliable; add -reliable or drop -checkpoint-every")
	}
	if v.faultBack < 0 {
		return fmt.Errorf("-fault-back must be non-negative, got %d", v.faultBack)
	}
	if v.faultBack > 0 && v.faultCrash == 0 {
		return fmt.Errorf("-fault-back only takes effect with -fault-crash > 0; set a crash fraction or drop -fault-back")
	}
	if v.alpha < 0 {
		return fmt.Errorf("-alpha must be non-negative, got %d", v.alpha)
	}
	// Per-algorithm parameter rules live with the algorithm's registry
	// entry, not here: whatever Normalize rejects is surfaced as a flag
	// error, with the parameter name rendered as the flag that carries it.
	// "auto" defers the choice (and its parameter check) to the planner.
	if v.alg == plan.Auto {
		return nil
	}
	solver, err := protocol.SolverByName(v.alg)
	if err != nil {
		return err
	}
	if _, err := solver.Normalize(protocol.Params{Eps: v.eps, Alpha: v.alpha}); err != nil {
		var perr *protocol.ParamError
		if errors.As(err, &perr) {
			return fmt.Errorf("-%s %s", perr.Param, perr.Detail)
		}
		return err
	}
	if (v.weights == "uniform" || v.weights == "skewed") && v.maxW <= 0 {
		return fmt.Errorf("-maxw must be positive for -weights %s, got %d", v.weights, v.maxW)
	}
	return nil
}

// writeTrace exports the recorded rounds: .csv files get RFC 4180 CSV,
// anything else JSON lines (one Round per line).
func writeTrace(path string, rounds []trace.Round) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = trace.WriteCSV(f, rounds)
	} else {
		err = trace.WriteJSONL(f, rounds)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func buildGraph(kind string, n int, p float64, k int, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "cycle":
		return gen.Cycle(n), nil
	case "path":
		return gen.Path(n), nil
	case "clique":
		return gen.Clique(n), nil
	case "star":
		return gen.Star(n), nil
	case "grid":
		return gen.Grid(n, n), nil
	case "torus":
		return gen.Torus(n, n), nil
	case "gnp":
		return gen.GNP(n, p, seed), nil
	case "tree":
		return gen.RandomTree(n, seed), nil
	case "forests":
		return gen.UnionOfForests(n, k, seed), nil
	case "apollonian":
		return gen.Apollonian(n, seed), nil
	case "caterpillar":
		return gen.Caterpillar(n, k), nil
	case "coc":
		return gen.CycleOfCliques(n, k), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func applyWeights(g *graph.Graph, kind string, maxW int64, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "unit":
		return g, nil
	case "uniform":
		return gen.Weighted(g, gen.UniformWeights(maxW), seed), nil
	case "poly2":
		return gen.Weighted(g, gen.PolyWeights(2), seed), nil
	case "poly3":
		return gen.Weighted(g, gen.PolyWeights(3), seed), nil
	case "expspread":
		return gen.Weighted(g, gen.ExponentialSpreadWeights(24), seed), nil
	case "skewed":
		return gen.Weighted(g, gen.SkewedWeights(0.05, maxW), seed), nil
	default:
		return nil, fmt.Errorf("unknown weight kind %q", kind)
	}
}

// runAlgorithm resolves name through the protocol registry and returns the
// result together with the algorithm's certified guarantee line. Any solver
// registered with protocol.Register is runnable here without edits.
func runAlgorithm(name string, g *graph.Graph, eps float64, alpha int, cfg maxis.Config) (*maxis.Result, string, error) {
	solver, err := protocol.SolverByName(name)
	if err != nil {
		return nil, "", err
	}
	params, err := solver.Normalize(protocol.Params{Eps: eps, Alpha: alpha})
	if err != nil {
		return nil, "", err
	}
	res, err := solver.Run(g, params, cfg)
	if err != nil {
		return nil, "", err
	}
	return res, solver.Guarantee(g, params, res), nil
}
