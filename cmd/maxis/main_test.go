package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCLIAlgorithms(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "theorem2-default",
			args: []string{"-graph", "gnp", "-n", "120", "-weights", "uniform", "-alg", "theorem2"},
			want: []string{"algorithm: theorem2", "independent set:", "rounds="},
		},
		{
			name: "theorem1-with-opt",
			args: []string{"-graph", "gnp", "-n", "40", "-p", "0.15", "-weights", "uniform", "-alg", "theorem1", "-opt"},
			want: []string{"OPT=", "ratio="},
		},
		{
			name: "theorem3-apollonian",
			args: []string{"-graph", "apollonian", "-n", "200", "-weights", "poly2", "-alg", "theorem3", "-alpha", "3"},
			want: []string{"8(1+ε)α-approximation"},
		},
		{
			name: "theorem5-cycle",
			args: []string{"-graph", "cycle", "-n", "256", "-alg", "theorem5"},
			want: []string{"|I| ≥ n/((1+ε)(Δ+1))"},
		},
		{
			name: "baseline",
			args: []string{"-graph", "gnp", "-n", "100", "-weights", "uniform", "-alg", "baseline"},
			want: []string{"Δ-approximation"},
		},
		{
			name: "ranking-ghaffari-box",
			args: []string{"-graph", "torus", "-n", "12", "-alg", "goodnodes", "-mis", "ghaffari"},
			want: []string{"algorithm: goodnodes (mis=ghaffari"},
		},
		{
			name: "local-model",
			args: []string{"-graph", "star", "-n", "50", "-alg", "oneround", "-local"},
			want: []string{"expectation only"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, out, errOut := runCLI(t, tt.args...)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errOut)
			}
			for _, w := range tt.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

func TestCLIErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad-flag", args: []string{"-nope"}},
		{name: "bad-graph", args: []string{"-graph", "moebius"}},
		{name: "bad-weights", args: []string{"-weights", "golden"}},
		{name: "bad-alg", args: []string{"-alg", "magic"}},
		{name: "bad-mis", args: []string{"-mis", "oracle"}},
		{name: "theorem5-weighted", args: []string{"-graph", "cycle", "-n", "30", "-weights", "uniform", "-alg", "theorem5"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _, _ := runCLI(t, tt.args...)
			if code == 0 {
				t.Error("expected nonzero exit")
			}
		})
	}
}

func TestCLIFlagValidation(t *testing.T) {
	// Combinations that used to be silently ignored must now exit non-zero
	// with a message naming the offending flag.
	tests := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{
			name:    "checkpoint-without-reliable",
			args:    []string{"-graph", "cycle", "-n", "32", "-checkpoint-every", "4"},
			wantErr: "-checkpoint-every only takes effect with -reliable",
		},
		{
			name:    "negative-checkpoint",
			args:    []string{"-graph", "cycle", "-n", "32", "-reliable", "-checkpoint-every", "-2"},
			wantErr: "-checkpoint-every must be non-negative",
		},
		{
			name:    "fault-back-without-crash",
			args:    []string{"-graph", "cycle", "-n", "32", "-fault-back", "6"},
			wantErr: "-fault-back only takes effect with -fault-crash",
		},
		{
			name:    "negative-fault-back",
			args:    []string{"-graph", "cycle", "-n", "32", "-fault-back", "-1"},
			wantErr: "-fault-back must be non-negative",
		},
		{
			name:    "nonpositive-eps",
			args:    []string{"-graph", "cycle", "-n", "32", "-alg", "theorem2", "-eps", "0"},
			wantErr: "-eps must be positive",
		},
		{
			name:    "negative-eps-theorem5",
			args:    []string{"-graph", "cycle", "-n", "32", "-alg", "theorem5", "-eps", "-0.5"},
			wantErr: "-eps must be positive",
		},
		{
			name:    "nonpositive-n",
			args:    []string{"-graph", "cycle", "-n", "0"},
			wantErr: "-n must be positive",
		},
		{
			name:    "negative-alpha",
			args:    []string{"-graph", "apollonian", "-n", "64", "-alg", "theorem3", "-alpha", "-3"},
			wantErr: "-alpha must be non-negative",
		},
		{
			name:    "nonpositive-maxw-uniform",
			args:    []string{"-graph", "cycle", "-n", "32", "-weights", "uniform", "-maxw", "0"},
			wantErr: "-maxw must be positive",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _, errOut := runCLI(t, tt.args...)
			if code == 0 {
				t.Fatal("expected nonzero exit")
			}
			if !strings.Contains(errOut, tt.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tt.wantErr, errOut)
			}
		})
	}
	// The valid counterparts still run.
	valid := [][]string{
		{"-graph", "cycle", "-n", "32", "-alg", "goodnodes", "-reliable", "-checkpoint-every", "4"},
		{"-graph", "cycle", "-n", "32", "-alg", "goodnodes", "-fault-crash", "0.1", "-fault-back", "6"},
	}
	for _, args := range valid {
		if code, _, errOut := runCLI(t, args...); code != 0 {
			t.Errorf("valid args %v exited %d: %s", args, code, errOut)
		}
	}
}
