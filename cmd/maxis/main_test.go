package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCLIAlgorithms(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "theorem2-default",
			args: []string{"-graph", "gnp", "-n", "120", "-weights", "uniform", "-alg", "theorem2"},
			want: []string{"algorithm: theorem2", "independent set:", "rounds="},
		},
		{
			name: "theorem1-with-opt",
			args: []string{"-graph", "gnp", "-n", "40", "-p", "0.15", "-weights", "uniform", "-alg", "theorem1", "-opt"},
			want: []string{"OPT=", "ratio="},
		},
		{
			name: "theorem3-apollonian",
			args: []string{"-graph", "apollonian", "-n", "200", "-weights", "poly2", "-alg", "theorem3", "-alpha", "3"},
			want: []string{"8(1+ε)α-approximation"},
		},
		{
			name: "theorem5-cycle",
			args: []string{"-graph", "cycle", "-n", "256", "-alg", "theorem5"},
			want: []string{"|I| ≥ n/((1+ε)(Δ+1))"},
		},
		{
			name: "baseline",
			args: []string{"-graph", "gnp", "-n", "100", "-weights", "uniform", "-alg", "baseline"},
			want: []string{"Δ-approximation"},
		},
		{
			name: "ranking-ghaffari-box",
			args: []string{"-graph", "torus", "-n", "12", "-alg", "goodnodes", "-mis", "ghaffari"},
			want: []string{"algorithm: goodnodes (mis=ghaffari"},
		},
		{
			name: "local-model",
			args: []string{"-graph", "star", "-n", "50", "-alg", "oneround", "-local"},
			want: []string{"expectation only"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, out, errOut := runCLI(t, tt.args...)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errOut)
			}
			for _, w := range tt.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

func TestCLIErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad-flag", args: []string{"-nope"}},
		{name: "bad-graph", args: []string{"-graph", "moebius"}},
		{name: "bad-weights", args: []string{"-weights", "golden"}},
		{name: "bad-alg", args: []string{"-alg", "magic"}},
		{name: "bad-mis", args: []string{"-mis", "oracle"}},
		{name: "theorem5-weighted", args: []string{"-graph", "cycle", "-n", "30", "-weights", "uniform", "-alg", "theorem5"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, _, _ := runCLI(t, tt.args...)
			if code == 0 {
				t.Error("expected nonzero exit")
			}
		})
	}
}
