package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"distmwis/internal/server"
)

// TestLoadgenAgainstRealServer runs a short closed-loop burst against an
// in-process maxisd and asserts zero failures plus real cache traffic —
// the same assertion the CI smoke job makes over a socket.
func TestLoadgenAgainstRealServer(t *testing.T) {
	s := server.New(server.Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() { _ = s.Drain() }()

	var out, errBuf bytes.Buffer
	code := run([]string{
		"-addr", ts.URL,
		"-duration", "2s",
		"-rps", "300",
		"-concurrency", "8",
		"-repeat", "0.9",
		"-graphs", "gnp,cycle",
		"-n", "80",
		"-alg", "goodnodes",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("loadgen exit %d\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	report := out.String()
	for _, want := range []string{"req/s", "failed=0", "p99=", "retries=", "breaker_opens="} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// With a 90% repeated mix over a small pool the cache must be hit.
	if strings.Contains(report, "cached=0 ") {
		t.Errorf("expected cache hits in report:\n%s", report)
	}
}

// TestLoadgenMutateMixedTraffic drives the dynamic-graph workload: a
// shared handle PATCHed by a third of the traffic while the rest solves it
// by reference, with per-op-type latency percentiles in the report.
func TestLoadgenMutateMixedTraffic(t *testing.T) {
	s := server.New(server.Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() { _ = s.Drain() }()

	var out, errBuf bytes.Buffer
	code := run([]string{
		"-addr", ts.URL,
		"-duration", "2s",
		"-rps", "150",
		"-concurrency", "8",
		"-mutate", "0.3",
		"-mutate-ops", "3",
		"-n", "60",
		"-alg", "goodnodes",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("loadgen exit %d\nstdout: %s\nstderr: %s", code, out.String(), errBuf.String())
	}
	report := out.String()
	for _, want := range []string{"latency ms [solve]:", "latency ms [patch]:", "failed=0"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "mutations=0 ") || strings.Contains(report, "mutations=0\n") {
		t.Errorf("expected acked mutations in report:\n%s", report)
	}
	// The mutator left the server holding a mutated handle.
	if s.Stats().Mutations == 0 {
		t.Error("server counted no graph mutations")
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-concurrency", "0"},
		{"-repeat", "1.5"},
		{"-batch", "-0.1"},
		{"-slo", "1.1"},
		{"-mutate", "1.5"},
		{"-mutate", "0.5", "-mutate-ops", "0"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code == 0 {
			t.Errorf("args %v: expected non-zero exit", args)
		}
	}
}

func TestLoadgenReportsFailuresNonZero(t *testing.T) {
	// Point at a dead endpoint: every request fails, exit must be 1.
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-addr", "http://127.0.0.1:1",
		"-duration", "200ms",
		"-rps", "50",
		"-concurrency", "2",
		"-timeout", "100ms",
	}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errBuf.String(), "requests failed") {
		t.Fatalf("missing failure message: %s", errBuf.String())
	}
}

// TestLoadgenSLOExit pins the -slo contract: a dead endpoint misses any
// positive target and the report says so explicitly.
func TestLoadgenSLOExit(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-addr", "http://127.0.0.1:1",
		"-duration", "200ms",
		"-rps", "50",
		"-concurrency", "2",
		"-timeout", "100ms",
		"-retries", "0",
		"-slo", "0.5",
	}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errBuf.String(), "SLO missed") {
		t.Fatalf("missing SLO message: %s", errBuf.String())
	}
}
