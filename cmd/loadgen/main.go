// Command loadgen is a closed-loop load generator for maxisd. It drives a
// target request rate from a fixed worker pool over a mix of seeded
// generator graphs, reuses a bounded seed pool to exercise the result
// cache, and reports throughput plus p50/p95/p99 latency.
//
// Requests go through the fault-tolerant internal/server/client: retries
// with backoff, optional hedging, and a circuit breaker that falls back to
// the degraded tier. The final report counts that activity, and -slo turns
// the run into an availability assertion: exit non-zero when the success
// ratio misses the target.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -rps 1000 -concurrency 32 \
//	        -duration 10s -repeat 0.9 -graphs gnp,cycle,tree -n 200 \
//	        -retries 2 -breaker 8 -slo 0.99
//
// With -mutate F in (0,1], the workload switches to the dynamic-graph API:
// one seeded graph is PUT as a shared handle, an F fraction of requests
// PATCH it with deterministic mutation batches, and the rest solve it by
// graph_ref — reads racing writes through cache invalidation and healing.
// The report then breaks latency percentiles out per op type (solve vs
// patch).
//
// With -targets U1,U2,... the generator drives a whole backend fleet:
// each request routes over a consistent-hash ring keyed by its graph-spec
// identity — the same discipline the cluster front tier uses — so repeat
// content exercises per-backend caches instead of smearing across the
// fleet. Mutation traffic (-mutate) stays pinned to the first target,
// since dynamic handles are per-node state.
//
// Without -slo the exit code is non-zero if any request failed, which
// makes a short loadgen burst a usable CI smoke assertion.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distmwis/internal/chaos"
	"distmwis/internal/cluster"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/server"
	"distmwis/internal/server/client"
	"distmwis/internal/stats"
)

type tally struct {
	sent, ok, failed, cached, shared, degraded, mutations atomic.Int64

	mu        sync.Mutex
	latencies map[string][]float64 // op type → seconds
}

func (t *tally) observe(op string, seconds float64) {
	t.mu.Lock()
	if t.latencies == nil {
		t.latencies = make(map[string][]float64)
	}
	t.latencies[op] = append(t.latencies[op], seconds)
	t.mu.Unlock()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://localhost:8080", "maxisd base URL")
		targets     = fs.String("targets", "", "comma-separated maxisd base URLs; overrides -addr and routes each request over a consistent-hash ring, mirroring the cluster front tier")
		rps         = fs.Float64("rps", 500, "target request rate (0 = as fast as the loop allows)")
		concurrency = fs.Int("concurrency", 16, "closed-loop worker count")
		duration    = fs.Duration("duration", 10*time.Second, "run length")
		repeat      = fs.Float64("repeat", 0.9, "fraction of requests drawn from the repeated-seed pool (cache exercise)")
		poolSize    = fs.Int("pool", 8, "size of the repeated-seed pool")
		graphs      = fs.String("graphs", "gnp,cycle,tree", "comma-separated generator mix")
		n           = fs.Int("n", 150, "nodes per generated graph")
		p           = fs.Float64("p", 0.05, "gnp edge probability")
		weights     = fs.String("weights", "poly2", "weight family for generated graphs")
		alg         = fs.String("alg", "goodnodes", "algorithm to request")
		batchFrac   = fs.Float64("batch", 0, "fraction of requests submitted at batch priority")
		seed        = fs.Uint64("seed", 1, "load-generator randomness seed")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-attempt HTTP timeout")
		retries     = fs.Int("retries", 2, "retries per request after the first attempt (-1 disables)")
		hedge       = fs.Duration("hedge", 0, "hedge a request after this delay (0 = off)")
		breaker     = fs.Int("breaker", 8, "consecutive failures that open the circuit breaker (0 = off)")
		cooldown    = fs.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before a probe")
		slo         = fs.Float64("slo", 0, "required success ratio in (0,1]; 0 keeps the legacy any-failure exit")
		mutate      = fs.Float64("mutate", 0, "fraction of requests that PATCH a shared dynamic graph handle (0 = static workload)")
		mutateOps   = fs.Int("mutate-ops", 4, "edge/weight operations per mutation PATCH")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *concurrency < 1 {
		fmt.Fprintln(stderr, "loadgen: -concurrency must be positive")
		return 1
	}
	if *repeat < 0 || *repeat > 1 || *batchFrac < 0 || *batchFrac > 1 {
		fmt.Fprintln(stderr, "loadgen: -repeat and -batch must be in [0,1]")
		return 1
	}
	if *slo < 0 || *slo > 1 {
		fmt.Fprintln(stderr, "loadgen: -slo must be in [0,1]")
		return 1
	}
	if *mutate < 0 || *mutate > 1 {
		fmt.Fprintln(stderr, "loadgen: -mutate must be in [0,1]")
		return 1
	}
	if *mutate > 0 && *mutateOps < 1 {
		fmt.Fprintln(stderr, "loadgen: -mutate-ops must be positive")
		return 1
	}
	kinds := strings.Split(*graphs, ",")
	for i := range kinds {
		kinds[i] = strings.TrimSpace(kinds[i])
	}

	// One retrying client per target. With -targets, requests route over
	// the same consistent-hash discipline the cluster front tier uses, so
	// repeat content lands on the backend whose cache already holds it.
	bases := []string{*addr}
	if *targets != "" {
		bases = bases[:0]
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				bases = append(bases, u)
			}
		}
		if len(bases) == 0 {
			fmt.Fprintln(stderr, "loadgen: -targets holds no URLs")
			return 1
		}
	}
	clients := make(map[string]*client.Client, len(bases))
	for _, base := range bases {
		clients[base] = client.New(base, client.Options{
			Timeout:          *timeout,
			MaxRetries:       *retries,
			HedgeAfter:       *hedge,
			Seed:             *seed,
			BreakerThreshold: *breaker,
			BreakerCooldown:  *cooldown,
		})
	}
	ring := cluster.NewRing(128)
	ring.Set(bases)
	pick := func(key string) *client.Client {
		member, _ := ring.Lookup(key) // ring is never empty here
		return clients[member]
	}
	// Mutation traffic pins to one backend: the shared handle lives where
	// it was PUT, and handles are per-node state, not fleet state.
	cl := clients[bases[0]]
	var t tally
	// Dynamic-graph mode: all traffic targets one shared handle — the
	// -mutate fraction PATCHes it with deterministic chaos storm batches,
	// the rest solve it by reference. The original PUT hash keeps resolving
	// through every mutation (handle aliasing), so workers never coordinate
	// on the moving content hash.
	var refHash string
	var storm *chaos.Injector
	var stormSeq atomic.Int64
	if *mutate > 0 {
		g := gen.Weighted(gen.GNP(*n, *p, *seed), gen.PolyWeights(2), *seed)
		var doc bytes.Buffer
		if err := g.WriteJSON(&doc); err != nil {
			fmt.Fprintf(stderr, "loadgen: encode seed graph: %v\n", err)
			return 1
		}
		put, err := cl.PutGraph(context.Background(), doc.Bytes())
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: PUT seed graph: %v\n", err)
			return 1
		}
		refHash = put.Hash
		storm = chaos.NewInjector(chaos.Schedule{Seed: *seed, StormEvery: 1, StormOps: *mutateOps})
	}
	// Rate pacing: a token channel fed at the target rate. Closed-loop:
	// when the server lags, tokens back up to the channel bound and the
	// offered rate drops instead of piling unbounded requests.
	var tokens chan struct{}
	stopFill := make(chan struct{})
	if *rps > 0 {
		// Sub-millisecond tickers lose ticks under load, so pace in batches:
		// tick no faster than every 2ms and emit enough tokens per tick to
		// hold the target rate.
		interval := time.Duration(float64(time.Second) / *rps)
		batch := 1
		if minTick := 2 * time.Millisecond; interval < minTick {
			batch = int(math.Ceil(float64(minTick) / float64(interval)))
			interval = time.Duration(float64(time.Second) * float64(batch) / *rps)
		}
		tokens = make(chan struct{}, *concurrency+batch)
		for i := 0; i < batch; i++ {
			tokens <- struct{}{} // prime one batch so the ramp doesn't undershoot
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			begin := time.Now()
			issued := int64(batch)
			// After a stall (GC pause, server hiccup, laptop sleep) the
			// drift-corrected top-up would otherwise dump the entire missed
			// backlog at once; cap the catch-up burst so recovery ramps at a
			// bounded multiple of the steady-state batch instead of hammering
			// a server that just came back.
			maxBurst := int64(2 * batch)
			for {
				select {
				case <-tick.C:
					// Time-based top-up rather than per-tick batches: ticker
					// drift would otherwise shave a few percent off the rate.
					due := int64(*rps*time.Since(begin).Seconds()) + int64(batch)
					if due-issued > maxBurst {
						issued = due - maxBurst // forgive the stalled backlog
					}
					for issued < due {
						select {
						case tokens <- struct{}{}:
							issued++
						default: // workers saturated; shed the backlog
							issued = due
						}
					}
				case <-stopFill:
					return
				}
			}
		}()
	}

	stop := make(chan struct{})
	time.AfterFunc(*duration, func() { close(stop) })
	var wg sync.WaitGroup
	var uniqueSeed atomic.Uint64
	uniqueSeed.Store(1_000_000) // disjoint from the repeated pool

	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(*seed, uint64(workerID)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tokens != nil {
					select {
					case <-tokens:
					case <-stop:
						return
					}
				}
				if refHash != "" {
					if rng.Float64() < *mutate {
						issuePatch(cl, refHash, stormEdit(storm.Storm(stormSeq.Add(1), *n)), &t)
					} else {
						req := server.SolveRequest{GraphRef: refHash, Alg: *alg, Seed: 1 + uint64(rng.IntN(*poolSize))}
						issue(cl, req, &t)
					}
					continue
				}
				req := server.SolveRequest{Alg: *alg}
				kind := kinds[rng.IntN(len(kinds))]
				gs := server.GenSpec{Kind: kind, N: *n, P: *p, Weights: *weights}
				if kind == "cycle" || kind == "path" || kind == "star" {
					gs.P = 0
				}
				if rng.Float64() < *repeat {
					gs.Seed = 1 + uint64(rng.IntN(*poolSize))
				} else {
					gs.Seed = uniqueSeed.Add(1)
				}
				req.Gen = &gs
				req.Seed = gs.Seed
				if rng.Float64() < *batchFrac {
					req.Priority = "batch"
				}
				// Route by the content key (spec identity) so repeats of a
				// pooled seed always hit the same backend's cache.
				issue(pick(fmt.Sprintf("%s|%d|%g|%s|%d", kind, gs.N, gs.P, gs.Weights, gs.Seed)), req, &t)
			}
		}(w)
	}
	wg.Wait()
	close(stopFill)
	elapsed := time.Since(start)

	var cs client.Stats
	for _, c := range clients {
		s := c.Stats()
		cs.Attempts += s.Attempts
		cs.Retries += s.Retries
		cs.Hedges += s.Hedges
		cs.BreakerOpens += s.BreakerOpens
		cs.Fallbacks += s.Fallbacks
	}
	report(stdout, &t, cs, elapsed)
	sent, failed := t.sent.Load(), t.failed.Load()
	if *slo > 0 {
		ratio := 0.0
		if sent > 0 {
			ratio = float64(t.ok.Load()) / float64(sent)
		}
		if ratio < *slo {
			fmt.Fprintf(stderr, "loadgen: SLO missed: success ratio %.4f < %.4f (%d requests failed)\n",
				ratio, *slo, failed)
			return 1
		}
		return 0
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "loadgen: %d requests failed\n", failed)
		return 1
	}
	return 0
}

func issue(cl *client.Client, req server.SolveRequest, t *tally) {
	t.sent.Add(1)
	reqStart := time.Now()
	resp, err := cl.Solve(context.Background(), req)
	if err != nil || resp.Status != "done" {
		t.failed.Add(1)
		return
	}
	t.observe("solve", time.Since(reqStart).Seconds())
	t.ok.Add(1)
	if resp.Cached {
		t.cached.Add(1)
	}
	if resp.Shared {
		t.shared.Add(1)
	}
	if resp.Degraded {
		t.degraded.Add(1)
	}
}

// issuePatch sends one mutation through the retrying client and books it
// under the "patch" latency label, keeping read and write tails separately
// visible in the report.
func issuePatch(cl *client.Client, hash string, edit graph.Edit, t *tally) {
	t.sent.Add(1)
	reqStart := time.Now()
	resp, err := cl.PatchGraph(context.Background(), hash, edit)
	if err != nil || resp.Error != "" {
		t.failed.Add(1)
		return
	}
	t.observe("patch", time.Since(reqStart).Seconds())
	t.ok.Add(1)
	t.mutations.Add(1)
}

// stormEdit maps a chaos storm batch onto the PATCH wire format.
func stormEdit(ops []chaos.MutationOp) graph.Edit {
	var e graph.Edit
	for _, op := range ops {
		switch op.Kind {
		case "add":
			e.AddEdges = append(e.AddEdges, [2]int32{op.U, op.V})
		case "remove":
			e.RemoveEdges = append(e.RemoveEdges, [2]int32{op.U, op.V})
		case "weight":
			e.Weights = append(e.Weights, graph.WeightUpdate{V: op.U, W: op.W})
		}
	}
	return e
}

func report(w io.Writer, t *tally, cs client.Stats, elapsed time.Duration) {
	t.mu.Lock()
	byOp := make(map[string][]float64, len(t.latencies))
	for op, lat := range t.latencies {
		byOp[op] = append([]float64(nil), lat...)
	}
	t.mu.Unlock()
	sent := t.sent.Load()
	fmt.Fprintf(w, "loadgen: %d requests in %.2fs → %.1f req/s\n",
		sent, elapsed.Seconds(), float64(sent)/elapsed.Seconds())
	fmt.Fprintf(w, "  ok=%d failed=%d cached=%d shared=%d degraded=%d mutations=%d\n",
		t.ok.Load(), t.failed.Load(), t.cached.Load(), t.shared.Load(), t.degraded.Load(), t.mutations.Load())
	fmt.Fprintf(w, "  client: retries=%d hedges=%d breaker_opens=%d fallbacks=%d\n",
		cs.Retries, cs.Hedges, cs.BreakerOpens, cs.Fallbacks)
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	if len(ops) == 0 {
		ops = append(ops, "solve") // an all-failure run still prints the line
		byOp["solve"] = nil
	}
	for _, op := range ops {
		lat := byOp[op]
		sort.Float64s(lat)
		ms := func(q float64) float64 {
			if len(lat) == 0 {
				return 0
			}
			return stats.Quantile(lat, q) * 1000
		}
		fmt.Fprintf(w, "  latency ms [%s]: p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
			op, ms(0.50), ms(0.95), ms(0.99), ms(1.0))
	}
}
