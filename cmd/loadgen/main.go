// Command loadgen is a closed-loop load generator for maxisd. It drives a
// target request rate from a fixed worker pool over a mix of seeded
// generator graphs, reuses a bounded seed pool to exercise the result
// cache, and reports throughput plus p50/p95/p99 latency.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -rps 1000 -concurrency 32 \
//	        -duration 10s -repeat 0.9 -graphs gnp,cycle,tree -n 200
//
// The exit code is non-zero if any request failed, which makes a short
// loadgen burst a usable CI smoke assertion.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distmwis/internal/stats"
)

type genSpec struct {
	Kind    string  `json:"kind"`
	N       int     `json:"n"`
	P       float64 `json:"p,omitempty"`
	Weights string  `json:"weights,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

type solveRequest struct {
	Gen      *genSpec `json:"gen"`
	Alg      string   `json:"alg"`
	Seed     uint64   `json:"seed"`
	Priority string   `json:"priority,omitempty"`
}

type solveResponse struct {
	Status   string `json:"status"`
	Weight   int64  `json:"weight"`
	Cached   bool   `json:"cached"`
	Shared   bool   `json:"shared"`
	Degraded bool   `json:"degraded"`
	Error    string `json:"error"`
}

type tally struct {
	sent, ok, failed, cached, shared, degraded atomic.Int64

	mu        sync.Mutex
	latencies []float64 // seconds
}

func (t *tally) observe(seconds float64) {
	t.mu.Lock()
	t.latencies = append(t.latencies, seconds)
	t.mu.Unlock()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://localhost:8080", "maxisd base URL")
		rps         = fs.Float64("rps", 500, "target request rate (0 = as fast as the loop allows)")
		concurrency = fs.Int("concurrency", 16, "closed-loop worker count")
		duration    = fs.Duration("duration", 10*time.Second, "run length")
		repeat      = fs.Float64("repeat", 0.9, "fraction of requests drawn from the repeated-seed pool (cache exercise)")
		poolSize    = fs.Int("pool", 8, "size of the repeated-seed pool")
		graphs      = fs.String("graphs", "gnp,cycle,tree", "comma-separated generator mix")
		n           = fs.Int("n", 150, "nodes per generated graph")
		p           = fs.Float64("p", 0.05, "gnp edge probability")
		weights     = fs.String("weights", "poly2", "weight family for generated graphs")
		alg         = fs.String("alg", "goodnodes", "algorithm to request")
		batchFrac   = fs.Float64("batch", 0, "fraction of requests submitted at batch priority")
		seed        = fs.Uint64("seed", 1, "load-generator randomness seed")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *concurrency < 1 {
		fmt.Fprintln(stderr, "loadgen: -concurrency must be positive")
		return 1
	}
	if *repeat < 0 || *repeat > 1 || *batchFrac < 0 || *batchFrac > 1 {
		fmt.Fprintln(stderr, "loadgen: -repeat and -batch must be in [0,1]")
		return 1
	}
	kinds := strings.Split(*graphs, ",")
	for i := range kinds {
		kinds[i] = strings.TrimSpace(kinds[i])
	}

	client := &http.Client{Timeout: *timeout}
	var t tally
	// Rate pacing: a token channel fed at the target rate. Closed-loop:
	// when the server lags, tokens back up to the channel bound and the
	// offered rate drops instead of piling unbounded requests.
	var tokens chan struct{}
	stopFill := make(chan struct{})
	if *rps > 0 {
		// Sub-millisecond tickers lose ticks under load, so pace in batches:
		// tick no faster than every 2ms and emit enough tokens per tick to
		// hold the target rate.
		interval := time.Duration(float64(time.Second) / *rps)
		batch := 1
		if minTick := 2 * time.Millisecond; interval < minTick {
			batch = int(math.Ceil(float64(minTick) / float64(interval)))
			interval = time.Duration(float64(time.Second) * float64(batch) / *rps)
		}
		tokens = make(chan struct{}, *concurrency+batch)
		for i := 0; i < batch; i++ {
			tokens <- struct{}{} // prime one batch so the ramp doesn't undershoot
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			begin := time.Now()
			issued := int64(batch)
			for {
				select {
				case <-tick.C:
					// Time-based top-up rather than per-tick batches: ticker
					// drift would otherwise shave a few percent off the rate.
					due := int64(*rps*time.Since(begin).Seconds()) + int64(batch)
					for issued < due {
						select {
						case tokens <- struct{}{}:
							issued++
						default: // workers saturated; shed the backlog
							issued = due
						}
					}
				case <-stopFill:
					return
				}
			}
		}()
	}

	stop := make(chan struct{})
	time.AfterFunc(*duration, func() { close(stop) })
	var wg sync.WaitGroup
	var uniqueSeed atomic.Uint64
	uniqueSeed.Store(1_000_000) // disjoint from the repeated pool

	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(*seed, uint64(workerID)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tokens != nil {
					select {
					case <-tokens:
					case <-stop:
						return
					}
				}
				req := solveRequest{Alg: *alg}
				kind := kinds[rng.IntN(len(kinds))]
				gs := genSpec{Kind: kind, N: *n, P: *p, Weights: *weights}
				if kind == "cycle" || kind == "path" || kind == "star" {
					gs.P = 0
				}
				if rng.Float64() < *repeat {
					gs.Seed = 1 + uint64(rng.IntN(*poolSize))
				} else {
					gs.Seed = uniqueSeed.Add(1)
				}
				req.Gen = &gs
				req.Seed = gs.Seed
				if rng.Float64() < *batchFrac {
					req.Priority = "batch"
				}
				issue(client, *addr, req, &t)
			}
		}(w)
	}
	wg.Wait()
	close(stopFill)
	elapsed := time.Since(start)

	report(stdout, &t, elapsed)
	if t.failed.Load() > 0 {
		fmt.Fprintf(stderr, "loadgen: %d requests failed\n", t.failed.Load())
		return 1
	}
	return 0
}

func issue(client *http.Client, addr string, req solveRequest, t *tally) {
	body, err := json.Marshal(req)
	if err != nil {
		t.failed.Add(1)
		return
	}
	t.sent.Add(1)
	reqStart := time.Now()
	resp, err := client.Post(addr+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.failed.Add(1)
		return
	}
	defer resp.Body.Close()
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.failed.Add(1)
		return
	}
	t.observe(time.Since(reqStart).Seconds())
	if resp.StatusCode != http.StatusOK || sr.Status != "done" {
		t.failed.Add(1)
		return
	}
	t.ok.Add(1)
	if sr.Cached {
		t.cached.Add(1)
	}
	if sr.Shared {
		t.shared.Add(1)
	}
	if sr.Degraded {
		t.degraded.Add(1)
	}
}

func report(w io.Writer, t *tally, elapsed time.Duration) {
	t.mu.Lock()
	lat := append([]float64(nil), t.latencies...)
	t.mu.Unlock()
	sort.Float64s(lat)
	ms := func(q float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		return stats.Quantile(lat, q) * 1000
	}
	sent := t.sent.Load()
	fmt.Fprintf(w, "loadgen: %d requests in %.2fs → %.1f req/s\n",
		sent, elapsed.Seconds(), float64(sent)/elapsed.Seconds())
	fmt.Fprintf(w, "  ok=%d failed=%d cached=%d shared=%d degraded=%d\n",
		t.ok.Load(), t.failed.Load(), t.cached.Load(), t.shared.Load(), t.degraded.Load())
	fmt.Fprintf(w, "  latency ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		ms(0.50), ms(0.95), ms(0.99), ms(1.0))
}
