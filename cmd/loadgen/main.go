// Command loadgen is a closed-loop load generator for maxisd. It drives a
// target request rate from a fixed worker pool over a mix of seeded
// generator graphs, reuses a bounded seed pool to exercise the result
// cache, and reports throughput plus p50/p95/p99 latency.
//
// Requests go through the fault-tolerant internal/server/client: retries
// with backoff, optional hedging, and a circuit breaker that falls back to
// the degraded tier. The final report counts that activity, and -slo turns
// the run into an availability assertion: exit non-zero when the success
// ratio misses the target.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -rps 1000 -concurrency 32 \
//	        -duration 10s -repeat 0.9 -graphs gnp,cycle,tree -n 200 \
//	        -retries 2 -breaker 8 -slo 0.99
//
// Without -slo the exit code is non-zero if any request failed, which
// makes a short loadgen burst a usable CI smoke assertion.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distmwis/internal/server"
	"distmwis/internal/server/client"
	"distmwis/internal/stats"
)

type tally struct {
	sent, ok, failed, cached, shared, degraded atomic.Int64

	mu        sync.Mutex
	latencies []float64 // seconds
}

func (t *tally) observe(seconds float64) {
	t.mu.Lock()
	t.latencies = append(t.latencies, seconds)
	t.mu.Unlock()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://localhost:8080", "maxisd base URL")
		rps         = fs.Float64("rps", 500, "target request rate (0 = as fast as the loop allows)")
		concurrency = fs.Int("concurrency", 16, "closed-loop worker count")
		duration    = fs.Duration("duration", 10*time.Second, "run length")
		repeat      = fs.Float64("repeat", 0.9, "fraction of requests drawn from the repeated-seed pool (cache exercise)")
		poolSize    = fs.Int("pool", 8, "size of the repeated-seed pool")
		graphs      = fs.String("graphs", "gnp,cycle,tree", "comma-separated generator mix")
		n           = fs.Int("n", 150, "nodes per generated graph")
		p           = fs.Float64("p", 0.05, "gnp edge probability")
		weights     = fs.String("weights", "poly2", "weight family for generated graphs")
		alg         = fs.String("alg", "goodnodes", "algorithm to request")
		batchFrac   = fs.Float64("batch", 0, "fraction of requests submitted at batch priority")
		seed        = fs.Uint64("seed", 1, "load-generator randomness seed")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-attempt HTTP timeout")
		retries     = fs.Int("retries", 2, "retries per request after the first attempt (-1 disables)")
		hedge       = fs.Duration("hedge", 0, "hedge a request after this delay (0 = off)")
		breaker     = fs.Int("breaker", 8, "consecutive failures that open the circuit breaker (0 = off)")
		cooldown    = fs.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before a probe")
		slo         = fs.Float64("slo", 0, "required success ratio in (0,1]; 0 keeps the legacy any-failure exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *concurrency < 1 {
		fmt.Fprintln(stderr, "loadgen: -concurrency must be positive")
		return 1
	}
	if *repeat < 0 || *repeat > 1 || *batchFrac < 0 || *batchFrac > 1 {
		fmt.Fprintln(stderr, "loadgen: -repeat and -batch must be in [0,1]")
		return 1
	}
	if *slo < 0 || *slo > 1 {
		fmt.Fprintln(stderr, "loadgen: -slo must be in [0,1]")
		return 1
	}
	kinds := strings.Split(*graphs, ",")
	for i := range kinds {
		kinds[i] = strings.TrimSpace(kinds[i])
	}

	cl := client.New(*addr, client.Options{
		Timeout:          *timeout,
		MaxRetries:       *retries,
		HedgeAfter:       *hedge,
		Seed:             *seed,
		BreakerThreshold: *breaker,
		BreakerCooldown:  *cooldown,
	})
	var t tally
	// Rate pacing: a token channel fed at the target rate. Closed-loop:
	// when the server lags, tokens back up to the channel bound and the
	// offered rate drops instead of piling unbounded requests.
	var tokens chan struct{}
	stopFill := make(chan struct{})
	if *rps > 0 {
		// Sub-millisecond tickers lose ticks under load, so pace in batches:
		// tick no faster than every 2ms and emit enough tokens per tick to
		// hold the target rate.
		interval := time.Duration(float64(time.Second) / *rps)
		batch := 1
		if minTick := 2 * time.Millisecond; interval < minTick {
			batch = int(math.Ceil(float64(minTick) / float64(interval)))
			interval = time.Duration(float64(time.Second) * float64(batch) / *rps)
		}
		tokens = make(chan struct{}, *concurrency+batch)
		for i := 0; i < batch; i++ {
			tokens <- struct{}{} // prime one batch so the ramp doesn't undershoot
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			begin := time.Now()
			issued := int64(batch)
			// After a stall (GC pause, server hiccup, laptop sleep) the
			// drift-corrected top-up would otherwise dump the entire missed
			// backlog at once; cap the catch-up burst so recovery ramps at a
			// bounded multiple of the steady-state batch instead of hammering
			// a server that just came back.
			maxBurst := int64(2 * batch)
			for {
				select {
				case <-tick.C:
					// Time-based top-up rather than per-tick batches: ticker
					// drift would otherwise shave a few percent off the rate.
					due := int64(*rps*time.Since(begin).Seconds()) + int64(batch)
					if due-issued > maxBurst {
						issued = due - maxBurst // forgive the stalled backlog
					}
					for issued < due {
						select {
						case tokens <- struct{}{}:
							issued++
						default: // workers saturated; shed the backlog
							issued = due
						}
					}
				case <-stopFill:
					return
				}
			}
		}()
	}

	stop := make(chan struct{})
	time.AfterFunc(*duration, func() { close(stop) })
	var wg sync.WaitGroup
	var uniqueSeed atomic.Uint64
	uniqueSeed.Store(1_000_000) // disjoint from the repeated pool

	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(*seed, uint64(workerID)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tokens != nil {
					select {
					case <-tokens:
					case <-stop:
						return
					}
				}
				req := server.SolveRequest{Alg: *alg}
				kind := kinds[rng.IntN(len(kinds))]
				gs := server.GenSpec{Kind: kind, N: *n, P: *p, Weights: *weights}
				if kind == "cycle" || kind == "path" || kind == "star" {
					gs.P = 0
				}
				if rng.Float64() < *repeat {
					gs.Seed = 1 + uint64(rng.IntN(*poolSize))
				} else {
					gs.Seed = uniqueSeed.Add(1)
				}
				req.Gen = &gs
				req.Seed = gs.Seed
				if rng.Float64() < *batchFrac {
					req.Priority = "batch"
				}
				issue(cl, req, &t)
			}
		}(w)
	}
	wg.Wait()
	close(stopFill)
	elapsed := time.Since(start)

	report(stdout, &t, cl.Stats(), elapsed)
	sent, failed := t.sent.Load(), t.failed.Load()
	if *slo > 0 {
		ratio := 0.0
		if sent > 0 {
			ratio = float64(t.ok.Load()) / float64(sent)
		}
		if ratio < *slo {
			fmt.Fprintf(stderr, "loadgen: SLO missed: success ratio %.4f < %.4f (%d requests failed)\n",
				ratio, *slo, failed)
			return 1
		}
		return 0
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "loadgen: %d requests failed\n", failed)
		return 1
	}
	return 0
}

func issue(cl *client.Client, req server.SolveRequest, t *tally) {
	t.sent.Add(1)
	reqStart := time.Now()
	resp, err := cl.Solve(context.Background(), req)
	if err != nil || resp.Status != "done" {
		t.failed.Add(1)
		return
	}
	t.observe(time.Since(reqStart).Seconds())
	t.ok.Add(1)
	if resp.Cached {
		t.cached.Add(1)
	}
	if resp.Shared {
		t.shared.Add(1)
	}
	if resp.Degraded {
		t.degraded.Add(1)
	}
}

func report(w io.Writer, t *tally, cs client.Stats, elapsed time.Duration) {
	t.mu.Lock()
	lat := append([]float64(nil), t.latencies...)
	t.mu.Unlock()
	sort.Float64s(lat)
	ms := func(q float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		return stats.Quantile(lat, q) * 1000
	}
	sent := t.sent.Load()
	fmt.Fprintf(w, "loadgen: %d requests in %.2fs → %.1f req/s\n",
		sent, elapsed.Seconds(), float64(sent)/elapsed.Seconds())
	fmt.Fprintf(w, "  ok=%d failed=%d cached=%d shared=%d degraded=%d\n",
		t.ok.Load(), t.failed.Load(), t.cached.Load(), t.shared.Load(), t.degraded.Load())
	fmt.Fprintf(w, "  client: retries=%d hedges=%d breaker_opens=%d fallbacks=%d\n",
		cs.Retries, cs.Hedges, cs.BreakerOpens, cs.Fallbacks)
	fmt.Fprintf(w, "  latency ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		ms(0.50), ms(0.95), ms(0.99), ms(1.0))
}
