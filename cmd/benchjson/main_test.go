package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: distmwis
cpu: Fake CPU @ 3.00GHz
BenchmarkE13Headline-8   	      12	  98765432 ns/op	  123456 B/op	     789 allocs/op
BenchmarkServeColdVsCacheHit/cold-8         	      50	   2000000 ns/op	 40000 B/op	 300 allocs/op
BenchmarkServeColdVsCacheHit/cache_hit-8    	  100000	     12345 ns/op	   100 B/op	       2 allocs/op
BenchmarkMessageDelivery-8	     300	   4567890 ns/op	        37.5 rounds/op	  999 B/op	 42 allocs/op
PASS
ok  	distmwis	12.345s
`

func TestParseSample(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Package != "distmwis" {
		t.Fatalf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	first := rep.Benchmarks[0]
	if first.Name != "BenchmarkE13Headline" || first.Procs != 8 ||
		first.Iterations != 12 || first.NsPerOp != 98765432 {
		t.Fatalf("first = %+v", first)
	}
	if first.BytesPerOp == nil || *first.BytesPerOp != 123456 ||
		first.AllocsPerOp == nil || *first.AllocsPerOp != 789 {
		t.Fatalf("first memory stats = %+v", first)
	}
	hit := rep.Benchmarks[2]
	if hit.Name != "BenchmarkServeColdVsCacheHit/cache_hit" || hit.NsPerOp != 12345 {
		t.Fatalf("cache hit = %+v", hit)
	}
	msg := rep.Benchmarks[3]
	if msg.Extra["rounds/op"] != 37.5 {
		t.Fatalf("custom metric lost: %+v", msg)
	}
}

// TestParseAllocsLessLines pins the fix for the silent-drop bug: output
// from `go test -bench` without -benchmem has no B/op or allocs/op columns,
// and a trailing annotation after the valid pairs used to void the whole
// line. Such lines must keep their ns/op (and any custom metrics already
// parsed), with the memory fields simply absent.
func TestParseAllocsLessLines(t *testing.T) {
	const in = `goos: linux
BenchmarkPlain-4      	     100	   1234567 ns/op
BenchmarkAnnotated-4  	      50	   7654321 ns/op	        9.000 rounds/op	(truncated run)
BenchmarkNoPairs-4    	      10	garbled
PASS
`
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	plain := rep.Benchmarks[0]
	if plain.Name != "BenchmarkPlain" || plain.NsPerOp != 1234567 {
		t.Fatalf("plain = %+v", plain)
	}
	if plain.BytesPerOp != nil || plain.AllocsPerOp != nil {
		t.Fatalf("allocs-less line grew memory stats: %+v", plain)
	}
	ann := rep.Benchmarks[1]
	if ann.NsPerOp != 7654321 || ann.Extra["rounds/op"] != 9 {
		t.Fatalf("salvaged prefix wrong: %+v", ann)
	}
}

// TestRunNothingParsesFails covers the exit-code half of the bug: input
// full of Benchmark-prefixed lines none of which yields a result must exit
// non-zero, never write an empty report with status 0.
func TestRunNothingParsesFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	in := "BenchmarkBroken-4 notanumber 12 ns/op\nBenchmarkWorse xyz\nPASS\n"
	if code := run(nil, strings.NewReader(in), &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 when no line parses", code)
	}
	if stdout.Len() != 0 {
		t.Fatalf("report written despite empty parse: %s", stdout.String())
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	rep, err := Parse(strings.NewReader("hello\nBenchmarkBad notanumber ns/op\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("garbage parsed as benchmarks: %+v", rep.Benchmarks)
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-o", out}, strings.NewReader(sample), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("round-tripped %d benchmarks, want 4", len(rep.Benchmarks))
	}
}

func TestRunEmptyInputFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader("no benchmarks here\n"), &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 on empty input", code)
	}
	if !strings.Contains(stderr.String(), "no benchmark lines") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}
