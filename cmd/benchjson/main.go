// Command benchjson converts `go test -bench -benchmem` text output into a
// machine-readable JSON report, so benchmark numbers can be archived per
// PR and diffed across revisions without scraping test logs.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson -o BENCH_6.json
//
// The report records, per benchmark: iterations, ns/op, B/op and
// allocs/op (when -benchmem was set), plus any custom unit metrics
// (e.g. rounds/op) the benchmark reported.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, parsed.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when the line carried none).
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom ReportMetric units, e.g. {"rounds/op": 12}.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the file benchjson writes.
type Report struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	report, err := Parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines in input")
		return 1
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "benchjson: %d benchmarks parsed\n", len(report.Benchmarks))
	return 0
}

// Parse reads `go test -bench` output. Non-benchmark lines (PASS, ok,
// logging) are skipped; header lines (goos/goarch/pkg/cpu) annotate the
// report.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			// Multi-package runs emit several pkg: headers; keep them all,
			// comma-joined, so the report names everything it covers.
			pkg := strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if rep.Package == "" {
				rep.Package = pkg
			} else if !strings.Contains(rep.Package, pkg) {
				rep.Package += "," + pkg
			}
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8   120   9876543 ns/op   456 B/op   7 allocs/op   3.5 rounds/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	res := Result{Procs: 1}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if procs, err := strconv.Atoi(name[i+1:]); err == nil {
			res.Procs = procs
			name = name[:i]
		}
	}
	res.Name = name
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters

	// The remainder is (value, unit) pairs. A malformed pair ends the scan
	// but keeps what already parsed: dropping the whole line here is how
	// this tool used to lose every benchmark that lacked -benchmem columns
	// and carried a trailing annotation — the ns/op figure was valid, yet
	// the line vanished and the report could come out empty. A line only
	// fails as a whole when no ns/op pair was recovered.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			b := v
			res.BytesPerOp = &b
		case "allocs/op":
			a := v
			res.AllocsPerOp = &a
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[unit] = v
		}
	}
	return res, sawNs
}
