package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestExperimentsCLIMarkdown(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-quick", "-run", "E3"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	for _, want := range []string{"### E3", "Claim (paper)", "| graph |"} {
		if !strings.Contains(s, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	if !strings.Contains(errBuf.String(), "running E3") {
		t.Error("progress log missing")
	}
}

func TestExperimentsCLICSV(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-quick", "-run", "E3", "-format", "csv"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "# E3 —") || !strings.Contains(out.String(), "graph,") {
		t.Errorf("csv output malformed:\n%s", out.String())
	}
}

func TestExperimentsCLIErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "E99"}, &out, &errBuf); code == 0 {
		t.Error("expected failure for unknown experiment")
	}
	if code := run([]string{"-bogus"}, &out, &errBuf); code == 0 {
		t.Error("expected failure for unknown flag")
	}
	if code := run([]string{"-o", "/nonexistent-dir/x.md", "-run", "E3", "-quick"}, &out, &errBuf); code == 0 {
		t.Error("expected failure for unwritable output path")
	}
}
