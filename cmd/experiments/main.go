// Command experiments regenerates the reproduction tables E1–E13 (see
// DESIGN.md §2 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-run E4,E5] [-quick] [-seed N] [-format markdown|csv] [-o FILE]
//
// With no -run flag every experiment runs in ID order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"distmwis/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList   = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		quick     = fs.Bool("quick", false, "smaller sweeps and trial counts")
		seed      = fs.Uint64("seed", 1, "root random seed")
		format    = fs.String("format", "markdown", "output format: markdown or csv")
		outPath   = fs.String("o", "", "output file (default: stdout)")
		faultRate = fs.Float64("fault-rate", 0, "E18: replace the loss sweep with this single loss rate")
		faultSeed = fs.Uint64("fault-seed", 0, "E18: adversary seed (0 = derive from -seed)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ids := experiments.IDs()
	if *runList != "" {
		ids = strings.Split(*runList, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	var out io.Writer = stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, FaultRate: *faultRate, FaultSeed: *faultSeed}
	for _, id := range ids {
		fmt.Fprintf(stderr, "running %s — %s ...\n", id, experiments.Title(id))
		table, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
		switch *format {
		case "csv":
			fmt.Fprintf(out, "# %s — %s\n%s\n", table.ID, table.Title, table.CSV())
		default:
			fmt.Fprint(out, table.Markdown())
		}
	}
	return 0
}
