// Command maxisd is the MaxIS service daemon: it exposes the solvers of
// internal/maxis over an HTTP JSON API with a batching scheduler, a
// content-addressed result cache, admission control and Prometheus-style
// metrics (see internal/server).
//
// Endpoints:
//
//	POST /v1/solve      solve a graph (sync, or async with "async": true)
//	GET  /v1/jobs/{id}  poll an async job
//	GET  /healthz       liveness (200 while the process runs)
//	GET  /readyz        readiness (503 once draining)
//	GET  /metrics       Prometheus text exposition
//
// Usage:
//
//	maxisd -addr :8080 -workers 4 -cache-bytes 67108864 -rate 2000
//
// SIGINT/SIGTERM start a graceful shutdown: new requests get 503, accepted
// jobs finish, and the process exits within -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distmwis/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run wires flags into a server and serves until a signal or until ready
// (a test channel) is told to stop. ready, when non-nil, receives the bound
// address once the listener is up.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("maxisd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 4, "scheduler worker pool size")
		solveWorkers = fs.Int("solve-workers", 1, "congest engine parallelism per solve")
		queueDepth   = fs.Int("queue", 256, "per-priority submission queue depth")
		cacheBytes   = fs.Int64("cache-bytes", 64<<20, "result cache byte budget (negative disables)")
		rate         = fs.Float64("rate", 0, "token-bucket admission rate in req/s (0 = unlimited)")
		burst        = fs.Int("burst", 0, "token-bucket burst (default 2×rate)")
		shedDepth    = fs.Int("shed-depth", 0, "queue depth beyond which requests degrade to the greedy tier (default queue/2)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *solveWorkers < 1 || *queueDepth < 1 {
		fmt.Fprintln(stderr, "maxisd: -workers, -solve-workers and -queue must be positive")
		return 1
	}

	s := server.New(server.Options{
		Workers:      *workers,
		SolveWorkers: *solveWorkers,
		QueueDepth:   *queueDepth,
		CacheBytes:   *cacheBytes,
		Rate:         *rate,
		Burst:        *burst,
		ShedDepth:    *shedDepth,
		DrainTimeout: *drainTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	ln, err := newListener(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "maxisd: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "maxisd: serving on %s (workers=%d cache=%dB rate=%g)\n",
		ln.Addr(), *workers, *cacheBytes, *rate)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(stdout, "maxisd: shutdown signal received, draining")
	case err := <-errCh:
		fmt.Fprintf(stderr, "maxisd: serve: %v\n", err)
		return 1
	}

	// Stop accepting at the service level first so /readyz flips and new
	// solves are rejected while the listener finishes in-flight handlers.
	s.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "maxisd: http shutdown: %v\n", err)
	}
	if err := s.Drain(); err != nil {
		fmt.Fprintf(stderr, "maxisd: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "maxisd: drained, exiting")
	return 0
}
