// Command maxisd is the MaxIS service daemon: it exposes the solvers of
// internal/maxis over an HTTP JSON API with a batching scheduler, a
// content-addressed result cache, admission control and Prometheus-style
// metrics (see internal/server).
//
// Endpoints:
//
//	POST  /v1/solve            solve a graph (sync, async, or by graph_ref)
//	POST  /v1/cluster/solve    fan a solve out over the -backends fleet (with -cluster)
//	GET   /v1/jobs/{id}        poll an async job
//	PUT   /v1/graph            upload a dynamic graph handle
//	GET   /v1/graph/{hash}     inspect a handle (any hash it has ever had)
//	PATCH /v1/graph/{hash}     mutate a handle (edge add/remove, weights)
//	GET   /v1/answers/{key}    watch a published answer's quality climb
//	GET   /healthz             liveness (200 while the process runs)
//	GET   /readyz              readiness (503 once draining, restart budget blown, or saturated)
//	GET   /metrics             Prometheus text exposition
//
// Usage:
//
//	maxisd -addr :8080 -workers 4 -cache-bytes 67108864 -rate 2000 \
//	       -journal /var/lib/maxisd/jobs.wal
//
// -journal enables the write-ahead request journal: accepted async jobs
// are durably logged before the 202 and replayed deterministically on the
// next boot if the process dies mid-solve. -graph-journal does the same for
// graph mutations: every accepted PUT/PATCH is durable before its ack and
// replayed (hash-verified) on boot. -repair-interval and -repair-budget
// tune the background tier that upgrades degraded answers. -chaos installs
// the seeded fault injector of internal/chaos for soak testing.
//
// -cluster turns the node into a sharded-serving front tier: POST
// /v1/cluster/solve partitions the request's graph (internal/partition),
// fans the parts out over the -backends fleet, reconciles cut-edge
// conflicts and returns a verified independent set with per-partition
// provenance. The node's own single-node API stays fully available — the
// front tier is an addition, not a mode switch.
//
// SIGINT and SIGTERM are equivalent: both start a graceful shutdown — new
// requests get 503, accepted jobs finish, and the process exits within
// -drain-timeout, logging the drain outcome.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"distmwis/internal/chaos"
	"distmwis/internal/cluster"
	"distmwis/internal/server"
)

// splitCSV splits a comma-separated list, trimming whitespace and dropping
// empty entries.
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run wires flags into a server and serves until a signal or until ready
// (a test channel) is told to stop. ready, when non-nil, receives the bound
// address once the listener is up.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("maxisd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 4, "scheduler worker pool size")
		solveWorkers = fs.Int("solve-workers", 1, "congest engine parallelism per solve")
		queueDepth   = fs.Int("queue", 256, "per-priority submission queue depth")
		cacheBytes   = fs.Int64("cache-bytes", 64<<20, "result cache byte budget (negative disables)")
		rate         = fs.Float64("rate", 0, "token-bucket admission rate in req/s (0 = unlimited)")
		burst        = fs.Int("burst", 0, "token-bucket burst (default 2×rate)")
		shedDepth    = fs.Int("shed-depth", 0, "queue depth beyond which requests degrade to the greedy tier (default queue/2)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		restarts     = fs.Int("restart-budget", 32, "worker restarts beyond which /readyz degrades (negative disables)")
		journal      = fs.String("journal", "", "write-ahead journal path for accepted async jobs (empty disables)")
		graphJournal = fs.String("graph-journal", "", "write-ahead journal path for dynamic graph mutations (empty disables)")
		repairEvery  = fs.Duration("repair-interval", 0, "background repair tier tick interval (0 = default 50ms)")
		repairBudget = fs.Int("repair-budget", 0, "re-admission examinations per repair tick (0 = default 4096)")
		chaosSpec    = fs.String("chaos", "", "chaos schedule, e.g. seed=7,err=0.05,latency=0.1:20ms,panic-every=40 (empty disables)")
		fsyncWindow  = fs.Duration("graph-fsync-window", 0, "graph journal group-commit window (0 = default 2ms, negative = sync per record)")
		fsyncBatch   = fs.Int("graph-fsync-batch", 0, "graph journal records forcing an early group-commit sync (0 = default 32)")
		planOpsPerMS = fs.Int64("plan-ops-per-ms", 0, "planner work-unit throughput for alg=auto deadline budgets (0 = default)")
		clusterMode  = fs.Bool("cluster", false, "front a backend fleet: fan solves out over -backends via POST /v1/cluster/solve")
		backendsCSV  = fs.String("backends", "", "comma-separated backend base URLs for -cluster, e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
		partitions   = fs.Int("partitions", 0, "parts per fanned-out cluster solve (0 = backend count)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *solveWorkers < 1 || *queueDepth < 1 {
		fmt.Fprintln(stderr, "maxisd: -workers, -solve-workers and -queue must be positive")
		return 1
	}
	if *repairEvery < 0 || *repairBudget < 0 {
		fmt.Fprintln(stderr, "maxisd: -repair-interval and -repair-budget must be non-negative")
		return 1
	}
	if *clusterMode && *backendsCSV == "" {
		fmt.Fprintln(stderr, "maxisd: -cluster requires -backends")
		return 1
	}
	if !*clusterMode && (*backendsCSV != "" || *partitions != 0) {
		fmt.Fprintln(stderr, "maxisd: -backends and -partitions require -cluster")
		return 1
	}
	if *partitions < 0 {
		fmt.Fprintln(stderr, "maxisd: -partitions must be non-negative")
		return 1
	}
	var injector *chaos.Injector
	if *chaosSpec != "" {
		sched, err := chaos.ParseSchedule(*chaosSpec)
		if err != nil {
			fmt.Fprintf(stderr, "maxisd: -chaos: %v\n", err)
			return 1
		}
		injector = chaos.NewInjector(sched)
		fmt.Fprintf(stdout, "maxisd: chaos injection armed (%s)\n", sched.String())
	}

	opts := server.Options{
		Workers:                 *workers,
		SolveWorkers:            *solveWorkers,
		QueueDepth:              *queueDepth,
		CacheBytes:              *cacheBytes,
		Rate:                    *rate,
		Burst:                   *burst,
		ShedDepth:               *shedDepth,
		PlannerOpsPerMS:         *planOpsPerMS,
		DrainTimeout:            *drainTimeout,
		RestartBudget:           *restarts,
		Chaos:                   injector,
		RepairInterval:          *repairEvery,
		RepairBudget:            *repairBudget,
		GraphJournalGroupWindow: *fsyncWindow,
		GraphJournalGroupBatch:  *fsyncBatch,
	}
	var coord *cluster.Coordinator
	if *clusterMode {
		backends := splitCSV(*backendsCSV)
		var err error
		coord, err = cluster.New(backends, cluster.Options{Partitions: *partitions})
		if err != nil {
			fmt.Fprintf(stderr, "maxisd: cluster: %v\n", err)
			return 1
		}
		opts.Cluster = coord.Handler()
		opts.ClusterMetrics = coord.WriteMetrics
		coord.Start()
		defer coord.Stop()
		fmt.Fprintf(stdout, "maxisd: cluster front tier armed (%d backends)\n", len(backends))
	}
	s := server.New(opts)
	if *journal != "" {
		recovered, err := s.OpenJournal(*journal)
		if err != nil {
			fmt.Fprintf(stderr, "maxisd: journal: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "maxisd: journal %s open, recovered %d jobs\n", *journal, recovered)
	}
	if *graphJournal != "" {
		replayed, err := s.OpenGraphJournal(*graphJournal)
		if err != nil {
			fmt.Fprintf(stderr, "maxisd: graph journal: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "maxisd: graph journal %s open, replayed %d mutations\n", *graphJournal, replayed)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	// SIGINT and SIGTERM are deliberately identical — ^C in a terminal and a
	// supervisor's stop must drain the same way. A plain Notify (rather than
	// NotifyContext) keeps the signal value so the drain log names it.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	errCh := make(chan error, 1)
	ln, err := newListener(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "maxisd: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "maxisd: serving on %s (workers=%d cache=%dB rate=%g)\n",
		ln.Addr(), *workers, *cacheBytes, *rate)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "maxisd: shutdown signal received (%v), draining\n", sig)
	case err := <-errCh:
		fmt.Fprintf(stderr, "maxisd: serve: %v\n", err)
		return 1
	}

	// Stop accepting at the service level first so /readyz flips and new
	// solves are rejected while the listener finishes in-flight handlers.
	s.BeginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "maxisd: http shutdown: %v\n", err)
	}
	if err := s.Drain(); err != nil {
		fmt.Fprintf(stderr, "maxisd: %v\n", err)
		_ = s.Close()
		return 1
	}
	_ = s.Close()
	st := s.Stats()
	fmt.Fprintf(stdout, "maxisd: drained, exiting (done=%d expired=%d panics=%d restarts=%d recovered=%d)\n",
		st.JobsDone, st.JobsExpired, st.WorkerPanics, st.WorkerRestarts, st.JournalRecovered)
	return 0
}
