package main

import (
	"bytes"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, probes the
// health and solve endpoints, then delivers SIGTERM and expects a clean
// drain and zero exit.
func TestDaemonLifecycle(t *testing.T) {
	var out, errBuf bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out, &errBuf, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", errBuf.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	body := `{"gen":{"kind":"gnp","n":80,"p":0.1,"weights":"poly2","seed":4},"alg":"goodnodes","seed":4}`
	resp, err = http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var solved bytes.Buffer
	_, _ = solved.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(solved.String(), `"status":"done"`) {
		t.Fatalf("solve: code=%d body=%s", resp.StatusCode, solved.String())
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	_, _ = metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(metrics.String(), "maxisd_requests_total 1") {
		t.Fatalf("metrics missing request counter:\n%s", metrics.String())
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, errBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained, exiting") {
		t.Fatalf("missing drain message in output:\n%s", out.String())
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-workers", "0"},
		{"-queue", "-1"},
		{"-solve-workers", "0"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(append(args, "-addr", "127.0.0.1:0"), &out, &errBuf, nil); code == 0 {
			t.Errorf("args %v: expected non-zero exit", args)
		}
		if errBuf.Len() == 0 {
			t.Errorf("args %v: expected an error message", args)
		}
	}
}

func TestDaemonBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errBuf, nil); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
}
