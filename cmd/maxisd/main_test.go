package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"distmwis/internal/reliable"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, probes the
// health and solve endpoints, then delivers SIGTERM and expects a clean
// drain and zero exit.
func TestDaemonLifecycle(t *testing.T) {
	var out, errBuf bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out, &errBuf, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", errBuf.String())
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	body := `{"gen":{"kind":"gnp","n":80,"p":0.1,"weights":"poly2","seed":4},"alg":"goodnodes","seed":4}`
	resp, err = http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var solved bytes.Buffer
	_, _ = solved.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(solved.String(), `"status":"done"`) {
		t.Fatalf("solve: code=%d body=%s", resp.StatusCode, solved.String())
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	_, _ = metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(metrics.String(), "maxisd_requests_total 1") {
		t.Fatalf("metrics missing request counter:\n%s", metrics.String())
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, errBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained, exiting") {
		t.Fatalf("missing drain message in output:\n%s", out.String())
	}
}

// TestDaemonSIGINTWithJournalAndChaos pins three contracts at once: SIGINT
// drains exactly like SIGTERM (and the log names the signal), -journal
// opens the write-ahead journal, and -chaos arms the injector.
func TestDaemonSIGINTWithJournalAndChaos(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "jobs.wal")
	var out, errBuf bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-workers", "2",
			"-journal", journal,
			"-chaos", "seed=3,latency=1:1ms",
		}, &out, &errBuf, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", errBuf.String())
	}

	body := `{"gen":{"kind":"cycle","n":40},"alg":"goodnodes","async":true}`
	resp, err := http.Post("http://"+addr+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async solve: code=%d", resp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, errBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
	for _, want := range []string{
		"shutdown signal received (interrupt)",
		"drained, exiting",
		"journal " + journal + " open, recovered 0 jobs",
		"chaos injection armed",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// The drained job must have been committed: nothing pending on disk.
	f, err := os.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := reliable.ReadWAL(f)
	if err != nil {
		t.Fatal(err)
	}
	if pending := reliable.PendingWAL(recs); len(pending) != 0 {
		t.Fatalf("journal has %d pending jobs after a clean drain: %+v", len(pending), pending)
	}
}

// TestDaemonGraphJournalSurvivesRestart boots the daemon with
// -graph-journal, PUTs and PATCHes a graph, stops the daemon, then boots a
// second one on the same journal: the mutation must have been replayed and
// the handle must resolve through its original hash.
func TestDaemonGraphJournalSurvivesRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "graphs.wal")
	boot := func() (addr string, out *bytes.Buffer, done chan int) {
		out = &bytes.Buffer{}
		ready := make(chan string, 1)
		done = make(chan int, 1)
		go func() {
			done <- run([]string{
				"-addr", "127.0.0.1:0", "-workers", "2",
				"-graph-journal", journal,
				"-repair-interval", "1ms", "-repair-budget", "64",
			}, out, out, ready)
		}()
		select {
		case addr = <-ready:
		case <-time.After(5 * time.Second):
			t.Fatalf("daemon never became ready; output: %s", out.String())
		}
		return addr, out, done
	}
	stop := func(done chan int, out *bytes.Buffer) {
		t.Helper()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("exit code %d; output: %s", code, out.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not exit after SIGTERM")
		}
	}
	doReq := func(method, url, body string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, buf.String()
	}

	addr, out, done := boot()
	base := "http://" + addr
	code, body := doReq("PUT", base+"/v1/graph", `{"n":4,"ids":[1,2,3,4],"weights":[5,6,7,8],"edges":[[0,1],[2,3]]}`)
	if code != http.StatusOK {
		t.Fatalf("PUT: code=%d body=%s", code, body)
	}
	var put struct {
		Hash string `json:"hash"`
	}
	if err := json.Unmarshal([]byte(body), &put); err != nil {
		t.Fatal(err)
	}
	if code, body = doReq("PATCH", base+"/v1/graph/"+put.Hash, `{"add_edges":[[1,2]]}`); code != http.StatusOK {
		t.Fatalf("PATCH: code=%d body=%s", code, body)
	}
	stop(done, out)
	// Read the output only after the daemon exited — the done channel is the
	// happens-before edge; reading the shared buffer while the daemon can
	// still write (its shutdown lines) is a data race.
	if !strings.Contains(out.String(), "graph journal "+journal+" open, replayed 0 mutations") {
		t.Fatalf("missing graph journal boot line:\n%s", out.String())
	}

	addr, out, done = boot()
	code, body = doReq("GET", "http://"+addr+"/v1/graph/"+put.Hash, "")
	if code != http.StatusOK || !strings.Contains(body, `"m":3`) || !strings.Contains(body, `"version":1`) {
		t.Fatalf("restarted handle: code=%d body=%s", code, body)
	}
	stop(done, out)
	if !strings.Contains(out.String(), "replayed 2 mutations") {
		t.Fatalf("second boot did not replay the journal:\n%s", out.String())
	}
}

func TestDaemonBadChaosSpec(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-chaos", "err=1.5"}, &out, &errBuf, nil); code != 1 {
		t.Fatalf("bad chaos spec: exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "-chaos") {
		t.Fatalf("missing chaos error: %s", errBuf.String())
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-workers", "0"},
		{"-queue", "-1"},
		{"-solve-workers", "0"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(append(args, "-addr", "127.0.0.1:0"), &out, &errBuf, nil); code == 0 {
			t.Errorf("args %v: expected non-zero exit", args)
		}
		if errBuf.Len() == 0 {
			t.Errorf("args %v: expected an error message", args)
		}
	}
}

func TestDaemonBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errBuf, nil); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
}
