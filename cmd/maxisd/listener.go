package main

import "net"

// newListener binds addr. Split out so tests can pass ":0" and read back
// the chosen port via the ready channel.
func newListener(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
