// Command graphgen emits a generated workload graph as JSON (node weights,
// identifiers and an edge list) for external inspection or plotting.
//
// Usage:
//
//	graphgen -graph coc -n 16 -k 4 | jq .stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

// output is the JSON document shape.
type output struct {
	Stats statsDoc   `json:"stats"`
	IDs   []uint64   `json:"ids"`
	W     []int64    `json:"weights"`
	Edges [][2]int32 `json:"edges"`
}

type statsDoc struct {
	N           int    `json:"n"`
	M           int    `json:"m"`
	MaxDegree   int    `json:"maxDegree"`
	MaxWeight   int64  `json:"maxWeight"`
	TotalWeight int64  `json:"totalWeight"`
	Degeneracy  int    `json:"degeneracy"`
	ArbLower    int    `json:"arboricityLowerBound"`
	Kind        string `json:"kind"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("graph", "gnp", "cycle|path|clique|star|grid|torus|gnp|tree|forests|apollonian|caterpillar|coc")
		n       = fs.Int("n", 100, "nodes (or per-dimension size)")
		p       = fs.Float64("p", 0.05, "gnp edge probability")
		k       = fs.Int("k", 2, "auxiliary size parameter")
		weights = fs.String("weights", "unit", "unit|uniform|poly2|expspread")
		maxW    = fs.Int64("maxw", 1000, "uniform max weight")
		seed    = fs.Uint64("seed", 1, "seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	g, err := build(*kind, *n, *p, *k, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "graphgen: %v\n", err)
		return 1
	}
	switch *weights {
	case "unit":
	case "uniform":
		g = gen.Weighted(g, gen.UniformWeights(*maxW), *seed)
	case "poly2":
		g = gen.Weighted(g, gen.PolyWeights(2), *seed)
	case "expspread":
		g = gen.Weighted(g, gen.ExponentialSpreadWeights(20), *seed)
	default:
		fmt.Fprintf(stderr, "graphgen: unknown weights %q\n", *weights)
		return 1
	}

	doc := output{
		Stats: statsDoc{
			N: g.N(), M: g.M(), MaxDegree: g.MaxDegree(),
			MaxWeight: g.MaxWeight(), TotalWeight: g.TotalWeight(),
			Degeneracy: g.ArboricityUpperBound(), ArbLower: g.ArboricityLowerBound(),
			Kind: *kind,
		},
		IDs: make([]uint64, g.N()),
		W:   g.Weights(),
	}
	for v := 0; v < g.N(); v++ {
		doc.IDs[v] = g.ID(v)
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				doc.Edges = append(doc.Edges, [2]int32{int32(v), u})
			}
		}
	}
	enc := json.NewEncoder(stdout)
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "graphgen: %v\n", err)
		return 1
	}
	return 0
}

func build(kind string, n int, p float64, k int, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "cycle":
		return gen.Cycle(n), nil
	case "path":
		return gen.Path(n), nil
	case "clique":
		return gen.Clique(n), nil
	case "star":
		return gen.Star(n), nil
	case "grid":
		return gen.Grid(n, n), nil
	case "torus":
		return gen.Torus(n, n), nil
	case "gnp":
		return gen.GNP(n, p, seed), nil
	case "tree":
		return gen.RandomTree(n, seed), nil
	case "forests":
		return gen.UnionOfForests(n, k, seed), nil
	case "apollonian":
		return gen.Apollonian(n, seed), nil
	case "caterpillar":
		return gen.Caterpillar(n, k), nil
	case "coc":
		return gen.CycleOfCliques(n, k), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}
