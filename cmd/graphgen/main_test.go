package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestGraphgenEmitsValidJSON(t *testing.T) {
	tests := []struct {
		name  string
		args  []string
		wantN int
		wantM int
	}{
		{name: "cycle", args: []string{"-graph", "cycle", "-n", "12"}, wantN: 12, wantM: 12},
		{name: "coc", args: []string{"-graph", "coc", "-n", "6", "-k", "3"}, wantN: 18, wantM: 6*3 + 6*9},
		{name: "weighted", args: []string{"-graph", "star", "-n", "9", "-weights", "uniform", "-maxw", "7"}, wantN: 9, wantM: 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			if code := run(tt.args, &out, &errBuf); code != 0 {
				t.Fatalf("exit %d: %s", code, errBuf.String())
			}
			var doc struct {
				Stats struct {
					N, M int
				} `json:"stats"`
				Edges [][2]int32 `json:"edges"`
				W     []int64    `json:"weights"`
			}
			if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
				t.Fatalf("invalid JSON: %v", err)
			}
			if doc.Stats.N != tt.wantN || doc.Stats.M != tt.wantM {
				t.Errorf("stats n=%d m=%d, want %d, %d", doc.Stats.N, doc.Stats.M, tt.wantN, tt.wantM)
			}
			if len(doc.Edges) != doc.Stats.M {
				t.Errorf("edge list has %d entries for m=%d", len(doc.Edges), doc.Stats.M)
			}
		})
	}
}

func TestGraphgenErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-graph", "bogus"},
		{"-weights", "bogus"},
		{"-undefined-flag"},
	} {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}
