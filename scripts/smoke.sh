#!/usr/bin/env bash
# Smoke test for the maxisd serving layer, run by CI and `make smoke`:
# build every cmd binary, boot the daemon on an ephemeral port, probe the
# health and metrics endpoints, push a short closed-loop loadgen burst
# (zero failed requests allowed), then require a clean SIGTERM drain.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
LOG="$BIN/maxisd.log"
PID=""
cleanup() {
	[ -n "$PID" ] && kill "$PID" 2>/dev/null || true
	rm -rf "$BIN"
}
trap cleanup EXIT

echo "smoke: building cmd binaries"
go build -o "$BIN" ./cmd/...

"$BIN/maxisd" -addr 127.0.0.1:0 -workers 4 >"$LOG" 2>&1 &
PID=$!

ADDR=""
for _ in $(seq 1 50); do
	ADDR=$(sed -n 's/^maxisd: serving on \([^ ]*\).*/\1/p' "$LOG")
	[ -n "$ADDR" ] && break
	sleep 0.1
done
if [ -z "$ADDR" ]; then
	echo "smoke: daemon never announced its address" >&2
	cat "$LOG" >&2
	exit 1
fi
BASE="http://$ADDR"
echo "smoke: daemon up at $BASE"

curl -fsS "$BASE/healthz" >/dev/null
curl -fsS "$BASE/readyz" >/dev/null
curl -fsS "$BASE/metrics" | grep -q '^maxisd_requests_total '

echo "smoke: 5s loadgen burst"
"$BIN/loadgen" -addr "$BASE" -duration "${SMOKE_DURATION:-5s}" -rps 1000 \
	-concurrency 16 -repeat 0.9 -graphs gnp,cycle,tree -n 120 -alg goodnodes

# The repeated-seed mix must have produced real cache traffic.
HITS=$(curl -fsS "$BASE/metrics" | sed -n 's/^maxisd_cache_hits_total //p')
if [ -z "$HITS" ] || [ "$HITS" -eq 0 ]; then
	echo "smoke: expected cache hits, got '${HITS:-none}'" >&2
	exit 1
fi

kill -TERM "$PID"
for _ in $(seq 1 100); do
	kill -0 "$PID" 2>/dev/null || break
	sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then
	echo "smoke: daemon did not exit after SIGTERM" >&2
	cat "$LOG" >&2
	exit 1
fi
if ! wait "$PID"; then
	echo "smoke: daemon exited non-zero" >&2
	cat "$LOG" >&2
	exit 1
fi
PID=""
if ! grep -q 'drained, exiting' "$LOG"; then
	echo "smoke: missing drain message" >&2
	cat "$LOG" >&2
	exit 1
fi
echo "smoke: OK (cache hits: $HITS)"
