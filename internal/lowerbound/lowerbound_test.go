package lowerbound

import (
	"testing"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

func TestRandMISProducesValidMIS(t *testing.T) {
	for _, tc := range []struct {
		name   string
		n0, n1 int
	}{
		{name: "small", n0: 10, n1: 4},
		{name: "tall-cliques", n0: 8, n1: 16},
		{name: "long-cycle", n0: 64, n1: 8},
		{name: "degenerate-cliques", n0: 12, n1: 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				res, err := RandMIS(tc.n0, tc.n1, RankingAlgorithm(2), seed)
				if err != nil {
					t.Fatal(err)
				}
				c := gen.Cycle(tc.n0)
				if !c.IsMaximalIS(res.MIS) {
					t.Fatalf("seed %d: output not an MIS of C", seed)
				}
				if res.I1Size == 0 {
					t.Errorf("seed %d: ranking found nothing on C1", seed)
				}
				if res.MaxGap > res.FillRounds+2 && res.I1Size > 0 {
					t.Errorf("gap %d inconsistent with fill cost %d", res.MaxGap, res.FillRounds)
				}
			}
		})
	}
}

func TestRandMISGapsAreShortWithRanking(t *testing.T) {
	// Proposition 9 mechanism: on C1 the clique blow-up keeps gaps short.
	// With ranking (T = O(1) rounds), the max gap should be a small
	// constant multiple of T, far below n0.
	const n0, n1 = 128, 32
	worst := 0
	for seed := uint64(1); seed <= 8; seed++ {
		res, err := RandMIS(n0, n1, RankingAlgorithm(2), seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxGap > worst {
			worst = res.MaxGap
		}
	}
	if worst > n0/4 {
		t.Errorf("max gap %d across seeds is not small relative to n0 = %d", worst, n0)
	}
}

func TestTruncatedLubyLeavesLongGapsOnPlainCycle(t *testing.T) {
	// The contrast that motivates the C1 construction: cutting a whp
	// algorithm off early on the plain cycle leaves gaps far longer than
	// on the clique-amplified graph at comparable round budgets.
	const n = 4096
	g := gen.Cycle(n)
	alg := TruncatedLuby(3) // one Luby iteration
	set, _, err := alg(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(set) {
		t.Fatal("truncated Luby returned dependent set")
	}
	gap := MaxGapOnCycle(set)
	if gap < 6 {
		t.Errorf("expected gaps ≫ T after truncation, got max gap %d", gap)
	}
}

func TestMaxGapOnCycle(t *testing.T) {
	tests := []struct {
		name string
		set  []bool
		want int
	}{
		{name: "empty", set: []bool{false, false, false, false}, want: 4},
		{name: "full", set: []bool{true, true, true, true}, want: 0},
		{name: "single", set: []bool{false, true, false, false}, want: 3},
		{name: "wraparound", set: []bool{false, false, true, false}, want: 3},
		{name: "two", set: []bool{true, false, false, true, false}, want: 2},
		{name: "alternating", set: []bool{true, false, true, false}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MaxGapOnCycle(tt.set); got != tt.want {
				t.Errorf("MaxGapOnCycle = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestRandMISRejectsBadArgs(t *testing.T) {
	if _, err := RandMIS(2, 4, RankingAlgorithm(1), 1); err == nil {
		t.Error("expected rejection of n0 < 3")
	}
	if _, err := RandMIS(10, 0, RankingAlgorithm(1), 1); err == nil {
		t.Error("expected rejection of n1 < 1")
	}
}

func TestRandMISRejectsDependentSets(t *testing.T) {
	bad := func(g *graph.Graph, _ uint64) ([]bool, int, error) {
		set := make([]bool, g.N())
		for v := range set {
			set[v] = true // everything: clearly dependent
		}
		return set, 1, nil
	}
	if _, err := RandMIS(6, 3, bad, 1); err == nil {
		t.Error("expected rejection of dependent A output")
	}
}

func TestRandMISHandlesEmptyAOutput(t *testing.T) {
	empty := func(g *graph.Graph, _ uint64) ([]bool, int, error) {
		return make([]bool, g.N()), 1, nil
	}
	res, err := RandMIS(11, 3, empty, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := gen.Cycle(11)
	if !c.IsMaximalIS(res.MIS) {
		t.Error("fallback fill did not produce an MIS")
	}
	if res.FillRounds != 11 {
		t.Errorf("degenerate fill cost = %d, want n0", res.FillRounds)
	}
}
