// Package lowerbound implements the Section 7 reduction machinery behind
// Theorem 4: any algorithm finding an independent set of size Ω(n/Δ) in
// unweighted graphs with success probability ≥ 1 − 1/log n needs Ω(log* n)
// rounds, even in LOCAL.
//
// A lower bound cannot be "run", but its mechanism can: Lemma 8 turns an
// approximate-MaxIS algorithm A into RandMIS, an MIS algorithm for the
// cycle, by running A on the cycle-of-cliques C₁ (each cycle node blown up
// into an n₁-clique, adjacent cliques joined by bicliques), mapping the
// found set back to the cycle, and filling the gaps between consecutive
// members sequentially. The experiment suite (E12) uses this package to
// verify the two properties the proof hinges on:
//
//   - global consistency: A(C₁) is an independent set, so the mapped set I
//     is independent on C;
//   - local presence: the clique blow-up amplifies A's local success
//     probability, so every O(T)-neighbourhood contains a member and gaps
//     stay short (Propositions 8–9) — whereas on the plain cycle a
//     truncated algorithm leaves much longer gaps.
package lowerbound

import (
	"fmt"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/mis"
)

// ApproxAlgorithm is the black box A of Lemma 8: it returns an independent
// set of the given graph together with the number of rounds it used.
type ApproxAlgorithm func(g *graph.Graph, seed uint64) (set []bool, rounds int, err error)

// RankingAlgorithm adapts the Section 5 Boppana ranking algorithm (with
// exponent c) as the Lemma 8 black box.
func RankingAlgorithm(c int) ApproxAlgorithm {
	return func(g *graph.Graph, seed uint64) ([]bool, int, error) {
		res, err := maxis.Ranking(g, c, maxis.Config{Seed: seed})
		if err != nil {
			return nil, 0, err
		}
		return res.Set, res.Metrics.Rounds, nil
	}
}

// TruncatedLuby runs Luby's MIS but hard-stops it after T rounds, returning
// the (independent, possibly far from maximal) set joined so far. This is
// the "algorithm cut off before completion" probe used to show long gaps on
// the plain cycle.
func TruncatedLuby(rounds int) ApproxAlgorithm {
	return func(g *graph.Graph, seed uint64) ([]bool, int, error) {
		res, err := congest.Run(g, mis.Luby{}.NewProcess,
			congest.WithSeed(seed), congest.WithHardStop(rounds))
		if err != nil {
			return nil, 0, err
		}
		return congest.BoolOutputs(res), res.Rounds, nil
	}
}

// Result is the outcome of one RandMIS reduction run.
type Result struct {
	// MIS is the maximal independent set produced on the cycle C.
	MIS []bool
	// I is the independent set mapped from C₁ before gap filling.
	I []bool
	// I1Size is |A(C₁)|.
	I1Size int
	// SimRounds is the round count of A on C₁ (= rounds to simulate on C,
	// Proposition 10).
	SimRounds int
	// MaxGap is the longest run of consecutive non-members of I along C.
	MaxGap int
	// FillRounds is the sequential gap-filling cost: the size of the
	// largest connected component of C \ N⁺[I].
	FillRounds int
}

// RandMIS implements Algorithm 7 for the n₀-cycle with clique size n₁:
// run A on C₁ = CycleOfCliques(n₀, n₁), map the set back to C, and extend
// it to a maximal independent set by sequential greedy filling of each gap.
func RandMIS(n0, n1 int, alg ApproxAlgorithm, seed uint64) (*Result, error) {
	if n0 < 3 || n1 < 1 {
		return nil, fmt.Errorf("lowerbound: need n0 ≥ 3, n1 ≥ 1; got %d, %d", n0, n1)
	}
	c1 := gen.CycleOfCliques(n0, n1)
	i1, rounds, err := alg(c1, seed)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: A(C1): %w", err)
	}
	if !c1.IsIndependentSet(i1) {
		return nil, fmt.Errorf("lowerbound: A returned a dependent set on C1")
	}
	// Step (2): map to C. u_i joins I iff some v_ij ∈ I1.
	c := gen.Cycle(n0)
	setI := make([]bool, n0)
	i1Size := 0
	for v, in := range i1 {
		if in {
			i1Size++
			setI[gen.CliqueIndex(v, n1)] = true
		}
	}
	if !c.IsIndependentSet(setI) {
		// Cannot happen when I1 is independent: adjacent cliques are joined
		// by a complete biclique.
		return nil, fmt.Errorf("lowerbound: mapped set not independent on C (bug)")
	}
	// Step (3): J = N⁺[I]; fill each component (arc) of C \ J with a
	// sequential greedy MIS. FillRounds is the largest arc length, the
	// sequential cost of Proposition 10.
	inJ := make([]bool, n0)
	for v := 0; v < n0; v++ {
		if setI[v] {
			inJ[v] = true
			inJ[(v+1)%n0] = true
			inJ[(v-1+n0)%n0] = true
		}
	}
	out := make([]bool, n0)
	copy(out, setI)
	fillRounds := 0
	if i1Size == 0 {
		// Degenerate case: A found nothing; the whole cycle is one gap.
		// Greedy MIS from node 0.
		for v := 0; v < n0; v++ {
			if !out[(v-1+n0)%n0] && !out[(v+1)%n0] {
				out[v] = true
			}
		}
		fillRounds = n0
	} else {
		for s := 0; s < n0; s++ {
			if inJ[s] || !inJ[(s-1+n0)%n0] {
				continue // not the left end of an arc
			}
			length := 0
			for u := s; !inJ[u]; u = (u + 1) % n0 {
				if length%2 == 0 {
					out[u] = true
				}
				length++
			}
			if length > fillRounds {
				fillRounds = length
			}
		}
	}
	if !c.IsMaximalIS(out) {
		return nil, fmt.Errorf("lowerbound: RandMIS output is not an MIS of C (bug)")
	}
	return &Result{
		MIS:        out,
		I:          setI,
		I1Size:     i1Size,
		SimRounds:  rounds,
		MaxGap:     MaxGapOnCycle(setI),
		FillRounds: fillRounds,
	}, nil
}

// MaxGapOnCycle returns the longest run of consecutive false entries in the
// cyclic membership vector (n if the set is empty).
func MaxGapOnCycle(set []bool) int {
	n := len(set)
	first := -1
	for v, in := range set {
		if in {
			first = v
			break
		}
	}
	if first == -1 {
		return n
	}
	maxGap, gap := 0, 0
	for i := 1; i <= n; i++ {
		v := (first + i) % n
		if set[v] {
			if gap > maxGap {
				maxGap = gap
			}
			gap = 0
		} else {
			gap++
		}
	}
	return maxGap
}
