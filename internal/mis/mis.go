// Package mis implements distributed maximal-independent-set protocols for
// the CONGEST model.
//
// The paper treats MIS as a black box with running time MIS(n, Δ)
// (Theorems 1 and 8): any MIS protocol can be plugged into the MaxIS
// approximation pipeline. This package provides three such boxes —
//
//   - Luby: the classic algorithm of Luby [35] / Alon–Babai–Itai [1]; each
//     active node marks itself with probability 1/(2d(v)) and joins when it
//     beats all marked neighbours by (degree, ID) priority. O(log n) rounds
//     with high probability.
//   - Ghaffari: the desire-level dynamics of Ghaffari [25]; node marking
//     probabilities p_v adapt (halve when the neighbourhood is crowded,
//     double otherwise), giving O(log Δ) + poly(log log n) local complexity.
//   - Rank: fresh uniform ranks each iteration, local maxima join. The
//     iterated version of the classical ranking algorithm (Section 5).
//
// Each protocol charges three simulator rounds per iteration (mark/compete,
// join announcement, retirement announcement), which is the standard
// CONGEST accounting for these algorithms.
package mis

import (
	"fmt"
	"sort"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
	"distmwis/internal/wire"
)

// Algorithm is a distributed MIS black box (the MIS(n,Δ) of the paper): an
// alias of the protocol runtime's MIS interface. Synchronous phase
// composition (Algorithms 1 and 6 of the paper) runs each black-box
// invocation for its fixed RoundBudget, because nodes cannot detect global
// termination; the budgeted accounting mode charges it.
//
// Every box in this package self-registers into the protocol registry
// (init below), which is where Config.MIS defaults, the cmd/maxis -mis
// flag, the maxisd API's mis field and the cross-engine parity suite all
// resolve names from.
type Algorithm = protocol.MIS

func init() {
	protocol.RegisterMIS(Luby{}, "Luby/ABI: mark with p=1/(2d), join on (degree, ID) priority; O(log n) w.h.p.")
	protocol.RegisterMIS(Ghaffari{}, "Ghaffari's desire-level dynamics; O(log Δ)+poly(log log n) local complexity")
	protocol.RegisterMIS(Rank{}, "iterated uniform ranking, local maxima join (Section 5)")
	protocol.RegisterMIS(GreedyByID{}, "deterministic greedy by identifier order (serving layer's degraded tier)")
	protocol.SetDefaultMIS(Luby{}.Name())
}

// ceilLog2 returns ⌈log₂ x⌉ for x ≥ 1 (0 for x ≤ 1).
func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	b := 0
	for v := x - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// Result is an MIS computation on a concrete graph.
type Result struct {
	// Set is the MIS membership vector.
	Set []bool
	// Exec carries the simulator metrics.
	Exec *congest.Result
}

// Compute runs alg on g and returns the membership vector plus metrics.
func Compute(alg Algorithm, g *graph.Graph, opts ...congest.Option) (*Result, error) {
	res, err := congest.Run(g, alg.NewProcess, opts...)
	if err != nil {
		return nil, fmt.Errorf("mis: %s: %w", alg.Name(), err)
	}
	return &Result{Set: congest.BoolOutputs(res), Exec: res}, nil
}

// Verify returns an error unless set is a maximal independent set of g.
func Verify(g *graph.Graph, set []bool) error {
	if !g.IsIndependentSet(set) {
		return fmt.Errorf("mis: set is not independent")
	}
	if !g.IsMaximalIS(set) {
		return fmt.Errorf("mis: independent set is not maximal")
	}
	return nil
}

// Luby is Luby's randomized MIS algorithm.
type Luby struct{}

// Name implements Algorithm.
func (Luby) Name() string { return "luby" }

// NewProcess implements Algorithm.
func (Luby) NewProcess() congest.Process { return &lubyProcess{} }

// RoundBudget implements Algorithm: Luby terminates in O(log n) iterations
// with high probability independent of Δ; three simulator rounds each.
func (Luby) RoundBudget(nUpper, _ int) int {
	return 3 * (4*ceilLog2(nUpper) + 1)
}

var _ Algorithm = Luby{}

// phase is the position within one 3-round iteration.
type phase int

const (
	phaseMark phase = iota + 1
	phaseJoin
	phaseRetire
)

func phaseOf(round int) phase { return phase((round-1)%3 + 1) }

// phaseName labels the 3-round iteration cadence for tracing.
func phaseName(round int) string {
	switch phaseOf(round) {
	case phaseMark:
		return "mark"
	case phaseJoin:
		return "join"
	default:
		return "retire"
	}
}

// parseRetire interprets a mark-slot message as a retirement announcement.
// Fault-free it is a single bit. Under faults (NodeInfo.Faulty) it carries
// the sender's joined flag too, so a node that lost the join announcement
// still learns it is dominated before its ports all go quiet — otherwise a
// node whose last neighbour retired after joining would "win by default"
// next to an MIS member. A short payload in fault mode is a duplicated
// one-bit join announcement whose bit was the joined flag itself, so
// retirement then implies domination.
func parseRetire(faulty bool, m *congest.Message) (retired, dominated bool) {
	r := m.Reader()
	retiring, err := r.ReadBool()
	if err != nil || !retiring {
		return false, false
	}
	if !faulty {
		return true, false
	}
	joined, err := r.ReadBool()
	return true, joined || err != nil
}

// retireMsg builds the retirement announcement parseRetire expects, using
// the caller's scratch writer and the simulator's message pool.
func retireMsg(w *wire.Writer, faulty, retiring, joined bool) *congest.Message {
	w.Reset()
	w.WriteBool(retiring)
	if faulty {
		w.WriteBool(joined)
	}
	return congest.NewPooledMessage(w)
}

// lubyProcess holds one node's Luby state.
type lubyProcess struct {
	info      congest.NodeInfo
	alive     graph.Bitset // per-port: neighbour still active
	aliveN    int
	marked    bool
	joined    bool
	dominated bool
	lastRound int
	// scratch from phaseMark messages: which alive neighbours are marked and
	// their (degree, id) priority.
	loseToNeighbor bool
	// w and out are per-round scratch, reused so the hot loop stops
	// allocating: the simulator is done reading the previous round's out
	// slice before the next Round call, and pooled messages are owned by
	// the simulator the moment they are returned.
	w   wire.Writer
	out []*congest.Message
}

func (p *lubyProcess) Init(info congest.NodeInfo) {
	p.info = info
	p.alive = graph.NewBitset(info.Degree)
	p.alive.SetFirst(info.Degree)
	p.aliveN = info.Degree
	p.out = make([]*congest.Message, info.Degree)
}

// beats reports whether (d1,id1) has priority over (d2,id2).
func beats(d1 int, id1 uint64, d2 int, id2 uint64) bool {
	if d1 != d2 {
		return d1 > d2
	}
	return id1 > id2
}

func (p *lubyProcess) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	// A round-number gap means the node was crashed and recovered: the
	// per-iteration scratch is stale relative to the current phase. Rounds
	// are consecutive in fault-free runs, so this never fires there.
	if p.lastRound != 0 && round != p.lastRound+1 {
		p.marked = false
		p.loseToNeighbor = false
	}
	p.lastRound = round

	switch phaseOf(round) {
	case phaseMark:
		// Absorb retirement bits from the previous iteration.
		p.absorbRetirements(round, recv)
		p.marked = false
		p.loseToNeighbor = false
		switch {
		case p.dominated:
			// A neighbour joined but our own retirement announcement was
			// lost: stay out of contention until the retire phase halts us.
		case p.aliveN == 0:
			p.marked = true // uncontested: will join
		case p.info.Rand.Float64() < 1/(2*float64(p.aliveN)):
			p.marked = true
		}
		p.w.Reset()
		p.w.WriteBool(p.marked)
		p.w.WriteUint(uint64(p.aliveN), uint64(p.info.NUpper))
		p.w.WriteUint(p.info.ID, p.info.MaxID)
		return p.broadcastAlive(congest.NewPooledMessage(&p.w)), false

	case phaseJoin:
		if p.marked && !p.dominated {
			// Joining is only safe on full information: a lost or garbled
			// mark message could hide a higher-priority marked neighbour.
			informed := true
			for port, m := range recv {
				if !p.alive.Get(port) {
					continue
				}
				if m == nil {
					informed = false
					continue
				}
				r := m.Reader()
				nbrMarked, e1 := r.ReadBool()
				nbrDeg, e2 := r.ReadUint(uint64(p.info.NUpper))
				nbrID, e3 := r.ReadUint(p.info.MaxID)
				if e1 != nil || e2 != nil || e3 != nil {
					informed = false
					continue
				}
				if nbrMarked && beats(int(nbrDeg), nbrID, p.aliveN, p.info.ID) {
					p.loseToNeighbor = true
				}
			}
			if informed && !p.loseToNeighbor {
				p.joined = true
			}
		}
		p.w.Reset()
		p.w.WriteBool(p.joined)
		return p.broadcastAlive(congest.NewPooledMessage(&p.w)), false

	default: // phaseRetire
		for port, m := range recv {
			if m == nil || !p.alive.Get(port) {
				continue
			}
			nbrJoined, err := m.Reader().ReadBool()
			if err == nil && nbrJoined {
				p.dominated = true
			}
		}
		retiring := p.joined || p.dominated
		return p.broadcastAlive(retireMsg(&p.w, p.info.Faulty, retiring, p.joined)), retiring
	}
}

func (p *lubyProcess) absorbRetirements(round int, recv []*congest.Message) {
	if round == 1 {
		return
	}
	for port, m := range recv {
		if m == nil || !p.alive.Get(port) {
			continue
		}
		retired, dominated := parseRetire(p.info.Faulty, m)
		if retired {
			p.alive.Unset(port)
			p.aliveN--
		}
		if dominated {
			p.dominated = true
		}
	}
}

func (p *lubyProcess) broadcastAlive(m *congest.Message) []*congest.Message {
	out := p.out
	for port := range out {
		if p.alive.Get(port) {
			out[port] = m
		} else {
			out[port] = nil
		}
	}
	return out
}

func (p *lubyProcess) Output() any { return p.joined }

// TracePhase implements congest.PhaseLabeler.
func (p *lubyProcess) TracePhase(round int) string { return phaseName(round) }

// Ghaffari is the desire-level MIS algorithm of Ghaffari [25].
type Ghaffari struct{}

// Name implements Algorithm.
func (Ghaffari) Name() string { return "ghaffari" }

// NewProcess implements Algorithm.
func (Ghaffari) NewProcess() congest.Process { return &ghaffariProcess{} }

// RoundBudget implements Algorithm: O(log Δ) + poly(log log n) iterations
// (the local complexity of [25] combined with the CONGEST shattering
// machinery of [26, 41]); three simulator rounds each. The poly(log log n)
// term is budgeted as (⌈log₂ log₂ n⌉ + 1)², a quadratic stand-in for the
// shattering phase.
func (Ghaffari) RoundBudget(nUpper, maxDeg int) int {
	loglog := ceilLog2(ceilLog2(nUpper)+1) + 1
	return 3 * (4*ceilLog2(maxDeg+2) + loglog*loglog)
}

var _ Algorithm = Ghaffari{}

// ghaffariProcess holds one node's desire-level state. Probabilities are
// powers of two tracked as negative exponents, so messages stay O(log log n)
// bits for the probability field.
type ghaffariProcess struct {
	info      congest.NodeInfo
	alive     graph.Bitset
	aliveN    int
	pExp      int // p_v = 2^-pExp, pExp >= 1
	marked    bool
	joined    bool
	dominated bool
	lastRound int
	// maxExp caps the exponent so the wire field stays bounded.
	maxExp int
	w      wire.Writer
	out    []*congest.Message
}

func (p *ghaffariProcess) Init(info congest.NodeInfo) {
	p.info = info
	p.alive = graph.NewBitset(info.Degree)
	p.alive.SetFirst(info.Degree)
	p.aliveN = info.Degree
	p.out = make([]*congest.Message, info.Degree)
	p.pExp = 1
	p.maxExp = 2 * wire.BitsFor(uint64(info.NUpper)) // p never below n^-2
}

func (p *ghaffariProcess) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	if p.lastRound != 0 && round != p.lastRound+1 {
		p.marked = false // stale across a crash window
	}
	p.lastRound = round

	switch phaseOf(round) {
	case phaseMark:
		for port, m := range recv { // retirements from previous iteration
			if round > 1 && m != nil && p.alive.Get(port) {
				retired, dominated := parseRetire(p.info.Faulty, m)
				if retired {
					p.alive.Unset(port)
					p.aliveN--
				}
				if dominated {
					p.dominated = true
				}
			}
		}
		p.marked = false
		if p.dominated {
			// Known joined neighbour; never re-enter contention.
		} else if p.aliveN == 0 {
			p.marked = true
		} else {
			// Draw with probability 2^-pExp via pExp fair bits.
			p.marked = true
			for i := 0; i < p.pExp; i++ {
				if p.info.Rand.Uint64()&1 == 1 {
					p.marked = false
					break
				}
			}
		}
		p.w.Reset()
		p.w.WriteBool(p.marked)
		p.w.WriteUint(uint64(p.pExp), uint64(p.maxExp))
		p.w.WriteUint(p.info.ID, p.info.MaxID)
		return p.broadcastAlive(congest.NewPooledMessage(&p.w)), false

	case phaseJoin:
		var effDeg float64
		anyMarkedBeats := false
		informed := true
		for port, m := range recv {
			if !p.alive.Get(port) {
				continue
			}
			if m == nil {
				informed = false
				continue
			}
			r := m.Reader()
			nbrMarked, e1 := r.ReadBool()
			nbrExp, e2 := r.ReadUint(uint64(p.maxExp))
			nbrID, e3 := r.ReadUint(p.info.MaxID)
			if e1 != nil || e2 != nil || e3 != nil {
				informed = false
				continue
			}
			effDeg += pow2neg(int(nbrExp))
			if nbrMarked && nbrID > p.info.ID {
				anyMarkedBeats = true
			}
		}
		// Joining requires a parseable mark message from every live port: a
		// missing one could hide a higher-ID marked neighbour.
		if p.marked && informed && !anyMarkedBeats && !p.dominated {
			p.joined = true
		}
		// Desire-level update for the next iteration.
		if effDeg >= 2 {
			if p.pExp < p.maxExp {
				p.pExp++
			}
		} else if p.pExp > 1 {
			p.pExp--
		}
		p.w.Reset()
		p.w.WriteBool(p.joined)
		return p.broadcastAlive(congest.NewPooledMessage(&p.w)), false

	default: // phaseRetire
		for port, m := range recv {
			if m == nil || !p.alive.Get(port) {
				continue
			}
			nbrJoined, err := m.Reader().ReadBool()
			if err == nil && nbrJoined {
				p.dominated = true
			}
		}
		retiring := p.joined || p.dominated
		return p.broadcastAlive(retireMsg(&p.w, p.info.Faulty, retiring, p.joined)), retiring
	}
}

func pow2neg(exp int) float64 {
	v := 1.0
	for i := 0; i < exp && v > 1e-300; i++ {
		v /= 2
	}
	return v
}

func (p *ghaffariProcess) broadcastAlive(m *congest.Message) []*congest.Message {
	out := p.out
	for port := range out {
		if p.alive.Get(port) {
			out[port] = m
		} else {
			out[port] = nil
		}
	}
	return out
}

func (p *ghaffariProcess) Output() any { return p.joined }

// TracePhase implements congest.PhaseLabeler.
func (p *ghaffariProcess) TracePhase(round int) string { return phaseName(round) }

// Rank is the iterated ranking MIS: every iteration each active node draws
// a fresh uniform rank; strict local maxima join, dominated nodes retire.
type Rank struct{}

// Name implements Algorithm.
func (Rank) Name() string { return "rank" }

// NewProcess implements Algorithm.
func (Rank) NewProcess() congest.Process { return &rankProcess{} }

// RoundBudget implements Algorithm: like Luby, O(log n) iterations w.h.p.
func (Rank) RoundBudget(nUpper, _ int) int {
	return 3 * (4*ceilLog2(nUpper) + 1)
}

var _ Algorithm = Rank{}

type rankProcess struct {
	info      congest.NodeInfo
	alive     graph.Bitset
	aliveN    int
	rank      uint64
	rankSpace uint64
	joined    bool
	dominated bool
	wins      bool
	lastRound int
	w         wire.Writer
	out       []*congest.Message
}

func (p *rankProcess) Init(info congest.NodeInfo) {
	p.info = info
	p.alive = graph.NewBitset(info.Degree)
	p.alive.SetFirst(info.Degree)
	p.aliveN = info.Degree
	p.out = make([]*congest.Message, info.Degree)
	n := uint64(info.NUpper)
	p.rankSpace = n * n // collisions broken by ID
}

func (p *rankProcess) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	if p.lastRound != 0 && round != p.lastRound+1 {
		p.rank = 0 // stale across a crash window; 0 never wins a comparison
		p.wins = false
	}
	p.lastRound = round

	switch phaseOf(round) {
	case phaseMark:
		for port, m := range recv {
			if round > 1 && m != nil && p.alive.Get(port) {
				retired, dominated := parseRetire(p.info.Faulty, m)
				if retired {
					p.alive.Unset(port)
					p.aliveN--
				}
				if dominated {
					p.dominated = true
				}
			}
		}
		p.rank = 1 + p.info.Rand.Uint64N(p.rankSpace)
		p.w.Reset()
		p.w.WriteUint(p.rank, p.rankSpace)
		p.w.WriteUint(p.info.ID, p.info.MaxID)
		return p.broadcastAlive(congest.NewPooledMessage(&p.w)), false

	case phaseJoin:
		p.wins = true
		for port, m := range recv {
			if !p.alive.Get(port) {
				continue
			}
			if m == nil {
				// A live neighbour's rank is unknown; winning cannot be
				// certified this iteration.
				p.wins = false
				continue
			}
			r := m.Reader()
			nbrRank, e1 := r.ReadUint(p.rankSpace)
			nbrID, e2 := r.ReadUint(p.info.MaxID)
			if e1 != nil || e2 != nil {
				p.wins = false
				continue
			}
			if nbrRank > p.rank || (nbrRank == p.rank && nbrID > p.info.ID) {
				p.wins = false
			}
		}
		if p.wins && !p.dominated {
			p.joined = true
		}
		p.w.Reset()
		p.w.WriteBool(p.joined)
		return p.broadcastAlive(congest.NewPooledMessage(&p.w)), false

	default: // phaseRetire
		for port, m := range recv {
			if m == nil || !p.alive.Get(port) {
				continue
			}
			nbrJoined, err := m.Reader().ReadBool()
			if err == nil && nbrJoined {
				p.dominated = true
			}
		}
		retiring := p.joined || p.dominated
		return p.broadcastAlive(retireMsg(&p.w, p.info.Faulty, retiring, p.joined)), retiring
	}
}

func (p *rankProcess) broadcastAlive(m *congest.Message) []*congest.Message {
	out := p.out
	for port := range out {
		if p.alive.Get(port) {
			out[port] = m
		} else {
			out[port] = nil
		}
	}
	return out
}

func (p *rankProcess) Output() any { return p.joined }

// TracePhase implements congest.PhaseLabeler.
func (p *rankProcess) TracePhase(round int) string { return phaseName(round) }

// GreedySequential computes the canonical greedy MIS in identifier order.
// It is a centralized reference implementation used to validate the
// distributed protocols and by the Section 7 gap-filling step.
func GreedySequential(g *graph.Graph) []bool {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort by identifier so the result is topology-determined.
	sort.Slice(order, func(i, j int) bool { return g.ID(order[i]) < g.ID(order[j]) })
	set := make([]bool, n)
	blocked := make([]bool, n)
	for _, v := range order {
		if blocked[v] {
			continue
		}
		set[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return set
}
