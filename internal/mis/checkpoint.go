package mis

// Checkpoint/Restore implement the reliable transport's Checkpointer
// interface (internal/reliable) for every MIS process: a snapshot is a
// value copy of the process struct with its slices deep-copied, and Restore
// copies back out of the snapshot so the same snapshot can serve repeated
// crashes. The embedded NodeInfo is copied by value too; its Rand pointer
// deliberately stays shared — the transport snapshots and restores the
// underlying randomness stream itself (it substitutes a serializable PCG
// when checkpointing is on), so duplicating it here would double-restore.

func (p *lubyProcess) Checkpoint() any {
	s := *p
	s.alive = append([]bool(nil), p.alive...)
	return &s
}

func (p *lubyProcess) Restore(state any) {
	s := state.(*lubyProcess)
	alive := append([]bool(nil), s.alive...)
	*p = *s
	p.alive = alive
}

func (p *ghaffariProcess) Checkpoint() any {
	s := *p
	s.alive = append([]bool(nil), p.alive...)
	return &s
}

func (p *ghaffariProcess) Restore(state any) {
	s := state.(*ghaffariProcess)
	alive := append([]bool(nil), s.alive...)
	*p = *s
	p.alive = alive
}

func (p *rankProcess) Checkpoint() any {
	s := *p
	s.alive = append([]bool(nil), p.alive...)
	return &s
}

func (p *rankProcess) Restore(state any) {
	s := state.(*rankProcess)
	alive := append([]bool(nil), s.alive...)
	*p = *s
	p.alive = alive
}

func (p *greedyIDProcess) Checkpoint() any {
	s := *p
	s.nbrID = append([]uint64(nil), p.nbrID...)
	s.nbrKnown = append([]bool(nil), p.nbrKnown...)
	s.nbrActive = append([]bool(nil), p.nbrActive...)
	return &s
}

func (p *greedyIDProcess) Restore(state any) {
	s := state.(*greedyIDProcess)
	nbrID := append([]uint64(nil), s.nbrID...)
	nbrKnown := append([]bool(nil), s.nbrKnown...)
	nbrActive := append([]bool(nil), s.nbrActive...)
	*p = *s
	p.nbrID = nbrID
	p.nbrKnown = nbrKnown
	p.nbrActive = nbrActive
}
