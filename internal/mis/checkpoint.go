package mis

import (
	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/wire"
)

// Checkpoint/Restore implement the reliable transport's Checkpointer
// interface (internal/reliable) for every MIS process: a snapshot is a
// value copy of the process struct with its slices deep-copied, and Restore
// copies back out of the snapshot so the same snapshot can serve repeated
// crashes. The embedded NodeInfo is copied by value too; its Rand pointer
// deliberately stays shared — the transport snapshots and restores the
// underlying randomness stream itself (it substitutes a serializable PCG
// when checkpointing is on), so duplicating it here would double-restore.

func (p *lubyProcess) Checkpoint() any {
	s := *p
	s.alive = append(graph.Bitset(nil), p.alive...)
	// Scratch (writer buffer, broadcast slice) is rebuilt on Restore, never
	// shared: retaining it in the snapshot would alias live per-round state.
	s.w = wire.Writer{}
	s.out = nil
	return &s
}

func (p *lubyProcess) Restore(state any) {
	s := state.(*lubyProcess)
	alive := append(graph.Bitset(nil), s.alive...)
	*p = *s
	p.alive = alive
	p.w = wire.Writer{}
	p.out = make([]*congest.Message, p.info.Degree)
}

func (p *ghaffariProcess) Checkpoint() any {
	s := *p
	s.alive = append(graph.Bitset(nil), p.alive...)
	// Scratch (writer buffer, broadcast slice) is rebuilt on Restore, never
	// shared: retaining it in the snapshot would alias live per-round state.
	s.w = wire.Writer{}
	s.out = nil
	return &s
}

func (p *ghaffariProcess) Restore(state any) {
	s := state.(*ghaffariProcess)
	alive := append(graph.Bitset(nil), s.alive...)
	*p = *s
	p.alive = alive
	p.w = wire.Writer{}
	p.out = make([]*congest.Message, p.info.Degree)
}

func (p *rankProcess) Checkpoint() any {
	s := *p
	s.alive = append(graph.Bitset(nil), p.alive...)
	// Scratch (writer buffer, broadcast slice) is rebuilt on Restore, never
	// shared: retaining it in the snapshot would alias live per-round state.
	s.w = wire.Writer{}
	s.out = nil
	return &s
}

func (p *rankProcess) Restore(state any) {
	s := state.(*rankProcess)
	alive := append(graph.Bitset(nil), s.alive...)
	*p = *s
	p.alive = alive
	p.w = wire.Writer{}
	p.out = make([]*congest.Message, p.info.Degree)
}

func (p *greedyIDProcess) Checkpoint() any {
	s := *p
	s.nbrID = append([]uint64(nil), p.nbrID...)
	s.nbrKnown = append(graph.Bitset(nil), p.nbrKnown...)
	s.nbrActive = append(graph.Bitset(nil), p.nbrActive...)
	s.w = wire.Writer{}
	s.out = nil
	return &s
}

func (p *greedyIDProcess) Restore(state any) {
	s := state.(*greedyIDProcess)
	nbrID := append([]uint64(nil), s.nbrID...)
	nbrKnown := append(graph.Bitset(nil), s.nbrKnown...)
	nbrActive := append(graph.Bitset(nil), s.nbrActive...)
	*p = *s
	p.nbrID = nbrID
	p.nbrKnown = nbrKnown
	p.nbrActive = nbrActive
	p.w = wire.Writer{}
	p.out = make([]*congest.Message, p.info.Degree)
}
