package mis

import (
	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/wire"
)

// GreedyByID is the fully deterministic MIS protocol: after one round of
// identifier exchange, a node joins as soon as its identifier exceeds those
// of all still-active neighbours; dominated nodes retire. It is the
// distributed analogue of sequential greedy in ID order.
//
// Its worst-case round complexity is Θ(n) (a monotone ID path), which is
// exactly why the paper treats MIS as a pluggable black box: Theorem 1
// inherits determinism from this box and speed from a better one. Round
// budget: n+2.
type GreedyByID struct{}

// Name implements Algorithm.
func (GreedyByID) Name() string { return "greedy-id" }

// NewProcess implements Algorithm.
func (GreedyByID) NewProcess() congest.Process { return &greedyIDProcess{} }

// RoundBudget implements Algorithm: the deterministic chain bound.
func (GreedyByID) RoundBudget(nUpper, _ int) int { return nUpper + 2 }

var _ Algorithm = GreedyByID{}

// greedyIDProcess statuses broadcast each round.
const (
	statusActive  = 0
	statusJoined  = 1
	statusRetired = 2
)

type greedyIDProcess struct {
	info      congest.NodeInfo
	nbrID     []uint64
	nbrKnown  graph.Bitset // identifier received and parsed for this port
	nbrActive graph.Bitset
	joined    bool
	dominated bool
	w         wire.Writer        // per-round scratch, reset before each use
	out       []*congest.Message // reused broadcast slice
}

func (p *greedyIDProcess) Init(info congest.NodeInfo) {
	p.info = info
	p.nbrID = make([]uint64, info.Degree)
	p.nbrKnown = graph.NewBitset(info.Degree)
	p.nbrActive = graph.NewBitset(info.Degree)
	p.nbrActive.SetFirst(info.Degree)
	p.out = make([]*congest.Message, info.Degree)
}

// Under faults every message carries a leading type bit (false = identifier
// exchange, true = status) so that a duplicated identifier frame arriving in
// a status slot cannot be misparsed as a retirement — which could retire a
// live higher-ID neighbour and let both ends of an edge join. Fault-free
// the framing is unnecessary and omitted to keep messages bit-identical.
const (
	frameID     = false
	frameStatus = true
)

func (p *greedyIDProcess) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	if round == 1 {
		// Identifier exchange.
		p.w.Reset()
		if p.info.Faulty {
			p.w.WriteBool(frameID)
		}
		p.w.WriteUint(p.info.ID, p.info.MaxID)
		m := congest.NewPooledMessage(&p.w)
		for i := range p.out {
			p.out[i] = m
		}
		return p.out, false
	}
	if round == 2 {
		for port, m := range recv {
			if m == nil {
				continue
			}
			r := m.Reader()
			if p.info.Faulty {
				if kind, err := r.ReadBool(); err != nil || kind != frameID {
					continue
				}
			}
			id, err := r.ReadUint(p.info.MaxID)
			if err != nil {
				continue
			}
			p.nbrID[port] = id
			p.nbrKnown.Set(port)
		}
	} else {
		for port, m := range recv {
			if m == nil || !p.nbrActive.Get(port) {
				continue
			}
			r := m.Reader()
			if p.info.Faulty {
				if kind, err := r.ReadBool(); err != nil || kind != frameStatus {
					continue
				}
			}
			status, err := r.ReadUint(2)
			if err != nil {
				continue
			}
			switch status {
			case statusJoined:
				p.dominated = true
				p.nbrActive.Unset(port)
			case statusRetired:
				p.nbrActive.Unset(port)
			}
		}
	}

	status := uint64(statusActive)
	done := false
	switch {
	case p.dominated:
		status = statusRetired
		done = true
	default:
		highestActive := true
		for port := 0; port < p.info.Degree; port++ {
			// An unknown identifier (lost exchange) must be assumed to be
			// higher: joining past it could collide with the neighbour.
			if p.nbrActive.Get(port) && (!p.nbrKnown.Get(port) || p.nbrID[port] > p.info.ID) {
				highestActive = false
				break
			}
		}
		if highestActive {
			p.joined = true
			status = statusJoined
			done = true
		}
	}
	p.w.Reset()
	if p.info.Faulty {
		p.w.WriteBool(frameStatus)
	}
	p.w.WriteUint(status, 2)
	m := congest.NewPooledMessage(&p.w)
	out := p.out
	for port := range out {
		if p.nbrActive.Get(port) {
			out[port] = m
		} else {
			out[port] = nil
		}
	}
	return out, done
}

func (p *greedyIDProcess) Output() any { return p.joined }
