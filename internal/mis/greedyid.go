package mis

import (
	"distmwis/internal/congest"
	"distmwis/internal/wire"
)

// GreedyByID is the fully deterministic MIS protocol: after one round of
// identifier exchange, a node joins as soon as its identifier exceeds those
// of all still-active neighbours; dominated nodes retire. It is the
// distributed analogue of sequential greedy in ID order.
//
// Its worst-case round complexity is Θ(n) (a monotone ID path), which is
// exactly why the paper treats MIS as a pluggable black box: Theorem 1
// inherits determinism from this box and speed from a better one. Round
// budget: n+2.
type GreedyByID struct{}

// Name implements Algorithm.
func (GreedyByID) Name() string { return "greedy-id" }

// NewProcess implements Algorithm.
func (GreedyByID) NewProcess() congest.Process { return &greedyIDProcess{} }

// RoundBudget implements Algorithm: the deterministic chain bound.
func (GreedyByID) RoundBudget(nUpper, _ int) int { return nUpper + 2 }

var _ Algorithm = GreedyByID{}

// greedyIDProcess statuses broadcast each round.
const (
	statusActive  = 0
	statusJoined  = 1
	statusRetired = 2
)

type greedyIDProcess struct {
	info      congest.NodeInfo
	nbrID     []uint64
	nbrActive []bool
	joined    bool
	dominated bool
}

func (p *greedyIDProcess) Init(info congest.NodeInfo) {
	p.info = info
	p.nbrID = make([]uint64, info.Degree)
	p.nbrActive = make([]bool, info.Degree)
	for i := range p.nbrActive {
		p.nbrActive[i] = true
	}
}

func (p *greedyIDProcess) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	if round == 1 {
		// Identifier exchange.
		var w wire.Writer
		w.WriteUint(p.info.ID, p.info.MaxID)
		out := make([]*congest.Message, p.info.Degree)
		m := congest.NewMessage(&w)
		for i := range out {
			out[i] = m
		}
		return out, false
	}
	if round == 2 {
		for port, m := range recv {
			if m == nil {
				continue
			}
			id, _ := m.Reader().ReadUint(p.info.MaxID)
			p.nbrID[port] = id
		}
	} else {
		for port, m := range recv {
			if m == nil || !p.nbrActive[port] {
				continue
			}
			status, _ := m.Reader().ReadUint(2)
			switch status {
			case statusJoined:
				p.dominated = true
				p.nbrActive[port] = false
			case statusRetired:
				p.nbrActive[port] = false
			}
		}
	}

	status := uint64(statusActive)
	done := false
	switch {
	case p.dominated:
		status = statusRetired
		done = true
	default:
		highestActive := true
		for port, active := range p.nbrActive {
			if active && p.nbrID[port] > p.info.ID {
				highestActive = false
				break
			}
		}
		if highestActive {
			p.joined = true
			status = statusJoined
			done = true
		}
	}
	var w wire.Writer
	w.WriteUint(status, 2)
	out := make([]*congest.Message, p.info.Degree)
	m := congest.NewMessage(&w)
	for port, active := range p.nbrActive {
		if active {
			out[port] = m
		}
	}
	return out, done
}

func (p *greedyIDProcess) Output() any { return p.joined }
