package mis

import (
	"testing"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

func algorithms() []Algorithm {
	return []Algorithm{Luby{}, Ghaffari{}, Rank{}, GreedyByID{}}
}

func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	reg, err := gen.RandomRegular(60, 6, 11)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]*graph.Graph{
		"single":     gen.Path(1),
		"edge":       gen.Path(2),
		"path":       gen.Path(17),
		"cycle":      gen.Cycle(32),
		"clique":     gen.Clique(20),
		"star":       gen.Star(25),
		"gnp-sparse": gen.GNP(150, 0.02, 7),
		"gnp-dense":  gen.GNP(80, 0.3, 8),
		"regular":    reg,
		"tree":       gen.RandomTree(100, 9),
		"bipartite":  gen.CompleteBipartite(6, 9),
		"isolated":   graph.NewBuilder(12).MustBuild(),
		"coc":        gen.CycleOfCliques(5, 4),
	}
}

func TestAlgorithmsProduceMIS(t *testing.T) {
	for _, alg := range algorithms() {
		for name, g := range testGraphs(t) {
			t.Run(alg.Name()+"/"+name, func(t *testing.T) {
				for seed := uint64(1); seed <= 3; seed++ {
					res, err := Compute(alg, g, congest.WithSeed(seed))
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if err := Verify(g, res.Set); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

func TestCliqueMISHasExactlyOneNode(t *testing.T) {
	g := gen.Clique(25)
	for _, alg := range algorithms() {
		res, err := Compute(alg, g)
		if err != nil {
			t.Fatal(err)
		}
		if got := graph.SetSize(res.Set); got != 1 {
			t.Errorf("%s: clique MIS size = %d, want 1", alg.Name(), got)
		}
	}
}

func TestIsolatedNodesAllJoin(t *testing.T) {
	g := graph.NewBuilder(9).MustBuild()
	for _, alg := range algorithms() {
		res, err := Compute(alg, g)
		if err != nil {
			t.Fatal(err)
		}
		if got := graph.SetSize(res.Set); got != 9 {
			t.Errorf("%s: isolated-node MIS size = %d, want 9", alg.Name(), got)
		}
		if res.Exec.Rounds > 3 {
			t.Errorf("%s: isolated nodes took %d rounds", alg.Name(), res.Exec.Rounds)
		}
	}
}

func TestLubyRoundsLogarithmic(t *testing.T) {
	// Luby terminates in O(log n) iterations w.h.p.; with 3 rounds per
	// iteration, 60 rounds is a generous cap for n = 4096.
	g := gen.GNP(4096, 0.002, 3)
	res, err := Compute(Luby{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Set); err != nil {
		t.Fatal(err)
	}
	if res.Exec.Rounds > 60 {
		t.Errorf("Luby took %d rounds on n=4096, want O(log n) ≈ ≤60", res.Exec.Rounds)
	}
}

func TestCongestComplianceWithTightBandwidth(t *testing.T) {
	// All three protocols must fit their messages in 8·log2(n) bits.
	g := gen.GNP(256, 0.05, 5)
	for _, alg := range algorithms() {
		if _, err := Compute(alg, g, congest.WithBandwidthFactor(8)); err != nil {
			t.Errorf("%s violates CONGEST bandwidth: %v", alg.Name(), err)
		}
	}
}

func TestGreedySequential(t *testing.T) {
	for name, g := range testGraphs(t) {
		set := GreedySequential(g)
		if err := Verify(g, set); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGreedySequentialFollowsIDOrder(t *testing.T) {
	// On a path with increasing IDs, greedy picks nodes 0, 2, 4.
	g := gen.Path(5)
	set := GreedySequential(g)
	want := []bool{true, false, true, false, true}
	for v := range want {
		if set[v] != want[v] {
			t.Errorf("set[%d] = %v, want %v", v, set[v], want[v])
		}
	}
}

func TestVerifyRejectsBadSets(t *testing.T) {
	g := gen.Path(4)
	if err := Verify(g, []bool{true, true, false, false}); err == nil {
		t.Error("Verify accepted a dependent set")
	}
	if err := Verify(g, []bool{true, false, false, false}); err == nil {
		t.Error("Verify accepted a non-maximal set")
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	g := gen.GNP(100, 0.05, 4)
	for _, alg := range algorithms() {
		a, err := Compute(alg, g, congest.WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compute(alg, g, congest.WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Set {
			if a.Set[v] != b.Set[v] {
				t.Fatalf("%s not deterministic for fixed seed", alg.Name())
			}
		}
	}
}

func TestGreedyByIDIsSeedIndependent(t *testing.T) {
	// The whole point of the deterministic box: output depends only on the
	// graph, never on randomness.
	g := gen.GNP(150, 0.05, 9)
	a, err := Compute(GreedyByID{}, g, congest.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(GreedyByID{}, g, congest.WithSeed(999))
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Set {
		if a.Set[v] != b.Set[v] {
			t.Fatal("GreedyByID output depends on the seed")
		}
	}
}

func TestGreedyByIDPicksLocalMaxima(t *testing.T) {
	// On a path with increasing IDs (v+1), greedy-by-ID joins from the
	// high end: nodes n-1, n-3, ...
	g := gen.Path(6)
	res, err := Compute(GreedyByID{}, g)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false, true, false, true}
	for v := range want {
		if res.Set[v] != want[v] {
			t.Errorf("set[%d] = %v, want %v", v, res.Set[v], want[v])
		}
	}
}

func TestGreedyByIDWorstCaseChain(t *testing.T) {
	// Monotone ID path: decisions propagate one node per round — the Θ(n)
	// worst case that motivates treating MIS as a black box.
	const n = 120
	g := gen.Path(n)
	res, err := Compute(GreedyByID{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Set); err != nil {
		t.Fatal(err)
	}
	if res.Exec.Rounds < n/4 {
		t.Errorf("expected Θ(n) rounds on the monotone chain, got %d", res.Exec.Rounds)
	}
	if budget := (GreedyByID{}).RoundBudget(n, 2); res.Exec.Rounds > budget {
		t.Errorf("rounds %d exceed declared budget %d", res.Exec.Rounds, budget)
	}
}

func TestRoundBudgetsCoverActualRounds(t *testing.T) {
	// The declared budgets are w.h.p. upper bounds; on moderate graphs the
	// measured rounds must stay below them.
	g := gen.GNP(512, 0.03, 10)
	for _, alg := range algorithms() {
		res, err := Compute(alg, g, congest.WithSeed(4))
		if err != nil {
			t.Fatal(err)
		}
		if budget := alg.RoundBudget(g.N(), g.MaxDegree()); res.Exec.Rounds > budget {
			t.Errorf("%s: %d rounds exceed budget %d", alg.Name(), res.Exec.Rounds, budget)
		}
	}
}

func BenchmarkLuby(b *testing.B) {
	g := gen.GNP(2048, 0.005, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(Luby{}, g, congest.WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}
