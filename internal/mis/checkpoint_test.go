package mis

import "distmwis/internal/reliable"

// The MIS processes must satisfy the reliable transport's Checkpointer
// interface so crash recovery can snapshot them; the behavioural
// crash/restore tests live in internal/reliable.
var (
	_ reliable.Checkpointer = (*lubyProcess)(nil)
	_ reliable.Checkpointer = (*ghaffariProcess)(nil)
	_ reliable.Checkpointer = (*rankProcess)(nil)
	_ reliable.Checkpointer = (*greedyIDProcess)(nil)
)
