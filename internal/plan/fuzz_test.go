package plan_test

import (
	"testing"

	"distmwis/internal/plan"
	"distmwis/internal/protocol"

	_ "distmwis/internal/maxis"
	_ "distmwis/internal/mis"
)

// FuzzChoose throws arbitrary (profile, budget) shapes at the planner. The
// journal-replay contract under test: Choose never panics, always names a
// registered solver, reports Fits consistently with the budget, and is a
// pure function (same request twice → identical decision).
func FuzzChoose(f *testing.F) {
	f.Add(uint16(60), uint16(10), uint16(180), uint8(12), false, int64(0), false)
	f.Add(uint16(400), uint16(8), uint16(674), uint8(26), false, int64(1_250_000), false)
	f.Add(uint16(1), uint16(0), uint16(0), uint8(1), true, int64(10), true)
	f.Add(uint16(5000), uint16(64), uint16(40000), uint8(40), true, int64(-7), false)
	f.Fuzz(func(t *testing.T, n, deg, m uint16, logW uint8, unit bool, budget int64, det bool) {
		prof := protocol.Profile{
			N:           int(n)%5000 + 1,
			M:           int(m),
			MaxDegree:   int(deg),
			LogW:        int(logW),
			UnitWeights: unit,
		}
		if prof.MaxDegree >= prof.N {
			prof.MaxDegree = prof.N - 1
		}
		prof.Degeneracy = prof.MaxDegree
		req := plan.Request{
			Profile:              prof,
			Budget:               plan.Budget{WorkUnits: budget},
			RequireDeterministic: det,
		}
		d, err := plan.Choose(req)
		if err != nil {
			return // no admissible solver is a legal outcome, not a crash
		}
		if _, serr := protocol.SolverByName(d.Alg); serr != nil {
			t.Fatalf("chose unregistered solver %q", d.Alg)
		}
		if d.Rounds <= 0 || d.Work <= 0 {
			t.Fatalf("non-positive cost prediction: %+v", d)
		}
		if d.Fits && budget > 0 && d.Work > budget {
			t.Fatalf("Fits=true but work %d exceeds budget %d", d.Work, budget)
		}
		if again, err2 := plan.Choose(req); err2 != nil || again != d {
			t.Fatalf("Choose impure: %+v / %v then %+v", d, err, again)
		}
	})
}
