// Package plan is the budget-aware algorithm planner: given an instance
// profile and a work budget, it picks the strongest registered solver
// whose predicted cost fits. It is the single resolution point for the
// "auto" algorithm name — maxis.Solve, the server's DeadlineMS path, the
// cluster coordinator's per-part fan-out and the repair tier's promotion
// ladder all delegate here instead of hard-coding an algorithm each.
//
// The cost model is deliberately simple and fully deterministic: every
// solver's registered Meta predicts a theory-faithful round budget for the
// profile (the same Budget* bounds the experiment tables print), one round
// costs n+2m+1 work units (message handlers plus directed deliveries), and
// a latency budget converts to work units at a calibratable ops/ms rate.
// Determinism matters beyond taste — the server journal replays requests
// by re-planning them, so Choose must be a pure function of its inputs.
package plan

import (
	"fmt"

	"distmwis/internal/graph"
	"distmwis/internal/protocol"
)

// Auto is the algorithm name every entry point resolves through Choose.
const Auto = "auto"

// DefaultOpsPerMS is the default work-unit throughput used to convert a
// millisecond deadline into a work budget. It is deliberately conservative
// (the single-threaded simulator sustains 100k–500k unit ops/ms on
// commodity hardware) so planned solves finish inside their deadline with
// slack for queueing; cmd/maxisd -plan-ops-per-ms recalibrates it.
const DefaultOpsPerMS = 50_000

// Budget bounds what a planned solve may cost. The zero value is
// unlimited: Choose then simply returns the best-guarantee solver.
type Budget struct {
	// WorkUnits caps predicted work (rounds × (n+2m+1)); 0 = unlimited.
	WorkUnits int64
}

// ForDeadline converts a request deadline into a work budget at opsPerMS
// (0 selects DefaultOpsPerMS). Non-positive deadlines are unlimited.
func ForDeadline(deadlineMS, opsPerMS int64) Budget {
	if deadlineMS <= 0 {
		return Budget{}
	}
	if opsPerMS <= 0 {
		opsPerMS = DefaultOpsPerMS
	}
	return Budget{WorkUnits: deadlineMS * opsPerMS}
}

// Request is one planning question: which solver for this profile, these
// parameters, this budget?
type Request struct {
	Profile protocol.Profile
	Params  protocol.Params
	Budget  Budget
	// MIS is the black box the cost model budgets MIS phases with; nil
	// selects the registry default (luby).
	MIS protocol.MIS
	// AllowLocal admits LOCAL-model solvers (messages beyond B bits);
	// off by default since served solves promise CONGEST executions.
	AllowLocal bool
	// RequireDeterministic restricts to solvers that draw no randomness of
	// their own (seed-free cache keys, reproducible degraded answers).
	RequireDeterministic bool
}

// Decision is a planning answer. Alg is always a registered solver name;
// Fits reports whether its predicted work met the budget (when nothing
// fits, the cheapest candidate is chosen and Fits is false — an answer
// with a guarantee still beats no answer).
type Decision struct {
	// Alg is the chosen solver's registry name.
	Alg string
	// Ratio is the chosen solver's guarantee family (Meta.Ratio).
	Ratio string
	// Score is the planner's quality score for this instance (lower is
	// better; approximately the approximation factor).
	Score float64
	// Rounds and Work are the predicted cost on this profile.
	Rounds int
	Work   int64
	// Fits reports the predicted work met the budget.
	Fits bool
}

// String renders the decision for logs and CLI output.
func (d Decision) String() string {
	fit := "fits"
	if !d.Fits {
		fit = "over budget (cheapest)"
	}
	return fmt.Sprintf("%s (ratio %s, score %.1f, ~%d rounds, ~%d work units, %s)",
		d.Alg, d.Ratio, d.Score, d.Rounds, d.Work, fit)
}

// candidate is one admissible solver with its predicted cost.
type candidate struct {
	Decision
}

// candidates enumerates the admissible solvers for req in registry name
// order (sorted — this plus the deterministic tie-breaks below makes
// Choose a pure function).
func candidates(req Request) []candidate {
	m := req.MIS
	if m == nil {
		m = protocol.DefaultMIS()
	}
	var out []candidate
	for _, s := range protocol.Solvers() {
		meta := s.Meta()
		if meta.Score == nil || meta.Rounds == nil {
			continue // opted out of planning
		}
		if meta.Local && !req.AllowLocal {
			continue
		}
		if meta.UnitWeightsOnly && !req.Profile.UnitWeights {
			continue
		}
		if req.RequireDeterministic && !meta.Deterministic {
			continue
		}
		params, err := s.Normalize(req.Params)
		if err != nil {
			continue // parameters unusable for this solver (e.g. ε ≥ 1)
		}
		rounds := meta.Rounds(req.Profile, params, m)
		if rounds <= 0 {
			continue
		}
		work := int64(rounds) * int64(req.Profile.N+2*req.Profile.M+1)
		out = append(out, candidate{Decision{
			Alg:    s.Name(),
			Ratio:  meta.Ratio,
			Score:  meta.Score(req.Profile, params),
			Rounds: rounds,
			Work:   work,
			Fits:   req.Budget.WorkUnits <= 0 || work <= req.Budget.WorkUnits,
		}})
	}
	return out
}

// Choose picks the best-guarantee solver whose predicted work fits the
// budget: lowest score, ties broken by lower predicted work, then name.
// When nothing fits, it returns the cheapest candidate (Fits false) — the
// degraded tier's "some guaranteed answer now" contract. It errors only
// when no registered solver is admissible at all.
func Choose(req Request) (Decision, error) {
	cands := candidates(req)
	if len(cands) == 0 {
		return Decision{}, fmt.Errorf("plan: no admissible solver for profile n=%d Δ=%d (unit=%t)",
			req.Profile.N, req.Profile.MaxDegree, req.Profile.UnitWeights)
	}
	var best, cheapest *candidate
	for i := range cands {
		c := &cands[i]
		if cheapest == nil || c.Work < cheapest.Work {
			cheapest = c
		}
		if !c.Fits {
			continue
		}
		if best == nil || c.Score < best.Score || (c.Score == best.Score && c.Work < best.Work) {
			best = c
		}
	}
	if best == nil {
		return cheapest.Decision, nil
	}
	return best.Decision, nil
}

// For profiles g and plans in one call — the convenience entry the solve
// paths use.
func For(g *graph.Graph, params protocol.Params, b Budget, m protocol.MIS) (Decision, error) {
	return Choose(Request{Profile: protocol.ProfileOf(g), Params: params, Budget: b, MIS: m})
}

// Ladder plans one decision per ascending work budget and keeps the
// strictly improving ones: the repair tier's promotion rungs. Consecutive
// budgets that resolve to the same (or a no-better) algorithm collapse, so
// the returned ladder climbs monotonically in guarantee quality.
func Ladder(req Request, budgets []int64) []Decision {
	var out []Decision
	for _, b := range budgets {
		req.Budget = Budget{WorkUnits: b}
		d, err := Choose(req)
		if err != nil {
			continue
		}
		if n := len(out); n > 0 && (d.Alg == out[n-1].Alg || d.Score >= out[n-1].Score) {
			continue
		}
		out = append(out, d)
	}
	return out
}
