package plan_test

import (
	"reflect"
	"testing"

	"distmwis/internal/graph/gen"
	"distmwis/internal/plan"
	"distmwis/internal/protocol"

	// Registry side effects: the planner chooses among registered solvers.
	_ "distmwis/internal/maxis"
	_ "distmwis/internal/mis"
)

// weightedProfile is the representative weighted instance the pinning tests
// plan for: Δ=10, log W≈12, so the local-ratio phase bound (Δ+1 = 11)
// undercuts the baseline's scale bound (log W+1 = 13).
func weightedProfile(tb testing.TB) protocol.Profile {
	tb.Helper()
	g := gen.Weighted(gen.GNP(60, 0.08, 5), gen.PolyWeights(2), 5)
	return protocol.ProfileOf(g)
}

func choose(tb testing.TB, req plan.Request) plan.Decision {
	tb.Helper()
	d, err := plan.Choose(req)
	if err != nil {
		tb.Fatalf("Choose: %v", err)
	}
	return d
}

// TestChoosePins pins the planner's answer for representative
// (instance, budget) pairs. These are behavioural contracts: a cost-model
// change that moves one of them should be a conscious decision.
func TestChoosePins(t *testing.T) {
	weighted := weightedProfile(t)
	unit := protocol.ProfileOf(gen.GNP(60, 0.08, 5))
	cases := []struct {
		name string
		req  plan.Request
		want string
		fits bool
	}{
		{
			// Unlimited budget on a weighted instance with Δ < log W: the
			// planner prefers localratio (Δ-approx, Δ+1 phases) over the
			// baseline's log W scales on the work tie-break.
			name: "weighted unlimited",
			req:  plan.Request{Profile: weighted},
			want: "localratio", fits: true,
		},
		{
			// A tight budget only the few-round race fits: its 1.4·(Δ+1)
			// inflated score still beats the other cheap tiers.
			name: "weighted tight",
			req:  plan.Request{Profile: weighted, Budget: plan.Budget{WorkUnits: 50_000}},
			want: "bhr-fewround", fits: true,
		},
		{
			// Tighter still: only the one-round races fit, and the weighted
			// race (1.8) outranks the uniform ranking race (2.0).
			name: "weighted one-round",
			req:  plan.Request{Profile: weighted, Budget: plan.Budget{WorkUnits: 5_000}},
			want: "bhr-fewround", fits: true,
		},
		{
			// A budget nothing fits: the cheapest candidate answers anyway,
			// marked over budget — a guaranteed answer now beats none.
			name: "weighted impossible",
			req:  plan.Request{Profile: weighted, Budget: plan.Budget{WorkUnits: 10}},
			want: "bhr-oneround", fits: false,
		},
		{
			// Deterministic-only planning excludes every randomised solver;
			// localratio is the best deterministic Δ-family member.
			name: "weighted deterministic",
			req:  plan.Request{Profile: weighted, RequireDeterministic: true},
			want: "localratio", fits: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := choose(t, tc.req)
			if d.Alg != tc.want || d.Fits != tc.fits {
				t.Errorf("got %s (fits=%t), want %s (fits=%t)\ndecision: %s",
					d.Alg, d.Fits, tc.want, tc.fits, d)
			}
		})
	}
	_ = unit
}

func TestChooseUnitWeightsAdmitsRanking(t *testing.T) {
	// Unit-weight instances unlock the UnitWeightsOnly solvers; they must
	// never be chosen for weighted ones.
	unit := protocol.ProfileOf(gen.GNP(60, 0.08, 5))
	if !unit.UnitWeights {
		t.Fatal("expected a unit-weight profile")
	}
	seen := false
	for _, s := range protocol.Solvers() {
		if s.Meta().UnitWeightsOnly {
			seen = true
		}
	}
	if !seen {
		t.Skip("no unit-weights-only solver registered")
	}
	weighted := weightedProfile(t)
	for _, budget := range []int64{0, 5_000, 50_000, 1 << 30} {
		d := choose(t, plan.Request{Profile: weighted, Budget: plan.Budget{WorkUnits: budget}})
		if sv, err := protocol.SolverByName(d.Alg); err != nil {
			t.Fatalf("chose unregistered solver %q", d.Alg)
		} else if sv.Meta().UnitWeightsOnly {
			t.Errorf("budget %d: chose unit-weights-only %s for a weighted profile", budget, d.Alg)
		}
	}
}

func TestChooseDeterministic(t *testing.T) {
	req := plan.Request{Profile: weightedProfile(t), Budget: plan.Budget{WorkUnits: 123_456}}
	first := choose(t, req)
	for i := 0; i < 5; i++ {
		if got := choose(t, req); !reflect.DeepEqual(got, first) {
			t.Fatalf("Choose is not a pure function: %+v then %+v", first, got)
		}
	}
}

func TestForDeadline(t *testing.T) {
	if b := plan.ForDeadline(0, 0); b.WorkUnits != 0 {
		t.Errorf("zero deadline should be unlimited, got %d", b.WorkUnits)
	}
	if b := plan.ForDeadline(-5, 0); b.WorkUnits != 0 {
		t.Errorf("negative deadline should be unlimited, got %d", b.WorkUnits)
	}
	if b := plan.ForDeadline(10, 0); b.WorkUnits != 10*plan.DefaultOpsPerMS {
		t.Errorf("default rate: got %d work units", b.WorkUnits)
	}
	if b := plan.ForDeadline(10, 1000); b.WorkUnits != 10_000 {
		t.Errorf("explicit rate: got %d work units", b.WorkUnits)
	}
}

func TestLadderClimbsMonotonically(t *testing.T) {
	req := plan.Request{Profile: weightedProfile(t)}
	budgets := []int64{1_000, 10_000, 100_000, 1 << 20, 1 << 30, 0}
	// Budget 0 means unlimited, so express it as a huge cap instead to keep
	// the ladder ascending.
	budgets[len(budgets)-1] = 1 << 40
	ladder := plan.Ladder(req, budgets)
	if len(ladder) == 0 {
		t.Fatal("empty ladder")
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].Score >= ladder[i-1].Score {
			t.Errorf("rung %d (%s, score %.2f) does not improve on rung %d (%s, score %.2f)",
				i, ladder[i].Alg, ladder[i].Score, i-1, ladder[i-1].Alg, ladder[i-1].Score)
		}
		if ladder[i].Alg == ladder[i-1].Alg {
			t.Errorf("consecutive rungs share algorithm %s", ladder[i].Alg)
		}
	}
}

func TestDecisionString(t *testing.T) {
	d := choose(t, plan.Request{Profile: weightedProfile(t)})
	s := d.String()
	if s == "" || d.Ratio == "" {
		t.Errorf("decision renders empty: %q (ratio %q)", s, d.Ratio)
	}
}
