// Package coloring implements the distributed colouring machinery the
// paper's Discussion section (Section 8) and lower-bound section build on.
//
// Two threads of the paper motivate it:
//
//   - Open Question 2 (§8): sequentially, a (Δ+1)-colouring yields a
//     (Δ+1)-approximation for MaxIS by taking the max-weight colour class —
//     but distributedly, *finding* that class costs Ω(D) rounds, D the
//     diameter. This package provides the (Δ+1)-colouring protocol, the
//     colour-class aggregation over a BFS tree (whose round cost is ≈ 2D+k,
//     exhibiting the Ω(D) barrier), and the colouring→MIS conversion, so
//     experiment E14 can chart the barrier against the paper's D-independent
//     algorithms.
//   - Sections 2.4/7: the Ω(log* n) cycle lower bounds of Linial [34] and
//     Naor [36] are matched by the Cole–Vishkin deterministic 3-colouring;
//     implementing it (E15) shows the log* upper-bound side of Theorem 4's
//     landscape.
package coloring

import (
	"fmt"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
	"distmwis/internal/wire"
)

func init() {
	// The uniform-start protocols register into the protocol registry so
	// the registry-driven parity suite covers them on every engine.
	// Cole–Vishkin is deliberately absent: its processes need per-node
	// successor ports (ring topology input), so it stays a direct library
	// call (ColeVishkinRing).
	protocol.RegisterProcess(protocol.KindColoring, "randomgreedy",
		"randomized (Δ+1)-colouring by conflict-free proposals; O(log n) rounds w.h.p.",
		func() congest.Process { return &greedyColour{} })
}

// Result is a computed colouring.
type Result struct {
	// Colors assigns each node a colour in [0, NumColors).
	Colors []int
	// NumColors is the size of the palette actually needed (max+1).
	NumColors int
	// Exec carries simulator metrics.
	Exec *congest.Result
}

// Verify returns an error unless colors is a proper colouring of g with
// every colour below limit (pass limit ≤ 0 to skip the palette check).
func Verify(g *graph.Graph, colors []int, limit int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: %d colours for %d nodes", len(colors), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 {
			return fmt.Errorf("coloring: node %d uncoloured", v)
		}
		if limit > 0 && colors[v] >= limit {
			return fmt.Errorf("coloring: node %d colour %d ≥ limit %d", v, colors[v], limit)
		}
		for _, u := range g.Neighbors(v) {
			if colors[u] == colors[v] {
				return fmt.Errorf("coloring: edge {%d,%d} monochromatic (colour %d)", v, u, colors[v])
			}
		}
	}
	return nil
}

// RandomGreedy computes a (Δ+1)-colouring with the classical randomized
// trial protocol: every uncoloured node proposes a uniform colour from
// {0..deg(v)} minus its neighbours' fixed colours and keeps it unless a
// higher-ID neighbour proposed the same colour in the same round.
// Terminates in O(log n) rounds with high probability; each node uses at
// most deg(v)+1 ≤ Δ+1 colours.
func RandomGreedy(g *graph.Graph, opts ...congest.Option) (*Result, error) {
	res, err := congest.Run(g, func() congest.Process { return &greedyColour{} }, opts...)
	if err != nil {
		return nil, fmt.Errorf("coloring: random greedy: %w", err)
	}
	return collect(g, res)
}

func collect(g *graph.Graph, res *congest.Result) (*Result, error) {
	colors := make([]int, g.N())
	numColors := 0
	for v, out := range res.Outputs {
		c, ok := out.(int)
		if !ok {
			return nil, fmt.Errorf("coloring: node %d produced no colour", v)
		}
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	return &Result{Colors: colors, NumColors: numColors, Exec: res}, nil
}

// greedyColour is one node's state in RandomGreedy. Iterations take two
// rounds: propose (odd) and resolve (even). Finalized colours are
// announced once; the announcement doubles as the node's last message.
type greedyColour struct {
	info     congest.NodeInfo
	taken    []bool // colours fixed by neighbours (index ≤ deg)
	colour   int
	proposal int
	fixed    bool
}

func (p *greedyColour) Init(info congest.NodeInfo) {
	p.info = info
	p.taken = make([]bool, info.Degree+1)
	p.colour = -1
	p.proposal = -1
}

// colourField sizes the wire field: colours < deg+1 ≤ n.
func (p *greedyColour) colourField() uint64 { return uint64(p.info.NUpper) }

func (p *greedyColour) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	// Absorb everything first: finals update the palette; proposals are
	// only meaningful on resolve rounds.
	type prop struct {
		colour int
		id     uint64
	}
	var proposals []prop
	for _, m := range recv {
		if m == nil {
			continue
		}
		r := m.Reader()
		isFinal, e1 := r.ReadBool()
		c64, e2 := r.ReadUint(p.colourField())
		id, e3 := r.ReadUint(p.info.MaxID)
		if e1 != nil || e2 != nil || e3 != nil {
			continue // garbled under faults: treat as missing
		}
		c := int(c64)
		if isFinal {
			if c < len(p.taken) {
				p.taken[c] = true
			}
		} else {
			proposals = append(proposals, prop{colour: c, id: id})
		}
	}

	if round%2 == 1 { // propose round
		if p.info.Degree == 0 {
			p.colour = 0
			return nil, true
		}
		free := make([]int, 0, len(p.taken))
		for c, t := range p.taken {
			if !t {
				free = append(free, c)
			}
		}
		// deg+1 palette minus ≤ deg fixed neighbours is never empty.
		p.proposal = free[p.info.Rand.IntN(len(free))]
		var w wire.Writer
		w.WriteBool(false)
		w.WriteUint(uint64(p.proposal), p.colourField())
		w.WriteUint(p.info.ID, p.info.MaxID)
		return broadcast(congest.NewMessage(&w), p.info.Degree), false
	}

	// resolve round
	win := p.proposal >= 0 && !p.taken[p.proposal]
	if win {
		for _, q := range proposals {
			if q.colour == p.proposal && q.id > p.info.ID {
				win = false
				break
			}
		}
	}
	if !win {
		p.proposal = -1
		return nil, false
	}
	p.colour = p.proposal
	p.fixed = true
	var w wire.Writer
	w.WriteBool(true)
	w.WriteUint(uint64(p.colour), p.colourField())
	w.WriteUint(p.info.ID, p.info.MaxID)
	return broadcast(congest.NewMessage(&w), p.info.Degree), true
}

func (p *greedyColour) Output() any { return p.colour }

// TracePhase labels the two-round trial cadence for tracers.
func (p *greedyColour) TracePhase(round int) string {
	if round%2 == 1 {
		return "propose"
	}
	return "resolve"
}

func broadcast(m *congest.Message, deg int) []*congest.Message {
	out := make([]*congest.Message, deg)
	for i := range out {
		out[i] = m
	}
	return out
}

// MISFromColoring converts a proper colouring into an MIS in NumColors+1
// rounds: colour classes join in order, skipping dominated nodes — the
// classical colouring→MIS reduction the paper's Section 8 discusses.
func MISFromColoring(g *graph.Graph, col *Result, opts ...congest.Option) ([]bool, *congest.Result, error) {
	colors := col.Colors
	k := col.NumColors
	res, err := congest.Run(g, func() congest.Process {
		return &colourClassMIS{colors: colors, k: k}
	}, opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("coloring: MIS conversion: %w", err)
	}
	return congest.BoolOutputs(res), res, nil
}

// colourClassMIS joins colour class r-1 in round r. Independence of the
// result relies on the colouring being proper; under fault injection that
// assumption can break (a corrupted colouring protocol may emit
// monochromatic edges), so fault mode switches to a defensive variant: see
// faultyRound.
type colourClassMIS struct {
	info      congest.NodeInfo
	colors    []int
	k         int
	myColor   int
	joined    bool
	dominated bool
}

func (p *colourClassMIS) Init(info congest.NodeInfo) {
	p.info = info
	p.myColor = p.colors[info.Index]
}

func (p *colourClassMIS) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	if p.info.Faulty {
		return p.faultyRound(round, recv)
	}
	for _, m := range recv {
		if m == nil {
			continue
		}
		joined, _ := m.Reader().ReadBool()
		if joined {
			p.dominated = true
		}
	}
	if round-1 == p.myColor && !p.dominated {
		p.joined = true
		var w wire.Writer
		w.WriteBool(true)
		return broadcast(congest.NewMessage(&w), p.info.Degree), true
	}
	if p.dominated || round > p.k {
		return nil, true
	}
	return nil, false
}

// faultyRound is the defensive conversion used under fault injection.
// Every node broadcasts (joined, colour+1, ID) every round until round
// k+2 — halting early would starve later colour classes of the joined
// bits they need — and colour class c joins one round later than the
// fault-free schedule, at round c+2, once a full round of neighbour
// broadcasts is in hand. A node only joins when it has a parseable
// message from every port, no neighbour has joined, and it wins the ID
// tie-break against any neighbour claiming the same colour (which a
// faulty colouring protocol can produce). Because the joined bit is
// re-broadcast every round, the current round's messages carry all the
// state a join decision needs — missing or garbled information always
// means "do not join": safety is unconditional, weight degrades instead.
func (p *colourClassMIS) faultyRound(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	informed := true
	blocked := false
	for _, m := range recv {
		if m == nil {
			informed = false
			continue
		}
		r := m.Reader()
		nbrJoined, e1 := r.ReadBool()
		nbrColour, e2 := r.ReadUint(uint64(p.info.NUpper))
		nbrID, e3 := r.ReadUint(p.info.MaxID)
		if e1 != nil || e2 != nil || e3 != nil {
			informed = false
			continue
		}
		if nbrJoined {
			p.dominated = true
		}
		// nbrColour is offset by one; 0 encodes "no colour assigned". A
		// colourless neighbour can never join, so it cannot collide.
		if nbrColour != 0 && int(nbrColour-1) == p.myColor && nbrID > p.info.ID {
			blocked = true
		}
	}
	if round == p.myColor+2 && !p.dominated && !p.joined && informed && !blocked {
		p.joined = true
	}
	if round > p.k+1 {
		return nil, true
	}
	var w wire.Writer
	w.WriteBool(p.joined)
	w.WriteUint(uint64(p.myColor+1), uint64(p.info.NUpper))
	w.WriteUint(p.info.ID, p.info.MaxID)
	return broadcast(congest.NewMessage(&w), p.info.Degree), false
}

func (p *colourClassMIS) Output() any { return p.joined }
