package coloring

import (
	"fmt"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/wire"
)

// Tree is a rooted spanning tree used for aggregation. The paper's
// Section 8 observation is that even given a (Δ+1)-colouring, *selecting*
// the maximum-weight colour class needs Ω(D) rounds; the tree is the
// standard primitive that realizes (and exhibits) that cost.
type Tree struct {
	// Root is the root node index.
	Root int
	// ParentPort[v] is v's port towards its parent (-1 at the root).
	ParentPort []int
	// ChildPorts[v] lists v's ports towards its children.
	ChildPorts [][]int
	// Depth is the tree height in edges.
	Depth int
}

// BuildBFSTree constructs a BFS spanning tree of a connected graph rooted
// at root. (Building it distributedly costs Θ(D) rounds of flooding; the
// experiment charges that separately — see E14.)
func BuildBFSTree(g *graph.Graph, root int) (*Tree, error) {
	n := g.N()
	dist := g.BFSDistances(root)
	t := &Tree{
		Root:       root,
		ParentPort: make([]int, n),
		ChildPorts: make([][]int, n),
	}
	for v := 0; v < n; v++ {
		if dist[v] < 0 {
			return nil, fmt.Errorf("coloring: graph disconnected; node %d unreachable from root %d", v, root)
		}
		if int(dist[v]) > t.Depth {
			t.Depth = int(dist[v])
		}
		t.ParentPort[v] = -1
		for port, u := range g.Neighbors(v) {
			if v != root && dist[u] == dist[v]-1 && t.ParentPort[v] == -1 {
				t.ParentPort[v] = port
			}
		}
	}
	// Children: u is v's child iff u's chosen parent is v.
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		pPort := t.ParentPort[v]
		parent := int(g.Neighbors(v)[pPort])
		for port, u := range g.Neighbors(parent) {
			if int(u) == v {
				t.ChildPorts[parent] = append(t.ChildPorts[parent], port)
			}
		}
	}
	return t, nil
}

// MaxWeightClass finds the maximum-total-weight colour class distributedly:
// a pipelined convergecast of the k per-colour weight sums up the tree
// (one (colour, sum) pair per edge per round — CONGEST-sized), an argmax at
// the root, and a winner broadcast back down. Round cost ≈ depth + k +
// depth, the Ω(D) barrier of Open Question 2. Returns the winning class as
// an independent set (colour classes of proper colourings are independent).
func MaxWeightClass(g *graph.Graph, col *Result, tree *Tree, opts ...congest.Option) ([]bool, int, *congest.Result, error) {
	k := col.NumColors
	res, err := congest.Run(g, func() congest.Process {
		return &classAggregate{colors: col.Colors, k: k, tree: tree}
	}, opts...)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("coloring: aggregation: %w", err)
	}
	winner := -1
	set := make([]bool, g.N())
	for v, out := range res.Outputs {
		w, ok := out.(int)
		if !ok || w < 0 {
			return nil, 0, nil, fmt.Errorf("coloring: node %d never learned the winner", v)
		}
		if winner == -1 {
			winner = w
		} else if winner != w {
			return nil, 0, nil, fmt.Errorf("coloring: nodes disagree on winner (%d vs %d)", winner, w)
		}
		set[v] = col.Colors[v] == w
	}
	return set, winner, res, nil
}

// classAggregate is one node's state in MaxWeightClass.
type classAggregate struct {
	info   congest.NodeInfo
	colors []int
	k      int
	tree   *Tree

	sums      []int64 // accumulated per-colour subtree sums
	childDone []int   // per colour: number of children whose value arrived
	sentUpTo  int     // last colour index already sent to the parent
	winner    int
	maxSum    int64
}

func (p *classAggregate) Init(info congest.NodeInfo) {
	p.info = info
	p.sums = make([]int64, p.k)
	p.childDone = make([]int, p.k)
	p.sums[p.colors[info.Index]] += info.Weight
	p.sentUpTo = -1
	p.winner = -1
	p.maxSum = int64(info.NUpper) * info.MaxWeight
	if p.maxSum < info.MaxWeight { // overflow guard; generators keep n·W < 2^61
		p.maxSum = 1 << 61
	}
}

func (p *classAggregate) isRoot() bool { return p.tree.ParentPort[p.info.Index] == -1 }

func (p *classAggregate) children() []int { return p.tree.ChildPorts[p.info.Index] }

// colourComplete reports whether colour c has arrived from every child.
func (p *classAggregate) colourComplete(c int) bool {
	return p.childDone[c] == len(p.children())
}

func (p *classAggregate) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	// Absorb: child pairs move sums up; a parent message announces the
	// winner.
	for port, m := range recv {
		if m == nil {
			continue
		}
		r := m.Reader()
		isDown, e1 := r.ReadBool()
		c64, e2 := r.ReadUint(uint64(p.k - 1))
		sum, e3 := r.ReadInt(p.maxSum)
		if e1 != nil || e2 != nil || e3 != nil || int(c64) >= p.k {
			continue // garbled under faults: treat as missing
		}
		if isDown {
			p.winner = int(c64)
			continue
		}
		c := int(c64)
		p.sums[c] += sum
		p.childDone[c]++
		_ = port
	}

	// Downward phase: forward the winner once and stop.
	if p.winner >= 0 {
		return p.forwardWinner(), true
	}

	// Root argmax once everything arrived.
	if p.isRoot() {
		all := true
		for c := 0; c < p.k; c++ {
			if !p.colourComplete(c) {
				all = false
				break
			}
		}
		if all {
			best := 0
			for c := 1; c < p.k; c++ {
				if p.sums[c] > p.sums[best] {
					best = c
				}
			}
			p.winner = best
			return p.forwardWinner(), true
		}
		return nil, false
	}

	// Upward pipeline: send the next complete colour to the parent.
	if next := p.sentUpTo + 1; next < p.k && p.colourComplete(next) {
		p.sentUpTo = next
		var w wire.Writer
		w.WriteBool(false)
		w.WriteUint(uint64(next), uint64(p.k-1))
		w.WriteInt(p.sums[next], p.maxSum)
		out := make([]*congest.Message, p.info.Degree)
		out[p.tree.ParentPort[p.info.Index]] = congest.NewMessage(&w)
		return out, false
	}
	return nil, false
}

func (p *classAggregate) forwardWinner() []*congest.Message {
	out := make([]*congest.Message, p.info.Degree)
	if len(p.children()) == 0 {
		return out
	}
	var w wire.Writer
	w.WriteBool(true)
	w.WriteUint(uint64(p.winner), uint64(p.k-1))
	w.WriteInt(0, p.maxSum)
	m := congest.NewMessage(&w)
	for _, port := range p.children() {
		out[port] = m
	}
	return out
}

func (p *classAggregate) Output() any { return p.winner }

// ColorClassApprox is the end-to-end Section 8 pipeline: (Δ+1)-colour the
// graph, elect a root and build a BFS tree by flooding (a genuine CONGEST
// protocol; nodes are assumed to know a bound on the diameter, the
// standard BFS assumption), then select the maximum-weight colour class
// over the tree. The returned set is an independent set of weight
// ≥ w(V)/(Δ+1) — a (Δ+1)-approximation — but the round count carries the
// Θ(D) flooding/aggregation cost that Open Question 2 asks whether one can
// avoid. Returns the set, total measured rounds, and the tree depth.
func ColorClassApprox(g *graph.Graph, seed uint64, opts ...congest.Option) ([]bool, int, int, error) {
	col, err := RandomGreedy(g, append(opts, congest.WithSeed(seed))...)
	if err != nil {
		return nil, 0, 0, err
	}
	// The diameter bound handed to the flooding protocol ("nodes know D"):
	// one eccentricity e satisfies e ≤ D ≤ 2e.
	ecc := 0
	for _, d := range g.BFSDistances(0) {
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	budget := 2*(ecc+1) + 2
	tree, bfsExec, err := DistributedBFSTree(g, budget, append(opts, congest.WithSeed(seed+2))...)
	if err != nil {
		return nil, 0, 0, err
	}
	set, _, exec, err := MaxWeightClass(g, col, tree, append(opts, congest.WithSeed(seed+1))...)
	if err != nil {
		return nil, 0, 0, err
	}
	totalRounds := col.Exec.Rounds + bfsExec.Rounds + exec.Rounds
	return set, totalRounds, tree.Depth, nil
}
