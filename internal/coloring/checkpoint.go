package coloring

// Checkpoint/Restore implement the reliable transport's Checkpointer
// interface (internal/reliable) for the coloring processes: a snapshot is a
// value copy of the process struct with its mutable slices deep-copied, and
// Restore copies back out of the snapshot so the same snapshot can serve
// repeated crashes. Read-only configuration slices shared across nodes
// (succPorts, colors) stay shared. The embedded NodeInfo's Rand pointer
// also deliberately stays shared — the transport snapshots and restores the
// underlying randomness stream itself.

func (p *coleVishkin) Checkpoint() any {
	s := *p
	return &s
}

func (p *coleVishkin) Restore(state any) {
	*p = *state.(*coleVishkin)
}

func (p *greedyColour) Checkpoint() any {
	s := *p
	s.taken = append([]bool(nil), p.taken...)
	return &s
}

func (p *greedyColour) Restore(state any) {
	s := state.(*greedyColour)
	taken := append([]bool(nil), s.taken...)
	*p = *s
	p.taken = taken
}

func (p *colourClassMIS) Checkpoint() any {
	s := *p
	return &s
}

func (p *colourClassMIS) Restore(state any) {
	*p = *state.(*colourClassMIS)
}
