package coloring

import (
	"fmt"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/wire"
)

// CanonicalRingSuccessorPorts returns, for the canonical n-cycle produced
// by gen.Cycle, each node's port towards its successor (v+1 mod n). An
// oriented ring is the standard input assumption of Cole–Vishkin; the
// orientation is part of the instance, not something the nodes compute.
func CanonicalRingSuccessorPorts(n int) []int {
	ports := make([]int, n)
	for v := 0; v < n; v++ {
		switch v {
		case 0, n - 1:
			// Node 0's sorted neighbours are [1, n-1]: successor 1 is port 0.
			// Node n-1's sorted neighbours are [0, n-2]: successor 0 is port 0.
			ports[v] = 0
		default:
			// Sorted neighbours are [v-1, v+1]: successor is port 1.
			ports[v] = 1
		}
	}
	return ports
}

// ColeVishkinRing computes a deterministic proper 3-colouring of an
// oriented ring in O(log* n) rounds — the upper bound matching the
// Ω(log* n) cycle lower bounds of Linial [34] and Naor [36] (the paper's
// Theorem 7). succPort[v] is node v's port towards its ring successor.
//
// Phase 1 runs the classic bit-index reduction against the predecessor's
// colour until the palette is {0..5}; the iteration count is derived
// deterministically from the identifier bound, so all nodes stop together.
// Phase 2 removes colours 5, 4, 3 one at a time.
func ColeVishkinRing(g *graph.Graph, succPort []int, opts ...congest.Option) (*Result, error) {
	n := g.N()
	if n < 3 {
		return nil, fmt.Errorf("coloring: ring needs n ≥ 3, got %d", n)
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != 2 {
			return nil, fmt.Errorf("coloring: node %d has degree %d; not a ring", v, g.Degree(v))
		}
		if succPort[v] != 0 && succPort[v] != 1 {
			return nil, fmt.Errorf("coloring: bad successor port for node %d", v)
		}
	}
	res, err := congest.Run(g, func() congest.Process {
		return &coleVishkin{succPorts: succPort}
	}, opts...)
	if err != nil {
		return nil, fmt.Errorf("coloring: cole-vishkin: %w", err)
	}
	return collect(g, res)
}

// cvReductionRounds computes how many bit-index reductions shrink a colour
// space of the given size into {0..5}. Every node derives the same count
// from the shared identifier bound — this is where the log* comes from.
func cvReductionRounds(space uint64) int {
	rounds := 0
	for space > 6 {
		bitsNeeded := uint64(wire.BitsFor(space - 1))
		space = 2 * bitsNeeded
		rounds++
	}
	return rounds
}

type coleVishkin struct {
	info      congest.NodeInfo
	succPorts []int
	succPort  int
	predPort  int
	colour    uint64
	space     uint64 // current colour-space size
	reduce    int    // remaining phase-1 rounds
	needSeed  bool   // phase 2 needs an initial both-sides announcement
	phase2    int    // 0,1,2 → removing colour 5,4,3
}

func (p *coleVishkin) Init(info congest.NodeInfo) {
	p.info = info
	p.succPort = p.succPorts[info.Index]
	p.predPort = 1 - p.succPort
	p.colour = info.ID
	p.space = info.MaxID + 1
	p.reduce = cvReductionRounds(p.space)
	// Tiny identifier spaces skip phase 1 entirely; phase 2 still needs to
	// hear both neighbours before recolouring.
	p.needSeed = p.reduce == 0
}

// sendColour emits the current colour on the given ports.
func (p *coleVishkin) sendColour(ports ...int) []*congest.Message {
	var w wire.Writer
	w.WriteUint(p.colour, p.space-1)
	m := congest.NewMessage(&w)
	out := make([]*congest.Message, p.info.Degree)
	for _, port := range ports {
		out[port] = m
	}
	return out
}

func (p *coleVishkin) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	if p.needSeed {
		p.needSeed = false
		return p.sendColour(0, 1), false
	}
	if p.reduce > 0 {
		// Phase 1. Round 1 just seeds the pipeline; afterwards each round
		// consumes the predecessor's colour and emits the reduced one.
		if round > 1 {
			predColour := p.colour ^ 1 // fallback: pretend pred differs in bit 0
			if m := recv[p.predPort]; m != nil {
				r := m.Reader()
				c, err := r.ReadUint(p.space - 1)
				// Exact-width check rejects stale duplicates from earlier
				// rounds (wider colour space); equality can only arise from
				// injected faults and would loop applyReduction forever.
				if err == nil && r.Remaining() == 0 && c != p.colour {
					predColour = c
				}
			}
			p.applyReduction(predColour)
			p.reduce--
			if p.reduce == 0 {
				p.space = 6
				// Fall through to phase 2 seeding: announce to both sides.
				return p.sendColour(0, 1), false
			}
		}
		return p.sendColour(p.succPort), false
	}

	// Phase 2: three sub-phases of (hear both neighbours, recolour if mine
	// is the colour being removed, announce). Each sub-phase is one round
	// after the initial both-sides announcement.
	removing := uint64(5 - p.phase2)
	used := [6]bool{}
	for _, m := range recv {
		if m == nil {
			continue
		}
		r := m.Reader()
		c, err := r.ReadUint(p.space - 1)
		if err != nil || r.Remaining() != 0 {
			continue // garbled or stale duplicate under faults: treat as missing
		}
		if c < 6 {
			used[c] = true
		}
	}
	if p.colour == removing {
		for c := uint64(0); c < 3; c++ {
			if !used[c] {
				p.colour = c
				break
			}
		}
	}
	p.phase2++
	if p.phase2 == 3 {
		return nil, true
	}
	return p.sendColour(0, 1), false
}

// applyReduction is the Cole–Vishkin step: find the lowest bit where the
// own colour differs from the predecessor's and encode (index, bit).
func (p *coleVishkin) applyReduction(pred uint64) {
	diff := p.colour ^ pred
	k := uint64(0)
	for diff&1 == 0 {
		diff >>= 1
		k++
	}
	bit := (p.colour >> k) & 1
	p.colour = 2*k + bit
	bitsNeeded := uint64(wire.BitsFor(p.space - 1))
	p.space = 2 * bitsNeeded
}

func (p *coleVishkin) Output() any { return int(p.colour) }

// RingMIS composes Cole–Vishkin with the colouring→MIS conversion: a
// deterministic MIS of an oriented ring in O(log* n) rounds, matching
// Naor's randomized lower bound (Theorem 7) from above. Returns the MIS,
// the total rounds, and the colouring used.
func RingMIS(g *graph.Graph, succPort []int, opts ...congest.Option) ([]bool, int, *Result, error) {
	col, err := ColeVishkinRing(g, succPort, opts...)
	if err != nil {
		return nil, 0, nil, err
	}
	set, misExec, err := MISFromColoring(g, col, opts...)
	if err != nil {
		return nil, 0, nil, err
	}
	return set, col.Exec.Rounds + misExec.Rounds, col, nil
}
