package coloring

import (
	"fmt"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/wire"
)

// DistributedBFSTree builds a BFS tree as a genuine CONGEST protocol: the
// maximum-identifier node elects itself the root via flooding, and every
// node adopts as parent the port on which the best (rootID, distance) pair
// first arrived. The protocol runs for the caller-supplied round budget,
// which must be at least the graph's diameter plus one (the standard
// "known bound on D" assumption for BFS; an n-derived bound works but
// costs n rounds).
//
// Returns the tree and the executed rounds. It exists to back
// ColorClassApprox with a fully distributed pipeline and to measure the
// Θ(D) flooding cost of Open Question 2 directly rather than charging it
// analytically.
func DistributedBFSTree(g *graph.Graph, budget int, opts ...congest.Option) (*Tree, *congest.Result, error) {
	if g.N() == 0 {
		return &Tree{}, &congest.Result{}, nil
	}
	res, err := congest.Run(g, func() congest.Process {
		return &bfsBuild{budget: budget}
	}, opts...)
	if err != nil {
		return nil, nil, fmt.Errorf("coloring: distributed BFS: %w", err)
	}
	// Assemble the tree from per-node (rootID, dist, parentPort) outputs.
	type nodeOut struct {
		rootID     uint64
		dist       int
		parentPort int
	}
	outs := make([]nodeOut, g.N())
	var rootID uint64
	for v, o := range res.Outputs {
		bo, ok := o.(bfsOutput)
		if !ok {
			return nil, nil, fmt.Errorf("coloring: node %d produced no BFS state", v)
		}
		outs[v] = nodeOut{rootID: bo.RootID, dist: bo.Dist, parentPort: bo.ParentPort}
		if bo.RootID > rootID {
			rootID = bo.RootID
		}
	}
	tree := &Tree{ParentPort: make([]int, g.N()), ChildPorts: make([][]int, g.N())}
	for v := 0; v < g.N(); v++ {
		if outs[v].rootID != rootID {
			return nil, nil, fmt.Errorf("coloring: node %d never heard the root; budget %d below diameter", v, budget)
		}
		tree.ParentPort[v] = outs[v].parentPort
		if outs[v].parentPort == -1 {
			tree.Root = v
		}
		if outs[v].dist > tree.Depth {
			tree.Depth = outs[v].dist
		}
	}
	for v := 0; v < g.N(); v++ {
		if v == tree.Root {
			continue
		}
		parent := int(g.Neighbors(v)[tree.ParentPort[v]])
		for port, u := range g.Neighbors(parent) {
			if int(u) == v {
				tree.ChildPorts[parent] = append(tree.ChildPorts[parent], port)
				break
			}
		}
	}
	return tree, res, nil
}

// bfsOutput is a node's final BFS state.
type bfsOutput struct {
	RootID     uint64
	Dist       int
	ParentPort int
}

// bfsBuild floods (rootID, dist) pairs; each node keeps the
// lexicographically best (max rootID, min dist) and remembers the port it
// arrived on.
type bfsBuild struct {
	info       congest.NodeInfo
	budget     int
	rootID     uint64
	dist       int
	parentPort int
	changed    bool
}

func (p *bfsBuild) Init(info congest.NodeInfo) {
	p.info = info
	p.rootID = info.ID
	p.dist = 0
	p.parentPort = -1
	p.changed = true
}

func (p *bfsBuild) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	for port, m := range recv {
		if m == nil {
			continue
		}
		r := m.Reader()
		id, e1 := r.ReadUint(p.info.MaxID)
		d64, e2 := r.ReadUint(uint64(p.info.NUpper))
		if e1 != nil || e2 != nil {
			continue // garbled under faults: treat as missing
		}
		d := int(d64) + 1
		if id > p.rootID || (id == p.rootID && d < p.dist) {
			p.rootID = id
			p.dist = d
			p.parentPort = port
			p.changed = true
		}
	}
	done := round >= p.budget
	if !p.changed {
		return nil, done
	}
	p.changed = false
	var w wire.Writer
	w.WriteUint(p.rootID, p.info.MaxID)
	w.WriteUint(uint64(p.dist), uint64(p.info.NUpper))
	return broadcast(congest.NewMessage(&w), p.info.Degree), done
}

func (p *bfsBuild) Output() any {
	return bfsOutput{RootID: p.rootID, Dist: p.dist, ParentPort: p.parentPort}
}
