package coloring

import (
	"testing"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/mis"
	"distmwis/internal/stats"
)

func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	return map[string]*graph.Graph{
		"single":    gen.Path(1),
		"path":      gen.Path(20),
		"cycle":     gen.Cycle(33),
		"clique":    gen.Clique(17),
		"star":      gen.Star(25),
		"gnp":       gen.GNP(200, 0.05, 3),
		"tree":      gen.RandomTree(120, 4),
		"bipartite": gen.CompleteBipartite(7, 9),
		"isolated":  graph.NewBuilder(8).MustBuild(),
	}
}

func TestRandomGreedyProperColoring(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				col, err := RandomGreedy(g, congest.WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				if err := Verify(g, col.Colors, g.MaxDegree()+1); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestRandomGreedyRoundsLogarithmic(t *testing.T) {
	g := gen.GNP(2048, 0.005, 5)
	col, err := RandomGreedy(g, congest.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if col.Exec.Rounds > 60 {
		t.Errorf("colouring took %d rounds on n=2048, want O(log n)", col.Exec.Rounds)
	}
}

func TestVerifyRejects(t *testing.T) {
	g := gen.Path(3)
	if err := Verify(g, []int{0, 0, 1}, 2); err == nil {
		t.Error("accepted monochromatic edge")
	}
	if err := Verify(g, []int{0, 1, -1}, 2); err == nil {
		t.Error("accepted uncoloured node")
	}
	if err := Verify(g, []int{0, 5, 0}, 2); err == nil {
		t.Error("accepted colour above limit")
	}
	if err := Verify(g, []int{0, 1}, 2); err == nil {
		t.Error("accepted wrong length")
	}
}

func TestMISFromColoring(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			col, err := RandomGreedy(g, congest.WithSeed(2))
			if err != nil {
				t.Fatal(err)
			}
			set, exec, err := MISFromColoring(g, col, congest.WithSeed(3))
			if err != nil {
				t.Fatal(err)
			}
			if err := mis.Verify(g, set); err != nil {
				t.Fatal(err)
			}
			// k+1 rounds suffice.
			if exec.Rounds > col.NumColors+1 {
				t.Errorf("conversion took %d rounds for %d colours", exec.Rounds, col.NumColors)
			}
		})
	}
}

func TestColeVishkinRing3Coloring(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 64, 1024, 65536} {
		g := gen.Cycle(n)
		col, err := ColeVishkinRing(g, CanonicalRingSuccessorPorts(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := Verify(g, col.Colors, 3); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestColeVishkinWithScatteredIDs(t *testing.T) {
	// Large identifier space exercises more reduction iterations.
	g := gen.RandomIDs(gen.Cycle(256), 1<<40, 9)
	ports := CanonicalRingSuccessorPorts(256)
	col, err := ColeVishkinRing(g, ports)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, col.Colors, 3); err != nil {
		t.Fatal(err)
	}
}

func TestColeVishkinRoundsAreLogStar(t *testing.T) {
	// Rounds must track log*(maxID), not log n: going from n=2^6 to n=2^16
	// should add only a couple of rounds.
	r6, err := ColeVishkinRing(gen.Cycle(1<<6), CanonicalRingSuccessorPorts(1<<6))
	if err != nil {
		t.Fatal(err)
	}
	r16, err := ColeVishkinRing(gen.Cycle(1<<16), CanonicalRingSuccessorPorts(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if r16.Exec.Rounds > r6.Exec.Rounds+4 {
		t.Errorf("rounds grew from %d to %d over a 1024x size increase; want log* growth",
			r6.Exec.Rounds, r16.Exec.Rounds)
	}
	if got, want := r16.Exec.Rounds, 3*stats.LogStar(1<<16)+10; got > want {
		t.Errorf("rounds %d exceed ~O(log* n) budget %d", got, want)
	}
}

func TestColeVishkinRejectsNonRing(t *testing.T) {
	if _, err := ColeVishkinRing(gen.Path(5), make([]int, 5)); err == nil {
		t.Error("accepted a path")
	}
	if _, err := ColeVishkinRing(gen.Cycle(3), []int{0, 0, 7}); err == nil {
		t.Error("accepted a bad port map")
	}
}

func TestRingMIS(t *testing.T) {
	for _, n := range []int{5, 32, 513, 4096} {
		g := gen.Cycle(n)
		set, rounds, col, err := RingMIS(g, CanonicalRingSuccessorPorts(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := mis.Verify(g, set); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if col.NumColors > 3 {
			t.Errorf("n=%d: %d colours", n, col.NumColors)
		}
		if rounds > 25 {
			t.Errorf("n=%d: deterministic ring MIS took %d rounds, want O(log* n)", n, rounds)
		}
	}
}

func TestBuildBFSTree(t *testing.T) {
	g := gen.Grid(5, 8)
	tree, err := BuildBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth != 4+7 {
		t.Errorf("depth = %d, want 11", tree.Depth)
	}
	// Every non-root has a parent; child lists are consistent.
	childCount := 0
	for v := 0; v < g.N(); v++ {
		if v == tree.Root {
			if tree.ParentPort[v] != -1 {
				t.Error("root has a parent")
			}
		} else if tree.ParentPort[v] < 0 {
			t.Errorf("node %d has no parent", v)
		}
		childCount += len(tree.ChildPorts[v])
	}
	if childCount != g.N()-1 {
		t.Errorf("tree has %d child edges, want n-1 = %d", childCount, g.N()-1)
	}
}

func TestBuildBFSTreeDisconnected(t *testing.T) {
	if _, err := BuildBFSTree(graph.NewBuilder(4).MustBuild(), 0); err == nil {
		t.Error("accepted a disconnected graph")
	}
}

func TestMaxWeightClass(t *testing.T) {
	g := gen.Weighted(gen.GNP(150, 0.04, 7), gen.UniformWeights(100), 7)
	// GNP may be disconnected; patch connectivity through a spanning path.
	b := graph.NewBuilder(g.N())
	b.SetWeights(g.Weights())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				b.AddEdge(v, int(u))
			}
		}
	}
	for v := 0; v+1 < g.N(); v++ {
		b.AddEdge(v, v+1)
	}
	g = b.MustBuild()

	col, err := RandomGreedy(g, congest.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	set, winner, exec, err := MaxWeightClass(g, col, tree, congest.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(set) {
		t.Fatal("colour class not independent")
	}
	// The winner must really be the argmax class.
	sums := make([]int64, col.NumColors)
	for v := 0; v < g.N(); v++ {
		sums[col.Colors[v]] += g.Weight(v)
	}
	for c, s := range sums {
		if s > sums[winner] {
			t.Errorf("class %d has weight %d > winner %d's %d", c, s, winner, sums[winner])
		}
	}
	// And the class is a (Δ+1)-approximation of w(V).
	if sums[winner]*int64(col.NumColors) < g.TotalWeight() {
		t.Errorf("winner weight %d below w(V)/k", sums[winner])
	}
	// Pipelined convergecast + broadcast: ≈ 2·depth + k rounds.
	if exec.Rounds > 2*tree.Depth+col.NumColors+5 {
		t.Errorf("aggregation took %d rounds, want ≲ 2·depth+k = %d", exec.Rounds, 2*tree.Depth+col.NumColors)
	}
}

func TestColorClassApproxRoundsScaleWithDiameter(t *testing.T) {
	// The Open Question 2 barrier: on a path (D = n-1) the colour-class
	// pipeline pays Θ(D) rounds; on a low-diameter graph it is cheap.
	pathG := gen.Weighted(gen.Path(400), gen.UniformWeights(50), 1)
	set, rounds, depth, err := ColorClassApprox(pathG, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !pathG.IsIndependentSet(set) {
		t.Fatal("dependent set")
	}
	if rounds < depth {
		t.Errorf("rounds %d below tree depth %d: the D-barrier vanished (bug)", rounds, depth)
	}
	if depth < 100 {
		t.Errorf("path depth = %d, expected Θ(n)", depth)
	}
}
