package coloring

import (
	"testing"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

func TestDistributedBFSTreeMatchesHostTree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		g      *graph.Graph
		budget int
	}{
		{name: "path", g: gen.Path(40), budget: 45},
		{name: "grid", g: gen.Grid(8, 8), budget: 20},
		{name: "cycle", g: gen.Cycle(30), budget: 20},
		{name: "clique", g: gen.Clique(12), budget: 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			tree, exec, err := DistributedBFSTree(g, tc.budget)
			if err != nil {
				t.Fatal(err)
			}
			// Root must be the max-ID node.
			wantRoot := 0
			for v := 1; v < g.N(); v++ {
				if g.ID(v) > g.ID(wantRoot) {
					wantRoot = v
				}
			}
			if tree.Root != wantRoot {
				t.Errorf("root = %d, want max-ID node %d", tree.Root, wantRoot)
			}
			// Depths must equal true BFS distances.
			host, err := BuildBFSTree(g, wantRoot)
			if err != nil {
				t.Fatal(err)
			}
			if tree.Depth != host.Depth {
				t.Errorf("depth = %d, want %d", tree.Depth, host.Depth)
			}
			// Structure sanity: n-1 child edges, every non-root parented.
			edges := 0
			for v := 0; v < g.N(); v++ {
				edges += len(tree.ChildPorts[v])
				if v != tree.Root && tree.ParentPort[v] < 0 {
					t.Errorf("node %d unparented", v)
				}
			}
			if edges != g.N()-1 {
				t.Errorf("%d tree edges, want %d", edges, g.N()-1)
			}
			if exec.Rounds != tc.budget {
				t.Errorf("rounds = %d, want the budget %d (synchronous BFS runs its full budget)", exec.Rounds, tc.budget)
			}
		})
	}
}

func TestDistributedBFSTreeBudgetTooSmall(t *testing.T) {
	g := gen.Path(50)
	if _, _, err := DistributedBFSTree(g, 3); err == nil {
		t.Error("expected failure when the budget is below the diameter")
	}
}

func TestDistributedBFSTreeFeedsAggregation(t *testing.T) {
	// End-to-end: distributed tree + convergecast give the same winner as
	// the host-built tree.
	g := gen.Weighted(gen.Grid(10, 10), gen.UniformWeights(100), 4)
	col, err := RandomGreedy(g, congest.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	dTree, _, err := DistributedBFSTree(g, 2*19+2, congest.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	_, winD, _, err := MaxWeightClass(g, col, dTree, congest.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	hTree, err := BuildBFSTree(g, dTree.Root)
	if err != nil {
		t.Fatal(err)
	}
	_, winH, _, err := MaxWeightClass(g, col, hTree, congest.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if winD != winH {
		t.Errorf("winners differ: distributed %d vs host %d", winD, winH)
	}
}
