package coloring

import (
	"testing"

	"distmwis/internal/reliable"
)

// The coloring processes must satisfy the reliable transport's
// Checkpointer interface so crash recovery can snapshot them.
var (
	_ reliable.Checkpointer = (*coleVishkin)(nil)
	_ reliable.Checkpointer = (*greedyColour)(nil)
	_ reliable.Checkpointer = (*colourClassMIS)(nil)
)

func TestCheckpointIsolation(t *testing.T) {
	p := &greedyColour{taken: []bool{true, false}, colour: 3, proposal: 1}
	snap := p.Checkpoint()
	p.taken[1] = true
	p.colour = 7
	p.Restore(snap)
	if p.colour != 3 || p.taken[1] {
		t.Errorf("restore did not rewind state: %+v", p)
	}
	// Mutating after restore must not corrupt the snapshot for a second
	// restore.
	p.taken[0] = false
	p.Restore(snap)
	if !p.taken[0] {
		t.Error("snapshot aliased live state")
	}
}
