package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// TestRingSingleBackend: with one member, every key has exactly one owner
// and the failover sequence is that member alone.
func TestRingSingleBackend(t *testing.T) {
	r := NewRing(128)
	r.Set([]string{"http://a"})
	for _, k := range ringKeys(1000) {
		m, ok := r.Lookup(k)
		if !ok || m != "http://a" {
			t.Fatalf("Lookup(%q) = %q, %t; want the only member", k, m, ok)
		}
		seq := r.Sequence(k)
		if len(seq) != 1 || seq[0] != "http://a" {
			t.Fatalf("Sequence(%q) = %v", k, seq)
		}
	}
}

// TestRingEmpty: an empty ring owns nothing — the coordinator's cue to
// fall back to its local degraded tier.
func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Lookup("anything"); ok {
		t.Fatal("empty ring claimed to own a key")
	}
	if seq := r.Sequence("anything"); seq != nil {
		t.Fatalf("empty ring returned sequence %v", seq)
	}
	if r.Size() != 0 {
		t.Fatalf("Size = %d", r.Size())
	}
	// Set then clear: back to empty.
	r.Set([]string{"a", "b"})
	r.Set(nil)
	if _, ok := r.Lookup("anything"); ok {
		t.Fatal("cleared ring claimed to own a key")
	}
}

// TestRingStabilityOnRemove: removing one of N members must not move any
// key owned by a survivor — the exact consistent-hashing invariant, not an
// approximation, since surviving members keep their points.
func TestRingStabilityOnRemove(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(128)
	r.Set(members)
	keys := ringKeys(20000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}

	r.Set([]string{"http://a", "http://b", "http://d"}) // c dies
	moved := 0
	for _, k := range keys {
		after, _ := r.Lookup(k)
		switch {
		case before[k] == "http://c":
			moved++
			if after == "http://c" {
				t.Fatalf("key %q still owned by removed member", k)
			}
		case after != before[k]:
			t.Fatalf("key %q moved %s → %s though neither was removed", k, before[k], after)
		}
	}
	// c owned roughly a quarter of the keyspace; its keys are the only
	// movers.
	if moved == 0 {
		t.Fatal("removed member owned zero keys — vnode spread broken")
	}
	frac := float64(moved) / float64(len(keys))
	if frac > 1.0/float64(len(members))+0.06 {
		t.Fatalf("%.1f%% of keys moved on one removal; want about 1/N = 25%%", 100*frac)
	}
}

// TestRingStabilityOnAdd: adding a member moves only keys that now belong
// to it, about 1/N of the keyspace.
func TestRingStabilityOnAdd(t *testing.T) {
	r := NewRing(128)
	r.Set([]string{"http://a", "http://b", "http://c"})
	keys := ringKeys(20000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}

	r.Set([]string{"http://a", "http://b", "http://c", "http://d"})
	moved := 0
	for _, k := range keys {
		after, _ := r.Lookup(k)
		if after == before[k] {
			continue
		}
		if after != "http://d" {
			t.Fatalf("key %q moved %s → %s, but only the new member may gain keys",
				k, before[k], after)
		}
		moved++
	}
	frac := float64(moved) / float64(len(keys))
	if frac == 0 {
		t.Fatal("new member gained zero keys")
	}
	if frac > 0.25+0.06 {
		t.Fatalf("%.1f%% of keys moved on one addition; want about 1/N = 25%%", 100*frac)
	}
}

// TestRingSequenceDistinct: the failover sequence visits every member
// exactly once, starting at the owner.
func TestRingSequenceDistinct(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	r := NewRing(64)
	r.Set(members)
	for _, k := range ringKeys(200) {
		seq := r.Sequence(k)
		if len(seq) != len(members) {
			t.Fatalf("Sequence(%q) has %d members, want %d", k, len(seq), len(members))
		}
		owner, _ := r.Lookup(k)
		if seq[0] != owner {
			t.Fatalf("Sequence(%q) starts at %q, owner is %q", k, seq[0], owner)
		}
		seen := make(map[string]bool)
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("Sequence(%q) repeats %q", k, m)
			}
			seen[m] = true
		}
	}
}

// TestRingBalance: with enough vnodes the keyspace spreads across members
// without any member starving or hogging. (Balance tightens with vnode
// count; 512 holds every member within roughly ±half of fair share.)
func TestRingBalance(t *testing.T) {
	members := []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080", "http://10.0.0.3:8080", "http://10.0.0.4:8080"}
	r := NewRing(512)
	r.Set(members)
	counts := make(map[string]int)
	keys := ringKeys(40000)
	for _, k := range keys {
		m, _ := r.Lookup(k)
		counts[m]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / float64(len(keys))
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys; vnode spread is off", m, 100*frac)
		}
	}
}

// TestRingDuplicatesCollapse: Set with duplicates behaves as the dedup set.
func TestRingDuplicatesCollapse(t *testing.T) {
	r := NewRing(32)
	r.Set([]string{"a", "b", "a", "b", "a"})
	if r.Size() != 2 {
		t.Fatalf("Size = %d after duplicated Set, want 2", r.Size())
	}
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members = %v", got)
	}
}
