package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring over backend names: each member owns a set
// of virtual points on a 64-bit circle and a key belongs to the member
// whose point follows the key's hash clockwise. The property the front
// tier buys with this: membership changes move only the keys adjacent to
// the changed member's points — about 1/N of the keyspace when one of N
// members joins or leaves — so the content-addressed caches on the
// surviving backends stay warm through a rebalance.
//
// Concurrency-safe; Set replaces the membership wholesale (the prober's
// view of alive backends) and Lookup/Sequence are read-side.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	members  []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds an empty ring with the given virtual points per member
// (≤ 0 selects the default 128).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 128
	}
	return &Ring{replicas: replicas}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Set replaces the ring's membership. Order of members is irrelevant;
// duplicates collapse. The point layout of a member depends only on its
// own name, so members shared between two Set calls keep their exact
// points — the stability guarantee everything else builds on.
func (r *Ring) Set(members []string) {
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	points := make([]ringPoint, 0, len(uniq)*r.replicas)
	for _, m := range uniq {
		for i := 0; i < r.replicas; i++ {
			points = append(points, ringPoint{hash: hash64(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		return points[a].member < points[b].member
	})
	r.mu.Lock()
	r.points = points
	r.members = uniq
	r.mu.Unlock()
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.members...)
}

// Size returns the current member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns the member owning key, or false on an empty ring.
func (r *Ring) Lookup(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.searchLocked(key)].member, true
}

// Sequence returns every member in ring order starting from key's owner —
// the deterministic failover order: if the owner is unreachable the next
// distinct member clockwise takes the key, and so on.
func (r *Ring) Sequence(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i, start := 0, r.searchLocked(key); i < len(r.points) && len(out) < len(r.members); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// searchLocked finds the index of the first point at or clockwise-after
// key's hash.
func (r *Ring) searchLocked(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return i
}
