// Package cluster is the horizontally-scaled serving topology for maxisd:
// a coordinator that cuts a solve into partitions (internal/partition),
// fans the parts out to N backend maxisd workers over the fault-tolerant
// internal/server/client, reconciles cut-edge conflicts with the
// lower-weight-endpoint-withdraws repair rule (the local-ratio conflict
// monitor of internal/reliable, applied to exactly the edges no part
// solver saw), and fronts the whole fleet with a consistent-hash ring so
// repeat content routes to the backend already holding the cached answer.
//
// Correctness story, in order:
//
//  1. each part is solved independently — valid because MWIS solvers never
//     need edges they cannot see, so every part answer is independent
//     within its part;
//  2. the union of part answers can conflict only on cut edges; for each,
//     the lower-weight endpoint withdraws (deterministic tie-break:
//     higher index), restoring independence;
//  3. a weight-ordered re-admission pass makes the set maximal again
//     (withdrawals can strand admissible nodes);
//  4. the answer is verified independent against the full graph and
//     floored against the coordinator-local degraded greedy tier: the
//     published set is never lighter than what one saturated node would
//     have answered, making sharding a strict availability upgrade.
//
// Backend death is detected two ways: a failed part solve (after the
// client's own retries) marks the backend dead immediately and fails the
// part over along the ring's clockwise sequence, and a background prober
// polls /readyz to both confirm deaths and resurrect recovered nodes,
// rebalancing the ring on every membership change.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/partition"
	"distmwis/internal/server"
	"distmwis/internal/server/client"
)

// Options tunes a Coordinator. The zero value is usable.
type Options struct {
	// Partitions is the part count per fan-out solve (default: the backend
	// count).
	Partitions int
	// Balance is the partition balance factor (see partition.Options).
	Balance float64
	// MinFanoutNodes is the graph size below which the coordinator skips
	// partitioning and routes the whole request to the ring owner of its
	// content key (default 64) — fan-out overhead beats solve time on
	// small graphs, and whole-graph routing keeps their cache locality.
	MinFanoutNodes int
	// Client configures the per-backend fault-tolerant clients.
	Client client.Options
	// ProbeInterval is the /readyz poll cadence (default 250ms; negative
	// disables the prober — tests drive ProbeOnce directly).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe (default 1s).
	ProbeTimeout time.Duration
	// Replicas is the ring's virtual points per backend (default 128).
	Replicas int
}

func (o Options) withDefaults(backends int) Options {
	if o.Partitions <= 0 {
		o.Partitions = backends
	}
	if o.Balance == 0 {
		o.Balance = 1.2
	}
	if o.MinFanoutNodes <= 0 {
		o.MinFanoutNodes = 64
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	return o
}

// backend is one maxisd worker: its base URL, its retrying client and its
// liveness flag (optimistically true until a probe or a solve says
// otherwise).
type backend struct {
	name  string
	cl    *client.Client
	alive atomic.Bool
}

// Coordinator fans solves out over a backend fleet. Concurrency-safe.
type Coordinator struct {
	opts     Options
	backends []*backend
	byName   map[string]*backend
	ring     *Ring
	probeC   *http.Client

	mu       sync.Mutex // guards ring rebuilds on membership changes
	stopCh   chan struct{}
	stopOnce sync.Once
	started  bool

	solves      atomic.Int64
	partitioned atomic.Int64
	wholeGraph  atomic.Int64
	partSolves  atomic.Int64
	reroutes    atomic.Int64
	localParts  atomic.Int64
	fallbacks   atomic.Int64
	conflicts   atomic.Int64
	withdrawn   atomic.Int64
	readmitted  atomic.Int64
	floorWins   atomic.Int64
	idSeq       atomic.Int64

	// fanoutOverheadUS is an EWMA (α = 1/8) of the fan-out overhead per
	// partitioned solve — total wall time minus the slowest part's solve
	// time, in microseconds. Per-part deadlines are the request deadline
	// minus this estimate, so backends plan against the time they will
	// actually get, not the time the client granted the coordinator.
	fanoutOverheadUS atomic.Int64

	// Partition-quality gauges, refreshed by every partitioned solve: how
	// many edges the cut crossed, and the max/mean imbalance of part node
	// counts and part weights (×1000, so 1000 = perfectly balanced).
	lastCutEdges            atomic.Int64
	lastPartSizeImbalance   atomic.Int64
	lastPartWeightImbalance atomic.Int64
	cutEdgesTotal           atomic.Int64
}

// Stats is a point-in-time snapshot of the coordinator counters.
type Stats struct {
	Solves        int64 // cluster solves handled
	Partitioned   int64 // solves that fanned out over a partition
	WholeGraph    int64 // solves routed whole to one backend
	PartSolves    int64 // part solves sent to backends
	Reroutes      int64 // part/whole solves failed over past a backend
	LocalParts    int64 // parts answered by the coordinator's degraded tier
	Fallbacks     int64 // whole solves answered locally (no backend alive)
	Conflicts     int64 // cut-edge conflicts found during reconciliation
	Withdrawn     int64 // nodes withdrawn by the repair rule
	Readmitted    int64 // nodes re-admitted after reconciliation
	FloorWins     int64 // answers where the degraded floor beat the merge
	BackendsAlive int
	BackendsTotal int

	// FanoutOverheadUS is the EWMA fan-out overhead estimate (µs) deducted
	// from per-part deadlines.
	FanoutOverheadUS int64
	// CutEdgesTotal accumulates cut edges over all partitioned solves;
	// LastCutEdges and the imbalance gauges describe the most recent one
	// (imbalance = max part / mean part, ×1000).
	CutEdgesTotal           int64
	LastCutEdges            int64
	LastPartSizeImbalance   int64
	LastPartWeightImbalance int64
}

// New builds a Coordinator over the given backend base URLs (e.g.
// "http://127.0.0.1:8081"). Call Start to run the readiness prober.
func New(backends []string, opts Options) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: at least one backend required")
	}
	opts = opts.withDefaults(len(backends))
	c := &Coordinator{
		opts:   opts,
		byName: make(map[string]*backend, len(backends)),
		ring:   NewRing(opts.Replicas),
		probeC: &http.Client{Timeout: opts.ProbeTimeout},
		stopCh: make(chan struct{}),
	}
	for _, name := range backends {
		if _, dup := c.byName[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend %q", name)
		}
		b := &backend{name: name, cl: client.New(name, opts.Client)}
		b.alive.Store(true)
		c.backends = append(c.backends, b)
		c.byName[name] = b
	}
	c.rebuildRing()
	return c, nil
}

// Start launches the background readiness prober. Idempotent.
func (c *Coordinator) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started || c.opts.ProbeInterval < 0 {
		c.started = true
		return
	}
	c.started = true
	go func() {
		tick := time.NewTicker(c.opts.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				c.ProbeOnce(context.Background())
			case <-c.stopCh:
				return
			}
		}
	}()
}

// Stop halts the prober. Idempotent; safe before Start.
func (c *Coordinator) Stop() { c.stopOnce.Do(func() { close(c.stopCh) }) }

// ProbeOnce polls every backend's /readyz once and rebalances the ring on
// membership changes. A dead backend whose /readyz answers 200 again is
// resurrected — crash recovery rejoins the fleet without operator action.
func (c *Coordinator) ProbeOnce(ctx context.Context) {
	changed := false
	for _, b := range c.backends {
		alive := c.probeReady(ctx, b.name)
		if b.alive.Swap(alive) != alive {
			changed = true
		}
	}
	if changed {
		c.mu.Lock()
		c.rebuildRing()
		c.mu.Unlock()
	}
}

func (c *Coordinator) probeReady(ctx context.Context, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.probeC.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// markDead records a backend failure observed in the solve path and
// rebalances immediately — the prober will confirm (or revert) later.
func (c *Coordinator) markDead(b *backend) {
	if b.alive.Swap(false) {
		c.mu.Lock()
		c.rebuildRing()
		c.mu.Unlock()
	}
}

// rebuildRing resets ring membership to the alive backends. Callers hold
// c.mu (or are in New, before concurrency starts).
func (c *Coordinator) rebuildRing() {
	alive := make([]string, 0, len(c.backends))
	for _, b := range c.backends {
		if b.alive.Load() {
			alive = append(alive, b.name)
		}
	}
	c.ring.Set(alive)
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() Stats {
	alive := 0
	for _, b := range c.backends {
		if b.alive.Load() {
			alive++
		}
	}
	return Stats{
		Solves:        c.solves.Load(),
		Partitioned:   c.partitioned.Load(),
		WholeGraph:    c.wholeGraph.Load(),
		PartSolves:    c.partSolves.Load(),
		Reroutes:      c.reroutes.Load(),
		LocalParts:    c.localParts.Load(),
		Fallbacks:     c.fallbacks.Load(),
		Conflicts:     c.conflicts.Load(),
		Withdrawn:     c.withdrawn.Load(),
		Readmitted:    c.readmitted.Load(),
		FloorWins:     c.floorWins.Load(),
		BackendsAlive: alive,
		BackendsTotal: len(c.backends),

		FanoutOverheadUS:        c.fanoutOverheadUS.Load(),
		CutEdgesTotal:           c.cutEdgesTotal.Load(),
		LastCutEdges:            c.lastCutEdges.Load(),
		LastPartSizeImbalance:   c.lastPartSizeImbalance.Load(),
		LastPartWeightImbalance: c.lastPartWeightImbalance.Load(),
	}
}

// PartReport is the provenance of one partition within a cluster answer.
type PartReport struct {
	Part    int    `json:"part"`
	Backend string `json:"backend,omitempty"`
	// GraphHash is the part subgraph's content hash — the routing key, and
	// (for whole-component parts) the PR 8 component fingerprint.
	GraphHash string `json:"graph_hash"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Size      int    `json:"size"`
	Weight    int64  `json:"weight"`
	Cached    bool   `json:"cached,omitempty"`
	Degraded  bool   `json:"degraded,omitempty"`
	// Rerouted reports the part was solved by a non-primary backend after
	// its ring owner failed; Local reports the coordinator's own degraded
	// tier answered because no backend could.
	Rerouted bool `json:"rerouted,omitempty"`
	Local    bool `json:"local,omitempty"`
}

// Response is the body of POST /v1/cluster/solve: a SolveResponse plus the
// sharding provenance.
type Response struct {
	server.SolveResponse
	// Parts is per-partition provenance, ascending part index.
	Parts []PartReport `json:"parts,omitempty"`
	// CutEdges/Conflicts/Withdrawn/Readmitted summarise reconciliation:
	// how many edges crossed parts, how many carried a conflict, and the
	// repair traffic both ways.
	CutEdges   int `json:"cut_edges"`
	Conflicts  int `json:"conflicts"`
	Withdrawn  int `json:"withdrawn"`
	Readmitted int `json:"readmitted"`
	// Verified reports the final set passed a full-graph independence
	// check on the coordinator (always true for a "done" answer).
	Verified bool `json:"verified,omitempty"`
	// Floor reports the coordinator-local degraded greedy answer
	// outweighed the reconciled merge and was returned instead — the
	// never-worse-than-one-node guarantee firing.
	Floor bool `json:"floor,omitempty"`
}

// RequestError marks a caller mistake (HTTP 400).
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// Solve runs one cluster solve: partition, fan out, reconcile, verify.
func (c *Coordinator) Solve(ctx context.Context, req *server.SolveRequest) (Response, error) {
	start := time.Now()
	if err := req.Normalize(); err != nil {
		return Response{}, badRequest("%v", err)
	}
	switch {
	case req.GraphRef != "":
		return Response{}, badRequest("cluster solves do not support graph_ref: dynamic handles live on individual backends")
	case req.Async:
		return Response{}, badRequest("cluster solves are synchronous")
	case req.Fault != nil:
		return Response{}, badRequest("cluster solves do not support fault schedules: a schedule is defined against one graph's node count, not its partitions")
	}
	g, err := req.BuildGraph()
	if err != nil {
		return Response{}, badRequest("graph: %v", err)
	}
	c.solves.Add(1)
	id := fmt.Sprintf("cl-%d", c.idSeq.Add(1))
	finish := func(resp Response) Response {
		resp.ID = id
		resp.GraphHash = g.HashString()
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		return resp
	}

	if c.ring.Size() == 0 {
		// Every backend is dead: the front tier degrades exactly like a
		// saturated single node — the local greedy tier answers, marked
		// degraded, rather than failing the request.
		c.fallbacks.Add(1)
		set, weight := server.GreedyDegraded(g)
		return finish(Response{
			SolveResponse: server.SolveResponse{
				Status:   "done",
				Set:      indices(set),
				Size:     graph.SetSize(set),
				Weight:   weight,
				Degraded: true,
			},
			Parts:    []PartReport{{Part: 0, GraphHash: g.HashString(), N: g.N(), M: g.M(), Size: graph.SetSize(set), Weight: weight, Degraded: true, Local: true}},
			Verified: true,
		}), nil
	}

	if g.N() < c.opts.MinFanoutNodes || c.opts.Partitions <= 1 || req.Degraded {
		resp, err := c.solveWhole(ctx, req, g)
		if err != nil {
			return Response{}, err
		}
		return finish(resp), nil
	}
	resp, err := c.solvePartitioned(ctx, req, g)
	if err != nil {
		return Response{}, err
	}
	return finish(resp), nil
}

// solveWhole routes the unpartitioned request to the ring owner of its
// content key, failing over clockwise; repeat graphs therefore land on the
// node whose cache already holds the answer.
func (c *Coordinator) solveWhole(ctx context.Context, req *server.SolveRequest, g *graph.Graph) (Response, error) {
	c.wholeGraph.Add(1)
	key := g.HashString() + "|" + req.Fingerprint()
	resp, backendName, rerouted, err := c.solveOn(ctx, key, *req)
	if err != nil {
		// No backend could answer; degrade locally rather than fail.
		c.fallbacks.Add(1)
		set, weight := server.GreedyDegraded(g)
		return Response{
			SolveResponse: server.SolveResponse{
				Status:   "done",
				Set:      indices(set),
				Size:     graph.SetSize(set),
				Weight:   weight,
				Degraded: true,
			},
			Parts:    []PartReport{{Part: 0, GraphHash: g.HashString(), N: g.N(), M: g.M(), Size: graph.SetSize(set), Weight: weight, Degraded: true, Local: true}},
			Verified: true,
		}, nil
	}
	out := Response{SolveResponse: resp}
	out.Parts = []PartReport{{
		Part: 0, Backend: backendName, GraphHash: g.HashString(),
		N: g.N(), M: g.M(), Size: resp.Size, Weight: resp.Weight,
		Cached: resp.Cached, Degraded: resp.Degraded, Rerouted: rerouted,
	}}
	if resp.Status == "done" {
		set := boolsFrom(resp.Set, g.N())
		out.Verified = g.IsIndependentSet(set)
	}
	return out, nil
}

// partOutcome is one partition's solve result during fan-out.
type partOutcome struct {
	report   PartReport
	set      []int32 // part-local indices
	rounds   int
	messages int64
	bits     int64
	elapsed  time.Duration
	err      error
}

// recordPartitionQuality refreshes the partition-quality gauges from one
// Split result: cut-edge count and the max/mean imbalance of part node
// counts and part weights (×1000).
func (c *Coordinator) recordPartitionQuality(part *partition.Partition) {
	c.cutEdgesTotal.Add(int64(len(part.CutEdges)))
	c.lastCutEdges.Store(int64(len(part.CutEdges)))
	var totalN, maxN, totalW, maxW int64
	for _, sub := range part.Parts {
		pn := int64(sub.G.N())
		var pw int64
		for v := 0; v < sub.G.N(); v++ {
			pw += sub.G.Weight(v)
		}
		totalN += pn
		totalW += pw
		if pn > maxN {
			maxN = pn
		}
		if pw > maxW {
			maxW = pw
		}
	}
	k := int64(len(part.Parts))
	if k > 0 && totalN > 0 {
		c.lastPartSizeImbalance.Store(maxN * k * 1000 / totalN)
	}
	if k > 0 && totalW > 0 {
		c.lastPartWeightImbalance.Store(maxW * k * 1000 / totalW)
	}
}

// partDeadline budgets one part's DeadlineMS: the request deadline minus
// the EWMA fan-out overhead, floored at 1ms so a nearly-spent deadline
// still reaches the backend (whose planner will pick its cheapest rung)
// instead of silently becoming unlimited.
func (c *Coordinator) partDeadline(reqDeadlineMS int64) int64 {
	if reqDeadlineMS <= 0 {
		return 0
	}
	d := reqDeadlineMS - c.fanoutOverheadUS.Load()/1000
	if d < 1 {
		d = 1
	}
	return d
}

// observeFanout folds one partitioned solve's overhead — total wall time
// minus the slowest part — into the EWMA (α = 1/8).
func (c *Coordinator) observeFanout(total, maxPart time.Duration) {
	overhead := (total - maxPart).Microseconds()
	if overhead < 0 {
		overhead = 0
	}
	prev := c.fanoutOverheadUS.Load()
	c.fanoutOverheadUS.Store(prev + (overhead-prev)/8)
}

// solvePartitioned fans the solve out over an edge-cut partition and
// reconciles the merged answer.
func (c *Coordinator) solvePartitioned(ctx context.Context, req *server.SolveRequest, g *graph.Graph) (Response, error) {
	part, err := partition.Split(g, partition.Options{Parts: c.opts.Partitions, Balance: c.opts.Balance})
	if err != nil {
		return Response{}, badRequest("partition: %v", err)
	}
	c.partitioned.Add(1)
	c.recordPartitionQuality(part)

	fanoutStart := time.Now()
	partDeadlineMS := c.partDeadline(req.DeadlineMS)
	outcomes := make([]partOutcome, part.K)
	var wg sync.WaitGroup
	for i := 0; i < part.K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = c.solvePart(ctx, req, part.Parts[i], i, partDeadlineMS)
		}(i)
	}
	wg.Wait()
	var maxPart time.Duration
	for i := range outcomes {
		if outcomes[i].elapsed > maxPart {
			maxPart = outcomes[i].elapsed
		}
	}
	c.observeFanout(time.Since(fanoutStart), maxPart)

	resp := Response{CutEdges: len(part.CutEdges)}
	n := g.N()
	merged := make([]bool, n)
	var rounds int
	var messages, bits int64
	anyDegraded := false
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			return Response{}, fmt.Errorf("part %d: %w", i, o.err)
		}
		sub := part.Parts[i]
		for _, v := range o.set {
			if int(v) < 0 || int(v) >= len(sub.ToParent) {
				return Response{}, fmt.Errorf("part %d: backend returned out-of-range member %d", i, v)
			}
			merged[sub.ToParent[v]] = true
		}
		anyDegraded = anyDegraded || o.report.Degraded
		resp.Parts = append(resp.Parts, o.report)
		rounds += o.rounds
		messages += o.messages
		bits += o.bits
	}

	// Reconcile: only cut edges can conflict; for each, the lower-weight
	// endpoint withdraws (ties: the higher index), matching the
	// reliable.Repair rule. Ascending scan order + immediate application
	// makes the outcome deterministic.
	for _, e := range part.CutEdges {
		u, v := int(e[0]), int(e[1])
		if !merged[u] || !merged[v] {
			continue
		}
		resp.Conflicts++
		loser := v
		if g.Weight(u) < g.Weight(v) {
			loser = u
		}
		merged[loser] = false
		resp.Withdrawn++
	}
	// Re-admission: withdrawals can leave admissible nodes stranded (all
	// their set neighbours withdrew). Weight-descending, identifier-
	// ascending — the degraded tier's deterministic order — restores
	// maximality without ever breaking independence.
	resp.Readmitted = readmit(g, merged)
	c.conflicts.Add(int64(resp.Conflicts))
	c.withdrawn.Add(int64(resp.Withdrawn))
	c.readmitted.Add(int64(resp.Readmitted))

	weight := g.SetWeight(merged)
	// The availability floor: never answer lighter than the single-node
	// degraded tier would. The greedy answer is deterministic and cheap;
	// the merge must strictly beat it to be published.
	if floorSet, floorWeight := server.GreedyDegraded(g); floorWeight > weight {
		merged = floorSet
		weight = floorWeight
		resp.Floor = true
		c.floorWins.Add(1)
	}
	if !g.IsIndependentSet(merged) {
		// Unreachable by construction (reconciliation restores independence,
		// readmit preserves it, the floor set is independent); refuse to
		// publish rather than serve a conflicted set.
		return Response{}, fmt.Errorf("cluster: reconciled set failed independence verification")
	}
	resp.Verified = true
	resp.Status = "done"
	resp.Set = indices(merged)
	resp.Size = graph.SetSize(merged)
	resp.Weight = weight
	resp.Rounds = rounds
	resp.Messages = messages
	resp.Bits = bits
	resp.Degraded = anyDegraded
	return resp, nil
}

// solvePart solves one partition on its ring owner, failing over clockwise
// and degrading to a coordinator-local greedy answer when no backend can.
// deadlineMS is the budgeted per-part deadline (see partDeadline) — tighter
// than the request's, so an alg=auto part re-plans against the time left
// after fan-out overhead.
func (c *Coordinator) solvePart(ctx context.Context, req *server.SolveRequest, sub *graph.Subgraph, idx int, deadlineMS int64) partOutcome {
	partStart := time.Now()
	hash := sub.G.HashString()
	report := PartReport{Part: idx, GraphHash: hash, N: sub.G.N(), M: sub.G.M()}

	var doc bytes.Buffer
	if err := sub.G.WriteJSON(&doc); err != nil {
		return partOutcome{err: fmt.Errorf("encode part: %w", err)}
	}
	preq := server.SolveRequest{
		Graph:           json.RawMessage(doc.Bytes()),
		Alg:             req.Alg,
		Eps:             req.Eps,
		Alpha:           req.Alpha,
		Seed:            req.Seed,
		MIS:             req.MIS,
		Priority:        req.Priority,
		DeadlineMS:      deadlineMS,
		NoCache:         req.NoCache,
		Reliable:        req.Reliable,
		CheckpointEvery: req.CheckpointEvery,
		Repair:          req.Repair,
	}
	c.partSolves.Add(1)
	resp, backendName, rerouted, err := c.solveOn(ctx, hash+"|"+req.Fingerprint(), preq)
	if err == nil {
		report.Backend = backendName
		report.Rerouted = rerouted
		report.Cached = resp.Cached
		report.Degraded = resp.Degraded
		report.Size = resp.Size
		report.Weight = resp.Weight
		return partOutcome{report: report, set: resp.Set,
			rounds: resp.Rounds, messages: resp.Messages, bits: resp.Bits,
			elapsed: time.Since(partStart)}
	}
	var reqErr *RequestError
	if errors.As(err, &reqErr) {
		return partOutcome{err: err, elapsed: time.Since(partStart)}
	}
	// Every backend failed this part: answer it from the local degraded
	// tier so one part's bad luck does not fail the whole solve.
	set, weight := server.GreedyDegraded(sub.G)
	c.localParts.Add(1)
	report.Local = true
	report.Degraded = true
	report.Size = graph.SetSize(set)
	report.Weight = weight
	return partOutcome{report: report, set: indices(set), elapsed: time.Since(partStart)}
}

// solveOn routes one request along the ring sequence for key: the owner
// first, then clockwise failover. Transient failures (after the client's
// own retries) mark the backend dead and move on; terminal errors are the
// request's own fault and abort. Returns the answering backend and whether
// it was a non-primary.
func (c *Coordinator) solveOn(ctx context.Context, key string, req server.SolveRequest) (server.SolveResponse, string, bool, error) {
	seq := c.ring.Sequence(key)
	var lastErr error
	tried := 0
	for _, name := range seq {
		b := c.byName[name]
		if b == nil || !b.alive.Load() {
			continue
		}
		resp, err := b.cl.Solve(ctx, req)
		if err == nil {
			switch resp.Status {
			case "done":
				return resp, name, tried > 0, nil
			case "deadline":
				return resp, name, false, fmt.Errorf("backend %s: deadline: %s", name, resp.Error)
			default:
				return resp, name, false, fmt.Errorf("backend %s: solve %s: %s", name, resp.Status, resp.Error)
			}
		}
		if !client.Retryable(err) || ctx.Err() != nil {
			// The request itself is bad (4xx) or the caller gave up — no
			// backend will answer it differently.
			return server.SolveResponse{}, name, false, &RequestError{msg: err.Error()}
		}
		lastErr = err
		tried++
		c.reroutes.Add(1)
		c.markDead(b)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no alive backend for key")
	}
	return server.SolveResponse{}, "", false, lastErr
}

// readmit adds every admissible non-member in weight-descending,
// identifier-ascending order, returning how many joined. Preserves
// independence by construction.
func readmit(g *graph.Graph, set []bool) int {
	n := g.N()
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	// Same deterministic order as the degraded greedy tier.
	sortByWeight(g, order)
	added := 0
	for _, v := range order {
		if set[v] {
			continue
		}
		free := true
		for _, u := range g.Neighbors(int(v)) {
			if set[u] {
				free = false
				break
			}
		}
		if free {
			set[v] = true
			added++
		}
	}
	return added
}

func sortByWeight(g *graph.Graph, order []int32) {
	sort.Slice(order, func(a, b int) bool {
		u, v := order[a], order[b]
		wu, wv := g.Weight(int(u)), g.Weight(int(v))
		if wu != wv {
			return wu > wv
		}
		return g.ID(int(u)) < g.ID(int(v))
	})
}

func indices(set []bool) []int32 {
	var out []int32
	for v, in := range set {
		if in {
			out = append(out, int32(v))
		}
	}
	return out
}

func boolsFrom(set []int32, n int) []bool {
	out := make([]bool, n)
	for _, v := range set {
		if int(v) >= 0 && int(v) < n {
			out[v] = true
		}
	}
	return out
}
