package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/server"
	"distmwis/internal/server/client"
)

// testFleet is N real maxisd backends on httptest listeners.
type testFleet struct {
	servers []*server.Server
	ts      []*httptest.Server
	urls    []string
}

func newFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		s := server.New(server.Options{Workers: 2})
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.ts = append(f.ts, ts)
		f.urls = append(f.urls, ts.URL)
	}
	t.Cleanup(func() {
		for i := range f.servers {
			f.ts[i].Close()
			_ = f.servers[i].Close()
		}
	})
	return f
}

func testOpts() Options {
	return Options{
		Partitions:    3,
		ProbeInterval: -1, // tests drive ProbeOnce directly
		Client:        client.Options{Timeout: 10 * time.Second, MaxRetries: 1, BackoffBase: time.Millisecond},
	}
}

// verifySet rebuilds the request's graph and checks the response set is
// independent in it, returning the set's weight.
func verifySet(t *testing.T, req *server.SolveRequest, resp Response) int64 {
	t.Helper()
	g, err := req.BuildGraph()
	if err != nil {
		t.Fatalf("rebuild graph: %v", err)
	}
	set := make([]bool, g.N())
	for _, v := range resp.Set {
		set[v] = true
	}
	if !g.IsIndependentSet(set) {
		t.Fatalf("response set is not independent")
	}
	if got := g.SetWeight(set); got != resp.Weight {
		t.Fatalf("response weight %d, recomputed %d", resp.Weight, got)
	}
	return resp.Weight
}

// TestClusterPartitionedSolve is the tentpole acceptance test: a fan-out
// solve over three backends returns a verified independent set at least as
// heavy as the single-node degraded tier's answer on the same graph.
func TestClusterPartitionedSolve(t *testing.T) {
	fleet := newFleet(t, 3)
	c, err := New(fleet.urls, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	for _, spec := range []server.GenSpec{
		{Kind: "gnp", N: 240, P: 0.03, Weights: "uniform", Seed: 11},
		{Kind: "grid", N: 16, Weights: "poly2", Seed: 3},
		{Kind: "forests", N: 200, K: 4, Weights: "uniform", Seed: 5},
	} {
		req := &server.SolveRequest{Gen: &spec}
		resp, err := c.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		if resp.Status != "done" || !resp.Verified {
			t.Fatalf("%s: status=%q verified=%t", spec.Kind, resp.Status, resp.Verified)
		}
		if len(resp.Parts) != 3 {
			t.Fatalf("%s: %d part reports, want 3", spec.Kind, len(resp.Parts))
		}
		weight := verifySet(t, req, resp)

		g, _ := req.BuildGraph()
		_, floor := server.GreedyDegraded(g)
		if weight < floor {
			t.Fatalf("%s: cluster weight %d below degraded-tier floor %d", spec.Kind, weight, floor)
		}
		for _, p := range resp.Parts {
			if p.Local {
				t.Fatalf("%s: part %d fell back locally with all backends alive", spec.Kind, p.Part)
			}
			if p.Backend == "" {
				t.Fatalf("%s: part %d has no backend provenance", spec.Kind, p.Part)
			}
		}
	}
	st := c.Stats()
	if st.Partitioned != 3 || st.PartSolves != 9 {
		t.Fatalf("stats: partitioned=%d partSolves=%d", st.Partitioned, st.PartSolves)
	}
}

// TestClusterWholeGraphRoute: small graphs skip partitioning and ride the
// ring to one backend; the same graph routes to the same backend twice,
// hitting its content-addressed cache.
func TestClusterWholeGraphRoute(t *testing.T) {
	fleet := newFleet(t, 3)
	c, err := New(fleet.urls, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	req := &server.SolveRequest{Gen: &server.GenSpec{Kind: "cycle", N: 40}}
	first, err := c.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Parts) != 1 || first.Parts[0].Backend == "" {
		t.Fatalf("whole-graph route: parts=%v", first.Parts)
	}
	verifySet(t, req, first)

	again, err := c.Solve(context.Background(), &server.SolveRequest{Gen: &server.GenSpec{Kind: "cycle", N: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if again.Parts[0].Backend != first.Parts[0].Backend {
		t.Fatalf("same content routed to %s then %s", first.Parts[0].Backend, again.Parts[0].Backend)
	}
	if !again.Parts[0].Cached {
		t.Fatal("repeat solve missed the backend cache despite identical routing")
	}
	if st := c.Stats(); st.WholeGraph != 2 || st.Partitioned != 0 {
		t.Fatalf("stats: wholeGraph=%d partitioned=%d", st.WholeGraph, st.Partitioned)
	}
}

// TestClusterFailover: killing a backend mid-fleet must not fail solves —
// the coordinator marks it dead on the first transient error and reroutes
// along the ring.
func TestClusterFailover(t *testing.T) {
	fleet := newFleet(t, 3)
	c, err := New(fleet.urls, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	fleet.ts[1].Close() // dies before any probe has run

	for seed := uint64(1); seed <= 4; seed++ {
		req := &server.SolveRequest{Gen: &server.GenSpec{Kind: "gnp", N: 150, P: 0.04, Weights: "uniform", Seed: seed}}
		resp, err := c.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if resp.Status != "done" || !resp.Verified {
			t.Fatalf("seed %d: status=%q verified=%t", seed, resp.Status, resp.Verified)
		}
		verifySet(t, req, resp)
		for _, p := range resp.Parts {
			if p.Backend == fleet.urls[1] {
				t.Fatalf("seed %d: part %d reports the dead backend", seed, p.Part)
			}
		}
	}
	// The solve path marks the backend dead only if a part key routed to
	// it; the prober detects the death regardless.
	c.ProbeOnce(context.Background())
	if st := c.Stats(); st.BackendsAlive != 2 {
		t.Fatalf("BackendsAlive = %d after one death, want 2", st.BackendsAlive)
	}
}

// TestClusterAllDeadFallback: with every backend gone the coordinator
// answers from its own degraded tier rather than failing — the cluster
// inherits the single node's availability-over-quality contract.
func TestClusterAllDeadFallback(t *testing.T) {
	fleet := newFleet(t, 2)
	c, err := New(fleet.urls, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	fleet.ts[0].Close()
	fleet.ts[1].Close()
	c.ProbeOnce(context.Background())
	if st := c.Stats(); st.BackendsAlive != 0 {
		t.Fatalf("BackendsAlive = %d after probing a dead fleet", st.BackendsAlive)
	}

	req := &server.SolveRequest{Gen: &server.GenSpec{Kind: "grid", N: 12, Weights: "uniform", Seed: 2}}
	resp, err := c.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("all-dead solve failed instead of degrading: %v", err)
	}
	if !resp.Degraded || !resp.Verified || resp.Status != "done" {
		t.Fatalf("degraded=%t verified=%t status=%q", resp.Degraded, resp.Verified, resp.Status)
	}
	if len(resp.Parts) != 1 || !resp.Parts[0].Local {
		t.Fatalf("parts=%v, want one local part", resp.Parts)
	}
	weight := verifySet(t, req, resp)
	g, _ := req.BuildGraph()
	if _, floor := server.GreedyDegraded(g); weight != floor {
		t.Fatalf("local fallback weight %d != degraded tier %d", weight, floor)
	}
	if st := c.Stats(); st.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d", st.Fallbacks)
	}
}

// TestClusterProbeResurrection: ProbeOnce both kills and resurrects; a
// recovered backend rejoins the ring without operator action.
func TestClusterProbeResurrection(t *testing.T) {
	fleet := newFleet(t, 2)
	c, err := New(fleet.urls, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// The solve path suspects backend 0 (as it would on a transient error)
	// and removes it from the ring.
	c.markDead(c.byName[fleet.urls[0]])
	if got := c.ring.Members(); len(got) != 1 || got[0] != fleet.urls[1] {
		t.Fatalf("members after suspected death = %v", got)
	}

	// The backend is actually healthy: the next probe clears the suspicion
	// and rebalances it back in.
	c.ProbeOnce(context.Background())
	if got := c.ring.Size(); got != 2 {
		t.Fatalf("ring size after resurrection = %d, want 2", got)
	}
	if st := c.Stats(); st.BackendsAlive != 2 {
		t.Fatalf("BackendsAlive = %d", st.BackendsAlive)
	}

	// And a genuinely dead backend stays out across probes.
	fleet.ts[0].Close()
	c.ProbeOnce(context.Background())
	c.ProbeOnce(context.Background())
	if got := c.ring.Members(); len(got) != 1 || got[0] != fleet.urls[1] {
		t.Fatalf("members after real death = %v", got)
	}
}

// TestClusterRejectsUnsupported: graph_ref, async and fault-schedule
// requests are caller errors at the cluster layer.
func TestClusterRejectsUnsupported(t *testing.T) {
	fleet := newFleet(t, 1)
	c, err := New(fleet.urls, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	cases := []struct {
		name string
		req  server.SolveRequest
	}{
		{"graph_ref", server.SolveRequest{GraphRef: "sha256:deadbeef"}},
		{"async", server.SolveRequest{Gen: &server.GenSpec{Kind: "cycle", N: 10}, Async: true}},
		{"fault", server.SolveRequest{Gen: &server.GenSpec{Kind: "cycle", N: 10}, Fault: &server.FaultSpec{Loss: 0.1}}},
	}
	for _, tc := range cases {
		_, err := c.Solve(context.Background(), &tc.req)
		var reqErr *RequestError
		if err == nil || !errors.As(err, &reqErr) {
			t.Errorf("%s: err = %v, want RequestError", tc.name, err)
		}
	}
}

// TestClusterHandler drives the coordinator through its HTTP face the way
// the front maxisd mounts it.
func TestClusterHandler(t *testing.T) {
	fleet := newFleet(t, 2)
	c, err := New(fleet.urls, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	body, _ := json.Marshal(server.SolveRequest{Gen: &server.GenSpec{Kind: "gnp", N: 120, P: 0.05, Weights: "uniform", Seed: 9}})
	hr, err := http.Post(front.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d", hr.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "done" || !resp.Verified || len(resp.Set) == 0 {
		t.Fatalf("handler response: status=%q verified=%t size=%d", resp.Status, resp.Verified, resp.Size)
	}
	if !strings.HasPrefix(resp.ID, "cl-") {
		t.Fatalf("cluster response id %q", resp.ID)
	}

	// A GET is a method error; a bad body is a 400.
	if gr, err := http.Get(front.URL); err == nil {
		if gr.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET status %d", gr.StatusCode)
		}
		gr.Body.Close()
	}
	br, err := http.Post(front.URL, "application/json", strings.NewReader(`{"graph_ref":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if br.StatusCode != http.StatusBadRequest {
		t.Fatalf("graph_ref over HTTP: status %d, want 400", br.StatusCode)
	}
	br.Body.Close()

	var buf bytes.Buffer
	c.WriteMetrics(&buf)
	for _, want := range []string{"cluster_solves_total 1", "cluster_backends_alive 2"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}

// TestReadmitMaximality: after forced withdrawals the re-admission pass
// restores maximality deterministically without breaking independence.
func TestReadmitMaximality(t *testing.T) {
	b := graph.NewBuilder(5)
	// A path 0-1-2-3-4 with heavy ends.
	for v := 1; v < 5; v++ {
		b.AddEdge(v-1, v)
	}
	for v := 0; v < 5; v++ {
		b.SetWeight(v, int64(10-v))
	}
	g := b.MustBuild()
	set := make([]bool, 5) // empty after hypothetical withdrawals
	added := readmit(g, set)
	if added == 0 {
		t.Fatal("readmit added nothing to an empty set")
	}
	if !g.IsIndependentSet(set) {
		t.Fatal("readmit broke independence")
	}
	for v := 0; v < 5; v++ {
		if set[v] {
			continue
		}
		free := true
		for _, u := range g.Neighbors(v) {
			if set[u] {
				free = false
			}
		}
		if free {
			t.Fatalf("node %d admissible but not re-admitted", v)
		}
	}
}
