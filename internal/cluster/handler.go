package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"distmwis/internal/server"
)

// Handler returns the coordinator's HTTP face: POST with a standard
// SolveRequest body, answering a cluster Response. The front maxisd mounts
// it at /v1/cluster/solve next to its own single-node API.
func (c *Coordinator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		var req server.SolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "decode request: %v", err)
			return
		}
		resp, err := c.Solve(r.Context(), &req)
		if err != nil {
			var reqErr *RequestError
			if errors.As(err, &reqErr) {
				httpError(w, http.StatusBadRequest, "%s", reqErr.msg)
				return
			}
			httpError(w, http.StatusBadGateway, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(server.SolveResponse{
		Status: "failed",
		Error:  fmt.Sprintf(format, args...),
	})
}

// WriteMetrics appends the coordinator's Prometheus exposition lines; the
// front server splices this into its own /metrics output.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	s := c.Stats()
	fmt.Fprintf(w, "# TYPE cluster_solves_total counter\ncluster_solves_total %d\n", s.Solves)
	fmt.Fprintf(w, "# TYPE cluster_solves_partitioned_total counter\ncluster_solves_partitioned_total %d\n", s.Partitioned)
	fmt.Fprintf(w, "# TYPE cluster_solves_whole_graph_total counter\ncluster_solves_whole_graph_total %d\n", s.WholeGraph)
	fmt.Fprintf(w, "# TYPE cluster_part_solves_total counter\ncluster_part_solves_total %d\n", s.PartSolves)
	fmt.Fprintf(w, "# TYPE cluster_reroutes_total counter\ncluster_reroutes_total %d\n", s.Reroutes)
	fmt.Fprintf(w, "# TYPE cluster_local_parts_total counter\ncluster_local_parts_total %d\n", s.LocalParts)
	fmt.Fprintf(w, "# TYPE cluster_local_fallbacks_total counter\ncluster_local_fallbacks_total %d\n", s.Fallbacks)
	fmt.Fprintf(w, "# TYPE cluster_cut_conflicts_total counter\ncluster_cut_conflicts_total %d\n", s.Conflicts)
	fmt.Fprintf(w, "# TYPE cluster_withdrawn_total counter\ncluster_withdrawn_total %d\n", s.Withdrawn)
	fmt.Fprintf(w, "# TYPE cluster_readmitted_total counter\ncluster_readmitted_total %d\n", s.Readmitted)
	fmt.Fprintf(w, "# TYPE cluster_floor_wins_total counter\ncluster_floor_wins_total %d\n", s.FloorWins)
	fmt.Fprintf(w, "# TYPE cluster_backends_alive gauge\ncluster_backends_alive %d\n", s.BackendsAlive)
	fmt.Fprintf(w, "# TYPE cluster_backends_total gauge\ncluster_backends_total %d\n", s.BackendsTotal)
	fmt.Fprintf(w, "# TYPE cluster_fanout_overhead_us gauge\ncluster_fanout_overhead_us %d\n", s.FanoutOverheadUS)
	fmt.Fprintf(w, "# TYPE cluster_cut_edges_total counter\ncluster_cut_edges_total %d\n", s.CutEdgesTotal)
	fmt.Fprintf(w, "# TYPE cluster_partition_cut_edges gauge\ncluster_partition_cut_edges %d\n", s.LastCutEdges)
	fmt.Fprintf(w, "# TYPE cluster_partition_size_imbalance_permille gauge\ncluster_partition_size_imbalance_permille %d\n", s.LastPartSizeImbalance)
	fmt.Fprintf(w, "# TYPE cluster_partition_weight_imbalance_permille gauge\ncluster_partition_weight_imbalance_permille %d\n", s.LastPartWeightImbalance)
}
