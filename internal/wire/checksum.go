package wire

// ChecksumBits is the width of the payload checksum used by the fault
// layer. CRC-8 detects every burst error of length ≤ 8 bits, so as long as
// the adversary flips at most ChecksumBits consecutive bits per message
// (the contract enforced by package fault), corruption is detected with
// certainty — "corrupt" can then be treated as "lost" without ever
// accepting a flipped payload.
const ChecksumBits = 8

// crc8Poly is the CRC-8/ATM polynomial x^8 + x^2 + x + 1.
const crc8Poly = 0x07

// Checksum computes a CRC-8 over the first nbits bits of data, processing
// the payload bit-by-bit in wire order (LSB-first within each byte) so the
// result is exact for bit-packed messages whose final byte is only
// partially used. nbits must not exceed 8*len(data).
func Checksum(data []byte, nbits int) uint8 {
	var crc uint8
	for i := 0; i < nbits; i++ {
		bit := (data[i>>3] >> uint(i&7)) & 1
		crc ^= bit << 7
		if crc&0x80 != 0 {
			crc = crc<<1 ^ crc8Poly
		} else {
			crc <<= 1
		}
	}
	return crc
}
