// Package wire provides bit-exact message encoding for the CONGEST model.
//
// The CONGEST model (Peleg, 2000) bounds every per-round, per-edge message to
// B = O(log n) bits. Byte-oriented encodings systematically over-count, so
// this package packs values at bit granularity and reports the exact number
// of bits written. The congest simulator uses those counts to enforce the
// bandwidth bound honestly (e.g. Section 5 of the paper ships (c log n)-bit
// ranks over several rounds of B-bit chunks).
//
// Encoding is little-endian within bytes: the first bit written is the least
// significant bit of the first byte. Readers must consume fields in exactly
// the order and width they were written; there is no self-description.
package wire

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrShortBuffer is returned by Reader methods when fewer bits remain than
// were requested.
var ErrShortBuffer = errors.New("wire: read past end of buffer")

// BitsFor returns the number of bits required to represent every value in
// [0, maxValue]. BitsFor(0) == 1 so that a field is never zero-width.
func BitsFor(maxValue uint64) int {
	if maxValue == 0 {
		return 1
	}
	return bits.Len64(maxValue)
}

// Writer accumulates a bit-packed message. The zero value is ready to use.
type Writer struct {
	buf   []byte
	nbits int
}

// WriteBits appends the low n bits of v, 0 <= n <= 64. Bits above position n
// in v must be zero; violating this corrupts subsequent fields, so WriteBits
// masks v defensively.
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("wire: WriteBits width %d out of range [0,64]", n))
	}
	if n < 64 {
		v &= (1 << uint(n)) - 1
	}
	for n > 0 {
		byteIdx := w.nbits >> 3
		bitIdx := w.nbits & 7
		if byteIdx == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		take := 8 - bitIdx
		if take > n {
			take = n
		}
		w.buf[byteIdx] |= byte(v) << uint(bitIdx)
		v >>= uint(take)
		w.nbits += take
		n -= take
	}
}

// WriteBool appends a single bit.
func (w *Writer) WriteBool(b bool) {
	var v uint64
	if b {
		v = 1
	}
	w.WriteBits(v, 1)
}

// WriteUint appends v using BitsFor(maxValue) bits. maxValue must be an a
// priori bound shared by sender and receiver (typically derived from the
// polynomial upper bound on n that every node knows).
func (w *Writer) WriteUint(v, maxValue uint64) {
	if v > maxValue {
		panic(fmt.Sprintf("wire: value %d exceeds declared max %d", v, maxValue))
	}
	w.WriteBits(v, BitsFor(maxValue))
}

// WriteInt appends a signed value in [-maxAbs, maxAbs] using zig-zag encoding
// in BitsFor(2*maxAbs) bits.
func (w *Writer) WriteInt(v, maxAbs int64) {
	if v > maxAbs || v < -maxAbs {
		panic(fmt.Sprintf("wire: value %d exceeds declared magnitude %d", v, maxAbs))
	}
	zz := uint64(v<<1) ^ uint64(v>>63)
	w.WriteBits(zz, BitsFor(2*uint64(maxAbs)))
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbits }

// Bytes returns the packed buffer. The final byte may contain up to seven
// padding zero bits; Len disambiguates.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset clears the writer for reuse without reallocating.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbits = 0
}

// Reader consumes a bit-packed message produced by Writer.
type Reader struct {
	buf   []byte
	nbits int // total valid bits
	pos   int
}

// NewReader wraps a buffer holding nbits valid bits.
func NewReader(buf []byte, nbits int) *Reader {
	return &Reader{buf: buf, nbits: nbits}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbits - r.pos }

// ReadBits consumes n bits and returns them as the low bits of the result.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("wire: ReadBits width %d out of range [0,64]", n)
	}
	if r.pos+n > r.nbits {
		return 0, fmt.Errorf("%w: want %d bits, have %d", ErrShortBuffer, n, r.nbits-r.pos)
	}
	var v uint64
	shift := 0
	for n > 0 {
		byteIdx := r.pos >> 3
		bitIdx := r.pos & 7
		take := 8 - bitIdx
		if take > n {
			take = n
		}
		chunk := uint64(r.buf[byteIdx]>>uint(bitIdx)) & ((1 << uint(take)) - 1)
		v |= chunk << uint(shift)
		shift += take
		r.pos += take
		n -= take
	}
	return v, nil
}

// ReadBool consumes a single bit.
func (r *Reader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// ReadUint consumes a value written by WriteUint with the same maxValue.
func (r *Reader) ReadUint(maxValue uint64) (uint64, error) {
	return r.ReadBits(BitsFor(maxValue))
}

// ReadInt consumes a value written by WriteInt with the same maxAbs.
func (r *Reader) ReadInt(maxAbs int64) (int64, error) {
	zz, err := r.ReadBits(BitsFor(2 * uint64(maxAbs)))
	if err != nil {
		return 0, err
	}
	return int64(zz>>1) ^ -int64(zz&1), nil
}
