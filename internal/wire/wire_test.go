package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBitsFor(t *testing.T) {
	tests := []struct {
		name string
		max  uint64
		want int
	}{
		{name: "zero", max: 0, want: 1},
		{name: "one", max: 1, want: 1},
		{name: "two", max: 2, want: 2},
		{name: "three", max: 3, want: 2},
		{name: "four", max: 4, want: 3},
		{name: "byte", max: 255, want: 8},
		{name: "byte+1", max: 256, want: 9},
		{name: "max", max: math.MaxUint64, want: 64},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := BitsFor(tt.max); got != tt.want {
				t.Errorf("BitsFor(%d) = %d, want %d", tt.max, got, tt.want)
			}
		})
	}
}

func TestWriteReadBitsRoundTrip(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFFFF, 16)
	w.WriteBits(0, 1)
	w.WriteBits(0x123456789ABCDEF0, 64)
	w.WriteBits(1, 1)

	if got, want := w.Len(), 3+16+1+64+1; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}

	r := NewReader(w.Bytes(), w.Len())
	checks := []struct {
		n    int
		want uint64
	}{
		{3, 0b101}, {16, 0xFFFF}, {1, 0}, {64, 0x123456789ABCDEF0}, {1, 1},
	}
	for i, c := range checks {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("field %d: ReadBits(%d): %v", i, c.n, err)
		}
		if got != c.want {
			t.Errorf("field %d: got %#x, want %#x", i, got, c.want)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	var w Writer
	w.WriteBits(0xFF, 3) // high bits must be masked, keeping only 0b111
	r := NewReader(w.Bytes(), w.Len())
	got, err := r.ReadBits(3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0b111 {
		t.Errorf("got %#x, want 0b111", got)
	}
}

func TestReadPastEnd(t *testing.T) {
	var w Writer
	w.WriteBits(1, 4)
	r := NewReader(w.Bytes(), w.Len())
	if _, err := r.ReadBits(5); err == nil {
		t.Error("expected ErrShortBuffer reading 5 of 4 bits")
	}
}

func TestBoolRoundTrip(t *testing.T) {
	var w Writer
	vals := []bool{true, false, true, true, false, false, true, false, true}
	for _, v := range vals {
		w.WriteBool(v)
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range vals {
		got, err := r.ReadBool()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Errorf("bit %d: got %v, want %v", i, got, want)
		}
	}
}

func TestUintRoundTrip(t *testing.T) {
	var w Writer
	const maxV = 1000
	for v := uint64(0); v <= maxV; v += 37 {
		w.WriteUint(v, maxV)
	}
	r := NewReader(w.Bytes(), w.Len())
	for v := uint64(0); v <= maxV; v += 37 {
		got, err := r.ReadUint(maxV)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("got %d, want %d", got, v)
		}
	}
}

func TestIntRoundTrip(t *testing.T) {
	var w Writer
	const maxAbs = 1 << 40
	vals := []int64{0, 1, -1, 42, -42, maxAbs, -maxAbs, maxAbs - 1, -(maxAbs - 1)}
	for _, v := range vals {
		w.WriteInt(v, maxAbs)
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range vals {
		got, err := r.ReadInt(maxAbs)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		if got != want {
			t.Errorf("field %d: got %d, want %d", i, got, want)
		}
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xABC, 12)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	w.WriteBits(0x5, 3)
	r := NewReader(w.Bytes(), w.Len())
	got, err := r.ReadBits(3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x5 {
		t.Errorf("got %#x, want 0x5", got)
	}
}

func TestWritePanicsOnOversizeValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic writing value above declared max")
		}
	}()
	var w Writer
	w.WriteUint(11, 10)
}

// TestQuickMixedRoundTrip drives random field sequences through a
// write/read cycle and demands exact reproduction — the core invariant the
// congest simulator depends on for message integrity.
func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(uints []uint16, ints []int32, bools []bool) bool {
		var w Writer
		for _, v := range uints {
			w.WriteUint(uint64(v), math.MaxUint16)
		}
		for _, v := range ints {
			w.WriteInt(int64(v), math.MaxInt32)
		}
		for _, v := range bools {
			w.WriteBool(v)
		}
		r := NewReader(w.Bytes(), w.Len())
		for _, v := range uints {
			got, err := r.ReadUint(math.MaxUint16)
			if err != nil || got != uint64(v) {
				return false
			}
		}
		for _, v := range ints {
			got, err := r.ReadInt(math.MaxInt32)
			if err != nil || got != int64(v) {
				return false
			}
		}
		for _, v := range bools {
			got, err := r.ReadBool()
			if err != nil || got != v {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickBitWidthExact checks that Len is exactly the sum of declared
// widths — the property the CONGEST bandwidth enforcement relies on.
func TestQuickBitWidthExact(t *testing.T) {
	f := func(widths []uint8) bool {
		var w Writer
		total := 0
		for _, wd := range widths {
			n := int(wd%64) + 1 // widths in [1,64]
			w.WriteBits(0, n)
			total += n
		}
		return w.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
