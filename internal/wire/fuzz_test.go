package wire

import "testing"

// FuzzReaderRobust ensures readers never panic or read out of bounds on
// arbitrary buffers — messages in the simulator come from other nodes, and
// protocol decoders must fail cleanly on any payload.
func FuzzReaderRobust(f *testing.F) {
	f.Add([]byte{0xFF, 0x01}, 12, 7)
	f.Add([]byte{}, 0, 1)
	f.Add([]byte{0xAA, 0xBB, 0xCC}, 24, 64)
	f.Fuzz(func(t *testing.T, data []byte, nbits, width int) {
		if nbits < 0 {
			nbits = -nbits
		}
		if nbits > len(data)*8 {
			nbits = len(data) * 8
		}
		r := NewReader(data, nbits)
		for {
			w := width % 65
			if w < 0 {
				w = -w
			}
			if _, err := r.ReadBits(w); err != nil {
				break
			}
			if w == 0 {
				break // zero-width reads never exhaust the buffer
			}
		}
		if r.Remaining() < 0 {
			t.Fatalf("Remaining went negative: %d", r.Remaining())
		}
	})
}

// FuzzWriteReadMirror checks write→read symmetry for arbitrary values.
func FuzzWriteReadMirror(f *testing.F) {
	f.Add(uint64(0), uint64(1), int64(-5), int64(100), true)
	f.Add(uint64(1<<40), uint64(1<<41), int64(0), int64(1), false)
	f.Fuzz(func(t *testing.T, v, maxV uint64, s, maxAbs int64, b bool) {
		if maxV == 0 {
			maxV = 1
		}
		v %= maxV + 1
		if maxAbs <= 0 {
			maxAbs = 1
		}
		s %= maxAbs + 1
		var w Writer
		w.WriteUint(v, maxV)
		w.WriteInt(s, maxAbs)
		w.WriteBool(b)
		r := NewReader(w.Bytes(), w.Len())
		gv, err := r.ReadUint(maxV)
		if err != nil || gv != v {
			t.Fatalf("uint: got %d err %v, want %d", gv, err, v)
		}
		gs, err := r.ReadInt(maxAbs)
		if err != nil || gs != s {
			t.Fatalf("int: got %d err %v, want %d", gs, err, s)
		}
		gb, err := r.ReadBool()
		if err != nil || gb != b {
			t.Fatalf("bool: got %v err %v, want %v", gb, err, b)
		}
		if r.Remaining() != 0 {
			t.Fatalf("remaining %d", r.Remaining())
		}
	})
}
