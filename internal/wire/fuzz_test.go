package wire

import "testing"

// FuzzReaderRobust ensures readers never panic or read out of bounds on
// arbitrary buffers — messages in the simulator come from other nodes, and
// protocol decoders must fail cleanly on any payload.
func FuzzReaderRobust(f *testing.F) {
	f.Add([]byte{0xFF, 0x01}, 12, 7)
	f.Add([]byte{}, 0, 1)
	f.Add([]byte{0xAA, 0xBB, 0xCC}, 24, 64)
	f.Fuzz(func(t *testing.T, data []byte, nbits, width int) {
		if nbits < 0 {
			nbits = -nbits
		}
		if nbits > len(data)*8 {
			nbits = len(data) * 8
		}
		r := NewReader(data, nbits)
		for {
			w := width % 65
			if w < 0 {
				w = -w
			}
			if _, err := r.ReadBits(w); err != nil {
				break
			}
			if w == 0 {
				break // zero-width reads never exhaust the buffer
			}
		}
		if r.Remaining() < 0 {
			t.Fatalf("Remaining went negative: %d", r.Remaining())
		}
	})
}

// FuzzWriteReadMirror checks write→read symmetry for arbitrary values.
func FuzzWriteReadMirror(f *testing.F) {
	f.Add(uint64(0), uint64(1), int64(-5), int64(100), true)
	f.Add(uint64(1<<40), uint64(1<<41), int64(0), int64(1), false)
	f.Fuzz(func(t *testing.T, v, maxV uint64, s, maxAbs int64, b bool) {
		if maxV == 0 {
			maxV = 1
		}
		v %= maxV + 1
		if maxAbs <= 0 {
			maxAbs = 1
		}
		s %= maxAbs + 1
		var w Writer
		w.WriteUint(v, maxV)
		w.WriteInt(s, maxAbs)
		w.WriteBool(b)
		r := NewReader(w.Bytes(), w.Len())
		gv, err := r.ReadUint(maxV)
		if err != nil || gv != v {
			t.Fatalf("uint: got %d err %v, want %d", gv, err, v)
		}
		gs, err := r.ReadInt(maxAbs)
		if err != nil || gs != s {
			t.Fatalf("int: got %d err %v, want %d", gs, err, s)
		}
		gb, err := r.ReadBool()
		if err != nil || gb != b {
			t.Fatalf("bool: got %v err %v, want %v", gb, err, b)
		}
		if r.Remaining() != 0 {
			t.Fatalf("remaining %d", r.Remaining())
		}
	})
}

// FuzzChecksumBurst verifies the CRC-8 guarantee the fault layer's
// corruption model relies on: flipping any burst of 1..ChecksumBits
// consecutive bits inside the covered payload always changes the checksum,
// so a corrupted message can never be mistaken for the original.
func FuzzChecksumBurst(f *testing.F) {
	f.Add([]byte{0x00}, 1, 0, 1)
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 32, 7, 8)
	f.Add([]byte{0xFF, 0x00, 0xFF}, 20, 13, 5)
	f.Fuzz(func(t *testing.T, data []byte, nbits, start, burst int) {
		if len(data) == 0 {
			return
		}
		if nbits < 1 {
			nbits = 1
		}
		if nbits > len(data)*8 {
			nbits = len(data) * 8
		}
		if burst < 1 {
			burst = 1
		}
		if burst > ChecksumBits {
			burst = ChecksumBits
		}
		if burst > nbits {
			burst = nbits
		}
		if start < 0 {
			start = -start
		}
		start %= nbits - burst + 1
		orig := Checksum(data, nbits)
		flipped := make([]byte, len(data))
		copy(flipped, data)
		for i := start; i < start+burst; i++ {
			flipped[i>>3] ^= 1 << uint(i&7)
		}
		if Checksum(flipped, nbits) == orig {
			t.Fatalf("burst of %d bits at %d (nbits %d) not detected", burst, start, nbits)
		}
		// And the checksum must ignore bits beyond nbits entirely.
		if nbits < len(data)*8 {
			tail := make([]byte, len(data))
			copy(tail, data)
			tail[nbits>>3] ^= 1 << uint(nbits&7)
			if Checksum(tail, nbits) != orig {
				t.Fatal("checksum depends on bits beyond nbits")
			}
		}
	})
}
