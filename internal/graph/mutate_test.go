package graph

import "testing"

func buildPath(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n-1; v++ {
		b.AddEdge(v, v+1)
	}
	return b.MustBuild()
}

func TestApplyEditAddRemoveWeights(t *testing.T) {
	g := buildPath(5) // 0-1-2-3-4
	ng, rep, err := g.ApplyEdit(Edit{
		AddEdges:    [][2]int32{{0, 4}, {1, 3}},
		RemoveEdges: [][2]int32{{2, 3}},
		Weights:     []WeightUpdate{{V: 2, W: 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 4) || !g.HasEdge(2, 3) || g.Weight(2) != 1 {
		t.Fatal("ApplyEdit modified its receiver")
	}
	if !ng.HasEdge(0, 4) || !ng.HasEdge(1, 3) || ng.HasEdge(2, 3) {
		t.Fatalf("edited topology wrong: %v", ng)
	}
	if ng.Weight(2) != 7 {
		t.Fatalf("weight update lost: w(2)=%d", ng.Weight(2))
	}
	if rep.EdgesAdded != 2 || rep.EdgesRemoved != 1 || rep.WeightsSet != 1 || rep.Noops != 0 {
		t.Fatalf("report = %+v", rep)
	}
	wantTouched := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	for v, touched := range rep.Touched {
		if touched != wantTouched[v] {
			t.Fatalf("touched[%d] = %v, want %v (report %+v)", v, touched, wantTouched[v], rep)
		}
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyEditNoops(t *testing.T) {
	g := buildPath(4)
	ng, rep, err := g.ApplyEdit(Edit{
		AddEdges:    [][2]int32{{0, 1}, {1, 0}}, // both already present
		RemoveEdges: [][2]int32{{0, 3}},         // never existed
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Noops != 3 || rep.EdgesAdded != 0 || rep.EdgesRemoved != 0 {
		t.Fatalf("report = %+v, want 3 noops and no changes", rep)
	}
	if ng.Hash() != g.Hash() {
		t.Fatal("no-op edit changed the content hash")
	}
	for _, touched := range rep.Touched {
		if touched {
			t.Fatalf("no-op edit touched nodes: %+v", rep.Touched)
		}
	}
}

func TestApplyEditValidation(t *testing.T) {
	g := buildPath(3)
	cases := []Edit{
		{AddEdges: [][2]int32{{0, 3}}},           // out of range
		{AddEdges: [][2]int32{{1, 1}}},           // self-loop
		{RemoveEdges: [][2]int32{{-1, 0}}},       // negative endpoint
		{Weights: []WeightUpdate{{V: 9, W: 1}}},  // node out of range
		{Weights: []WeightUpdate{{V: 0, W: -5}}}, // negative weight
	}
	for i, e := range cases {
		if _, _, err := g.ApplyEdit(e); err == nil {
			t.Fatalf("case %d: edit %+v must fail", i, e)
		}
	}
}

func TestApplyEditDeterministicHash(t *testing.T) {
	g := buildPath(6)
	e := Edit{
		AddEdges:    [][2]int32{{0, 3}, {2, 5}},
		RemoveEdges: [][2]int32{{3, 4}},
		Weights:     []WeightUpdate{{V: 1, W: 42}},
	}
	a, _, err := g.ApplyEdit(e)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := g.ApplyEdit(e)
	if err != nil {
		t.Fatal(err)
	}
	if a.HashString() != b.HashString() {
		t.Fatal("same edit on same graph produced different content hashes")
	}
	// Reversed endpoint order must yield the identical graph.
	rev := Edit{
		AddEdges:    [][2]int32{{3, 0}, {5, 2}},
		RemoveEdges: [][2]int32{{4, 3}},
		Weights:     []WeightUpdate{{V: 1, W: 42}},
	}
	c, _, err := g.ApplyEdit(rev)
	if err != nil {
		t.Fatal(err)
	}
	if a.HashString() != c.HashString() {
		t.Fatal("endpoint order changed the edit outcome")
	}
}

func TestApplyEditComponentSplitAndMerge(t *testing.T) {
	g := buildPath(4) // one component
	split, _, err := g.ApplyEdit(Edit{RemoveEdges: [][2]int32{{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, count := split.Components(); count != 2 {
		t.Fatalf("removing the bridge should split into 2 components, got %d", count)
	}
	merged, _, err := split.ApplyEdit(Edit{AddEdges: [][2]int32{{0, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, count := merged.Components(); count != 1 {
		t.Fatalf("adding a bridge should merge back to 1 component, got %d", count)
	}
}
