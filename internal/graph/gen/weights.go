package gen

import (
	"math/rand/v2"

	"distmwis/internal/graph"
)

// A WeightFn assigns weights to the n nodes of a graph. Implementations must
// be deterministic in (n, seed) and return strictly positive weights, per
// the paper's model (weights up to W = poly(n)).
type WeightFn func(n int, seed uint64) []int64

// UnitWeights assigns weight 1 to every node (the unweighted case).
func UnitWeights(n int, _ uint64) []int64 {
	w := make([]int64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// UniformWeights assigns independent uniform weights in [1, maxW].
func UniformWeights(maxW int64) WeightFn {
	return func(n int, seed uint64) []int64 {
		r := rng(seed)
		w := make([]int64, n)
		for i := range w {
			w[i] = 1 + r.Int64N(maxW)
		}
		return w
	}
}

// PolyWeights assigns uniform weights in [1, n^k] — the paper's "W can be as
// high as poly(n)" regime that makes the log W factor of the Bar-Yehuda et
// al. baseline expensive.
func PolyWeights(k int) WeightFn {
	return func(n int, seed uint64) []int64 {
		maxW := int64(1)
		for i := 0; i < k; i++ {
			maxW *= int64(n)
		}
		return UniformWeights(maxW)(n, seed)
	}
}

// ExponentialSpreadWeights assigns weight 2^(i mod levels) to a random
// permutation of nodes, producing a weight distribution spanning many binary
// scales. This is the adversarial regime for weight-scale algorithms.
func ExponentialSpreadWeights(levels int) WeightFn {
	return func(n int, seed uint64) []int64 {
		r := rng(seed)
		w := make([]int64, n)
		perm := r.Perm(n)
		for i, p := range perm {
			w[p] = int64(1) << uint(i%levels)
		}
		return w
	}
}

// SkewedWeights gives a fraction heavyFrac of nodes weight heavy and the
// rest weight 1 — the Claim 1 / Claim 2 split (V_high vs V_low) from the
// sparsification analysis in Section 4.2.
func SkewedWeights(heavyFrac float64, heavy int64) WeightFn {
	return func(n int, seed uint64) []int64 {
		r := rng(seed)
		w := make([]int64, n)
		numHeavy := int(float64(n) * heavyFrac)
		perm := r.Perm(n)
		for i, p := range perm {
			if i < numHeavy {
				w[p] = heavy
			} else {
				w[p] = 1
			}
		}
		return w
	}
}

// Weighted applies fn to g and returns a reweighted copy.
func Weighted(g *graph.Graph, fn WeightFn, seed uint64) *graph.Graph {
	return g.WithWeights(fn(g.N(), seed))
}

// RandomIDs relabels the graph's identifiers with distinct random values in
// [1, idSpace], modelling the paper's assumption of arbitrary unique
// O(log n)-bit identifiers (not necessarily 1..n). idSpace must be >= n.
func RandomIDs(g *graph.Graph, idSpace uint64, seed uint64) *graph.Graph {
	n := g.N()
	r := rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb))
	used := make(map[uint64]bool, n)
	ids := make([]uint64, n)
	for v := 0; v < n; v++ {
		for {
			id := 1 + r.Uint64N(idSpace)
			if !used[id] {
				used[id] = true
				ids[v] = id
				break
			}
		}
	}
	// Rebuild with new ids: Graph is immutable, so copy topology via builder.
	b := graph.NewBuilder(n)
	b.SetWeights(g.Weights())
	for v := 0; v < n; v++ {
		b.SetID(v, ids[v])
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				b.AddEdge(v, int(u))
			}
		}
	}
	return b.MustBuild()
}
