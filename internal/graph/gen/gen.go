// Package gen provides deterministic, seeded graph and weight generators for
// every workload in the experiment suite (DESIGN.md Section 2).
//
// All randomized generators take an explicit seed and use an isolated PCG
// stream, so every experiment row is exactly reproducible. Structured
// families (cycle, clique, grid, cycle-of-cliques, ...) are the paper's own
// instances: the cycle and the cycle of cliques are the Section 7 lower-bound
// graphs, and union-of-forests instances have certified arboricity for
// Theorem 3.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"distmwis/internal/graph"
)

func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Cycle returns the n-node cycle C_n (n >= 3).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.MustBuild()
}

// Path returns the n-node path.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.MustBuild()
}

// Clique returns the complete graph K_n.
func Clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// Star returns a star with one hub (node 0) and n-1 leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.MustBuild()
}

// CompleteBipartite returns K_{a,b}: nodes 0..a-1 on one side, a..a+b-1 on
// the other.
func CompleteBipartite(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			bld.AddEdge(u, v)
		}
	}
	return bld.MustBuild()
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// Torus returns the rows x cols torus (grid with wraparound); every node has
// degree exactly 4 when rows, cols >= 3.
func Torus(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(at(r, c), at(r, (c+1)%cols))
			b.AddEdge(at(r, c), at((r+1)%rows, c))
		}
	}
	return b.MustBuild()
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *graph.Graph {
	n := 1 << uint(d)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << uint(bit))
			if u > v {
				b.AddEdge(v, u)
			}
		}
	}
	return b.MustBuild()
}

// GNP returns an Erdős–Rényi G(n, p) graph.
func GNP(n int, p float64, seed uint64) *graph.Graph {
	r := rng(seed)
	b := graph.NewBuilder(n)
	if p >= 1 {
		return Clique(n)
	}
	if p > 0 {
		// Geometric skipping for sparse p.
		logq := math.Log1p(-p)
		v, u := 1, -1
		for v < n {
			skip := int(math.Floor(math.Log(1-r.Float64()) / logq))
			u += 1 + skip
			for u >= v && v < n {
				u -= v
				v++
			}
			if v < n {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// RandomRegular returns a random d-regular simple graph on n nodes. It
// starts from a circulant d-regular graph and randomizes it with ~10·m
// degree-preserving double-edge swaps, each applied only when it keeps the
// graph simple. n*d must be even and d < n.
func RandomRegular(n, d int, seed uint64) (*graph.Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n*d = %d*%d must be even", n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("gen: degree %d must be < n = %d", d, n)
	}
	r := rng(seed)
	// Circulant seed graph: offsets 1..d/2, plus the antipodal offset n/2
	// when d is odd (then n is even by the parity check).
	type edge struct{ u, v int32 }
	var edges []edge
	seen := make(map[[2]int32]bool)
	addEdge := func(u, v int32) {
		if u > v {
			u, v = v, u
		}
		key := [2]int32{u, v}
		if u != v && !seen[key] {
			seen[key] = true
			edges = append(edges, edge{u, v})
		}
	}
	for off := 1; off <= d/2; off++ {
		for v := 0; v < n; v++ {
			addEdge(int32(v), int32((v+off)%n))
		}
	}
	if d%2 == 1 {
		for v := 0; v < n/2; v++ {
			addEdge(int32(v), int32(v+n/2))
		}
	}
	// Double-edge swaps: (a,b),(c,e) -> (a,c),(b,e) when simple.
	m := len(edges)
	for swap := 0; swap < 10*m; swap++ {
		i, j := r.IntN(m), r.IntN(m)
		if i == j {
			continue
		}
		a, b := edges[i].u, edges[i].v
		c, e := edges[j].u, edges[j].v
		if r.IntN(2) == 0 {
			c, e = e, c
		}
		if a == c || a == e || b == c || b == e {
			continue
		}
		k1 := [2]int32{min32(a, c), max32(a, c)}
		k2 := [2]int32{min32(b, e), max32(b, e)}
		if seen[k1] || seen[k2] {
			continue
		}
		delete(seen, [2]int32{min32(a, b), max32(a, b)})
		delete(seen, [2]int32{min32(c, e), max32(c, e)})
		seen[k1] = true
		seen[k2] = true
		edges[i] = edge{a, c}
		edges[j] = edge{b, e}
	}
	bld := graph.NewBuilder(n)
	for _, e := range edges {
		bld.AddEdge(int(e.u), int(e.v))
	}
	return bld.Build()
}

// RandomTree returns a uniformly random labelled tree on n nodes via a
// random Prüfer sequence.
func RandomTree(n int, seed uint64) *graph.Graph {
	if n <= 1 {
		return graph.NewBuilder(n).MustBuild()
	}
	if n == 2 {
		b := graph.NewBuilder(2)
		b.AddEdge(0, 1)
		return b.MustBuild()
	}
	r := rng(seed)
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = r.IntN(n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range prufer {
		deg[v]++
	}
	b := graph.NewBuilder(n)
	// Prüfer decoding with a min-heap of current leaves.
	var leaves intHeap
	for v := 0; v < n; v++ {
		if deg[v] == 1 {
			leaves.push(v)
		}
	}
	for _, v := range prufer {
		leaf := leaves.pop()
		b.AddEdge(leaf, v)
		deg[leaf]--
		deg[v]--
		if deg[v] == 1 {
			leaves.push(v)
		}
	}
	last0 := leaves.pop()
	last1 := leaves.pop()
	b.AddEdge(last0, last1)
	return b.MustBuild()
}

// UnionOfForests returns a graph on n nodes that is the union of k
// independently sampled random spanning trees, after de-duplication. By
// construction its arboricity is at most k (Definition 1), which makes it
// the certified workload for Theorem 3 experiments.
func UnionOfForests(n, k int, seed uint64) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < k; i++ {
		t := RandomTree(n, seed+uint64(i)*0x51ed2701)
		for v := 0; v < n; v++ {
			for _, u := range t.Neighbors(v) {
				if int(u) > v {
					b.AddEdge(v, int(u))
				}
			}
		}
	}
	return b.MustBuild()
}

// Apollonian returns a random Apollonian network (stacked triangulation) on
// n >= 3 nodes: start from a triangle and repeatedly insert a node inside a
// uniformly random face, connecting it to the face's three corners. The
// result is a maximal planar graph, hence has arboricity at most 3, while
// its maximum degree grows unboundedly — exactly the α ≪ Δ regime where
// Theorem 3 beats the Δ-based algorithms.
func Apollonian(n int, seed uint64) *graph.Graph {
	if n < 3 {
		n = 3
	}
	r := rng(seed)
	b := graph.NewBuilder(n)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	faces := [][3]int{{0, 1, 2}}
	for v := 3; v < n; v++ {
		i := r.IntN(len(faces))
		f := faces[i]
		b.AddEdge(v, f[0])
		b.AddEdge(v, f[1])
		b.AddEdge(v, f[2])
		faces[i] = [3]int{f[0], f[1], v}
		faces = append(faces, [3]int{f[0], f[2], v}, [3]int{f[1], f[2], v})
	}
	return b.MustBuild()
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs leaves attached to each spine node. Arboricity 1, maximum degree
// legs+2.
func Caterpillar(spine, legs int) *graph.Graph {
	n := spine * (1 + legs)
	b := graph.NewBuilder(n)
	for s := 0; s+1 < spine; s++ {
		b.AddEdge(s, s+1)
	}
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(s, next)
			next++
		}
	}
	return b.MustBuild()
}

// ChungLu returns a Chung–Lu random graph with a power-law expected degree
// sequence with exponent gamma (>2) and expected max degree maxDeg.
func ChungLu(n int, gamma float64, maxDeg int, seed uint64) *graph.Graph {
	r := rng(seed)
	w := make([]float64, n)
	var sum float64
	for i := range w {
		// Inverse-CDF sampling of a truncated Pareto.
		u := r.Float64()
		w[i] = math.Pow(u, -1/(gamma-1))
		if w[i] > float64(maxDeg) {
			w[i] = float64(maxDeg)
		}
		sum += w[i]
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := w[u] * w[v] / sum
			if p > 1 {
				p = 1
			}
			if r.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// PowerLaw returns a Chung–Lu random graph with the same truncated-Pareto
// expected degree sequence as ChungLu, generated with the Miller–Hagberg
// skipping algorithm in O(n + m) expected time instead of ChungLu's O(n²)
// Bernoulli sweep. It exists for the 10⁶–10⁷ node degree-skew benchmarks,
// where the quadratic sweep is unusable; ChungLu is kept unchanged so that
// instances pinned by earlier experiments stay bit-identical.
//
// Weights are sorted descending, so hub nodes cluster at the low indices —
// exactly the ID-clustered skew the engine's chunking has to survive.
func PowerLaw(n int, gamma float64, maxDeg int, seed uint64) *graph.Graph {
	r := rng(seed)
	w := make([]float64, n)
	var sum float64
	for i := range w {
		u := r.Float64()
		w[i] = math.Pow(u, -1/(gamma-1))
		if w[i] > float64(maxDeg) {
			w[i] = float64(maxDeg)
		}
		sum += w[i]
	}
	// Descending weights let the skip sampler bound p by the running
	// maximum: for fixed u, p(u,v) = w[u]·w[v]/S is non-increasing in v.
	slices.SortFunc(w, func(a, b float64) int {
		switch {
		case a > b:
			return -1
		case a < b:
			return 1
		default:
			return 0
		}
	})
	b := graph.NewBuilder(n)
	for u := 0; u < n-1; u++ {
		v := u + 1
		p := w[u] * w[v] / sum
		if p > 1 {
			p = 1
		}
		for v < n && p > 0 {
			if p < 1 {
				// Geometric skip over the run of probability-p trials.
				v += int(math.Floor(math.Log(1-r.Float64()) / math.Log1p(-p)))
			}
			if v >= n {
				break
			}
			// Accept with the true probability at the landing index,
			// normalized by the bounding p (q/p ≤ 1 by the sort order).
			q := w[u] * w[v] / sum
			if q > 1 {
				q = 1
			}
			if r.Float64() < q/p {
				b.AddEdge(u, v)
			}
			p = q
			v++
		}
	}
	return b.MustBuild()
}

// CycleOfCliques returns the Section 7 lower-bound graph C1: n0 cliques
// D(v_1)..D(v_n0) of n1 nodes each, arranged in a cycle with a complete
// biclique between adjacent cliques. Node (i, j) has index i*n1+j and
// identifier i*n1+j+1, the paper's "concatenation of the ID for u_i in C
// and the number j" realized compactly so identifiers stay within
// log(n0*n1) bits.
func CycleOfCliques(n0, n1 int) *graph.Graph {
	n := n0 * n1
	b := graph.NewBuilder(n)
	at := func(i, j int) int { return i*n1 + j }
	for i := 0; i < n0; i++ {
		for j := 0; j < n1; j++ {
			v := at(i, j)
			b.SetID(v, uint64(v+1))
			for j2 := j + 1; j2 < n1; j2++ {
				b.AddEdge(v, at(i, j2)) // intra-clique
			}
			if n0 > 1 {
				next := (i + 1) % n0
				if next != i {
					for j2 := 0; j2 < n1; j2++ {
						b.AddEdge(v, at(next, j2)) // biclique to next clique
					}
				}
			}
		}
	}
	return b.MustBuild()
}

// CliqueIndex returns the cycle position of a cycle-of-cliques node.
func CliqueIndex(v, n1 int) int { return v / n1 }

// StarOfCliques returns the high-variance instance used to reproduce the
// paper's Section 1 observation that the one-round ranking algorithm's
// w(V)/(Δ+1) guarantee holds only in expectation: one heavy hub clique of
// size h carrying almost all the weight, plus many unit-weight pendant
// nodes. A single clique winner takes all the weight, so the output weight
// has enormous variance.
func StarOfCliques(h, pendants int, hubWeight int64) *graph.Graph {
	n := h + pendants
	b := graph.NewBuilder(n)
	for u := 0; u < h; u++ {
		b.SetWeight(u, hubWeight)
		for v := u + 1; v < h; v++ {
			b.AddEdge(u, v)
		}
	}
	for p := h; p < n; p++ {
		b.SetWeight(p, 1)
		b.AddEdge(p%h, p)
	}
	return b.MustBuild()
}

// PlantedIS returns a graph with a *planted* independent set: the first
// plantedSize nodes form an independent set carrying weight plantedWeight
// each, while the remaining nodes get unit weight and random edges with
// probability p (among themselves and towards the planted set). Because
// OPT ≥ plantedSize·plantedWeight by construction, the instance certifies
// approximation ratios at scales where exact search is impossible. The
// planted membership is returned alongside the graph.
func PlantedIS(n, plantedSize int, plantedWeight int64, p float64, seed uint64) (*graph.Graph, []bool) {
	if plantedSize > n {
		plantedSize = n
	}
	r := rng(seed)
	b := graph.NewBuilder(n)
	planted := make([]bool, n)
	for v := 0; v < plantedSize; v++ {
		planted[v] = true
		b.SetWeight(v, plantedWeight)
	}
	for v := plantedSize; v < n; v++ {
		b.SetWeight(v, 1)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if planted[u] && planted[v] {
				continue // keep the planted set independent
			}
			if r.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	// Shuffle identifiers so the planted set is not detectable from IDs.
	perm := r.Perm(n)
	for v := 0; v < n; v++ {
		b.SetID(v, uint64(perm[v]+1))
	}
	return b.MustBuild(), planted
}

// intHeap is a minimal binary min-heap of ints used by Prüfer decoding.
type intHeap struct{ a []int }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.a[l] < h.a[smallest] {
			smallest = l
		}
		if r < last && h.a[r] < h.a[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
