package gen

import (
	"testing"

	"distmwis/internal/graph"
)

func TestCycle(t *testing.T) {
	g := Cycle(7)
	if g.N() != 7 || g.M() != 7 || g.MaxDegree() != 2 {
		t.Fatalf("got n=%d m=%d Δ=%d", g.N(), g.M(), g.MaxDegree())
	}
	for v := 0; v < 7; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPath(t *testing.T) {
	g := Path(5)
	if g.M() != 4 || g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Errorf("path shape wrong: m=%d", g.M())
	}
}

func TestClique(t *testing.T) {
	g := Clique(6)
	if g.M() != 15 || g.MaxDegree() != 5 {
		t.Errorf("K6: m=%d Δ=%d", g.M(), g.MaxDegree())
	}
}

func TestStar(t *testing.T) {
	g := Star(10)
	if g.Degree(0) != 9 || g.M() != 9 {
		t.Errorf("star shape wrong")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Errorf("K{3,4}: n=%d m=%d", g.N(), g.M())
	}
	if g.HasEdge(0, 1) || !g.HasEdge(0, 3) {
		t.Error("bipartition wrong")
	}
}

func TestGridAndTorus(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Errorf("grid 3x4: n=%d m=%d, want 12, 17", g.N(), g.M())
	}
	tor := Torus(3, 4)
	if tor.N() != 12 || tor.M() != 24 {
		t.Errorf("torus 3x4: n=%d m=%d, want 12, 24", tor.N(), tor.M())
	}
	for v := 0; v < tor.N(); v++ {
		if tor.Degree(v) != 4 {
			t.Errorf("torus Degree(%d) = %d, want 4", v, tor.Degree(v))
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Errorf("Q4: n=%d m=%d, want 16, 32", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Errorf("Q4 Degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestGNP(t *testing.T) {
	g := GNP(200, 0.05, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected m = C(200,2)*0.05 = 995; allow wide slack.
	if g.M() < 700 || g.M() > 1300 {
		t.Errorf("G(200,0.05) m = %d, outside sanity band", g.M())
	}
	// Determinism.
	g2 := GNP(200, 0.05, 1)
	if g2.M() != g.M() {
		t.Error("GNP not deterministic for fixed seed")
	}
	if GNP(50, 0, 1).M() != 0 {
		t.Error("GNP(p=0) has edges")
	}
	if GNP(10, 1, 1).M() != 45 {
		t.Error("GNP(p=1) is not complete")
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(100, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Error("expected parity error for n*d odd")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil {
		t.Error("expected error for d >= n")
	}
}

func TestRandomTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 257} {
		g := RandomTree(n, 42)
		if g.N() != n {
			t.Fatalf("n = %d", g.N())
		}
		if n >= 1 && g.M() != n-1 && n > 1 {
			t.Fatalf("tree on %d nodes has %d edges", n, g.M())
		}
		if n > 1 {
			if _, count := g.Components(); count != 1 {
				t.Fatalf("tree on %d nodes is disconnected", n)
			}
		}
	}
}

func TestUnionOfForests(t *testing.T) {
	g := UnionOfForests(150, 3, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if hi := g.ArboricityUpperBound(); hi > 2*3 {
		t.Errorf("union of 3 forests has degeneracy %d > 6", hi)
	}
	// The union of k spanning trees has at most k(n-1) edges, and arboricity
	// at most k by construction.
	if g.M() > 3*149 {
		t.Errorf("m = %d exceeds 3(n-1)", g.M())
	}
}

func TestApollonian(t *testing.T) {
	g := Apollonian(300, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Maximal planar: m = 3n - 6.
	if g.M() != 3*300-6 {
		t.Errorf("Apollonian m = %d, want %d", g.M(), 3*300-6)
	}
	// Planar => arboricity <= 3; degeneracy of Apollonian networks is 3.
	if hi := g.ArboricityUpperBound(); hi != 3 {
		t.Errorf("Apollonian degeneracy = %d, want 3", hi)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(10, 5)
	if g.N() != 60 || g.M() != 59 {
		t.Errorf("caterpillar: n=%d m=%d, want 60, 59", g.N(), g.M())
	}
	if _, count := g.Components(); count != 1 {
		t.Error("caterpillar disconnected")
	}
	if g.ArboricityUpperBound() != 1 {
		t.Errorf("caterpillar degeneracy = %d, want 1", g.ArboricityUpperBound())
	}
}

func TestChungLu(t *testing.T) {
	g := ChungLu(300, 2.5, 50, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() == 0 {
		t.Error("ChungLu produced empty graph")
	}
}

func TestCycleOfCliques(t *testing.T) {
	const n0, n1 = 6, 5
	g := CycleOfCliques(n0, n1)
	if g.N() != n0*n1 {
		t.Fatalf("n = %d", g.N())
	}
	// Each node: n1-1 intra-clique + 2*n1 to the two adjacent cliques.
	wantDeg := n1 - 1 + 2*n1
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != wantDeg {
			t.Fatalf("Degree(%d) = %d, want %d", v, g.Degree(v), wantDeg)
		}
	}
	// Adjacency structure: same clique or adjacent cliques only.
	for v := 0; v < g.N(); v++ {
		ci := CliqueIndex(v, n1)
		for _, u := range g.Neighbors(v) {
			cj := CliqueIndex(int(u), n1)
			diff := (cj - ci + n0) % n0
			if diff != 0 && diff != 1 && diff != n0-1 {
				t.Fatalf("edge between cliques %d and %d", ci, cj)
			}
		}
	}
	// IDs are the compact (i, j) encoding i*n1+j+1.
	if g.ID(n1+2) != uint64(n1+3) {
		t.Errorf("ID scheme wrong: %d", g.ID(n1+2))
	}
}

func TestStarOfCliques(t *testing.T) {
	g := StarOfCliques(8, 100, 1000)
	if g.N() != 108 {
		t.Fatalf("n = %d", g.N())
	}
	if g.Weight(0) != 1000 || g.Weight(100) != 1 {
		t.Error("weights wrong")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPlantedIS(t *testing.T) {
	g, planted := PlantedIS(400, 60, 1000, 0.05, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(planted) {
		t.Fatal("planted set not independent")
	}
	if got := graph.SetSize(planted); got != 60 {
		t.Fatalf("planted size %d, want 60", got)
	}
	if g.SetWeight(planted) != 60*1000 {
		t.Fatalf("planted weight %d, want 60000", g.SetWeight(planted))
	}
	// Non-planted nodes have unit weight.
	for v := 0; v < g.N(); v++ {
		if !planted[v] && g.Weight(v) != 1 {
			t.Fatalf("non-planted node %d has weight %d", v, g.Weight(v))
		}
	}
	// IDs are shuffled but unique (Build validates uniqueness).
	if g.M() == 0 {
		t.Error("no noise edges generated")
	}
}

func TestPlantedISClampsSize(t *testing.T) {
	g, planted := PlantedIS(10, 50, 5, 0, 1)
	if g.N() != 10 || graph.SetSize(planted) != 10 {
		t.Error("planted size not clamped to n")
	}
	if g.M() != 0 {
		t.Error("p=0 produced edges")
	}
}

func TestWeightFns(t *testing.T) {
	tests := []struct {
		name string
		fn   WeightFn
	}{
		{name: "unit", fn: UnitWeights},
		{name: "uniform", fn: UniformWeights(1000)},
		{name: "poly", fn: PolyWeights(2)},
		{name: "expspread", fn: ExponentialSpreadWeights(20)},
		{name: "skewed", fn: SkewedWeights(0.1, 1<<20)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := tt.fn(500, 11)
			if len(w) != 500 {
				t.Fatalf("len = %d", len(w))
			}
			for i, x := range w {
				if x <= 0 {
					t.Fatalf("w[%d] = %d not positive", i, x)
				}
			}
			// Determinism.
			w2 := tt.fn(500, 11)
			for i := range w {
				if w[i] != w2[i] {
					t.Fatal("weight fn not deterministic")
				}
			}
		})
	}
}

func TestWeighted(t *testing.T) {
	g := Weighted(Cycle(10), UniformWeights(99), 3)
	if g.IsUnitWeight() {
		t.Error("Weighted left unit weights")
	}
	if g.MaxWeight() > 100 {
		t.Errorf("MaxWeight = %d", g.MaxWeight())
	}
}

func TestRandomIDs(t *testing.T) {
	g := RandomIDs(Cycle(50), 1<<20, 17)
	seen := make(map[uint64]bool)
	for v := 0; v < g.N(); v++ {
		id := g.ID(v)
		if id == 0 || id > 1<<20 {
			t.Fatalf("ID(%d) = %d out of range", v, id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
	if g.M() != 50 {
		t.Error("RandomIDs changed topology")
	}
}

func TestGeneratorsValidate(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cycle":          Cycle(30),
		"path":           Path(30),
		"clique":         Clique(12),
		"star":           Star(20),
		"bipartite":      CompleteBipartite(5, 8),
		"grid":           Grid(5, 6),
		"torus":          Torus(4, 5),
		"hypercube":      Hypercube(5),
		"gnp":            GNP(100, 0.1, 2),
		"tree":           RandomTree(64, 3),
		"forests":        UnionOfForests(64, 2, 4),
		"apollonian":     Apollonian(64, 5),
		"caterpillar":    Caterpillar(8, 3),
		"chunglu":        ChungLu(80, 2.8, 20, 6),
		"cycleofcliques": CycleOfCliques(5, 4),
		"starofcliques":  StarOfCliques(4, 20, 100),
	}
	for name, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPowerLaw(t *testing.T) {
	g := PowerLaw(3000, 2.5, 60, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() == 0 {
		t.Error("PowerLaw produced empty graph")
	}
	// Hubs cluster at the low indices by construction.
	lo, hi := 0, 0
	for v := 0; v < 100; v++ {
		lo += g.Degree(v)
	}
	for v := g.N() - 100; v < g.N(); v++ {
		hi += g.Degree(v)
	}
	if lo <= hi {
		t.Errorf("expected hub degrees at low IDs: low-100 sum %d, high-100 sum %d", lo, hi)
	}
	// Determinism: same seed, same graph.
	h := PowerLaw(3000, 2.5, 60, 11)
	if g.M() != h.M() {
		t.Errorf("PowerLaw not deterministic: m=%d vs %d", g.M(), h.M())
	}
}
