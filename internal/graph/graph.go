// Package graph provides the node-weighted undirected graphs all algorithms
// in this repository operate on.
//
// Graphs are immutable after construction and stored in compressed
// sparse-row form: a single offsets slice plus a single adjacency slice, so
// neighbour scans are cache-friendly even at 10^6 edges. Node weights are
// int64 — the paper allows the maximum weight W to be poly(n), and integer
// weights keep CONGEST messages at an honest O(log n) bits (Section 3,
// "Assumptions"). Weights may be zero or negative only in *derived* graphs
// produced by local-ratio reductions (Section 4.3); NewBuilder rejects
// negative input weights.
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// Graph is an immutable undirected node-weighted graph. The zero value is an
// empty graph.
type Graph struct {
	off     []int32 // CSR offsets, len n+1
	adj     []int32 // concatenated sorted neighbour lists, len 2m
	weights []int64 // node weights, len n
	ids     []uint64
	maxDeg  int
}

// Builder accumulates edges for a Graph. Builders are single-use: Build may
// be called once.
type Builder struct {
	n       int
	weights []int64
	ids     []uint64
	edges   [][2]int32
	built   bool
}

// NewBuilder creates a builder for a graph on n nodes with unit weights and
// identifiers 1..n. Use SetWeight / SetID to override before Build.
func NewBuilder(n int) *Builder {
	b := &Builder{
		n:       n,
		weights: make([]int64, n),
		ids:     make([]uint64, n),
	}
	for i := range b.weights {
		b.weights[i] = 1
		b.ids[i] = uint64(i + 1)
	}
	return b
}

// AddEdge records the undirected edge {u, v}. Duplicate edges are
// de-duplicated at Build time; self-loops are rejected there.
func (b *Builder) AddEdge(u, v int) {
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// SetWeight assigns node v's weight. Negative weights are rejected at Build.
func (b *Builder) SetWeight(v int, w int64) { b.weights[v] = w }

// SetWeights assigns all node weights at once; len(w) must equal n.
func (b *Builder) SetWeights(w []int64) {
	if len(w) != b.n {
		panic(fmt.Sprintf("graph: SetWeights got %d weights for %d nodes", len(w), b.n))
	}
	copy(b.weights, w)
}

// SetID assigns node v's identifier. Identifiers must be unique and fit in
// O(log n) bits for CONGEST transmission; Build validates uniqueness.
func (b *Builder) SetID(v int, id uint64) { b.ids[v] = id }

// Build validates and freezes the graph.
func (b *Builder) Build() (*Graph, error) {
	if b.built {
		return nil, errors.New("graph: Builder used twice")
	}
	b.built = true
	for v, w := range b.weights {
		if w < 0 {
			return nil, fmt.Errorf("graph: node %d has negative weight %d", v, w)
		}
	}
	// Uniqueness check. Strictly increasing identifiers — the untouched
	// NewBuilder default 1..n, and the common generator convention — are
	// certified by one linear scan; only unordered identifier assignments
	// pay for the map, which at 10M+ nodes would otherwise dominate Build.
	increasing := true
	for v := 1; v < b.n; v++ {
		if b.ids[v] <= b.ids[v-1] {
			increasing = false
			break
		}
	}
	if !increasing {
		seen := make(map[uint64]int, b.n)
		for v, id := range b.ids {
			if prev, dup := seen[id]; dup {
				return nil, fmt.Errorf("graph: nodes %d and %d share identifier %d", prev, v, id)
			}
			seen[id] = v
		}
	}
	deg := make([]int32, b.n)
	for _, e := range b.edges {
		u, v := e[0], e[1]
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at node %d", u)
		}
		if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
		}
		deg[u]++
		deg[v]++
	}
	off := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]int32, off[b.n])
	fill := make([]int32, b.n)
	copy(fill, off[:b.n])
	for _, e := range b.edges {
		u, v := e[0], e[1]
		adj[fill[u]] = v
		fill[u]++
		adj[fill[v]] = u
		fill[v]++
	}
	// Sort neighbour lists and drop duplicate parallel edges.
	g := &Graph{weights: b.weights, ids: b.ids}
	g.off = make([]int32, b.n+1)
	g.adj = adj[:0]
	for v := 0; v < b.n; v++ {
		nbrs := adj[off[v]:off[v+1]]
		slices.Sort(nbrs)
		prev := int32(-1)
		for _, u := range nbrs {
			if u != prev {
				g.adj = append(g.adj, u)
				prev = u
			}
		}
		g.off[v+1] = int32(len(g.adj))
	}
	for v := 0; v < b.n; v++ {
		if d := int(g.off[v+1] - g.off[v]); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	return g, nil
}

// MustBuild is Build for statically-known-valid graphs (tests, generators).
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.weights) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// MaxDegree returns Δ, the maximum degree over all nodes (0 for empty).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Neighbors returns v's sorted neighbour list. The slice aliases internal
// storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// HasEdge reports whether {u,v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	return i < len(nbrs) && nbrs[i] == int32(v)
}

// Weight returns node v's weight.
func (g *Graph) Weight(v int) int64 { return g.weights[v] }

// Weights returns a copy of the weight vector.
func (g *Graph) Weights() []int64 {
	out := make([]int64, len(g.weights))
	copy(out, g.weights)
	return out
}

// TotalWeight returns w(V), the sum of all node weights.
func (g *Graph) TotalWeight() int64 {
	var sum int64
	for _, w := range g.weights {
		sum += w
	}
	return sum
}

// MaxWeight returns W, the maximum node weight (0 for the empty graph).
func (g *Graph) MaxWeight() int64 {
	var maxW int64
	for _, w := range g.weights {
		if w > maxW {
			maxW = w
		}
	}
	return maxW
}

// ID returns node v's identifier.
func (g *Graph) ID(v int) uint64 { return g.ids[v] }

// MaxID returns the largest identifier in the graph (0 for empty). Algorithms
// use this to size CONGEST identifier fields.
func (g *Graph) MaxID() uint64 {
	var m uint64
	for _, id := range g.ids {
		if id > m {
			m = id
		}
	}
	return m
}

// WithWeights returns a copy of g sharing topology but carrying the given
// weight vector. Unlike NewBuilder, negative and zero weights are allowed:
// local-ratio reductions (Section 4.3 of the paper) legitimately produce
// them on derived graphs.
func (g *Graph) WithWeights(w []int64) *Graph {
	if len(w) != g.N() {
		panic(fmt.Sprintf("graph: WithWeights got %d weights for %d nodes", len(w), g.N()))
	}
	weights := make([]int64, len(w))
	copy(weights, w)
	return &Graph{off: g.off, adj: g.adj, weights: weights, ids: g.ids, maxDeg: g.maxDeg}
}

// Unweighted returns a copy of g with all weights set to one.
func (g *Graph) Unweighted() *Graph {
	w := make([]int64, g.N())
	for i := range w {
		w[i] = 1
	}
	return g.WithWeights(w)
}

// IsUnitWeight reports whether every node has weight exactly one.
func (g *Graph) IsUnitWeight() bool {
	for _, w := range g.weights {
		if w != 1 {
			return false
		}
	}
	return true
}

// Subgraph is an induced subgraph together with the mapping back to the
// parent graph.
type Subgraph struct {
	// G is the induced subgraph, with nodes renumbered 0..k-1.
	G *Graph
	// ToParent maps a subgraph node index to its parent index.
	ToParent []int32
	// FromParent maps a parent node index to its subgraph index, or -1.
	FromParent []int32
}

// Induce returns the subgraph induced by the nodes with keep[v] == true.
// Weights and identifiers carry over.
func (g *Graph) Induce(keep []bool) *Subgraph {
	if len(keep) != g.N() {
		panic(fmt.Sprintf("graph: Induce got %d flags for %d nodes", len(keep), g.N()))
	}
	fromParent := make([]int32, g.N())
	var toParent []int32
	for v := range keep {
		if keep[v] {
			fromParent[v] = int32(len(toParent))
			toParent = append(toParent, int32(v))
		} else {
			fromParent[v] = -1
		}
	}
	k := len(toParent)
	sub := &Graph{
		off:     make([]int32, k+1),
		weights: make([]int64, k),
		ids:     make([]uint64, k),
	}
	for i, pv := range toParent {
		sub.weights[i] = g.weights[pv]
		sub.ids[i] = g.ids[pv]
		for _, u := range g.Neighbors(int(pv)) {
			if keep[u] {
				sub.adj = append(sub.adj, fromParent[u])
			}
		}
		sub.off[i+1] = int32(len(sub.adj))
		if d := int(sub.off[i+1] - sub.off[i]); d > sub.maxDeg {
			sub.maxDeg = d
		}
	}
	return &Subgraph{G: sub, ToParent: toParent, FromParent: fromParent}
}

// LiftSet maps a node-membership vector on the subgraph back to the parent
// graph's index space.
func (s *Subgraph) LiftSet(sub []bool) []bool {
	out := make([]bool, len(s.FromParent))
	for i, in := range sub {
		if in {
			out[s.ToParent[i]] = true
		}
	}
	return out
}

// IsIndependentSet reports whether no two set members are adjacent.
func (g *Graph) IsIndependentSet(set []bool) bool {
	for v := 0; v < g.N(); v++ {
		if !set[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if set[u] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIS reports whether set is independent and every non-member has a
// member neighbour.
func (g *Graph) IsMaximalIS(set []bool) bool {
	if !g.IsIndependentSet(set) {
		return false
	}
	for v := 0; v < g.N(); v++ {
		if set[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if set[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// SetWeight returns the total weight of the members of set.
func (g *Graph) SetWeight(set []bool) int64 {
	var sum int64
	for v, in := range set {
		if in {
			sum += g.weights[v]
		}
	}
	return sum
}

// SetSize returns the number of members of set.
func SetSize(set []bool) int {
	n := 0
	for _, in := range set {
		if in {
			n++
		}
	}
	return n
}

// SameSet reports whether two node sets have identical membership.
func SameSet(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if a[v] != b[v] {
			return false
		}
	}
	return true
}

// Components returns the connected components as a component index per node
// and the number of components.
func (g *Graph) Components() (comp []int32, count int) {
	comp = make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for s := 0; s < g.N(); s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = int32(count)
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(int(v)) {
				if comp[u] == -1 {
					comp[u] = int32(count)
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return comp, count
}

// BFSDistances returns hop distances from src (-1 if unreachable).
func (g *Graph) BFSDistances(src int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Validate performs internal consistency checks; it is used by property
// tests and returns nil on a well-formed graph.
func (g *Graph) Validate() error {
	n := g.N()
	if len(g.off) != n+1 || len(g.ids) != n {
		return errors.New("graph: inconsistent slice lengths")
	}
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		for i, u := range nbrs {
			if int(u) < 0 || int(u) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbour %d", v, u)
			}
			if int(u) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && nbrs[i-1] >= u {
				return fmt.Errorf("graph: node %d adjacency not strictly sorted", v)
			}
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", v, u)
			}
		}
	}
	return nil
}
