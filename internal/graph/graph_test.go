package graph

import (
	"testing"
	"testing/quick"
)

func buildTriangleWithTail(t *testing.T) *Graph {
	t.Helper()
	// 0-1-2 triangle, tail 2-3-4.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := buildTriangleWithTail(t)
	if g.N() != 5 || g.M() != 5 {
		t.Fatalf("n=%d m=%d, want 5,5", g.N(), g.M())
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3 (node 2)", g.MaxDegree())
	}
	wantDeg := []int{2, 2, 3, 2, 1}
	for v, want := range wantDeg {
		if got := g.Degree(v); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if !g.HasEdge(0, 2) || g.HasEdge(0, 3) {
		t.Error("HasEdge wrong")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuildDedupesParallelEdges(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1 after dedup", g.M())
	}
}

func TestBuildRejections(t *testing.T) {
	tests := []struct {
		name string
		prep func(b *Builder)
	}{
		{name: "self-loop", prep: func(b *Builder) { b.AddEdge(1, 1) }},
		{name: "out-of-range", prep: func(b *Builder) { b.AddEdge(0, 7) }},
		{name: "negative-weight", prep: func(b *Builder) { b.SetWeight(0, -3) }},
		{name: "duplicate-id", prep: func(b *Builder) { b.SetID(0, 5); b.SetID(1, 5) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder(3)
			tt.prep(b)
			if _, err := b.Build(); err == nil {
				t.Error("expected Build error")
			}
		})
	}
}

func TestBuilderSingleUse(t *testing.T) {
	b := NewBuilder(2)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Error("expected error on second Build")
	}
}

func TestWeightsAndIDs(t *testing.T) {
	b := NewBuilder(3)
	b.SetWeights([]int64{5, 7, 11})
	b.SetID(2, 999)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalWeight() != 23 || g.MaxWeight() != 11 {
		t.Errorf("TotalWeight=%d MaxWeight=%d, want 23, 11", g.TotalWeight(), g.MaxWeight())
	}
	if g.ID(2) != 999 || g.MaxID() != 999 {
		t.Errorf("ID(2)=%d MaxID=%d, want 999, 999", g.ID(2), g.MaxID())
	}
	w := g.Weights()
	w[0] = 100 // must not alias internal storage
	if g.Weight(0) != 5 {
		t.Error("Weights() aliases internal storage")
	}
}

func TestWithWeightsAllowsNonPositive(t *testing.T) {
	g := buildTriangleWithTail(t)
	g2 := g.WithWeights([]int64{0, -5, 1, 2, 3})
	if g2.Weight(1) != -5 {
		t.Errorf("Weight(1) = %d, want -5", g2.Weight(1))
	}
	if g.Weight(1) != 1 {
		t.Error("WithWeights mutated the original")
	}
	if g2.M() != g.M() {
		t.Error("WithWeights changed topology")
	}
}

func TestUnweightedAndUnitWeight(t *testing.T) {
	g := buildTriangleWithTail(t).WithWeights([]int64{2, 3, 4, 5, 6})
	if g.IsUnitWeight() {
		t.Error("IsUnitWeight true on weighted graph")
	}
	u := g.Unweighted()
	if !u.IsUnitWeight() || u.TotalWeight() != 5 {
		t.Error("Unweighted did not produce unit weights")
	}
}

func TestInduce(t *testing.T) {
	g := buildTriangleWithTail(t)
	sub := g.Induce([]bool{true, false, true, true, false})
	if sub.G.N() != 3 {
		t.Fatalf("sub n = %d, want 3", sub.G.N())
	}
	// Kept nodes 0,2,3; surviving edges {0,2}, {2,3}.
	if sub.G.M() != 2 {
		t.Errorf("sub m = %d, want 2", sub.G.M())
	}
	if err := sub.G.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Weights and IDs carry over.
	for i, pv := range sub.ToParent {
		if sub.G.Weight(i) != g.Weight(int(pv)) || sub.G.ID(i) != g.ID(int(pv)) {
			t.Errorf("node %d metadata mismatch", i)
		}
	}
	// Lift round-trips.
	lifted := sub.LiftSet([]bool{true, false, true})
	want := []bool{true, false, false, true, false}
	for v := range want {
		if lifted[v] != want[v] {
			t.Errorf("lifted[%d] = %v, want %v", v, lifted[v], want[v])
		}
	}
}

func TestIndependentSetChecks(t *testing.T) {
	g := buildTriangleWithTail(t)
	tests := []struct {
		name        string
		set         []bool
		independent bool
		maximal     bool
	}{
		{name: "empty", set: []bool{false, false, false, false, false}, independent: true, maximal: false},
		{name: "adjacent-pair", set: []bool{true, true, false, false, false}, independent: false, maximal: false},
		{name: "independent-not-maximal", set: []bool{false, false, false, false, true}, independent: true, maximal: false},
		{name: "maximal", set: []bool{true, false, false, true, false}, independent: true, maximal: true},
		{name: "maximal2", set: []bool{false, true, false, false, true}, independent: true, maximal: false}, // node 3 not dominated? 3's nbrs: 2,4; 4 in set -> dominated; 0: nbrs 1,2; 1 in set -> dominated; 2: nbrs 0,1,3; 1 in set. So actually maximal.
	}
	// Fix the expectation computed in the comment above.
	tests[4].maximal = true
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.IsIndependentSet(tt.set); got != tt.independent {
				t.Errorf("IsIndependentSet = %v, want %v", got, tt.independent)
			}
			if got := g.IsMaximalIS(tt.set); got != tt.maximal {
				t.Errorf("IsMaximalIS = %v, want %v", got, tt.maximal)
			}
		})
	}
}

func TestSetWeightAndSize(t *testing.T) {
	g := buildTriangleWithTail(t).WithWeights([]int64{1, 2, 4, 8, 16})
	set := []bool{true, false, false, true, false}
	if got := g.SetWeight(set); got != 9 {
		t.Errorf("SetWeight = %d, want 9", got)
	}
	if got := SetSize(set); got != 2 {
		t.Errorf("SetSize = %d, want 2", got)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] {
		t.Error("components grouped wrong")
	}
	if comp[0] == comp[2] || comp[0] == comp[5] || comp[2] == comp[5] {
		t.Error("distinct components merged")
	}
}

func TestBFSDistances(t *testing.T) {
	g := buildTriangleWithTail(t)
	dist := g.BFSDistances(4)
	want := []int32{3, 3, 2, 1, 0}
	for v := range want {
		if dist[v] != want[v] {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestDegeneracy(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Graph
		want  int
	}{
		{name: "empty", build: func() *Graph { return NewBuilder(4).MustBuild() }, want: 0},
		{name: "path", build: func() *Graph {
			b := NewBuilder(5)
			for v := 0; v < 4; v++ {
				b.AddEdge(v, v+1)
			}
			return b.MustBuild()
		}, want: 1},
		{name: "cycle", build: func() *Graph {
			b := NewBuilder(5)
			for v := 0; v < 5; v++ {
				b.AddEdge(v, (v+1)%5)
			}
			return b.MustBuild()
		}, want: 2},
		{name: "clique4", build: func() *Graph {
			b := NewBuilder(4)
			for u := 0; u < 4; u++ {
				for v := u + 1; v < 4; v++ {
					b.AddEdge(u, v)
				}
			}
			return b.MustBuild()
		}, want: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := tt.build()
			d, order := g.Degeneracy()
			if d != tt.want {
				t.Errorf("degeneracy = %d, want %d", d, tt.want)
			}
			if g.N() > 0 && len(order) != g.N() {
				t.Errorf("order covers %d of %d nodes", len(order), g.N())
			}
			// Verify the defining property: each node has <= d neighbours
			// later in the order.
			pos := make([]int, g.N())
			for i, v := range order {
				pos[v] = i
			}
			for i, v := range order {
				later := 0
				for _, u := range g.Neighbors(int(v)) {
					if pos[u] > i {
						later++
					}
				}
				if later > d {
					t.Errorf("node %d has %d later neighbours > degeneracy %d", v, later, d)
				}
			}
		})
	}
}

func TestArboricityBoundsOnKnownGraphs(t *testing.T) {
	// Tree: α = 1. Clique K5: α = ceil(10/4) = 3.
	tree := NewBuilder(8)
	for v := 1; v < 8; v++ {
		tree.AddEdge(v, (v-1)/2)
	}
	tg := tree.MustBuild()
	if lo, hi := tg.ArboricityLowerBound(), tg.ArboricityUpperBound(); lo != 1 || hi != 1 {
		t.Errorf("tree bounds [%d,%d], want [1,1]", lo, hi)
	}

	k5 := NewBuilder(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			k5.AddEdge(u, v)
		}
	}
	kg := k5.MustBuild()
	lo, hi := kg.ArboricityLowerBound(), kg.ArboricityUpperBound()
	if lo > 3 || hi < 3 {
		t.Errorf("K5 bounds [%d,%d] must bracket α=3", lo, hi)
	}
	if lo != 3 {
		t.Errorf("K5 Nash-Williams lower bound = %d, want 3", lo)
	}
}

func TestDecomposeForests(t *testing.T) {
	// K6 has degeneracy 5; verify edge partition into forests covering all
	// edges.
	b := NewBuilder(6)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	forests := g.DecomposeForests()
	total := 0
	for i, f := range forests {
		if !EdgeListIsForest(g.N(), f) {
			t.Errorf("forest %d contains a cycle", i)
		}
		total += len(f)
	}
	if total != g.M() {
		t.Errorf("forests cover %d edges, want %d", total, g.M())
	}
	if len(forests) > g.ArboricityUpperBound() {
		t.Errorf("%d forests exceeds degeneracy bound %d", len(forests), g.ArboricityUpperBound())
	}
}

// TestQuickInduceConsistency: induced subgraphs of random graphs validate,
// preserve adjacency exactly, and lift sets faithfully.
func TestQuickInduceConsistency(t *testing.T) {
	f := func(edges [][2]uint8, keepMask []bool) bool {
		const n = 24
		b := NewBuilder(n)
		for _, e := range edges {
			u, v := int(e[0])%n, int(e[1])%n
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		keep := make([]bool, n)
		for i := range keep {
			if i < len(keepMask) {
				keep[i] = keepMask[i]
			}
		}
		sub := g.Induce(keep)
		if sub.G.Validate() != nil {
			return false
		}
		// Every subgraph edge must exist in the parent, and vice versa for
		// kept pairs.
		for i := 0; i < sub.G.N(); i++ {
			for _, j := range sub.G.Neighbors(i) {
				if !g.HasEdge(int(sub.ToParent[i]), int(sub.ToParent[j])) {
					return false
				}
			}
		}
		for u := 0; u < n; u++ {
			if !keep[u] {
				continue
			}
			for _, v := range g.Neighbors(u) {
				if keep[v] && !sub.G.HasEdge(int(sub.FromParent[u]), int(sub.FromParent[v])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickDegeneracyBoundsArboricity: on random graphs the Nash-Williams
// lower bound never exceeds the degeneracy upper bound, and forest
// decomposition always succeeds within the upper bound.
func TestQuickDegeneracyBoundsArboricity(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		const n = 20
		b := NewBuilder(n)
		for _, e := range edges {
			u, v := int(e[0])%n, int(e[1])%n
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		lo, hi := g.ArboricityLowerBound(), g.ArboricityUpperBound()
		if lo > hi {
			return false
		}
		forests := g.DecomposeForests()
		if len(forests) > hi {
			return false
		}
		total := 0
		for _, f := range forests {
			if !EdgeListIsForest(n, f) {
				return false
			}
			total += len(f)
		}
		return total == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
