package graph

import "fmt"

// This file is the mutation seam of the otherwise-immutable Graph type.
// Graphs stay immutable: an Edit never modifies its receiver, it rebuilds a
// new Graph with the edit applied. That keeps every existing consumer —
// solvers, caches, in-flight solves holding a *Graph — sound under
// concurrent mutation: a PATCH produces a new value while old snapshots
// keep answering for the content they were asked about.

// WeightUpdate assigns node V the weight W.
type WeightUpdate struct {
	V int32 `json:"v"`
	W int64 `json:"w"`
}

// Edit is one batch of graph mutations: edges to add, edges to remove and
// node weights to update. Node count and identifiers are fixed for the
// lifetime of a graph handle — dynamic workloads mutate topology and
// weights, not the vertex set, which is what keeps answer sets index-stable
// across versions.
// The JSON tags are the PATCH wire format of the serving tier and the
// journal format of its graph WAL; renaming one is a breaking change to
// both persisted journals and clients.
type Edit struct {
	AddEdges    [][2]int32     `json:"add_edges,omitempty"`
	RemoveEdges [][2]int32     `json:"remove_edges,omitempty"`
	Weights     []WeightUpdate `json:"weights,omitempty"`
}

// Empty reports whether the edit changes nothing.
func (e Edit) Empty() bool {
	return len(e.AddEdges) == 0 && len(e.RemoveEdges) == 0 && len(e.Weights) == 0
}

// Ops counts the individual operations in the edit.
func (e Edit) Ops() int {
	return len(e.AddEdges) + len(e.RemoveEdges) + len(e.Weights)
}

// EditReport summarises what an ApplyEdit actually changed.
type EditReport struct {
	// EdgesAdded / EdgesRemoved count edges whose presence actually
	// changed. WeightsSet counts weight updates applied (including ones
	// writing the value already present).
	EdgesAdded   int
	EdgesRemoved int
	WeightsSet   int
	// Noops counts add-existing-edge and remove-missing-edge operations.
	// They are tolerated, not errors: concurrent mutators and replayed
	// journals legitimately race to the same edge, and the outcome is
	// deterministic either way.
	Noops int
	// Touched flags every node incident to a changed edge or an updated
	// weight — the invalidation frontier for component-granular caches.
	Touched []bool
}

// ApplyEdit returns a new graph with the edit applied. Validation is
// strict where a mistake would corrupt state (out-of-range endpoints,
// self-loops, negative weights) and tolerant where concurrent mutators
// legitimately collide (adding an edge that exists, removing one that
// does not — both count as no-ops in the report). The receiver is never
// modified.
func (g *Graph) ApplyEdit(e Edit) (*Graph, EditReport, error) {
	n := g.N()
	rep := EditReport{Touched: make([]bool, n)}
	checkEdge := func(u, v int32) error {
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			return fmt.Errorf("graph: edit edge {%d,%d} out of range [0,%d)", u, v, n)
		}
		if u == v {
			return fmt.Errorf("graph: edit self-loop at node %d", u)
		}
		return nil
	}
	for _, e := range e.AddEdges {
		if err := checkEdge(e[0], e[1]); err != nil {
			return nil, EditReport{}, err
		}
	}
	for _, e := range e.RemoveEdges {
		if err := checkEdge(e[0], e[1]); err != nil {
			return nil, EditReport{}, err
		}
	}
	for _, wu := range e.Weights {
		if wu.V < 0 || int(wu.V) >= n {
			return nil, EditReport{}, fmt.Errorf("graph: edit weight for node %d out of range [0,%d)", wu.V, n)
		}
		if wu.W < 0 {
			return nil, EditReport{}, fmt.Errorf("graph: edit weight %d for node %d is negative", wu.W, wu.V)
		}
	}

	// Removal set, normalised to u < v. Within one edit the last op on an
	// edge wins add-vs-remove ties deterministically: removals are applied
	// to the old edge set first, then additions.
	removed := make(map[[2]int32]bool, len(e.RemoveEdges))
	for _, ed := range e.RemoveEdges {
		u, v := ed[0], ed[1]
		if u > v {
			u, v = v, u
		}
		removed[[2]int32{u, v}] = false // value flips true when it removes a real edge
	}

	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetID(v, g.ID(v))
		b.SetWeight(v, g.Weight(v))
	}
	for _, wu := range e.Weights {
		b.SetWeight(int(wu.V), wu.W)
		rep.WeightsSet++
		rep.Touched[wu.V] = true
	}
	present := make(map[[2]int32]bool, g.M()+len(e.AddEdges))
	for v := 0; v < n; v++ {
		for _, un := range g.Neighbors(v) {
			if int(un) <= v {
				continue
			}
			key := [2]int32{int32(v), un}
			if _, drop := removed[key]; drop {
				removed[key] = true
				rep.EdgesRemoved++
				rep.Touched[key[0]] = true
				rep.Touched[key[1]] = true
				continue
			}
			present[key] = true
			b.AddEdge(v, int(un))
		}
	}
	for _, hit := range removed {
		if !hit {
			rep.Noops++ // removing an edge that was not there
		}
	}
	for _, ed := range e.AddEdges {
		u, v := ed[0], ed[1]
		if u > v {
			u, v = v, u
		}
		key := [2]int32{u, v}
		if present[key] {
			rep.Noops++ // adding an edge that already exists
			continue
		}
		present[key] = true
		b.AddEdge(int(u), int(v))
		rep.EdgesAdded++
		rep.Touched[u] = true
		rep.Touched[v] = true
	}
	ng, err := b.Build()
	if err != nil {
		return nil, EditReport{}, fmt.Errorf("graph: edit rebuild: %w", err)
	}
	return ng, rep, nil
}
