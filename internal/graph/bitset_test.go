package graph

import (
	"math/rand/v2"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if !b.None() || b.Count() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("Set(%d) not visible", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Unset(64)
	if b.Get(64) {
		t.Fatal("Unset(64) not visible")
	}
	b.SetTo(64, true)
	b.SetTo(65, false)
	if !b.Get(64) || b.Get(65) {
		t.Fatal("SetTo misbehaved")
	}
	b.Reset()
	if !b.None() {
		t.Fatal("Reset left bits")
	}
}

func TestBitsetSetFirst(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		b := NewBitset(130)
		b.Set(129) // stale bit that SetFirst must clear when n <= 129
		b.SetFirst(n)
		if got := b.Count(); got != n {
			t.Fatalf("SetFirst(%d): Count = %d", n, got)
		}
		for i := 0; i < 130; i++ {
			if b.Get(i) != (i < n) {
				t.Fatalf("SetFirst(%d): Get(%d) = %v", n, i, b.Get(i))
			}
		}
	}
}

func TestBitsetForEachMatchesBools(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	ref := make([]bool, 517)
	b := NewBitset(len(ref))
	for i := range ref {
		if r.Uint64()&1 == 1 {
			ref[i] = true
			b.Set(i)
		}
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	var want []int
	for i, in := range ref {
		if in {
			want = append(want, i)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d indices, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEach[%d] = %d, want %d (ascending order)", i, got[i], want[i])
		}
	}
	round := BitsetFromBools(ref)
	for i := range ref {
		if round.Get(i) != ref[i] {
			t.Fatalf("BitsetFromBools mismatch at %d", i)
		}
	}
	back := b.ToBools(len(ref))
	for i := range ref {
		if back[i] != ref[i] {
			t.Fatalf("ToBools mismatch at %d", i)
		}
	}
}
