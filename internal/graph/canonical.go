package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// canonicalMagic versions the canonical encoding. Bump it whenever the byte
// layout changes: content hashes are cache keys, and a silent layout change
// would alias old and new entries.
var canonicalMagic = []byte("DMWG1")

// Canonical returns a stable, self-contained binary serialization of g:
// magic, n, m, identifiers, weights, then every undirected edge once as
// (u, v) with u < v in lexicographic order. Two graphs have equal canonical
// forms iff they have identical node counts, identifiers, weights and edge
// sets — regardless of the order edges were added to the Builder. It is the
// preimage of Hash and round-trips through FromCanonical.
func (g *Graph) Canonical() []byte {
	n := g.N()
	buf := make([]byte, 0, len(canonicalMagic)+binary.MaxVarintLen64*(2+2*n)+8*len(g.adj))
	buf = append(buf, canonicalMagic...)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(g.M()))
	for v := 0; v < n; v++ {
		buf = binary.AppendUvarint(buf, g.ids[v])
	}
	for v := 0; v < n; v++ {
		buf = binary.AppendVarint(buf, g.weights[v])
	}
	// Neighbour lists are sorted, so emitting the v < u half in node order
	// yields lexicographically sorted edges with no further work.
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				buf = binary.AppendUvarint(buf, uint64(v))
				buf = binary.AppendUvarint(buf, uint64(u))
			}
		}
	}
	return buf
}

// Hash returns the SHA-256 content hash of Canonical(). Equal hashes mean
// (up to SHA-256 collisions) equal labelled graphs; isomorphic graphs with
// different labellings hash differently by design, because every algorithm
// in this repository is identifier- and index-sensitive.
func (g *Graph) Hash() [sha256.Size]byte {
	return sha256.Sum256(g.Canonical())
}

// HashString returns Hash as lowercase hex, the form used in cache keys,
// logs and the HTTP API.
func (g *Graph) HashString() string {
	h := g.Hash()
	return hex.EncodeToString(h[:])
}

// FromCanonical decodes a graph serialized by Canonical. The decoded graph
// satisfies FromCanonical(g.Canonical()).Hash() == g.Hash().
func FromCanonical(data []byte) (*Graph, error) {
	if len(data) < len(canonicalMagic) || string(data[:len(canonicalMagic)]) != string(canonicalMagic) {
		return nil, fmt.Errorf("graph: canonical: bad magic")
	}
	rest := data[len(canonicalMagic):]
	pos := 0
	uvarint := func(what string) (uint64, error) {
		x, k := binary.Uvarint(rest[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("graph: canonical: truncated %s", what)
		}
		pos += k
		return x, nil
	}
	varint := func(what string) (int64, error) {
		x, k := binary.Varint(rest[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("graph: canonical: truncated %s", what)
		}
		pos += k
		return x, nil
	}
	nU, err := uvarint("node count")
	if err != nil {
		return nil, err
	}
	mU, err := uvarint("edge count")
	if err != nil {
		return nil, err
	}
	if nU > uint64(1)<<31 || mU > uint64(1)<<33 {
		return nil, fmt.Errorf("graph: canonical: implausible sizes n=%d m=%d", nU, mU)
	}
	n, m := int(nU), int(mU)
	ids := make([]uint64, n)
	for v := range ids {
		if ids[v], err = uvarint("identifier"); err != nil {
			return nil, err
		}
	}
	weights := make([]int64, n)
	for v := range weights {
		if weights[v], err = varint("weight"); err != nil {
			return nil, err
		}
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetID(v, ids[v])
	}
	for i := 0; i < m; i++ {
		u, err := uvarint("edge endpoint")
		if err != nil {
			return nil, err
		}
		v, err := uvarint("edge endpoint")
		if err != nil {
			return nil, err
		}
		if u >= v || v >= uint64(n) {
			return nil, fmt.Errorf("graph: canonical: bad edge {%d,%d}", u, v)
		}
		b.AddEdge(int(u), int(v))
	}
	if pos != len(rest) {
		return nil, fmt.Errorf("graph: canonical: %d trailing bytes", len(rest)-pos)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graph: canonical: %w", err)
	}
	// Weights bypass the builder: canonical forms may legitimately carry the
	// zero or negative weights of local-ratio-derived graphs.
	return g.WithWeights(weights), nil
}
