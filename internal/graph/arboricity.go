package graph

import "fmt"

// Degeneracy returns the degeneracy d of the graph and a peeling order in
// which every node has at most d neighbours appearing later. The degeneracy
// sandwiches the arboricity α of Definition 1 in the paper:
//
//	α ≤ d ≤ 2α − 1.
//
// The left inequality is witnessed constructively by DecomposeForests; the
// right follows from Nash–Williams (a graph of arboricity α always has a
// node of degree ≤ 2α−1). Computed in O(n + m) with a bucket queue.
func (g *Graph) Degeneracy() (d int, order []int32) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	deg := make([]int32, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(v))
		if int(deg[v]) > maxDeg {
			maxDeg = int(deg[v])
		}
	}
	// Bucket queue keyed by current degree.
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	order = make([]int32, 0, n)
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != int32(cur) {
			continue // stale bucket entry
		}
		removed[v] = true
		order = append(order, v)
		if cur > d {
			d = cur
		}
		for _, u := range g.Neighbors(int(v)) {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if int(deg[u]) < cur {
					cur = int(deg[u])
				}
			}
		}
	}
	return d, order
}

// ArboricityLowerBound returns a certified lower bound on the arboricity α,
// namely the maximum of ⌈m_H/(n_H−1)⌉ over the suffix subgraphs of a
// degeneracy peeling (Nash–Williams density witnesses). The whole graph is
// one such suffix, so the bound is at least ⌈m/(n−1)⌉.
func (g *Graph) ArboricityLowerBound() int {
	n := g.N()
	if n <= 1 || g.M() == 0 {
		return 0
	}
	_, order := g.Degeneracy()
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	// Walk the peeling backwards, growing the suffix subgraph one node at a
	// time and counting edges internal to the suffix.
	var edges int64
	best := 0
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		for _, u := range g.Neighbors(int(v)) {
			if pos[u] > int32(i) {
				edges++
			}
		}
		nodes := int64(n - i)
		if nodes >= 2 {
			density := int((edges + nodes - 2) / (nodes - 1)) // ceil(edges/(nodes-1))
			if density > best {
				best = density
			}
		}
	}
	return best
}

// ArboricityUpperBound returns the degeneracy, a certified upper bound on α.
func (g *Graph) ArboricityUpperBound() int {
	d, _ := g.Degeneracy()
	return d
}

// DecomposeForests partitions the edge set into at most Degeneracy() forests
// and returns, per edge slot, the forest index of each edge as a map from
// ordered pair to forest. Concretely it returns forest[v] lists: forest
// assignment via parent colouring along the degeneracy order. The result is
// a slice F of edge lists, each of which is acyclic; ∑|F_i| = m. It is the
// constructive witness for α ≤ degeneracy used in tests.
func (g *Graph) DecomposeForests() [][][2]int32 {
	d, order := g.Degeneracy()
	if d == 0 {
		return nil
	}
	n := g.N()
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	forests := make([][][2]int32, d)
	// Each node assigns its back-edges (towards later-peeled = earlier in
	// suffix ordering sense) distinct colours. In the peeling order, every
	// node has ≤ d neighbours peeled later; assign edge {v,u}, pos[u] >
	// pos[v], a colour unique at v.
	for i := 0; i < n; i++ {
		v := order[i]
		colour := 0
		for _, u := range g.Neighbors(int(v)) {
			if pos[u] > int32(i) {
				forests[colour] = append(forests[colour], [2]int32{v, u})
				colour++
			}
		}
	}
	return forests
}

// EdgeListIsForest reports whether the given edge list is acyclic over nodes
// 0..n-1, via union-find. Used to verify DecomposeForests.
func EdgeListIsForest(n int, edges [][2]int32) bool {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ru, rv := find(e[0]), find(e[1])
		if ru == rv {
			return false
		}
		parent[ru] = rv
	}
	return true
}

// String summarises the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d W=%d}", g.N(), g.M(), g.MaxDegree(), g.MaxWeight())
}
