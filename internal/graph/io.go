package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonDoc is the serialized form of a Graph: node count, identifiers,
// weights and an undirected edge list (each edge once, u < v).
type jsonDoc struct {
	N     int        `json:"n"`
	IDs   []uint64   `json:"ids,omitempty"`
	W     []int64    `json:"weights,omitempty"`
	Edges [][2]int32 `json:"edges"`
}

// WriteJSON serializes g. The format is stable and human-inspectable; it is
// what cmd/graphgen emits.
func (g *Graph) WriteJSON(w io.Writer) error {
	doc := jsonDoc{
		N:     g.N(),
		IDs:   make([]uint64, g.N()),
		W:     g.Weights(),
		Edges: make([][2]int32, 0, g.M()),
	}
	for v := 0; v < g.N(); v++ {
		doc.IDs[v] = g.ID(v)
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				doc.Edges = append(doc.Edges, [2]int32{int32(v), u})
			}
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("graph: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a graph written by WriteJSON. Missing ids/weights
// fall back to the builder defaults (1..n, unit weights).
func ReadJSON(r io.Reader) (*Graph, error) {
	var doc jsonDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	if doc.N < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", doc.N)
	}
	if len(doc.IDs) != 0 && len(doc.IDs) != doc.N {
		return nil, fmt.Errorf("graph: %d ids for %d nodes", len(doc.IDs), doc.N)
	}
	if len(doc.W) != 0 && len(doc.W) != doc.N {
		return nil, fmt.Errorf("graph: %d weights for %d nodes", len(doc.W), doc.N)
	}
	b := NewBuilder(doc.N)
	for v, id := range doc.IDs {
		b.SetID(v, id)
	}
	if len(doc.W) != 0 {
		b.SetWeights(doc.W)
	}
	for _, e := range doc.Edges {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graph: rebuild: %w", err)
	}
	return g, nil
}
