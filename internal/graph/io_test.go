package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.SetWeights([]int64{5, 0, 7, 2, 9})
	b.SetID(0, 100)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("shape changed: n %d→%d m %d→%d", g.N(), g2.N(), g.M(), g2.M())
	}
	for v := 0; v < g.N(); v++ {
		if g2.Weight(v) != g.Weight(v) || g2.ID(v) != g.ID(v) || g2.Degree(v) != g.Degree(v) {
			t.Errorf("node %d metadata changed", v)
		}
		for _, u := range g.Neighbors(v) {
			if !g2.HasEdge(v, int(u)) {
				t.Errorf("edge {%d,%d} lost", v, u)
			}
		}
	}
}

func TestReadJSONRejections(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{name: "garbage", doc: "not json"},
		{name: "negative-n", doc: `{"n":-1,"edges":[]}`},
		{name: "ids-mismatch", doc: `{"n":2,"ids":[1],"edges":[]}`},
		{name: "weights-mismatch", doc: `{"n":2,"weights":[1,2,3],"edges":[]}`},
		{name: "self-loop", doc: `{"n":2,"edges":[[1,1]]}`},
		{name: "edge-out-of-range", doc: `{"n":2,"edges":[[0,5]]}`},
		{name: "duplicate-ids", doc: `{"n":2,"ids":[7,7],"edges":[]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.doc)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadJSONDefaults(t *testing.T) {
	g, err := ReadJSON(strings.NewReader(`{"n":3,"edges":[[0,1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsUnitWeight() || g.ID(2) != 3 {
		t.Error("defaults not applied")
	}
}

// TestQuickJSONRoundTrip: serialization is lossless for arbitrary valid
// graphs.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(edges [][2]uint8, weights []uint8) bool {
		const n = 20
		b := NewBuilder(n)
		for _, e := range edges {
			u, v := int(e[0])%n, int(e[1])%n
			if u != v {
				b.AddEdge(u, v)
			}
		}
		for v := 0; v < n && v < len(weights); v++ {
			b.SetWeight(v, int64(weights[v]))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return false
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		for v := 0; v < n; v++ {
			if g2.Weight(v) != g.Weight(v) {
				return false
			}
		}
		return g2.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"n":3,"edges":[[0,1],[1,2]]}`))
	f.Add([]byte(`{"n":0,"edges":[]}`))
	f.Add([]byte(`{"n":2,"ids":[5,6],"weights":[1,2],"edges":[[0,1]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // malformed inputs must only error, never panic
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		// Accepted graphs must round-trip.
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
	})
}
