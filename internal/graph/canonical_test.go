package graph

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func randomGraph(t *testing.T, r *rand.Rand, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(r.IntN(1000)))
		b.SetID(v, uint64(v+1)*7919)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.IntN(4) == 0 {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestCanonicalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(t, r, 1+r.IntN(40))
		data := g.Canonical()
		got, err := FromCanonical(data)
		if err != nil {
			t.Fatalf("trial %d: FromCanonical: %v", trial, err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("trial %d: size mismatch: got n=%d m=%d want n=%d m=%d",
				trial, got.N(), got.M(), g.N(), g.M())
		}
		if !bytes.Equal(got.Canonical(), data) {
			t.Fatalf("trial %d: canonical form not a fixed point", trial)
		}
		if got.Hash() != g.Hash() {
			t.Fatalf("trial %d: hash changed across round trip", trial)
		}
		for v := 0; v < g.N(); v++ {
			if got.Weight(v) != g.Weight(v) || got.ID(v) != g.ID(v) {
				t.Fatalf("trial %d: node %d weight/id mismatch", trial, v)
			}
		}
	}
}

func TestCanonicalRoundTripNegativeWeights(t *testing.T) {
	// Local-ratio-derived graphs carry zero and negative weights; the
	// canonical form must preserve them even though NewBuilder rejects them.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild().WithWeights([]int64{-5, 0, 17})
	got, err := FromCanonical(g.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if got.Weight(v) != g.Weight(v) {
			t.Fatalf("node %d: weight %d, want %d", v, got.Weight(v), g.Weight(v))
		}
	}
}

func TestCanonicalEdgeOrderInvariance(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}}
	build := func(perm []int) *Graph {
		b := NewBuilder(4)
		for _, i := range perm {
			b.AddEdge(edges[i][0], edges[i][1])
		}
		// Duplicate one edge: Build de-duplicates, so the content is equal.
		b.AddEdge(edges[perm[0]][1], edges[perm[0]][0])
		return b.MustBuild()
	}
	want := build([]int{0, 1, 2, 3, 4}).HashString()
	for _, perm := range [][]int{{4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}} {
		if got := build(perm).HashString(); got != want {
			t.Fatalf("hash depends on edge insertion order: %s vs %s", got, want)
		}
	}
}

func TestHashDistinguishesContent(t *testing.T) {
	base := func() *Builder {
		b := NewBuilder(4)
		b.AddEdge(0, 1)
		b.AddEdge(2, 3)
		return b
	}
	g0 := base().MustBuild()
	seen := map[string]string{g0.HashString(): "base"}

	variants := map[string]*Graph{}
	b := base()
	b.AddEdge(1, 2)
	variants["extra-edge"] = b.MustBuild()
	b = base()
	b.SetWeight(0, 2)
	variants["weight-change"] = b.MustBuild()
	b = base()
	b.SetID(0, 99)
	variants["id-change"] = b.MustBuild()
	variants["node-count"] = NewBuilder(5).MustBuild()

	for name, g := range variants {
		h := g.HashString()
		if prev, dup := seen[h]; dup {
			t.Fatalf("variant %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func TestHashCollisionSweep(t *testing.T) {
	// A birthday-style smoke test: many distinct random graphs, all hashes
	// distinct. A single collision here would point at an encoding bug
	// (e.g. ambiguous varint framing), not at SHA-256.
	r := rand.New(rand.NewPCG(7, 7))
	seen := make(map[string]bool)
	for trial := 0; trial < 300; trial++ {
		g := randomGraph(t, r, 2+r.IntN(16))
		h := g.HashString()
		if seen[h] {
			// Distinct trials can legitimately produce identical graphs;
			// verify content equality before declaring a collision.
			continue
		}
		seen[h] = true
	}
	if len(seen) < 250 {
		t.Fatalf("only %d distinct hashes across 300 random graphs", len(seen))
	}
}

func TestFromCanonicalRejectsGarbage(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewPCG(3, 3)), 12)
	data := g.Canonical()
	cases := map[string][]byte{
		"empty":      nil,
		"bad-magic":  []byte("XXXXX123"),
		"truncated":  data[:len(data)/2],
		"trailing":   append(append([]byte{}, data...), 0x01),
		"short-head": data[:3],
	}
	for name, in := range cases {
		if _, err := FromCanonical(in); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}
