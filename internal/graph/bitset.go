package graph

import "math/bits"

// Bitset is a fixed-capacity set of small integers packed 64 to a word. It
// replaces the per-node (and per-port) []bool flag vectors on the
// simulator's hot paths: an 8× denser footprint keeps 10M-node flag scans
// inside the cache hierarchy, and word-at-a-time Count/None make the
// "any survivor?" checks of the dense MIS/peeling phases O(n/64).
//
// A Bitset is not safe for concurrent mutation: two Set calls on indices
// sharing a word race (unlike a []bool, where distinct indices are distinct
// memory locations). Confine mutation to one goroutine — which is exactly
// the discipline the congest delivery phase and per-process state already
// follow — and treat concurrent use as read-only.
type Bitset []uint64

// NewBitset returns a set able to hold indices [0, n).
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Get reports whether index i is in the set.
func (b Bitset) Get(i int) bool {
	return b[i>>6]&(1<<uint(i&63)) != 0
}

// Set adds index i.
func (b Bitset) Set(i int) {
	b[i>>6] |= 1 << uint(i&63)
}

// Unset removes index i.
func (b Bitset) Unset(i int) {
	b[i>>6] &^= 1 << uint(i&63)
}

// SetTo adds or removes index i according to v.
func (b Bitset) SetTo(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Unset(i)
	}
}

// SetFirst adds every index in [0, n). Bits at n and above are cleared, so
// SetFirst(n) on a fresh or reused set leaves exactly [0, n) present.
func (b Bitset) SetFirst(n int) {
	full := n >> 6
	for w := 0; w < full; w++ {
		b[w] = ^uint64(0)
	}
	if full < len(b) {
		if rem := n & 63; rem > 0 {
			b[full] = (1 << uint(rem)) - 1
			full++
		}
	}
	for w := full; w < len(b); w++ {
		b[w] = 0
	}
}

// Reset removes every index.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of indices in the set.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// None reports whether the set is empty, scanning a word at a time.
func (b Bitset) None() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every index in the set, in ascending order.
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// ToBools expands the set into a []bool of length n, the representation the
// package's subgraph and verification APIs consume.
func (b Bitset) ToBools(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		if b.Get(i) {
			out[i] = true
		}
	}
	return out
}

// BitsetFromBools packs a []bool membership vector.
func BitsetFromBools(v []bool) Bitset {
	b := NewBitset(len(v))
	for i, in := range v {
		if in {
			b.Set(i)
		}
	}
	return b
}
