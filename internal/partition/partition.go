// Package partition cuts a graph into k balanced node-disjoint parts for
// distributed solving. The paper's CONGEST algorithms are inherently local,
// so a large MWIS instance can be split, solved per part on independent
// backends, and reconciled only along the cut: an edge inside a part is
// handled by that part's solver, and only the edges crossing parts can
// introduce conflicts between independently computed sets. The serving
// tier's reconciler (internal/cluster) repairs exactly those edges with the
// lower-weight-endpoint-withdraws rule, so the quality cost of sharding is
// proportional to the cut weight — which is what this package minimises
// heuristically.
//
// Two strategies, chosen automatically:
//
//   - component-aware fast path: when the graph has at least k connected
//     components and they bin-pack under the balance cap, whole components
//     are distributed and the cut is empty. Sharded solves of such graphs
//     are exact relative to single-node solves, and each part's content
//     hash equals the component fingerprints the dynamic-graph cache
//     already keys by (PR 8), so part answers share those cache lines.
//   - BFS greedy growing: parts grow breadth-first from lowest-index
//     seeds, each bounded by an even quota of the remaining nodes. BFS
//     locality keeps neighbours co-located where the graph has any, which
//     is what bounds the cut on meshes, trees and other sparse topologies.
//
// Both paths are deterministic: the same graph and options always produce
// the identical partition, which the serving tier relies on for
// content-addressed routing and cache reuse of per-part answers.
package partition

import (
	"fmt"
	"math"
	"sort"

	"distmwis/internal/graph"
)

// Options configures Split.
type Options struct {
	// Parts is the requested part count k (required, ≥ 1). Clamped to the
	// node count; a graph never splits into more parts than nodes.
	Parts int
	// Balance caps part sizes at ceil(Balance·n/k) nodes (default 1.2,
	// must be ≥ 1). The BFS path is exactly balanced (≤ ceil(n/k)) by
	// construction; the cap governs how uneven the component fast path may
	// bin-pack before Split falls back to BFS growing.
	Balance float64
	// DisableComponents forces the BFS path even when the component fast
	// path would apply (used by tests and cut-sensitivity experiments).
	DisableComponents bool
}

func (o Options) withDefaults() Options {
	if o.Balance == 0 {
		o.Balance = 1.2
	}
	return o
}

// Partition is the result of one Split: a k-way node partition with the
// induced part subgraphs and the cut.
type Partition struct {
	// K is the actual part count (≤ Options.Parts when the graph is small).
	K int
	// Assignment maps each node to its part index in [0, K).
	Assignment []int32
	// Parts holds the induced subgraph of each part; Parts[p].ToParent maps
	// part-local node indices back to the original graph.
	Parts []*graph.Subgraph
	// CutEdges lists every edge whose endpoints lie in different parts, as
	// original-graph index pairs with u < v, sorted ascending. These are
	// the only edges no part solver sees — the reconciliation frontier.
	CutEdges [][2]int32
}

// Split partitions g into opts.Parts balanced parts. Deterministic.
func Split(g *graph.Graph, opts Options) (*Partition, error) {
	opts = opts.withDefaults()
	if opts.Parts < 1 {
		return nil, fmt.Errorf("partition: Parts must be ≥ 1, got %d", opts.Parts)
	}
	if opts.Balance < 1 {
		return nil, fmt.Errorf("partition: Balance must be ≥ 1, got %g", opts.Balance)
	}
	n := g.N()
	if n == 0 {
		return &Partition{K: 0, Assignment: []int32{}}, nil
	}
	k := opts.Parts
	if k > n {
		k = n
	}
	capSize := int(math.Ceil(opts.Balance * float64(n) / float64(k)))
	if min := (n + k - 1) / k; capSize < min {
		capSize = min
	}

	var assign []int32
	if !opts.DisableComponents && k > 1 {
		assign = componentAssign(g, k, capSize)
	}
	if assign == nil {
		assign = bfsAssign(g, k)
	}
	return assemble(g, k, assign), nil
}

// componentAssign is the fast path: whole connected components bin-packed
// into parts, giving an empty cut. Returns nil when it does not apply —
// fewer components than parts (some part would be empty, or a component
// would need splitting anyway) or packing that breaks the balance cap.
func componentAssign(g *graph.Graph, k, capSize int) []int32 {
	comp, count := g.Components()
	if count < k {
		return nil
	}
	sizes := make([]int, count)
	first := make([]int32, count) // lowest node index per component
	for i := range first {
		first[i] = -1
	}
	for v, c := range comp {
		sizes[c]++
		if first[c] == -1 {
			first[c] = int32(v)
		}
	}
	// Largest components first; equal sizes ordered by first node index so
	// the packing is deterministic.
	order := make([]int, count)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		if sizes[ca] != sizes[cb] {
			return sizes[ca] > sizes[cb]
		}
		return first[ca] < first[cb]
	})
	partSize := make([]int, k)
	compPart := make([]int32, count)
	for _, c := range order {
		// Greedy: place into the currently smallest part (lowest index on
		// ties).
		best := 0
		for p := 1; p < k; p++ {
			if partSize[p] < partSize[best] {
				best = p
			}
		}
		if partSize[best]+sizes[c] > capSize {
			return nil // packing too uneven for the balance cap
		}
		compPart[c] = int32(best)
		partSize[best] += sizes[c]
	}
	assign := make([]int32, g.N())
	for v, c := range comp {
		assign[v] = compPart[c]
	}
	return assign
}

// bfsAssign grows k parts breadth-first. Part p receives an even quota
// ceil(remaining/(k-p)) of the unassigned nodes, grown from lowest-index
// seeds; when a region's frontier is exhausted before the quota fills, the
// next unassigned seed continues the part. Every node is assigned and no
// part exceeds ceil(n/k).
func bfsAssign(g *graph.Graph, k int) []int32 {
	n := g.N()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	cursor := 0 // lowest possibly-unassigned node index
	queue := make([]int32, 0, n/k+1)
	assigned := 0
	for p := 0; p < k; p++ {
		remaining := n - assigned
		quota := (remaining + (k - p) - 1) / (k - p)
		size := 0
		queue = queue[:0]
		head := 0
		for size < quota {
			if head == len(queue) {
				for cursor < n && assign[cursor] != -1 {
					cursor++
				}
				if cursor == n {
					break
				}
				assign[cursor] = int32(p)
				size++
				assigned++
				queue = append(queue, int32(cursor))
				continue
			}
			v := queue[head]
			head++
			for _, u := range g.Neighbors(int(v)) {
				if size >= quota {
					break
				}
				if assign[u] == -1 {
					assign[u] = int32(p)
					size++
					assigned++
					queue = append(queue, u)
				}
			}
		}
	}
	return assign
}

// assemble builds the Partition value from a complete assignment.
func assemble(g *graph.Graph, k int, assign []int32) *Partition {
	n := g.N()
	p := &Partition{K: k, Assignment: assign, Parts: make([]*graph.Subgraph, k)}
	keep := make([]bool, n)
	for part := 0; part < k; part++ {
		for v := 0; v < n; v++ {
			keep[v] = assign[v] == int32(part)
		}
		p.Parts[part] = g.Induce(keep)
	}
	for v := 0; v < n; v++ {
		for _, un := range g.Neighbors(v) {
			u := int(un)
			if u > v && assign[v] != assign[u] {
				p.CutEdges = append(p.CutEdges, [2]int32{int32(v), un})
			}
		}
	}
	sort.Slice(p.CutEdges, func(a, b int) bool {
		if p.CutEdges[a][0] != p.CutEdges[b][0] {
			return p.CutEdges[a][0] < p.CutEdges[b][0]
		}
		return p.CutEdges[a][1] < p.CutEdges[b][1]
	})
	return p
}
