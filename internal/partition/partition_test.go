package partition

import (
	"testing"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

// corpus is the property-check graph zoo: topologies with locality (grid,
// cycle, tree), without it (gnp), and with many components (forests).
func corpus() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":     gen.Weighted(gen.GNP(120, 0.05, 7), gen.PolyWeights(2), 7),
		"grid":    gen.Grid(12, 12),
		"cycle":   gen.Cycle(97),
		"tree":    gen.RandomTree(150, 3),
		"forests": gen.Weighted(gen.UnionOfForests(140, 6, 5), gen.UniformWeights(100), 5),
		"clique":  gen.Clique(20),
		"single":  gen.Path(1),
	}
}

// checkInvariants asserts the structural contract of a Partition: complete
// assignment, consistent induced parts, exact cut, balance.
func checkInvariants(t *testing.T, g *graph.Graph, p *Partition, k int, balance float64) {
	t.Helper()
	n := g.N()
	if len(p.Assignment) != n {
		t.Fatalf("assignment covers %d of %d nodes", len(p.Assignment), n)
	}
	wantK := k
	if wantK > n {
		wantK = n
	}
	if n == 0 {
		wantK = 0
	}
	if p.K != wantK {
		t.Fatalf("K = %d, want %d", p.K, wantK)
	}
	if len(p.Parts) != p.K {
		t.Fatalf("%d part subgraphs for K=%d", len(p.Parts), p.K)
	}

	// Every node in exactly one part, and Parts agrees with Assignment.
	seen := make([]bool, n)
	partNodes := 0
	for pi, sub := range p.Parts {
		if sub.G.N() == 0 {
			t.Errorf("part %d is empty", pi)
		}
		partNodes += sub.G.N()
		for i, parent := range sub.ToParent {
			if seen[parent] {
				t.Fatalf("node %d appears in two parts", parent)
			}
			seen[parent] = true
			if p.Assignment[parent] != int32(pi) {
				t.Fatalf("node %d: Assignment says %d, Parts say %d", parent, p.Assignment[parent], pi)
			}
			if sub.G.Weight(i) != g.Weight(int(parent)) || sub.G.ID(i) != g.ID(int(parent)) {
				t.Fatalf("node %d: weight/id not carried into part %d", parent, pi)
			}
		}
	}
	if partNodes != n {
		t.Fatalf("parts hold %d nodes, graph has %d", partNodes, n)
	}

	// Balance: no part beyond ceil(balance·n/k), and the BFS path promises
	// ceil(n/k); assert the cap the options guarantee.
	if p.K > 0 {
		cap := int(balance*float64(n))/p.K + 2 // ceil slack
		for pi, sub := range p.Parts {
			if sub.G.N() > cap {
				t.Errorf("part %d has %d nodes, balance cap ≈%d", pi, sub.G.N(), cap)
			}
		}
	}

	// The cut is exactly the set of cross-part edges, and part-internal
	// edges plus cut edges account for every edge of g.
	cut := make(map[[2]int32]bool, len(p.CutEdges))
	for i, e := range p.CutEdges {
		if e[0] >= e[1] {
			t.Fatalf("cut edge %v not normalised u<v", e)
		}
		if p.Assignment[e[0]] == p.Assignment[e[1]] {
			t.Fatalf("cut edge %v has both endpoints in part %d", e, p.Assignment[e[0]])
		}
		if !g.HasEdge(int(e[0]), int(e[1])) {
			t.Fatalf("cut edge %v not in graph", e)
		}
		if i > 0 {
			prev := p.CutEdges[i-1]
			if prev[0] > e[0] || (prev[0] == e[0] && prev[1] >= e[1]) {
				t.Fatalf("cut edges not sorted ascending: %v after %v", e, prev)
			}
		}
		cut[e] = true
	}
	internal := 0
	for _, sub := range p.Parts {
		internal += sub.G.M()
	}
	if internal+len(cut) != g.M() {
		t.Fatalf("edges: %d internal + %d cut != %d total", internal, len(cut), g.M())
	}
	for v := 0; v < n; v++ {
		for _, un := range g.Neighbors(v) {
			u := int(un)
			if u > v && p.Assignment[v] != p.Assignment[un] && !cut[[2]int32{int32(v), un}] {
				t.Fatalf("cross-part edge (%d,%d) missing from cut", v, u)
			}
		}
	}
}

func TestSplitProperties(t *testing.T) {
	for name, g := range corpus() {
		for _, k := range []int{1, 2, 3, 5, 8} {
			p, err := Split(g, Options{Parts: k})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			checkInvariants(t, g, p, k, 1.2)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	for name, g := range corpus() {
		a, err := Split(g, Options{Parts: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := Split(g, Options{Parts: 4})
		if len(a.Assignment) != len(b.Assignment) {
			t.Fatalf("%s: nondeterministic size", name)
		}
		for v := range a.Assignment {
			if a.Assignment[v] != b.Assignment[v] {
				t.Fatalf("%s: node %d assigned to %d then %d", name, v, a.Assignment[v], b.Assignment[v])
			}
		}
		if len(a.CutEdges) != len(b.CutEdges) {
			t.Fatalf("%s: nondeterministic cut", name)
		}
	}
}

// manyComponents builds a disjoint union of 12 paths of varying length —
// a graph the component fast path must shard with an empty cut.
func manyComponents() *graph.Graph {
	b := graph.NewBuilder(126)
	v := 0
	for c := 0; c < 12; c++ {
		size := 5 + c // 5..16 nodes per component
		for i := 1; i < size; i++ {
			b.AddEdge(v+i-1, v+i)
		}
		for i := 0; i < size; i++ {
			b.SetWeight(v+i, int64(1+(v+i)%9))
		}
		v += size
	}
	return b.MustBuild()
}

// TestSplitComponentFastPath: a disjoint union has many components, so a
// split into fewer parts than components must place whole components and
// produce an empty cut.
func TestSplitComponentFastPath(t *testing.T) {
	g := manyComponents()
	p, err := Split(g, Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CutEdges) != 0 {
		t.Fatalf("component-aware split produced %d cut edges, want 0", len(p.CutEdges))
	}
	comp, _ := g.Components()
	for v := 1; v < g.N(); v++ {
		for u := 0; u < v; u++ {
			if comp[u] == comp[v] && p.Assignment[u] != p.Assignment[v] {
				t.Fatalf("component of nodes %d,%d split across parts %d,%d",
					u, v, p.Assignment[u], p.Assignment[v])
			}
		}
	}

	// Forcing the BFS path on the same graph still satisfies every
	// invariant — just with a (possibly) non-empty cut.
	forced, err := Split(g, Options{Parts: 4, DisableComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, forced, 4, 1.2)
}

// TestSplitBFSBalance: the BFS path promises parts within ceil(n/k) even
// on a connected graph where components cannot help.
func TestSplitBFSBalance(t *testing.T) {
	g := gen.Grid(20, 20)
	for _, k := range []int{2, 3, 7} {
		p, err := Split(g, Options{Parts: k})
		if err != nil {
			t.Fatal(err)
		}
		ceil := (g.N() + k - 1) / k
		for pi, sub := range p.Parts {
			if sub.G.N() > ceil {
				t.Errorf("k=%d: part %d has %d nodes > ceil(n/k)=%d", k, pi, sub.G.N(), ceil)
			}
		}
	}
}

// TestSplitLocality: on a grid, BFS growing must beat a striped assignment
// on cut size by a wide margin — the point of growing regions.
func TestSplitLocality(t *testing.T) {
	g := gen.Grid(16, 16)
	p, err := Split(g, Options{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A 16×16 grid has 480 edges; round-robin striping cuts nearly all of
	// them, BFS regions should cut well under half.
	if len(p.CutEdges) > g.M()/2 {
		t.Fatalf("grid cut %d of %d edges; BFS growing found no locality", len(p.CutEdges), g.M())
	}
}

func TestSplitErrors(t *testing.T) {
	g := gen.Cycle(10)
	if _, err := Split(g, Options{Parts: 0}); err == nil {
		t.Error("Parts=0 accepted")
	}
	if _, err := Split(g, Options{Parts: 2, Balance: 0.5}); err == nil {
		t.Error("Balance<1 accepted")
	}
	// k > n clamps, single-node parts.
	p, err := Split(gen.Path(3), Options{Parts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 3 {
		t.Fatalf("K=%d for n=3, want 3", p.K)
	}
	// Empty graph.
	empty := graph.NewBuilder(0).MustBuild()
	p, err = Split(empty, Options{Parts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 0 || len(p.Parts) != 0 {
		t.Fatalf("empty graph: K=%d parts=%d", p.K, len(p.Parts))
	}
}
