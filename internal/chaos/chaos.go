// Package chaos is a deterministic, seeded fault injector for the serving
// tier — the HTTP/worker-level sibling of internal/fault's message-level
// adversary. Where fault.Schedule perturbs the CONGEST simulation (per-edge
// loss, duplication, corruption), chaos.Schedule perturbs the maxisd
// process around it: added request latency, injected 5xx responses,
// connection resets, slowed-down workers, and scheduled worker panics.
//
// Every decision is a pure function of (Seed, event index, fault kind) —
// the same derivation idiom as internal/fault's (round, sender, receiver)
// coordinates — so a failure scenario is a replayable schedule, not a
// flake: for a fixed arrival order of requests and jobs, two runs with the
// same Schedule inject exactly the same faults at exactly the same points.
//
// An Injector is attached in two places:
//
//   - server middleware (Middleware), which perturbs inbound HTTP traffic
//     before the handler sees it (health/readiness/metrics probes are
//     exempt, so orchestration keeps an honest view of the process);
//   - the scheduler's per-job hook (JobHook), which runs on a worker
//     goroutine inside the panic-isolation boundary, so scheduled panics
//     exercise the real recover/restart path.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Schedule describes the serving-tier adversary. The zero value is the
// empty (fault-free) schedule.
type Schedule struct {
	// Seed drives every probabilistic decision. Two runs with the same
	// Schedule and the same event order inject identical faults.
	Seed uint64

	// LatencyP is the per-request probability of sleeping Latency before
	// the handler runs (spec key "latency=P:DUR").
	LatencyP float64
	Latency  time.Duration

	// ErrorP is the per-request probability of answering with an injected
	// HTTP 500 instead of invoking the handler (spec key "err=P").
	ErrorP float64

	// ResetP is the per-request probability of aborting the connection
	// without writing a response — the client sees a reset/EOF (spec key
	// "reset=P").
	ResetP float64

	// SlowP is the per-job probability of sleeping Slow on the scheduler
	// worker before the solve (spec key "slow=P:DUR").
	SlowP float64
	Slow  time.Duration

	// Panics lists scheduler job sequence numbers (1-based execution
	// order) at which the worker hook panics (spec key "panic=N",
	// repeatable).
	Panics []int64

	// PanicEvery panics the worker on every k-th executed job
	// (spec key "panic-every=K"; 0 disables).
	PanicEvery int64

	// StormEvery fires a mutation storm on every k-th storm query and
	// StormOps sizes it (spec key "storm=EVERY:OPS"; 0 disables). The
	// injector only decides and derives the ops — the traffic driver (soak
	// test, loadgen) turns them into PATCHes, keeping the injector free of
	// graph-store knowledge.
	StormEvery int64
	StormOps   int
}

// Enabled reports whether the schedule perturbs anything at all.
func (s Schedule) Enabled() bool {
	return s.LatencyP > 0 || s.ErrorP > 0 || s.ResetP > 0 || s.SlowP > 0 ||
		len(s.Panics) > 0 || s.PanicEvery > 0 || s.StormEvery > 0
}

// Validate rejects out-of-range probabilities, negative durations and
// nonsensical panic schedules.
func (s Schedule) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("chaos: %s probability %v outside [0,1]", name, p)
		}
		return nil
	}
	if err := check("latency", s.LatencyP); err != nil {
		return err
	}
	if err := check("err", s.ErrorP); err != nil {
		return err
	}
	if err := check("reset", s.ResetP); err != nil {
		return err
	}
	if err := check("slow", s.SlowP); err != nil {
		return err
	}
	if s.LatencyP > 0 && s.Latency <= 0 {
		return fmt.Errorf("chaos: latency probability %g needs a positive duration", s.LatencyP)
	}
	if s.SlowP > 0 && s.Slow <= 0 {
		return fmt.Errorf("chaos: slow probability %g needs a positive duration", s.SlowP)
	}
	if s.Latency < 0 || s.Slow < 0 {
		return fmt.Errorf("chaos: negative fault duration")
	}
	seen := make(map[int64]bool, len(s.Panics))
	for _, p := range s.Panics {
		if p < 1 {
			return fmt.Errorf("chaos: panic job index %d is not positive (indices are 1-based execution order)", p)
		}
		if seen[p] {
			return fmt.Errorf("chaos: duplicate panic at job %d", p)
		}
		seen[p] = true
	}
	if s.PanicEvery < 0 {
		return fmt.Errorf("chaos: panic-every must be non-negative, got %d", s.PanicEvery)
	}
	if s.StormEvery < 0 {
		return fmt.Errorf("chaos: storm interval must be non-negative, got %d", s.StormEvery)
	}
	if s.StormEvery > 0 && s.StormOps <= 0 {
		return fmt.Errorf("chaos: storm interval %d needs a positive op count", s.StormEvery)
	}
	return nil
}

// String renders the schedule in the ParseSchedule grammar, so a schedule
// can be logged and replayed verbatim.
func (s Schedule) String() string {
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	if s.LatencyP > 0 {
		parts = append(parts, fmt.Sprintf("latency=%g:%s", s.LatencyP, s.Latency))
	}
	if s.ErrorP > 0 {
		parts = append(parts, fmt.Sprintf("err=%g", s.ErrorP))
	}
	if s.ResetP > 0 {
		parts = append(parts, fmt.Sprintf("reset=%g", s.ResetP))
	}
	if s.SlowP > 0 {
		parts = append(parts, fmt.Sprintf("slow=%g:%s", s.SlowP, s.Slow))
	}
	panics := append([]int64(nil), s.Panics...)
	sort.Slice(panics, func(i, j int) bool { return panics[i] < panics[j] })
	for _, p := range panics {
		parts = append(parts, fmt.Sprintf("panic=%d", p))
	}
	if s.PanicEvery > 0 {
		parts = append(parts, fmt.Sprintf("panic-every=%d", s.PanicEvery))
	}
	if s.StormEvery > 0 {
		parts = append(parts, fmt.Sprintf("storm=%d:%d", s.StormEvery, s.StormOps))
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses the comma-separated key=value grammar used by the
// cmd/maxisd -chaos flag:
//
//	seed=7,latency=0.1:20ms,err=0.05,reset=0.02,slow=0.5:10ms,panic=3,panic-every=40
//
// Probability-with-duration values use P:DUR with a Go duration literal.
// An empty spec is the empty schedule.
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, value, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return s, fmt.Errorf("chaos: bad spec field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseUint(value, 10, 64)
		case "latency":
			s.LatencyP, s.Latency, err = parseProbDuration(value)
		case "err":
			s.ErrorP, err = strconv.ParseFloat(value, 64)
		case "reset":
			s.ResetP, err = strconv.ParseFloat(value, 64)
		case "slow":
			s.SlowP, s.Slow, err = parseProbDuration(value)
		case "panic":
			var n int64
			n, err = strconv.ParseInt(value, 10, 64)
			s.Panics = append(s.Panics, n)
		case "panic-every":
			s.PanicEvery, err = strconv.ParseInt(value, 10, 64)
		case "storm":
			s.StormEvery, s.StormOps, err = parseStorm(value)
		default:
			return s, fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("chaos: bad value for %q: %v", key, err)
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

func parseStorm(value string) (int64, int, error) {
	everyStr, opsStr, ok := strings.Cut(value, ":")
	if !ok {
		return 0, 0, fmt.Errorf("%q: want EVERY:OPS", value)
	}
	every, err := strconv.ParseInt(everyStr, 10, 64)
	if err != nil {
		return 0, 0, err
	}
	ops, err := strconv.Atoi(opsStr)
	if err != nil {
		return 0, 0, err
	}
	return every, ops, nil
}

func parseProbDuration(value string) (float64, time.Duration, error) {
	probStr, durStr, ok := strings.Cut(value, ":")
	if !ok {
		return 0, 0, fmt.Errorf("%q: want P:DURATION", value)
	}
	p, err := strconv.ParseFloat(probStr, 64)
	if err != nil {
		return 0, 0, err
	}
	d, err := time.ParseDuration(durStr)
	if err != nil {
		return 0, 0, err
	}
	return p, d, nil
}

// Stats is a snapshot of the faults an Injector has actually injected.
type Stats struct {
	Requests  int64 // HTTP requests inspected by the middleware
	Latencies int64 // requests delayed by Latency
	Errors    int64 // injected HTTP 500 responses
	Resets    int64 // aborted connections
	Slows     int64 // jobs delayed by Slow on a worker
	Panics    int64 // scheduled worker panics fired
	Storms    int64 // mutation storms derived for the traffic driver
}

// Injector derives per-event fault decisions from a Schedule. It is safe
// for concurrent use; each decision consumes one event index.
type Injector struct {
	sched    Schedule
	panicAt  map[int64]bool
	reqSeq   atomic.Int64
	requests atomic.Int64
	latency  atomic.Int64
	errors   atomic.Int64
	resets   atomic.Int64
	slows    atomic.Int64
	panics   atomic.Int64
	storms   atomic.Int64
	sleep    func(time.Duration) // injectable for tests
}

// NewInjector builds an Injector for the schedule. The schedule should
// already be validated; NewInjector panics on an invalid one, matching
// Register-style fail-loudly semantics for wiring-time errors.
func NewInjector(s Schedule) *Injector {
	if err := s.Validate(); err != nil {
		panic(err.Error())
	}
	at := make(map[int64]bool, len(s.Panics))
	for _, p := range s.Panics {
		at[p] = true
	}
	return &Injector{sched: s, panicAt: at, sleep: time.Sleep}
}

// Schedule returns the injector's schedule (for logging/replay).
func (i *Injector) Schedule() Schedule { return i.sched }

// Stats snapshots the injected-fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		Requests:  i.requests.Load(),
		Latencies: i.latency.Load(),
		Errors:    i.errors.Load(),
		Resets:    i.resets.Load(),
		Slows:     i.slows.Load(),
		Panics:    i.panics.Load(),
		Storms:    i.storms.Load(),
	}
}

// Fault-kind salts: each (event, kind) pair gets an independent stream so
// enabling one fault never shifts another's decisions.
const (
	saltLatency = iota
	saltReset
	saltError
	saltSlow
	saltStorm
)

// roll returns the uniform decision variable for event seq and fault kind.
// One PCG per decision, seeded from (Seed, seq, salt), mirrors the
// internal/fault derivation: no hidden state, any event is replayable in
// isolation.
func (i *Injector) roll(seq int64, salt uint64) float64 {
	return rand.New(rand.NewPCG(i.sched.Seed, uint64(seq)<<3|salt)).Float64()
}

// exempt lists the paths the middleware never perturbs: liveness,
// readiness and metrics must reflect the process, not the adversary.
func exempt(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics":
		return true
	}
	return false
}

// Middleware wraps an HTTP handler with the schedule's request-level
// faults, applied in a fixed order per request: added latency, then
// connection reset, then injected 500. A request can be delayed and then
// reset — matching how a slow backend tends to die mid-flight.
func (i *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !i.sched.Enabled() || exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		seq := i.reqSeq.Add(1)
		i.requests.Add(1)
		if i.sched.LatencyP > 0 && i.roll(seq, saltLatency) < i.sched.LatencyP {
			i.latency.Add(1)
			i.sleep(i.sched.Latency)
		}
		if i.sched.ResetP > 0 && i.roll(seq, saltReset) < i.sched.ResetP {
			i.resets.Add(1)
			// net/http aborts the connection without a response when a
			// handler panics with ErrAbortHandler; the client observes a
			// reset/EOF mid-request.
			panic(http.ErrAbortHandler)
		}
		if i.sched.ErrorP > 0 && i.roll(seq, saltError) < i.sched.ErrorP {
			i.errors.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Chaos", "injected-500")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"status":"failed","error":"chaos: injected server error"}`)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// MutationOp is one operation of a mutation storm: add or remove an edge,
// or set a node weight. The traffic driver maps ops onto its PATCH wire
// format; self-collisions (adding an existing edge, removing a missing
// one) are legal — the graph store tolerates them as no-ops.
type MutationOp struct {
	// Kind is "add", "remove" or "weight".
	Kind string
	U, V int32
	W    int64
}

// Storm returns the deterministic mutation batch for storm event seq
// (1-based) over a node universe of size n, or nil when seq fires no
// storm. Like every other decision, the batch is a pure function of
// (Seed, seq): replaying the same event order replays the same storms.
func (i *Injector) Storm(seq int64, n int) []MutationOp {
	if i.sched.StormEvery <= 0 || seq%i.sched.StormEvery != 0 || n < 2 {
		return nil
	}
	i.storms.Add(1)
	r := rand.New(rand.NewPCG(i.sched.Seed, uint64(seq)<<3|saltStorm))
	ops := make([]MutationOp, 0, i.sched.StormOps)
	for k := 0; k < i.sched.StormOps; k++ {
		u := int32(r.IntN(n))
		v := int32(r.IntN(n - 1))
		if v >= u {
			v++ // uniform over nodes != u, no self-loops
		}
		switch r.IntN(3) {
		case 0:
			ops = append(ops, MutationOp{Kind: "add", U: u, V: v})
		case 1:
			ops = append(ops, MutationOp{Kind: "remove", U: u, V: v})
		default:
			ops = append(ops, MutationOp{Kind: "weight", U: u, W: 1 + r.Int64N(1000)})
		}
	}
	return ops
}

// JobHook returns the scheduler worker hook: called with each job's
// execution sequence number (1-based) on the worker goroutine, inside the
// scheduler's panic-isolation boundary. It sleeps per the slow schedule
// and panics at the scheduled job indices.
func (i *Injector) JobHook() func(seq int64, id string) {
	return func(seq int64, id string) {
		if i.sched.SlowP > 0 && i.roll(seq, saltSlow) < i.sched.SlowP {
			i.slows.Add(1)
			i.sleep(i.sched.Slow)
		}
		if i.panicAt[seq] || (i.sched.PanicEvery > 0 && seq%i.sched.PanicEvery == 0) {
			i.panics.Add(1)
			panic(fmt.Sprintf("chaos: scheduled worker panic at job %d (%s)", seq, id))
		}
	}
}
