package chaos

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "seed=7,latency=0.1:20ms,err=0.05,reset=0.02,slow=0.5:10ms,panic=3,panic=9,panic-every=40"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || s.LatencyP != 0.1 || s.Latency != 20*time.Millisecond ||
		s.ErrorP != 0.05 || s.ResetP != 0.02 || s.SlowP != 0.5 || s.Slow != 10*time.Millisecond ||
		len(s.Panics) != 2 || s.PanicEvery != 40 {
		t.Fatalf("parsed schedule %+v does not match spec %q", s, spec)
	}
	// String renders the same grammar; reparsing it yields the same schedule.
	s2, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", s.String(), err)
	}
	if s2.String() != s.String() {
		t.Fatalf("round trip drift: %q vs %q", s.String(), s2.String())
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	s, err := ParseSchedule("  ")
	if err != nil {
		t.Fatal(err)
	}
	if s.Enabled() {
		t.Fatalf("empty spec produced an enabled schedule: %+v", s)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",                // no key=value
		"frobnicate=1",         // unknown key
		"err=1.5",              // probability out of range
		"latency=0.1",          // missing duration
		"latency=0.1:xyz",      // bad duration
		"panic=0",              // job indices are 1-based
		"panic=4,panic=4",      // duplicate
		"panic-every=-2",       // negative period
		"slow=0.5:0s",          // probability without duration
		"seed=notanumber",      // bad integer
		"latency=0.2:-5ms",     // negative duration
		"reset=-0.1",           // negative probability
		"err=0.1,panic=-3",     // negative panic index
		"latency=0.1:20ms:3ms", // trailing garbage in duration
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) accepted an invalid spec", spec)
		}
	}
}

// TestMiddlewareDeterminism pins the replayability contract: two injectors
// built from the same schedule make identical per-request decisions.
func TestMiddlewareDeterminism(t *testing.T) {
	sched, err := ParseSchedule("seed=11,err=0.3")
	if err != nil {
		t.Fatal(err)
	}
	outcomes := func() []int {
		i := NewInjector(sched)
		h := i.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))
		var codes []int
		for k := 0; k < 64; k++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/solve", nil))
			codes = append(codes, rec.Code)
		}
		return codes
	}
	a, b := outcomes(), outcomes()
	var injected int
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("request %d: run A got %d, run B got %d — schedule is not replayable", k, a[k], b[k])
		}
		if a[k] == http.StatusInternalServerError {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("err=0.3 over 64 requests injected nothing")
	}
	if injected == 64 {
		t.Fatal("err=0.3 injected on every request")
	}
}

func TestMiddlewareExemptsProbes(t *testing.T) {
	i := NewInjector(Schedule{Seed: 1, ErrorP: 1, ResetP: 1})
	h := i.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s: code %d, want probes exempt from chaos", path, rec.Code)
		}
	}
	if got := i.Stats().Requests; got != 0 {
		t.Errorf("probe requests counted as chaos events: %d", got)
	}
}

func TestMiddlewareReset(t *testing.T) {
	i := NewInjector(Schedule{Seed: 1, ResetP: 1})
	h := i.Middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		t.Error("handler must not run on a reset request")
	}))
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("recover() = %v, want http.ErrAbortHandler", r)
		}
		if got := i.Stats().Resets; got != 1 {
			t.Errorf("resets = %d, want 1", got)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/solve", nil))
}

func TestMiddlewareLatency(t *testing.T) {
	var slept time.Duration
	i := NewInjector(Schedule{Seed: 1, LatencyP: 1, Latency: 25 * time.Millisecond})
	i.sleep = func(d time.Duration) { slept += d }
	h := i.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/solve", nil))
	if slept != 25*time.Millisecond {
		t.Fatalf("slept %v, want 25ms", slept)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("latency-injected request must still succeed, got %d", rec.Code)
	}
	if st := i.Stats(); st.Latencies != 1 {
		t.Fatalf("latency counter = %d, want 1", st.Latencies)
	}
}

func TestJobHookPanicsOnSchedule(t *testing.T) {
	i := NewInjector(Schedule{Seed: 1, Panics: []int64{2}, PanicEvery: 5})
	hook := i.JobHook()
	panicked := func(seq int64) (p bool) {
		defer func() {
			if r := recover(); r != nil {
				p = true
				if !strings.Contains(r.(string), "chaos: scheduled worker panic") {
					t.Fatalf("unexpected panic value %v", r)
				}
			}
		}()
		hook(seq, "job-test")
		return false
	}
	want := map[int64]bool{1: false, 2: true, 3: false, 4: false, 5: true, 6: false, 10: true}
	for seq, expect := range want {
		if got := panicked(seq); got != expect {
			t.Errorf("job %d: panicked=%v, want %v", seq, got, expect)
		}
	}
	if st := i.Stats(); st.Panics != 3 {
		t.Errorf("panic counter = %d, want 3", st.Panics)
	}
}

func TestJobHookSlow(t *testing.T) {
	var slept time.Duration
	i := NewInjector(Schedule{Seed: 1, SlowP: 1, Slow: 10 * time.Millisecond})
	i.sleep = func(d time.Duration) { slept += d }
	i.JobHook()(1, "job-1")
	if slept != 10*time.Millisecond {
		t.Fatalf("slept %v, want 10ms", slept)
	}
}

func TestEnabledAndValidateZero(t *testing.T) {
	var s Schedule
	if s.Enabled() {
		t.Fatal("zero schedule reports enabled")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("zero schedule invalid: %v", err)
	}
}
