package chaos

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "seed=7,latency=0.1:20ms,err=0.05,reset=0.02,slow=0.5:10ms,panic=3,panic=9,panic-every=40,storm=5:12"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || s.LatencyP != 0.1 || s.Latency != 20*time.Millisecond ||
		s.ErrorP != 0.05 || s.ResetP != 0.02 || s.SlowP != 0.5 || s.Slow != 10*time.Millisecond ||
		len(s.Panics) != 2 || s.PanicEvery != 40 || s.StormEvery != 5 || s.StormOps != 12 {
		t.Fatalf("parsed schedule %+v does not match spec %q", s, spec)
	}
	// String renders the same grammar; reparsing it yields the same schedule.
	s2, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", s.String(), err)
	}
	if s2.String() != s.String() {
		t.Fatalf("round trip drift: %q vs %q", s.String(), s2.String())
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	s, err := ParseSchedule("  ")
	if err != nil {
		t.Fatal(err)
	}
	if s.Enabled() {
		t.Fatalf("empty spec produced an enabled schedule: %+v", s)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",                // no key=value
		"frobnicate=1",         // unknown key
		"err=1.5",              // probability out of range
		"latency=0.1",          // missing duration
		"latency=0.1:xyz",      // bad duration
		"panic=0",              // job indices are 1-based
		"panic=4,panic=4",      // duplicate
		"panic-every=-2",       // negative period
		"slow=0.5:0s",          // probability without duration
		"seed=notanumber",      // bad integer
		"latency=0.2:-5ms",     // negative duration
		"reset=-0.1",           // negative probability
		"err=0.1,panic=-3",     // negative panic index
		"latency=0.1:20ms:3ms", // trailing garbage in duration
		"storm=5",              // missing op count
		"storm=5:0",            // empty storm
		"storm=-1:4",           // negative interval
		"storm=5:xyz",          // bad op count
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) accepted an invalid spec", spec)
		}
	}
}

// TestMiddlewareDeterminism pins the replayability contract: two injectors
// built from the same schedule make identical per-request decisions.
func TestMiddlewareDeterminism(t *testing.T) {
	sched, err := ParseSchedule("seed=11,err=0.3")
	if err != nil {
		t.Fatal(err)
	}
	outcomes := func() []int {
		i := NewInjector(sched)
		h := i.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))
		var codes []int
		for k := 0; k < 64; k++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/solve", nil))
			codes = append(codes, rec.Code)
		}
		return codes
	}
	a, b := outcomes(), outcomes()
	var injected int
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("request %d: run A got %d, run B got %d — schedule is not replayable", k, a[k], b[k])
		}
		if a[k] == http.StatusInternalServerError {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("err=0.3 over 64 requests injected nothing")
	}
	if injected == 64 {
		t.Fatal("err=0.3 injected on every request")
	}
}

func TestMiddlewareExemptsProbes(t *testing.T) {
	i := NewInjector(Schedule{Seed: 1, ErrorP: 1, ResetP: 1})
	h := i.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s: code %d, want probes exempt from chaos", path, rec.Code)
		}
	}
	if got := i.Stats().Requests; got != 0 {
		t.Errorf("probe requests counted as chaos events: %d", got)
	}
}

func TestMiddlewareReset(t *testing.T) {
	i := NewInjector(Schedule{Seed: 1, ResetP: 1})
	h := i.Middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		t.Error("handler must not run on a reset request")
	}))
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("recover() = %v, want http.ErrAbortHandler", r)
		}
		if got := i.Stats().Resets; got != 1 {
			t.Errorf("resets = %d, want 1", got)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/solve", nil))
}

func TestMiddlewareLatency(t *testing.T) {
	var slept time.Duration
	i := NewInjector(Schedule{Seed: 1, LatencyP: 1, Latency: 25 * time.Millisecond})
	i.sleep = func(d time.Duration) { slept += d }
	h := i.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/solve", nil))
	if slept != 25*time.Millisecond {
		t.Fatalf("slept %v, want 25ms", slept)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("latency-injected request must still succeed, got %d", rec.Code)
	}
	if st := i.Stats(); st.Latencies != 1 {
		t.Fatalf("latency counter = %d, want 1", st.Latencies)
	}
}

func TestJobHookPanicsOnSchedule(t *testing.T) {
	i := NewInjector(Schedule{Seed: 1, Panics: []int64{2}, PanicEvery: 5})
	hook := i.JobHook()
	panicked := func(seq int64) (p bool) {
		defer func() {
			if r := recover(); r != nil {
				p = true
				if !strings.Contains(r.(string), "chaos: scheduled worker panic") {
					t.Fatalf("unexpected panic value %v", r)
				}
			}
		}()
		hook(seq, "job-test")
		return false
	}
	want := map[int64]bool{1: false, 2: true, 3: false, 4: false, 5: true, 6: false, 10: true}
	for seq, expect := range want {
		if got := panicked(seq); got != expect {
			t.Errorf("job %d: panicked=%v, want %v", seq, got, expect)
		}
	}
	if st := i.Stats(); st.Panics != 3 {
		t.Errorf("panic counter = %d, want 3", st.Panics)
	}
}

func TestJobHookSlow(t *testing.T) {
	var slept time.Duration
	i := NewInjector(Schedule{Seed: 1, SlowP: 1, Slow: 10 * time.Millisecond})
	i.sleep = func(d time.Duration) { slept += d }
	i.JobHook()(1, "job-1")
	if slept != 10*time.Millisecond {
		t.Fatalf("slept %v, want 10ms", slept)
	}
}

func TestEnabledAndValidateZero(t *testing.T) {
	var s Schedule
	if s.Enabled() {
		t.Fatal("zero schedule reports enabled")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("zero schedule invalid: %v", err)
	}
}

// Storms fire on the schedule's cadence, derive deterministically from
// (Seed, seq), and never emit self-loops or out-of-range nodes.
func TestStormDeterministicAndWellFormed(t *testing.T) {
	s, err := ParseSchedule("seed=21,storm=3:16")
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewInjector(s), NewInjector(s)
	const n = 40
	fired := 0
	for seq := int64(1); seq <= 30; seq++ {
		opsA, opsB := a.Storm(seq, n), b.Storm(seq, n)
		if (opsA == nil) != (seq%3 != 0) {
			t.Fatalf("seq %d: storm fired=%v, want every 3rd", seq, opsA != nil)
		}
		if len(opsA) != len(opsB) {
			t.Fatalf("seq %d: injectors disagree on storm size", seq)
		}
		for k := range opsA {
			if opsA[k] != opsB[k] {
				t.Fatalf("seq %d op %d: %+v vs %+v", seq, k, opsA[k], opsB[k])
			}
		}
		if opsA == nil {
			continue
		}
		fired++
		if len(opsA) != 16 {
			t.Fatalf("seq %d: %d ops, want 16", seq, len(opsA))
		}
		for _, op := range opsA {
			switch op.Kind {
			case "add", "remove":
				if op.U == op.V || op.U < 0 || op.V < 0 || op.U >= n || op.V >= n {
					t.Fatalf("malformed edge op %+v", op)
				}
			case "weight":
				if op.U < 0 || op.U >= n || op.W < 0 {
					t.Fatalf("malformed weight op %+v", op)
				}
			default:
				t.Fatalf("unknown op kind %q", op.Kind)
			}
		}
	}
	if fired != 10 {
		t.Fatalf("%d storms over 30 events at every-3, want 10", fired)
	}
	if got := a.Stats().Storms; got != 10 {
		t.Fatalf("storm counter %d, want 10", got)
	}
}

// A disabled storm schedule and a tiny universe both yield no ops.
func TestStormDisabledAndDegenerate(t *testing.T) {
	off := NewInjector(Schedule{Seed: 1})
	if ops := off.Storm(3, 100); ops != nil {
		t.Fatalf("disabled schedule fired a storm: %v", ops)
	}
	on := NewInjector(Schedule{Seed: 1, StormEvery: 1, StormOps: 4})
	if ops := on.Storm(1, 1); ops != nil {
		t.Fatalf("single-node universe cannot host edge mutations: %v", ops)
	}
}
