package repair

import (
	"sync"
	"testing"
	"time"

	"distmwis/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n-1; v++ {
		b.AddEdge(v, v+1)
	}
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+(v*7)%13))
	}
	return b.MustBuild()
}

// collector records publishes in order, safely across goroutines.
type collector struct {
	mu   sync.Mutex
	pubs []Answer
	keys []string
}

func (c *collector) publish(key string, a Answer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keys = append(c.keys, key)
	c.pubs = append(c.pubs, a)
}

// manualTier builds a tier whose background loop effectively never ticks
// (hour-long interval), so tests drive it deterministically with Step.
func manualTier(t *testing.T, opts Options) *Tier {
	t.Helper()
	opts.Interval = time.Hour
	tier := New(opts)
	t.Cleanup(tier.Stop)
	return tier
}

// Driving a task through Step by hand: a conflicted degraded set must be
// healed, greedily improved to a maximal independent set, then replaced by
// the Full callback's answer — publishes in that order, both independent.
func TestTierUpgradesThroughPhases(t *testing.T) {
	g := pathGraph(40)
	start := make([]bool, g.N())
	start[3], start[4] = true, true // conflict on edge {3,4}
	var col collector
	tier := manualTier(t, Options{Budget: 1 << 20, Publish: col.publish})

	fullSet := make([]bool, g.N())
	for v := 0; v < g.N(); v += 2 {
		fullSet[v] = true
	}
	task := Task{
		Key:   "k1",
		G:     g,
		Start: start,
		Full: func() ([]bool, int64, error) {
			return fullSet, g.SetWeight(fullSet), nil
		},
	}
	if !tier.Enqueue(task) {
		t.Fatal("enqueue rejected")
	}
	if !tier.Step() {
		t.Fatal("first step found no work")
	}
	if !tier.Step() {
		t.Fatal("second step (full solve) found no work")
	}
	if tier.Step() {
		t.Fatal("queue should be drained after two steps")
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	if len(col.pubs) != 2 {
		t.Fatalf("got %d publishes, want 2 (improved, full)", len(col.pubs))
	}
	improved, full := col.pubs[0], col.pubs[1]
	if improved.Quality != QualityImproved || full.Quality != QualityFull {
		t.Fatalf("qualities = %q, %q", improved.Quality, full.Quality)
	}
	if !g.IsIndependentSet(improved.Set) {
		t.Fatal("improved answer is not independent")
	}
	if improved.Weight != g.SetWeight(improved.Set) {
		t.Fatal("improved weight mislabeled")
	}
	// One full greedy pass reaches maximality: no feasible node remains.
	for v := 0; v < g.N(); v++ {
		if improved.Set[v] {
			continue
		}
		feasible := true
		for _, u := range g.Neighbors(v) {
			if improved.Set[u] {
				feasible = false
				break
			}
		}
		if feasible {
			t.Fatalf("improved answer not maximal: node %d admittable", v)
		}
	}
	if col.keys[0] != "k1" || col.keys[1] != "k1" {
		t.Fatalf("keys = %v", col.keys)
	}
	if st := tier.Stats(); st.Improved != 1 || st.Upgraded != 1 || st.QueueDepth != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// A tick's budget bounds work: with Budget 8 on a 40-node graph the greedy
// pass must span multiple steps before the improved publish appears.
func TestTierBudgetBoundsWorkPerTick(t *testing.T) {
	g := pathGraph(40)
	var col collector
	tier := manualTier(t, Options{Budget: 8, Publish: col.publish})
	tier.Enqueue(Task{Key: "k", G: g, Start: make([]bool, g.N())})

	steps := 0
	for tier.Step() {
		steps++
		if steps > 100 {
			t.Fatal("task never completed")
		}
	}
	if steps < 40/8 {
		t.Fatalf("task finished in %d steps; budget 8 on 40 nodes needs ≥5", steps)
	}
	col.mu.Lock()
	defer col.mu.Unlock()
	if len(col.pubs) != 1 || col.pubs[0].Quality != QualityImproved {
		t.Fatalf("publishes = %+v, want one improved (nil Full)", col.pubs)
	}
}

// Enqueue dedups by key, bounds depth, rejects malformed tasks, and
// refuses work after Stop; stats account for each outcome.
func TestTierEnqueueDedupAndBounds(t *testing.T) {
	g := pathGraph(4)
	tier := manualTier(t, Options{QueueDepth: 2})
	mk := func(key string) Task { return Task{Key: key, G: g, Start: make([]bool, g.N())} }

	if tier.Enqueue(Task{Key: "bad", G: g, Start: make([]bool, 2)}) {
		t.Fatal("mis-sized Start must be rejected")
	}
	if !tier.Enqueue(mk("a")) || !tier.Enqueue(mk("b")) {
		t.Fatal("first two enqueues must land")
	}
	if tier.Enqueue(mk("a")) {
		t.Fatal("duplicate key must dedup")
	}
	if tier.Enqueue(mk("c")) {
		t.Fatal("queue depth 2 must drop the third key")
	}
	st := tier.Stats()
	if st.Enqueued != 2 || st.Deduped != 1 || st.Dropped != 1 || st.QueueDepth != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.OldestWaitSeconds < 0 {
		t.Fatalf("staleness negative: %v", st.OldestWaitSeconds)
	}
	tier.Stop()
	if tier.Enqueue(mk("z")) {
		t.Fatal("stopped tier must reject enqueues")
	}
}

// The background loop runs end to end without manual stepping, and Stop
// joins it cleanly and idempotently.
func TestTierBackgroundLoop(t *testing.T) {
	g := pathGraph(30)
	var col collector
	tier := New(Options{Interval: time.Millisecond, Publish: col.publish})
	tier.Enqueue(Task{Key: "bg", G: g, Start: make([]bool, g.N())})
	deadline := time.Now().Add(5 * time.Second)
	for {
		col.mu.Lock()
		n := len(col.pubs)
		col.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never published")
		}
		time.Sleep(time.Millisecond)
	}
	tier.Stop()
	tier.Stop() // idempotent
	if st := tier.Stats(); st.Improved != 1 {
		t.Fatalf("stats = %+v, want 1 improved", st)
	}
}

// A failing Full callback ends the task at improved quality rather than
// wedging the queue.
func TestTierFullFailureKeepsImproved(t *testing.T) {
	g := pathGraph(10)
	var col collector
	tier := manualTier(t, Options{Publish: col.publish})
	tier.Enqueue(Task{
		Key: "f", G: g, Start: make([]bool, g.N()),
		Full: func() ([]bool, int64, error) { return nil, 0, errFake },
	})
	for tier.Step() {
	}
	col.mu.Lock()
	defer col.mu.Unlock()
	if len(col.pubs) != 1 || col.pubs[0].Quality != QualityImproved {
		t.Fatalf("publishes = %+v", col.pubs)
	}
	if st := tier.Stats(); st.QueueDepth != 0 {
		t.Fatalf("failed task stuck in queue: %+v", st)
	}
}

type fakeErr struct{}

func (fakeErr) Error() string { return "solver exploded" }

var errFake = fakeErr{}

// The promotion ladder runs one rung per tick between the greedy improved
// answer and Full; rungs publish only on strict weight improvement, carry
// algorithm provenance, and failures never regress the served answer.
func TestTierRungLadderMonotone(t *testing.T) {
	g := pathGraph(20)
	var col collector
	tier := manualTier(t, Options{Budget: 1 << 20, Publish: col.publish})

	greedyWeight := func() int64 {
		col.mu.Lock()
		defer col.mu.Unlock()
		if len(col.pubs) == 0 {
			t.Fatal("rung ran before the greedy improved publish")
		}
		return col.pubs[0].Weight
	}
	better := make([]bool, g.N())
	for v := 0; v < g.N(); v += 2 {
		better[v] = true
	}
	fullSet := make([]bool, g.N())
	for v := 1; v < g.N(); v += 2 {
		fullSet[v] = true
	}
	task := Task{
		Key: "lad", G: g, Start: make([]bool, g.N()),
		Rungs: []Rung{
			// Ties the greedy weight: not a strict improvement, skipped.
			{Name: "tie", Run: func() ([]bool, int64, error) {
				set := make([]bool, g.N())
				return set, greedyWeight(), nil
			}},
			// Errors: skipped silently, ladder continues.
			{Name: "boom", Run: func() ([]bool, int64, error) {
				return nil, 1 << 40, errFake
			}},
			// Strictly better: adopted and published with its name.
			{Name: "bhr-fewround", Run: func() ([]bool, int64, error) {
				return better, greedyWeight() + 7, nil
			}},
			// Worse than the adopted rung: skipped — publishes stay monotone.
			{Name: "slide", Run: func() ([]bool, int64, error) {
				return better, greedyWeight() + 3, nil
			}},
		},
		FullAlg: "baseline",
		Full: func() ([]bool, int64, error) {
			return fullSet, greedyWeight() + 100, nil
		},
	}
	if !tier.Enqueue(task) {
		t.Fatal("enqueue rejected")
	}
	steps := 0
	for tier.Step() {
		if steps++; steps > 20 {
			t.Fatal("ladder never drained")
		}
	}
	// 1 greedy tick + 4 rung ticks + 1 full tick.
	if steps != 6 {
		t.Fatalf("ladder took %d steps, want 6 (one solve per tick)", steps)
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	if len(col.pubs) != 3 {
		t.Fatalf("got %d publishes, want 3 (greedy, adopted rung, full): %+v", len(col.pubs), col.pubs)
	}
	if alg := col.pubs[0].Alg; alg != "greedy-improved" {
		t.Errorf("greedy publish alg = %q", alg)
	}
	rung := col.pubs[1]
	if rung.Alg != "bhr-fewround" || rung.Quality != QualityImproved {
		t.Errorf("rung publish = alg %q quality %q", rung.Alg, rung.Quality)
	}
	if rung.Weight <= col.pubs[0].Weight {
		t.Errorf("rung weight %d does not improve on greedy %d", rung.Weight, col.pubs[0].Weight)
	}
	full := col.pubs[2]
	if full.Alg != "baseline" || full.Quality != QualityFull {
		t.Errorf("full publish = alg %q quality %q", full.Alg, full.Quality)
	}
	st := tier.Stats()
	if st.RungsRun != 4 || st.RungsAdopted != 1 {
		t.Errorf("rung stats = run %d adopted %d, want 4/1", st.RungsRun, st.RungsAdopted)
	}
	if st.Improved != 1 || st.Upgraded != 1 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// A ladder with no Full callback still terminates after its last rung.
func TestTierRungsWithoutFull(t *testing.T) {
	g := pathGraph(8)
	var col collector
	tier := manualTier(t, Options{Publish: col.publish})
	tier.Enqueue(Task{
		Key: "nf", G: g, Start: make([]bool, g.N()),
		Rungs: []Rung{{Name: "noop", Run: func() ([]bool, int64, error) {
			return nil, 0, errFake
		}}},
	})
	steps := 0
	for tier.Step() {
		if steps++; steps > 10 {
			t.Fatal("task never completed")
		}
	}
	if st := tier.Stats(); st.QueueDepth != 0 || st.RungsRun != 1 || st.RungsAdopted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
