// Package repair is the background answer-upgrade tier. The serving tier
// publishes answers that are independent but not always best-effort-final:
// deadline shedding degrades them, and graph mutations leave cached answers
// for neighbouring components healed-but-unpolished. Rather than block a
// request on recomputation, the server enqueues the degraded answer here
// and republishes as quality improves.
//
// Each queued task carries an immutable snapshot of the graph version it
// answers, so an upgrade is always for the exact bytes the original answer
// described — a concurrent mutation enqueues its own task for the new
// version instead of racing this one.
//
// A task advances through phases, each publish monotonically better:
//
//	heal     reliable.Repair withdraws the lower-weight endpoint of every
//	         conflicting edge, restoring independence;
//	improve  a budgeted greedy pass re-admits every still-feasible node in
//	         descending weight order (ascending index on ties) — one full
//	         pass reaches maximality, published as "improved";
//	full     the task's Full callback (a real solve) replaces the greedy
//	         answer, published as "full".
//
// Work per tick is bounded: the greedy pass examines at most Budget nodes
// before yielding, so one huge component cannot starve the queue or stall
// shutdown. All phase logic is deterministic; only tick timing is not.
package repair

import (
	"sort"
	"sync"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/reliable"
)

// Quality tags, ordered worst to best. The zero tag is the server's
// "degraded"; this tier only ever publishes the two upgrades.
const (
	QualityImproved = "improved"
	QualityFull     = "full"
)

// Answer is one published upgrade.
type Answer struct {
	// Set is the upgraded independent set, indexed by node of the task's
	// graph snapshot.
	Set []bool
	// Weight is Set's total weight under the snapshot's weights.
	Weight int64
	// Quality is QualityImproved or QualityFull.
	Quality string
	// Alg names what produced the set: "greedy-improved" for the budgeted
	// admit pass, a rung's name for ladder publishes, the task's FullAlg
	// for the final solve.
	Alg string
}

// Rung is one intermediate step of a task's promotion ladder: a bounded
// solve (typically a cheap planner-chosen algorithm) between the greedy
// improved answer and the full-quality solve. Rungs run one per tick and
// publish only when they beat the best weight so far, so the published
// sequence is monotone in weight as well as quality rank.
type Rung struct {
	// Name is the algorithm name recorded in the published answer.
	Name string
	// Run computes the rung's candidate set on the task's graph snapshot.
	Run func() (set []bool, weight int64, err error)
}

// Task is one degraded answer awaiting upgrade.
type Task struct {
	// Key identifies the answer being upgraded; Publish receives it back.
	// Enqueueing a key already queued is a no-op (the queued task already
	// upgrades the same answer).
	Key string
	// G is the graph version the answer describes. Graphs are immutable, so
	// holding the snapshot is safe under concurrent mutation.
	G *graph.Graph
	// Start is the degraded set to upgrade. The tier takes ownership.
	Start []bool
	// Rungs is the promotion ladder run between the greedy improved answer
	// and Full: one rung per tick, ascending quality (see plan.Ladder). A
	// rung that errors or fails to beat the best published weight is
	// skipped silently — the ladder is best-effort refinement, never a
	// regression.
	Rungs []Rung
	// FullAlg names the algorithm Full runs, for the published answer.
	FullAlg string
	// Full optionally computes the final answer (a real solve of G). It
	// runs on the tier's goroutine after the improved publish; nil stops
	// the task at QualityImproved.
	Full func() (set []bool, weight int64, err error)

	enqueued   time.Time
	order      []int32 // descending-weight admit order, built lazily
	pos        int     // next order index to examine
	improved   bool    // greedy pass done, improved answer published
	rung       int     // next Rungs index to run
	bestWeight int64   // best weight published so far (rung adoption bar)
}

// Options configures a Tier. Zero values select the defaults noted.
type Options struct {
	// Budget is the maximum admit examinations per tick (default 4096).
	Budget int
	// Interval is the tick period (default 50ms).
	Interval time.Duration
	// QueueDepth bounds the queue; Enqueue beyond it drops the task and
	// counts it (default 256). Dropping is safe — the degraded answer
	// stays served, merely unimproved.
	QueueDepth int
	// Publish receives every upgrade. Called on the tier's goroutine (or
	// the Step caller's); must not call back into the Tier.
	Publish func(key string, a Answer)
}

// Stats is a point-in-time snapshot of the tier's counters.
type Stats struct {
	// QueueDepth is the number of tasks currently waiting or in progress.
	QueueDepth int
	// Enqueued / Dropped / Deduped count Enqueue outcomes.
	Enqueued, Dropped, Deduped int64
	// Improved and Upgraded count publishes at each quality.
	Improved, Upgraded int64
	// RungsRun counts ladder rungs executed; RungsAdopted counts the ones
	// whose answer beat the best weight and was published.
	RungsRun, RungsAdopted int64
	// OldestWaitSeconds is the age of the oldest queued task (0 if empty):
	// the staleness bound on published degraded answers.
	OldestWaitSeconds float64
}

// Tier runs the upgrade loop. Create with New; it starts its goroutine
// lazily on the first Enqueue and Stop joins it.
type Tier struct {
	opts Options

	mu      sync.Mutex
	queue   []*Task
	pending map[string]bool
	stats   Stats
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// New returns an idle Tier; no goroutine exists until the first Enqueue.
func New(opts Options) *Tier {
	if opts.Budget <= 0 {
		opts.Budget = 4096
	}
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	return &Tier{opts: opts, pending: make(map[string]bool)}
}

// Enqueue queues one degraded answer for upgrade. Returns false when the
// task was not queued: duplicate key, full queue, or stopped tier.
func (t *Tier) Enqueue(task Task) bool {
	if task.G == nil || len(task.Start) != task.G.N() || task.Key == "" {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started && t.stop == nil {
		return false // stopped; server is draining
	}
	if t.pending[task.Key] {
		t.stats.Deduped++
		return false
	}
	if len(t.queue) >= t.opts.QueueDepth {
		t.stats.Dropped++
		return false
	}
	task.enqueued = time.Now()
	t.queue = append(t.queue, &task)
	t.pending[task.Key] = true
	t.stats.Enqueued++
	if !t.started {
		t.started = true
		t.stop = make(chan struct{})
		t.done = make(chan struct{})
		go t.loop(t.stop, t.done)
	}
	return true
}

// Stop halts the loop and joins its goroutine. Further Enqueues are
// rejected; queued tasks are abandoned (their degraded answers stay
// served). Safe to call more than once, or before any Enqueue.
func (t *Tier) Stop() {
	t.mu.Lock()
	stop, done := t.stop, t.done
	t.stop = nil
	t.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Stats returns a snapshot of the tier's counters.
func (t *Tier) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.QueueDepth = len(t.queue)
	if len(t.queue) > 0 {
		s.OldestWaitSeconds = time.Since(t.queue[0].enqueued).Seconds()
	}
	return s
}

func (t *Tier) loop(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(t.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			t.Step()
		}
	}
}

// Step performs one tick of work synchronously: it advances the head task
// by at most Budget examinations, publishing any upgrades reached, and
// reports whether any work was done. The loop calls it on each tick;
// tests call it directly for deterministic scheduling.
func (t *Tier) Step() bool {
	t.mu.Lock()
	if len(t.queue) == 0 {
		t.mu.Unlock()
		return false
	}
	task := t.queue[0]
	t.mu.Unlock()

	// Phase work runs unlocked: the task is only ever touched by the
	// single loop/Step caller, and the graph snapshot is immutable.
	finished := t.advance(task)

	t.mu.Lock()
	defer t.mu.Unlock()
	if finished && len(t.queue) > 0 && t.queue[0] == task {
		t.queue = t.queue[1:]
		delete(t.pending, task.Key)
	}
	return true
}

// advance runs one budgeted slice of the task's phase machine. Returns
// true when the task is complete and should leave the queue.
func (t *Tier) advance(task *Task) bool {
	g := task.G
	if task.order == nil {
		// First touch: heal, then fix the admit order. Repair mutates
		// Start in place and only withdraws, so independence holds from
		// here on.
		reliable.Repair(g, task.Start)
		order := make([]int32, g.N())
		for v := range order {
			order[v] = int32(v)
		}
		sort.SliceStable(order, func(i, j int) bool {
			wi, wj := g.Weight(int(order[i])), g.Weight(int(order[j]))
			if wi != wj {
				return wi > wj
			}
			return order[i] < order[j]
		})
		task.order = order
	}

	if !task.improved {
		budget := t.opts.Budget
		for task.pos < len(task.order) && budget > 0 {
			v := int(task.order[task.pos])
			task.pos++
			budget--
			if task.Start[v] {
				continue
			}
			feasible := true
			for _, u := range g.Neighbors(v) {
				if task.Start[u] {
					feasible = false
					break
				}
			}
			if feasible {
				task.Start[v] = true
			}
		}
		if task.pos < len(task.order) {
			return false // budget exhausted; resume next tick
		}
		task.improved = true
		task.bestWeight = g.SetWeight(task.Start)
		t.publish(task.Key, Answer{
			Set:     append([]bool(nil), task.Start...),
			Weight:  task.bestWeight,
			Quality: QualityImproved,
			Alg:     "greedy-improved",
		}, &t.stats.Improved)
		// Ladder rungs and the full solve each get their own tick so one
		// task never holds the queue for more than one solve per step.
		return len(task.Rungs) == 0 && task.Full == nil
	}

	// Promotion ladder: one rung per tick, adopted only when it strictly
	// improves on the best published weight.
	if task.rung < len(task.Rungs) {
		r := task.Rungs[task.rung]
		task.rung++
		t.mu.Lock()
		t.stats.RungsRun++
		t.mu.Unlock()
		set, weight, err := r.Run()
		if err == nil && weight > task.bestWeight && len(set) == g.N() {
			task.bestWeight = weight
			t.publish(task.Key, Answer{
				Set:     append([]bool(nil), set...),
				Weight:  weight,
				Quality: QualityImproved,
				Alg:     r.Name,
			}, &t.stats.RungsAdopted)
		}
		return task.rung >= len(task.Rungs) && task.Full == nil
	}

	set, weight, err := task.Full()
	if err != nil {
		// The improved answer is already out; a failed solve just ends
		// the task there.
		return true
	}
	t.publish(task.Key, Answer{Set: set, Weight: weight, Quality: QualityFull, Alg: task.FullAlg}, &t.stats.Upgraded)
	return true
}

func (t *Tier) publish(key string, a Answer, counter *int64) {
	t.mu.Lock()
	*counter++
	t.mu.Unlock()
	if t.opts.Publish != nil {
		t.opts.Publish(key, a)
	}
}
