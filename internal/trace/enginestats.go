package trace

import (
	"fmt"
	"strings"
	"time"
)

// EngineTiming is one engine's cost on a fixed workload.
type EngineTiming struct {
	// Engine names the engine ("sequential", "pool", "actors").
	Engine string
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// ComputeNanos and DeliveryNanos split the engine's wall-clock into
	// node-step dispatch and message movement; WallNanos is their sum.
	ComputeNanos  int64
	DeliveryNanos int64
	WallNanos     int64
}

// EngineStats compares the execution engines on one protocol, graph and
// seed — the timing baseline perf work is judged against (the executions
// are identical by construction, so only wall-clock differs). Populated by
// congest.MeasureEngines.
type EngineStats struct {
	// Timings holds one entry per engine, in measurement order.
	Timings []EngineTiming
}

// Add appends one engine's measurement.
func (s *EngineStats) Add(t EngineTiming) { s.Timings = append(s.Timings, t) }

// Speedup returns engine's wall-clock speedup over the first (reference)
// entry, or 0 if unknown.
func (s *EngineStats) Speedup(engine string) float64 {
	if len(s.Timings) == 0 || s.Timings[0].WallNanos == 0 {
		return 0
	}
	for _, t := range s.Timings {
		if t.Engine == engine && t.WallNanos > 0 {
			return float64(s.Timings[0].WallNanos) / float64(t.WallNanos)
		}
	}
	return 0
}

// String renders an aligned comparison table, with speedups relative to
// the first engine measured.
func (s *EngineStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %12s %8s\n",
		"engine", "rounds", "compute", "delivery", "wall", "speedup")
	for _, t := range s.Timings {
		speed := "-"
		if v := s.Speedup(t.Engine); v > 0 {
			speed = fmt.Sprintf("%.2fx", v)
		}
		fmt.Fprintf(&b, "%-12s %8d %12v %12v %12v %8s\n",
			t.Engine, t.Rounds,
			time.Duration(t.ComputeNanos), time.Duration(t.DeliveryNanos),
			time.Duration(t.WallNanos), speed)
	}
	return b.String()
}
