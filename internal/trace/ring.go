package trace

import "sync"

// Ring is an in-memory tracer that keeps the most recent records in a
// fixed-capacity ring buffer. Run metadata and summaries are small and kept
// in full; only the per-round records are bounded. A Ring is safe for
// concurrent use, so a monitoring goroutine may snapshot it mid-run.
type Ring struct {
	mu      sync.Mutex
	cap     int
	buf     []Round // ring storage, len(buf) <= cap
	head    int     // index of the oldest record once the buffer wrapped
	total   int     // records ever observed
	runs    []RunInfo
	sums    []Summary
	started int // runs begun (assigns run indices)
}

// DefaultRingCapacity bounds a Ring built with NewRing(0). It holds every
// round of any protocol in this repository at the default round limit's
// practical sizes while capping memory at ~10 MB.
const DefaultRingCapacity = 1 << 16

// NewRing returns a ring tracer keeping the last capacity round records
// (capacity <= 0 selects DefaultRingCapacity).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{cap: capacity}
}

// BeginRun implements Tracer.
func (r *Ring) BeginRun(info RunInfo) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs = append(r.runs, info)
	r.started++
	return r.started - 1
}

// OnRound implements Tracer.
func (r *Ring) OnRound(rec Round) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.head] = rec
	r.head = (r.head + 1) % r.cap
}

// EndRun implements Tracer.
func (r *Ring) EndRun(s Summary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sums = append(r.sums, s)
}

// Rounds returns the retained records in chronological order.
func (r *Ring) Rounds() []Round {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Round, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Runs returns the metadata of every run begun, in order.
func (r *Ring) Runs() []RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RunInfo, len(r.runs))
	copy(out, r.runs)
	return out
}

// Summaries returns the summaries of every run ended, in order.
func (r *Ring) Summaries() []Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Summary, len(r.sums))
	copy(out, r.sums)
	return out
}

// Dropped reports how many old records the ring has evicted.
func (r *Ring) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - len(r.buf)
}

// Reset discards all recorded state, keeping the capacity.
func (r *Ring) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
	r.head = 0
	r.total = 0
	r.runs = nil
	r.sums = nil
	r.started = 0
}

var _ Tracer = (*Ring)(nil)

// Totals is a tracer that keeps only aggregate counters — the cheapest way
// to time an execution. It is the backing store of EngineStats.
type Totals struct {
	mu sync.Mutex
	// Runs counts BeginRun calls; Rounds, Messages and Bits total the
	// per-round records.
	Runs     int
	Rounds   int
	Messages int64
	Bits     int64
	// Retransmits totals the reliable transport's re-sent data frames.
	Retransmits int64
	// ComputeNanos and DeliveryNanos total the two wall-clock phases.
	ComputeNanos  int64
	DeliveryNanos int64
}

// BeginRun implements Tracer.
func (t *Totals) BeginRun(RunInfo) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Runs++
	return t.Runs - 1
}

// OnRound implements Tracer.
func (t *Totals) OnRound(r Round) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Rounds++
	t.Messages += r.Messages
	t.Bits += r.Bits
	t.Retransmits += r.Retransmits
	t.ComputeNanos += r.ComputeNanos
	t.DeliveryNanos += r.DeliveryNanos
}

// EndRun implements Tracer.
func (t *Totals) EndRun(Summary) {}

// TotalsSnapshot is a point-in-time copy of a Totals' counters.
type TotalsSnapshot struct {
	Runs          int
	Rounds        int
	Messages      int64
	Bits          int64
	Retransmits   int64
	ComputeNanos  int64
	DeliveryNanos int64
}

// Snapshot copies the counters under the lock, so long-lived monitoring
// readers (e.g. a /metrics scrape) never race concurrent runs.
func (t *Totals) Snapshot() TotalsSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TotalsSnapshot{
		Runs:          t.Runs,
		Rounds:        t.Rounds,
		Messages:      t.Messages,
		Bits:          t.Bits,
		Retransmits:   t.Retransmits,
		ComputeNanos:  t.ComputeNanos,
		DeliveryNanos: t.DeliveryNanos,
	}
}

var _ Tracer = (*Totals)(nil)
