package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSONL writes one JSON object per line for each record, the format
// emitted by `maxis -trace-out file.jsonl` and consumed by ReadJSONL.
func WriteJSONL(w io.Writer, rounds []Round) error {
	enc := json.NewEncoder(w)
	for i := range rounds {
		if err := enc.Encode(&rounds[i]); err != nil {
			return fmt.Errorf("trace: jsonl record %d: %w", i, err)
		}
	}
	return nil
}

// ReadJSONL parses records written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Round, error) {
	dec := json.NewDecoder(r)
	var out []Round
	for {
		var rec Round
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: jsonl record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// csvHeader is the column order of WriteCSV.
var csvHeader = []string{
	"run", "round", "label", "phase", "messages", "bits", "maxMessageBits",
	"halts", "faultLost", "faultCorrupted", "faultDuplicated", "retransmits",
	"computeNanos", "deliveryNanos",
}

// WriteCSV writes the records as RFC 4180 CSV with a header row.
func WriteCSV(w io.Writer, rounds []Round) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: csv header: %w", err)
	}
	for i, r := range rounds {
		row := []string{
			strconv.Itoa(r.Run), strconv.Itoa(r.Round), r.Label, r.Phase,
			strconv.FormatInt(r.Messages, 10), strconv.FormatInt(r.Bits, 10),
			strconv.Itoa(r.MaxMessageBits), strconv.Itoa(r.Halts),
			strconv.FormatInt(r.FaultLost, 10),
			strconv.FormatInt(r.FaultCorrupted, 10),
			strconv.FormatInt(r.FaultDuplicated, 10),
			strconv.FormatInt(r.Retransmits, 10),
			strconv.FormatInt(r.ComputeNanos, 10),
			strconv.FormatInt(r.DeliveryNanos, 10),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: csv record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
