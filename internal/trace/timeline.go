package trace

import (
	"fmt"
	"strings"
	"time"
)

// PhaseTotal aggregates all rounds sharing one (run label, protocol phase)
// pair, in first-appearance order — the per-phase cost breakdown the
// paper's phase-structured round bounds (Algorithms 1 and 6) talk about.
type PhaseTotal struct {
	// Label is the orchestrator phase label; Phase the protocol stage.
	Label string
	Phase string
	// Rounds, Messages, Bits and MaxMessageBits total the group.
	Rounds         int
	Messages       int64
	Bits           int64
	MaxMessageBits int
	// Retransmits totals the reliable transport's re-sent data frames.
	Retransmits int64
	// ComputeNanos and DeliveryNanos total the group's wall-clock.
	ComputeNanos  int64
	DeliveryNanos int64
}

// Key renders the group identity as "label:phase" (omitting empty parts).
func (p PhaseTotal) Key() string {
	switch {
	case p.Label == "":
		return p.Phase
	case p.Phase == "":
		return p.Label
	default:
		return p.Label + ":" + p.Phase
	}
}

// HistBucket is one bin of a bits-per-round histogram: rounds whose bit
// total b satisfies Lo <= b < Hi (the zero bucket has Lo = Hi = 0).
type HistBucket struct {
	Lo, Hi int64
	Count  int
}

// Timeline is the summarized view of a trace: ordered per-phase totals,
// run-wide aggregates, and a round-over-round bit histogram.
type Timeline struct {
	// Totals holds one entry per (label, phase) group in first-appearance
	// order.
	Totals []PhaseTotal
	// Rounds, Messages and Bits aggregate every record summarized.
	Rounds   int
	Messages int64
	Bits     int64
	// MaxMessageBits is the largest single message across all records.
	MaxMessageBits int
	// Retransmits totals the reliable transport's re-sent data frames.
	Retransmits int64
	// ComputeNanos and DeliveryNanos total the engine wall-clock split.
	ComputeNanos  int64
	DeliveryNanos int64
	// BitsHist bins rounds by their bit totals in power-of-two buckets
	// (first bucket: silent rounds).
	BitsHist []HistBucket
}

// Summarize folds round records into a Timeline. Records must be in
// chronological order, as returned by Ring.Rounds.
func Summarize(rounds []Round) *Timeline {
	tl := &Timeline{}
	idx := map[[2]string]int{}
	var maxBits int64
	for _, r := range rounds {
		key := [2]string{r.Label, r.Phase}
		i, ok := idx[key]
		if !ok {
			i = len(tl.Totals)
			idx[key] = i
			tl.Totals = append(tl.Totals, PhaseTotal{Label: r.Label, Phase: r.Phase})
		}
		pt := &tl.Totals[i]
		pt.Rounds++
		pt.Messages += r.Messages
		pt.Bits += r.Bits
		if r.MaxMessageBits > pt.MaxMessageBits {
			pt.MaxMessageBits = r.MaxMessageBits
		}
		pt.Retransmits += r.Retransmits
		pt.ComputeNanos += r.ComputeNanos
		pt.DeliveryNanos += r.DeliveryNanos

		tl.Rounds++
		tl.Messages += r.Messages
		tl.Bits += r.Bits
		if r.MaxMessageBits > tl.MaxMessageBits {
			tl.MaxMessageBits = r.MaxMessageBits
		}
		tl.Retransmits += r.Retransmits
		tl.ComputeNanos += r.ComputeNanos
		tl.DeliveryNanos += r.DeliveryNanos
		if r.Bits > maxBits {
			maxBits = r.Bits
		}
	}
	tl.BitsHist = bitsHistogram(rounds, maxBits)
	return tl
}

// bitsHistogram bins rounds by bit totals: a zero bucket, then
// [2^k, 2^(k+1)) buckets up to the observed maximum.
func bitsHistogram(rounds []Round, maxBits int64) []HistBucket {
	if len(rounds) == 0 {
		return nil
	}
	buckets := []HistBucket{{Lo: 0, Hi: 0}}
	for lo := int64(1); lo <= maxBits; lo *= 2 {
		buckets = append(buckets, HistBucket{Lo: lo, Hi: lo * 2})
	}
	for _, r := range rounds {
		if r.Bits == 0 {
			buckets[0].Count++
			continue
		}
		i := 1
		for lo := int64(1); lo*2 <= r.Bits; lo *= 2 {
			i++
		}
		buckets[i].Count++
	}
	return buckets
}

// String renders the timeline as an aligned text table followed by the
// histogram — the `maxis -trace` output.
func (tl *Timeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d rounds, %d messages, %d bits, compute %v, delivery %v\n",
		tl.Rounds, tl.Messages, tl.Bits,
		time.Duration(tl.ComputeNanos), time.Duration(tl.DeliveryNanos))
	width := len("phase")
	for _, pt := range tl.Totals {
		if l := len(pt.Key()); l > width {
			width = l
		}
	}
	fmt.Fprintf(&b, "  %-*s %8s %12s %14s %8s %12s\n", width, "phase", "rounds", "messages", "bits", "bits/rnd", "compute")
	for _, pt := range tl.Totals {
		perRound := int64(0)
		if pt.Rounds > 0 {
			perRound = pt.Bits / int64(pt.Rounds)
		}
		fmt.Fprintf(&b, "  %-*s %8d %12d %14d %8d %12v\n",
			width, pt.Key(), pt.Rounds, pt.Messages, pt.Bits, perRound,
			time.Duration(pt.ComputeNanos))
	}
	if len(tl.BitsHist) > 0 {
		b.WriteString("  bits/round histogram:\n")
		peak := 0
		for _, h := range tl.BitsHist {
			if h.Count > peak {
				peak = h.Count
			}
		}
		for _, h := range tl.BitsHist {
			label := "0"
			if h.Hi > 0 {
				label = fmt.Sprintf("[%d,%d)", h.Lo, h.Hi)
			}
			bar := ""
			if peak > 0 {
				bar = strings.Repeat("#", h.Count*40/peak)
			}
			fmt.Fprintf(&b, "    %-22s %6d %s\n", label, h.Count, bar)
		}
	}
	return b.String()
}
