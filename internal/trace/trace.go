// Package trace provides round-level observability for CONGEST executions.
//
// The paper states every result as a round/message/bit complexity, but an
// end-of-run aggregate (congest.Result) cannot show *where* a protocol
// spends those resources — which phase of a pipeline dominates the bit
// budget, whether traffic is front-loaded or flat, how much wall-clock the
// engine spends computing node steps versus moving messages. A Tracer
// receives one Round record per synchronous round, tagged with the
// orchestrator's phase label (e.g. "boost/push/goodnodes/mis") and the
// protocol's own stage annotation (e.g. Luby's "mark"/"join"/"retire"), so
// those questions have measured answers.
//
// The package deliberately does not import the simulator: congest imports
// trace and drives the Tracer from its single delivery goroutine. All
// Tracer methods are therefore invoked sequentially within one run;
// implementations here still lock so results can be read concurrently.
//
// Implementations: Ring (bounded in-memory record buffer), Totals (counters
// only, for timing comparisons), Tee (fan-out). Summarize folds records
// into a Timeline of per-phase totals and a bits-per-round histogram;
// WriteJSONL/WriteCSV export raw records.
package trace

// RunInfo describes one simulator execution, delivered to BeginRun before
// round 1.
type RunInfo struct {
	// Label is the orchestrator-assigned phase label ("" when the caller
	// did not label the run). Pipelines composed of several congest runs
	// use it to attribute rounds to pipeline stages.
	Label string `json:"label,omitempty"`
	// N is the node count.
	N int `json:"n"`
	// Bandwidth is the enforced per-message bit budget (0 = LOCAL).
	Bandwidth int `json:"bandwidth"`
	// Engine names the execution engine ("sequential", "pool", "actors").
	Engine string `json:"engine"`
	// Seed is the run's root randomness seed.
	Seed uint64 `json:"seed"`
}

// Round is one synchronous round's record. Counters are per-round deltas,
// not running totals: summing a field over a run's records reproduces the
// corresponding congest.Result aggregate exactly.
type Round struct {
	// Run is the 0-based index of the run within the tracer's lifetime
	// (a multi-phase pipeline traces several runs into one tracer).
	Run int `json:"run"`
	// Round is the 1-based round number within the run.
	Round int `json:"round"`
	// Label echoes the run's orchestrator label.
	Label string `json:"label,omitempty"`
	// Phase is the protocol-emitted stage annotation for this round
	// ("" when the protocol does not implement congest.PhaseLabeler).
	Phase string `json:"phase,omitempty"`
	// Messages and Bits count the traffic sent this round.
	Messages int64 `json:"messages"`
	Bits     int64 `json:"bits"`
	// MaxMessageBits is the largest single message sent this round.
	MaxMessageBits int `json:"maxMessageBits"`
	// Halts counts nodes that halted this round (protocol completion and
	// crash-stop faults alike).
	Halts int `json:"halts"`
	// FaultLost, FaultCorrupted and FaultDuplicated count the fault
	// layer's interventions this round (zero without an injector).
	FaultLost       int64 `json:"faultLost,omitempty"`
	FaultCorrupted  int64 `json:"faultCorrupted,omitempty"`
	FaultDuplicated int64 `json:"faultDuplicated,omitempty"`
	// Retransmits counts data frames re-sent by the reliable transport this
	// round (zero without congest.WithReliable). Rounds where it is positive
	// are recovery work the fault-free execution would not have performed.
	Retransmits int64 `json:"retransmits,omitempty"`
	// ComputeNanos is the wall-clock spent running node steps (the engine
	// dispatch); DeliveryNanos is the wall-clock of the delivery phase
	// that moves messages into next-round inboxes.
	ComputeNanos  int64 `json:"computeNanos"`
	DeliveryNanos int64 `json:"deliveryNanos"`
}

// Summary closes one run, delivered to EndRun on every exit path
// (including errors, where it reflects the rounds completed so far).
type Summary struct {
	// Run is the 0-based run index, matching the records' Run field.
	Run int `json:"run"`
	// Label echoes the run's orchestrator label.
	Label string `json:"label,omitempty"`
	// Rounds, Messages and Bits are the run's final aggregates.
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
	Bits     int64 `json:"bits"`
	// Truncated reports a hard stop before all nodes halted.
	Truncated bool `json:"truncated"`
}

// Tracer receives per-round records from the simulator. Within one run all
// methods are called from a single goroutine in Begin/Round*/End order; a
// tracer shared across pipeline phases sees that sequence repeated. The
// run index is assigned by the tracer itself in BeginRun.
type Tracer interface {
	// BeginRun starts a new run and returns its 0-based index; the
	// simulator stamps the index into every record it emits for the run.
	BeginRun(info RunInfo) int
	// OnRound records one completed round.
	OnRound(r Round)
	// EndRun closes the run opened by the matching BeginRun.
	EndRun(s Summary)
}

// Tee fans every tracer call out to each of its elements in order, so a
// run can be simultaneously ring-buffered and total-counted. BeginRun
// returns the first element's run index (all elements see the same call
// sequence, so indices agree for tracers that count runs).
type Tee []Tracer

// BeginRun implements Tracer.
func (t Tee) BeginRun(info RunInfo) int {
	run := 0
	for i, tr := range t {
		if i == 0 {
			run = tr.BeginRun(info)
		} else {
			tr.BeginRun(info)
		}
	}
	return run
}

// OnRound implements Tracer.
func (t Tee) OnRound(r Round) {
	for _, tr := range t {
		tr.OnRound(r)
	}
}

// EndRun implements Tracer.
func (t Tee) EndRun(s Summary) {
	for _, tr := range t {
		tr.EndRun(s)
	}
}
