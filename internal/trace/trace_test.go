package trace

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func mkRound(run, round int, label, phase string, msgs, bits int64) Round {
	return Round{
		Run: run, Round: round, Label: label, Phase: phase,
		Messages: msgs, Bits: bits, MaxMessageBits: int(bits),
		ComputeNanos: 10, DeliveryNanos: 5,
	}
}

func TestRingKeepsChronologicalOrder(t *testing.T) {
	r := NewRing(4)
	if got := r.BeginRun(RunInfo{Label: "a", N: 3}); got != 0 {
		t.Errorf("first run index = %d, want 0", got)
	}
	for i := 1; i <= 10; i++ {
		r.OnRound(mkRound(0, i, "a", "", 1, int64(i)))
	}
	r.EndRun(Summary{Run: 0, Rounds: 10})

	rounds := r.Rounds()
	if len(rounds) != 4 {
		t.Fatalf("retained %d records, want capacity 4", len(rounds))
	}
	for i, rec := range rounds {
		if rec.Round != 7+i {
			t.Errorf("record %d is round %d, want %d (chronological tail)", i, rec.Round, 7+i)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
	if len(r.Runs()) != 1 || len(r.Summaries()) != 1 {
		t.Error("run metadata not retained")
	}

	r.Reset()
	if len(r.Rounds()) != 0 || r.Dropped() != 0 || len(r.Runs()) != 0 {
		t.Error("Reset did not clear state")
	}
	if got := r.BeginRun(RunInfo{}); got != 0 {
		t.Errorf("run index after Reset = %d, want 0", got)
	}
}

func TestRingAssignsRunIndices(t *testing.T) {
	r := NewRing(0)
	for want := 0; want < 3; want++ {
		if got := r.BeginRun(RunInfo{}); got != want {
			t.Errorf("run index = %d, want %d", got, want)
		}
		r.EndRun(Summary{Run: want})
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Round{
		mkRound(0, 1, "goodnodes/detect", "", 8, 96),
		mkRound(0, 2, "goodnodes/mis", "mark", 8, 128),
		{Run: 1, Round: 1, FaultLost: 3, FaultCorrupted: 1, FaultDuplicated: 2},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(in) {
		t.Errorf("jsonl lines = %d, want %d", got, len(in))
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestCSVExport(t *testing.T) {
	in := []Round{
		mkRound(0, 1, "a,b", "ph\"ase", 4, 40),
		mkRound(0, 2, "", "", 0, 0),
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not parse: %v", err)
	}
	if len(rows) != len(in)+1 {
		t.Fatalf("csv rows = %d, want %d", len(rows), len(in)+1)
	}
	if rows[1][2] != "a,b" || rows[1][3] != "ph\"ase" {
		t.Errorf("special characters not preserved: %q %q", rows[1][2], rows[1][3])
	}
	if bits, _ := strconv.ParseInt(rows[1][5], 10, 64); bits != 40 {
		t.Errorf("bits column = %s, want 40", rows[1][5])
	}
}

func TestSummarizeGroupsAndTotals(t *testing.T) {
	rounds := []Round{
		mkRound(0, 1, "detect", "", 10, 100),
		mkRound(0, 2, "detect", "", 10, 60),
		mkRound(1, 1, "mis", "mark", 5, 300),
		mkRound(1, 2, "mis", "join", 5, 40),
		mkRound(1, 3, "mis", "mark", 5, 0),
	}
	tl := Summarize(rounds)
	if tl.Rounds != 5 || tl.Messages != 35 || tl.Bits != 500 {
		t.Errorf("totals = %d rounds %d msgs %d bits, want 5/35/500", tl.Rounds, tl.Messages, tl.Bits)
	}
	if tl.MaxMessageBits != 300 {
		t.Errorf("MaxMessageBits = %d, want 300", tl.MaxMessageBits)
	}
	keys := make([]string, len(tl.Totals))
	for i, pt := range tl.Totals {
		keys[i] = pt.Key()
	}
	want := []string{"detect", "mis:mark", "mis:join"}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("group keys = %v, want %v (first-appearance order)", keys, want)
	}
	if tl.Totals[1].Rounds != 2 || tl.Totals[1].Bits != 300 {
		t.Errorf("mis:mark group = %d rounds %d bits, want 2/300", tl.Totals[1].Rounds, tl.Totals[1].Bits)
	}

	// Histogram: one zero round; bits 40,60,100,300 land in [32,64)x2... no:
	// 40 and 60 in [32,64), 100 in [64,128), 300 in [256,512).
	counts := map[string]int{}
	total := 0
	for _, h := range tl.BitsHist {
		counts[histKey(h)] = h.Count
		total += h.Count
	}
	if total != len(rounds) {
		t.Fatalf("histogram covers %d rounds, want %d", total, len(rounds))
	}
	for key, want := range map[string]int{"0": 1, "32-64": 2, "64-128": 1, "256-512": 1} {
		if counts[key] != want {
			t.Errorf("bucket %s count = %d, want %d (all: %v)", key, counts[key], want, counts)
		}
	}

	// The rendering mentions every group and histogram bar.
	s := tl.String()
	for _, k := range want {
		if !strings.Contains(s, k) {
			t.Errorf("String() missing group %q:\n%s", k, s)
		}
	}
}

func histKey(h HistBucket) string {
	if h.Hi == 0 {
		return "0"
	}
	return strconv.FormatInt(h.Lo, 10) + "-" + strconv.FormatInt(h.Hi, 10)
}

func TestSummarizeEmpty(t *testing.T) {
	tl := Summarize(nil)
	if tl.Rounds != 0 || len(tl.Totals) != 0 || tl.BitsHist != nil {
		t.Errorf("empty summarize = %+v, want zero timeline", tl)
	}
	_ = tl.String() // must not panic
}

func TestTotalsTracer(t *testing.T) {
	var tot Totals
	if got := tot.BeginRun(RunInfo{}); got != 0 {
		t.Errorf("run index = %d, want 0", got)
	}
	tot.OnRound(mkRound(0, 1, "", "", 3, 30))
	tot.OnRound(mkRound(0, 2, "", "", 4, 40))
	tot.EndRun(Summary{})
	if tot.Rounds != 2 || tot.Messages != 7 || tot.Bits != 70 {
		t.Errorf("totals = %d rounds / %d msgs / %d bits, want 2 / 7 / 70", tot.Rounds, tot.Messages, tot.Bits)
	}
	if tot.ComputeNanos != 20 || tot.DeliveryNanos != 10 {
		t.Errorf("timing totals = %d/%d, want 20/10", tot.ComputeNanos, tot.DeliveryNanos)
	}
}

func TestTeeFansOut(t *testing.T) {
	ring := NewRing(8)
	var tot Totals
	tee := Tee{ring, &tot}
	run := tee.BeginRun(RunInfo{Label: "x"})
	tee.OnRound(mkRound(run, 1, "x", "", 2, 20))
	tee.EndRun(Summary{Run: run, Rounds: 1})
	if len(ring.Rounds()) != 1 || tot.Rounds != 1 {
		t.Error("tee did not reach both tracers")
	}
}

func TestEngineStats(t *testing.T) {
	var s EngineStats
	s.Add(EngineTiming{Engine: "sequential", Rounds: 10, ComputeNanos: 800, DeliveryNanos: 200, WallNanos: 1000})
	s.Add(EngineTiming{Engine: "pool", Rounds: 10, ComputeNanos: 300, DeliveryNanos: 200, WallNanos: 500})
	if v := s.Speedup("pool"); v != 2 {
		t.Errorf("pool speedup = %v, want 2", v)
	}
	if v := s.Speedup("sequential"); v != 1 {
		t.Errorf("reference speedup = %v, want 1", v)
	}
	if v := s.Speedup("missing"); v != 0 {
		t.Errorf("unknown engine speedup = %v, want 0", v)
	}
	out := s.String()
	if !strings.Contains(out, "pool") || !strings.Contains(out, "2.00x") {
		t.Errorf("String() missing expected content:\n%s", out)
	}
}
