package localapprox

import (
	"testing"

	"distmwis/internal/exact"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

func TestDecomposeCoversAllNodes(t *testing.T) {
	g := gen.GNP(300, 0.03, 1)
	cluster, radius := Decompose(g, 0.2, 1)
	for v, c := range cluster {
		if c < 0 {
			t.Fatalf("node %d unclustered", v)
		}
	}
	if radius < 0 {
		t.Fatal("negative radius")
	}
	// Clusters must be connected: every non-center node needs a neighbour
	// in the same cluster that is closer to the center — weak check: some
	// neighbour shares the cluster (centers excepted).
	for v := 0; v < g.N(); v++ {
		if int(cluster[v]) == v || g.Degree(v) == 0 {
			continue
		}
		ok := false
		for _, u := range g.Neighbors(v) {
			if cluster[u] == cluster[v] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("node %d isolated inside its cluster", v)
		}
	}
}

func TestDecomposeRadiusShrinksWithBeta(t *testing.T) {
	g := gen.Grid(30, 30)
	_, rSmallBeta := Decompose(g, 0.05, 3)
	_, rLargeBeta := Decompose(g, 0.8, 3)
	if rLargeBeta > rSmallBeta {
		t.Errorf("radius grew with beta: β=0.8 → %d, β=0.05 → %d", rLargeBeta, rSmallBeta)
	}
}

func TestApproximateIndependence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"tree":   gen.Weighted(gen.RandomTree(500, 2), gen.UniformWeights(100), 2),
		"cycle":  gen.Weighted(gen.Cycle(300), gen.UniformWeights(50), 3),
		"gnp":    gen.Weighted(gen.GNP(200, 0.03, 4), gen.UniformWeights(64), 4),
		"grid":   gen.Weighted(gen.Grid(15, 15), gen.UniformWeights(10), 5),
		"single": gen.Weighted(gen.Path(1), gen.UniformWeights(5), 6),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			res, err := Approximate(g, Options{Epsilon: 0.5, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if !g.IsIndependentSet(res.Set) {
				t.Fatal("dependent set")
			}
			if res.Weight != g.SetWeight(res.Set) {
				t.Fatal("weight mismatch")
			}
		})
	}
}

func TestApproximateOnForestsApproachesOPT(t *testing.T) {
	// On forests every cluster is solved exactly; with shrinking ε the
	// achieved weight must approach the true optimum.
	g := gen.Weighted(gen.RandomTree(2000, 8), gen.UniformWeights(1000), 8)
	opt, _, err := exact.ForestMWIS(g)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64
	for _, eps := range []float64{2, 0.5, 0.1} {
		var best int64
		for seed := uint64(1); seed <= 5; seed++ {
			res, err := Approximate(g, Options{Epsilon: eps, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.GreedyClusters != 0 {
				t.Fatalf("forest cluster fell back to greedy")
			}
			if res.Weight > best {
				best = res.Weight
			}
		}
		if best < prev {
			t.Logf("eps %v: best %d below previous %d (randomness)", eps, best, prev)
		}
		prev = best
		// At eps = 0.1 demand at least 90% of OPT.
		if eps == 0.1 && float64(best) < 0.9*float64(opt) {
			t.Errorf("eps=0.1: weight %d below 0.9·OPT (%d)", best, opt)
		}
	}
}

func TestApproximateRatioOnSmallGraphs(t *testing.T) {
	// Against exact OPT: expected (1+ε)-ish behaviour; assert a loose 2x
	// over several seeds (the guarantee is in expectation).
	g := gen.Weighted(gen.GNP(48, 0.08, 9), gen.UniformWeights(100), 9)
	opt, _, err := exact.MWIS(g)
	if err != nil {
		t.Fatal(err)
	}
	var best int64
	for seed := uint64(1); seed <= 10; seed++ {
		res, err := Approximate(g, Options{Epsilon: 0.25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Weight > best {
			best = res.Weight
		}
	}
	if float64(best)*2 < float64(opt) {
		t.Errorf("best of 10 seeds %d below OPT/2 (%d)", best, opt)
	}
}

func TestRoundsTrackRadius(t *testing.T) {
	g := gen.Weighted(gen.Cycle(400), gen.UniformWeights(10), 10)
	small, err := Approximate(g, Options{Beta: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Approximate(g, Options{Beta: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if large.Rounds <= small.Rounds {
		t.Errorf("smaller beta must cost more rounds: β=0.02 → %d, β=0.5 → %d", large.Rounds, small.Rounds)
	}
}

func TestExpectedRetention(t *testing.T) {
	g := gen.Cycle(10)
	if r := ExpectedRetention(g, 0.1); r < 0.5 || r > 0.7 {
		t.Errorf("retention %v, want 1-2·0.1·2 = 0.6", r)
	}
	if r := ExpectedRetention(g, 10); r != 0 {
		t.Errorf("retention must clamp at 0, got %v", r)
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Approximate(graph.NewBuilder(0).MustBuild(), Options{})
	if err != nil || res.Weight != 0 {
		t.Fatalf("empty graph: %v %v", res, err)
	}
}
