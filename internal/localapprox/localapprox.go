// Package localapprox implements a LOCAL-model (1+ε)-approximation for
// maximum-weight independent set via low-diameter decomposition.
//
// The paper's Related Work cites Ghaffari, Kuhn and Maus [29]: in the
// LOCAL model a (1+ε)-approximation is computable in poly(log n / ε)
// rounds. That algorithm rests on heavy network-decomposition machinery;
// this package implements the classical simpler scheme with the same
// structure and a clean guarantee (a faithful-in-spirit stand-in, recorded
// as a substitution in DESIGN.md §3):
//
//  1. Sample an exponential-shift low-diameter decomposition (Miller–Peng–
//     Xu): every node v draws δ_v ~ Exp(β) and joins the cluster of the
//     node u maximizing δ_u − dist(u, v). Every cluster has weak diameter
//     O(log n / β) w.h.p., and each edge is cut (endpoints in different
//     clusters) with probability O(β).
//  2. Discard every node incident to a cut edge, then solve MWIS *exactly*
//     and independently inside each cluster — legal in LOCAL, since a
//     cluster's subgraph fits in its center's O(log n / β)-radius view.
//
// A node survives step 2 with probability ≥ 1 − O(β·deg(v)), so for graphs
// of maximum degree Δ and β = ε/(cΔ) the expected retained optimum is
// (1 − ε/c')·OPT: a (1+ε)-approximation in expectation, in O(log n / β) =
// O(Δ·log n / ε) LOCAL rounds. On forests the per-cluster exact solve uses
// the linear-time tree DP, so the pipeline runs at any scale; on general
// graphs clusters are solved exactly up to the branch-and-bound limit with
// a greedy fallback (reported in the result).
package localapprox

import (
	"fmt"
	"math"
	"math/rand/v2"

	"distmwis/internal/exact"
	"distmwis/internal/graph"
)

// Result is the outcome of a decomposition-based approximation.
type Result struct {
	// Set is the returned independent set.
	Set []bool
	// Weight is its total weight.
	Weight int64
	// Rounds is the LOCAL round cost: the maximum cluster radius plus the
	// constant overhead of the shift exchange (each node must see its
	// cluster, and clusters are resolved from their centers' views).
	Rounds int
	// Clusters is the number of nonempty clusters.
	Clusters int
	// CutNodes is how many nodes were discarded for touching a cut edge.
	CutNodes int
	// ExactClusters and GreedyClusters count how cluster subproblems were
	// solved; greedy fallbacks void the (1+ε) guarantee and are reported.
	ExactClusters  int
	GreedyClusters int
}

// Options configures Approximate.
type Options struct {
	// Beta is the decomposition parameter (edge-cut probability scale).
	// If zero it is derived from Epsilon and the graph's Δ as ε/(4Δ).
	Beta float64
	// Epsilon is the target approximation slack (default 0.5).
	Epsilon float64
	// Seed feeds the exponential shifts.
	Seed uint64
	// ExactLimit caps the per-cluster exact solver (default
	// exact.DefaultMWISLimit); larger clusters fall back to greedy.
	ExactLimit int
}

// Decompose computes the Miller–Peng–Xu clustering: cluster[v] is the
// index of v's cluster center, and radius is the maximum graph distance
// from any node to its center (the LOCAL round cost driver).
func Decompose(g *graph.Graph, beta float64, seed uint64) (cluster []int32, radius int) {
	n := g.N()
	rng := rand.New(rand.NewPCG(seed, 0x10ca1))
	shift := make([]float64, n)
	for v := range shift {
		shift[v] = rng.ExpFloat64() / beta
	}
	// Multi-source shortest path on unit lengths with fractional head
	// starts: node u starts "flooding" at time -shift[u]; v joins the
	// source whose wave reaches it first. Process in a simple Dijkstra-like
	// sweep over (time = dist - shift) using a bucketed approach: since
	// only the ordering matters and edges are unit, run Dijkstra with
	// float keys via a pairing of (dist(u,v) - shift[u]).
	type item struct {
		key  float64
		node int32
		src  int32
		dist int32
	}
	// Binary heap on key.
	var heap []item
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].key <= heap[i].key {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < last && heap[l].key < heap[s].key {
				s = l
			}
			if r < last && heap[r].key < heap[s].key {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}
	cluster = make([]int32, n)
	dist := make([]int32, n)
	for v := range cluster {
		cluster[v] = -1
		push(item{key: -shift[v], node: int32(v), src: int32(v), dist: 0})
	}
	for len(heap) > 0 {
		it := pop()
		v := it.node
		if cluster[v] != -1 {
			continue
		}
		cluster[v] = it.src
		dist[v] = it.dist
		if int(it.dist) > radius {
			radius = int(it.dist)
		}
		for _, u := range g.Neighbors(int(v)) {
			if cluster[u] == -1 {
				push(item{key: it.key + 1, node: u, src: it.src, dist: it.dist + 1})
			}
		}
	}
	return cluster, radius
}

// Approximate runs the full pipeline on g.
func Approximate(g *graph.Graph, opts Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return &Result{}, nil
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = 0.5
	}
	beta := opts.Beta
	if beta <= 0 {
		delta := g.MaxDegree()
		if delta == 0 {
			delta = 1
		}
		beta = eps / (4 * float64(delta))
	}
	if beta > 0.5 {
		beta = 0.5
	}
	limit := opts.ExactLimit
	if limit <= 0 {
		limit = exact.DefaultMWISLimit
	}

	cluster, radius := Decompose(g, beta, opts.Seed+1)

	// Discard nodes incident to cut edges.
	alive := make([]bool, n)
	cut := 0
	for v := 0; v < n; v++ {
		alive[v] = true
		for _, u := range g.Neighbors(v) {
			if cluster[u] != cluster[v] {
				alive[v] = false
				break
			}
		}
		if !alive[v] {
			cut++
		}
	}

	// Group surviving nodes by cluster and solve each exactly.
	groups := map[int32][]int32{}
	for v := 0; v < n; v++ {
		if alive[v] {
			groups[cluster[v]] = append(groups[cluster[v]], int32(v))
		}
	}
	res := &Result{
		Set:      make([]bool, n),
		Rounds:   2*radius + 2, // gather cluster subgraph at center + decision broadcast
		Clusters: len(groups),
		CutNodes: cut,
	}
	keep := make([]bool, n)
	for _, members := range groups {
		for i := range keep {
			keep[i] = false
		}
		for _, v := range members {
			keep[v] = true
		}
		sub := g.Induce(keep)
		var inSet []bool
		if _, s, err := exact.ForestMWIS(sub.G); err == nil {
			inSet = s
			res.ExactClusters++
		} else if _, s, err := exact.MWISLimit(sub.G, limit); err == nil {
			inSet = s
			res.ExactClusters++
		} else {
			_, inSet = exact.GreedyMWIS(sub.G)
			res.GreedyClusters++
		}
		lifted := sub.LiftSet(inSet)
		for v, in := range lifted {
			if in {
				res.Set[v] = true
			}
		}
	}
	if !g.IsIndependentSet(res.Set) {
		return nil, fmt.Errorf("localapprox: produced dependent set (bug)")
	}
	res.Weight = g.SetWeight(res.Set)
	return res, nil
}

// ExpectedRetention returns the per-node survival lower bound 1 − β·deg(v)
// summed over weights: the expectation guarantee of the scheme,
// E[w(I)] ≥ Σ_v max(0, 1 − 2β·deg(v))·x*_v·w(v) ≥ (1 − 2βΔ)·OPT.
func ExpectedRetention(g *graph.Graph, beta float64) float64 {
	r := 1 - 2*beta*float64(g.MaxDegree())
	return math.Max(0, r)
}
