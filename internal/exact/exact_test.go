package exact

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

// bruteForceMWIS enumerates all 2^n subsets; ground truth for tiny graphs.
func bruteForceMWIS(g *graph.Graph) int64 {
	n := g.N()
	var best int64
	for mask := 0; mask < 1<<uint(n); mask++ {
		var w int64
		ok := true
		for v := 0; v < n && ok; v++ {
			if mask&(1<<uint(v)) == 0 {
				continue
			}
			w += g.Weight(v)
			for _, u := range g.Neighbors(v) {
				if int(u) < v && mask&(1<<uint(u)) != 0 {
					ok = false
					break
				}
			}
		}
		if ok && w > best {
			best = w
		}
	}
	return best
}

func randomWeightedGraph(n int, p float64, maxW int64, seed uint64) *graph.Graph {
	r := rand.New(rand.NewPCG(seed, 99))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		b.SetWeight(u, 1+r.Int64N(maxW))
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func TestMWISMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		for _, p := range []float64{0.1, 0.3, 0.7} {
			g := randomWeightedGraph(12, p, 50, seed)
			want := bruteForceMWIS(g)
			got, set, err := MWIS(g)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d p %.1f: MWIS = %d, want %d", seed, p, got, want)
			}
			if !g.IsIndependentSet(set) {
				t.Fatal("MWIS returned dependent set")
			}
			if g.SetWeight(set) != got {
				t.Fatalf("set weight %d != reported %d", g.SetWeight(set), got)
			}
		}
	}
}

func TestMWISKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{name: "K5-unit", g: gen.Clique(5), want: 1},
		{name: "C5-unit", g: gen.Cycle(5), want: 2},
		{name: "P4-unit", g: gen.Path(4), want: 2},
		{name: "empty", g: graph.NewBuilder(6).MustBuild(), want: 6},
		{
			name: "weighted-path",
			g:    gen.Path(3).WithWeights([]int64{5, 9, 5}),
			want: 10, // endpoints beat the heavy middle
		},
		{
			name: "weighted-star",
			g:    gen.Star(5).WithWeights([]int64{100, 1, 1, 1, 1}),
			want: 100, // hub outweighs all leaves
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, _, err := MWIS(tt.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("MWIS = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestMWISIgnoresNonPositiveNodes(t *testing.T) {
	g := gen.Path(3).WithWeights([]int64{0, -5, 7})
	got, set, err := MWIS(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("MWIS = %d, want 7", got)
	}
	if set[0] || set[1] {
		t.Error("selected a non-positive-weight node")
	}
}

func TestMWISTooLarge(t *testing.T) {
	g := gen.Cycle(DefaultMWISLimit + 1)
	if _, _, err := MWIS(g); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	if _, _, err := MWISLimit(g, DefaultMWISLimit+1); err != nil {
		t.Errorf("explicit limit run failed: %v", err)
	}
}

func TestForestMWISMatchesExact(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := gen.Weighted(gen.RandomTree(14, seed), gen.UniformWeights(30), seed)
		want, _, err := MWIS(g)
		if err != nil {
			t.Fatal(err)
		}
		got, set, err := ForestMWIS(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: ForestMWIS = %d, want %d", seed, got, want)
		}
		if !g.IsIndependentSet(set) || g.SetWeight(set) != got {
			t.Fatal("reconstruction inconsistent")
		}
	}
}

func TestForestMWISOnDisconnectedForest(t *testing.T) {
	// Two paths P3 with weights; optimum = 10+7.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.SetWeights([]int64{5, 9, 5, 3, 7, 3})
	g := b.MustBuild()
	got, _, err := ForestMWIS(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != 17 {
		t.Errorf("ForestMWIS = %d, want 17", got)
	}
}

func TestForestMWISRejectsCycle(t *testing.T) {
	if _, _, err := ForestMWIS(gen.Cycle(5)); err == nil {
		t.Error("expected cycle rejection")
	}
	// Cycle + isolated vertex: still must be rejected.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.MustBuild()
	if _, _, err := ForestMWIS(g); err == nil {
		t.Error("expected cycle rejection with isolated vertex present")
	}
}

func TestCycleMWIS(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := gen.Weighted(gen.Cycle(13), gen.UniformWeights(40), seed)
		want, _, err := MWIS(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CycleMWIS(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: CycleMWIS = %d, want %d", seed, got, want)
		}
	}
	if _, err := CycleMWIS(gen.Path(5)); err == nil {
		t.Error("expected rejection of non-cycle")
	}
}

func TestBoundsBracketOPT(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		g := randomWeightedGraph(20, 0.25, 100, seed)
		opt, _, err := MWIS(g)
		if err != nil {
			t.Fatal(err)
		}
		if ub := CliqueCoverUpperBound(g); ub < opt {
			t.Errorf("seed %d: clique cover %d < OPT %d", seed, ub, opt)
		}
		if lb := CaroWeiLowerBound(g); lb > float64(opt)+1e-9 {
			t.Errorf("seed %d: Caro-Wei %.2f > OPT %d", seed, lb, opt)
		}
		gw, set := GreedyMWIS(g)
		if gw > opt {
			t.Errorf("seed %d: greedy %d > OPT %d", seed, gw, opt)
		}
		if !g.IsIndependentSet(set) {
			t.Error("greedy returned dependent set")
		}
	}
}

func TestGreedyMWISSkipsNonPositive(t *testing.T) {
	g := gen.Path(2).WithWeights([]int64{0, 3})
	w, set := GreedyMWIS(g)
	if w != 3 || set[0] {
		t.Errorf("greedy picked zero-weight node: w=%d set=%v", w, set)
	}
}

// TestQuickMWISUpperLowerSandwich: on random graphs, CaroWei <= greedy or
// OPT <= cliquecover always holds.
func TestQuickMWISUpperLowerSandwich(t *testing.T) {
	f := func(seed uint64, pByte uint8) bool {
		p := 0.05 + float64(pByte%80)/100
		g := randomWeightedGraph(16, p, 64, seed)
		opt, _, err := MWIS(g)
		if err != nil {
			return false
		}
		return CaroWeiLowerBound(g) <= float64(opt)+1e-9 && CliqueCoverUpperBound(g) >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMWIS40(b *testing.B) {
	g := randomWeightedGraph(40, 0.2, 1000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MWIS(g); err != nil {
			b.Fatal(err)
		}
	}
}
