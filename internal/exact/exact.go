// Package exact computes optimal maximum-weight independent sets and
// certified bounds on them.
//
// The experiment suite measures true approximation ratios, which requires
// OPT(G_w). Three routes are provided:
//
//   - MWIS: exact branch-and-bound with a greedy clique-cover upper bound,
//     practical to roughly 60–80 general nodes;
//   - ForestMWIS / CycleMWIS: linear-time dynamic programs for forests and
//     cycles of any size;
//   - CliqueCoverUpperBound / CaroWeiLowerBound: certified OPT bounds for
//     graphs too large for exact search.
package exact

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"distmwis/internal/graph"
)

// ErrTooLarge is returned by MWIS when the graph exceeds the node limit.
var ErrTooLarge = errors.New("exact: graph too large for exact search")

// DefaultMWISLimit is the node cap for MWIS.
const DefaultMWISLimit = 96

// bitset is a fixed-capacity set of node indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clear(i int)    { b[i>>6] &^= 1 << uint(i&63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func (b bitset) clone() bitset  { c := make(bitset, len(b)); copy(c, b); return c }
func (b bitset) andNot(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}
func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// firstSet returns the lowest set index, or -1.
func (b bitset) firstSet() int {
	for i, w := range b {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// solver carries the branch-and-bound state.
type solver struct {
	g      *graph.Graph
	adj    []bitset
	w      []int64
	best   int64
	bestIn bitset
	cur    bitset
}

// MWIS returns the weight and membership vector of a maximum-weight
// independent set of g. Nodes with non-positive weight are never selected
// (consistent with the paper's convention that algorithms never pick
// non-positive nodes). Returns ErrTooLarge above DefaultMWISLimit nodes.
func MWIS(g *graph.Graph) (int64, []bool, error) {
	return MWISLimit(g, DefaultMWISLimit)
}

// MWISLimit is MWIS with an explicit node cap.
func MWISLimit(g *graph.Graph, limit int) (int64, []bool, error) {
	n := g.N()
	if n > limit {
		return 0, nil, fmt.Errorf("%w: %d nodes > limit %d", ErrTooLarge, n, limit)
	}
	s := &solver{g: g, w: g.Weights()}
	s.adj = make([]bitset, n)
	for v := 0; v < n; v++ {
		s.adj[v] = newBitset(n)
		for _, u := range g.Neighbors(v) {
			s.adj[v].set(int(u))
		}
	}
	cand := newBitset(n)
	for v := 0; v < n; v++ {
		if s.w[v] > 0 {
			cand.set(v)
		}
	}
	s.cur = newBitset(n)
	s.bestIn = newBitset(n)
	s.branch(cand, 0)
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		out[v] = s.bestIn.has(v)
	}
	return s.best, out, nil
}

func (s *solver) branch(cand bitset, acc int64) {
	if acc > s.best {
		s.best = acc
		s.bestIn = s.cur.clone()
	}
	if cand.empty() {
		return
	}
	if acc+s.cliqueCoverBound(cand) <= s.best {
		return
	}
	// Branch on the max-degree candidate (degree within cand).
	v := s.pickVertex(cand)
	// Include v.
	with := cand.clone()
	with.clear(v)
	with.andNot(s.adj[v])
	s.cur.set(v)
	s.branch(with, acc+s.w[v])
	s.cur.clear(v)
	// Exclude v.
	without := cand.clone()
	without.clear(v)
	s.branch(without, acc)
}

func (s *solver) pickVertex(cand bitset) int {
	bestV, bestScore := -1, int64(-1)
	for i, word := range cand {
		for word != 0 {
			v := i*64 + bits.TrailingZeros64(word)
			word &= word - 1
			// Degree within cand, weighted tie-break by weight.
			deg := 0
			for j := range cand {
				deg += bits.OnesCount64(cand[j] & s.adj[v][j])
			}
			score := int64(deg)<<20 + s.w[v]
			if score > bestScore {
				bestScore = score
				bestV = v
			}
		}
	}
	return bestV
}

// cliqueCoverBound greedily partitions cand into cliques and sums each
// clique's maximum weight — a valid upper bound on the MWIS weight within
// cand, since an independent set takes at most one node per clique.
func (s *solver) cliqueCoverBound(cand bitset) int64 {
	rest := cand.clone()
	var bound int64
	for {
		v := rest.firstSet()
		if v < 0 {
			return bound
		}
		rest.clear(v)
		cliqueMax := s.w[v]
		// Grow a clique around v greedily: members must be adjacent to all
		// current members; track the intersection of neighbourhoods.
		inter := s.adj[v].clone()
		for i := range inter {
			inter[i] &= rest[i]
		}
		for {
			u := inter.firstSet()
			if u < 0 {
				break
			}
			rest.clear(u)
			inter.clear(u)
			if s.w[u] > cliqueMax {
				cliqueMax = s.w[u]
			}
			for i := range inter {
				inter[i] &= s.adj[u][i]
			}
		}
		bound += cliqueMax
	}
}

// ForestMWIS solves MWIS exactly on a forest via tree dynamic programming.
// Returns an error if g contains a cycle.
func ForestMWIS(g *graph.Graph) (int64, []bool, error) {
	n := g.N()
	comp, count := g.Components()
	compNodes := make([]int, count)
	compEdges := make([]int, count)
	for v := 0; v < n; v++ {
		compNodes[comp[v]]++
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				compEdges[comp[v]]++
			}
		}
	}
	for c := 0; c < count; c++ {
		if compEdges[c] != compNodes[c]-1 {
			return 0, nil, errors.New("exact: graph contains a cycle")
		}
	}

	take := make([]int64, n) // best subtree weight with v taken
	skip := make([]int64, n) // best subtree weight with v skipped
	parent := make([]int32, n)
	visited := make([]bool, n)
	order := make([]int32, 0, n) // DFS pre-order: parents before children

	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		parent[root] = -1
		visited[root] = true
		stack := []int32{int32(root)}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			for _, u := range g.Neighbors(int(v)) {
				if !visited[u] {
					visited[u] = true
					parent[u] = v
					stack = append(stack, u)
				}
			}
		}
	}
	// Leaves-first DP.
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		take[v] = g.Weight(int(v))
		skip[v] = 0
		for _, u := range g.Neighbors(int(v)) {
			if parent[u] == v {
				take[v] += skip[u]
				skip[v] += maxI64(take[u], skip[u])
			}
		}
	}
	// Top-down reconstruction.
	set := make([]bool, n)
	var total int64
	for _, v := range order {
		if parent[v] == -1 {
			total += maxI64(take[v], skip[v])
			set[v] = take[v] > skip[v]
			continue
		}
		if set[parent[v]] {
			set[v] = false
		} else {
			set[v] = take[v] > skip[v]
		}
	}
	return total, set, nil
}

// CycleMWIS solves MWIS exactly on the cycle graph 0-1-...-n-1-0 in O(n).
// The graph must actually be that cycle (each node adjacent to (v±1) mod n).
func CycleMWIS(g *graph.Graph) (int64, error) {
	n := g.N()
	if n < 3 {
		return 0, errors.New("exact: cycle needs n >= 3")
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != 2 || !g.HasEdge(v, (v+1)%n) {
			return 0, errors.New("exact: graph is not the canonical cycle")
		}
	}
	w := g.Weights()
	// Case 1: node 0 excluded -> path 1..n-1. Case 2: node 0 included ->
	// w[0] + path 2..n-2.
	best := pathMWIS(w[1:])
	if w[0] > 0 {
		if n >= 4 {
			if v := w[0] + pathMWIS(w[2:n-1]); v > best {
				best = v
			}
		} else if w[0] > best {
			best = w[0]
		}
	}
	return best, nil
}

// pathMWIS is the classic house-robber DP over a path's weight sequence.
func pathMWIS(w []int64) int64 {
	var take, skip int64
	for _, x := range w {
		newTake := skip + maxI64(x, 0)
		newSkip := maxI64(take, skip)
		take, skip = newTake, newSkip
	}
	return maxI64(take, skip)
}

// CliqueCoverUpperBound returns a certified upper bound on OPT(G_w) by
// greedy clique partitioning (any independent set takes at most one node
// per clique).
func CliqueCoverUpperBound(g *graph.Graph) int64 {
	n := g.N()
	covered := make([]bool, n)
	// Process in descending-degree order for tighter cliques.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return g.Degree(order[i]) > g.Degree(order[j]) })
	var bound int64
	for _, v := range order {
		if covered[v] {
			continue
		}
		covered[v] = true
		clique := []int{v}
		cliqueMax := maxI64(g.Weight(v), 0)
		for _, u := range g.Neighbors(v) {
			if covered[u] {
				continue
			}
			inClique := true
			for _, c := range clique {
				if c != int(u) && !g.HasEdge(c, int(u)) {
					inClique = false
					break
				}
			}
			if inClique {
				covered[u] = true
				clique = append(clique, int(u))
				if w := g.Weight(int(u)); w > cliqueMax {
					cliqueMax = w
				}
			}
		}
		bound += cliqueMax
	}
	return bound
}

// CaroWeiLowerBound returns the weighted Caro–Wei bound Σ w(v)/(deg(v)+1),
// a certified lower bound on OPT(G_w) (achieved in expectation by the
// one-round ranking algorithm of Boppana–Halldórsson–Rawitz [17]).
func CaroWeiLowerBound(g *graph.Graph) float64 {
	var sum float64
	for v := 0; v < g.N(); v++ {
		if w := g.Weight(v); w > 0 {
			sum += float64(w) / float64(g.Degree(v)+1)
		}
	}
	return sum
}

// GreedyMWIS is the sequential max-weight-first greedy heuristic; its output
// is a valid independent set whose weight lower-bounds OPT. Used to sanity-
// check ratios on graphs too large for exact search.
func GreedyMWIS(g *graph.Graph) (int64, []bool) {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		wi, wj := g.Weight(order[i]), g.Weight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	set := make([]bool, n)
	blocked := make([]bool, n)
	var total int64
	for _, v := range order {
		if blocked[v] || g.Weight(v) <= 0 {
			continue
		}
		set[v] = true
		total += g.Weight(v)
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return total, set
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
