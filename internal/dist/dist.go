// Package dist provides the phase-composition machinery the paper's
// algorithms are built from.
//
// Algorithms 1 and 6 of the paper run a black-box protocol A repeatedly on
// derived graphs (residual positive-weight subgraphs, bounded-degree
// subgraphs) and account the total round complexity as the sum over phases.
// Package dist mirrors that structure: an Accumulator sums the metrics of
// successive congest runs plus the constant-round bookkeeping steps (flag
// and weight exchanges between phases) that the distributed implementation
// would perform, so reported round counts are honest end-to-end figures.
package dist

import (
	"fmt"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
)

// Accumulator aggregates execution metrics across protocol phases.
type Accumulator struct {
	// Rounds is the total synchronous rounds across all phases, including
	// bookkeeping rounds added via AddRounds.
	Rounds int
	// Messages and Bits total the traffic of all phases.
	Messages int64
	Bits     int64
	// MaxMessageBits is the largest message across phases.
	MaxMessageBits int
	// Phases counts congest runs absorbed.
	Phases int
	// Truncations counts phases cut off by a hard stop before all nodes
	// halted (under fault injection, blocked protocols are truncated).
	Truncations int
	// FaultLost, FaultCorrupted and FaultDuplicated total the fault
	// layer's interventions across phases (zero without an injector).
	FaultLost       int64
	FaultCorrupted  int64
	FaultDuplicated int64
	// Retransmits, TransportAcks, Recoveries, ReplayedRounds and DeadPorts
	// total the reliable transport's work across phases (zero when the
	// transport is not installed).
	Retransmits    int64
	TransportAcks  int64
	Recoveries     int64
	ReplayedRounds int64
	DeadPorts      int64
}

// Absorb adds one congest execution's metrics.
func (a *Accumulator) Absorb(res *congest.Result) {
	a.Rounds += res.Rounds
	a.Messages += res.Messages
	a.Bits += res.Bits
	if res.MaxMessageBits > a.MaxMessageBits {
		a.MaxMessageBits = res.MaxMessageBits
	}
	a.Phases++
	if res.Truncated {
		a.Truncations++
	}
	a.FaultLost += res.FaultLost
	a.FaultCorrupted += res.FaultCorrupted
	a.FaultDuplicated += res.FaultDuplicated
	a.Retransmits += res.Retransmits
	a.TransportAcks += res.TransportAcks
	a.Recoveries += res.Recoveries
	a.ReplayedRounds += res.ReplayedRounds
	a.DeadPorts += res.DeadPorts
}

// AddRounds accounts constant-round bookkeeping (e.g. a one-round exchange
// of active flags between phases) that is performed host-side by the
// orchestrator but would cost rounds in a real network.
func (a *Accumulator) AddRounds(r int) { a.Rounds += r }

// Add merges another accumulator (e.g. a nested algorithm's total).
func (a *Accumulator) Add(b Accumulator) {
	a.Rounds += b.Rounds
	a.Messages += b.Messages
	a.Bits += b.Bits
	if b.MaxMessageBits > a.MaxMessageBits {
		a.MaxMessageBits = b.MaxMessageBits
	}
	a.Phases += b.Phases
	a.Truncations += b.Truncations
	a.FaultLost += b.FaultLost
	a.FaultCorrupted += b.FaultCorrupted
	a.FaultDuplicated += b.FaultDuplicated
	a.Retransmits += b.Retransmits
	a.TransportAcks += b.TransportAcks
	a.Recoveries += b.Recoveries
	a.ReplayedRounds += b.ReplayedRounds
	a.DeadPorts += b.DeadPorts
}

func (a Accumulator) String() string {
	return fmt.Sprintf("rounds=%d msgs=%d bits=%d phases=%d", a.Rounds, a.Messages, a.Bits, a.Phases)
}

// RunPhase executes one protocol on g, absorbs its metrics into acc, and
// returns the result.
func RunPhase(g *graph.Graph, newProcess func() congest.Process, acc *Accumulator, opts ...congest.Option) (*congest.Result, error) {
	res, err := congest.Run(g, newProcess, opts...)
	if err != nil {
		return nil, fmt.Errorf("dist: phase %d: %w", acc.Phases+1, err)
	}
	acc.Absorb(res)
	return res, nil
}

// RunOnInduced runs a protocol on the subgraph induced by active and lifts
// the boolean outputs back to the parent index space. One bookkeeping round
// is charged for the activity-flag exchange that lets every node learn which
// of its neighbours participate in the phase.
func RunOnInduced(g *graph.Graph, active []bool, newProcess func() congest.Process, acc *Accumulator, opts ...congest.Option) ([]bool, *graph.Subgraph, error) {
	sub := g.Induce(active)
	acc.AddRounds(1) // neighbours exchange active flags
	if sub.G.N() == 0 {
		return make([]bool, g.N()), sub, nil
	}
	res, err := RunPhase(sub.G, newProcess, acc, opts...)
	if err != nil {
		return nil, nil, err
	}
	return sub.LiftSet(congest.BoolOutputs(res)), sub, nil
}
