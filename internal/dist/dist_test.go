package dist_test

import (
	"errors"
	"math"
	"testing"

	"distmwis/internal/congest"
	. "distmwis/internal/dist"
	"distmwis/internal/graph/gen"
	"distmwis/internal/mis"
)

func TestAccumulatorAbsorbAndAdd(t *testing.T) {
	var a Accumulator
	a.Absorb(&congest.Result{Rounds: 5, Messages: 10, Bits: 100, MaxMessageBits: 12,
		Retransmits: 7, TransportAcks: 4, Recoveries: 1, ReplayedRounds: 3, DeadPorts: 2})
	a.Absorb(&congest.Result{Rounds: 3, Messages: 2, Bits: 20, MaxMessageBits: 30})
	a.AddRounds(2)
	if a.Rounds != 10 || a.Messages != 12 || a.Bits != 120 || a.MaxMessageBits != 30 || a.Phases != 2 {
		t.Errorf("accumulator wrong: %+v", a)
	}
	if a.Retransmits != 7 || a.TransportAcks != 4 || a.Recoveries != 1 || a.ReplayedRounds != 3 || a.DeadPorts != 2 {
		t.Errorf("transport counters not absorbed: %+v", a)
	}
	var b Accumulator
	b.Add(a)
	b.Add(a)
	if b.Rounds != 20 || b.Phases != 4 || b.MaxMessageBits != 30 {
		t.Errorf("Add wrong: %+v", b)
	}
	if b.Retransmits != 14 || b.TransportAcks != 8 || b.Recoveries != 2 || b.ReplayedRounds != 6 || b.DeadPorts != 4 {
		t.Errorf("transport counters not merged: %+v", b)
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
}

func TestRunPhase(t *testing.T) {
	g := gen.Cycle(16)
	var acc Accumulator
	res, err := RunPhase(g, mis.Luby{}.NewProcess, &acc, congest.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if acc.Rounds != res.Rounds || acc.Phases != 1 {
		t.Errorf("metrics not absorbed: %+v vs %d", acc, res.Rounds)
	}
}

func TestRunPhaseErrorWrapped(t *testing.T) {
	g := gen.Cycle(4)
	var acc Accumulator
	_, err := RunPhase(g, mis.Luby{}.NewProcess, &acc, congest.WithMaxRounds(1))
	if err == nil || !errors.Is(err, congest.ErrRoundLimit) {
		t.Errorf("expected wrapped ErrRoundLimit, got %v", err)
	}
}

func TestRunOnInduced(t *testing.T) {
	g := gen.Path(10)
	active := make([]bool, 10)
	for v := 2; v <= 7; v++ {
		active[v] = true
	}
	var acc Accumulator
	set, sub, err := RunOnInduced(g, active, mis.Luby{}.NewProcess, &acc, congest.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if sub.G.N() != 6 {
		t.Fatalf("induced size %d, want 6", sub.G.N())
	}
	// The lifted set must be inside the active region and an MIS of it.
	for v, in := range set {
		if in && !active[v] {
			t.Errorf("node %d outside active region selected", v)
		}
	}
	if err := mis.Verify(sub.G, func() []bool {
		out := make([]bool, sub.G.N())
		for i, pv := range sub.ToParent {
			out[i] = set[pv]
		}
		return out
	}()); err != nil {
		t.Error(err)
	}
	// One bookkeeping round charged on top of the protocol.
	if acc.Rounds < 2 {
		t.Errorf("rounds %d too low", acc.Rounds)
	}
}

func TestRunOnInducedEmptyActive(t *testing.T) {
	g := gen.Cycle(8)
	var acc Accumulator
	set, _, err := RunOnInduced(g, make([]bool, 8), mis.Luby{}.NewProcess, &acc)
	if err != nil {
		t.Fatal(err)
	}
	for v, in := range set {
		if in {
			t.Errorf("node %d selected from empty active set", v)
		}
	}
	if acc.Rounds != 1 {
		t.Errorf("empty phase should charge exactly the flag round, got %d", acc.Rounds)
	}
}

// TestAccumulatorEmptyAbsorb: absorbing a zero Result must count the phase
// but leave every metric untouched — the paper's phase composition charges
// nothing for a protocol that sends nothing.
func TestAccumulatorEmptyAbsorb(t *testing.T) {
	var a Accumulator
	a.Absorb(&congest.Result{})
	if a.Phases != 1 {
		t.Fatalf("Phases = %d, want 1", a.Phases)
	}
	if a.Rounds != 0 || a.Messages != 0 || a.Bits != 0 || a.MaxMessageBits != 0 ||
		a.Truncations != 0 || a.FaultLost != 0 || a.Retransmits != 0 {
		t.Errorf("zero result perturbed metrics: %+v", a)
	}
	var b Accumulator
	b.Add(Accumulator{})
	if b != (Accumulator{}) {
		t.Errorf("Add(zero) perturbed metrics: %+v", b)
	}
}

// TestAccumulatorOverflowAdjacentSums: the int64 traffic counters must
// survive sums adjacent to math.MaxInt64 without losing precision. A long
// experiment sweep can legitimately accumulate huge bit totals; this pins
// that the halves recombine exactly below the overflow boundary.
func TestAccumulatorOverflowAdjacentSums(t *testing.T) {
	const half = math.MaxInt64 / 2 // 2^62 - 1
	var a Accumulator
	a.Absorb(&congest.Result{Messages: half, Bits: half, FaultLost: half, Retransmits: half})
	a.Absorb(&congest.Result{Messages: half, Bits: half, FaultLost: half, Retransmits: half})
	want := int64(2 * half) // MaxInt64 - 1: the largest even sum below overflow
	if a.Messages != want || a.Bits != want || a.FaultLost != want || a.Retransmits != want {
		t.Fatalf("overflow-adjacent absorb lost precision: %+v", a)
	}
	// One more unit lands exactly on MaxInt64.
	a.Add(Accumulator{Messages: 1, Bits: 1, FaultLost: 1, Retransmits: 1})
	if a.Messages != math.MaxInt64 || a.Bits != math.MaxInt64 ||
		a.FaultLost != math.MaxInt64 || a.Retransmits != math.MaxInt64 {
		t.Fatalf("sum to MaxInt64 wrong: %+v", a)
	}
	if a.String() == "" {
		t.Error("empty String() on saturated accumulator")
	}
}

// TestAccumulatorMaxMessageBitsIsMaxNotSum: MaxMessageBits takes the max
// across phases rather than summing — regression guard for the reporting
// contract.
func TestAccumulatorMaxMessageBitsIsMaxNotSum(t *testing.T) {
	var a Accumulator
	a.Absorb(&congest.Result{MaxMessageBits: 40})
	a.Absorb(&congest.Result{MaxMessageBits: 8})
	a.Add(Accumulator{MaxMessageBits: 25})
	if a.MaxMessageBits != 40 {
		t.Errorf("MaxMessageBits = %d, want 40", a.MaxMessageBits)
	}
}
