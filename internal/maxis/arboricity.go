package maxis

import (
	"fmt"
	"math/bits"

	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
)

// ArboricityResult extends Result with the Algorithm 6 observables.
type ArboricityResult struct {
	Result
	// Phases is the number of push phases executed (≤ log n + 1 by
	// Proposition 5).
	Phases int
	// StackValue is Σᵢ w'ᵢ(Iᵢ), the Proposition 2 certificate.
	StackValue int64
}

// Arboricity implements Theorem 12 (Algorithm 6): given a (1+ε)Δ-approx
// black box A (the inner argument, boosted internally), it returns an
// 8(1+ε)α-approximation for graphs of arboricity ≤ alpha in O(T·log n)
// rounds.
//
// Each of the ≤ log n + 1 phases runs A on the subgraph induced by the
// active nodes of degree at most 4α, pushes the resulting set, zeroes every
// ≤4α-degree node's weight, and reduces neighbours of the set as in the
// local-ratio scheme. Nash–Williams guarantees at least half of any
// subgraph of arboricity ≤ α has degree ≤ 4α, so the active set at least
// halves every phase (Proposition 5) — this is checked at runtime and a
// violation reports that the supplied alpha is below the true arboricity.
//
// The paper assumes α is known to the nodes; pass alpha ≤ 0 to use the
// degeneracy upper bound computed from the graph.
func Arboricity(g *graph.Graph, alpha int, eps float64, inner Inner, cfg Config) (*ArboricityResult, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("maxis: Arboricity needs ε > 0, got %v", eps)
	}
	cfg = cfg.Normalized(g)
	if alpha <= 0 {
		alpha = g.ArboricityUpperBound()
		if alpha == 0 {
			alpha = 1
		}
	}
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator
	n := g.N()
	cur := g.Weights()
	maxPhases := bits.Len(uint(n)) + 2 // log n + 1 plus slack for the V1 phase
	var stack [][]bool
	var stackValue int64
	phases := 0

	for i := 1; i <= maxPhases; i++ {
		active := make([]bool, n)
		activeN := 0
		for v := 0; v < n; v++ {
			if cur[v] > 0 {
				active[v] = true
				activeN++
			}
		}
		if activeN == 0 {
			break
		}
		sub := g.Induce(active)
		acc.AddRounds(1) // active flags
		// V4α: active nodes whose degree within the active subgraph is ≤4α.
		lowDeg := make([]bool, sub.G.N())
		lowCount := 0
		for j := 0; j < sub.G.N(); j++ {
			if sub.G.Degree(j) <= 4*alpha {
				lowDeg[j] = true
				lowCount++
			}
		}
		acc.AddRounds(1) // degree exchange within the active subgraph
		if 2*lowCount < activeN {
			return nil, fmt.Errorf("maxis: only %d of %d active nodes have degree ≤ 4α=%d; alpha=%d is below the true arboricity", lowCount, activeN, 4*alpha, alpha)
		}
		low := sub.G.Induce(lowDeg)
		acc.AddRounds(1)
		subW := make([]int64, low.G.N())
		for j, pv := range low.ToParent {
			subW[j] = cur[sub.ToParent[pv]]
		}
		inSet, _, _, err := boostRun(low.G.WithWeights(subW), eps, inner, cfg, seeds, &acc)
		if err != nil {
			return nil, fmt.Errorf("maxis: arboricity phase %d: %w", i, err)
		}
		set := sub.LiftSet(low.LiftSet(inSet))
		if !g.IsIndependentSet(set) {
			return nil, fmt.Errorf("maxis: arboricity phase %d: inner returned dependent set", i)
		}
		for v := 0; v < n; v++ {
			if set[v] {
				stackValue += cur[v]
			}
		}
		stack = append(stack, set)
		phases++
		// Weight update (Algorithm 6): every ≤4α-degree active node drops to
		// zero; other nodes lose the weight of their set neighbours.
		reduce := make([]int64, n)
		zero := make([]bool, n)
		for j := 0; j < sub.G.N(); j++ {
			if lowDeg[j] {
				zero[sub.ToParent[j]] = true
			}
		}
		for v := 0; v < n; v++ {
			if zero[v] {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if set[u] {
					reduce[v] += cur[u]
				}
			}
		}
		for v := 0; v < n; v++ {
			if zero[v] {
				cur[v] = 0
			} else {
				cur[v] -= reduce[v]
			}
		}
		acc.AddRounds(1) // members announce residual weight
	}
	// Any active node left means the halving argument failed, which cannot
	// happen when alpha is a true arboricity bound.
	for v := 0; v < n; v++ {
		if cur[v] > 0 {
			return nil, fmt.Errorf("maxis: active nodes remain after %d phases; alpha=%d is below the true arboricity", maxPhases, alpha)
		}
	}
	set := PopStack(g, stack, &acc)
	res, err := finish(g, set, cfg, acc, "arboricity", map[string]float64{
		"alpha":       float64(alpha),
		"phases":      float64(phases),
		"stack_value": float64(stackValue),
		"guarantee":   8 * (1 + eps) * float64(alpha),
	})
	if err != nil {
		return nil, err
	}
	if res.Weight < stackValue {
		return nil, fmt.Errorf("maxis: stack property violated in arboricity run (bug)")
	}
	return &ArboricityResult{Result: *res, Phases: phases, StackValue: stackValue}, nil
}

// Theorem3 is the paper's headline low-arboricity result: Arboricity with
// the Theorem 2 (sparsified) pipeline as the inner (1+ε)Δ-approximation,
// giving an 8(1+ε)α-approximation in O(log n · poly log log n / ε) rounds.
func Theorem3(g *graph.Graph, alpha int, eps float64, cfg Config) (*ArboricityResult, error) {
	return Arboricity(g, alpha, eps, sparsifiedInner{}, cfg)
}

// Guarantee8Alpha returns the Theorem 3 approximation bound 8(1+ε)α as a
// float for experiment tables.
func Guarantee8Alpha(alpha int, eps float64) float64 {
	return 8 * (1 + eps) * float64(alpha)
}

// GuaranteeDelta returns the Theorem 1/2 bound (1+ε)Δ.
func GuaranteeDelta(delta int, eps float64) float64 {
	return (1 + eps) * float64(delta)
}

// GuaranteeCorollary1 returns the Corollary 1 lower bound
// w(V)/((1+ε)(Δ+1)).
func GuaranteeCorollary1(totalWeight int64, delta int, eps float64) float64 {
	return float64(totalWeight) / ((1 + eps) * float64(delta+1))
}
