package maxis

import (
	"fmt"
	"math"

	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
)

// BoostResult extends Result with the local-ratio observables of
// Section 4.3.
type BoostResult struct {
	Result
	// StackValue is Σᵢ wᵢ(Iᵢ): the total residual weight of the stacked
	// independent sets at push time. Proposition 2 (the stack property)
	// guarantees Weight ≥ StackValue; it is verified at runtime.
	StackValue int64
	// Phases is the number of push phases t executed.
	Phases int
}

// Boost implements Theorem 10 (Algorithm 1): given a black-box inner
// algorithm A that finds an independent set of weight ≥ w(V)/(c·Δ), it
// produces a (1+ε)Δ-approximation in t = ⌈c/ε⌉ phases.
//
// Stage 1 (push): run A on the residual positive-weight graph, push the
// returned set Iᵢ, and reduce weights by w_{i+1}(v) = wᵢ(v) − wᵢ(N⁺(v)∩Iᵢ)
// (members drop to zero, neighbours lose the member's weight). Stage 2
// (pop): walk the stack in reverse, greedily adding nodes with no neighbour
// already chosen.
//
// By Corollary 1 the same run also guarantees weight ≥ w(V)/((1+ε)(Δ+1)).
func Boost(g *graph.Graph, eps float64, inner Inner, cfg Config) (*BoostResult, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("maxis: Boost needs ε > 0, got %v", eps)
	}
	cfg = cfg.Normalized(g)
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator
	set, stackValue, phases, err := boostRun(g, eps, inner, cfg, seeds, &acc)
	if err != nil {
		return nil, err
	}
	res, err := finish(g, set, cfg, acc, "boost("+inner.Name()+")", map[string]float64{
		"stack_value": float64(stackValue),
		"phases":      float64(phases),
	})
	if err != nil {
		return nil, err
	}
	return &BoostResult{Result: *res, StackValue: stackValue, Phases: phases}, nil
}

// boostRun is the reusable core of Algorithm 1, shared with Algorithm 6
// (which boosts on its bounded-degree subgraphs).
func boostRun(g *graph.Graph, eps float64, inner Inner, cfg Config, seeds *protocol.SeedSeq, acc *dist.Accumulator) ([]bool, int64, int, error) {
	t := int(math.Ceil(float64(inner.FactorC()) / eps))
	stack, stackValue, err := boostPush(g, t, inner, cfg, seeds, acc)
	if err != nil {
		return nil, 0, 0, err
	}
	set := PopStack(g, stack, acc)
	// Proposition 2 (stack property): w(I) ≥ Σᵢ wᵢ(Iᵢ). A violation means
	// the local-ratio machinery is broken, so fail loudly.
	if w := g.SetWeight(set); w < stackValue {
		return nil, 0, 0, fmt.Errorf("maxis: stack property violated: w(I)=%d < stack value %d (bug)", w, stackValue)
	}
	return set, stackValue, len(stack), nil
}

// boostPush runs the t push phases and returns the stack of independent
// sets plus Σᵢ wᵢ(Iᵢ).
func boostPush(g *graph.Graph, t int, inner Inner, cfg Config, seeds *protocol.SeedSeq, acc *dist.Accumulator) ([][]bool, int64, error) {
	n := g.N()
	cur := g.Weights()
	var stack [][]bool
	var stackValue int64

	active := make([]bool, n) // reused across phases; fully rewritten below
	for i := 1; i <= t; i++ {
		anyActive := false
		for v := 0; v < n; v++ {
			active[v] = cur[v] > 0
			anyActive = anyActive || active[v]
		}
		if !anyActive {
			break
		}
		sub := g.Induce(active)
		acc.AddRounds(1) // active-flag exchange
		subW := make([]int64, sub.G.N())
		for j, pv := range sub.ToParent {
			subW[j] = cur[pv]
		}
		// Push phases share the unindexed "push" label so a Timeline
		// aggregates all t of them into one stage (the per-round records
		// still separate them by run index).
		inSet, err := inner.Run(sub.G.WithWeights(subW), cfg.Phase("push"), seeds, acc)
		if err != nil {
			return nil, 0, fmt.Errorf("maxis: boost phase %d: %w", i, err)
		}
		set := sub.LiftSet(inSet)
		if !g.IsIndependentSet(set) {
			return nil, 0, fmt.Errorf("maxis: boost phase %d: inner %s returned dependent set", i, inner.Name())
		}
		// Push and record the residual value wᵢ(Iᵢ).
		for v := 0; v < n; v++ {
			if set[v] {
				stackValue += cur[v]
			}
		}
		stack = append(stack, set)
		// Local-ratio weight reduction; one round for members to announce
		// their residual weight to neighbours.
		applyReduction(g, cur, set)
		acc.AddRounds(1)
	}
	return stack, stackValue, nil
}

// applyReduction performs w_{i+1}(v) = wᵢ(v) − wᵢ(N⁺(v) ∩ Iᵢ) in place,
// reading all wᵢ values from the pre-phase snapshot.
func applyReduction(g *graph.Graph, cur []int64, set []bool) {
	n := g.N()
	reduce := make([]int64, n)
	for v := 0; v < n; v++ {
		if set[v] {
			reduce[v] = cur[v] // member zeroes itself
			continue
		}
		for _, u := range g.Neighbors(v) {
			if set[u] {
				reduce[v] += cur[u]
			}
		}
	}
	for v := 0; v < n; v++ {
		cur[v] -= reduce[v]
	}
}

// PopStack performs the greedy reverse pop (stage 2 of Algorithms 1 and 6):
// iterate the stacked sets from last pushed to first, adding each node
// whose neighbourhood is still untouched. One round per popped phase is
// charged for the membership exchange. Exported for the baseline, which
// shares this stage.
func PopStack(g *graph.Graph, stack [][]bool, acc *dist.Accumulator) []bool {
	n := g.N()
	out := make([]bool, n)
	blocked := make([]bool, n)
	for i := len(stack) - 1; i >= 0; i-- {
		for v := 0; v < n; v++ {
			if stack[i][v] && !blocked[v] {
				out[v] = true
				for _, u := range g.Neighbors(v) {
					blocked[u] = true
				}
			}
		}
		acc.AddRounds(1)
	}
	return out
}

// Theorem1 is the deterministic-capable pipeline of Theorem 1:
// Boost∘GoodNodes, giving a (1+ε)Δ-approximation in O(MIS(n,Δ)/ε) rounds.
// Determinism is inherited from the MIS black box in cfg.MIS.
func Theorem1(g *graph.Graph, eps float64, cfg Config) (*BoostResult, error) {
	return Boost(g, eps, goodNodesInner{}, cfg)
}

// Theorem2 is the randomized pipeline of Theorem 2: Boost∘Sparsified,
// giving a (1+ε)Δ-approximation with high probability in
// poly(log log n)/ε-style rounds (the MIS black box only ever runs on
// O(log n)-degree sparsified subgraphs).
func Theorem2(g *graph.Graph, eps float64, cfg Config) (*BoostResult, error) {
	return Boost(g, eps, sparsifiedInner{}, cfg)
}
