package maxis

import (
	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/localapprox"
)

// LocalApprox adapts the internal/localapprox LOCAL-model pipeline —
// Miller–Peng–Xu low-diameter decomposition plus per-cluster exact solves
// — to the registry's Solver surface, so the (1+ε) expectation guarantee
// is reachable from the CLI, the server API and the parity goldens like
// every CONGEST pipeline. The simulator is not involved: the decomposition
// is computed host-side and billed at its LOCAL round cost (2·radius+2),
// with zero CONGEST messages (its messages would not fit in B bits —
// that's what makes it LOCAL).
func LocalApprox(g *graph.Graph, eps float64, cfg Config) (*Result, error) {
	cfg = cfg.Normalized(g)
	res, err := localapprox.Approximate(g, localapprox.Options{Epsilon: eps, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	var acc dist.Accumulator
	acc.Rounds = res.Rounds
	set := res.Set
	if set == nil {
		set = make([]bool, g.N())
	}
	return finish(g, set, cfg, acc, "localapprox", map[string]float64{
		"clusters":        float64(res.Clusters),
		"cut_nodes":       float64(res.CutNodes),
		"exact_clusters":  float64(res.ExactClusters),
		"greedy_clusters": float64(res.GreedyClusters),
	})
}
