package maxis

import (
	"errors"
	"math"
	"testing"

	"distmwis/internal/protocol"
)

// FuzzParamsNormalize hammers every registered solver's Normalize with
// arbitrary parameters. The contract under test: Normalize never panics,
// rejects parameters only with *protocol.ParamError, and is idempotent —
// re-normalizing an accepted Params must be a no-op (the server normalizes
// once at admission and again inside Solve).
func FuzzParamsNormalize(f *testing.F) {
	f.Add(uint8(0), 0.0, 0)
	f.Add(uint8(3), 0.5, 1)
	f.Add(uint8(7), 1.5, -4)
	f.Add(uint8(11), math.Inf(1), 1<<20)
	f.Add(uint8(13), math.NaN(), 0)
	solvers := protocol.Solvers()
	if len(solvers) == 0 {
		f.Fatal("no solvers registered")
	}
	f.Fuzz(func(t *testing.T, algIdx uint8, eps float64, alpha int) {
		s := solvers[int(algIdx)%len(solvers)]
		p, err := s.Normalize(protocol.Params{Eps: eps, Alpha: alpha})
		if err != nil {
			var perr *protocol.ParamError
			if !errors.As(err, &perr) {
				t.Fatalf("%s: non-ParamError rejection %T: %v", s.Name(), err, err)
			}
			return
		}
		p2, err := s.Normalize(p)
		if err != nil {
			t.Fatalf("%s: normalized params rejected on re-normalize: %v", s.Name(), err)
		}
		// Solvers that ignore ε pass it through untouched — including NaN —
		// so compare ε as bit patterns, not with !=.
		sameEps := p2.Eps == p.Eps || (math.IsNaN(p2.Eps) && math.IsNaN(p.Eps))
		if !sameEps || p2.Alpha != p.Alpha {
			t.Fatalf("%s: Normalize not idempotent: %+v then %+v", s.Name(), p, p2)
		}
	})
}
