package maxis_test

import (
	"fmt"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/mis"
)

// ExampleTheorem1 runs the deterministic (1+ε)Δ-approximation pipeline on
// a small conflict graph. With the GreedyByID black box the result is
// fully deterministic.
func ExampleTheorem1() {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 0)
	b.SetWeights([]int64{10, 2, 8, 2, 9, 2})
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	res, err := maxis.Theorem1(g, 0.5, maxis.Config{MIS: mis.GreedyByID{}})
	if err != nil {
		panic(err)
	}
	fmt.Println("weight:", res.Weight)
	fmt.Println("independent:", g.IsIndependentSet(res.Set))
	// Output:
	// weight: 27
	// independent: true
}

// ExampleGoodNodes shows the Theorem 8 building block and its
// deterministic guarantee.
func ExampleGoodNodes() {
	g := gen.Weighted(gen.Cycle(12), gen.UniformWeights(100), 7)
	res, err := maxis.GoodNodes(g, maxis.Config{Seed: 1})
	if err != nil {
		panic(err)
	}
	bound := g.TotalWeight() / (4 * int64(g.MaxDegree()+1))
	fmt.Println("guarantee met:", res.Weight >= bound)
	// Output:
	// guarantee met: true
}

// ExampleTheorem5 demonstrates the O(1/ε)-round unweighted pipeline.
func ExampleTheorem5() {
	g := gen.Cycle(256)
	res, err := maxis.Theorem5(g, 0.5, maxis.Config{Seed: 1})
	if err != nil {
		panic(err)
	}
	bound := float64(g.N()) / (1.5 * float64(g.MaxDegree()+1))
	fmt.Println("size ok:", float64(graph.SetSize(res.Set)) >= bound)
	fmt.Println("constant rounds:", res.Metrics.Rounds < 40)
	// Output:
	// size ok: true
	// constant rounds: true
}
