package maxis

import (
	"math"
	"testing"

	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/protocol"
)

func TestSparsifiedGuarantee(t *testing.T) {
	// Theorem 9: w(I) ≥ w(V)/(cΔ) w.h.p.; we assert the declared c = 16
	// across seeds on several dense graphs, where sparsification actually
	// bites (Δ ≫ log n).
	graphs := map[string]*graph.Graph{
		"clique":    gen.Weighted(gen.Clique(120), gen.UniformWeights(1000), 1),
		"gnp-dense": gen.Weighted(gen.GNP(300, 0.25, 2), gen.UniformWeights(100), 2),
		"bipartite": gen.Weighted(gen.CompleteBipartite(60, 80), gen.UniformWeights(500), 3),
		"skewed":    gen.Weighted(gen.GNP(250, 0.2, 4), gen.SkewedWeights(0.02, 1<<20), 4),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				res, err := Sparsified(g, Config{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if !g.IsIndependentSet(res.Set) {
					t.Fatal("dependent set")
				}
				bound := float64(g.TotalWeight()) / (16 * float64(g.MaxDegree()))
				if float64(res.Weight) < bound {
					t.Errorf("seed %d: weight %d below w(V)/(16Δ) = %.1f", seed, res.Weight, bound)
				}
			}
		})
	}
}

func TestSparsifierLemma3DegreeBound(t *testing.T) {
	// Lemma 3: Δ_H = O(log n). With λ = 2 the proof constant is 2λ·log₂ n
	// for the deterministic part plus the concentrated random part; assert
	// Δ_H ≤ 8λ·log₂ n, a generous constant.
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique", g: gen.Weighted(gen.Clique(400), gen.UniformWeights(100), 5)},
		{name: "gnp", g: gen.Weighted(gen.GNP(800, 0.1, 6), gen.PolyWeights(2), 6)},
		{name: "skew", g: gen.Weighted(gen.GNP(500, 0.15, 7), gen.SkewedWeights(0.01, 1<<24), 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Seed: 9}.Normalized(tc.g)
			inH, err := SampleSparsifier(tc.g, cfg, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			sub := tc.g.Induce(inH)
			lam := cfg.LambdaOrDefault()
			logn := math.Log2(float64(tc.g.N()))
			if got, limit := float64(sub.G.MaxDegree()), 8*lam*logn; got > limit {
				t.Errorf("Δ_H = %.0f > %.1f = 8λ·log n", got, limit)
			}
		})
	}
}

func TestSparsifierLemma5WeightBound(t *testing.T) {
	// Lemma 5: w(V_H) = Ω(min{w(V), w(V)·log n/Δ}). Assert a 1/8 constant.
	g := gen.Weighted(gen.Clique(300), gen.UniformWeights(1000), 8)
	cfg := Config{Seed: 4}.Normalized(g)
	inH, err := SampleSparsifier(g, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wH int64
	for v, in := range inH {
		if in {
			wH += g.Weight(v)
		}
	}
	wV := float64(g.TotalWeight())
	logn := math.Log2(float64(g.N()))
	want := math.Min(wV, wV*logn/float64(g.MaxDegree())) / 8
	if float64(wH) < want {
		t.Errorf("w(V_H) = %d below Lemma 5 bound %.1f", wH, want)
	}
}

func TestSparsifierKeepsHeavyNodes(t *testing.T) {
	// A node carrying half the total weight has w(v)/wmax(v) large, so its
	// sampling probability is ~1; it must essentially always survive.
	b := graph.NewBuilder(100)
	for u := 0; u < 100; u++ {
		for v := u + 1; v < 100; v++ {
			b.AddEdge(u, v)
		}
	}
	w := make([]int64, 100)
	for i := range w {
		w[i] = 1
	}
	w[0] = 1 << 30
	b.SetWeights(w)
	g := b.MustBuild()
	misses := 0
	for seed := uint64(1); seed <= 20; seed++ {
		inH, err := SampleSparsifier(g, Config{Seed: seed}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !inH[0] {
			misses++
		}
	}
	if misses > 2 {
		t.Errorf("dominant-weight node dropped in %d/20 samples", misses)
	}
}

func TestSparsifierIsolatedNodesKept(t *testing.T) {
	g := gen.Weighted(graph.NewBuilder(25).MustBuild(), gen.UniformWeights(10), 10)
	inH, err := SampleSparsifier(g, Config{Seed: 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, in := range inH {
		if !in {
			t.Errorf("isolated node %d dropped", v)
		}
	}
}

func TestSparsifiedRoundsIndependentOfDelta(t *testing.T) {
	// The whole point of Theorem 2/9: rounds depend on Δ_H = O(log n), not
	// on Δ. A clique (Δ = n-1) must not cost more than a sparse graph by
	// more than a small factor.
	dense := gen.Weighted(gen.Clique(256), gen.UniformWeights(100), 11)
	sparse := gen.Weighted(gen.GNP(256, 0.03, 12), gen.UniformWeights(100), 12)
	rd, err := Sparsified(dense, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Sparsified(sparse, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Metrics.Rounds > 3*rs.Metrics.Rounds+15 {
		t.Errorf("dense rounds %d ≫ sparse rounds %d: sparsification not flattening Δ", rd.Metrics.Rounds, rs.Metrics.Rounds)
	}
}

func TestSparsifierAccumulatorCharged(t *testing.T) {
	g := gen.Weighted(gen.GNP(100, 0.2, 13), gen.UniformWeights(50), 13)
	cfg := Config{Seed: 2}.Normalized(g)
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator
	if _, err := SampleSparsifier(g, cfg, seeds, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Rounds != 3 {
		t.Errorf("sampling protocol charged %d rounds, want 3", acc.Rounds)
	}
	if acc.Bits == 0 {
		t.Error("no bits charged")
	}
}
