package maxis

import (
	"fmt"
	"math"
	"math/rand/v2"

	"distmwis/internal/congest"
	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
	"distmwis/internal/wire"
)

// This file ports the ultra-cheap end of the portfolio: the one-round and
// few-round *weighted* algorithms of Boppana, Halldórsson and Rawitz
// (arXiv:1803.00786). Unlike the oneround ranking baseline [17] — uniform
// ranks, so heavy nodes win no more often than light ones — each node v
// draws an exponential race time X_v = Exp(1)/w(v) and joins when it is
// the strict minimum of its closed neighbourhood. P[v wins] =
// w(v)/w(N⁺(v)), so
//
//	E[w(I)] = Σ_v w(v)²/w(N⁺(v)) ≥ w(V)²/Σ_v w(N⁺(v)) ≥ w(V)/(Δ+1)
//
// (Cauchy–Schwarz, then Σ_v w(N⁺(v)) ≤ (Δ+1)·w(V)). The guarantee holds in
// expectation only — the paper's Section 1 variance caveat applies — which
// is exactly why the planner treats these as the tight-budget rungs, not
// the quality tier.
//
// BHRFewRound repeats the race on the residual graph (winners keep their
// seats, winners and their neighbours retire), adding at least a
// 1/(Δ+1)-fraction of the remaining active weight per phase.

// bhrKeyFull is the fixed-point width of a race key before bandwidth
// truncation: 46 bits of Exp(1)/w plus 8 tie-break bits.
const (
	bhrFracBits = 40 // fixed-point fractional bits of the race time
	bhrKeyFull  = 46 + 8
	bhrTieBits  = 8
)

// bhrKeyBits is the on-wire key width: the full key truncated to one
// CONGEST message (B = 0 means LOCAL, no truncation).
func bhrKeyBits(bandwidth int) int {
	if bandwidth > 0 && bandwidth < bhrKeyFull {
		return bandwidth
	}
	return bhrKeyFull
}

// bhrKey draws one race key: the fixed-point exponential race time with
// tie-break entropy in the low bits, truncated to bits. Lower key wins;
// exactly equal keys make both endpoints abstain, so quantisation can only
// cost weight, never independence.
func bhrKey(rng *rand.Rand, tie uint64, w int64, bits int) uint64 {
	if w <= 0 {
		w = 1
	}
	x := rng.ExpFloat64() / float64(w)
	fp := uint64(math.Min(x*float64(uint64(1)<<bhrFracBits), float64(uint64(1)<<46-1)))
	key := fp<<bhrTieBits | (tie & (1<<bhrTieBits - 1))
	if bits < bhrKeyFull {
		key >>= uint(bhrKeyFull - bits)
	}
	return key
}

// bhrProcess is the one-round race: broadcast the key, then join iff it is
// strictly below every neighbour's. Under faults a missing or mangled
// (CRC-dropped) key makes the node abstain — safety over liveness, the
// same posture as rankingProcess.
type bhrProcess struct {
	info    congest.NodeInfo
	key     uint64
	bits    int
	nbrKeys []uint64
	nbrSeen []bool
	joined  bool
	w       wire.Writer
	out     []*congest.Message
}

var _ congest.Process = (*bhrProcess)(nil)

func (p *bhrProcess) Init(info congest.NodeInfo) {
	p.info = info
	p.bits = bhrKeyBits(info.Bandwidth)
	// The tie-break entropy comes from the same private stream as the race
	// draw, so the whole key is one deterministic function of the node's
	// seed — bit-identical across engines.
	tie := info.Rand.Uint64()
	p.key = bhrKey(info.Rand, tie, info.Weight, p.bits)
	p.nbrKeys = make([]uint64, info.Degree)
	p.nbrSeen = make([]bool, info.Degree)
	p.out = make([]*congest.Message, info.Degree)
}

func (p *bhrProcess) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	if round == 1 {
		p.w.Reset()
		p.w.WriteBits(p.key, p.bits)
		m := congest.NewPooledMessage(&p.w)
		for i := range p.out {
			p.out[i] = m
		}
		return p.out, false
	}
	// Round 2: absorb the keys sent in round 1 and decide.
	for port, m := range recv {
		if m == nil {
			continue
		}
		r := m.Reader()
		if r.Remaining() != p.bits {
			continue // malformed frame (fault injection)
		}
		k, err := r.ReadBits(p.bits)
		if err != nil {
			continue
		}
		p.nbrKeys[port] = k
		p.nbrSeen[port] = true
	}
	p.joined = true
	for port := 0; port < p.info.Degree; port++ {
		if !p.nbrSeen[port] || p.nbrKeys[port] <= p.key {
			// Unknown or non-greater neighbour key: joining could collide.
			p.joined = false
			break
		}
	}
	return nil, true
}

func (p *bhrProcess) Output() any { return p.joined }

// BHROneRound is the single-phase weighted race: one communication round,
// E[w(I)] ≥ w(V)/(Δ+1).
func BHROneRound(g *graph.Graph, cfg Config) (*Result, error) {
	return BHR(g, 1, cfg)
}

// BHRFewRoundPhases is the registered bhr-fewround phase count. Three
// phases recover most of the gap to the Δ-approximations at a tiny
// fraction of their rounds (experiment E21 measures the trade-off).
const BHRFewRoundPhases = 3

// BHR runs phases rounds of the weighted race. Winners of each phase join
// the output set; winners and their neighbours leave the residual graph,
// so the phases' winners are independent by construction — within a phase
// by the strict-minimum rule, across phases by retirement.
func BHR(g *graph.Graph, phases int, cfg Config) (*Result, error) {
	if phases < 1 {
		return nil, fmt.Errorf("maxis: BHR needs at least one phase, got %d", phases)
	}
	cfg = cfg.Normalized(g)
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator
	n := g.N()
	out := make([]bool, n)
	active := make([]bool, n)
	for v := 0; v < n; v++ {
		active[v] = true
	}
	ran := 0
	for ph := 0; ph < phases; ph++ {
		anyActive := false
		for v := 0; v < n && !anyActive; v++ {
			anyActive = active[v]
		}
		if !anyActive {
			break
		}
		ran++
		set, _, err := dist.RunOnInduced(g, active, func() congest.Process { return &bhrProcess{} }, &acc, cfg.Phase("race").Opts(seeds.Next())...)
		if err != nil {
			return nil, fmt.Errorf("maxis: bhr phase %d: %w", ph+1, err)
		}
		for v := 0; v < n; v++ {
			if set[v] {
				out[v] = true
				active[v] = false
				for _, u := range g.Neighbors(v) {
					active[u] = false
				}
			}
		}
		// Winner announcement: one round for members to retire their
		// neighbourhoods before the next race.
		acc.AddRounds(1)
	}
	return finish(g, out, cfg, acc, "bhr", map[string]float64{
		"phases": float64(ran),
	})
}
