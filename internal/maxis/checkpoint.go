package maxis

// Checkpoint/Restore implement the reliable transport's Checkpointer
// interface (internal/reliable) for the ranking process: a snapshot is a
// value copy of the struct with its per-neighbour slices deep-copied, and
// Restore copies back out of the snapshot so the same snapshot can serve
// repeated crashes. The embedded NodeInfo's Rand pointer deliberately stays
// shared — the transport snapshots and restores the underlying randomness
// stream itself.

func (p *rankingProcess) Checkpoint() any {
	s := *p
	s.nbrRanks = append([]uint64(nil), p.nbrRanks...)
	s.nbrBits = append([]int(nil), p.nbrBits...)
	s.nbrSeen = append([]uint64(nil), p.nbrSeen...)
	return &s
}

func (p *rankingProcess) Restore(state any) {
	s := state.(*rankingProcess)
	nbrRanks := append([]uint64(nil), s.nbrRanks...)
	nbrBits := append([]int(nil), s.nbrBits...)
	nbrSeen := append([]uint64(nil), s.nbrSeen...)
	*p = *s
	p.nbrRanks = nbrRanks
	p.nbrBits = nbrBits
	p.nbrSeen = nbrSeen
}
