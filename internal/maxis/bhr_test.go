package maxis

import (
	"testing"

	"distmwis/internal/graph/gen"
)

func TestBHROneRoundIndependence(t *testing.T) {
	for name, g := range propertySuite(t) {
		for _, seed := range []uint64{1, 2, 3, 11} {
			res, err := BHROneRound(g, Config{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if !g.IsIndependentSet(res.Set) {
				t.Fatalf("%s seed %d: dependent set", name, seed)
			}
		}
	}
}

func TestBHRTruncatedKeysKeepIndependence(t *testing.T) {
	// Bandwidth truncation shortens every race key identically; equal
	// truncated keys make both endpoints abstain, so independence survives
	// any key width — only weight is at risk.
	g := gen.Weighted(gen.GNP(80, 0.1, 4), gen.PolyWeights(2), 4)
	for _, factor := range []int{1, 2, 4} {
		res, err := BHROneRound(g, Config{Seed: 5, BandwidthFactor: factor})
		if err != nil {
			t.Fatalf("factor %d: %v", factor, err)
		}
		if !g.IsIndependentSet(res.Set) {
			t.Fatalf("factor %d: dependent set under truncated keys", factor)
		}
	}
}

// TestBHRExpectationBound samples the one-round race over many seeds and
// checks the mean against E[w(I)] ≥ w(V)/(Δ+1). The guarantee holds only in
// expectation (the planner's ExpectationOnly flag), so the test asserts the
// empirical mean clears 85% of the bound — far enough below to be stable,
// close enough to catch a broken race.
func TestBHRExpectationBound(t *testing.T) {
	g := gen.Weighted(gen.GNP(120, 0.06, 7), gen.PolyWeights(2), 7)
	const trials = 200
	var sum float64
	for seed := uint64(1); seed <= trials; seed++ {
		res, err := BHROneRound(g, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.Weight)
	}
	mean := sum / trials
	bound := float64(g.TotalWeight()) / float64(g.MaxDegree()+1)
	if mean < 0.85*bound {
		t.Errorf("mean weight %.1f below 0.85·w(V)/(Δ+1) = %.1f", mean, 0.85*bound)
	}
}

func TestBHRFewRoundBeatsOneRound(t *testing.T) {
	// Re-racing the residual graph can only add weight: the few-round mean
	// must dominate the one-round mean on the same seeds.
	g := gen.Weighted(gen.GNP(100, 0.08, 3), gen.PolyWeights(2), 3)
	const trials = 50
	var one, few float64
	for seed := uint64(1); seed <= trials; seed++ {
		r1, err := BHROneRound(g, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rf, err := BHR(g, BHRFewRoundPhases, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsIndependentSet(rf.Set) {
			t.Fatalf("seed %d: few-round dependent set", seed)
		}
		if rf.Weight < r1.Weight {
			t.Fatalf("seed %d: few-round weight %d below its own first race %d", seed, rf.Weight, r1.Weight)
		}
		one += float64(r1.Weight)
		few += float64(rf.Weight)
	}
	if few <= one {
		t.Errorf("few-round mean %.1f did not beat one-round mean %.1f", few/trials, one/trials)
	}
}
