package maxis

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

func TestRankingIndependence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"cycle":  gen.Cycle(200),
		"torus":  gen.Torus(10, 10),
		"gnp":    gen.GNP(300, 0.02, 1),
		"clique": gen.Clique(40),
		"path":   gen.Path(50),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				res, err := Ranking(g, 2, Config{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if !g.IsIndependentSet(res.Set) {
					t.Fatalf("seed %d: dependent set", seed)
				}
			}
		})
	}
}

func TestRankingTheorem11SizeGuarantee(t *testing.T) {
	// |I| ≥ n/(8(Δ+1)) w.h.p. for Δ ≤ n/(256·ln(1/p)) − 1. On a cycle
	// (Δ = 2, n = 2048), failure probability is astronomically small.
	g := gen.Cycle(2048)
	want := g.N() / (8 * (g.MaxDegree() + 1))
	for seed := uint64(1); seed <= 10; seed++ {
		res, err := Ranking(g, 2, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if got := graph.SetSize(res.Set); got < want {
			t.Errorf("seed %d: |I| = %d < n/(8(Δ+1)) = %d", seed, got, want)
		}
	}
}

func TestRankingRoundsConstant(t *testing.T) {
	// O(c) rounds regardless of n: ranks are (c+2)·log n + O(1) bits,
	// shipped over B = 8·log n bit messages.
	for _, n := range []int{64, 512, 4096} {
		g := gen.Cycle(n)
		res, err := Ranking(g, 2, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.Rounds > 4 {
			t.Errorf("n=%d: ranking took %d rounds, want O(c) ≤ 4", n, res.Metrics.Rounds)
		}
	}
}

func TestRankingChunksUnderTightBandwidth(t *testing.T) {
	// With B = 1·log n, the (c+2)·log n rank needs c+2+ chunks; the
	// protocol must still work and take more (but still O(c)) rounds.
	g := gen.Cycle(256)
	res, err := Ranking(g, 3, Config{Seed: 2, BandwidthFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(res.Set) {
		t.Fatal("dependent set under tight bandwidth")
	}
	if res.Metrics.Rounds < 5 {
		t.Errorf("expected ≥5 chunked rounds with B=log n, got %d", res.Metrics.Rounds)
	}
	if res.Metrics.Rounds > 12 {
		t.Errorf("chunked ranking took %d rounds, want ~(c+2)·(bits ratio)", res.Metrics.Rounds)
	}
	// Against a wide-bandwidth run, the set distribution should match in
	// spirit; at minimum sizes must agree within noise (same guarantee).
	wide, err := Ranking(g, 3, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if graph.SetSize(wide.Set) == 0 || graph.SetSize(res.Set) == 0 {
		t.Error("empty sets")
	}
}

func TestOneRoundBaseline(t *testing.T) {
	g := gen.Weighted(gen.GNP(200, 0.05, 3), gen.UniformWeights(100), 3)
	res, err := OneRound(g, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(res.Set) {
		t.Fatal("dependent set")
	}
	if res.Metrics.Rounds > 3 {
		t.Errorf("one-round baseline took %d rounds", res.Metrics.Rounds)
	}
}

func TestOneRoundExpectationCaroWei(t *testing.T) {
	// [17]: E[w(I)] ≥ w(V)/(Δ+1). Average over many seeds and compare with
	// slack.
	g := gen.Weighted(gen.GNP(150, 0.08, 4), gen.UniformWeights(100), 4)
	const trials = 200
	var sum float64
	for seed := uint64(1); seed <= trials; seed++ {
		res, err := OneRound(g, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.Weight)
	}
	mean := sum / trials
	bound := float64(g.TotalWeight()) / float64(g.MaxDegree()+1)
	if mean < 0.9*bound {
		t.Errorf("empirical mean %.1f below 0.9·w(V)/(Δ+1) = %.1f", mean, 0.9*bound)
	}
}

func TestSeqBoppannaBasics(t *testing.T) {
	g := gen.GNP(120, 0.05, 5)
	rng := rand.New(rand.NewPCG(7, 7))
	set, trace := SeqBoppanna(g, rng)
	if !g.IsIndependentSet(set) {
		t.Fatal("dependent set")
	}
	if len(trace) != g.N() {
		t.Fatalf("trace length %d, want n", len(trace))
	}
	if trace[len(trace)-1] != graph.SetSize(set) {
		t.Error("trace end disagrees with final set size")
	}
	if !sort.IntsAreSorted(trace) {
		t.Error("trace must be non-decreasing")
	}
}

// canonical encodes a set for distribution comparison.
func canonical(set []bool) string {
	s := ""
	for v, in := range set {
		if in {
			s += fmt.Sprintf("%d,", v)
		}
	}
	return s
}

func TestProposition3DistributionEquivalence(t *testing.T) {
	// SeqBoppanna and the distributed Boppanna (Ranking) must induce the
	// same distribution over independent sets up to tiny TV distance
	// (Proposition 3). Compare empirically on P3, where the exact
	// distribution is {0,2}: 1/3, {1}: 1/3, {0}: 1/6, {2}: 1/6.
	g := gen.Path(3)
	const trials = 6000
	countSeq := map[string]int{}
	countDist := map[string]int{}
	rng := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < trials; i++ {
		set, _ := SeqBoppanna(g, rng)
		countSeq[canonical(set)]++
		res, err := Ranking(g, 2, Config{Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		countDist[canonical(res.Set)]++
	}
	keys := map[string]bool{}
	for k := range countSeq {
		keys[k] = true
	}
	for k := range countDist {
		keys[k] = true
	}
	var tv float64
	for k := range keys {
		p := float64(countSeq[k]) / trials
		q := float64(countDist[k]) / trials
		if p > q {
			tv += p - q
		} else {
			tv += q - p
		}
	}
	tv /= 2
	if tv > 0.05 {
		t.Errorf("total variation distance %.3f between SeqBoppanna and Boppanna, want ≈0", tv)
	}
	// And against the exact distribution.
	exactDist := map[string]float64{"0,2,": 1.0 / 3, "1,": 1.0 / 3, "0,": 1.0 / 6, "2,": 1.0 / 6}
	for k, want := range exactDist {
		got := float64(countSeq[k]) / trials
		if got < want-0.04 || got > want+0.04 {
			t.Errorf("SeqBoppanna P[%s] = %.3f, want %.3f", k, got, want)
		}
	}
}

func TestSeqBoppannaMartingaleConcentration(t *testing.T) {
	// Theorem 11's proof: after k = n/(2(Δ+1)) draws, |I_k| ≥ k/4 except
	// with probability ≤ exp(−k/128) (Proposition 4 via Azuma). Check the
	// empirical failure frequency against the bound on a cycle.
	g := gen.Cycle(1024)
	k := g.N() / (2 * (g.MaxDegree() + 1))
	const trials = 300
	fails := 0
	for seed := uint64(1); seed <= trials; seed++ {
		rng := rand.New(rand.NewPCG(seed, 3))
		_, trace := SeqBoppanna(g, rng)
		if trace[k-1] < k/4 {
			fails++
		}
	}
	bound := float64(trials) // exp(-k/128) * trials, computed below
	boundProb := 1.0
	for i := 0; i < k/128; i++ {
		boundProb /= 2.718281828
	}
	bound = boundProb * trials
	if float64(fails) > bound+3 { // +3 slack for sampling noise at tiny bounds
		t.Errorf("%d/%d trials fell below k/4; Proposition 4 bound allows ≈%.2f", fails, trials, bound)
	}
}

func TestTheorem5Guarantee(t *testing.T) {
	// Unweighted, Δ ≤ n/log n: |I| ≥ n/((1+ε)(Δ+1)).
	graphs := map[string]*graph.Graph{
		"cycle": gen.Cycle(512),
		"torus": gen.Torus(16, 16),
		"gnp":   gen.GNP(600, 0.005, 6),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			eps := 0.5
			res, err := Theorem5(g, eps, Config{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			want := float64(g.N()) / ((1 + eps) * float64(g.MaxDegree()+1))
			if float64(graph.SetSize(res.Set)) < want {
				t.Errorf("|I| = %d < n/((1+ε)(Δ+1)) = %.1f", graph.SetSize(res.Set), want)
			}
			if res.Extra["degree_precondition_ok"] != 1 {
				t.Error("degree precondition should hold for this instance")
			}
		})
	}
}

func TestTheorem5RejectsWeighted(t *testing.T) {
	g := gen.Weighted(gen.Cycle(20), gen.UniformWeights(10), 7)
	if _, err := Theorem5(g, 0.5, Config{}); err == nil {
		t.Error("expected rejection of weighted input")
	}
}

func TestTheorem5RoundsIndependentOfN(t *testing.T) {
	// O(1/ε) rounds: round count must not grow with n.
	r512, err := Theorem5(gen.Cycle(512), 0.5, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8192, err := Theorem5(gen.Cycle(8192), 0.5, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r8192.Metrics.Rounds > r512.Metrics.Rounds+8 {
		t.Errorf("rounds grew with n: %d (n=8192) vs %d (n=512)", r8192.Metrics.Rounds, r512.Metrics.Rounds)
	}
}

func TestRankSpaceSaturation(t *testing.T) {
	if got := rankSpace(4, 0); got != 100*4*4 {
		t.Errorf("rankSpace(4,0) = %d, want 1600", got)
	}
	// Saturation must not overflow.
	if got := rankSpace(1<<20, 10); got != 1<<61 {
		t.Errorf("rankSpace huge = %d, want 2^61", got)
	}
}

func TestRankingCongestWithHugeIDs(t *testing.T) {
	// Random O(log n)-bit IDs from a big space must still fit CONGEST.
	g := gen.RandomIDs(gen.Cycle(128), 1<<28, 9)
	res, err := Ranking(g, 2, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(res.Set) {
		t.Fatal("dependent set")
	}
	_ = congest.Bandwidth // silence potential unused import if edited
}
