package maxis

import (
	"testing"

	"distmwis/internal/fault"
	"distmwis/internal/graph/gen"
)

// TestReliableRecoversFaultFreeWeight pins the PR's headline guarantee at
// the pipeline level: with the ARQ transport installed, a lossy/corrupting
// schedule yields the exact fault-free execution, so the returned set (not
// just its weight) matches the fault-free run. Passive fault mode has no
// such guarantee — it merely degrades gracefully.
func TestReliableRecoversFaultFreeWeight(t *testing.T) {
	g := gen.Weighted(gen.GNP(256, 8.0/256, 5), gen.PolyWeights(2), 6)
	base, err := GoodNodes(g, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := GoodNodes(g, Config{
		Seed:     7,
		Faults:   fault.Schedule{Seed: 1, Loss: 0.2, Corrupt: 0.1},
		Reliable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Weight < (base.Weight*99+99)/100 {
		t.Fatalf("reliable run recovered %d of fault-free weight %d (<99%%)", rel.Weight, base.Weight)
	}
	for v := range base.Set {
		if base.Set[v] != rel.Set[v] {
			t.Fatalf("reliable run diverged from fault-free run at node %d", v)
		}
	}
	if rel.Metrics.Retransmits == 0 {
		t.Error("lossy schedule but no retransmissions recorded")
	}
	if rel.Metrics.DeadPorts != 0 {
		t.Errorf("message-fault-only schedule declared %d ports dead", rel.Metrics.DeadPorts)
	}
}

// TestRepairHealsPassiveFaultRun: under a crash-stop schedule the passive
// fault mode may return conflicting joins, which finish() normally rejects;
// with cfg.Repair the monitor withdraws the lower-weight endpoints and the
// run succeeds with a safe set.
func TestRepairHealsPassiveFaultRun(t *testing.T) {
	g := gen.Weighted(gen.GNP(128, 0.08, 15), gen.PolyWeights(1), 16)
	cfg := Config{
		Seed:   11,
		Faults: fault.Schedule{Seed: 3, Loss: 0.3, Corrupt: 0.2, CrashFrac: 0.2, CrashAt: 2},
		Repair: true,
	}
	res, err := GoodNodes(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(res.Set) {
		t.Fatal("repaired set not independent")
	}
}
