package maxis

import (
	"fmt"
	"math/bits"

	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
)

// BarYehuda reimplements the prior state of the art the paper improves on:
// the Δ-approximation of Bar-Yehuda, Censor-Hillel, Ghaffari and
// Schwartzman [8] (PODC 2017), which runs in O(MIS(n,Δ) · log W) rounds.
//
// The algorithm is the local-ratio / MIS scheme of [8] organised by weight
// scales. For j = ⌈log₂ W⌉ down to 0:
//
//   - run the black-box MIS on the subgraph induced by nodes whose current
//     weight is at least 2^j;
//   - push the MIS I_j and apply the Algorithm 1 weight reduction
//     w'(v) = w(v) − w(N⁺(v) ∩ I_j).
//
// Maximality forces every scale-j node into I_j or adjacent to a member of
// weight ≥ 2^j, so the maximum weight at least halves per scale: after the
// j = 0 scale all (integer) weights are ≤ 0 and the stack pops into a
// Δ-approximation by the Theorem 6 local-ratio argument (each I_j is a
// Δ-approximation with respect to its reduced weight function, exactly as
// in Proposition 1).
//
// The log W factor in the round count — W can be poly(n) — is precisely the
// overhead Theorems 1 and 2 remove; experiments E4/E5 measure it.
func BarYehuda(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.Normalized(g)
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator
	n := g.N()
	maxW := g.MaxWeight()
	if maxW < 0 {
		return nil, fmt.Errorf("maxis: BarYehuda requires non-negative weights")
	}
	cur := g.Weights()
	var stack [][]bool
	var stackValue int64
	scales := 0

	active := make([]bool, n) // reused across scales; fully rewritten below
	for j := bits.Len64(uint64(maxW)); j >= 0 && maxW > 0; j-- {
		threshold := int64(1) << uint(j)
		anyActive := false
		for v := 0; v < n; v++ {
			active[v] = cur[v] >= threshold
			anyActive = anyActive || active[v]
		}
		if !anyActive {
			continue
		}
		scales++
		// All ⌈log W⌉ scales share the "scale" label, mirroring boost's
		// unindexed "push".
		set, _, err := dist.RunOnInduced(g, active, cfg.MISAlg().NewProcess, &acc, cfg.Phase("scale").Opts(seeds.Next())...)
		if err != nil {
			return nil, fmt.Errorf("maxis: baseline scale 2^%d: %w", j, err)
		}
		for v := 0; v < n; v++ {
			if set[v] {
				stackValue += cur[v]
			}
		}
		stack = append(stack, set)
		applyReduction(g, cur, set)
		acc.AddRounds(1)
	}
	// The residual-weight invariant relies on MIS maximality, which fault
	// injection legitimately breaks (a truncated MIS phase can leave heavy
	// nodes uncovered); without faults a violation is a real bug.
	if !cfg.Faults.Enabled() {
		for v := 0; v < n; v++ {
			if cur[v] > 0 {
				return nil, fmt.Errorf("maxis: baseline left positive weight at node %d (bug)", v)
			}
		}
	}
	set := PopStack(g, stack, &acc)
	res, err := finish(g, set, cfg, acc, "bar-yehuda", map[string]float64{
		"scales":      float64(scales),
		"stack_value": float64(stackValue),
		"log_w":       float64(bits.Len64(uint64(maxW))),
	})
	if err != nil {
		return nil, err
	}
	if res.Weight < stackValue {
		return nil, fmt.Errorf("maxis: stack property violated in baseline (bug)")
	}
	return res, nil
}
