package maxis

import (
	"testing"

	"distmwis/internal/reliable"
)

// The ranking process must satisfy the reliable transport's Checkpointer
// interface so crash recovery can snapshot it.
var _ reliable.Checkpointer = (*rankingProcess)(nil)

func TestRankingCheckpointIsolation(t *testing.T) {
	p := &rankingProcess{rank: 42, nbrRanks: []uint64{1, 2}, nbrBits: []int{3, 4}}
	snap := p.Checkpoint()
	p.rank = 99
	p.nbrRanks[0] = 8
	p.Restore(snap)
	if p.rank != 42 || p.nbrRanks[0] != 1 {
		t.Errorf("restore did not rewind state: %+v", p)
	}
	p.nbrBits[1] = 0
	p.Restore(snap)
	if p.nbrBits[1] != 4 {
		t.Error("snapshot aliased live state")
	}
}
