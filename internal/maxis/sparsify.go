package maxis

import (
	"math"

	"distmwis/internal/congest"
	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
	"distmwis/internal/wire"
)

// Sparsified implements Theorem 9: a poly(log log n)-round CONGEST
// algorithm returning an independent set of weight Ω(w(V)/Δ).
//
// Step 1 (Section 4.2) samples a subgraph H where node v joins with
// probability p(v) = min{λ·log n·(1/δ(v) + w(v)/wmax(v)), 1}: δ(v) is the
// maximum degree and wmax(v) the maximum weighted degree in v's inclusive
// neighbourhood. Lemma 3 gives Δ_H = O(log n) and Lemma 5 gives
// w(V_H) = Ω(min{w(V), w(V)·log n / Δ}) with high probability.
//
// Step 2 runs the Theorem 8 good-nodes algorithm on H; because
// Δ_H = O(log n), its MIS black box runs on an O(log n)-degree graph, which
// is what yields the paper's poly(log log n) round bound with the
// Rozhoň–Ghaffari MIS.
func Sparsified(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.Normalized(g)
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator
	set, ext, err := sparsifiedRun(g, cfg, seeds, &acc)
	if err != nil {
		return nil, err
	}
	return finish(g, set, cfg, acc, "sparsified", ext)
}

func sparsifiedRun(g *graph.Graph, cfg Config, seeds *protocol.SeedSeq, acc *dist.Accumulator) ([]bool, map[string]float64, error) {
	if g.N() == 0 {
		return nil, nil, nil
	}
	inH, err := SampleSparsifier(g, cfg, seeds, acc)
	if err != nil {
		return nil, nil, err
	}
	sub := g.Induce(inH)
	acc.AddRounds(1) // membership-flag exchange
	ext := map[string]float64{
		"sparsifier_nodes":     float64(sub.G.N()),
		"sparsifier_max_deg":   float64(sub.G.MaxDegree()),
		"sparsifier_weight":    float64(sub.G.TotalWeight()),
		"sparsifier_weight_in": float64(g.TotalWeight()),
	}
	if sub.G.N() == 0 {
		return make([]bool, g.N()), ext, nil
	}
	set, _, err := goodNodesRun(sub.G, cfg, seeds, acc)
	if err != nil {
		return nil, nil, err
	}
	return sub.LiftSet(set), ext, nil
}

// SampleSparsifier runs the three-round sampling protocol of Section 4.2
// and returns the membership vector of H. Exported for the Lemma 3 / Lemma 5
// experiments, which study the sparsifier itself.
func SampleSparsifier(g *graph.Graph, cfg Config, seeds *protocol.SeedSeq, acc *dist.Accumulator) ([]bool, error) {
	cfg = cfg.Normalized(g)
	if seeds == nil {
		seeds = protocol.NewSeedSeq(cfg.Seed)
	}
	if acc == nil {
		acc = &dist.Accumulator{}
	}
	lam := cfg.LambdaOrDefault()
	res, err := dist.RunPhase(g, func() congest.Process { return &sparsifySample{lambda: lam} }, acc, cfg.Phase("sparsify/sample").Opts(seeds.Next())...)
	if err != nil {
		return nil, err
	}
	return congest.BoolOutputs(res), nil
}

// sparsifySample is the sampling protocol:
//
//	round 1: broadcast (degree, weight);
//	round 2: compute δ(v) and the weighted degree w(N(v)); broadcast w(N(v));
//	round 3: compute wmax(v), draw membership with probability p(v).
//
// Weighted degrees can reach n·W, so they are shipped with the wider
// maxSum bound — still O(log n) bits since W = poly(n).
type sparsifySample struct {
	info    congest.NodeInfo
	lambda  float64
	deltaV  int   // max degree in N+(v)
	wDeg    int64 // w(N(v))
	inH     bool
	maxSumW int64
}

func (p *sparsifySample) Init(info congest.NodeInfo) {
	p.info = info
	p.maxSumW = saturatingMul(int64(info.NUpper), info.MaxWeight)
}

// saturatingMul bounds the weighted-degree field so the zig-zag width stays
// valid; callers must keep n·W < 2^61 (documented in package congest) for
// exact accounting, which all generators in this repository respect.
func saturatingMul(a, b int64) int64 {
	const limit = int64(1) << 61
	if a > 0 && b > limit/a {
		return limit
	}
	return a * b
}

func (p *sparsifySample) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	switch round {
	case 1:
		var w wire.Writer
		w.WriteUint(uint64(p.info.Degree), uint64(p.info.NUpper))
		w.WriteInt(p.info.Weight, p.info.MaxWeight)
		return broadcast(congest.NewPooledMessage(&w), p.info.Degree), false

	case 2:
		p.deltaV = p.info.Degree
		for _, m := range recv {
			if m == nil {
				continue
			}
			r := m.Reader()
			deg, e1 := r.ReadUint(uint64(p.info.NUpper))
			nw, e2 := r.ReadInt(p.info.MaxWeight)
			if e1 != nil || e2 != nil {
				continue // garbled under faults: treat as missing
			}
			if int(deg) > p.deltaV {
				p.deltaV = int(deg)
			}
			p.wDeg += nw
		}
		var w wire.Writer
		w.WriteInt(p.wDeg, p.maxSumW)
		return broadcast(congest.NewPooledMessage(&w), p.info.Degree), false

	default: // round 3
		wmax := p.wDeg
		for _, m := range recv {
			if m == nil {
				continue
			}
			nwd, err := m.Reader().ReadInt(p.maxSumW)
			if err != nil {
				continue // garbled under faults: treat as missing
			}
			if nwd > wmax {
				wmax = nwd
			}
		}
		p.inH = p.draw(wmax)
		return nil, true
	}
}

// draw evaluates p(v) = min{λ·log₂ n·(1/δ(v) + w(v)/wmax(v)), 1}.
func (p *sparsifySample) draw(wmax int64) bool {
	if p.info.Degree == 0 {
		return true // isolated nodes always keep themselves
	}
	logn := math.Log2(float64(p.info.NUpper))
	if logn < 1 {
		logn = 1
	}
	inv := 1 / float64(p.deltaV)
	frac := 0.0
	if wmax > 0 && p.info.Weight > 0 {
		frac = float64(p.info.Weight) / float64(wmax)
	}
	prob := p.lambda * logn * (inv + frac)
	if prob >= 1 {
		return true
	}
	return p.info.Rand.Float64() < prob
}

func (p *sparsifySample) Output() any { return p.inH }

func broadcast(m *congest.Message, deg int) []*congest.Message {
	out := make([]*congest.Message, deg)
	for i := range out {
		out[i] = m
	}
	return out
}

// sparsifiedInner adapts Sparsified as a boosting black box. The constant
// follows the Theorem 9 chain: H keeps a Θ(min{1, log n/Δ}) weight fraction
// and GoodNodes extracts a 1/(4(Δ_H+1)) fraction of it; the declared c = 16
// is the constant the boosting loop budgets phases for (t = c/ε).
type sparsifiedInner struct{}

func (sparsifiedInner) Name() string { return "sparsified" }

func (sparsifiedInner) FactorC() int { return 16 }

func (sparsifiedInner) Run(g *graph.Graph, cfg Config, seeds *protocol.SeedSeq, acc *dist.Accumulator) ([]bool, error) {
	set, _, err := sparsifiedRun(g, cfg, seeds, acc)
	return set, err
}

var _ Inner = sparsifiedInner{}
