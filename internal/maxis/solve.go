package maxis

import (
	"fmt"
	"sort"

	"distmwis/internal/graph"
)

// Solve dispatches to the named algorithm, normalising the per-algorithm
// result types to *Result. It is the entry point used by the serving layer
// (internal/server) and keeps the name set in one place; cmd/maxis layers
// its guarantee strings on top of the same names.
//
// eps is consumed by the boosted pipelines (theorem1/2/3/5) and ignored by
// the rest; alpha is the arboricity bound of theorem3 (0 selects the
// degeneracy-based Theorem3Auto).
func Solve(name string, g *graph.Graph, eps float64, alpha int, cfg Config) (*Result, error) {
	switch name {
	case "goodnodes":
		return GoodNodes(g, cfg)
	case "sparsified":
		return Sparsified(g, cfg)
	case "theorem1":
		res, err := Theorem1(g, eps, cfg)
		if err != nil {
			return nil, err
		}
		return &res.Result, nil
	case "theorem2":
		res, err := Theorem2(g, eps, cfg)
		if err != nil {
			return nil, err
		}
		return &res.Result, nil
	case "theorem3":
		// alpha <= 0 falls back to the degeneracy bound inside Arboricity,
		// matching the cmd/maxis -alpha default.
		res, err := Theorem3(g, alpha, eps, cfg)
		if err != nil {
			return nil, err
		}
		return &res.Result, nil
	case "theorem5":
		res, err := Theorem5(g, eps, cfg)
		if err != nil {
			return nil, err
		}
		return &res.Result, nil
	case "ranking":
		return Ranking(g, 2, cfg)
	case "oneround":
		return OneRound(g, cfg)
	case "baseline":
		return BarYehuda(g, cfg)
	default:
		return nil, fmt.Errorf("maxis: unknown algorithm %q (known: %v)", name, AlgorithmNames())
	}
}

// AlgorithmNames lists the names Solve accepts, sorted.
func AlgorithmNames() []string {
	names := []string{
		"goodnodes", "sparsified", "theorem1", "theorem2",
		"theorem3", "theorem5", "ranking", "oneround", "baseline",
	}
	sort.Strings(names)
	return names
}
