package maxis

import (
	"fmt"

	"distmwis/internal/graph"
	"distmwis/internal/plan"
	"distmwis/internal/protocol"
)

// Solve dispatches to the named algorithm through the protocol registry,
// normalising the per-algorithm result types to *Result. It is the entry
// point used by the serving layer (internal/server); cmd/maxis layers its
// guarantee strings on top of the same registry entries. Any solver
// registered with protocol.Register — including ones registered outside
// this package — is resolvable here without edits.
//
// eps is consumed by the boosted pipelines (theorem1/2/3/5) and ignored by
// the rest; alpha is the arboricity bound of theorem3 (0 selects the
// degeneracy-based Theorem3Auto).
// The name "auto" resolves through the planner layer (internal/plan) with
// an unlimited budget — the best-guarantee registered solver for this
// instance. Callers with a latency budget plan explicitly (plan.For) and
// pass the resolved name.
func Solve(name string, g *graph.Graph, eps float64, alpha int, cfg Config) (*Result, error) {
	if name == plan.Auto {
		d, err := plan.For(g, protocol.Params{Eps: eps, Alpha: alpha}, plan.Budget{}, cfg.MIS)
		if err != nil {
			return nil, fmt.Errorf("maxis: %w", err)
		}
		name = d.Alg
	}
	solver, err := protocol.SolverByName(name)
	if err != nil {
		return nil, fmt.Errorf("maxis: %w", err)
	}
	p, err := solver.Normalize(protocol.Params{Eps: eps, Alpha: alpha})
	if err != nil {
		return nil, fmt.Errorf("maxis: %s: %w", name, err)
	}
	return solver.Run(g, p, cfg)
}

// GuaranteeString renders the named solver's approximation guarantee for a
// completed run (empty when the solver has none or the name is unknown).
func GuaranteeString(name string, g *graph.Graph, eps float64, alpha int, res *Result) string {
	solver, err := protocol.SolverByName(name)
	if err != nil {
		return ""
	}
	p, err := solver.Normalize(protocol.Params{Eps: eps, Alpha: alpha})
	if err != nil {
		return ""
	}
	return solver.Guarantee(g, p, res)
}

// AlgorithmNames lists the names Solve accepts (every registered solver),
// sorted.
func AlgorithmNames() []string {
	return protocol.Names(protocol.KindSolver)
}
