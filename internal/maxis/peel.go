package maxis

import (
	"fmt"
	"math/bits"

	"distmwis/internal/congest"
	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
	"distmwis/internal/wire"
)

// DegeneracyEstimate is the result of the distributed peeling protocol.
type DegeneracyEstimate struct {
	// Estimate is T̂ with degeneracy(G) ≤ T̂ ≤ 8·degeneracy(G); since
	// α ≤ degeneracy ≤ 2α−1 (Nash–Williams), α ≤ T̂ ≤ 16α.
	Estimate int
	// Phases is the number of threshold doublings used.
	Phases int
	// Metrics aggregates the protocol cost: O(log Δ · log n) rounds.
	Metrics dist.Accumulator
}

// EstimateDegeneracy runs the classical distributed peeling protocol: for
// thresholds T = 1, 2, 4, … each phase performs ⌈log₂ n⌉+2 synchronous
// peel rounds in which every surviving node of residual degree ≤ T
// removes itself and notifies its neighbours. Survivors carry over to the
// next (doubled) threshold.
//
// Correctness of the two-sided bound: (lower) every removed node had ≤ T̂
// neighbours at removal time, so the removal order is a T̂-degenerate
// ordering, i.e. degeneracy ≤ T̂; (upper) once T ≥ 4·degeneracy, Markov on
// the residual edge count kills at least half of the survivors per peel
// round, so ⌈log₂ n⌉+2 rounds empty the graph and the doubling stops at
// T̂ < 8·degeneracy.
//
// The paper's Theorem 3 assumes the arboricity α is known to the nodes;
// this protocol discharges that assumption at an O(log Δ·log n) round cost
// and a constant-factor loss (see Theorem3Auto).
func EstimateDegeneracy(g *graph.Graph, cfg Config) (*DegeneracyEstimate, error) {
	cfg = cfg.Normalized(g)
	seeds := protocol.NewSeedSeq(cfg.Seed)
	est := &DegeneracyEstimate{}
	n := g.N()
	if n == 0 {
		return est, nil
	}
	peelRounds := bits.Len(uint(n)) + 2
	alive := make([]bool, n)
	aliveN := 0
	for v := 0; v < n; v++ {
		if g.Degree(v) > 0 {
			alive[v] = true
			aliveN++
		}
	}
	if aliveN == 0 {
		return est, nil // edgeless: degeneracy 0
	}
	for threshold := 1; ; threshold *= 2 {
		est.Phases++
		est.Estimate = threshold
		sub := g.Induce(alive)
		est.Metrics.AddRounds(1) // survivors exchange liveness flags
		res, err := dist.RunPhase(sub.G, func() congest.Process {
			return &peelProcess{threshold: threshold, budget: peelRounds}
		}, &est.Metrics, cfg.Phase("peel").Opts(seeds.Next())...)
		if err != nil {
			return nil, fmt.Errorf("maxis: peel threshold %d: %w", threshold, err)
		}
		survivors := 0
		for i, out := range res.Outputs {
			if alive2, ok := out.(bool); ok && alive2 {
				survivors++
			} else {
				alive[sub.ToParent[i]] = false
			}
		}
		if survivors == 0 {
			return est, nil
		}
		if threshold > n {
			// Fault-free this means the peeling logic is broken; under
			// faults a crashed node legitimately never announces its
			// removal and can keep neighbours alive past every threshold.
			if cfg.Faults.Enabled() {
				return est, nil
			}
			return nil, fmt.Errorf("maxis: peeling failed to converge (bug)")
		}
	}
}

// peelProcess removes itself once its residual degree drops to the
// threshold, announcing the removal; Output reports survival.
type peelProcess struct {
	info      congest.NodeInfo
	threshold int
	budget    int
	aliveDeg  int
	alivePort graph.Bitset
	removed   bool
}

func (p *peelProcess) Init(info congest.NodeInfo) {
	p.info = info
	p.aliveDeg = info.Degree
	p.alivePort = graph.NewBitset(info.Degree)
	p.alivePort.SetFirst(info.Degree)
}

func (p *peelProcess) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	for port, m := range recv {
		if m == nil || !p.alivePort.Get(port) {
			continue
		}
		gone, _ := m.Reader().ReadBool()
		if gone {
			p.alivePort.Unset(port)
			p.aliveDeg--
		}
	}
	if !p.removed && p.aliveDeg <= p.threshold {
		p.removed = true
		var w wire.Writer
		w.WriteBool(true)
		out := make([]*congest.Message, p.info.Degree)
		m := congest.NewPooledMessage(&w)
		p.alivePort.ForEach(func(port int) { out[port] = m })
		return out, true
	}
	return nil, round >= p.budget
}

func (p *peelProcess) Output() any { return !p.removed }

// Theorem3Auto is Theorem 3 without the known-α assumption: it first runs
// EstimateDegeneracy to obtain T̂ ∈ [degeneracy, 8·degeneracy] and then
// Algorithm 6 with α := T̂. The approximation guarantee degrades by the
// estimation constant to 8(1+ε)·T̂ ≤ 128(1+ε)·α while the halving
// precondition of Proposition 5 is guaranteed (T̂ ≥ degeneracy ≥ α).
func Theorem3Auto(g *graph.Graph, eps float64, cfg Config) (*ArboricityResult, error) {
	est, err := EstimateDegeneracy(g, cfg)
	if err != nil {
		return nil, err
	}
	alpha := est.Estimate
	if alpha == 0 {
		alpha = 1
	}
	res, err := Theorem3(g, alpha, eps, cfg)
	if err != nil {
		return nil, err
	}
	res.Metrics.Add(est.Metrics)
	if res.Extra == nil {
		res.Extra = map[string]float64{}
	}
	res.Extra["alpha_estimate"] = float64(est.Estimate)
	res.Extra["estimate_phases"] = float64(est.Phases)
	return res, nil
}
