package maxis

import (
	"fmt"
	"math"
	"math/bits"

	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
)

// This file ports the local-ratio Δ-approximation family of Bar-Yehuda,
// Censor-Hillel, Ghaffari and Schwartzman (arXiv:1708.00276) in its two
// round-complexity trade-offs:
//
//   - LocalRatio: the plain (unscaled) algorithm — MIS on the whole
//     positive-residual subgraph, push, reduce, repeat until no positive
//     residual remains. A Δ-approximation in at most Δ+1 MIS phases,
//     independent of W — the complement of baseline.go's O(MIS·log W)
//     weight-scale schedule, and the better choice when Δ < log W.
//   - LocalRatioEps: the (1−ε)-scaled variant — quantise the weights to
//     at most ⌈n/ε⌉ levels first, then run the weight-scale loop on the
//     quantised weights. A (1−ε)·OPT/Δ guarantee in O(MIS·log(n/ε))
//     rounds, independent of W and of Δ.
//
// Both reuse the applyReduction/PopStack machinery shared with baseline.go
// and boost.go, so the Proposition 2 stack property carries over verbatim.

// LocalRatio is the unscaled local-ratio Δ-approximation. Each phase runs
// the MIS black box on the subgraph induced by positive-residual nodes,
// pushes the result and applies the Algorithm 1 reduction
// w'(v) = w(v) − w(N⁺(v) ∩ I).
//
// Termination in ≤ Δ+1 phases: in every phase an active node v either
// joins the MIS (its residual is zeroed for good) or — by MIS maximality
// on the induced subgraph — is adjacent to a member u whose residual is
// zeroed for good. v can therefore stay active only while it has positive
// neighbours left, of which it has at most Δ; once they are exhausted,
// maximality forces v itself into the next MIS.
func LocalRatio(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.Normalized(g)
	if minWeight(g) < 0 {
		return nil, fmt.Errorf("maxis: LocalRatio requires non-negative weights")
	}
	return localRatioRun(g, g.Weights(), 1, cfg, "localratio", false, nil)
}

// LocalRatioEps is the (1±ε) variant: weights are divided by
// unit = max(1, ⌊ε·W/n⌋) (dropping nodes lighter than unit entirely), so
// the quantised maximum weight is at most n/ε and the weight-scale loop
// runs in O(MIS·log(n/ε)) phases regardless of W. The truncation forfeits
// at most ε·W ≤ ε·OPT total weight, giving w(I) ≥ (1−ε)·OPT/Δ.
func LocalRatioEps(g *graph.Graph, eps float64, cfg Config) (*Result, error) {
	cfg = cfg.Normalized(g)
	maxW := g.MaxWeight()
	if minWeight(g) < 0 {
		return nil, fmt.Errorf("maxis: LocalRatioEps requires non-negative weights")
	}
	unit := quantUnit(g.N(), maxW, eps)
	cur := g.Weights()
	var dropped int64
	for v := range cur {
		q := cur[v] / unit
		dropped += cur[v] - q*unit
		cur[v] = q
	}
	return localRatioRun(g, cur, unit, cfg, "localratio-eps", true, map[string]float64{
		"quant_unit":    float64(unit),
		"dropped_value": float64(dropped),
	})
}

// quantUnit is the LocalRatioEps quantisation step ⌊ε·maxW/n⌋, clamped to
// at least 1 (integer weights need no quantising below that).
func quantUnit(n int, maxW int64, eps float64) int64 {
	if n == 0 || maxW <= 0 {
		return 1
	}
	unit := int64(math.Floor(eps * float64(maxW) / float64(n)))
	if unit < 1 {
		unit = 1
	}
	return unit
}

// localRatioRun is the shared push/reduce/pop loop over residual weights
// cur (consumed). With scaled set, phases walk weight thresholds 2^j
// downward exactly like baseline.go (≤ log₂ max(cur)+1 MIS phases); unset,
// every positive node is active each phase (≤ Δ+1 phases). unit scales
// stack weights back to the original weight function for reporting.
func localRatioRun(g *graph.Graph, cur []int64, unit int64, cfg Config, alg string, scaled bool, extra map[string]float64) (*Result, error) {
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator
	n := g.N()
	var maxCur int64
	for v := 0; v < n; v++ {
		if cur[v] > maxCur {
			maxCur = cur[v]
		}
	}
	var stack [][]bool
	var stackValue int64
	phases := 0
	// The phase schedule: scaled mode iterates thresholds, plain mode
	// iterates until the residual is gone, with the Δ+1 termination bound
	// as a backstop (fault injection can break MIS maximality and stall
	// progress; then the partial stack is still a valid independent set).
	maxPhases := bits.Len64(uint64(maxCur)) + 1
	if !scaled {
		maxPhases = g.MaxDegree() + 2
	}
	threshold := int64(1) << uint(bits.Len64(uint64(maxCur)))
	active := make([]bool, n)
	for maxCur > 0 {
		if scaled {
			threshold >>= 1
			if threshold < 1 {
				break
			}
		} else {
			threshold = 1
		}
		anyActive := false
		for v := 0; v < n; v++ {
			active[v] = cur[v] >= threshold
			anyActive = anyActive || active[v]
		}
		if !anyActive {
			continue
		}
		if phases >= maxPhases {
			if cfg.Faults.Enabled() {
				break
			}
			return nil, fmt.Errorf("maxis: %s exceeded its %d-phase bound (bug)", alg, maxPhases)
		}
		phases++
		set, _, err := dist.RunOnInduced(g, active, cfg.MISAlg().NewProcess, &acc, cfg.Phase("ratio").Opts(seeds.Next())...)
		if err != nil {
			return nil, fmt.Errorf("maxis: %s phase %d: %w", alg, phases, err)
		}
		for v := 0; v < n; v++ {
			if set[v] {
				stackValue += cur[v] * unit
			}
		}
		stack = append(stack, set)
		applyReduction(g, cur, set)
		acc.AddRounds(1)
		maxCur = 0
		for v := 0; v < n; v++ {
			if cur[v] > maxCur {
				maxCur = cur[v]
			}
		}
	}
	// Residual positivity relies on MIS maximality, which fault injection
	// legitimately breaks; without faults leftovers are a real bug.
	if !cfg.Faults.Enabled() {
		for v := 0; v < n; v++ {
			if cur[v] > 0 {
				return nil, fmt.Errorf("maxis: %s left positive weight at node %d (bug)", alg, v)
			}
		}
	}
	set := PopStack(g, stack, &acc)
	if extra == nil {
		extra = map[string]float64{}
	}
	extra["phases"] = float64(phases)
	extra["stack_value"] = float64(stackValue)
	res, err := finish(g, set, cfg, acc, alg, extra)
	if err != nil {
		return nil, err
	}
	if res.Weight < stackValue {
		return nil, fmt.Errorf("maxis: stack property violated in %s (bug)", alg)
	}
	return res, nil
}

// minWeight returns the smallest node weight (0 for the empty graph).
func minWeight(g *graph.Graph) int64 {
	var min int64
	for v := 0; v < g.N(); v++ {
		if w := g.Weight(v); v == 0 || w < min {
			min = w
		}
	}
	return min
}
