package maxis

import (
	"fmt"

	"distmwis/internal/graph"
	"distmwis/internal/protocol"
)

// solverEntry adapts one of this package's algorithm pipelines to the
// protocol registry's Solver interface. Registration in init below is the
// single step that makes an algorithm resolvable by Solve, listed in
// AlgorithmNames, accepted by the cmd/maxis flag surface and the maxisd
// JSON API, and covered by the registry-driven parity suite.
type solverEntry struct {
	name      string
	describe  string
	normalize func(p protocol.Params) (protocol.Params, error)
	run       func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error)
	guarantee func(g *graph.Graph, p protocol.Params, res *Result) string
}

func (e *solverEntry) Name() string        { return e.name }
func (e *solverEntry) Kind() protocol.Kind { return protocol.KindSolver }
func (e *solverEntry) Describe() string    { return e.describe }

func (e *solverEntry) Normalize(p protocol.Params) (protocol.Params, error) {
	if e.normalize == nil {
		return p, nil
	}
	return e.normalize(p)
}

func (e *solverEntry) Run(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
	return e.run(g, p, cfg)
}

func (e *solverEntry) Guarantee(g *graph.Graph, p protocol.Params, res *Result) string {
	if e.guarantee == nil {
		return ""
	}
	return e.guarantee(g, p, res)
}

var _ protocol.Solver = (*solverEntry)(nil)

// needsEps rejects non-positive ε for the boosted pipelines.
func needsEps(name string) func(p protocol.Params) (protocol.Params, error) {
	return func(p protocol.Params) (protocol.Params, error) {
		if p.Eps <= 0 {
			return p, &protocol.ParamError{
				Param:  "eps",
				Detail: fmt.Sprintf("must be positive for %s, got %g", name, p.Eps),
			}
		}
		return p, nil
	}
}

func init() {
	protocol.Register(&solverEntry{
		name:     "goodnodes",
		describe: "O(Δ)-approximation via an MIS over the good nodes (Theorem 8)",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return GoodNodes(g, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, _ *Result) string {
			return fmt.Sprintf("w(I) ≥ w(V)/(4(Δ+1)) = %.1f",
				float64(g.TotalWeight())/(4*float64(g.MaxDegree()+1)))
		},
	})
	protocol.Register(&solverEntry{
		name:     "sparsified",
		describe: "poly(log log n)-round O(Δ)-approximation via weighted sparsification (Theorem 9)",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return Sparsified(g, cfg)
		},
		guarantee: func(*graph.Graph, protocol.Params, *Result) string {
			return "w(I) = Ω(w(V)/Δ) w.h.p."
		},
	})
	protocol.Register(&solverEntry{
		name:      "theorem1",
		describe:  "(1+ε)Δ-approximation: Boost over GoodNodes (Theorem 1)",
		normalize: needsEps("theorem1"),
		run: func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
			res, err := Theorem1(g, p.Eps, cfg)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		},
		guarantee: func(g *graph.Graph, p protocol.Params, _ *Result) string {
			return fmt.Sprintf("(1+ε)Δ-approximation = %.1f", GuaranteeDelta(g.MaxDegree(), p.Eps))
		},
	})
	protocol.Register(&solverEntry{
		name:      "theorem2",
		describe:  "(1+ε)Δ-approximation in poly(log log n)·O(1/ε) rounds: Boost over Sparsified (Theorem 2)",
		normalize: needsEps("theorem2"),
		run: func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
			res, err := Theorem2(g, p.Eps, cfg)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		},
		guarantee: func(g *graph.Graph, p protocol.Params, _ *Result) string {
			return fmt.Sprintf("(1+ε)Δ-approximation = %.1f w.h.p.", GuaranteeDelta(g.MaxDegree(), p.Eps))
		},
	})
	protocol.Register(&solverEntry{
		name:      "theorem3",
		describe:  "8(1+ε)α-approximation for arboricity-α graphs (Theorem 3; alpha 0 = degeneracy estimator)",
		normalize: needsEps("theorem3"),
		run: func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
			// Alpha <= 0 falls back to the degeneracy bound inside
			// Arboricity, matching the cmd/maxis -alpha default.
			res, err := Theorem3(g, p.Alpha, p.Eps, cfg)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		},
		guarantee: func(_ *graph.Graph, _ protocol.Params, res *Result) string {
			return fmt.Sprintf("8(1+ε)α-approximation = %.1f w.h.p.", res.Extra["guarantee"])
		},
	})
	protocol.Register(&solverEntry{
		name:      "theorem5",
		describe:  "(1+ε)(Δ+1)-approximation for unweighted low-degree graphs: Boost over Ranking (Theorem 5)",
		normalize: needsEps("theorem5"),
		run: func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
			res, err := Theorem5(g, p.Eps, cfg)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		},
		guarantee: func(g *graph.Graph, p protocol.Params, _ *Result) string {
			return fmt.Sprintf("|I| ≥ n/((1+ε)(Δ+1)) = %.1f w.h.p.",
				float64(g.N())/((1+p.Eps)*float64(g.MaxDegree()+1)))
		},
	})
	protocol.Register(&solverEntry{
		name:     "ranking",
		describe: "Boppana ranking with the martingale guarantee (Section 5)",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return Ranking(g, 2, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, _ *Result) string {
			return fmt.Sprintf("|I| ≥ n/(8(Δ+1)) = %.1f w.h.p.",
				float64(g.N())/(8*float64(g.MaxDegree()+1)))
		},
	})
	protocol.Register(&solverEntry{
		name:     "oneround",
		describe: "one-round ranking baseline [17]; guarantee holds in expectation only",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return OneRound(g, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, _ *Result) string {
			return fmt.Sprintf("E[w(I)] ≥ w(V)/(Δ+1) = %.1f (expectation only)",
				float64(g.TotalWeight())/float64(g.MaxDegree()+1))
		},
	})
	protocol.Register(&solverEntry{
		name:     "baseline",
		describe: "Δ-approximation in O(MIS·log W) rounds (Bar-Yehuda et al. [8] baseline)",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return BarYehuda(g, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, _ *Result) string {
			return fmt.Sprintf("Δ-approximation = %d ([8] baseline)", g.MaxDegree())
		},
	})
}
