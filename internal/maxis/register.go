package maxis

import (
	"fmt"
	"math"
	"math/bits"

	"distmwis/internal/graph"
	"distmwis/internal/protocol"
)

// solverEntry adapts one of this package's algorithm pipelines to the
// protocol registry's Solver interface. Registration in init below is the
// single step that makes an algorithm resolvable by Solve, listed in
// AlgorithmNames, accepted by the cmd/maxis flag surface and the maxisd
// JSON API, covered by the registry-driven parity suite, and — through its
// meta block — eligible for planner selection under alg=auto.
type solverEntry struct {
	name      string
	describe  string
	normalize func(p protocol.Params) (protocol.Params, error)
	run       func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error)
	guarantee func(g *graph.Graph, p protocol.Params, res *Result) string
	meta      protocol.Meta
}

func (e *solverEntry) Name() string        { return e.name }
func (e *solverEntry) Kind() protocol.Kind { return protocol.KindSolver }
func (e *solverEntry) Describe() string    { return e.describe }
func (e *solverEntry) Meta() protocol.Meta { return e.meta }

func (e *solverEntry) Normalize(p protocol.Params) (protocol.Params, error) {
	if e.normalize == nil {
		return p, nil
	}
	return e.normalize(p)
}

func (e *solverEntry) Run(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
	return e.run(g, p, cfg)
}

func (e *solverEntry) Guarantee(g *graph.Graph, p protocol.Params, res *Result) string {
	if e.guarantee == nil {
		return ""
	}
	return e.guarantee(g, p, res)
}

var _ protocol.Solver = (*solverEntry)(nil)

// needsEps rejects non-positive (or non-finite — NaN slips past every
// comparison) ε for the boosted pipelines.
func needsEps(name string) func(p protocol.Params) (protocol.Params, error) {
	return func(p protocol.Params) (protocol.Params, error) {
		if !(p.Eps > 0) || math.IsInf(p.Eps, 1) {
			return p, &protocol.ParamError{
				Param:  "eps",
				Detail: fmt.Sprintf("must be positive for %s, got %g", name, p.Eps),
			}
		}
		return p, nil
	}
}

// needsFractionalEps additionally rejects ε ≥ 1 for pipelines whose
// guarantee has a (1−ε) factor.
func needsFractionalEps(name string) func(p protocol.Params) (protocol.Params, error) {
	return func(p protocol.Params) (protocol.Params, error) {
		if !(p.Eps > 0) || p.Eps >= 1 {
			return p, &protocol.ParamError{
				Param:  "eps",
				Detail: fmt.Sprintf("must be in (0,1) for %s, got %g", name, p.Eps),
			}
		}
		return p, nil
	}
}

// delta1 clamps Δ to at least 1 so ratio scores on edgeless graphs stay
// comparable instead of collapsing to 0.
func delta1(d int) float64 {
	if d < 1 {
		return 1
	}
	return float64(d)
}

// theorem2DeltaH is the degree the Theorem 2 MIS black box actually sees:
// the sparsifier bound 4λ·log₂n at the default λ=2, never exceeding Δ.
func theorem2DeltaH(p protocol.Profile) int {
	dh := DeltaHBound(p.N, 2.0)
	if p.MaxDegree < dh {
		dh = p.MaxDegree
	}
	if dh < 1 {
		dh = 1
	}
	return dh
}

// alphaOf resolves the arboricity parameter of theorem3: the caller's
// explicit bound, else the profile's degeneracy (≥ α, ≤ 2α−1).
func alphaOf(p protocol.Profile, params protocol.Params) int {
	if params.Alpha > 0 {
		return params.Alpha
	}
	if p.Degeneracy > 0 {
		return p.Degeneracy
	}
	return 1
}

// The expectation-only score inflations below (×2.0 uniform-rank one-round,
// ×1.8 weighted one-round race, ×1.4 three-phase race) encode the measured
// retention gap between the in-expectation tiers and the w.h.p. tiers;
// experiment E21 is the evidence backing the ordering. The sparsified /
// ranking w.h.p. guarantees with unspecified constants score at their
// stated constant (8(Δ+1), matching Theorem 9/11's worst case).

func init() {
	protocol.Register(&solverEntry{
		name:     "goodnodes",
		describe: "O(Δ)-approximation via an MIS over the good nodes (Theorem 8)",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return GoodNodes(g, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, _ *Result) string {
			return fmt.Sprintf("w(I) ≥ w(V)/(4(Δ+1)) = %.1f",
				float64(g.TotalWeight())/(4*float64(g.MaxDegree()+1)))
		},
		meta: protocol.Meta{
			Ratio:         "4(Δ+1)",
			Deterministic: true,
			Score: func(p protocol.Profile, _ protocol.Params) float64 {
				return 4 * (delta1(p.MaxDegree) + 1)
			},
			Rounds: func(p protocol.Profile, _ protocol.Params, m protocol.MIS) int {
				return BudgetGoodNodes(m, p.N, p.MaxDegree)
			},
		},
	})
	protocol.Register(&solverEntry{
		name:     "sparsified",
		describe: "poly(log log n)-round O(Δ)-approximation via weighted sparsification (Theorem 9)",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return Sparsified(g, cfg)
		},
		guarantee: func(*graph.Graph, protocol.Params, *Result) string {
			return "w(I) = Ω(w(V)/Δ) w.h.p."
		},
		meta: protocol.Meta{
			Ratio: "O(Δ) w.h.p.",
			Score: func(p protocol.Profile, _ protocol.Params) float64 {
				return 8 * (delta1(p.MaxDegree) + 1)
			},
			Rounds: func(p protocol.Profile, _ protocol.Params, m protocol.MIS) int {
				return BudgetSparsified(m, p.N, theorem2DeltaH(p))
			},
		},
	})
	protocol.Register(&solverEntry{
		name:      "theorem1",
		describe:  "(1+ε)Δ-approximation: Boost over GoodNodes (Theorem 1)",
		normalize: needsEps("theorem1"),
		run: func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
			res, err := Theorem1(g, p.Eps, cfg)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		},
		guarantee: func(g *graph.Graph, p protocol.Params, _ *Result) string {
			return fmt.Sprintf("(1+ε)Δ-approximation = %.1f", GuaranteeDelta(g.MaxDegree(), p.Eps))
		},
		meta: protocol.Meta{
			Ratio:         "(1+ε)Δ",
			Deterministic: true,
			Score: func(p protocol.Profile, params protocol.Params) float64 {
				return (1 + params.Eps) * delta1(p.MaxDegree)
			},
			Rounds: func(p protocol.Profile, params protocol.Params, m protocol.MIS) int {
				return BudgetTheorem1(m, p.N, p.MaxDegree, params.Eps)
			},
		},
	})
	protocol.Register(&solverEntry{
		name:      "theorem2",
		describe:  "(1+ε)Δ-approximation in poly(log log n)·O(1/ε) rounds: Boost over Sparsified (Theorem 2)",
		normalize: needsEps("theorem2"),
		run: func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
			res, err := Theorem2(g, p.Eps, cfg)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		},
		guarantee: func(g *graph.Graph, p protocol.Params, _ *Result) string {
			return fmt.Sprintf("(1+ε)Δ-approximation = %.1f w.h.p.", GuaranteeDelta(g.MaxDegree(), p.Eps))
		},
		meta: protocol.Meta{
			Ratio: "(1+ε)Δ w.h.p.",
			Score: func(p protocol.Profile, params protocol.Params) float64 {
				return (1 + params.Eps) * delta1(p.MaxDegree)
			},
			Rounds: func(p protocol.Profile, params protocol.Params, m protocol.MIS) int {
				return BudgetTheorem2(m, p.N, theorem2DeltaH(p), params.Eps)
			},
		},
	})
	protocol.Register(&solverEntry{
		name:      "theorem3",
		describe:  "8(1+ε)α-approximation for arboricity-α graphs (Theorem 3; alpha 0 = degeneracy estimator)",
		normalize: needsEps("theorem3"),
		run: func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
			// Alpha <= 0 falls back to the degeneracy bound inside
			// Arboricity, matching the cmd/maxis -alpha default.
			res, err := Theorem3(g, p.Alpha, p.Eps, cfg)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		},
		guarantee: func(_ *graph.Graph, _ protocol.Params, res *Result) string {
			return fmt.Sprintf("8(1+ε)α-approximation = %.1f w.h.p.", res.Extra["guarantee"])
		},
		meta: protocol.Meta{
			Ratio: "8(1+ε)α",
			Score: func(p protocol.Profile, params protocol.Params) float64 {
				return 8 * (1 + params.Eps) * float64(alphaOf(p, params))
			},
			Rounds: func(p protocol.Profile, params protocol.Params, m protocol.MIS) int {
				return BudgetTheorem3(m, p.N, alphaOf(p, params), params.Eps)
			},
		},
	})
	protocol.Register(&solverEntry{
		name:      "theorem5",
		describe:  "(1+ε)(Δ+1)-approximation for unweighted low-degree graphs: Boost over Ranking (Theorem 5)",
		normalize: needsEps("theorem5"),
		run: func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
			res, err := Theorem5(g, p.Eps, cfg)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		},
		guarantee: func(g *graph.Graph, p protocol.Params, _ *Result) string {
			return fmt.Sprintf("|I| ≥ n/((1+ε)(Δ+1)) = %.1f w.h.p.",
				float64(g.N())/((1+p.Eps)*float64(g.MaxDegree()+1)))
		},
		meta: protocol.Meta{
			Ratio:           "(1+ε)(Δ+1) w.h.p.",
			UnitWeightsOnly: true,
			Score: func(p protocol.Profile, params protocol.Params) float64 {
				return (1 + params.Eps) * (delta1(p.MaxDegree) + 1)
			},
			Rounds: func(p protocol.Profile, params protocol.Params, _ protocol.MIS) int {
				// Ranking at c=2 ships its rank in a handful of B-bit
				// chunks; 4 rounds per phase is its budget at the default
				// bandwidth.
				return BudgetTheorem5(params.Eps, 4)
			},
		},
	})
	protocol.Register(&solverEntry{
		name:     "ranking",
		describe: "Boppana ranking with the martingale guarantee (Section 5)",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return Ranking(g, 2, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, _ *Result) string {
			return fmt.Sprintf("|I| ≥ n/(8(Δ+1)) = %.1f w.h.p.",
				float64(g.N())/(8*float64(g.MaxDegree()+1)))
		},
		meta: protocol.Meta{
			Ratio:           "8(Δ+1) w.h.p.",
			UnitWeightsOnly: true,
			Score: func(p protocol.Profile, _ protocol.Params) float64 {
				return 8 * (delta1(p.MaxDegree) + 1)
			},
			Rounds: func(p protocol.Profile, _ protocol.Params, _ protocol.MIS) int {
				return 6 // ⌈rankBits/B⌉ shipping rounds + decide, c=2
			},
		},
	})
	protocol.Register(&solverEntry{
		name:     "oneround",
		describe: "one-round ranking baseline [17]; guarantee holds in expectation only",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return OneRound(g, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, _ *Result) string {
			return fmt.Sprintf("E[w(I)] ≥ w(V)/(Δ+1) = %.1f (expectation only)",
				float64(g.TotalWeight())/float64(g.MaxDegree()+1))
		},
		meta: protocol.Meta{
			Ratio:           "Δ+1 in expectation",
			ExpectationOnly: true,
			Score: func(p protocol.Profile, _ protocol.Params) float64 {
				return 2.0 * (delta1(p.MaxDegree) + 1)
			},
			Rounds: func(protocol.Profile, protocol.Params, protocol.MIS) int {
				return 3 // ship the c=0 rank (≤2 chunks) + decide
			},
		},
	})
	protocol.Register(&solverEntry{
		name:     "baseline",
		describe: "Δ-approximation in O(MIS·log W) rounds (Bar-Yehuda et al. [8] baseline)",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return BarYehuda(g, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, _ *Result) string {
			return fmt.Sprintf("Δ-approximation = %d ([8] baseline)", g.MaxDegree())
		},
		meta: protocol.Meta{
			Ratio:         "Δ",
			Deterministic: true,
			Score: func(p protocol.Profile, _ protocol.Params) float64 {
				return delta1(p.MaxDegree)
			},
			Rounds: func(p protocol.Profile, _ protocol.Params, m protocol.MIS) int {
				return BudgetBarYehudaLogW(m, p.N, p.MaxDegree, p.LogW)
			},
		},
	})
	protocol.Register(&solverEntry{
		name:     "localratio",
		describe: "Δ-approximation in O(MIS·Δ) rounds: unscaled local-ratio (arXiv:1708.00276)",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return LocalRatio(g, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, _ *Result) string {
			return fmt.Sprintf("Δ-approximation = %d (local-ratio)", g.MaxDegree())
		},
		meta: protocol.Meta{
			Ratio:         "Δ",
			Deterministic: true,
			Score: func(p protocol.Profile, _ protocol.Params) float64 {
				return delta1(p.MaxDegree)
			},
			Rounds: func(p protocol.Profile, _ protocol.Params, m protocol.MIS) int {
				return BudgetLocalRatio(m, p.N, p.MaxDegree)
			},
		},
	})
	protocol.Register(&solverEntry{
		name:      "localratio-eps",
		describe:  "(1−ε)-scaled local-ratio Δ-approximation in O(MIS·log(n/ε)) rounds (arXiv:1708.00276)",
		normalize: needsFractionalEps("localratio-eps"),
		run: func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
			return LocalRatioEps(g, p.Eps, cfg)
		},
		guarantee: func(g *graph.Graph, p protocol.Params, _ *Result) string {
			return fmt.Sprintf("w(I) ≥ (1−ε)·OPT/Δ, ε=%g, Δ=%d", p.Eps, g.MaxDegree())
		},
		meta: protocol.Meta{
			Ratio:         "Δ/(1−ε)",
			Deterministic: true,
			Score: func(p protocol.Profile, params protocol.Params) float64 {
				return delta1(p.MaxDegree) / (1 - params.Eps)
			},
			Rounds: func(p protocol.Profile, params protocol.Params, m protocol.MIS) int {
				// Quantised weights fit in log₂(n/ε) bits, so the scale
				// loop pays that instead of log W.
				logQ := bits.Len64(uint64(math.Ceil(float64(p.N)/params.Eps))) + 1
				if p.LogW < logQ {
					logQ = p.LogW
				}
				return BudgetBarYehudaLogW(m, p.N, p.MaxDegree, logQ)
			},
		},
	})
	protocol.Register(&solverEntry{
		name:     "bhr-oneround",
		describe: "one-round weighted race (Boppana–Halldórsson–Rawitz, arXiv:1803.00786); expectation only",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return BHROneRound(g, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, _ *Result) string {
			return fmt.Sprintf("E[w(I)] ≥ w(V)/(Δ+1) = %.1f (weighted race, expectation only)",
				float64(g.TotalWeight())/float64(g.MaxDegree()+1))
		},
		meta: protocol.Meta{
			Ratio:           "Δ+1 in expectation",
			ExpectationOnly: true,
			Score: func(p protocol.Profile, _ protocol.Params) float64 {
				return 1.8 * (delta1(p.MaxDegree) + 1)
			},
			Rounds: func(protocol.Profile, protocol.Params, protocol.MIS) int {
				return 3 // broadcast the key, decide, announce
			},
		},
	})
	protocol.Register(&solverEntry{
		name:     "bhr-fewround",
		describe: "few-round weighted race: repeated one-round races on the residual graph (arXiv:1803.00786)",
		run: func(g *graph.Graph, _ protocol.Params, cfg Config) (*Result, error) {
			return BHR(g, BHRFewRoundPhases, cfg)
		},
		guarantee: func(g *graph.Graph, _ protocol.Params, res *Result) string {
			return fmt.Sprintf("E[w(I)] ≥ w(V)/(Δ+1) = %.1f after %.0f races (expectation only)",
				float64(g.TotalWeight())/float64(g.MaxDegree()+1), res.Extra["phases"])
		},
		meta: protocol.Meta{
			Ratio:           "Δ+1 in expectation (improving per race)",
			ExpectationOnly: true,
			Score: func(p protocol.Profile, _ protocol.Params) float64 {
				return 1.4 * (delta1(p.MaxDegree) + 1)
			},
			Rounds: func(protocol.Profile, protocol.Params, protocol.MIS) int {
				return BHRFewRoundPhases * 4
			},
		},
	})
	protocol.Register(&solverEntry{
		name:      "localapprox",
		describe:  "(1+ε)-approximation in expectation via low-diameter decomposition (LOCAL model)",
		normalize: needsEps("localapprox"),
		run: func(g *graph.Graph, p protocol.Params, cfg Config) (*Result, error) {
			return LocalApprox(g, p.Eps, cfg)
		},
		guarantee: func(_ *graph.Graph, p protocol.Params, res *Result) string {
			if res.Extra["greedy_clusters"] > 0 {
				return fmt.Sprintf("(1+ε)-approximation in expectation voided: %.0f clusters fell back to greedy (LOCAL)",
					res.Extra["greedy_clusters"])
			}
			return fmt.Sprintf("(1+ε)-approximation = %.2f in expectation (LOCAL)", 1+p.Eps)
		},
		meta: protocol.Meta{
			Ratio:           "1+ε in expectation (LOCAL)",
			ExpectationOnly: true,
			Local:           true,
			Score: func(p protocol.Profile, params protocol.Params) float64 {
				return 1 + params.Eps
			},
			Rounds: func(p protocol.Profile, params protocol.Params, _ protocol.MIS) int {
				// 2·radius+2 with radius = O(log n/β), β = ε/(4Δ).
				logN := math.Log(math.Max(float64(p.N), 2))
				beta := params.Eps / (4 * delta1(p.MaxDegree))
				return 2*int(math.Ceil(logN/beta)) + 2
			},
		},
	})
}
