package maxis

import (
	"distmwis/internal/congest"
	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
	"distmwis/internal/wire"
)

// GoodNodes implements Theorem 8: an O(MIS(n,Δ))-round CONGEST algorithm
// returning an independent set of weight at least w(V)/(4(Δ+1)).
//
// A node v is good when w(v) ≥ w(N⁺(v)) / (2(δ(v)+1)), where δ(v) is the
// maximum degree in v's inclusive neighbourhood (Section 4.1). The protocol
// spends two rounds learning neighbours' degrees and weights, then runs the
// black-box MIS on the subgraph induced by the good nodes.
func GoodNodes(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.Normalized(g)
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator
	set, _, err := goodNodesRun(g, cfg, seeds, &acc)
	if err != nil {
		return nil, err
	}
	return finish(g, set, cfg, acc, "goodnodes", nil)
}

// goodNodesRun is the reusable core shared with the sparsified pipeline and
// the boosting inner adapter.
func goodNodesRun(g *graph.Graph, cfg Config, seeds *protocol.SeedSeq, acc *dist.Accumulator) (set []bool, good []bool, err error) {
	if g.N() == 0 {
		return nil, nil, nil
	}
	// Phase 1: two-round good-node detection protocol.
	res, err := dist.RunPhase(g, func() congest.Process { return &goodDetect{} }, acc, cfg.Phase("goodnodes/detect").Opts(seeds.Next())...)
	if err != nil {
		return nil, nil, err
	}
	good = congest.BoolOutputs(res)

	// Phase 2: MIS over the good-node subgraph (Lemma 2: black-box MIS with
	// the original NUpper works on any subgraph).
	set, _, err = dist.RunOnInduced(g, good, cfg.MISAlg().NewProcess, acc, cfg.Phase("goodnodes/mis").Opts(seeds.Next())...)
	if err != nil {
		return nil, nil, err
	}
	return set, good, nil
}

// goodDetect is the two-round protocol computing the Theorem 8 good flag:
// round 1 broadcasts (degree, weight), round 2 evaluates
// 2·(δ(v)+1)·w(v) ≥ w(N⁺(v)).
type goodDetect struct {
	info congest.NodeInfo
	good bool
}

func (p *goodDetect) Init(info congest.NodeInfo) { p.info = info }

func (p *goodDetect) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	switch round {
	case 1:
		var w wire.Writer
		w.WriteUint(uint64(p.info.Degree), uint64(p.info.NUpper))
		w.WriteInt(p.info.Weight, p.info.MaxWeight)
		return broadcast(congest.NewPooledMessage(&w), p.info.Degree), false
	default:
		maxDeg := p.info.Degree
		sumW := p.info.Weight
		for _, m := range recv {
			if m == nil {
				continue
			}
			r := m.Reader()
			deg, e1 := r.ReadUint(uint64(p.info.NUpper))
			nw, e2 := r.ReadInt(p.info.MaxWeight)
			if e1 != nil || e2 != nil {
				// Garbled neighbour announcement (fault injection): treat
				// as missing; the good test degrades but stays well-formed.
				continue
			}
			if int(deg) > maxDeg {
				maxDeg = int(deg)
			}
			sumW += nw
		}
		// good ⇔ w(v) ≥ w(N⁺(v)) / (2(δ(v)+1)), in overflow-safe integers.
		p.good = 2*int64(maxDeg+1)*p.info.Weight >= sumW
		return nil, true
	}
}

func (p *goodDetect) Output() any { return p.good }

// goodNodesInner adapts GoodNodes as a boosting black box with c = 8:
// w(V)/(4(Δ+1)) ≥ w(V)/(8Δ) whenever Δ ≥ 1.
type goodNodesInner struct{}

func (goodNodesInner) Name() string { return "goodnodes" }

func (goodNodesInner) FactorC() int { return 8 }

func (goodNodesInner) Run(g *graph.Graph, cfg Config, seeds *protocol.SeedSeq, acc *dist.Accumulator) ([]bool, error) {
	set, _, err := goodNodesRun(g, cfg, seeds, acc)
	return set, err
}

var _ Inner = goodNodesInner{}
