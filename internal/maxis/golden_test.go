package maxis_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata golden files")

// goldenSolveRecord pins everything the refactor must keep bit-identical
// for one algorithm × seed combination: the returned set, its weight, and
// every congest.Result counter aggregated into Metrics.
type goldenSolveRecord struct {
	Alg            string `json:"alg"`
	Seed           uint64 `json:"seed"`
	Set            []int  `json:"set"`
	Weight         int64  `json:"weight"`
	Rounds         int    `json:"rounds"`
	Messages       int64  `json:"messages"`
	Bits           int64  `json:"bits"`
	MaxMessageBits int    `json:"max_message_bits"`
	Phases         int    `json:"phases"`
}

// TestGoldenSolveParity locks Solve's observable behaviour across the
// protocol-registry refactor: for every algorithm and seed the node
// outputs, set weight and Result counters must match the goldens generated
// from the pre-refactor tree (regenerate only deliberately, with
// -update-golden).
func TestGoldenSolveParity(t *testing.T) {
	weighted := gen.Weighted(gen.GNP(48, 0.1, 7), gen.PolyWeights(2), 7)
	unit := gen.GNP(48, 0.1, 7)

	var got []goldenSolveRecord
	for _, name := range maxis.AlgorithmNames() {
		g := weighted
		if name == "theorem5" {
			// Theorem5 rejects weighted inputs by contract.
			g = unit
		}
		for _, seed := range []uint64{1, 2} {
			res, err := maxis.Solve(name, g, 0.5, 0, maxis.Config{Seed: seed})
			if err != nil {
				t.Fatalf("Solve(%s, seed=%d): %v", name, seed, err)
			}
			set := []int{}
			for v, in := range res.Set {
				if in {
					set = append(set, v)
				}
			}
			got = append(got, goldenSolveRecord{
				Alg:            name,
				Seed:           seed,
				Set:            set,
				Weight:         res.Weight,
				Rounds:         res.Metrics.Rounds,
				Messages:       res.Metrics.Messages,
				Bits:           res.Metrics.Bits,
				MaxMessageBits: res.Metrics.MaxMessageBits,
				Phases:         res.Metrics.Phases,
			})
		}
	}

	path := filepath.Join("testdata", "golden_solve.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d records to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want []goldenSolveRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden has %d records, run produced %d", len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("golden drift for %s seed=%d:\n got  %+v\n want %+v",
				want[i].Alg, want[i].Seed, got[i], want[i])
		}
	}
}
