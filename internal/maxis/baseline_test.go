package maxis

import (
	"testing"

	"distmwis/internal/exact"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/mis"
)

func TestBarYehudaDeltaApproximation(t *testing.T) {
	for name, g := range smallSuite(t) {
		t.Run(name, func(t *testing.T) {
			res, err := BarYehuda(g, Config{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !g.IsIndependentSet(res.Set) {
				t.Fatal("dependent set")
			}
			delta := g.MaxDegree()
			if delta == 0 {
				delta = 1
			}
			assertRatio(t, g, res.Weight, float64(delta), name)
		})
	}
}

func TestBarYehudaScalesTrackLogW(t *testing.T) {
	g := gen.Cycle(64)
	for _, maxW := range []int64{1, 1 << 4, 1 << 10, 1 << 20} {
		wg := gen.Weighted(g, gen.UniformWeights(maxW), 5)
		res, err := BarYehuda(wg, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		scales := int(res.Extra["scales"])
		logW := int(res.Extra["log_w"])
		if scales > logW+1 {
			t.Errorf("maxW=%d: %d scales > logW+1 = %d", maxW, scales, logW+1)
		}
	}
}

func TestBarYehudaRoundsGrowWithLogW(t *testing.T) {
	// The baseline's defining weakness: rounds scale with log W. Compare
	// W = 2 against W = 2^20 on the same topology.
	g := gen.GNP(150, 0.05, 6)
	small, err := BarYehuda(gen.Weighted(g, gen.UniformWeights(2), 6), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := BarYehuda(gen.Weighted(g, gen.UniformWeights(1<<20), 6), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if large.Metrics.Rounds <= small.Metrics.Rounds {
		t.Errorf("rounds did not grow with log W: W=2 → %d, W=2^20 → %d", small.Metrics.Rounds, large.Metrics.Rounds)
	}
}

func TestTheorem2RoundsFlatInWButBaselineGrows(t *testing.T) {
	// The headline improvement is the removal of the log W factor: the
	// baseline's rounds grow with W while Theorem 2's stay flat. (The
	// absolute crossover point depends on constants and is charted by
	// experiment E4; the W-scaling contrast is the invariant worth
	// asserting.)
	topo := gen.GNP(300, 0.1, 7)
	smallW := gen.Weighted(topo, gen.UniformWeights(4), 7)
	largeW := gen.Weighted(topo, gen.UniformWeights(1<<24), 7)

	fastSmall, err := Theorem2(smallW, 1, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fastLarge, err := Theorem2(largeW, 1, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fastLarge.Metrics.Rounds > 2*fastSmall.Metrics.Rounds {
		t.Errorf("Theorem 2 rounds should be flat in W: W=4 → %d, W=2^24 → %d", fastSmall.Metrics.Rounds, fastLarge.Metrics.Rounds)
	}
}

func TestBaselineGrowthMeasured(t *testing.T) {
	// Directional measured check: the baseline costs strictly more rounds
	// at W = 2^24 than at W = 4 on the same topology and seed.
	topo := gen.GNP(300, 0.1, 7)
	small, err := BarYehuda(gen.Weighted(topo, gen.UniformWeights(4), 7), Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	large, err := BarYehuda(gen.Weighted(topo, gen.UniformWeights(1<<24), 7), Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if large.Metrics.Rounds <= small.Metrics.Rounds {
		t.Errorf("baseline rounds did not grow with W: %d vs %d", small.Metrics.Rounds, large.Metrics.Rounds)
	}
}

func TestBudgetSeparation(t *testing.T) {
	// The theory-faithful budgets must reproduce the paper's comparison:
	// the baseline's budget grows linearly in log W while Theorem 2's is
	// flat, and at W = poly(n) the baseline budget is strictly larger.
	alg := mis.Ghaffari{}
	const n, delta = 1 << 16, 4096
	eps := 1.0
	deltaH := DeltaHBound(n, 2.0)
	thm2 := BudgetTheorem2(alg, n, deltaH, eps)

	prev := 0
	for _, logW := range []int{8, 16, 32, 48} {
		base := BudgetBarYehuda(alg, n, delta, int64(1)<<uint(logW-1))
		if base <= prev {
			t.Errorf("baseline budget not increasing in log W at %d", logW)
		}
		prev = base
	}
	// W = n^3 → log W = 48.
	base := BudgetBarYehuda(alg, n, delta, int64(1)<<48)
	if thm2 >= base {
		t.Errorf("Theorem 2 budget %d should beat baseline budget %d at W = n³", thm2, base)
	}
}

func TestBudgetFormulasSane(t *testing.T) {
	alg := mis.Luby{}
	if BudgetGoodNodes(alg, 1024, 32) <= 0 {
		t.Error("non-positive budget")
	}
	if BudgetTheorem1(alg, 1024, 32, 0.5) <= BudgetTheorem1(alg, 1024, 32, 1.0) {
		t.Error("smaller epsilon must cost more phases")
	}
	if BudgetTheorem3(mis.Ghaffari{}, 4096, 2, 1) <= 0 {
		t.Error("non-positive arboricity budget")
	}
	if BudgetTheorem5(0.5, 4) <= 0 {
		t.Error("non-positive theorem 5 budget")
	}
	if DeltaHBound(1, 2) != 1 {
		t.Error("DeltaHBound edge case")
	}
}

func TestBarYehudaUnitWeightsIsOneScale(t *testing.T) {
	g := gen.Cycle(40)
	res, err := BarYehuda(g, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(res.Extra["scales"]); got != 1 {
		t.Errorf("unit weights used %d scales, want 1", got)
	}
	// With unit weights the result is a full MIS: maximality must hold.
	if !g.IsMaximalIS(res.Set) {
		t.Error("unit-weight baseline should produce an MIS")
	}
}

func TestBarYehudaZeroWeightGraph(t *testing.T) {
	g := gen.Cycle(10).WithWeights(make([]int64, 10))
	res, err := BarYehuda(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if graph.SetSize(res.Set) != 0 {
		t.Error("zero-weight graph should give empty set")
	}
}

func TestBaselineVsExactOnTrees(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := gen.Weighted(gen.RandomTree(200, seed), gen.PolyWeights(1), seed)
		opt, _, err := exact.ForestMWIS(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BarYehuda(g, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Weight)*float64(g.MaxDegree()) < float64(opt) {
			t.Errorf("seed %d: Δ-approximation violated: %d · Δ < %d", seed, res.Weight, opt)
		}
	}
}
