package maxis

import (
	"fmt"

	"distmwis/internal/graph"
)

// ComponentStats reports how much of a component-wise solve was recomputed
// versus reused — the economics of incremental re-solve after a mutation.
type ComponentStats struct {
	// Components is the number of connected components in the graph.
	Components int
	// Solved counts components computed fresh this call.
	Solved int
	// Reused counts components answered from the caller's lookup.
	Reused int
}

// ComponentCache is the reuse seam of SolveByComponent. Lookup resolves a
// component content hash to a previously computed member list (indices in
// the component's own 0..k-1 numbering); Store records a fresh solve for
// future reuse. Either function may be nil. Implementations must treat the
// hash as authoritative: a hit must have been stored for a component with
// the identical canonical form under the identical solve configuration.
type ComponentCache struct {
	Lookup func(hash string) ([]int32, bool)
	Store  func(hash string, set []int32, weight int64)
}

// SolveByComponent solves g component by component: each connected
// component is induced (deterministically, in ascending node order),
// content-hashed, and either answered from the cache or solved fresh with
// the named algorithm; the per-component sets are lifted back and unioned.
//
// This is the incremental re-solve entry point for dynamic graphs: after a
// mutation, only components whose content actually changed have new hashes,
// so a content-addressed cache re-solves exactly the affected subgraphs.
// Three properties make the reuse sound:
//
//   - components share no edges, so the union of per-component independent
//     sets is independent — no cross-component conflicts can exist;
//   - the induced numbering is a pure function of the graph, so solving a
//     component in isolation is deterministic and cache hits are
//     bit-identical to fresh solves of the same content;
//   - identifiers are unique within a graph, so two distinct components
//     can never alias one content hash.
//
// Note the decomposition is part of the answer's identity: per-component
// node indices differ from whole-graph indices, so a component-wise solve
// of a connected graph may legitimately differ from Solve on the same
// graph. Callers must therefore key caches for component-wise answers
// distinctly from whole-graph ones.
func SolveByComponent(name string, g *graph.Graph, eps float64, alpha int, cfg Config, cache ComponentCache) (*Result, ComponentStats, error) {
	n := g.N()
	comp, count := g.Components()
	stats := ComponentStats{Components: count}
	out := &Result{Set: make([]bool, n)}

	keep := make([]bool, n)
	for c := 0; c < count; c++ {
		for v := 0; v < n; v++ {
			keep[v] = comp[v] == int32(c)
		}
		sub := g.Induce(keep)
		hash := sub.G.HashString()
		if cache.Lookup != nil {
			if members, ok := cache.Lookup(hash); ok {
				stats.Reused++
				for _, i := range members {
					if int(i) < 0 || int(i) >= len(sub.ToParent) {
						return nil, stats, fmt.Errorf("maxis: component cache for %s returned out-of-range member %d", hash[:12], i)
					}
					out.Set[sub.ToParent[i]] = true
				}
				continue
			}
		}
		res, err := Solve(name, sub.G, eps, alpha, cfg)
		if err != nil {
			return nil, stats, fmt.Errorf("maxis: component %d/%d: %w", c, count, err)
		}
		stats.Solved++
		out.Metrics.Add(res.Metrics)
		var members []int32
		for i, in := range res.Set {
			if in {
				out.Set[sub.ToParent[i]] = true
				members = append(members, int32(i))
			}
		}
		if cache.Store != nil {
			cache.Store(hash, members, res.Weight)
		}
	}
	out.Weight = g.SetWeight(out.Set)
	return out, stats, nil
}
