package maxis

import (
	"fmt"

	"distmwis/internal/congest"
	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
	"distmwis/internal/wire"
)

// planarDegreeCap is the low-degree threshold for PlanarConstantRound.
// Planar graphs have average degree < 6, so more than half of the nodes
// have degree ≤ 11.
const planarDegreeCap = 11

// PlanarConstantRound is the O(1)-round O(1)-approximation for unweighted
// planar (more generally, average-degree-bounded) graphs from the paper's
// Related Work line [23, 32] (Czygrinow–Hanckowiak–Wawrzyniak; Lenzen–
// Wattenhofer), realized through this repository's machinery:
//
//  1. one round restricts attention to nodes of degree ≤ 11 — in a planar
//     graph that is more than n/2 nodes (average degree < 6);
//  2. the Boppana ranking algorithm runs on that bounded-degree subgraph;
//     by the Theorem 11 martingale analysis it returns an independent set
//     of size ≥ (n/2)/(8·(11+1)) = n/192 with high probability.
//
// Since OPT ≤ n, the result is a 192-approximation (constant) in O(1)
// rounds — impossible for general graphs by Theorem 4, which is exactly
// the contrast the experiment suite draws. Requires a unit-weight graph.
func PlanarConstantRound(g *graph.Graph, cfg Config) (*Result, error) {
	if !g.IsUnitWeight() {
		return nil, fmt.Errorf("maxis: PlanarConstantRound requires an unweighted graph")
	}
	cfg = cfg.Normalized(g)
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator

	// One round to learn which neighbours are low-degree (each node
	// broadcasts a single bit).
	res, err := dist.RunPhase(g, func() congest.Process { return &degreeCapFlag{cap: planarDegreeCap} }, &acc, cfg.Phase("lowdeg-flag").Opts(seeds.Next())...)
	if err != nil {
		return nil, err
	}
	low := congest.BoolOutputs(res)
	sub := g.Induce(low)
	acc.AddRounds(1)
	if sub.G.N() == 0 {
		return finish(g, make([]bool, g.N()), cfg, acc, "planar-constant", nil)
	}
	set, err := rankingRun(sub.G, 2, cfg, seeds, &acc)
	if err != nil {
		return nil, err
	}
	lifted := sub.LiftSet(set)
	return finish(g, lifted, cfg, acc, "planar-constant", map[string]float64{
		"low_degree_nodes": float64(sub.G.N()),
		"size_bound":       float64(sub.G.N()) / (8 * float64(planarDegreeCap+1)),
	})
}

// degreeCapFlag marks nodes of degree ≤ cap after a one-bit exchange (the
// bit is only needed so neighbours can drop edges towards high-degree
// nodes; the flag itself is local knowledge).
type degreeCapFlag struct {
	info congest.NodeInfo
	cap  int
}

func (p *degreeCapFlag) Init(info congest.NodeInfo) { p.info = info }

func (p *degreeCapFlag) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	var w wire.Writer
	w.WriteBool(p.info.Degree <= p.cap)
	return broadcast(congest.NewPooledMessage(&w), p.info.Degree), true
}

func (p *degreeCapFlag) Output() any { return p.info.Degree <= p.cap }
