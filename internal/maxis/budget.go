package maxis

import (
	"math"
	"math/bits"

	"distmwis/internal/mis"
)

// This file computes the *theory-faithful* round budgets of each algorithm.
//
// The simulator reports measured rounds with global termination detection —
// a phase whose residual graph happens to be empty costs almost nothing.
// Real synchronous phase composition cannot do that: nodes cannot detect
// global termination of a black-box MIS invocation, so every phase runs for
// its declared w.h.p. budget MIS(n, Δ) (this is exactly how the paper's
// round bounds O(MIS·logW), O(MIS/ε), O(T·log n) arise). The Budget*
// functions instantiate those bounds with the concrete budgets declared by
// each mis.Algorithm, so experiment tables can show the paper's comparison
// on equal footing next to the measured numbers.

// perPhaseOverhead is the constant bookkeeping cost charged per local-ratio
// phase: active-flag exchange, weight-reduction announcement, and the
// good-node detection rounds.
const perPhaseOverhead = 4

// BudgetGoodNodes is the Theorem 8 budget: one MIS(n, Δ) plus detection.
func BudgetGoodNodes(alg mis.Algorithm, n, delta int) int {
	return alg.RoundBudget(n, delta) + 2
}

// BudgetSparsified is the Theorem 9 budget: the 3-round sampling protocol
// plus GoodNodes on a graph of maximum degree deltaH = O(log n).
func BudgetSparsified(alg mis.Algorithm, n, deltaH int) int {
	return 3 + BudgetGoodNodes(alg, n, deltaH)
}

// boostPhases is t = ⌈c/ε⌉.
func boostPhases(c int, eps float64) int {
	return int(math.Ceil(float64(c) / eps))
}

// BudgetTheorem1 is the Theorem 1 bound O(MIS(n,Δ)/ε): t = ⌈8/ε⌉ phases of
// GoodNodes plus the pop stage.
func BudgetTheorem1(alg mis.Algorithm, n, delta int, eps float64) int {
	t := boostPhases(8, eps)
	return t*(BudgetGoodNodes(alg, n, delta)+perPhaseOverhead) + t
}

// BudgetTheorem2 is the Theorem 2 bound: t = ⌈16/ε⌉ phases of Sparsified —
// whose MIS black box only ever sees degree deltaH = O(log n) — plus pops.
// DeltaHBound returns the a-priori deltaH for a given n and λ.
func BudgetTheorem2(alg mis.Algorithm, n, deltaH int, eps float64) int {
	t := boostPhases(16, eps)
	return t*(BudgetSparsified(alg, n, deltaH)+perPhaseOverhead) + t
}

// DeltaHBound is the Lemma 3 sparsifier degree bound 4λ·log₂ n used when
// budgeting Theorem 2 a priori.
func DeltaHBound(n int, lambda float64) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(4 * lambda * math.Log2(float64(n))))
}

// BudgetLocalRatio is the unscaled local-ratio bound O(MIS(n,Δ)·Δ): at
// most Δ+1 MIS phases on the positive-residual subgraph (see LocalRatio's
// termination argument) plus reductions and pops. The complement of
// BudgetBarYehuda — cheaper exactly when Δ < log W.
func BudgetLocalRatio(alg mis.Algorithm, n, delta int) int {
	phases := delta + 1
	return phases*(alg.RoundBudget(n, delta)+3) + phases
}

// BudgetBarYehuda is the [8] baseline bound O(MIS(n,Δ)·log W): one MIS per
// weight scale plus reductions and pops.
func BudgetBarYehuda(alg mis.Algorithm, n, delta int, maxW int64) int {
	return BudgetBarYehudaLogW(alg, n, delta, bits.Len64(uint64(maxW)))
}

// BudgetBarYehudaLogW is BudgetBarYehuda parameterized directly by
// ⌈log₂ W⌉, for budget evaluations at W beyond int64 range.
func BudgetBarYehudaLogW(alg mis.Algorithm, n, delta, logW int) int {
	scales := logW + 1
	return scales*(alg.RoundBudget(n, delta)+3) + scales
}

// BudgetTheorem3 is the Theorem 12 bound O(T·log n): log n + 1 phases, each
// running the inner (1+ε)Δ-approximation on a ≤4α-degree subgraph.
func BudgetTheorem3(alg mis.Algorithm, n, alpha int, eps float64) int {
	phases := bits.Len(uint(n)) + 1
	deltaSub := 4 * alpha
	deltaH := deltaSub
	if h := DeltaHBound(n, 2.0); h < deltaH {
		deltaH = h
	}
	return phases * (BudgetTheorem2(alg, n, deltaH, eps) + 3)
}

// BudgetTheorem5 is the Theorem 5 bound O(1/ε): t = ⌈16/ε⌉ phases of the
// O(c)-round ranking algorithm plus pops.
func BudgetTheorem5(eps float64, rankRounds int) int {
	t := boostPhases(16, eps)
	return t*(rankRounds+perPhaseOverhead) + t
}
