package maxis

import (
	"strings"
	"testing"

	"distmwis/internal/exact"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

func TestArboricityOnForest(t *testing.T) {
	// Forests have α = 1; the exact optimum is computable at any size, so
	// the 8(1+ε)·1 guarantee is checkable directly.
	for seed := uint64(1); seed <= 5; seed++ {
		g := gen.Weighted(gen.RandomTree(300, seed), gen.UniformWeights(1000), seed)
		opt, _, err := exact.ForestMWIS(g)
		if err != nil {
			t.Fatal(err)
		}
		eps := 0.5
		res, err := Theorem3(g, 1, eps, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsIndependentSet(res.Set) {
			t.Fatal("dependent set")
		}
		if float64(res.Weight)*Guarantee8Alpha(1, eps) < float64(opt) {
			t.Errorf("seed %d: weight %d below OPT %d / %.1f", seed, res.Weight, opt, Guarantee8Alpha(1, eps))
		}
	}
}

func TestArboricityOnApollonian(t *testing.T) {
	// Apollonian networks: α ≤ 3, Δ grows large — the Theorem 3 sweet spot.
	g := gen.Weighted(gen.Apollonian(64, 3), gen.UniformWeights(500), 3)
	opt, _, err := exact.MWIS(g)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.5
	res, err := Theorem3(g, 3, eps, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Weight)*Guarantee8Alpha(3, eps) < float64(opt) {
		t.Errorf("weight %d below OPT %d / %.1f", res.Weight, opt, Guarantee8Alpha(3, eps))
	}
}

func TestArboricityUnionOfForests(t *testing.T) {
	for _, k := range []int{2, 4} {
		g := gen.Weighted(gen.UnionOfForests(200, k, uint64(k)), gen.UniformWeights(100), uint64(k))
		res, err := Theorem3(g, k, 0.5, Config{Seed: 2})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !g.IsIndependentSet(res.Set) {
			t.Fatal("dependent set")
		}
		// Certified lower bound via the stack property plus Theorem 12:
		// weight ≥ OPT / (8(1+ε)α) ≥ CaroWei / (8(1+ε)α).
		bound := exact.CaroWeiLowerBound(g) / Guarantee8Alpha(k, 0.5)
		if float64(res.Weight) < bound {
			t.Errorf("k=%d: weight %d below certified bound %.1f", k, res.Weight, bound)
		}
	}
}

func TestArboricityPhasesLogarithmic(t *testing.T) {
	g := gen.Weighted(gen.RandomTree(4096, 7), gen.UniformWeights(50), 7)
	res, err := Arboricity(g, 1, 1, goodNodesInner{}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// log2(4096) + 2 = 14.
	if res.Phases > 14 {
		t.Errorf("phases = %d > log n + 2", res.Phases)
	}
}

func TestArboricityRejectsTooSmallAlpha(t *testing.T) {
	// K20 has arboricity 10; alpha = 1 must be detected via the halving
	// check (< half the nodes have degree ≤ 4).
	g := gen.Weighted(gen.Clique(20), gen.UniformWeights(10), 1)
	_, err := Arboricity(g, 1, 1, goodNodesInner{}, Config{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "arboricity") {
		t.Errorf("expected arboricity violation error, got %v", err)
	}
}

func TestArboricityDefaultAlphaFromDegeneracy(t *testing.T) {
	g := gen.Weighted(gen.Apollonian(80, 5), gen.UniformWeights(100), 5)
	res, err := Arboricity(g, 0, 1, goodNodesInner{}, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Extra["alpha"] != 3 { // Apollonian degeneracy = 3
		t.Errorf("default alpha = %v, want 3", res.Extra["alpha"])
	}
}

func TestArboricityBeatsDeltaOnHighDegreeLowArboricity(t *testing.T) {
	// Caterpillar with many legs: α = 1, Δ = legs + 2. The 8(1+ε)α bound
	// (12 at ε=0.5) is far better than (1+ε)Δ = 1.5·52. Verify the achieved
	// ratio is within the arboricity guarantee.
	g := gen.Weighted(gen.Caterpillar(40, 50), gen.UniformWeights(100), 6)
	opt, _, err := exact.ForestMWIS(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Theorem3(g, 1, 0.5, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(opt) / float64(res.Weight)
	if ratio > Guarantee8Alpha(1, 0.5) {
		t.Errorf("ratio %.2f above 8(1+ε)α = %.1f", ratio, Guarantee8Alpha(1, 0.5))
	}
}

func TestArboricityStackValueRecorded(t *testing.T) {
	g := gen.Weighted(gen.RandomTree(100, 8), gen.UniformWeights(40), 8)
	res, err := Theorem3(g, 1, 1, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.StackValue <= 0 || res.Weight < res.StackValue {
		t.Errorf("stack accounting wrong: w=%d stack=%d", res.Weight, res.StackValue)
	}
}

func TestGuaranteeHelpers(t *testing.T) {
	if got := Guarantee8Alpha(2, 0.5); got != 24 {
		t.Errorf("Guarantee8Alpha = %v, want 24", got)
	}
	if got := GuaranteeDelta(10, 0.1); got < 10.99 || got > 11.01 {
		t.Errorf("GuaranteeDelta = %v, want 11", got)
	}
	if got := GuaranteeCorollary1(100, 4, 1); got != 10 {
		t.Errorf("GuaranteeCorollary1 = %v, want 10", got)
	}
}

func TestArboricityRejectsBadEpsilon(t *testing.T) {
	g := gen.Cycle(10)
	if _, err := Arboricity(g, 2, 0, goodNodesInner{}, Config{}); err == nil {
		t.Error("expected error for ε = 0")
	}
}

func TestArboricityEmptyAndTiny(t *testing.T) {
	empty := graph.NewBuilder(0).MustBuild()
	if _, err := Arboricity(empty, 1, 1, goodNodesInner{}, Config{}); err != nil {
		t.Errorf("empty graph: %v", err)
	}
	single := gen.Weighted(graph.NewBuilder(1).MustBuild(), gen.UniformWeights(5), 1)
	res, err := Arboricity(single, 1, 1, goodNodesInner{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Set[0] {
		t.Error("single positive node must be selected")
	}
}
