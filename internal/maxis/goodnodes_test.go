package maxis

import (
	"testing"

	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/mis"
	"distmwis/internal/protocol"
)

// weightedSuite builds the standard weighted test graphs.
func weightedSuite(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	reg, err := gen.RandomRegular(80, 8, 3)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]*graph.Graph{
		"cycle-unit":     gen.Cycle(40),
		"cycle-weighted": gen.Weighted(gen.Cycle(40), gen.UniformWeights(1000), 1),
		"clique":         gen.Weighted(gen.Clique(30), gen.UniformWeights(100), 2),
		"star":           gen.Weighted(gen.Star(50), gen.SkewedWeights(0.05, 1<<16), 3),
		"gnp":            gen.Weighted(gen.GNP(200, 0.05, 4), gen.PolyWeights(2), 4),
		"regular":        gen.Weighted(reg, gen.ExponentialSpreadWeights(16), 5),
		"tree":           gen.Weighted(gen.RandomTree(120, 6), gen.UniformWeights(500), 6),
		"bipartite":      gen.Weighted(gen.CompleteBipartite(10, 15), gen.UniformWeights(50), 7),
		"isolated":       gen.Weighted(graph.NewBuilder(10).MustBuild(), gen.UniformWeights(9), 8),
		"apollonian":     gen.Weighted(gen.Apollonian(100, 9), gen.UniformWeights(64), 9),
	}
}

// assertTheorem8 checks the deterministic guarantee w(I) ≥ w(V)/(4(Δ+1)).
func assertTheorem8(t *testing.T, g *graph.Graph, got int64) {
	t.Helper()
	lhs := 4 * int64(g.MaxDegree()+1) * got
	if lhs < g.TotalWeight() {
		t.Errorf("Theorem 8 guarantee violated: 4(Δ+1)·w(I) = %d < w(V) = %d", lhs, g.TotalWeight())
	}
}

func TestGoodNodesGuarantee(t *testing.T) {
	for name, g := range weightedSuite(t) {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				res, err := GoodNodes(g, Config{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if !g.IsIndependentSet(res.Set) {
					t.Fatal("dependent set")
				}
				assertTheorem8(t, g, res.Weight)
			}
		})
	}
}

func TestGoodNodesWithAllMISBoxes(t *testing.T) {
	g := gen.Weighted(gen.GNP(150, 0.06, 10), gen.UniformWeights(999), 11)
	for _, alg := range []mis.Algorithm{mis.Luby{}, mis.Ghaffari{}, mis.Rank{}} {
		t.Run(alg.Name(), func(t *testing.T) {
			res, err := GoodNodes(g, Config{MIS: alg, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			assertTheorem8(t, g, res.Weight)
		})
	}
}

func TestGoodDetectMatchesDefinition(t *testing.T) {
	// Verify the protocol's good flags against a host-side computation of
	// w(v) ≥ w(N⁺(v))/(2(δ(v)+1)).
	g := gen.Weighted(gen.GNP(120, 0.08, 12), gen.UniformWeights(100), 13)
	cfg := Config{Seed: 5}.Normalized(g)
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator
	_, good, err := goodNodesRun(g, cfg, seeds, &acc)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		delta := g.Degree(v)
		sum := g.Weight(v)
		for _, u := range g.Neighbors(v) {
			if g.Degree(int(u)) > delta {
				delta = g.Degree(int(u))
			}
			sum += g.Weight(int(u))
		}
		want := 2*int64(delta+1)*g.Weight(v) >= sum
		if good[v] != want {
			t.Errorf("node %d: good = %v, want %v", v, good[v], want)
		}
	}
}

func TestGoodNodesOnUniformWeightsIsLargeOnSparse(t *testing.T) {
	// Every node of a regular unit-weight graph is good, so the result is a
	// full MIS.
	g := gen.Cycle(60)
	res, err := GoodNodes(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mis.Verify(g, res.Set); err != nil {
		t.Errorf("on a regular unit-weight graph the good subgraph is everything, so output must be an MIS: %v", err)
	}
}

func TestGoodNodesHeavyHubWins(t *testing.T) {
	// A star whose hub holds nearly all weight: the hub is the only good
	// node with weight mattering; the result must include the hub.
	g := gen.Star(30).WithWeights(append([]int64{1 << 20}, make([]int64, 29)...))
	// Leaves need positive weights for the builder-free WithWeights path.
	w := g.Weights()
	for i := 1; i < len(w); i++ {
		w[i] = 1
	}
	g = g.WithWeights(w)
	res, err := GoodNodes(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Set[0] {
		t.Error("hub with dominant weight not selected")
	}
	assertTheorem8(t, g, res.Weight)
}

func TestGoodNodesRoundsAreMISPlusConstant(t *testing.T) {
	g := gen.Weighted(gen.GNP(300, 0.03, 14), gen.UniformWeights(100), 15)
	res, err := GoodNodes(g, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	misRes, err := mis.Compute(mis.Luby{}, g)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds must be within a small constant plus the MIS cost; very loose
	// sanity bound (3x + 10).
	if res.Metrics.Rounds > 3*misRes.Exec.Rounds+10 {
		t.Errorf("GoodNodes rounds %d ≫ MIS rounds %d", res.Metrics.Rounds, misRes.Exec.Rounds)
	}
}

func TestGoodNodesEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	res, err := GoodNodes(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 0 || len(res.Set) != 0 {
		t.Error("empty graph should give empty result")
	}
}
