package maxis

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"distmwis/internal/exact"
	"distmwis/internal/fault"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/mis"
)

// randomGraphFromBytes deterministically builds a small weighted graph from
// fuzz-style byte input, for property tests.
func randomGraphFromBytes(n int, edges []uint16, weights []uint8) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(edges); i += 2 {
		u, v := int(edges[i])%n, int(edges[i+1])%n
		if u != v {
			b.AddEdge(u, v)
		}
	}
	for v := 0; v < n; v++ {
		w := int64(1)
		if v < len(weights) {
			w = 1 + int64(weights[v])
		}
		b.SetWeight(v, w)
	}
	return b.MustBuild()
}

// TestQuickTheorem1Invariants: on arbitrary random small graphs, Theorem 1
// always returns an independent set satisfying the Corollary 1 bound and
// the (1+ε)Δ ratio against the exact optimum.
func TestQuickTheorem1Invariants(t *testing.T) {
	f := func(edges []uint16, weights []uint8, seed uint16) bool {
		const n, eps = 18, 0.5
		g := randomGraphFromBytes(n, edges, weights)
		res, err := Theorem1(g, eps, Config{Seed: uint64(seed) + 1})
		if err != nil {
			return false
		}
		if !g.IsIndependentSet(res.Set) {
			return false
		}
		if float64(res.Weight) < GuaranteeCorollary1(g.TotalWeight(), g.MaxDegree(), eps)-1e-9 {
			return false
		}
		opt, _, err := exact.MWIS(g)
		if err != nil {
			return false
		}
		delta := g.MaxDegree()
		if delta == 0 {
			delta = 1
		}
		return float64(res.Weight)*(1+eps)*float64(delta) >= float64(opt)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickGoodNodesGuarantee: the deterministic Theorem 8 bound holds on
// arbitrary random graphs.
func TestQuickGoodNodesGuarantee(t *testing.T) {
	f := func(edges []uint16, weights []uint8, seed uint16) bool {
		const n = 24
		g := randomGraphFromBytes(n, edges, weights)
		res, err := GoodNodes(g, Config{Seed: uint64(seed) + 1})
		if err != nil {
			return false
		}
		return g.IsIndependentSet(res.Set) &&
			4*int64(g.MaxDegree()+1)*res.Weight >= g.TotalWeight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickLocalRatioTheorem numerically validates Theorem 6 (the
// local-ratio theorem, quoted from Bar-Noy et al. [7]): for any weight
// decomposition w = w1 + w2 and ANY independent set I,
//
//	OPT_w / w(I)  ≤  max( OPT_w1 / w1(I), OPT_w2 / w2(I) ).
//
// This is the exact statement the boosting machinery (Section 4.3) relies
// on; validating it against brute-force optima anchors the whole pipeline.
func TestQuickLocalRatioTheorem(t *testing.T) {
	f := func(edges []uint16, weights []uint8, split []uint8, pick uint32) bool {
		const n = 10
		g := randomGraphFromBytes(n, edges, weights)
		// Random decomposition w = w1 + w2.
		w1 := make([]int64, n)
		w2 := make([]int64, n)
		for v := 0; v < n; v++ {
			s := int64(0)
			if v < len(split) {
				s = int64(split[v]) % (g.Weight(v) + 1)
			}
			w1[v] = s
			w2[v] = g.Weight(v) - s
		}
		g1, g2 := g.WithWeights(w1), g.WithWeights(w2)
		optW, _, err := exact.MWIS(g)
		if err != nil {
			return false
		}
		opt1, _, err := exact.MWIS(g1)
		if err != nil {
			return false
		}
		opt2, _, err := exact.MWIS(g2)
		if err != nil {
			return false
		}
		// A random independent set I.
		rng := rand.New(rand.NewPCG(uint64(pick), 7))
		set := make([]bool, n)
		for _, v := range rng.Perm(n) {
			ok := true
			for _, u := range g.Neighbors(v) {
				if set[u] {
					ok = false
					break
				}
			}
			if ok && rng.IntN(3) > 0 {
				set[v] = true
			}
		}
		iw := g.SetWeight(set)
		i1 := g1.SetWeight(set)
		i2 := g2.SetWeight(set)
		if iw <= 0 {
			return true // ratio undefined; theorem trivially irrelevant
		}
		// r-approx wrt w1 and w2 with r = max of the two ratios (treating
		// a zero denominator with positive OPT as +inf ⇒ skip).
		ratio := func(opt, val int64) (float64, bool) {
			if val <= 0 {
				return 0, opt <= 0
			}
			return float64(opt) / float64(val), true
		}
		r1, ok1 := ratio(opt1, i1)
		r2, ok2 := ratio(opt2, i2)
		if !ok1 || !ok2 {
			return true // I is not an r-approx for finite r on a part
		}
		r := r1
		if r2 > r {
			r = r2
		}
		if r < 1 {
			r = 1
		}
		// Theorem 6: I is r-approximate w.r.t. w.
		return float64(optW) <= r*float64(iw)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestTheorem1DeterministicEndToEnd instantiates Theorem 1 with the
// deterministic GreedyByID black box: the full pipeline must be
// seed-independent, which is the theorem's "deterministic" reading.
func TestTheorem1DeterministicEndToEnd(t *testing.T) {
	g := randomGraphFromBytes(40, []uint16{
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 2, 9, 4, 17, 21, 33, 14, 35,
		6, 28, 30, 31, 18, 19, 22, 39, 0, 13, 25, 26, 11, 38, 15, 16,
	}, []uint8{9, 3, 200, 41, 77, 12, 90, 4, 60, 33})
	cfg1 := Config{Seed: 1, MIS: mis.GreedyByID{}}
	cfg2 := Config{Seed: 424242, MIS: mis.GreedyByID{}}
	a, err := Theorem1(g, 0.5, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Theorem1(g, 0.5, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight != b.Weight {
		t.Fatalf("deterministic pipeline produced different weights: %d vs %d", a.Weight, b.Weight)
	}
	for v := range a.Set {
		if a.Set[v] != b.Set[v] {
			t.Fatal("deterministic pipeline produced different sets across seeds")
		}
	}
	// And the guarantee still holds.
	opt, _, err := exact.MWIS(g)
	if err != nil {
		t.Fatal(err)
	}
	if float64(a.Weight)*1.5*float64(g.MaxDegree()) < float64(opt) {
		t.Error("deterministic pipeline violated (1+ε)Δ guarantee")
	}
}

// TestFaultSchedulesKeepIndependence is the graceful-degradation safety
// property: every MaxIS pipeline in the package returns an independent set
// on random G(n,p) inputs under message loss, duplication, corruption,
// crash-stop, crash-recovery, and early truncation — in any combination.
// Weight may degrade arbitrarily; independence may not.
func TestFaultSchedulesKeepIndependence(t *testing.T) {
	algs := []struct {
		name string
		unit bool // algorithm requires unit weights (Theorem 5)
		run  func(g *graph.Graph, cfg Config) ([]bool, error)
	}{
		{name: "goodnodes", run: func(g *graph.Graph, cfg Config) ([]bool, error) {
			res, err := GoodNodes(g, cfg)
			if err != nil {
				return nil, err
			}
			return res.Set, nil
		}},
		{name: "sparsified", run: func(g *graph.Graph, cfg Config) ([]bool, error) {
			res, err := Sparsified(g, cfg)
			if err != nil {
				return nil, err
			}
			return res.Set, nil
		}},
		{name: "theorem1", run: func(g *graph.Graph, cfg Config) ([]bool, error) {
			res, err := Theorem1(g, 1, cfg)
			if err != nil {
				return nil, err
			}
			return res.Set, nil
		}},
		{name: "theorem2", run: func(g *graph.Graph, cfg Config) ([]bool, error) {
			res, err := Theorem2(g, 1, cfg)
			if err != nil {
				return nil, err
			}
			return res.Set, nil
		}},
		{name: "theorem3", run: func(g *graph.Graph, cfg Config) ([]bool, error) {
			res, err := Theorem3(g, 4, 1, cfg)
			if err != nil {
				return nil, err
			}
			return res.Set, nil
		}},
		{name: "theorem5", unit: true, run: func(g *graph.Graph, cfg Config) ([]bool, error) {
			res, err := Theorem5(g, 1, cfg)
			if err != nil {
				return nil, err
			}
			return res.Set, nil
		}},
		{name: "ranking", run: func(g *graph.Graph, cfg Config) ([]bool, error) {
			res, err := Ranking(g, 2, cfg)
			if err != nil {
				return nil, err
			}
			return res.Set, nil
		}},
		{name: "oneround", run: func(g *graph.Graph, cfg Config) ([]bool, error) {
			res, err := OneRound(g, cfg)
			if err != nil {
				return nil, err
			}
			return res.Set, nil
		}},
		{name: "bar-yehuda", run: func(g *graph.Graph, cfg Config) ([]bool, error) {
			res, err := BarYehuda(g, cfg)
			if err != nil {
				return nil, err
			}
			return res.Set, nil
		}},
	}
	scheds := []fault.Schedule{
		{Seed: 101, Loss: 0.3, Dup: 0.15, Corrupt: 0.15},
		{Seed: 102, CrashFrac: 0.25, CrashAt: 2},
		{Seed: 103, CrashFrac: 0.2, CrashAt: 2, CrashBack: 6},
		{Seed: 104, MaxRounds: 4}, // pure early truncation
		{Seed: 105, Loss: 0.5, Dup: 0.2, Corrupt: 0.2, CrashFrac: 0.2, CrashAt: 1, MaxRounds: 8},
	}
	misAlgs := []mis.Algorithm{mis.Luby{}, mis.GreedyByID{}}
	for _, alg := range algs {
		t.Run(alg.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 2; seed++ {
				g := gen.GNP(70, 0.08, seed)
				if !alg.unit {
					g = gen.Weighted(g, gen.PolyWeights(2), seed)
				}
				for si, sched := range scheds {
					for _, misAlg := range misAlgs {
						if err := sched.Validate(); err != nil {
							t.Fatal(err)
						}
						set, err := alg.run(g, Config{Seed: seed, MIS: misAlg, Faults: sched})
						if err != nil {
							t.Fatalf("seed %d schedule %d mis %s: %v", seed, si, misAlg.Name(), err)
						}
						if rep := fault.CheckIndependence(g, set); !rep.Independent {
							t.Errorf("seed %d schedule %d mis %s: %v", seed, si, misAlg.Name(), rep.Err())
						}
					}
				}
			}
		})
	}
}
