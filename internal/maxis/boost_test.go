package maxis

import (
	"errors"
	"math"
	"strings"
	"testing"

	"distmwis/internal/dist"
	"distmwis/internal/exact"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/protocol"
)

var errSynthetic = errors.New("synthetic failure")

// assertRatio checks w(I)·ratio ≥ OPT for the exact optimum on small graphs.
func assertRatio(t *testing.T, g *graph.Graph, got int64, ratio float64, label string) {
	t.Helper()
	opt, _, err := exact.MWIS(g)
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	if float64(got)*ratio < float64(opt)-1e-9 {
		t.Errorf("%s: weight %d below OPT %d / %.3f", label, got, opt, ratio)
	}
}

// smallSuite holds graphs small enough for exact OPT.
func smallSuite(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	return map[string]*graph.Graph{
		"cycle":     gen.Weighted(gen.Cycle(30), gen.UniformWeights(100), 1),
		"clique":    gen.Weighted(gen.Clique(18), gen.UniformWeights(64), 2),
		"gnp":       gen.Weighted(gen.GNP(40, 0.15, 3), gen.UniformWeights(500), 3),
		"star":      gen.Weighted(gen.Star(25), gen.SkewedWeights(0.1, 1000), 4),
		"tree":      gen.Weighted(gen.RandomTree(35, 5), gen.UniformWeights(200), 5),
		"bipartite": gen.Weighted(gen.CompleteBipartite(8, 10), gen.UniformWeights(50), 6),
		"expspread": gen.Weighted(gen.GNP(36, 0.2, 7), gen.ExponentialSpreadWeights(12), 7),
	}
}

func TestTheorem1ApproximationRatio(t *testing.T) {
	for name, g := range smallSuite(t) {
		for _, eps := range []float64{1, 0.5, 0.25} {
			res, err := Theorem1(g, eps, Config{Seed: 3})
			if err != nil {
				t.Fatalf("%s eps %v: %v", name, eps, err)
			}
			delta := g.MaxDegree()
			if delta == 0 {
				delta = 1
			}
			assertRatio(t, g, res.Weight, (1+eps)*float64(delta), name)
		}
	}
}

func TestTheorem1Corollary1Bound(t *testing.T) {
	// Corollary 1: w(I) ≥ w(V)/((1+ε)(Δ+1)). With the deterministic inner
	// guarantee of Theorem 8, this must hold on every run.
	for name, g := range weightedSuite(t) {
		for _, eps := range []float64{1, 0.5} {
			res, err := Theorem1(g, eps, Config{Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			bound := GuaranteeCorollary1(g.TotalWeight(), g.MaxDegree(), eps)
			if float64(res.Weight) < bound-1e-9 {
				t.Errorf("%s eps %v: weight %d < Corollary 1 bound %.2f", name, eps, res.Weight, bound)
			}
		}
	}
}

func TestTheorem2ApproximationRatio(t *testing.T) {
	for name, g := range smallSuite(t) {
		res, err := Theorem2(g, 0.5, Config{Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		delta := g.MaxDegree()
		if delta == 0 {
			delta = 1
		}
		assertRatio(t, g, res.Weight, (1+0.5)*float64(delta), name)
	}
}

func TestBoostStackProperty(t *testing.T) {
	// Proposition 2 is asserted inside Boost; additionally check the
	// reported stack value is meaningful (positive and ≤ w(I)).
	g := gen.Weighted(gen.GNP(120, 0.06, 9), gen.PolyWeights(2), 9)
	res, err := Theorem1(g, 0.5, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.StackValue <= 0 {
		t.Error("stack value not recorded")
	}
	if res.Weight < res.StackValue {
		t.Errorf("stack property: w(I)=%d < stack=%d", res.Weight, res.StackValue)
	}
}

func TestBoostPhaseBudget(t *testing.T) {
	// t = ceil(c/ε) with c=8 for the good-nodes inner.
	g := gen.Weighted(gen.Cycle(50), gen.UniformWeights(100), 10)
	for _, tc := range []struct {
		eps  float64
		want int
	}{
		{eps: 1, want: 8},
		{eps: 0.5, want: 16},
		{eps: 0.25, want: 32},
	} {
		res, err := Theorem1(g, tc.eps, Config{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Phases > tc.want {
			t.Errorf("eps %v: %d phases > budget %d", tc.eps, res.Phases, tc.want)
		}
	}
}

func TestBoostRejectsBadEpsilon(t *testing.T) {
	g := gen.Cycle(10)
	if _, err := Theorem1(g, 0, Config{}); err == nil {
		t.Error("expected error for ε = 0")
	}
	if _, err := Theorem1(g, -1, Config{}); err == nil {
		t.Error("expected error for negative ε")
	}
}

func TestBoostDeterministicPerSeed(t *testing.T) {
	g := gen.Weighted(gen.GNP(80, 0.08, 12), gen.UniformWeights(77), 12)
	a, err := Theorem1(g, 0.5, Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Theorem1(g, 0.5, Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Set {
		if a.Set[v] != b.Set[v] {
			t.Fatal("Theorem1 not deterministic for fixed seed")
		}
	}
	c, err := Theorem1(g, 0.5, Config{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight == c.Weight && equalSets(a.Set, c.Set) {
		t.Log("different seeds produced identical output (possible but unlikely)")
	}
}

func equalSets(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBoostEpsilonImprovesRatio(t *testing.T) {
	// Smaller ε must not make the worst-case guarantee worse; empirically
	// the achieved weight should be weakly improving on a clique where the
	// approximation is tight.
	g := gen.Weighted(gen.Clique(25), gen.UniformWeights(1000), 14)
	opt, _, err := exact.MWIS(g)
	if err != nil {
		t.Fatal(err)
	}
	var prevRatio float64 = math.Inf(1)
	for _, eps := range []float64{2, 1, 0.5, 0.25} {
		res, err := Theorem1(g, eps, Config{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(opt) / float64(res.Weight)
		// The guarantee is (1+eps)Δ; just confirm it holds here.
		if ratio > (1+eps)*float64(g.MaxDegree())+1e-9 {
			t.Errorf("eps %v: ratio %.2f above guarantee", eps, ratio)
		}
		prevRatio = math.Min(prevRatio, ratio)
	}
}

func TestBoostRoundsScaleWithInverseEpsilon(t *testing.T) {
	g := gen.Weighted(gen.GNP(150, 0.05, 15), gen.UniformWeights(100), 15)
	r1, err := Theorem1(g, 1, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Theorem1(g, 0.25, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Metrics.Rounds < r1.Metrics.Rounds {
		t.Errorf("rounds at ε=0.25 (%d) below ε=1 (%d)", r4.Metrics.Rounds, r1.Metrics.Rounds)
	}
	// O(T/ε): a 4x smaller epsilon should cost at most ~8x the rounds
	// (slack for phase-count rounding and early exit).
	if r4.Metrics.Rounds > 8*r1.Metrics.Rounds+20 {
		t.Errorf("rounds grew superlinearly in 1/ε: %d vs %d", r4.Metrics.Rounds, r1.Metrics.Rounds)
	}
}

func TestTheorem2OnPlantedInstanceAtScale(t *testing.T) {
	// A planted independent set certifies OPT ≥ w(S) at n = 2000, far
	// beyond exact search; the (1+ε)Δ guarantee must hold against it.
	g, planted := gen.PlantedIS(2000, 200, 10_000, 0.01, 5)
	optLB := g.SetWeight(planted)
	eps := 0.5
	res, err := Theorem2(g, eps, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	need := float64(optLB) / ((1 + eps) * float64(g.MaxDegree()))
	if float64(res.Weight) < need {
		t.Errorf("weight %d below planted-certified bound %.1f", res.Weight, need)
	}
	// On this instance the algorithm should in fact recover most of the
	// planted weight (the planted nodes are heavy and sparse).
	if float64(res.Weight) < 0.5*float64(optLB) {
		t.Errorf("weight %d recovers under half the planted optimum %d", res.Weight, optLB)
	}
}

func TestTheorem2LocalModel(t *testing.T) {
	// The LOCAL configuration lifts the bandwidth bound; results keep the
	// same guarantees and the max message size is reported unbounded-legal.
	g := gen.Weighted(gen.GNP(120, 0.08, 21), gen.UniformWeights(500), 21)
	res, err := Theorem2(g, 0.5, Config{Seed: 4, Local: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(res.Set) {
		t.Fatal("dependent set")
	}
	bound := GuaranteeCorollary1(g.TotalWeight(), g.MaxDegree(), 0.5)
	if float64(res.Weight) < bound-1e-9 {
		t.Errorf("weight %d below Corollary 1 bound %.1f in LOCAL", res.Weight, bound)
	}
}

func TestTheorem1TightBandwidth(t *testing.T) {
	// B = 4·log₂ n is tighter than the default 8; all protocol messages
	// must still fit (they are ≤ ~4 log n bits by design).
	g := gen.Weighted(gen.GNP(128, 0.06, 22), gen.UniformWeights(100), 22)
	res, err := Theorem1(g, 1, Config{Seed: 5, BandwidthFactor: 4})
	if err != nil {
		t.Fatalf("Theorem 1 violates B = 4·log n: %v", err)
	}
	if !g.IsIndependentSet(res.Set) {
		t.Fatal("dependent set")
	}
}

func TestInnerErrorPropagates(t *testing.T) {
	g := gen.Weighted(gen.Cycle(12), gen.UniformWeights(5), 16)
	_, err := Boost(g, 0.5, failingInner{}, Config{})
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("inner error not propagated: %v", err)
	}
}

type failingInner struct{}

func (failingInner) Name() string { return "failing" }
func (failingInner) FactorC() int { return 8 }
func (failingInner) Run(*graph.Graph, Config, *protocol.SeedSeq, *dist.Accumulator) ([]bool, error) {
	return nil, errSynthetic
}
