package maxis

import (
	"testing"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

func TestPlanarConstantRoundGuarantee(t *testing.T) {
	// On planar graphs: |I| ≥ n/192 w.h.p. in O(1) rounds.
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{name: "apollonian", g: gen.Apollonian(2000, 1)},
		{name: "grid", g: gen.Grid(40, 40)},
		{name: "tree", g: gen.RandomTree(1500, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				res, err := PlanarConstantRound(tc.g, Config{Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if !tc.g.IsIndependentSet(res.Set) {
					t.Fatal("dependent set")
				}
				n := tc.g.N()
				if got := graph.SetSize(res.Set); got < n/192 {
					t.Errorf("seed %d: |I| = %d below n/192 = %d", seed, got, n/192)
				}
				if res.Metrics.Rounds > 8 {
					t.Errorf("seed %d: %d rounds, want O(1)", seed, res.Metrics.Rounds)
				}
			}
		})
	}
}

func TestPlanarConstantRoundRoundsFlatInN(t *testing.T) {
	small, err := PlanarConstantRound(gen.Apollonian(200, 3), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := PlanarConstantRound(gen.Apollonian(20000, 3), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.Metrics.Rounds > small.Metrics.Rounds+2 {
		t.Errorf("rounds grew with n: %d vs %d", small.Metrics.Rounds, big.Metrics.Rounds)
	}
}

func TestPlanarConstantRoundRejectsWeighted(t *testing.T) {
	g := gen.Weighted(gen.Apollonian(50, 1), gen.UniformWeights(10), 1)
	if _, err := PlanarConstantRound(g, Config{}); err == nil {
		t.Error("expected rejection of weighted input")
	}
}

func TestPlanarConstantRoundOnHighDegreePlanar(t *testing.T) {
	// A star is planar with one huge-degree hub; the hub is excluded but
	// the leaves carry the guarantee.
	g := gen.Star(1000)
	res, err := PlanarConstantRound(g, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := graph.SetSize(res.Set); got < g.N()/192 {
		t.Errorf("|I| = %d below n/192", got)
	}
}
