package maxis

import (
	"fmt"
	"math"
	"math/rand/v2"

	"distmwis/internal/congest"
	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
	"distmwis/internal/wire"
)

// Ranking implements the classical Boppana ranking algorithm (Algorithm 2,
// Section 5): every node draws a uniform rank in {1, …, 100·n^(c+2)} and
// joins the independent set when its rank strictly exceeds all neighbours'.
//
// The (c+2)·log n + O(1) rank bits exceed one CONGEST message, so the rank
// is shipped in ⌈bits/B⌉ consecutive B-bit chunks — this is why the paper
// says the algorithm "can be implemented in O(c) rounds in the CONGEST
// model". Theorem 11: for Δ ≤ n/(256·ln(1/p)) − 1, the returned set has
// size ≥ n/(8(Δ+1)) with probability ≥ 1 − p − 1/n^c.
func Ranking(g *graph.Graph, c int, cfg Config) (*Result, error) {
	cfg = cfg.Normalized(g)
	seeds := protocol.NewSeedSeq(cfg.Seed)
	var acc dist.Accumulator
	set, err := rankingRun(g, c, cfg, seeds, &acc)
	if err != nil {
		return nil, err
	}
	return finish(g, set, cfg, acc, "ranking", map[string]float64{
		"rank_bits": float64(rankBits(cfg.NUpper, c)),
	})
}

// OneRound is the Boppana–Halldórsson–Rawitz [17] baseline: the ranking
// algorithm at its cheapest setting (c = 0). Its expected weight is at
// least w(V)/(Δ+1), but — as the paper stresses in Section 1 — the variance
// can be enormous, so the guarantee does not hold with high probability.
// Experiment E11 reproduces exactly that failure mode.
func OneRound(g *graph.Graph, cfg Config) (*Result, error) {
	return Ranking(g, 0, cfg)
}

// rankSpace returns 100·n^(c+2) saturated to 2^61 so rank fields stay
// well-formed for any polynomial bound.
func rankSpace(nUpper, c int) uint64 {
	const limit = uint64(1) << 61
	space := uint64(100)
	for i := 0; i < c+2; i++ {
		if space > limit/uint64(nUpper) {
			return limit
		}
		space *= uint64(nUpper)
	}
	return space
}

func rankBits(nUpper, c int) int { return wire.BitsFor(rankSpace(nUpper, c)) }

func rankingRun(g *graph.Graph, c int, cfg Config, seeds *protocol.SeedSeq, acc *dist.Accumulator) ([]bool, error) {
	if g.N() == 0 {
		return nil, nil
	}
	space := rankSpace(cfg.NUpper, c)
	res, err := dist.RunPhase(g, func() congest.Process { return &rankingProcess{space: space} }, acc, cfg.Phase("ranking").Opts(seeds.Next())...)
	if err != nil {
		return nil, err
	}
	return congest.BoolOutputs(res), nil
}

// rankingProcess ships its rank in B-bit chunks and joins when strictly
// larger than every neighbour's rank.
//
// Under faults (NodeInfo.Faulty) each chunk additionally carries a sequence
// tag. Without it, a lost chunk followed by a duplicated earlier chunk
// would reassemble into a bogus — typically much smaller — neighbour rank
// and could let both endpoints of an edge join. With tags every chunk
// lands at its true bit offset, receipt is tracked per chunk, and a node
// only joins when it holds every chunk of every neighbour's rank.
type rankingProcess struct {
	info     congest.NodeInfo
	space    uint64
	rank     uint64
	bits     int
	chunk    int // bits per round
	rounds   int // sending rounds k = ceil(bits/chunk)
	seqBits  int // fault mode: tag width (0 = tagging impossible)
	nbrRanks []uint64
	nbrBits  []int
	nbrSeen  []uint64 // fault mode: bitmask of chunks received per port
	joined   bool
	w        wire.Writer        // per-round scratch, reset before each use
	out      []*congest.Message // reused broadcast slice
}

func (p *rankingProcess) Init(info congest.NodeInfo) {
	p.info = info
	p.rank = 1 + info.Rand.Uint64N(p.space)
	p.bits = wire.BitsFor(p.space)
	p.chunk = p.bits
	if info.Bandwidth > 0 && info.Bandwidth < p.bits {
		p.chunk = info.Bandwidth
	}
	p.rounds = (p.bits + p.chunk - 1) / p.chunk
	if info.Faulty {
		p.initChunkTags()
		p.nbrSeen = make([]uint64, info.Degree)
	}
	p.nbrRanks = make([]uint64, info.Degree)
	p.nbrBits = make([]int, info.Degree)
	p.out = make([]*congest.Message, info.Degree)
}

// initChunkTags splits the bandwidth into tag + payload: the smallest tag
// width that can number all resulting chunks. All nodes derive the same
// split from (space, Bandwidth), keeping the schedule synchronous.
func (p *rankingProcess) initChunkTags() {
	if p.info.Bandwidth == 0 || p.bits+1 <= p.info.Bandwidth {
		p.seqBits = 1 // single chunk, tag value always 0
		p.chunk = p.bits
		p.rounds = 1
		return
	}
	for sb := 1; sb < p.info.Bandwidth; sb++ {
		ch := p.info.Bandwidth - sb
		rounds := (p.bits + ch - 1) / ch
		if wire.BitsFor(uint64(rounds-1)) <= sb {
			p.seqBits = sb
			p.chunk = ch
			p.rounds = rounds
			return
		}
	}
	// Bandwidth too small to tag chunks (unreachable for the B ≥ 8 this
	// repository's configurations produce). Safety over liveness: the node
	// keeps its untagged schedule but will never join.
	p.seqBits = 0
}

func (p *rankingProcess) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	// Absorb chunks sent in the previous round.
	if round > 1 {
		for port, m := range recv {
			if m == nil {
				continue
			}
			r := m.Reader()
			if p.info.Faulty {
				p.absorbTagged(port, r)
				continue
			}
			nbits := r.Remaining()
			chunkVal, _ := r.ReadBits(nbits)
			p.nbrRanks[port] |= chunkVal << uint(p.nbrBits[port])
			p.nbrBits[port] += nbits
		}
	}
	if round <= p.rounds {
		lo := (round - 1) * p.chunk
		hi := lo + p.chunk
		if hi > p.bits {
			hi = p.bits
		}
		p.w.Reset()
		if p.info.Faulty && p.seqBits > 0 {
			p.w.WriteBits(uint64(round-1), p.seqBits)
		}
		p.w.WriteBits(p.rank>>uint(lo), hi-lo)
		m := congest.NewPooledMessage(&p.w)
		for i := range p.out {
			p.out[i] = m
		}
		return p.out, false
	}
	// round == rounds+1: all chunks received; decide.
	p.joined = true
	for port := 0; port < p.info.Degree; port++ {
		if p.info.Faulty {
			if p.seqBits == 0 || p.nbrSeen[port] != (uint64(1)<<uint(p.rounds))-1 {
				// Incomplete information about this neighbour's rank:
				// joining could collide with it.
				p.joined = false
				break
			}
		}
		if p.nbrRanks[port] >= p.rank {
			p.joined = false
			break
		}
	}
	return nil, true
}

// absorbTagged places one sequence-tagged chunk at its true offset,
// ignoring malformed frames (wrong tag range or payload width).
func (p *rankingProcess) absorbTagged(port int, r *wire.Reader) {
	if p.seqBits == 0 {
		return
	}
	seq64, err := r.ReadBits(p.seqBits)
	if err != nil {
		return
	}
	seq := int(seq64)
	if seq >= p.rounds {
		return
	}
	lo := seq * p.chunk
	hi := lo + p.chunk
	if hi > p.bits {
		hi = p.bits
	}
	if r.Remaining() != hi-lo {
		return
	}
	chunkVal, err := r.ReadBits(hi - lo)
	if err != nil {
		return
	}
	mask := uint64(1) << uint(seq)
	if p.nbrSeen[port]&mask != 0 {
		return // duplicate of an already-placed chunk
	}
	p.nbrSeen[port] |= mask
	p.nbrRanks[port] |= chunkVal << uint(lo)
	p.nbrBits[port] += hi - lo
}

func (p *rankingProcess) Output() any { return p.joined }

// SeqBoppanna is Algorithm 3: the sequential view of the ranking algorithm.
// Nodes are drawn uniformly at random without replacement; a drawn node
// joins I when none of its neighbours was drawn earlier. Proposition 3
// shows the output distribution equals Boppanna's up to 1/n^c total
// variation; the martingale analysis of Theorem 11 is built on this view.
//
// The returned trace holds |I_t| after each of the n draws, feeding the
// Proposition 4 concentration experiment.
func SeqBoppanna(g *graph.Graph, rng *rand.Rand) (set []bool, trace []int) {
	n := g.N()
	set = make([]bool, n)
	trace = make([]int, 0, n)
	drawn := make([]bool, n)
	// Uniform permutation via Fisher-Yates = sampling without replacement.
	perm := rng.Perm(n)
	size := 0
	for _, v := range perm {
		blocked := false
		for _, u := range g.Neighbors(v) {
			if drawn[u] {
				blocked = true
				break
			}
		}
		drawn[v] = true
		if !blocked {
			set[v] = true
			size++
		}
		trace = append(trace, size)
	}
	return set, trace
}

// rankingInner adapts Ranking as a boosting black box for unweighted
// graphs. On unit-weight graphs the Theorem 11 guarantee
// |I| ≥ n/(8(Δ+1)) ≥ n/(16Δ) gives c = 16. Local-ratio residual graphs of
// an unweighted input remain unit-weight (a positive residual weight is
// exactly 1), which the adapter checks.
type rankingInner struct {
	c int
}

func (r rankingInner) Name() string { return "ranking" }

func (rankingInner) FactorC() int { return 16 }

func (r rankingInner) Run(g *graph.Graph, cfg Config, seeds *protocol.SeedSeq, acc *dist.Accumulator) ([]bool, error) {
	if !g.IsUnitWeight() {
		return nil, fmt.Errorf("maxis: ranking inner requires unit weights (Theorem 5 is for unweighted graphs)")
	}
	return rankingRun(g, r.c, cfg, seeds, acc)
}

var _ Inner = rankingInner{}

// Theorem5 implements the paper's Theorem 5: for unweighted graphs of
// maximum degree Δ ≤ n/log n, an O(1/ε)-round CONGEST algorithm returning
// an independent set of size ≥ n/((1+ε)(Δ+1)) with high probability. It is
// Boost over the Ranking inner algorithm (Corollary 1 supplies the
// w(V)/((1+ε)(Δ+1)) form of the guarantee).
//
// The degree precondition is the paper's; callers violating it simply lose
// the high-probability guarantee (Theorem 4 shows some such graphs are
// genuinely hard), not correctness of the returned independent set.
func Theorem5(g *graph.Graph, eps float64, cfg Config) (*BoostResult, error) {
	if !g.IsUnitWeight() {
		return nil, fmt.Errorf("maxis: Theorem5 requires an unweighted (unit-weight) graph")
	}
	res, err := Boost(g, eps, rankingInner{c: 2}, cfg)
	if err != nil {
		return nil, err
	}
	n := float64(g.N())
	if res.Extra == nil {
		res.Extra = map[string]float64{}
	}
	res.Extra["degree_precondition_ok"] = 0
	if float64(g.MaxDegree()) <= n/math.Log2(math.Max(n, 2)) {
		res.Extra["degree_precondition_ok"] = 1
	}
	return res, nil
}
