package maxis

import (
	"testing"

	"distmwis/internal/graph"
	"distmwis/internal/mis"
)

// twoIslands builds a graph of two path components: 0..k-1 and k..n-1.
func twoIslands(k, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < k-1; v++ {
		b.AddEdge(v, v+1)
	}
	for v := k; v < n-1; v++ {
		b.AddEdge(v, v+1)
	}
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+(v*5)%11))
	}
	return b.MustBuild()
}

func incCfg() Config {
	return Config{Seed: 7, MIS: mis.Luby{}}
}

// A warm cache must answer every component without re-solving, and the
// cached answer must be bit-identical to the fresh one.
func TestSolveByComponentCacheHitBitIdentical(t *testing.T) {
	g := twoIslands(6, 14)
	cache := map[string][]int32{}
	cc := ComponentCache{
		Lookup: func(h string) ([]int32, bool) { s, ok := cache[h]; return s, ok },
		Store:  func(h string, set []int32, _ int64) { cache[h] = set },
	}
	fresh, st, err := SolveByComponent("goodnodes", g, 0.5, 0, incCfg(), cc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Components != 2 || st.Solved != 2 || st.Reused != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	warm, st, err := SolveByComponent("goodnodes", g, 0.5, 0, incCfg(), cc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Solved != 0 || st.Reused != 2 {
		t.Fatalf("warm stats = %+v", st)
	}
	if warm.Weight != fresh.Weight || !graph.SameSet(warm.Set, fresh.Set) {
		t.Fatal("cached answer differs from fresh solve")
	}
	if !g.IsIndependentSet(fresh.Set) {
		t.Fatal("component-wise union is not independent")
	}
}

// Mutating one component must leave the other's cache entry usable: after
// an edit confined to the second island, exactly one component re-solves.
func TestSolveByComponentPartialReuseAfterEdit(t *testing.T) {
	g := twoIslands(6, 14)
	cache := map[string][]int32{}
	cc := ComponentCache{
		Lookup: func(h string) ([]int32, bool) { s, ok := cache[h]; return s, ok },
		Store:  func(h string, set []int32, _ int64) { cache[h] = set },
	}
	if _, _, err := SolveByComponent("goodnodes", g, 0.5, 0, incCfg(), cc); err != nil {
		t.Fatal(err)
	}
	ng, _, err := g.ApplyEdit(graph.Edit{AddEdges: [][2]int32{{7, 12}}})
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := SolveByComponent("goodnodes", ng, 0.5, 0, incCfg(), cc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Components != 2 || st.Reused != 1 || st.Solved != 1 {
		t.Fatalf("after a one-island edit stats = %+v, want 1 reused / 1 solved", st)
	}
	if !ng.IsIndependentSet(res.Set) {
		t.Fatal("post-edit union is not independent")
	}
}

// The empty graph has zero components and a zero answer.
func TestSolveByComponentEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	res, st, err := SolveByComponent("goodnodes", g, 0.5, 0, incCfg(), ComponentCache{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Components != 0 || res.Weight != 0 || len(res.Set) != 0 {
		t.Fatalf("empty graph: stats %+v weight %d", st, res.Weight)
	}
}

// A cache returning garbage indices must surface an error, not corrupt the
// answer silently.
func TestSolveByComponentBadCacheEntry(t *testing.T) {
	g := twoIslands(4, 8)
	cc := ComponentCache{
		Lookup: func(string) ([]int32, bool) { return []int32{99}, true },
	}
	if _, _, err := SolveByComponent("goodnodes", g, 0.5, 0, incCfg(), cc); err == nil {
		t.Fatal("out-of-range cached member must error")
	}
}
