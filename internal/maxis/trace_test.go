package maxis

import (
	"strings"
	"testing"

	"distmwis/internal/graph/gen"
	"distmwis/internal/mis"
	"distmwis/internal/trace"
)

// TestPipelineTraceReconciles runs full MaxIS pipelines under a ring tracer
// and reconciles the trace against the pipeline's own accounting: per-round
// bits and messages must sum exactly to Metrics.Bits / Metrics.Messages,
// and the number of traced runs must equal Metrics.Phases. Traced rounds
// are a lower bound on Metrics.Rounds because host-side AddRounds
// bookkeeping (set pushes, liveness exchanges) never reaches the tracer.
func TestPipelineTraceReconciles(t *testing.T) {
	g := gen.Weighted(gen.GNP(160, 0.06, 21), gen.UniformWeights(1000), 22)
	pipelines := map[string]func(cfg Config) (*Result, error){
		"goodnodes": func(cfg Config) (*Result, error) { return GoodNodes(g, cfg) },
		"baseline":  func(cfg Config) (*Result, error) { return BarYehuda(g, cfg) },
		"theorem2": func(cfg Config) (*Result, error) {
			r, err := Theorem2(g, 1, cfg)
			if err != nil {
				return nil, err
			}
			return &r.Result, nil
		},
	}
	for name, run := range pipelines {
		t.Run(name, func(t *testing.T) {
			ring := trace.NewRing(0)
			res, err := run(Config{Seed: 7, MIS: mis.Luby{}, Tracer: ring, TraceLabel: name})
			if err != nil {
				t.Fatal(err)
			}
			var bits, msgs int64
			rounds := 0
			for _, rec := range ring.Rounds() {
				bits += rec.Bits
				msgs += rec.Messages
				rounds++
			}
			if bits != res.Metrics.Bits {
				t.Errorf("traced bits %d != Metrics.Bits %d", bits, res.Metrics.Bits)
			}
			if msgs != res.Metrics.Messages {
				t.Errorf("traced messages %d != Metrics.Messages %d", msgs, res.Metrics.Messages)
			}
			if rounds > res.Metrics.Rounds {
				t.Errorf("traced rounds %d exceed Metrics.Rounds %d", rounds, res.Metrics.Rounds)
			}
			if got := len(ring.Runs()); got != res.Metrics.Phases {
				t.Errorf("traced runs %d != Metrics.Phases %d", got, res.Metrics.Phases)
			}
			for _, info := range ring.Runs() {
				if !strings.HasPrefix(info.Label, name) {
					t.Errorf("run label %q missing pipeline prefix %q", info.Label, name)
				}
			}
		})
	}
}

// TestPipelinePhaseAnnotations checks that protocol-emitted phases survive
// the plumbing: a GoodNodes run must contain detect-phase rounds and
// MIS-phase rounds annotated with the mark/join/retire cadence.
func TestPipelinePhaseAnnotations(t *testing.T) {
	g := gen.Weighted(gen.GNP(120, 0.08, 31), gen.UniformWeights(500), 32)
	ring := trace.NewRing(0)
	if _, err := GoodNodes(g, Config{Seed: 3, MIS: mis.Luby{}, Tracer: ring}); err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	phases := map[string]bool{}
	for _, rec := range ring.Rounds() {
		labels[rec.Label] = true
		phases[rec.Phase] = true
	}
	for _, want := range []string{"goodnodes/detect", "goodnodes/mis"} {
		if !labels[want] {
			t.Errorf("missing traced label %q (have %v)", want, labels)
		}
	}
	for _, want := range []string{"mark", "join"} {
		if !phases[want] {
			t.Errorf("missing MIS phase annotation %q (have %v)", want, phases)
		}
	}
}

// TestPipelineTraceOffUnchanged pins the zero-overhead contract at the
// pipeline level: results with and without a tracer are identical.
func TestPipelineTraceOffUnchanged(t *testing.T) {
	g := gen.Weighted(gen.GNP(100, 0.07, 41), gen.UniformWeights(300), 42)
	plain, err := GoodNodes(g, Config{Seed: 5, MIS: mis.Luby{}})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := GoodNodes(g, Config{Seed: 5, MIS: mis.Luby{}, Tracer: trace.NewRing(0)})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Weight != traced.Weight || plain.Metrics != traced.Metrics {
		t.Errorf("tracer changed results: %+v vs %+v", plain.Metrics, traced.Metrics)
	}
	for v, in := range plain.Set {
		if in != traced.Set[v] {
			t.Fatalf("set differs at node %d", v)
		}
	}
}
