package maxis

import (
	"testing"

	"distmwis/internal/exact"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

// propertySuite extends smallSuite with a power-law graph: the local-ratio
// family's Δ+1-phase bound is only interesting when degrees are skewed, and
// power-law degree sequences are the canonical skew.
func propertySuite(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	out := smallSuite(tb)
	out["powerlaw"] = gen.Weighted(gen.PowerLaw(48, 2.5, 12, 9), gen.UniformWeights(300), 9)
	return out
}

func TestLocalRatioDeltaApprox(t *testing.T) {
	for name, g := range propertySuite(t) {
		for _, seed := range []uint64{1, 2, 7} {
			res, err := LocalRatio(g, Config{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if !g.IsIndependentSet(res.Set) {
				t.Fatalf("%s seed %d: dependent set", name, seed)
			}
			delta := g.MaxDegree()
			if delta == 0 {
				delta = 1
			}
			assertRatio(t, g, res.Weight, float64(delta), name)
		}
	}
}

func TestLocalRatioPhasesBoundedByDelta(t *testing.T) {
	// The termination argument: each MIS phase permanently zeroes every
	// active node or one of its neighbours, so at most Δ+1 phases run —
	// independent of the weight range W.
	for name, g := range propertySuite(t) {
		res, err := LocalRatio(g, Config{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if phases := int(res.Extra["phases"]); phases > g.MaxDegree()+1 {
			t.Errorf("%s: %d phases > Δ+1 = %d", name, phases, g.MaxDegree()+1)
		}
	}
}

func TestLocalRatioPhasesIndependentOfW(t *testing.T) {
	// The complement of TestBarYehudaRoundsGrowWithLogW: the plain
	// local-ratio phase count must NOT grow when W explodes.
	g := gen.GNP(120, 0.04, 6)
	small, err := LocalRatio(gen.Weighted(g, gen.UniformWeights(2), 6), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := LocalRatio(gen.Weighted(g, gen.UniformWeights(1<<20), 6), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lp, sp := int(large.Extra["phases"]), int(small.Extra["phases"]); lp > sp+2 {
		t.Errorf("phases grew with W: W=2 → %d, W=2^20 → %d", sp, lp)
	}
}

func TestLocalRatioEpsBound(t *testing.T) {
	for name, g := range propertySuite(t) {
		for _, eps := range []float64{0.5, 0.25} {
			res, err := LocalRatioEps(g, eps, Config{Seed: 4})
			if err != nil {
				t.Fatalf("%s eps %g: %v", name, eps, err)
			}
			if !g.IsIndependentSet(res.Set) {
				t.Fatalf("%s eps %g: dependent set", name, eps)
			}
			opt, _, err := exact.MWIS(g)
			if err != nil {
				t.Fatalf("%s: exact: %v", name, err)
			}
			delta := g.MaxDegree()
			if delta == 0 {
				delta = 1
			}
			// w(I) ≥ (1−ε)·OPT/Δ: quantisation forfeits at most ε·maxW ≤ ε·OPT.
			if float64(res.Weight)*float64(delta) < (1-eps)*float64(opt)-1e-9 {
				t.Errorf("%s eps %g: weight %d·Δ=%d below (1−ε)·OPT = %.1f",
					name, eps, res.Weight, delta, (1-eps)*float64(opt))
			}
		}
	}
}

func TestLocalRatioEpsScalesBounded(t *testing.T) {
	// Quantisation decouples the scale count from W: with unit = ⌊ε·maxW/n⌋
	// the quantised weights are ≤ n/ε, so ≤ log₂(n/ε)+O(1) scales run even
	// when W is astronomically larger.
	g := gen.Weighted(gen.GNP(100, 0.05, 8), gen.ExponentialSpreadWeights(40), 8)
	res, err := LocalRatioEps(g, 0.5, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(g.N())
	bound := 0
	for lim := 1.0; lim < n/0.5; lim *= 2 {
		bound++
	}
	if phases := int(res.Extra["phases"]); phases > bound+2 {
		t.Errorf("%d scales exceed log₂(n/ε)+2 = %d despite quantisation", phases, bound+2)
	}
}
