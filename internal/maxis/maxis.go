// Package maxis implements the paper's maximum-weight independent set
// approximation algorithms for the CONGEST model, together with the prior
// state-of-the-art baselines they are compared against.
//
// Algorithm inventory (paper reference in parentheses):
//
//   - GoodNodes (Theorem 8): O(MIS(n,Δ))-round O(Δ)-approximation via an MIS
//     over the "good" nodes.
//   - Sparsified (Theorem 9): poly(log log n)-round O(Δ)-approximation via
//     weighted sparsification and GoodNodes on the sampled subgraph.
//   - Boost (Theorem 10, Algorithm 1): local-ratio boosting of any
//     O(Δ)-approximation to a (1+ε)Δ-approximation.
//   - Theorem1 / Theorem2: the two headline pipelines, Boost∘GoodNodes and
//     Boost∘Sparsified.
//   - Arboricity (Theorem 12, Algorithm 6): 8(1+ε)α-approximation for
//     graphs of arboricity α.
//   - Ranking / Theorem5 (Section 5): the Boppana ranking algorithm with
//     martingale guarantee and its boosted (1+ε)(Δ+1) version for
//     unweighted graphs of degree ≤ n/log n.
//   - BarYehuda (baseline [8]): Δ-approximation in O(MIS·log W) rounds.
//   - OneRound (baseline [17]): the one-round ranking algorithm whose
//     guarantee holds only in expectation.
//
// Every algorithm is a genuine CONGEST protocol (or an orchestrated sequence
// of such protocols, as in the paper's phase-structured Algorithms 1 and 6);
// round counts include the bookkeeping exchanges between phases.
package maxis

import (
	"fmt"

	"distmwis/internal/congest"
	"distmwis/internal/dist"
	"distmwis/internal/fault"
	"distmwis/internal/graph"
	"distmwis/internal/mis"
	"distmwis/internal/reliable"
	"distmwis/internal/trace"
)

// Result is the outcome of one MaxIS approximation run.
type Result struct {
	// Set is the returned independent set, indexed by node.
	Set []bool
	// Weight is the set's total weight under the input graph's weights.
	Weight int64
	// Metrics aggregates rounds/messages/bits over all protocol phases.
	Metrics dist.Accumulator
	// Extra carries algorithm-specific observables (e.g. the sparsifier's
	// max degree, the local-ratio stack value) for the experiment harness.
	Extra map[string]float64
}

// Config carries the knobs shared by all algorithms. The zero value is
// usable: it selects Luby's MIS, seed 1 and CONGEST defaults.
type Config struct {
	// MIS is the black-box MIS algorithm (the MIS(n,Δ) of Theorems 1/8).
	// Defaults to Luby's algorithm.
	MIS mis.Algorithm
	// Seed is the root randomness seed; every protocol phase derives an
	// independent stream from it.
	Seed uint64
	// BandwidthFactor is c in the CONGEST bound B = c·⌈log₂ n⌉ (default 8).
	BandwidthFactor int
	// NUpper is the polynomial upper bound on n that nodes know; defaults
	// to the input graph's n. Subgraph phases keep the ORIGINAL bound, per
	// the padding argument of Lemma 2.
	NUpper int
	// Lambda is the sparsification oversampling constant λ of Section 4.2
	// (default 2.0; the paper's proof uses a large constant, experiments
	// show small λ already exhibits the Lemma 3/5 behaviour).
	Lambda float64
	// Local switches to the LOCAL model (no bandwidth bound).
	Local bool
	// Workers sets simulator parallelism (default GOMAXPROCS).
	Workers int
	// MaxWeight, when positive, is the nominal weight bound W handed to
	// every protocol phase (congest.WithMaxWeight). Experiments that sweep
	// W set it so wire fields are sized by the swept bound rather than by
	// a graph scan's exact maximum — global knowledge the paper's
	// Section 3 assumptions do not grant.
	MaxWeight int64
	// Faults, when enabled, installs a fault.Injector on every protocol
	// phase (each phase reseeded deterministically from the phase seed) and
	// caps every phase at Faults.HardStop rounds, because faults can block
	// protocols from terminating on their own. Outputs remain independent
	// sets — that invariant survives any schedule — but weight and
	// maximality guarantees degrade with the fault rate.
	Faults fault.Schedule
	// FaultStats, if non-nil, accumulates the injectors' counters across
	// all phases of the run.
	FaultStats *fault.Stats
	// Reliable installs the ARQ transport of internal/reliable on every
	// protocol phase. Under any message-fault schedule with Loss, Dup and
	// Corrupt below 1 the logical execution is then bit-identical to the
	// fault-free run (at the cost of extra physical rounds and header
	// bits); combined with CheckpointEvery it also recovers
	// crash-recovery faults exactly.
	Reliable bool
	// CheckpointEvery, when positive with Reliable, snapshots each
	// process every that-many logical rounds so a crashed-and-recovered
	// node resynchronises by replay instead of staying frozen.
	CheckpointEvery int
	// Repair runs the self-healing monitor (reliable.Repair) on the final
	// set before the independence check: under crash-stop schedules even
	// the reliable transport cannot extract information from a dead
	// neighbour, and passive (non-reliable) fault runs can leave
	// conflicting joins. The monitor deterministically withdraws the
	// lower-weight endpoint of every conflicting edge. Repaired runs
	// report repair_conflicts/repair_withdrawn_weight in Result.Extra.
	Repair bool
	// Tracer, if non-nil, receives per-round records from every protocol
	// phase of the run (see internal/trace). Algorithms label their phases
	// at natural stage boundaries ("goodnodes/mis", "push/...", "scale"),
	// so a Timeline built from the trace attributes rounds and bits to
	// pipeline stages.
	Tracer trace.Tracer
	// TraceLabel prefixes every phase label this config emits; algorithms
	// descend from it via Config.phase. Ignored without a Tracer.
	TraceLabel string
}

func (c Config) misAlg() mis.Algorithm {
	if c.MIS == nil {
		return mis.Luby{}
	}
	return c.MIS
}

func (c Config) lambda() float64 {
	if c.Lambda <= 0 {
		return 2.0
	}
	return c.Lambda
}

// normalized fills defaults that depend on the input graph.
func (c Config) normalized(g *graph.Graph) Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NUpper < g.N() {
		c.NUpper = g.N()
	}
	return c
}

// seedSeq derives independent per-phase seeds from the root seed.
type seedSeq struct {
	base uint64
	ctr  uint64
}

func (s *seedSeq) next() uint64 {
	s.ctr++
	return splitmix64(s.base + s.ctr*0x9e3779b97f4a7c15)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// phase returns a copy of c whose trace label descends into label;
// algorithms call it at stage boundaries so trace records attribute rounds
// to pipeline stages. Without a tracer it is the identity.
func (c Config) phase(label string) Config {
	if c.Tracer == nil {
		return c
	}
	if c.TraceLabel != "" {
		label = c.TraceLabel + "/" + label
	}
	c.TraceLabel = label
	return c
}

// opts assembles the congest options for one phase.
func (c Config) opts(phaseSeed uint64) []congest.Option {
	out := []congest.Option{
		congest.WithSeed(phaseSeed),
		congest.WithNUpper(c.NUpper),
	}
	if c.Local {
		out = append(out, congest.WithModel(congest.ModelLocal))
	}
	if c.BandwidthFactor > 0 {
		out = append(out, congest.WithBandwidthFactor(c.BandwidthFactor))
	}
	if c.Workers > 0 {
		out = append(out, congest.WithWorkers(c.Workers))
	}
	if c.MaxWeight > 0 {
		out = append(out, congest.WithMaxWeight(c.MaxWeight))
	}
	if c.Tracer != nil {
		out = append(out, congest.WithTracer(c.Tracer), congest.WithTraceLabel(c.TraceLabel))
	}
	if c.Faults.Enabled() {
		inj := fault.NewInjector(c.Faults.WithSeed(phaseSeed))
		if c.FaultStats != nil {
			inj.ShareStats(c.FaultStats)
		}
		out = append(out, congest.WithFaults(inj), congest.WithHardStop(c.Faults.HardStop(c.NUpper)))
	}
	if c.Reliable {
		// Retransmission stretches a logical round over several physical
		// rounds, so the phase budget grows accordingly; the round bound
		// sizes the transport's sequence-number fields and caps runaway
		// inner executions under crash-stop.
		hs := c.Faults.HardStop(c.NUpper)
		out = append(out, congest.WithReliable(reliable.New(reliable.Options{
			RoundBound:      16 * hs,
			CheckpointEvery: c.CheckpointEvery,
		})))
		if c.Faults.Enabled() {
			out = append(out, congest.WithHardStop(16*hs))
		}
	}
	return out
}

// Inner is an O(Δ)-approximation black box usable by the boosting theorem:
// on any positive-weight graph it returns an independent set of weight at
// least w(V)/(FactorC()·Δ) (with the algorithm's own success probability).
type Inner interface {
	// Name identifies the inner algorithm in tables.
	Name() string
	// FactorC is the constant c of Theorem 10.
	FactorC() int
	// Run computes the independent set on g, charging metrics to acc.
	Run(g *graph.Graph, cfg Config, seeds *seedSeq, acc *dist.Accumulator) ([]bool, error)
}

// verifyIndependent guards every public algorithm's output.
func verifyIndependent(g *graph.Graph, set []bool, alg string) error {
	if !g.IsIndependentSet(set) {
		return fmt.Errorf("maxis: %s returned a dependent set (bug)", alg)
	}
	return nil
}

// finish assembles a Result and validates independence. With cfg.Repair the
// self-healing monitor first withdraws the lower-weight endpoint of every
// conflicting edge, so fault runs whose degraded execution broke
// independence still return a safe set (annotated in Extra) instead of an
// error.
func finish(g *graph.Graph, set []bool, cfg Config, acc dist.Accumulator, alg string, extra map[string]float64) (*Result, error) {
	if cfg.Repair {
		if rep := reliable.Repair(g, set); rep.Conflicts > 0 {
			if extra == nil {
				extra = make(map[string]float64)
			}
			extra["repair_conflicts"] = float64(rep.Conflicts)
			extra["repair_withdrawn"] = float64(rep.Withdrawn)
			extra["repair_withdrawn_weight"] = float64(rep.WithdrawnWeight)
		}
	}
	if err := verifyIndependent(g, set, alg); err != nil {
		return nil, err
	}
	return &Result{
		Set:     set,
		Weight:  g.SetWeight(set),
		Metrics: acc,
		Extra:   extra,
	}, nil
}
