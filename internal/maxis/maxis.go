// Package maxis implements the paper's maximum-weight independent set
// approximation algorithms for the CONGEST model, together with the prior
// state-of-the-art baselines they are compared against.
//
// Algorithm inventory (paper reference in parentheses):
//
//   - GoodNodes (Theorem 8): O(MIS(n,Δ))-round O(Δ)-approximation via an MIS
//     over the "good" nodes.
//   - Sparsified (Theorem 9): poly(log log n)-round O(Δ)-approximation via
//     weighted sparsification and GoodNodes on the sampled subgraph.
//   - Boost (Theorem 10, Algorithm 1): local-ratio boosting of any
//     O(Δ)-approximation to a (1+ε)Δ-approximation.
//   - Theorem1 / Theorem2: the two headline pipelines, Boost∘GoodNodes and
//     Boost∘Sparsified.
//   - Arboricity (Theorem 12, Algorithm 6): 8(1+ε)α-approximation for
//     graphs of arboricity α.
//   - Ranking / Theorem5 (Section 5): the Boppana ranking algorithm with
//     martingale guarantee and its boosted (1+ε)(Δ+1) version for
//     unweighted graphs of degree ≤ n/log n.
//   - BarYehuda (baseline [8]): Δ-approximation in O(MIS·log W) rounds.
//   - OneRound (baseline [17]): the one-round ranking algorithm whose
//     guarantee holds only in expectation.
//
// Every algorithm is a genuine CONGEST protocol (or an orchestrated sequence
// of such protocols, as in the paper's phase-structured Algorithms 1 and 6);
// round counts include the bookkeeping exchanges between phases.
package maxis

import (
	"fmt"

	"distmwis/internal/dist"
	"distmwis/internal/graph"
	"distmwis/internal/protocol"
	"distmwis/internal/reliable"
)

// Result is the outcome of one MaxIS approximation run. It is an alias of
// the protocol runtime's result type: every registered solver returns the
// same shape, and downstream consumers (server, CLI, experiments) can use
// either name.
type Result = protocol.Result

// Config carries the knobs shared by all algorithms (an alias of
// protocol.Config; see that type for field documentation). The zero value
// is usable: it selects the registered default MIS (Luby), seed 1 and
// CONGEST defaults.
type Config = protocol.Config

// Inner is an O(Δ)-approximation black box usable by the boosting theorem:
// on any positive-weight graph it returns an independent set of weight at
// least w(V)/(FactorC()·Δ) (with the algorithm's own success probability).
type Inner interface {
	// Name identifies the inner algorithm in tables.
	Name() string
	// FactorC is the constant c of Theorem 10.
	FactorC() int
	// Run computes the independent set on g, charging metrics to acc.
	Run(g *graph.Graph, cfg Config, seeds *protocol.SeedSeq, acc *dist.Accumulator) ([]bool, error)
}

// verifyIndependent guards every public algorithm's output.
func verifyIndependent(g *graph.Graph, set []bool, alg string) error {
	if !g.IsIndependentSet(set) {
		return fmt.Errorf("maxis: %s returned a dependent set (bug)", alg)
	}
	return nil
}

// finish assembles a Result and validates independence. With cfg.Repair the
// self-healing monitor first withdraws the lower-weight endpoint of every
// conflicting edge, so fault runs whose degraded execution broke
// independence still return a safe set (annotated in Extra) instead of an
// error.
func finish(g *graph.Graph, set []bool, cfg Config, acc dist.Accumulator, alg string, extra map[string]float64) (*Result, error) {
	if cfg.Repair {
		if rep := reliable.Repair(g, set); rep.Conflicts > 0 {
			if extra == nil {
				extra = make(map[string]float64)
			}
			extra["repair_conflicts"] = float64(rep.Conflicts)
			extra["repair_withdrawn"] = float64(rep.Withdrawn)
			extra["repair_withdrawn_weight"] = float64(rep.WithdrawnWeight)
		}
	}
	if err := verifyIndependent(g, set, alg); err != nil {
		return nil, err
	}
	return &Result{
		Set:     set,
		Weight:  g.SetWeight(set),
		Metrics: acc,
		Extra:   extra,
	}, nil
}
