package maxis

import (
	"testing"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

func TestEstimateDegeneracyBrackets(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "tree", g: gen.RandomTree(300, 1)},
		{name: "cycle", g: gen.Cycle(128)},
		{name: "clique", g: gen.Clique(40)},
		{name: "apollonian", g: gen.Apollonian(256, 2)},
		{name: "gnp", g: gen.GNP(300, 0.05, 3)},
		{name: "forests4", g: gen.UnionOfForests(256, 4, 4)},
		{name: "star", g: gen.Star(200)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			trueDeg := tt.g.ArboricityUpperBound() // exact degeneracy
			est, err := EstimateDegeneracy(tt.g, Config{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if est.Estimate < trueDeg {
				t.Errorf("estimate %d below degeneracy %d (soundness broken)", est.Estimate, trueDeg)
			}
			if est.Estimate > 8*trueDeg {
				t.Errorf("estimate %d above 8×degeneracy %d", est.Estimate, 8*trueDeg)
			}
		})
	}
}

func TestEstimateDegeneracyEdgeless(t *testing.T) {
	est, err := EstimateDegeneracy(graph.NewBuilder(10).MustBuild(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimate != 0 {
		t.Errorf("edgeless estimate = %d, want 0", est.Estimate)
	}
	empty, err := EstimateDegeneracy(graph.NewBuilder(0).MustBuild(), Config{})
	if err != nil || empty.Estimate != 0 {
		t.Errorf("empty graph: %v %v", empty, err)
	}
}

func TestEstimateDegeneracyRoundsPolylog(t *testing.T) {
	// O(log Δ · log n) rounds: a 16x larger tree must not cost much more.
	small, err := EstimateDegeneracy(gen.RandomTree(256, 5), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := EstimateDegeneracy(gen.RandomTree(4096, 5), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if large.Metrics.Rounds > 3*small.Metrics.Rounds+20 {
		t.Errorf("rounds grew too fast: %d → %d", small.Metrics.Rounds, large.Metrics.Rounds)
	}
}

func TestTheorem3Auto(t *testing.T) {
	g := gen.Weighted(gen.Apollonian(300, 6), gen.UniformWeights(500), 6)
	res, err := Theorem3Auto(g, 0.5, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsIndependentSet(res.Set) {
		t.Fatal("dependent set")
	}
	alphaHat := int(res.Extra["alpha_estimate"])
	if alphaHat < 3 || alphaHat > 24 { // degeneracy 3, 8x bracket
		t.Errorf("alpha estimate %d outside [3, 24]", alphaHat)
	}
	// Degraded-but-certified guarantee: w(I) ≥ CaroWei / (8(1+ε)·α̂).
	// (CaroWei lower-bounds OPT.)
	if res.Weight <= 0 {
		t.Error("empty result")
	}
}

func TestTheorem3AutoOnTree(t *testing.T) {
	g := gen.Weighted(gen.RandomTree(400, 7), gen.UniformWeights(100), 7)
	res, err := Theorem3Auto(g, 1, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Extra["alpha_estimate"] > 8 {
		t.Errorf("tree alpha estimate %v > 8", res.Extra["alpha_estimate"])
	}
}
