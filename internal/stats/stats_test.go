package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary wrong: %+v", s)
	}
	if !almostEqual(s.Var, 2.5, 1e-12) {
		t.Errorf("Var = %v, want 2.5", s.Var)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		q, want float64
	}{
		{q: 0, want: 10},
		{q: 1, want: 40},
		{q: 0.5, want: 25},
		{q: 1.0 / 3, want: 20},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Quantile(%.3f) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 3); got != 0.5 {
		t.Errorf("FractionBelow = %v, want 0.5", got)
	}
	if FractionBelow(nil, 1) != 0 {
		t.Error("empty fraction")
	}
}

func TestBoundsAreProbabilities(t *testing.T) {
	for _, p := range []float64{
		ChernoffUpper(0.5, 100),
		ChernoffUpper(2, 10), // eps clamped to 1
		ChernoffUpper(-1, 10),
		BernsteinUpper(10, 1, 100),
		BernsteinUpper(0, 1, 1),
		AzumaLower(5, 100),
		AzumaLower(0, 1),
		Proposition4Bound(10, 1, 100),
		Theorem11FailureBound(10000, 2),
	} {
		if p < 0 || p > 1 {
			t.Errorf("bound %v outside [0,1]", p)
		}
	}
}

func TestChernoffMatchesEmpirical(t *testing.T) {
	// Sum of 400 fair coins: empirical tail must not exceed the Chernoff
	// bound (which is loose, so the inequality is comfortably one-sided).
	const n, trials = 400, 4000
	rng := rand.New(rand.NewPCG(1, 2))
	mu := float64(n) / 2
	eps := 0.2
	exceed := 0
	for i := 0; i < trials; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if rng.Uint64()&1 == 1 {
				sum++
			}
		}
		if math.Abs(sum-mu) >= eps*mu {
			exceed++
		}
	}
	empirical := float64(exceed) / trials
	bound := ChernoffUpper(eps, mu)
	if empirical > bound {
		t.Errorf("empirical tail %.4f exceeds Chernoff bound %.4f", empirical, bound)
	}
}

func TestAzumaMatchesEmpiricalRandomWalk(t *testing.T) {
	// ±1 random walk of length 100: Pr[X_N ≤ −t] ≤ exp(−t²/2N).
	const n, trials = 100, 5000
	rng := rand.New(rand.NewPCG(3, 4))
	tval := 25.0
	hit := 0
	for i := 0; i < trials; i++ {
		x := 0
		for j := 0; j < n; j++ {
			if rng.Uint64()&1 == 1 {
				x++
			} else {
				x--
			}
		}
		if float64(x) <= -tval {
			hit++
		}
	}
	empirical := float64(hit) / trials
	bound := AzumaLower(tval, n)
	if empirical > bound {
		t.Errorf("empirical %.4f exceeds Azuma bound %.4f", empirical, bound)
	}
}

func TestMartingaleIncrements(t *testing.T) {
	trace := []int{1, 1, 2, 3}
	means := []float64{0.5, 0.5, 0.5, 0.5}
	got := MartingaleIncrements(trace, means)
	want := []float64{0.5, -0.5, 0.5, 0.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("increment %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLogStar(t *testing.T) {
	tests := []struct {
		n    float64
		want int
	}{
		{n: 1, want: 0},
		{n: 2, want: 1},
		{n: 4, want: 2},
		{n: 16, want: 3},
		{n: 65536, want: 4},
		{n: math.Pow(2, 1000), want: 5},
		{n: math.Inf(1), want: 6},
	}
	for _, tt := range tests {
		if got := LogStar(tt.n); got != tt.want {
			t.Errorf("LogStar(%g) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

// TestQuickSummaryInvariants: min ≤ p10 ≤ median ≤ p90 ≤ max and the mean
// lies within [min, max].
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P10 && s.P10 <= s.Median && s.Median <= s.P90 &&
			s.P90 <= s.Max && s.Mean >= s.Min && s.Mean <= s.Max && s.Var >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSummarizeEmpty: an empty (or nil) sample must yield the zero Summary,
// and the helpers built on sorted samples must degrade to zero rather than
// panic.
func TestSummarizeEmpty(t *testing.T) {
	for _, xs := range [][]float64{nil, {}} {
		s := Summarize(xs)
		if s != (Summary{}) {
			t.Errorf("Summarize(%v) = %+v, want zero Summary", xs, s)
		}
		if q := Quantile(xs, 0.5); q != 0 {
			t.Errorf("Quantile(%v, 0.5) = %v, want 0", xs, q)
		}
		if f := FractionBelow(xs, math.Inf(1)); f != 0 {
			t.Errorf("FractionBelow(%v, +Inf) = %v, want 0", xs, f)
		}
	}
}

// TestQuantileSingleElement: every quantile of a one-element sample is that
// element, including the q<=0 and q>=1 clamps.
func TestQuantileSingleElement(t *testing.T) {
	xs := []float64{42.5}
	for _, q := range []float64{-1, 0, 0.01, 0.25, 0.5, 0.75, 0.99, 1, 2} {
		if got := Quantile(xs, q); got != 42.5 {
			t.Errorf("Quantile([42.5], %v) = %v, want 42.5", q, got)
		}
	}
	s := Summarize(xs)
	if s.N != 1 || s.Mean != 42.5 || s.Min != 42.5 || s.Max != 42.5 ||
		s.Median != 42.5 || s.P10 != 42.5 || s.P90 != 42.5 {
		t.Errorf("single-element summary wrong: %+v", s)
	}
	if s.Var != 0 || s.StdDev != 0 {
		t.Errorf("single-element variance must be 0, got Var=%v StdDev=%v", s.Var, s.StdDev)
	}
}

// TestQuantileClampsAndInterpolation pins the interpolation contract on a
// two-element sample: endpoints at q∈{0,1}, linear in between.
func TestQuantileClampsAndInterpolation(t *testing.T) {
	xs := []float64{10, 20}
	cases := []struct{ q, want float64 }{
		{-0.5, 10}, {0, 10}, {0.25, 12.5}, {0.5, 15}, {0.75, 17.5}, {1, 20}, {1.5, 20},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v, %v) = %v, want %v", xs, c.q, got, c.want)
		}
	}
}
