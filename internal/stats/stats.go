// Package stats provides the summary statistics and concentration-bound
// evaluators used by the experiment suite.
//
// The paper's analyses rest on three tail bounds — multiplicative Chernoff
// (Fact 1), Bernstein (Fact 2) and one-sided Azuma (Fact 3) — plus the
// martingale construction of Proposition 4. The experiment harness compares
// empirical tail frequencies of the implemented algorithms against these
// numeric bounds, so the Facts are implemented here exactly as stated.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	StdDev float64
	Min    float64
	Max    float64
	Median float64
	P10    float64
	P90    float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Var = ss / float64(len(xs)-1)
	}
	s.StdDev = math.Sqrt(s.Var)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P10 = Quantile(sorted, 0.1)
	s.P90 = Quantile(sorted, 0.9)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted sample
// by linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// FractionBelow returns the empirical probability that a sample value is
// strictly below t.
func FractionBelow(xs []float64, t float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := 0
	for _, x := range xs {
		if x < t {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// ChernoffUpper is Fact 1: for a sum X of independent 0/1 variables with
// mean μ and 0 ≤ ε ≤ 1,
//
//	Pr[|X − μ| ≥ εμ] ≤ 2·exp(−ε²μ/(2+ε)).
func ChernoffUpper(eps, mu float64) float64 {
	if eps < 0 || mu <= 0 {
		return 1
	}
	if eps > 1 {
		eps = 1
	}
	return math.Min(1, 2*math.Exp(-eps*eps*mu/(2+eps)))
}

// BernsteinUpper is Fact 2: for independent Xᵢ ≤ M with total variance
// varSum,
//
//	Pr[|X − μ| ≥ t] ≤ 2·exp(−t²/2 / (Mt/3 + varSum)).
func BernsteinUpper(t, m, varSum float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Min(1, 2*math.Exp(-t*t/2/(m*t/3+varSum)))
}

// AzumaLower is Fact 3 (one-sided): for a martingale with |Xᵢ−Xᵢ₋₁| ≤ cᵢ,
//
//	Pr[X_N − X₀ ≤ −t] ≤ exp(−t²/(2·Σcᵢ²)).
func AzumaLower(t, sumC2 float64) float64 {
	if t <= 0 || sumC2 <= 0 {
		return 1
	}
	return math.Min(1, math.Exp(-t*t/(2*sumC2)))
}

// Proposition4Bound is the concentration bound proved via Azuma in
// Proposition 4: Pr[f_k < k·M1 − t] ≤ exp(−t²/(8·M0²·k)).
func Proposition4Bound(t, m0 float64, k int) float64 {
	if t <= 0 || k <= 0 {
		return 1
	}
	return math.Min(1, math.Exp(-t*t/(8*m0*m0*float64(k))))
}

// Theorem11FailureBound is the explicit failure bound of Theorem 11's
// proof: Pr[|I_k| < k/4] ≤ exp(−k/128) with k = n/(2(Δ+1)).
func Theorem11FailureBound(n, delta int) float64 {
	k := float64(n) / (2 * float64(delta+1))
	return math.Min(1, math.Exp(-k/128))
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// MartingaleIncrements converts a trajectory (e.g. the SeqBoppanna |I_t|
// trace) into the shifted increments Y_t = f_t − f_{t−1} − p_t of
// Section 2.3, given the per-step conditional means p_t. The partial sums
// of the result form the martingale X_t used in the Theorem 11 analysis.
func MartingaleIncrements(trace []int, condMeans []float64) []float64 {
	out := make([]float64, 0, len(trace))
	prev := 0
	for t, v := range trace {
		inc := float64(v - prev)
		mean := 0.0
		if t < len(condMeans) {
			mean = condMeans[t]
		}
		out = append(out, inc-mean)
		prev = v
	}
	return out
}

// LogStar returns log*(n): the number of times log₂ must be iterated
// before the value drops to ≤ 1. It is the paper's lower-bound growth rate
// (Theorems 4, 7).
func LogStar(n float64) int {
	if math.IsInf(n, 1) || math.IsNaN(n) {
		// log*(x) ≤ 6 for every float64; treat overflow as the ceiling.
		return 6
	}
	c := 0
	for n > 1 {
		n = math.Log2(n)
		c++
	}
	return c
}
