package soak

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distmwis/internal/chaos"
	"distmwis/internal/cluster"
	"distmwis/internal/graph/gen"
	"distmwis/internal/server"
	"distmwis/internal/server/client"
)

// TestClusterSoak is the sharded serving tier's availability audit: three
// chaos-injected backends behind a coordinator front tier, a mixed
// fan-out/whole-graph workload over HTTP, and one backend killed outright
// mid-run. The fleet must hold ≥99% availability, every published answer
// must carry the coordinator's independence verification, and the prober
// must settle on exactly two alive members.
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	// Three backends, each with a pinned mild-chaos schedule: injected 500s
	// and resets that the per-backend client mostly absorbs, plus scheduled
	// worker panics so backend-side restarts happen under cluster load.
	const backendCount = 3
	backends := make([]*server.Server, backendCount)
	bts := make([]*httptest.Server, backendCount)
	injectors := make([]*chaos.Injector, backendCount)
	for i := range backends {
		injectors[i] = chaos.NewInjector(chaos.Schedule{
			Seed:       soakSeed + uint64(i),
			ErrorP:     0.03,
			ResetP:     0.02,
			SlowP:      0.2,
			Slow:       2 * time.Millisecond,
			PanicEvery: 40,
		})
		backends[i] = server.New(server.Options{Workers: 2, Chaos: injectors[i]})
		bts[i] = httptest.NewServer(backends[i].Handler())
	}
	defer func() {
		for i := range backends {
			bts[i].Close()
			_ = backends[i].Drain()
			_ = backends[i].Close()
		}
	}()
	urls := []string{bts[0].URL, bts[1].URL, bts[2].URL}

	coord, err := cluster.New(urls, cluster.Options{
		Partitions:    backendCount,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Client: client.Options{
			Timeout:     5 * time.Second,
			MaxRetries:  2,
			BackoffBase: 2 * time.Millisecond,
			BackoffCap:  50 * time.Millisecond,
			Seed:        soakSeed,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	coord.Start()
	defer coord.Stop()

	// The front tier is itself a maxisd with the coordinator mounted — the
	// exact composition cmd/maxisd -cluster runs.
	front := server.New(server.Options{
		Workers:        1,
		Cluster:        coord.Handler(),
		ClusterMetrics: coord.WriteMetrics,
	})
	fts := httptest.NewServer(front.Handler())
	defer func() {
		fts.Close()
		_ = front.Drain()
		_ = front.Close()
	}()

	const (
		workers     = 6
		perWorker   = 40
		total       = workers * perWorker
		killAfter   = total / 3 // SIGKILL backend 2 a third of the way in
		wantSuccess = 0.99
	)
	var issued, ok, failed, verifiedMisses atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if issued.Add(1) == killAfter {
					killOnce.Do(func() {
						t.Logf("killing backend 2 (%s) after %d requests", urls[2], killAfter)
						bts[2].Close()
					})
				}
				// Deterministic mix over a 16-seed pool: gnp n=240 fans out
				// over all three parts, cycle n=60 stays under MinFanoutNodes
				// and routes whole to its ring owner — both paths must ride
				// out the death.
				seed := uint64(1 + (w*perWorker+i)%16)
				req := server.SolveRequest{
					Gen:  &server.GenSpec{Kind: "gnp", N: 240, P: 0.03, Weights: "poly2", Seed: seed},
					Alg:  "goodnodes",
					Seed: seed,
				}
				fanout := (w+i)%2 == 0
				if !fanout {
					req.Gen = &server.GenSpec{Kind: "cycle", N: 60, Weights: "poly2", Seed: seed}
				}
				body, _ := json.Marshal(req)
				httpResp, err := http.Post(fts.URL+"/v1/cluster/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				var resp cluster.Response
				err = json.NewDecoder(httpResp.Body).Decode(&resp)
				httpResp.Body.Close()
				if err != nil || httpResp.StatusCode != http.StatusOK || resp.Status != "done" {
					failed.Add(1)
					continue
				}
				if !resp.Verified {
					verifiedMisses.Add(1)
				}
				// End-to-end spot check: the coordinator claims verification;
				// rebuild the graph here and hold it to that claim.
				if fanout && i%8 == 0 {
					g := gen.Weighted(gen.GNP(240, 0.03, seed), gen.PolyWeights(2), seed)
					set := make([]bool, g.N())
					for _, v := range resp.Set {
						set[v] = true
					}
					if !g.IsIndependentSet(set) {
						t.Errorf("seed %d: published set is not independent", seed)
					}
				}
				ok.Add(1)
			}
		}(w)
	}
	wg.Wait()

	ratio := float64(ok.Load()) / float64(total)
	st := coord.Stats()
	t.Logf("availability: %d/%d ok (%.4f), coordinator %+v", ok.Load(), total, ratio, st)
	for i, inj := range injectors {
		t.Logf("backend %d chaos: %+v", i, inj.Stats())
	}
	if ratio < wantSuccess {
		t.Fatalf("success ratio %.4f below SLO %.2f (%d failures)", ratio, wantSuccess, failed.Load())
	}
	if n := verifiedMisses.Load(); n != 0 {
		t.Fatalf("%d done answers arrived without the verified flag", n)
	}
	// Both routing paths must actually have run, or the SLO is vacuous.
	if st.Partitioned == 0 || st.WholeGraph == 0 {
		t.Fatalf("workload mix did not exercise both paths: %+v", st)
	}
	// The chaos must have fired somewhere.
	fired := false
	for _, inj := range injectors {
		if s := inj.Stats(); s.Errors > 0 || s.Resets > 0 || s.Panics > 0 {
			fired = true
		}
	}
	if !fired {
		t.Fatal("no chaos fired on any backend — the soak tested nothing")
	}

	// The prober must have confirmed the death: exactly two members left,
	// and the killed backend stays out across further probes.
	coord.ProbeOnce(context.Background())
	coord.ProbeOnce(context.Background())
	if st := coord.Stats(); st.BackendsAlive != backendCount-1 || st.BackendsTotal != backendCount {
		t.Fatalf("fleet did not settle at %d/%d alive: %+v", backendCount-1, backendCount, st)
	}

	// Everything spawned — backends, coordinator prober, retries — must be
	// gone once the deferred teardown runs. Poll from a cleanup so it runs
	// after the defers above.
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= baseline+4 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d now vs %d at start\n%s",
					runtime.NumGoroutine(), baseline, buf[:n])
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	})
}
