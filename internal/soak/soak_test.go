package soak

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distmwis/internal/chaos"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/mis"
	"distmwis/internal/reliable"
	"distmwis/internal/server"
	"distmwis/internal/server/client"
)

// soakSeed pins every random decision in the suite — chaos schedule,
// client jitter, request mix — so a failure replays exactly.
const soakSeed = 20260808

// TestChaosSoak is the serving tier's availability audit, in three acts:
//
//	A. a retrying client must hold a ≥99% success ratio against a server
//	   running a pinned chaos schedule (injected 5xx, resets, latency,
//	   scheduled worker panics);
//	B. a forced crash (journal frozen mid-solve, process abandoned) must
//	   lose none of the accepted async jobs, and every replayed job must
//	   return the bit-identical set the lost process would have;
//	C. the whole exercise must not leak goroutines.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	t.Run("AvailabilityUnderChaos", soakAvailability)
	t.Run("CrashRecoveryLosesNothing", soakCrashRecovery)

	// Act C: everything spawned above — servers, workers, retries, hedges —
	// must be gone. Poll briefly: worker goroutines exit asynchronously
	// after drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+4 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func soakAvailability(t *testing.T) {
	inj := chaos.NewInjector(chaos.Schedule{
		Seed:       soakSeed,
		LatencyP:   0.2,
		Latency:    5 * time.Millisecond,
		ErrorP:     0.05,
		ResetP:     0.03,
		SlowP:      0.3,
		Slow:       2 * time.Millisecond,
		PanicEvery: 25,
	})
	s := server.New(server.Options{Workers: 4, Chaos: inj})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		if err := s.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	cl := client.New(ts.URL, client.Options{
		Timeout:          5 * time.Second,
		MaxRetries:       3,
		BackoffBase:      5 * time.Millisecond,
		BackoffCap:       100 * time.Millisecond,
		Seed:             soakSeed,
		BreakerThreshold: 10,
		BreakerCooldown:  200 * time.Millisecond,
	})

	const (
		workers     = 8
		perWorker   = 50
		wantSuccess = 0.99
	)
	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// A deterministic mix over a 64-seed pool: repeats exercise
				// the cache while enough unique solves flow through the
				// scheduler for the panic-every-25-jobs schedule to fire.
				seed := uint64(1 + (w*perWorker+i)%64)
				req := server.SolveRequest{
					Gen:  &server.GenSpec{Kind: "gnp", N: 80, P: 0.05, Weights: "poly2", Seed: seed},
					Alg:  "goodnodes",
					Seed: seed,
				}
				if (w+i)%2 == 0 {
					req.Gen = &server.GenSpec{Kind: "cycle", N: 50, Weights: "poly2", Seed: seed}
				}
				resp, err := cl.Solve(context.Background(), req)
				if err == nil && resp.Status == "done" {
					ok.Add(1)
				} else {
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	total := ok.Load() + failed.Load()
	ratio := float64(ok.Load()) / float64(total)
	t.Logf("availability: %d/%d ok (%.4f), client %+v, chaos %+v, server %+v",
		ok.Load(), total, ratio, cl.Stats(), inj.Stats(), s.Stats())
	if ratio < wantSuccess {
		t.Fatalf("success ratio %.4f below SLO %.2f (%d failures)", ratio, wantSuccess, failed.Load())
	}
	// The schedule must actually have fired — otherwise the SLO assertion
	// is vacuous.
	st := inj.Stats()
	if st.Errors == 0 || st.Resets == 0 || st.Panics == 0 {
		t.Fatalf("chaos schedule barely fired: %+v", st)
	}
	if cl.Stats().Retries == 0 {
		t.Fatal("client absorbed no faults — the soak tested nothing")
	}
	if s.Stats().WorkerRestarts == 0 {
		t.Fatal("no worker restarts despite scheduled panics")
	}
}

func soakCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.wal")

	// Server 1: one worker, every job slowed 150ms — so the async backlog
	// is provably un-committed when the crash image is frozen.
	slow := chaos.NewInjector(chaos.Schedule{Seed: soakSeed, SlowP: 1, Slow: 150 * time.Millisecond})
	s1 := server.New(server.Options{Workers: 1, Chaos: slow})
	if _, err := s1.OpenJournal(live); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	defer func() {
		ts1.Close()
		_ = s1.Drain()
		_ = s1.Close()
	}()

	const jobs = 5
	type acceptedJob struct {
		id  string
		req server.SolveRequest
	}
	var accepted []acceptedJob
	for i := 0; i < jobs; i++ {
		req := server.SolveRequest{
			Gen:      &server.GenSpec{Kind: "gnp", N: 100, P: 0.06, Weights: "poly2", Seed: uint64(30 + i)},
			Alg:      "theorem2",
			Seed:     uint64(30 + i),
			Priority: "batch",
			Async:    true,
		}
		body, _ := json.Marshal(req)
		httpResp, err := http.Post(ts1.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var resp server.SolveResponse
		err = json.NewDecoder(httpResp.Body).Decode(&resp)
		httpResp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if httpResp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: code=%d resp=%+v", i, httpResp.StatusCode, resp)
		}
		accepted = append(accepted, acceptedJob{id: resp.ID, req: req})
	}

	// SIGKILL: freeze the journal as it is on disk right now. The live
	// server keeps running (and will commit its copy), but recovery reads
	// only the frozen image — exactly what a rebooted process would see.
	img, err := os.ReadFile(live)
	if err != nil {
		t.Fatal(err)
	}
	crashed := filepath.Join(dir, "crashed.wal")
	if err := os.WriteFile(crashed, img, 0o644); err != nil {
		t.Fatal(err)
	}
	frozen, err := reliable.ReadWAL(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	pending := reliable.PendingWAL(frozen)
	if len(pending) == 0 {
		t.Fatal("crash image has no pending jobs — the 150ms slow hook failed to hold the backlog")
	}
	t.Logf("crash image: %d of %d accepted jobs pending", len(pending), jobs)

	// Server 2 boots from the crash image and must replay the backlog.
	s2 := server.New(server.Options{Workers: 2})
	recovered, err := s2.OpenJournal(crashed)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		_ = s2.Drain()
		_ = s2.Close()
	}()
	if recovered != len(pending) {
		t.Fatalf("recovered %d jobs, want %d", recovered, len(pending))
	}

	pendingIDs := make(map[string]bool, len(pending))
	for _, rec := range pending {
		pendingIDs[rec.ID] = true
	}
	for _, job := range accepted {
		if !pendingIDs[job.id] {
			// Committed before the crash: its result lived and died with
			// server 1; nothing to verify against server 2.
			continue
		}
		final := pollJob(t, ts2.URL, job.id)
		if final.Status != "done" {
			t.Fatalf("recovered job %s = %+v, want done", job.id, final)
		}
		// Bit-identical replay: the recovered result must match a direct
		// library solve of the journaled request.
		g := gen.Weighted(gen.GNP(job.req.Gen.N, job.req.Gen.P, job.req.Gen.Seed),
			gen.PolyWeights(2), job.req.Gen.Seed)
		want, err := maxis.Solve("theorem2", g, 0.5, 0, maxis.Config{Seed: job.req.Seed, MIS: mis.Luby{}, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := make([]bool, g.N())
		for _, v := range final.Set {
			got[v] = true
		}
		for v := range want.Set {
			if got[v] != want.Set[v] {
				t.Fatalf("job %s: replayed set differs from the lost solve at node %d", job.id, v)
			}
		}
		if final.Weight != want.Weight {
			t.Fatalf("job %s: replayed weight %d != %d", job.id, final.Weight, want.Weight)
		}
	}

	// Every replayed job committed: a third boot would find no backlog.
	f, err := os.Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := reliable.ReadWAL(f)
	if err != nil {
		t.Fatal(err)
	}
	if left := reliable.PendingWAL(recs); len(left) != 0 {
		t.Fatalf("journal still has %d pending jobs after recovery: %+v", len(left), left)
	}
}

func pollJob(t *testing.T, base, id string) server.SolveResponse {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		httpResp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var resp server.SolveResponse
		err = json.NewDecoder(httpResp.Body).Decode(&resp)
		httpResp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != "queued" && resp.Status != "running" {
			return resp
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, resp)
			return resp
		}
		time.Sleep(10 * time.Millisecond)
	}
}
