// Package soak holds the end-to-end chaos soak suite for the serving
// tier. It lives outside internal/server so its tests can drive the full
// HTTP stack — chaos injector, retrying client, write-ahead journal —
// without perturbing the server package's own test binary (whose golden
// tests enumerate the protocol registry).
//
// The suite asserts the availability story of the crash-tolerant tier:
// a pinned chaos schedule (injected 5xx, connection resets, latency,
// scheduled worker panics) must not push the retrying client below its
// SLO; a forced crash must lose no accepted async job; and every
// journal-replayed job must reproduce its result bit-identically.
//
// Run it the way CI does:
//
//	go test -race -run TestChaosSoak ./internal/soak/
package soak
