package soak

import (
	"bytes"
	"encoding/json"

	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distmwis/internal/chaos"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/mis"
	"distmwis/internal/server"
)

// TestMutationSoak is the dynamic-graph subsystem's audit: a pinned chaos
// schedule races mutation storms (PATCHes) against graph_ref solves while
// the injector also fires 500s, connection resets and worker panics. The
// contract under test, in four acts:
//
//	A. no acked mutation is ever lost: every acknowledged PATCH advances the
//	   server to the bit-identical state a shadow application produces, and
//	   a server rebooted from a frozen journal image reconstructs exactly
//	   the last acked state;
//	B. no stale answer is ever served: every solve response is an
//	   independent set on the exact graph version its graph_hash names;
//	C. every degraded answer heals: each PATCH-healed answer key climbs to
//	   quality "full", and the final published answer is independent on its
//	   version;
//	D. the whole exercise leaks no goroutines.
func TestMutationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	t.Run("StormsUnderChaos", soakMutationStorm)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+4 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func soakMutationStorm(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "graphs.wal")

	inj := chaos.NewInjector(chaos.Schedule{
		Seed:       soakSeed,
		ErrorP:     0.08,
		ResetP:     0.04,
		PanicEvery: 15,
		StormEvery: 1,
		StormOps:   6,
	})
	s1 := server.New(server.Options{Workers: 4, Chaos: inj, RepairInterval: time.Millisecond})
	if _, err := s1.OpenGraphJournal(journal); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	defer func() {
		ts1.Close()
		_ = s1.Drain()
		_ = s1.Close()
	}()

	// retries counts the faults the traffic absorbed; the chaos assertions
	// at the end need it to prove the soak was not vacuous.
	var retries atomic.Int64

	// The seed graph. Shadow state lives on the test side: versions maps
	// every content hash the server has ever acknowledged to the exact graph
	// it named, built by applying each acked edit locally.
	const n = 60
	g0 := gen.Weighted(gen.GNP(n, 0.06, soakSeed), gen.PolyWeights(2), soakSeed)
	var g0doc bytes.Buffer
	if err := g0.WriteJSON(&g0doc); err != nil {
		t.Fatal(err)
	}
	var put server.PutGraphResponse
	if code := doJSONRetry(t, "PUT", ts1.URL+"/v1/graph", g0doc.Bytes(), &put, &retries); code != http.StatusOK {
		t.Fatalf("PUT graph: code %d, resp %+v", code, put)
	}
	if put.Hash != g0.HashString() {
		t.Fatalf("server hash %s != local hash %s for identical bytes", put.Hash, g0.HashString())
	}
	var verMu sync.Mutex
	versions := map[string]*graph.Graph{put.Hash: g0}

	// One full foreground solve seeds the handle's last-answer record, so
	// every storm PATCH has an answer to heal onto the new version.
	baseReq := func(seed uint64) []byte {
		body, _ := json.Marshal(server.SolveRequest{GraphRef: put.Hash, Alg: "goodnodes", Seed: seed})
		return body
	}
	var first server.SolveResponse
	if code := doJSONRetry(t, "POST", ts1.URL+"/v1/solve", baseReq(soakSeed), &first, &retries); code != http.StatusOK {
		t.Fatalf("seed solve: code %d, resp %+v", code, first)
	}
	if first.Quality != "full" {
		t.Fatalf("seed solve quality %q, want full", first.Quality)
	}

	// Act A+B traffic: one mutator applying the injector's storm batches as
	// PATCHes, racing reader goroutines solving through the same handle.
	type observed struct {
		hash string
		set  []int32
	}
	var (
		obsMu    sync.Mutex
		observe  []observed
		ackMu    sync.Mutex
		ackEdits int
		keys     []string
		wg       sync.WaitGroup
	)

	const storms = 25
	wg.Add(1)
	go func() {
		defer wg.Done()
		shadow := g0
		for seq := int64(1); seq <= storms; seq++ {
			ops := inj.Storm(seq, n)
			if ops == nil {
				continue
			}
			edit := stormEdit(ops)
			body, _ := json.Marshal(edit)
			var resp server.PatchGraphResponse
			code := doJSONRetry(t, "PATCH", ts1.URL+"/v1/graph/"+shadow.HashString(), body, &resp, &retries)
			if code != http.StatusOK {
				t.Errorf("storm %d: PATCH code %d, resp %+v", seq, code, resp)
				return
			}
			// The ack is the durability line: re-derive the mutation locally
			// and the server must have landed on the bit-identical state.
			next, _, err := shadow.ApplyEdit(edit)
			if err != nil {
				t.Errorf("storm %d: shadow apply: %v", seq, err)
				return
			}
			if resp.Hash != next.HashString() {
				t.Errorf("storm %d: server hash %s != shadow hash %s", seq, resp.Hash, next.HashString())
				return
			}
			shadow = next
			verMu.Lock()
			versions[resp.Hash] = shadow
			verMu.Unlock()
			ackMu.Lock()
			ackEdits++
			if resp.Healed {
				keys = append(keys, resp.AnswerKey)
			} else {
				t.Errorf("storm %d: PATCH did not heal despite a recorded full answer", seq)
			}
			ackMu.Unlock()
		}
	}()

	const readers, perReader = 4, 25
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				// A small seed pool: repeats exercise the tagged cache across
				// invalidations, distinct seeds keep the scheduler busy enough
				// for the panic-every-15 schedule to fire.
				var resp server.SolveResponse
				code := doJSONRetry(t, "POST", ts1.URL+"/v1/solve", baseReq(uint64(1+(w*perReader+i)%8)), &resp, &retries)
				if code != http.StatusOK || resp.Status != "done" {
					t.Errorf("reader %d.%d: code %d, resp %+v", w, i, code, resp)
					continue
				}
				obsMu.Lock()
				observe = append(observe, observed{hash: resp.GraphHash, set: resp.Set})
				obsMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Act B: every response named a graph version; its set must be
	// independent on exactly that version. Verified after the race so the
	// shadow map is complete — a hash the map has never seen would itself be
	// the stale-answer bug this test exists to catch.
	for k, o := range observe {
		g := versions[o.hash]
		if g == nil {
			t.Fatalf("response %d names unknown graph version %s", k, o.hash)
		}
		if !g.IsIndependentSet(indicesToBools(o.set, g.N())) {
			t.Fatalf("response %d: set is not independent on its version %s", k, o.hash)
		}
	}

	// Act C: each healed answer climbs to full quality and stays independent
	// on the version it answers for.
	seen := map[string]bool{}
	deadline := time.Now().Add(30 * time.Second)
	for _, key := range keys {
		if seen[key] {
			continue
		}
		seen[key] = true
		a := pollAnswer(t, ts1.URL, key, "full", deadline, &retries)
		g := versions[a.GraphHash]
		if g == nil {
			t.Fatalf("answer %s names unknown graph version %s", key, a.GraphHash)
		}
		if !g.IsIndependentSet(indicesToBools(a.Set, g.N())) {
			t.Fatalf("answer %s: upgraded set not independent on its version", key)
		}
	}

	// The chaos must actually have fired, or every assertion above was easy.
	st := inj.Stats()
	t.Logf("chaos %+v, retries %d, acked %d storms, %d reader responses, %d healed keys",
		st, retries.Load(), ackEdits, len(observe), len(seen))
	if st.Errors == 0 || st.Resets == 0 || st.Panics == 0 || st.Storms == 0 {
		t.Fatalf("chaos schedule barely fired: %+v", st)
	}
	if retries.Load() == 0 {
		t.Fatal("traffic absorbed no faults — the soak tested nothing")
	}

	// Act A, crash edition: freeze the journal as it is on disk and boot a
	// second server from the frozen image — what a rebooted process would
	// see. It must reconstruct the last acked state bit-identically and
	// resolve the original hash through the whole alias chain.
	img, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	crashed := filepath.Join(dir, "crashed.wal")
	if err := os.WriteFile(crashed, img, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := server.New(server.Options{Workers: 2})
	replayed, err := s2.OpenGraphJournal(crashed)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		_ = s2.Drain()
		_ = s2.Close()
	}()
	if replayed != 1+ackEdits {
		t.Fatalf("replayed %d journal records, want 1 put + %d acked patches", replayed, ackEdits)
	}

	// Recover the final state from the rebooted server's own view instead of
	// trusting test-side bookkeeping, then check the two agree.
	var got server.PutGraphResponse
	none := atomic.Int64{}
	if code := doJSONRetry(t, "GET", ts2.URL+"/v1/graph/"+put.Hash, nil, &got, &none); code != http.StatusOK {
		t.Fatalf("rebooted server lost the handle: code %d, resp %+v", code, got)
	}
	final := versions[got.Hash]
	if final == nil {
		t.Fatalf("rebooted server reports hash %s the shadow never acked", got.Hash)
	}
	if got.Version != ackEdits || got.N != final.N() || got.M != final.M() {
		t.Fatalf("rebooted handle %+v does not match shadow (version %d, n %d, m %d)",
			got, ackEdits, final.N(), final.M())
	}

	// A solve on the rebooted server is bit-identical to a direct library
	// solve of the shadow's final state: replay restored not just topology
	// but answer-determinism.
	var resp server.SolveResponse
	if code := doJSONRetry(t, "POST", ts2.URL+"/v1/solve", baseReq(soakSeed), &resp, &none); code != http.StatusOK {
		t.Fatalf("rebooted solve: code %d, resp %+v", code, resp)
	}
	want, _, err := maxis.SolveByComponent("goodnodes", final, 0.5, 0,
		maxis.Config{Seed: soakSeed, MIS: mis.Luby{}, Workers: 1}, maxis.ComponentCache{})
	if err != nil {
		t.Fatal(err)
	}
	gotSet := indicesToBools(resp.Set, final.N())
	for v := range want.Set {
		if gotSet[v] != want.Set[v] {
			t.Fatalf("rebooted solve differs from the library at node %d", v)
		}
	}
	if resp.Weight != want.Weight {
		t.Fatalf("rebooted solve weight %d != %d", resp.Weight, want.Weight)
	}
}

// stormEdit maps an injector storm batch onto the PATCH wire format.
func stormEdit(ops []chaos.MutationOp) graph.Edit {
	var e graph.Edit
	for _, op := range ops {
		switch op.Kind {
		case "add":
			e.AddEdges = append(e.AddEdges, [2]int32{op.U, op.V})
		case "remove":
			e.RemoveEdges = append(e.RemoveEdges, [2]int32{op.U, op.V})
		case "weight":
			e.Weights = append(e.Weights, graph.WeightUpdate{V: op.U, W: op.W})
		}
	}
	return e
}

func indicesToBools(set []int32, n int) []bool {
	out := make([]bool, n)
	for _, v := range set {
		out[v] = true
	}
	return out
}

// doJSONRetry performs one logical request against a chaos-wrapped server,
// absorbing injected resets (transport errors) and 5xx responses the way a
// production client would. 4xx is returned immediately: caller bugs must
// not be retried into accidental passes.
func doJSONRetry(t *testing.T, method, url string, body []byte, out any, retries *atomic.Int64) int {
	t.Helper()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		httpResp, err := http.DefaultClient.Do(req)
		if err == nil {
			if httpResp.StatusCode < 500 {
				err = json.NewDecoder(httpResp.Body).Decode(out)
				httpResp.Body.Close()
				if err != nil {
					t.Fatalf("%s %s: decode: %v", method, url, err)
				}
				return httpResp.StatusCode
			}
			httpResp.Body.Close()
		}
		if attempt >= 50 {
			t.Errorf("%s %s: no non-5xx response after %d attempts (last err %v)", method, url, attempt+1, err)
			return http.StatusInternalServerError
		}
		retries.Add(1)
		time.Sleep(2 * time.Millisecond)
	}
}

// pollAnswer polls GET /v1/answers/{key} until the answer reaches the
// wanted quality tag.
func pollAnswer(t *testing.T, base, key, want string, deadline time.Time, retries *atomic.Int64) storedAnswerView {
	t.Helper()
	for {
		var a storedAnswerView
		code := doJSONRetry(t, "GET", base+"/v1/answers/"+key, nil, &a, retries)
		if code == http.StatusOK && a.Quality == want {
			return a
		}
		if time.Now().After(deadline) {
			t.Fatalf("answer %s stuck at quality %q (code %d), want %q", key, a.Quality, code, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// storedAnswerView mirrors the wire shape of GET /v1/answers/{key}.
type storedAnswerView struct {
	Key       string  `json:"key"`
	GraphHash string  `json:"graph_hash"`
	Set       []int32 `json:"set"`
	Weight    int64   `json:"weight"`
	Quality   string  `json:"quality"`
	Error     string  `json:"error,omitempty"`
}
