// External-package test: package reliable cannot import internal/maxis
// (maxis imports reliable), but the cross-engine determinism property of
// the repair monitor is about whole solves, so it is exercised here through
// the public maxis entry point.
package reliable_test

import (
	"testing"

	"distmwis/internal/fault"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/mis"
	"distmwis/internal/protocol"
)

// The repair monitor must be engine-independent: a crash-faulted solve with
// Repair enabled returns the bit-identical set whether the simulator ran
// sequentially or on the worker pool, because Repair's edge scan is a pure
// function of (graph, candidate set).
func TestRepairDeterministicAcrossEngines(t *testing.T) {
	g := gen.Weighted(gen.GNP(120, 0.06, 5), gen.PolyWeights(2), 5)
	run := func(workers int) *protocol.Result {
		res, err := maxis.Solve("goodnodes", g, 0.5, 0, maxis.Config{
			Seed:    11,
			MIS:     mis.Luby{},
			Workers: workers,
			Repair:  true,
			Faults:  fault.Schedule{Seed: 99, CrashFrac: 0.15, CrashAt: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	pool := run(4)
	if seq.Weight != pool.Weight {
		t.Fatalf("weights differ across engines: %d vs %d", seq.Weight, pool.Weight)
	}
	for v := range seq.Set {
		if seq.Set[v] != pool.Set[v] {
			t.Fatalf("repaired sets differ across engines at node %d", v)
		}
	}
}
