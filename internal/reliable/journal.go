package reliable

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// This file exports the write-ahead journal the serving tier uses for
// accepted batch jobs. It is the durable-storage sibling of the
// Checkpointer snapshot+replay idiom above: the journal file plays the
// role of the transport's input log (every accepted unit of work is logged
// before it is acknowledged), and compaction-on-open plays the role of the
// snapshot (completed work is dropped, only pending work survives into the
// rewritten file). Recovery is then deterministic replay: re-executing a
// pending record reproduces the lost result exactly, because solves are
// pure functions of their logged request.

// WALOp is the record type tag of a WALRecord.
type WALOp string

const (
	// WALBegin marks a unit of work as accepted but not yet completed.
	WALBegin WALOp = "begin"
	// WALCommit marks a previously begun unit of work as completed.
	WALCommit WALOp = "commit"
	// WALApply is a durable state-change record: unlike begin/commit pairs,
	// which describe pending work and retire each other, an apply record
	// describes work already done to some replicated state (a graph
	// mutation, a configuration change). Compaction keeps every apply
	// record — dropping one would fork replayed state from the state that
	// was acknowledged — until the owner snapshots via Rewrite.
	WALApply WALOp = "apply"
)

// WALRecord is one journal line. Begin records carry the replayable
// payload; commit records carry only the ID they retire.
type WALRecord struct {
	Op   WALOp           `json:"op"`
	ID   string          `json:"id"`
	Data json.RawMessage `json:"data,omitempty"`
}

// WAL is an append-only, fsync-before-return write-ahead journal of
// begin/commit records. Concurrency-safe; every append is durable before
// the method returns, so a record present in memory is present on disk —
// the invariant crash recovery builds on.
//
// By default each append issues its own fsync. SetGroupCommit enables
// group commit: appends arriving within a small window share one fsync,
// which turns a mutation storm's per-record fsync cost into one sync per
// batch without weakening the contract — each append still blocks until
// the sync covering its record has completed.
type WAL struct {
	mu   sync.Mutex
	path string
	f    *os.File

	// Group-commit state (all guarded by mu). window <= 0 means each
	// append syncs individually.
	window   time.Duration
	maxBatch int
	batch    *walBatch // open batch collecting unsynced appends, or nil
	timer    *time.Timer
	syncs    atomic.Int64
}

// walBatch is one group of appends sharing an fsync. Waiters block on done
// and read err afterwards.
type walBatch struct {
	done    chan struct{}
	err     error
	pending int
}

// SetGroupCommit enables batched fsyncs: a sync is issued when the oldest
// unsynced record has waited window, or when maxBatch records are pending,
// whichever comes first (maxBatch <= 0 selects 32). window <= 0 restores
// sync-per-append. Safe to call on a live WAL; in-flight batches flush
// under their original settings.
func (w *WAL) SetGroupCommit(window time.Duration, maxBatch int) {
	if maxBatch <= 0 {
		maxBatch = 32
	}
	w.mu.Lock()
	w.window = window
	w.maxBatch = maxBatch
	w.mu.Unlock()
}

// Syncs reports how many fsyncs the WAL has issued through append paths —
// the observable group-commit amortisation (Rewrite/compaction syncs are
// not counted).
func (w *WAL) Syncs() int64 { return w.syncs.Load() }

// OpenWAL opens (creating if needed) the journal at path, returning the
// retained records: begins recorded without a matching commit plus every
// apply record, in original append order (filter with PendingWAL /
// ApplyWAL). Before returning it compacts the file down to exactly those
// retained records, so the journal never grows beyond the live backlog,
// the state log, and the records appended since the last open.
//
// A truncated final line (the signature of a crash mid-append) is
// discarded silently: an incomplete begin was never acknowledged to
// anyone, and an incomplete commit re-runs a completed-but-unacknowledged
// unit of work, which replay determinism makes harmless.
func OpenWAL(path string) (*WAL, []WALRecord, error) {
	prior, err := readWALFile(path)
	if err != nil {
		return nil, nil, err
	}
	retained := retainWAL(prior)
	if err := writeWALFile(path, retained); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("reliable: wal open: %w", err)
	}
	return &WAL{path: path, f: f}, retained, nil
}

// retainWAL reduces a record sequence to what compaction must keep:
// uncommitted begins and every apply record, original order preserved.
func retainWAL(recs []WALRecord) []WALRecord {
	committed := make(map[string]bool)
	for _, rec := range recs {
		if rec.Op == WALCommit {
			committed[rec.ID] = true
		}
	}
	var keep []WALRecord
	for _, rec := range recs {
		switch rec.Op {
		case WALBegin:
			if !committed[rec.ID] {
				keep = append(keep, rec)
			}
		case WALApply:
			keep = append(keep, rec)
		}
	}
	return keep
}

// writeWALFile atomically replaces the journal at path with recs: write to
// a temp file, fsync, rename.
func writeWALFile(path string, recs []WALRecord) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".compact-*")
	if err != nil {
		return fmt.Errorf("reliable: wal compact: %w", err)
	}
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("reliable: wal compact: %w", err)
		}
	}
	if err := w.Flush(); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("reliable: wal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("reliable: wal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("reliable: wal compact: %w", err)
	}
	return nil
}

// Path returns the journal's file path.
func (w *WAL) Path() string { return w.path }

// Begin durably records the acceptance of unit id with its replayable
// payload. It must return before the acceptance is acknowledged upstream.
func (w *WAL) Begin(id string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("reliable: wal begin %s: %w", id, err)
	}
	return w.append(WALRecord{Op: WALBegin, ID: id, Data: raw})
}

// Apply durably records a completed state change with its replayable
// payload. It must return before the change is acknowledged upstream:
// a mutation whose apply record reached disk survives any crash, and
// replaying the apply log in order reconstructs the state bit-identically.
func (w *WAL) Apply(id string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("reliable: wal apply %s: %w", id, err)
	}
	return w.append(WALRecord{Op: WALApply, ID: id, Data: raw})
}

// Rewrite atomically replaces the journal's contents with recs — the
// snapshot-compaction primitive for apply logs: the owner replays the log,
// then rewrites it as one snapshot record per live piece of state, so the
// journal stays bounded by live state rather than by mutation history.
// Concurrent appends are excluded for the duration; the WAL stays open for
// append afterwards.
func (w *WAL) Rewrite(recs []WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("reliable: wal rewrite after Close")
	}
	// A pending group-commit batch must reach disk (and release its
	// waiters) before the file is swapped out from under it.
	w.flushLocked()
	if err := w.f.Close(); err != nil {
		w.f = nil
		return fmt.Errorf("reliable: wal rewrite: %w", err)
	}
	w.f = nil
	if err := writeWALFile(w.path, recs); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("reliable: wal rewrite reopen: %w", err)
	}
	w.f = f
	return nil
}

// Commit durably records the completion of unit id. Committing an id with
// no pending begin is legal (the begin may have been compacted away by a
// concurrent reopen in tests); recovery simply never sees it.
func (w *WAL) Commit(id string) error {
	return w.append(WALRecord{Op: WALCommit, ID: id})
}

func (w *WAL) append(rec WALRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("reliable: wal append: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return fmt.Errorf("reliable: wal append after Close")
	}
	if _, err := w.f.Write(line); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("reliable: wal append: %w", err)
	}
	if w.window <= 0 {
		// Sync-per-append: durable before return, no sharing.
		err := w.f.Sync()
		w.syncs.Add(1)
		w.mu.Unlock()
		if err != nil {
			return fmt.Errorf("reliable: wal sync: %w", err)
		}
		return nil
	}
	// Group commit: join (or open) the current batch, then wait for the
	// sync that covers this record. The record is on the OS side of the
	// file already; only its durability point is shared.
	if w.batch == nil {
		b := &walBatch{done: make(chan struct{})}
		w.batch = b
		w.timer = time.AfterFunc(w.window, func() {
			w.mu.Lock()
			if w.batch == b { // still open — not already flushed by maxBatch
				w.flushLocked()
			}
			w.mu.Unlock()
		})
	}
	b := w.batch
	b.pending++
	if b.pending >= w.maxBatch {
		w.flushLocked()
	}
	w.mu.Unlock()
	<-b.done
	if b.err != nil {
		return fmt.Errorf("reliable: wal sync: %w", b.err)
	}
	return nil
}

// flushLocked syncs and releases the open batch. Caller holds w.mu and has
// checked w.batch != nil (or calls only when it is).
func (w *WAL) flushLocked() {
	b := w.batch
	if b == nil {
		return
	}
	w.batch = nil
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	if w.f == nil {
		b.err = fmt.Errorf("wal closed before batch sync")
	} else {
		b.err = w.f.Sync()
		w.syncs.Add(1)
	}
	close(b.done)
}

// Close releases the journal file, first flushing any pending group-commit
// batch so no waiter hangs. Appends after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.flushLocked()
	err := w.f.Close()
	w.f = nil
	return err
}

// ReadWAL parses a journal stream, tolerating a truncated final line.
// Exposed so tools and tests can inspect a journal without opening it for
// writing.
func ReadWAL(r io.Reader) ([]WALRecord, error) {
	var recs []WALRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec WALRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A malformed line can only be the torn tail of a crashed
			// append; everything after it is unreachable by construction
			// (appends are sequential), so stop here.
			break
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reliable: wal read: %w", err)
	}
	return recs, nil
}

// PendingWAL reduces a record sequence to the begins that were never
// committed, preserving append order.
func PendingWAL(recs []WALRecord) []WALRecord {
	committed := make(map[string]bool)
	for _, rec := range recs {
		if rec.Op == WALCommit {
			committed[rec.ID] = true
		}
	}
	var pending []WALRecord
	for _, rec := range recs {
		if rec.Op == WALBegin && !committed[rec.ID] {
			pending = append(pending, rec)
		}
	}
	return pending
}

// ApplyWAL reduces a record sequence to its apply records, preserving
// append order — the state log to replay on boot.
func ApplyWAL(recs []WALRecord) []WALRecord {
	var out []WALRecord
	for _, rec := range recs {
		if rec.Op == WALApply {
			out = append(out, rec)
		}
	}
	return out
}

func readWALFile(path string) ([]WALRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reliable: wal open: %w", err)
	}
	defer f.Close()
	return ReadWAL(f)
}
