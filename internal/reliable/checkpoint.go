package reliable

import "math/rand/v2"

// Checkpointer is implemented by processes that support checkpoint/restore
// crash recovery (the mis, coloring and maxis pipelines implement it). When
// Options.CheckpointEvery is k > 0, the transport snapshots the process
// after every k-th logical round — together with its randomness stream —
// and treats a crash-recovery fault as a full amnesia crash: the live state
// is wiped by Restore and the logical rounds since the snapshot are
// re-executed from the transport's input log, reproducing the pre-crash
// state exactly (node steps are deterministic functions of their inputs and
// randomness). Neighbour retransmissions then fill whatever the node missed
// while it was down, so it rejoins the protocol exactly where it left off
// rather than with stale or frozen state.
//
// The transport's own state — sequence windows, the input log, the
// snapshot — plays the role of stable storage (a write-ahead log in
// database terms): it survives the crash by construction, only the
// process's volatile state is lost. Processes that do not implement the
// interface simply keep the fault layer's frozen-state semantics from PR 1.
type Checkpointer interface {
	// Checkpoint returns a self-contained copy of the process state. The
	// transport may hold it across many rounds and restore from it more
	// than once, so it must not alias live mutable state.
	Checkpoint() any
	// Restore replaces the process state with a copy of a snapshot
	// previously returned by Checkpoint on the same process. It must not
	// keep references into the snapshot: the transport may restore from it
	// again after a second crash.
	Restore(state any)
}

// takeSnapshot records the inner state, its randomness stream and the
// logical round, and truncates the input log.
func (p *proc) takeSnapshot() {
	p.snap = p.cp.Checkpoint()
	b, err := p.pcg.MarshalBinary()
	if err != nil {
		// rand.PCG's MarshalBinary cannot fail; guard against a future
		// stdlib change rather than silently checkpointing garbage.
		panic("reliable: snapshotting randomness stream: " + err.Error())
	}
	p.snapPCG = b
	p.snapRound = p.logical
	p.log = p.log[:0]
}

// recoverFromCheckpoint simulates the amnesia crash and recovers from it:
// restore the snapshot (state + randomness), then deterministically replay
// the logged inputs of every logical round executed since.
func (p *proc) recoverFromCheckpoint() {
	p.cp.Restore(p.snap)
	var pcg rand.PCG
	if err := pcg.UnmarshalBinary(p.snapPCG); err != nil {
		panic("reliable: restoring randomness stream: " + err.Error())
	}
	*p.pcg = pcg
	round := p.snapRound
	for _, recv := range p.log {
		round++
		p.inner.Round(round, recv)
	}
	p.t.recoveries.Add(1)
	p.t.replayedRounds.Add(int64(len(p.log)))
}
