package reliable

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestWALGroupCommitAmortisesSyncs: N concurrent appends under group
// commit must complete with far fewer fsyncs than appends, and every
// record must still be on disk when its append returns.
func TestWALGroupCommitAmortisesSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetGroupCommit(5*time.Millisecond, 16)

	const appends = 64
	var wg sync.WaitGroup
	errs := make([]error, appends)
	for i := 0; i < appends; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Apply("gc", map[string]int{"i": i})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	// Every returned append is durable: the file holds all records.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadWAL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != appends {
		t.Fatalf("%d records on disk, want %d", len(recs), appends)
	}

	// The whole point: far fewer syncs than appends. 64 appends racing a
	// 16-record batch trigger can need at most ~appends/2 syncs even under
	// worst-case scheduling; without batching it would be exactly 64.
	if syncs := w.Syncs(); syncs >= appends/2 {
		t.Fatalf("%d syncs for %d appends — group commit not amortising", syncs, appends)
	} else if syncs == 0 {
		t.Fatal("zero syncs recorded")
	}
}

// TestWALGroupCommitWindowFlush: a single append must not wait for a full
// batch — the window timer flushes it.
func TestWALGroupCommitWindowFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetGroupCommit(2*time.Millisecond, 1<<20) // batch trigger unreachable

	start := time.Now()
	if err := w.Begin("solo", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("lone append waited %v for a batch that never fills", waited)
	}
	if w.Syncs() != 1 {
		t.Fatalf("Syncs = %d after one append", w.Syncs())
	}
}

// TestWALGroupCommitCloseFlushes: Close with a batch pending must sync it
// and release the waiter rather than hang or drop the record.
func TestWALGroupCommitCloseFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SetGroupCommit(10*time.Second, 1<<20) // neither trigger can fire

	done := make(chan error, 1)
	go func() { done <- w.Begin("pending", nil) }()
	// Wait until the append has joined the batch, then Close underneath it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.mu.Lock()
		joined := w.batch != nil
		w.mu.Unlock()
		if joined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("append never joined a batch")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append failed across Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("append hung after Close")
	}
	f, _ := os.Open(path)
	recs, err := ReadWAL(f)
	f.Close()
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v; the pre-Close append must be durable", len(recs), err)
	}
}

// TestWALGroupCommitRewriteFlushes: Rewrite must flush the open batch
// before swapping files, releasing waiters with a successful sync.
func TestWALGroupCommitRewriteFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetGroupCommit(10*time.Second, 1<<20)

	done := make(chan error, 1)
	go func() { done <- w.Apply("state", map[string]int{"x": 1}) }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.mu.Lock()
		joined := w.batch != nil
		w.mu.Unlock()
		if joined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("append never joined a batch")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Rewrite(nil); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append failed across Rewrite: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("append hung across Rewrite")
	}
	// Appends still work after the rewrite reopened the file.
	if err := w.Commit("state"); err != nil {
		t.Fatalf("append after Rewrite: %v", err)
	}
}

// TestWALSyncPerAppendDefault: without SetGroupCommit every append costs
// its own fsync — the pre-batching behaviour, still the default.
func TestWALSyncPerAppendDefault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 5; i++ {
		if err := w.Commit("x"); err != nil {
			t.Fatal(err)
		}
	}
	if w.Syncs() != 5 {
		t.Fatalf("Syncs = %d for 5 unbatched appends", w.Syncs())
	}
}
