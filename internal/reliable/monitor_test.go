package reliable

import (
	"testing"

	"distmwis/internal/graph"
)

// Property: Repair always leaves an independent set, and a second pass over
// its own output finds nothing left to do.
func TestRepairIdempotent(t *testing.T) {
	g := gnpGraph(t, 200, 0.05, 7)
	set := make([]bool, g.N())
	// A deliberately broken candidate set: every third node, conflicts
	// guaranteed on a graph this dense.
	for v := 0; v < g.N(); v += 3 {
		set[v] = true
	}
	first := Repair(g, set)
	if !g.IsIndependentSet(set) {
		t.Fatal("repaired set is not independent")
	}
	if first.Conflicts == 0 {
		t.Fatal("test set had no conflicts — the idempotence check is vacuous")
	}
	second := Repair(g, set)
	if second.Conflicts != 0 || second.Withdrawn != 0 || second.WithdrawnWeight != 0 {
		t.Fatalf("second pass not a no-op: %+v", second)
	}
}

// Property: Repair is a pure function of (graph, set) — the engine that
// produced the candidate set cannot matter, because Repair scans edges in
// ascending (v, u) order with an order-free local rule. Verified by feeding
// byte-identical copies and checking outcomes match element-wise.
func TestRepairDeterministic(t *testing.T) {
	g := gnpGraph(t, 150, 0.08, 21)
	mk := func() []bool {
		set := make([]bool, g.N())
		for v := 0; v < g.N(); v += 2 {
			set[v] = true
		}
		return set
	}
	a, b := mk(), mk()
	ra := Repair(g, a)
	rb := Repair(g, b)
	if ra != rb {
		t.Fatalf("reports differ: %+v vs %+v", ra, rb)
	}
	if !graph.SameSet(a, b) {
		t.Fatal("repaired sets differ on identical inputs")
	}
}

// Edge case: the all-conflict clique. Every pair conflicts; the scan must
// leave exactly one survivor — the maximum-weight node (lowest index on
// ties), because the lower-weight endpoint of each edge withdraws.
func TestRepairAllConflictClique(t *testing.T) {
	const n = 8
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+(v*3)%7)) // max weight 6 at v=2
	}
	g := b.MustBuild()
	set := make([]bool, n)
	for v := range set {
		set[v] = true
	}
	rep := Repair(g, set)
	if !g.IsIndependentSet(set) {
		t.Fatal("clique repair left a dependent set")
	}
	survivors := 0
	survivor := -1
	for v, in := range set {
		if in {
			survivors++
			survivor = v
		}
	}
	if survivors != 1 {
		t.Fatalf("clique repair left %d survivors, want 1", survivors)
	}
	if g.Weight(survivor) != g.MaxWeight() {
		t.Fatalf("survivor %d has weight %d, want the max %d", survivor, g.Weight(survivor), g.MaxWeight())
	}
	if rep.Withdrawn != n-1 {
		t.Fatalf("withdrew %d nodes, want %d", rep.Withdrawn, n-1)
	}
}

// Edge case: the empty set has nothing to conflict and nothing to withdraw.
func TestRepairEmptySet(t *testing.T) {
	g := gnpGraph(t, 50, 0.1, 3)
	set := make([]bool, g.N())
	rep := Repair(g, set)
	if rep != (RepairReport{}) {
		t.Fatalf("empty set produced a non-zero report: %+v", rep)
	}
	for v, in := range set {
		if in {
			t.Fatalf("empty set gained member %d", v)
		}
	}
}

// Property: Repair only removes nodes — it never admits one, so it can only
// shrink weight, never fabricate it.
func TestRepairOnlyShrinks(t *testing.T) {
	g := gnpGraph(t, 120, 0.06, 9)
	set := make([]bool, g.N())
	for v := 0; v < g.N(); v += 2 {
		set[v] = true
	}
	before := append([]bool(nil), set...)
	rep := Repair(g, set)
	for v := range set {
		if set[v] && !before[v] {
			t.Fatalf("Repair admitted node %d", v)
		}
	}
	if got := g.SetWeight(before) - g.SetWeight(set); got != rep.WithdrawnWeight {
		t.Fatalf("withdrawn weight accounting off: delta %d vs reported %d", got, rep.WithdrawnWeight)
	}
}

// gnpGraph builds a seeded G(n,p) without importing internal/graph/gen
// (which would cycle through nothing, but keep the package's test deps
// minimal and the construction visible).
func gnpGraph(t *testing.T, n int, p float64, seed uint64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	// xorshift-style LCG: deterministic, dependency-free.
	state := seed*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if next() < p {
				b.AddEdge(u, v)
			}
		}
	}
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+(v*v)%97))
	}
	return b.MustBuild()
}
