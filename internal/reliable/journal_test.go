package reliable

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type walPayload struct {
	Graph string `json:"graph"`
	Seed  uint64 `json:"seed"`
}

func openTestWAL(t *testing.T, path string) (*WAL, []WALRecord) {
	t.Helper()
	w, pending, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	t.Cleanup(func() { _ = w.Close() })
	return w, pending
}

func TestWALBeginCommitRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, pending := openTestWAL(t, path)
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending records", len(pending))
	}
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		if err := w.Begin(id, walPayload{Graph: "gnp", Seed: 42}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit("job-2"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: reopen the file as a recovering process would.
	_, pending = openTestWAL(t, path)
	ids := make([]string, len(pending))
	for i, rec := range pending {
		ids[i] = rec.ID
		var p walPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			t.Fatalf("pending %s payload: %v", rec.ID, err)
		}
		if p.Graph != "gnp" || p.Seed != 42 {
			t.Fatalf("pending %s payload drifted: %+v", rec.ID, p)
		}
	}
	if got, want := strings.Join(ids, ","), "job-1,job-3"; got != want {
		t.Fatalf("pending = %s, want %s (append order, commits retired)", got, want)
	}
}

func TestWALCompactionOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _ := openTestWAL(t, path)
	for i := 0; i < 50; i++ {
		id := "job-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := w.Begin(id, walPayload{Seed: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Begin("job-live", walPayload{Seed: 99}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	_, pending := openTestWAL(t, path)
	if len(pending) != 1 || pending[0].ID != "job-live" {
		t.Fatalf("pending = %+v, want the single live job", pending)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the journal: %d -> %d bytes", before.Size(), after.Size())
	}
	recs, err := readWALFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Op != WALBegin || recs[0].ID != "job-live" {
		t.Fatalf("compacted journal contents = %+v, want only the live begin", recs)
	}
}

func TestWALToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _ := openTestWAL(t, path)
	if err := w.Begin("job-1", walPayload{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unparseable trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"begin","id":"job-2","da`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, pending := openTestWAL(t, path)
	if len(pending) != 1 || pending[0].ID != "job-1" {
		t.Fatalf("pending = %+v, want only the fully-written begin", pending)
	}
}

func TestWALCommitWithoutBegin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _ := openTestWAL(t, path)
	if err := w.Commit("job-ghost"); err != nil {
		t.Fatalf("commit without begin must be legal: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, pending := openTestWAL(t, path)
	if len(pending) != 0 {
		t.Fatalf("pending = %+v, want none", pending)
	}
}

func TestWALAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _ := openTestWAL(t, path)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Begin("job-1", nil); err == nil {
		t.Fatal("Begin after Close must fail")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close must be a no-op: %v", err)
	}
}

func TestWALApplyRetainedAcrossCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "graphs.wal")
	w, _ := openTestWAL(t, path)
	for i := 0; i < 3; i++ {
		if err := w.Apply("mut-"+string(rune('1'+i)), walPayload{Graph: "patch", Seed: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave a completed begin/commit pair: compaction must drop it
	// while keeping every apply record.
	if err := w.Begin("job-1", walPayload{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, retained := openTestWAL(t, path)
	applies := ApplyWAL(retained)
	if len(applies) != 3 {
		t.Fatalf("retained %d apply records, want 3: %+v", len(applies), retained)
	}
	for i, rec := range applies {
		if want := "mut-" + string(rune('1'+i)); rec.ID != want {
			t.Fatalf("apply order broken: got %s at %d, want %s", rec.ID, i, want)
		}
		var p walPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			t.Fatal(err)
		}
		if p.Seed != uint64(i) {
			t.Fatalf("apply %d payload drifted: %+v", i, p)
		}
	}
	if pending := PendingWAL(retained); len(pending) != 0 {
		t.Fatalf("committed begin survived compaction: %+v", pending)
	}
}

func TestWALRewriteSnapshotsApplyLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "graphs.wal")
	w, _ := openTestWAL(t, path)
	for i := 0; i < 20; i++ {
		if err := w.Apply("mut", walPayload{Seed: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot: the twenty-mutation history collapses to one record.
	snap := WALRecord{Op: WALApply, ID: "snapshot", Data: json.RawMessage(`{"graph":"final"}`)}
	if err := w.Rewrite([]WALRecord{snap}); err != nil {
		t.Fatal(err)
	}
	// The WAL must remain appendable after a rewrite.
	if err := w.Apply("mut-after", walPayload{Seed: 99}); err != nil {
		t.Fatalf("append after rewrite: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, retained := openTestWAL(t, path)
	applies := ApplyWAL(retained)
	if len(applies) != 2 || applies[0].ID != "snapshot" || applies[1].ID != "mut-after" {
		t.Fatalf("rewritten journal = %+v, want [snapshot, mut-after]", applies)
	}
}
