package reliable

import "distmwis/internal/graph"

// RepairReport summarises one self-healing pass over a candidate set.
type RepairReport struct {
	// Conflicts counts edges found with both endpoints in the set.
	Conflicts int
	// Withdrawn counts nodes removed to restore independence.
	Withdrawn int
	// WithdrawnWeight is the total weight of the withdrawn nodes.
	WithdrawnWeight int64
}

// Merge folds another pass into this report (a pipeline repairs after each
// phase and aggregates).
func (r *RepairReport) Merge(o RepairReport) {
	r.Conflicts += o.Conflicts
	r.Withdrawn += o.Withdrawn
	r.WithdrawnWeight += o.WithdrawnWeight
}

// Repair is the runtime self-healing monitor: it checks the independence
// invariant over the candidate set and performs local repair in place —
// for every conflicting edge the lower-weight endpoint withdraws, with a
// deterministic tie-break (the higher-index endpoint withdraws, keeping the
// lower index). Each decision looks only at the two endpoints of one edge,
// so the repair is a local rule a real deployment would run as a one-round
// distributed check; here it runs on the host after output collection,
// where it heals the residual failure modes the transport cannot mask — a
// crash-stop neighbour declared dead mid-protocol can leave both endpoints
// of an edge believing they joined.
//
// Repair only ever shrinks the set, so every guarantee that survives a
// passive degraded run (independence after CheckIndependence-style
// filtering) is preserved, and the result is always independent. Edges are
// scanned in ascending (v, u) order and decisions apply immediately, which
// makes the outcome deterministic and engine-independent.
func Repair(g *graph.Graph, set []bool) RepairReport {
	var rep RepairReport
	n := g.N()
	for v := 0; v < n; v++ {
		if !set[v] {
			continue
		}
		for _, un := range g.Neighbors(v) {
			u := int(un)
			if u <= v || !set[v] || !set[u] {
				continue
			}
			rep.Conflicts++
			loser := u
			if g.Weight(v) < g.Weight(u) {
				loser = v
			}
			set[loser] = false
			rep.Withdrawn++
			rep.WithdrawnWeight += g.Weight(loser)
		}
	}
	return rep
}
