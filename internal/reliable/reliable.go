// Package reliable layers a deterministic ARQ transport between the congest
// simulator and a protocol process, turning the lossy links produced by
// internal/fault back into the perfectly reliable synchronous network the
// paper assumes (Kawarabayashi–Khoury–Schild–Schwartzman, Section 3).
//
// Each node's process is wrapped by a transport endpoint that owns the
// *physical* rounds and reconstructs *logical* rounds for the inner process:
// every logical-round message (including the explicit "no message" case)
// travels as a framed data unit with a per-edge sequence number, receivers
// piggyback cumulative ACKs on every frame, and unacknowledged frames are
// retransmitted on a deterministic timeout with bounded backoff. Corrupted
// frames are discarded by the simulator's link-layer checksum (CRC-8, see
// internal/wire), so corruption is just detectable loss and triggers the
// same retransmission path; the fault layer's one-round-delayed duplicates
// are suppressed by the sequence numbers. Under any fault.Schedule with
// Loss, Dup, Corrupt < 1 every logical round's messages are therefore
// delivered exactly once, in order, and the inner process runs bit-for-bit
// the execution it would have had on a reliable network (it is told
// Faulty=false and advances one logical round whenever all its inputs are
// in).
//
// The price is paid in physical rounds and header bits, both fully counted:
// a frame carries up to HeaderBits() of framing above the inner payload
// (granted as headroom over the CONGEST bound B by the simulator, so inner
// protocols still budget against B), and a stalled node simply waits,
// poking silent neighbours with keep-alive frames so that a slow link is
// not mistaken for a dead one. A per-port failure detector eventually
// declares a permanently silent neighbour dead (crash-stop faults) and
// substitutes nil messages so the node is not blocked forever; see
// DESIGN.md §7 for the guarantees and their limits.
//
// Checkpoint/restore (checkpoint.go) adds crash-recovery on top: processes
// implementing Checkpointer are periodically snapshotted together with
// their randomness stream, a crash wipes the live state, and recovery
// replays the logged inputs since the last snapshot — reproducing the
// pre-crash state exactly instead of rejoining stale. Monitor (monitor.go)
// closes the loop for the residual failure modes with an online
// independence check and deterministic local repair.
package reliable

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"distmwis/internal/congest"
	"distmwis/internal/wire"
)

// Defaults for Options fields left zero.
const (
	// DefaultRoundBound bounds logical round numbers, sizing the sequence
	// and ACK fields. It matches the simulator's default round limit.
	DefaultRoundBound = 1 << 20
	// DefaultRetransmitAfter is the initial retransmission timeout in
	// physical rounds. The fault-free ACK round trip is 2 rounds, so 3 is
	// the smallest value that never retransmits spuriously.
	DefaultRetransmitAfter = 3
	// DefaultBackoffCap caps the doubling retransmission timeout.
	DefaultBackoffCap = 8
	// DefaultPokeEvery is how many rounds of silence on a needed port the
	// node tolerates before it starts sending one keep-alive frame per
	// round until it hears back, so that a long stall chain (a neighbour
	// blocked on its own neighbour) is not mistaken for a crash.
	DefaultPokeEvery = 8
	// DefaultDeclareDeadAfter is how many physical rounds of silence on a
	// needed port the node waits for before declaring the far end dead.
	// A waiting node attempts a poke round trip every round once silence
	// passes PokeEvery, so a false positive needs ~56 consecutive failed
	// exchanges — probability (1-(1-loss)²)^56, negligible for any
	// Loss+Corrupt bounded away from 1.
	DefaultDeclareDeadAfter = 64
	// DefaultLinger is how many quiet physical rounds a finished node waits
	// before halting, so its last ACKs and fin can still serve neighbours
	// whose own copies were lost. Any arrival restarts the linger window.
	// A neighbour still missing this node's fin pokes once per round, so
	// leaving it orphaned requires loss^Linger consecutive losses; if that
	// ever happens the orphan's failure detector is the designed escape
	// hatch (its own outputs are already final, so exactness is unaffected).
	DefaultLinger = 24
)

// Options configures a Transport.
type Options struct {
	// RoundBound is an upper bound on logical round numbers (0 selects
	// DefaultRoundBound). It sizes the sequence/ACK wire fields; an inner
	// process that reaches it stops advancing, leaving the run to end via
	// the simulator's round limit. Callers with a hard stop should pass it
	// to shrink the per-frame header.
	RoundBound int
	// CheckpointEvery enables checkpoint/restore crash recovery: every k-th
	// logical round the inner process is snapshotted via Checkpointer (0
	// disables; processes not implementing Checkpointer keep the fault
	// layer's frozen-state recovery semantics). See checkpoint.go.
	CheckpointEvery int
	// RetransmitAfter, BackoffCap, PokeEvery, DeclareDeadAfter and Linger
	// override the corresponding defaults when positive. They are protocol
	// parameters: every node must use the same values.
	RetransmitAfter  int
	BackoffCap       int
	PokeEvery        int
	DeclareDeadAfter int
	Linger           int
}

func (o Options) withDefaults() Options {
	if o.RoundBound <= 0 {
		o.RoundBound = DefaultRoundBound
	}
	if o.RetransmitAfter <= 0 {
		o.RetransmitAfter = DefaultRetransmitAfter
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = DefaultBackoffCap
	}
	if o.PokeEvery <= 0 {
		o.PokeEvery = DefaultPokeEvery
	}
	if o.DeclareDeadAfter <= 0 {
		o.DeclareDeadAfter = DefaultDeclareDeadAfter
	}
	if o.Linger <= 0 {
		o.Linger = DefaultLinger
	}
	return o
}

// Transport implements congest.Reliability: one instance serves every node
// of a run (Wrap is called once per process) and accumulates the run's
// transport counters. Use a fresh Transport per congest.Run, or rely on the
// simulator's base-snapshot so Result still reports per-run deltas.
type Transport struct {
	opts Options
	w    int // sequence/ACK field width in bits

	retransmits    atomic.Int64
	ackFrames      atomic.Int64
	recoveries     atomic.Int64
	replayedRounds atomic.Int64
	deadPorts      atomic.Int64
}

// New builds a transport with the given options (zero fields select the
// package defaults).
func New(opts Options) *Transport {
	o := opts.withDefaults()
	return &Transport{opts: o, w: wire.BitsFor(uint64(o.RoundBound))}
}

// Wrap implements congest.Reliability.
func (t *Transport) Wrap(p congest.Process) congest.Process {
	return &proc{t: t, inner: p}
}

// HeaderBits implements congest.Reliability: the worst-case frame header is
// req(1) + ack(W) + fin(1) + finRound(W) + data(1) + seq(W) + has(1) bits
// with W = BitsFor(RoundBound).
func (t *Transport) HeaderBits() int { return 3*t.w + 4 }

// Counters implements congest.Reliability.
func (t *Transport) Counters() congest.ReliabilityCounters {
	return congest.ReliabilityCounters{
		Retransmits:    t.retransmits.Load(),
		AckFrames:      t.ackFrames.Load(),
		Recoveries:     t.recoveries.Load(),
		ReplayedRounds: t.replayedRounds.Load(),
		DeadPorts:      t.deadPorts.Load(),
	}
}

var _ congest.Reliability = (*Transport)(nil)

// outFrame is one unacknowledged logical-round message on a port.
type outFrame struct {
	seq      int              // logical round the payload belongs to
	m        *congest.Message // nil encodes "no message this round"
	attempts int              // transmissions so far
	nextSend int              // physical round the (re)transmission is due
}

// inSlot buffers a received logical-round payload until the inner process
// consumes it. Presence in the window map is what distinguishes a received
// empty round from a missing one.
type inSlot struct {
	m *congest.Message
}

// portState is the per-edge ARQ state.
type portState struct {
	out       []outFrame     // unacked data frames, ascending seq
	win       map[int]inSlot // received payloads by seq, kept until consumed
	cum       int            // highest contiguous seq received (cumulative ACK)
	finRound  int            // neighbour's final logical round (-1 unknown)
	dead      bool           // failure detector verdict
	lastHeard int            // physical round a frame last arrived
	lastSent  int            // physical round a frame was last sent
	waitSince int            // physical round the port last entered the waiting state
	ackDirty  bool           // owe the neighbour a fresh ACK
}

// proc is one node's transport endpoint wrapped around the inner process.
type proc struct {
	t     *Transport
	inner congest.Process
	info  congest.NodeInfo
	ports []portState

	logical    int  // completed inner rounds
	innerDone  bool // inner returned done
	finalRound int  // logical round the inner finished at
	lastPhys   int  // last physical round this endpoint stepped
	quiesceAt  int  // physical round quiescence began (0 = not quiescent)
	anno       string

	// Checkpoint/restore state (nil cp = checkpointing off for this node).
	cp        Checkpointer
	pcg       *rand.PCG
	snap      any
	snapPCG   []byte
	snapRound int
	log       [][]*congest.Message // inner inputs since the snapshot
}

// Init implements congest.Process. The inner process is told Faulty=false:
// the whole point of the transport is that the inner execution is the
// reliable-network one, defensive wire formats and all their bandwidth
// included would be wasted.
func (p *proc) Init(info congest.NodeInfo) {
	p.info = info
	p.ports = make([]portState, info.Degree)
	for i := range p.ports {
		p.ports[i].finRound = -1
		p.ports[i].win = make(map[int]inSlot, 2)
	}
	inner := info
	inner.Faulty = false
	if p.t.opts.CheckpointEvery > 0 {
		if cp, ok := p.inner.(Checkpointer); ok {
			// Substitute a snapshottable randomness stream, seeded from the
			// node's own stream so the substitution is deterministic and
			// engine-independent. Without checkpointing the inner process
			// keeps the untouched stream and the logical execution is
			// bit-identical to an unwrapped fault-free run.
			p.cp = cp
			p.pcg = rand.NewPCG(info.Rand.Uint64(), info.Rand.Uint64())
			inner.Rand = rand.New(p.pcg)
		}
	}
	p.inner.Init(inner)
	if p.cp != nil {
		p.takeSnapshot()
	}
}

// Round implements congest.Process: one physical round of the transport.
func (p *proc) Round(round int, recv []*congest.Message) ([]*congest.Message, bool) {
	if p.cp != nil && round > p.lastPhys+1 && p.lastPhys > 0 {
		// The simulator skipped us for one or more rounds: a crash-recovery
		// fault. Simulate the full amnesia crash the checkpoint layer is
		// for: wipe the inner state by restoring the last snapshot, then
		// replay the logged inputs. See checkpoint.go.
		p.recoverFromCheckpoint()
	}
	p.lastPhys = round

	heard := false
	for port, m := range recv {
		if m != nil {
			heard = true
			p.ingest(port, m, round)
		}
	}
	if heard {
		p.quiesceAt = 0 // any arrival restarts the linger window
	}

	// Run every logical round whose inputs are in. Catch-up bursts after a
	// stall are at most the receive-window depth; the cap exists for nodes
	// with no pending inputs at all (isolated, or every port dead/finished)
	// whose inner process never halts — they advance at a bounded pace so
	// the simulator's round limit can still catch a diverging protocol.
	advanced := 0
	for p.canAdvance() && advanced < 4 {
		p.advanceInner()
		advanced++
	}

	p.detectFailures(round)

	send := make([]*congest.Message, len(p.ports))
	retransmitted := false
	for port := range p.ports {
		var wasRe bool
		send[port], wasRe = p.buildFrame(port, round)
		retransmitted = retransmitted || wasRe
	}

	switch {
	case advanced > 0:
		p.anno = p.innerPhase()
	case retransmitted:
		p.anno = "arq:retransmit"
	case p.innerDone:
		p.anno = "arq:drain"
	default:
		p.anno = "arq:stall"
	}

	if p.quiesced() {
		if p.quiesceAt == 0 {
			p.quiesceAt = round
		}
		if len(p.ports) == 0 || round-p.quiesceAt >= p.t.opts.Linger {
			return send, true
		}
	} else {
		p.quiesceAt = 0
	}
	return send, false
}

// Output implements congest.Process.
func (p *proc) Output() any { return p.inner.Output() }

// TracePhase implements congest.PhaseLabeler: the inner protocol's own
// stage label while logical rounds advance, and an "arq:..." annotation for
// physical rounds the transport spends on recovery work (retransmissions,
// stalls, drain). The label reflects the sampled node's transport state, so
// unlike the bare simulator's labels it can differ across nodes under
// faults; the simulator only ever samples node 0.
func (p *proc) TracePhase(int) string { return p.anno }

func (p *proc) innerPhase() string {
	if pl, ok := p.inner.(congest.PhaseLabeler); ok {
		return pl.TracePhase(p.logical)
	}
	return ""
}

// ingest decodes one arriving frame. Malformed frames (impossible while the
// link-layer checksum holds) are ignored, which is the same as a loss.
func (p *proc) ingest(port int, m *congest.Message, round int) {
	ps := &p.ports[port]
	r := m.Reader()
	req, err := r.ReadBool()
	if err != nil {
		return
	}
	ack64, err := r.ReadBits(p.t.w)
	if err != nil {
		return
	}
	fin, err := r.ReadBool()
	if err != nil {
		return
	}
	finRound := -1
	if fin {
		fr, err := r.ReadBits(p.t.w)
		if err != nil {
			return
		}
		finRound = int(fr)
	}
	data, err := r.ReadBool()
	if err != nil {
		return
	}
	var seq int
	var payload *congest.Message
	hasData := false
	if data {
		seq64, err := r.ReadBits(p.t.w)
		if err != nil {
			return
		}
		has, err := r.ReadBool()
		if err != nil {
			return
		}
		seq = int(seq64)
		hasData = true
		if has {
			payload = sliceRemaining(r)
		}
	}

	// The frame decoded fully: commit its effects.
	ps.lastHeard = round
	if finRound >= 0 && ps.finRound < 0 {
		ps.finRound = finRound
		// A finished neighbour has read everything it ever will (it consumed
		// our rounds < finRound to get there); nothing pending needs to
		// reach it any more.
		ps.out = nil
	}
	for len(ps.out) > 0 && ps.out[0].seq <= int(ack64) {
		ps.out = ps.out[1:]
	}
	if req {
		ps.ackDirty = true
	}
	if hasData {
		if seq <= ps.cum {
			// Duplicate (fault-layer copy or a retransmission whose ACK was
			// lost): suppressed, but the sender clearly needs the ACK again.
			ps.ackDirty = true
			return
		}
		if _, ok := ps.win[seq]; !ok {
			ps.win[seq] = inSlot{m: payload}
			for {
				if _, ok := ps.win[ps.cum+1]; !ok {
					break
				}
				ps.cum++
			}
		}
		ps.ackDirty = true
	}
}

// canAdvance reports whether every input of the inner process's next
// logical round is available: for each live port either the payload with
// the required sequence number has arrived, or the neighbour is known to
// have finished before producing it (nil), or the port is dead (nil).
func (p *proc) canAdvance() bool {
	if p.innerDone {
		return false
	}
	// At RoundBound the sequence-number space is exhausted: freeze the
	// inner rather than panic, so a diverging execution (e.g. an inner
	// that cannot terminate because every informative neighbour
	// crash-stopped) degrades into a simulator-level truncation instead
	// of killing the host.
	if p.logical >= p.t.opts.RoundBound {
		return false
	}
	for i := range p.ports {
		ps := &p.ports[i]
		if ps.dead {
			continue
		}
		if ps.finRound >= 0 && p.logical > ps.finRound {
			continue
		}
		if ps.cum < p.logical {
			return false
		}
	}
	return true
}

// blockedOn reports whether ps is (one of) the ports canAdvance is waiting
// for.
func (p *proc) blockedOn(ps *portState) bool {
	if p.innerDone || ps.dead {
		return false
	}
	if ps.finRound >= 0 && p.logical > ps.finRound {
		return false
	}
	return ps.cum < p.logical
}

// advanceInner runs one logical round of the inner process and enqueues its
// outgoing messages (explicit nil markers included) as data frames.
func (p *proc) advanceInner() {
	next := p.logical + 1
	recv := make([]*congest.Message, len(p.ports))
	for i := range p.ports {
		ps := &p.ports[i]
		if ps.dead || (ps.finRound >= 0 && p.logical > ps.finRound) {
			continue
		}
		if slot, ok := ps.win[p.logical]; ok {
			recv[i] = slot.m
			delete(ps.win, p.logical)
		}
	}
	send, done := p.inner.Round(next, recv)
	p.logical = next
	if p.cp != nil {
		p.log = append(p.log, recv)
		if p.logical%p.t.opts.CheckpointEvery == 0 {
			p.takeSnapshot()
		}
	}
	for port := range p.ports {
		ps := &p.ports[port]
		if ps.dead || ps.finRound >= 0 {
			// A finished neighbour's process never reads rounds past its
			// final one (the bare simulator delivers them into an inbox no
			// one looks at), and a dead one never reads anything.
			continue
		}
		var m *congest.Message
		if port < len(send) {
			m = send[port]
		}
		if m != nil && p.info.Bandwidth > 0 && m.Bits() > p.info.Bandwidth {
			panic(fmt.Sprintf("reliable: node %d port %d inner message of %d bits exceeds bandwidth %d", p.info.Index, port, m.Bits(), p.info.Bandwidth))
		}
		ps.out = append(ps.out, outFrame{seq: next, m: m, nextSend: 0})
	}
	if done {
		p.innerDone = true
		p.finalRound = next
	}
}

// waitingOn reports whether this node currently needs something from the
// port's far end: unacked data, the input blocking the next inner round, or
// the neighbour's fin.
func (p *proc) waitingOn(ps *portState) bool {
	return len(ps.out) > 0 || p.blockedOn(ps) || (p.innerDone && ps.finRound < 0)
}

// silence is the number of physical rounds the port has been quiet while
// this node was waiting on it. Time the port spent idle (neither side owed
// the other anything — e.g. both endpoints blocked behind slower parts of
// the graph) does not count: legitimately silent rounds before the port
// re-entered the waiting state must not trip the failure detector the
// moment the node advances and starts waiting again.
func (ps *portState) silence(round int) int {
	since := ps.lastHeard
	if ps.waitSince > since {
		since = ps.waitSince
	}
	return round - since
}

// detectFailures declares ports dead after DeclareDeadAfter physical rounds
// of silence while this node actually needs them (owed an ACK, owed data,
// or owed a fin). A dead port's inputs become nil from the next advance on.
func (p *proc) detectFailures(round int) {
	for i := range p.ports {
		ps := &p.ports[i]
		if ps.dead {
			continue
		}
		if !p.waitingOn(ps) {
			ps.waitSince = round
			continue
		}
		if ps.silence(round) > p.t.opts.DeclareDeadAfter {
			ps.dead = true
			ps.out = nil
			p.t.deadPorts.Add(1)
		}
	}
}

// buildFrame assembles the port's outgoing frame for this physical round:
// the due data frame with the lowest sequence number if any, otherwise a
// pure ACK when one is owed, otherwise a keep-alive poke when the node has
// been waiting silently too long, otherwise nothing. Reports whether the
// frame was a retransmission.
func (p *proc) buildFrame(port, round int) (*congest.Message, bool) {
	ps := &p.ports[port]
	if ps.dead {
		return nil, false
	}
	var of *outFrame
	for i := range ps.out {
		if ps.out[i].nextSend <= round {
			of = &ps.out[i]
			break
		}
	}
	// While this node needs anything from the far end — an ACK, data, or
	// its fin — and the port has been silent past the keep-alive threshold,
	// send a poke every round until something arrives. Every arriving frame
	// (poke or data) makes the peer answer, so one surviving round trip
	// resets the silence clock; the failure detector below only fires after
	// ~DeclareDeadAfter consecutive one-per-round exchanges all failed.
	poke := p.waitingOn(ps) && ps.silence(round) >= p.t.opts.PokeEvery
	if of == nil && !ps.ackDirty && !poke {
		return nil, false
	}

	var w wire.Writer
	w.WriteBool(of == nil && poke) // req: explicitly ask for a reply
	w.WriteBits(uint64(ps.cum), p.t.w)
	if p.innerDone {
		w.WriteBool(true)
		w.WriteBits(uint64(p.finalRound), p.t.w)
	} else {
		w.WriteBool(false)
	}
	retransmit := false
	if of != nil {
		w.WriteBool(true)
		w.WriteBits(uint64(of.seq), p.t.w)
		if of.m != nil {
			w.WriteBool(true)
			appendMessage(&w, of.m)
		} else {
			w.WriteBool(false)
		}
		if of.attempts > 0 {
			retransmit = true
			p.t.retransmits.Add(1)
		}
		of.attempts++
		backoff := p.t.opts.RetransmitAfter << uint(of.attempts-1)
		if backoff > p.t.opts.BackoffCap {
			backoff = p.t.opts.BackoffCap
		}
		of.nextSend = round + backoff
	} else {
		w.WriteBool(false)
		p.t.ackFrames.Add(1)
	}
	ps.ackDirty = false
	ps.lastSent = round
	return congest.NewMessage(&w), retransmit
}

// quiesced reports whether this endpoint has nothing left to do: the inner
// process finished, every live port has acknowledged all our data, and
// every live neighbour's fin is known (so it no longer needs our ACKs to
// make progress — anything late is covered by the linger window).
func (p *proc) quiesced() bool {
	if !p.innerDone {
		return false
	}
	for i := range p.ports {
		ps := &p.ports[i]
		if ps.dead {
			continue
		}
		if len(ps.out) > 0 || ps.finRound < 0 {
			return false
		}
	}
	return true
}

// sliceRemaining copies the reader's unread bits into a fresh message — the
// inner payload carried behind a frame header.
func sliceRemaining(r *wire.Reader) *congest.Message {
	var w wire.Writer
	for {
		rem := r.Remaining()
		if rem == 0 {
			break
		}
		if rem > 64 {
			rem = 64
		}
		v, err := r.ReadBits(rem)
		if err != nil {
			break // unreachable: rem <= Remaining()
		}
		w.WriteBits(v, rem)
	}
	return congest.NewMessage(&w)
}

// appendMessage copies a payload's bits onto the end of a frame.
func appendMessage(w *wire.Writer, m *congest.Message) {
	r := m.Reader()
	for {
		rem := r.Remaining()
		if rem == 0 {
			return
		}
		if rem > 64 {
			rem = 64
		}
		v, err := r.ReadBits(rem)
		if err != nil {
			return // unreachable: rem <= Remaining()
		}
		w.WriteBits(v, rem)
	}
}
