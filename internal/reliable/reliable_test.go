package reliable_test

import (
	"reflect"
	"testing"

	"distmwis/internal/congest"
	"distmwis/internal/fault"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/mis"
	"distmwis/internal/reliable"
	"distmwis/internal/trace"
)

func testGraph(seed uint64) *graph.Graph {
	return gen.Weighted(gen.GNP(100, 0.05, seed), gen.PolyWeights(1), seed+1)
}

// TestTransparentNoFaults: with no fault injector the transport is purely
// pass-through for the logical execution — outputs are byte-identical to an
// unwrapped run, nothing is ever retransmitted, and the only cost is extra
// physical rounds and header bits.
func TestTransparentNoFaults(t *testing.T) {
	g := testGraph(7)
	for _, alg := range []mis.Algorithm{mis.Luby{}, mis.Rank{}} {
		plain, err := congest.Run(g, alg.NewProcess, congest.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		rel, err := congest.Run(g, alg.NewProcess, congest.WithSeed(5),
			congest.WithReliable(reliable.New(reliable.Options{})))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Outputs, rel.Outputs) {
			t.Errorf("%s: reliable transport changed a fault-free execution", alg.Name())
		}
		if rel.Retransmits != 0 || rel.Recoveries != 0 || rel.DeadPorts != 0 {
			t.Errorf("%s: fault-free run reported recovery work: %+v", alg.Name(), rel)
		}
		if rel.Rounds < plain.Rounds {
			t.Errorf("%s: reliable run finished in %d rounds, plain needed %d", alg.Name(), rel.Rounds, plain.Rounds)
		}
	}
}

// TestExactRecoveryUnderFaults is the tentpole guarantee: under loss, dup
// and corrupt schedules the wrapped protocol produces exactly the outputs
// of the fault-free run — not a degraded approximation of them — because
// every logical round's messages are delivered exactly once.
func TestExactRecoveryUnderFaults(t *testing.T) {
	g := testGraph(11)
	scheds := []fault.Schedule{
		{Seed: 1, Loss: 0.2, Corrupt: 0.1},
		{Seed: 2, Loss: 0.3, Dup: 0.15, Corrupt: 0.15},
		{Seed: 3, Loss: 0.5},
		{Seed: 4, Dup: 0.5},
	}
	for _, alg := range []mis.Algorithm{mis.Luby{}, mis.Rank{}} {
		plain, err := congest.Run(g, alg.NewProcess, congest.WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		for i, sched := range scheds {
			inj := fault.NewInjector(sched)
			rel, err := congest.Run(g, alg.NewProcess, congest.WithSeed(9),
				congest.WithFaults(inj),
				congest.WithReliable(reliable.New(reliable.Options{})))
			if err != nil {
				t.Fatalf("%s schedule %d: %v", alg.Name(), i, err)
			}
			if rel.Truncated {
				t.Fatalf("%s schedule %d: truncated", alg.Name(), i)
			}
			if !reflect.DeepEqual(plain.Outputs, rel.Outputs) {
				t.Errorf("%s schedule %d: outputs differ from the fault-free run", alg.Name(), i)
			}
			if sched.Loss > 0 && rel.Retransmits == 0 {
				t.Errorf("%s schedule %d: loss %.2f but no retransmissions", alg.Name(), i, sched.Loss)
			}
			if rel.DeadPorts != 0 {
				t.Errorf("%s schedule %d: failure detector false positive (%d dead ports)", alg.Name(), i, rel.DeadPorts)
			}
		}
	}
}

// TestCrashRecoveryWithoutCheckpoint: crash-recovery downtime (state
// frozen, messages missed) is fully masked by retransmission alone — the
// recovering node resumes exactly where it stopped and the final outputs
// still match the fault-free run.
func TestCrashRecoveryWithoutCheckpoint(t *testing.T) {
	g := testGraph(13)
	plain, err := congest.Run(g, mis.Luby{}.NewProcess, congest.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(fault.Schedule{Seed: 8, Loss: 0.1, CrashFrac: 0.2, CrashAt: 3, CrashBack: 9})
	rel, err := congest.Run(g, mis.Luby{}.NewProcess, congest.WithSeed(3),
		congest.WithFaults(inj),
		congest.WithReliable(reliable.New(reliable.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Outputs, rel.Outputs) {
		t.Error("crash-recovery run differs from the fault-free run")
	}
	if rel.Recoveries != 0 {
		t.Errorf("checkpointing off but %d recoveries reported", rel.Recoveries)
	}
}

// TestCheckpointRestore: with CheckpointEvery set, a crash-recovery fault
// triggers the full amnesia-crash path — snapshot restore plus input-log
// replay — and still reproduces exactly the outputs of the same
// configuration without any faults.
func TestCheckpointRestore(t *testing.T) {
	g := testGraph(17)
	for _, alg := range []mis.Algorithm{mis.Luby{}, mis.Ghaffari{}, mis.Rank{}} {
		opts := reliable.Options{CheckpointEvery: 4}
		base, err := congest.Run(g, alg.NewProcess, congest.WithSeed(21),
			congest.WithReliable(reliable.New(opts)))
		if err != nil {
			t.Fatal(err)
		}
		inj := fault.NewInjector(fault.Schedule{Seed: 6, Loss: 0.15, CrashFrac: 0.25, CrashAt: 4, CrashBack: 11})
		rel, err := congest.Run(g, alg.NewProcess, congest.WithSeed(21),
			congest.WithFaults(inj),
			congest.WithReliable(reliable.New(opts)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Outputs, rel.Outputs) {
			t.Errorf("%s: checkpoint/restore recovery changed the outputs", alg.Name())
		}
		if rel.Recoveries == 0 {
			t.Errorf("%s: crash-recovery schedule but no checkpoint recoveries", alg.Name())
		}
		set := congest.BoolOutputs(rel)
		if rep := fault.CheckIndependence(g, set); !rep.Independent {
			t.Errorf("%s: %v", alg.Name(), rep.Err())
		}
	}
}

// TestEngineAgreement: the transport's buffering and counters are
// deterministic and engine-independent, like everything else in the
// simulator.
func TestEngineAgreement(t *testing.T) {
	g := testGraph(19)
	sched := fault.Schedule{Seed: 5, Loss: 0.25, Dup: 0.1, Corrupt: 0.1, CrashFrac: 0.1, CrashAt: 3, CrashBack: 8}
	run := func(e congest.Engine) *congest.Result {
		inj := fault.NewInjector(sched)
		res, err := congest.Run(g, mis.Rank{}.NewProcess, congest.WithSeed(31),
			congest.WithFaults(inj), congest.WithEngine(e), congest.WithWorkers(8),
			congest.WithReliable(reliable.New(reliable.Options{CheckpointEvery: 5})))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(congest.EngineSequential)
	b := run(congest.EnginePool)
	c := run(congest.EngineActors)
	for name, o := range map[string]*congest.Result{"pool": b, "actors": c} {
		if !reflect.DeepEqual(a.Outputs, o.Outputs) {
			t.Errorf("%s outputs differ from sequential", name)
		}
		if a.Rounds != o.Rounds || a.Messages != o.Messages || a.Bits != o.Bits ||
			a.Retransmits != o.Retransmits || a.TransportAcks != o.TransportAcks ||
			a.Recoveries != o.Recoveries || a.ReplayedRounds != o.ReplayedRounds ||
			a.DeadPorts != o.DeadPorts {
			t.Errorf("%s counters differ from sequential:\n%+v\n%+v", name, a, o)
		}
	}
}

// TestCrashStopRepair: crash-stop neighbours are eventually declared dead
// so survivors are not blocked forever. Nodes whose every informative
// neighbour crashed can still never decide (Luby joins only on full
// information), so the run ends at the hard stop with those nodes
// undecided; the residual safety violations this can cause in the
// non-defensive inner execution are healed by the monitor.
func TestCrashStopRepair(t *testing.T) {
	g := testGraph(23)
	inj := fault.NewInjector(fault.Schedule{Seed: 9, Loss: 0.2, CrashFrac: 0.25, CrashAt: 2})
	rel, err := congest.Run(g, mis.Luby{}.NewProcess, congest.WithSeed(41),
		congest.WithFaults(inj),
		congest.WithReliable(reliable.New(reliable.Options{})),
		congest.WithHardStop(1500))
	if err != nil {
		t.Fatal(err)
	}
	if rel.DeadPorts == 0 {
		t.Error("crash-stop schedule but no ports declared dead")
	}
	set := congest.BoolOutputs(rel)
	reliable.Repair(g, set)
	if rep := fault.CheckIndependence(g, set); !rep.Independent {
		t.Errorf("after repair: %v", rep.Err())
	}
	if again := reliable.Repair(g, set); again.Conflicts != 0 {
		t.Errorf("repair not idempotent: %d conflicts on second pass", again.Conflicts)
	}
}

// TestRepairRule pins the deterministic local repair rule: lower weight
// withdraws, ties withdraw the higher index.
func TestRepairRule(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.SetWeights([]int64{5, 9, 5})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	set := []bool{true, true, true}
	rep := reliable.Repair(g, set)
	if !reflect.DeepEqual(set, []bool{false, true, false}) {
		t.Errorf("repair kept %v, want heaviest node only", set)
	}
	if rep.Conflicts != 2 || rep.Withdrawn != 2 || rep.WithdrawnWeight != 10 {
		t.Errorf("report %+v, want 2 conflicts, 2 withdrawn, weight 10", rep)
	}

	b = graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.SetWeights([]int64{7, 7})
	g, err = b.Build()
	if err != nil {
		t.Fatal(err)
	}
	set = []bool{true, true}
	reliable.Repair(g, set)
	if !set[0] || set[1] {
		t.Errorf("tie-break kept %v, want the lower index", set)
	}
}

// TestIsolatedNodes: degree-0 nodes have no transport work at all and halt
// with their inner process.
func TestIsolatedNodes(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1) // nodes 2..5 isolated
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := congest.Run(g, mis.Luby{}.NewProcess, congest.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(fault.Schedule{Seed: 3, Loss: 0.3})
	rel, err := congest.Run(g, mis.Luby{}.NewProcess, congest.WithSeed(2),
		congest.WithFaults(inj),
		congest.WithReliable(reliable.New(reliable.Options{})))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Outputs, rel.Outputs) {
		t.Error("outputs differ on a graph with isolated nodes")
	}
}

// TestTraceReconciliation (satellite): with both a tracer and the reliable
// layer installed, the per-round records reconcile exactly with the
// injector's own totals and with the transport counters in Result.
func TestTraceReconciliation(t *testing.T) {
	g := testGraph(29)
	ring := trace.NewRing(0)
	tot := &trace.Totals{}
	inj := fault.NewInjector(fault.Schedule{Seed: 12, Loss: 0.25, Dup: 0.1, Corrupt: 0.1})
	res, err := congest.Run(g, mis.Rank{}.NewProcess, congest.WithSeed(14),
		congest.WithFaults(inj),
		congest.WithReliable(reliable.New(reliable.Options{})),
		congest.WithTracer(trace.Tee{ring, tot}))
	if err != nil {
		t.Fatal(err)
	}
	var lost, corrupted, duplicated, retransmits, messages, bits int64
	for _, r := range ring.Rounds() {
		lost += r.FaultLost
		corrupted += r.FaultCorrupted
		duplicated += r.FaultDuplicated
		retransmits += r.Retransmits
		messages += r.Messages
		bits += r.Bits
	}
	if lost != res.FaultLost || corrupted != res.FaultCorrupted || duplicated != res.FaultDuplicated {
		t.Errorf("trace fault sums (%d,%d,%d) != result (%d,%d,%d)",
			lost, corrupted, duplicated, res.FaultLost, res.FaultCorrupted, res.FaultDuplicated)
	}
	if retransmits != res.Retransmits || retransmits != tot.Retransmits {
		t.Errorf("trace retransmit sum %d != result %d / totals %d", retransmits, res.Retransmits, tot.Retransmits)
	}
	if messages != res.Messages || bits != res.Bits {
		t.Errorf("trace traffic sums (%d,%d) != result (%d,%d)", messages, bits, res.Messages, res.Bits)
	}
	if res.Retransmits == 0 {
		t.Error("lossy schedule but no retransmissions recorded")
	}
	// Without crashes every drop is the adversary's: the injector's totals
	// match the simulator's exactly. (Duplicates scheduled into the very
	// last round are never flushed, so Result can lag Stats there.)
	st := inj.Stats()
	if res.FaultLost != st.Lost || res.FaultCorrupted != st.Corrupted {
		t.Errorf("result (%d lost, %d corrupted) != injector stats (%d, %d)",
			res.FaultLost, res.FaultCorrupted, st.Lost, st.Corrupted)
	}
	if res.FaultDuplicated > st.Duplicated {
		t.Errorf("result duplicated %d exceeds injector stats %d", res.FaultDuplicated, st.Duplicated)
	}
	// Retransmission rounds are annotated in the phase labels.
	labels := map[string]bool{}
	for _, r := range ring.Rounds() {
		labels[r.Phase] = true
	}
	if !labels["arq:retransmit"] && !labels["arq:stall"] && !labels["arq:drain"] {
		t.Errorf("no transport annotations in phase labels: %v", labels)
	}
}

// TestHeaderHeadroom: frames may exceed B by at most HeaderBits, and the
// widened bound is what the simulator enforces (MaxMessageBits proves the
// headroom is actually used by full-payload frames).
func TestHeaderHeadroom(t *testing.T) {
	g := testGraph(31)
	tr := reliable.New(reliable.Options{})
	res, err := congest.Run(g, mis.Rank{}.NewProcess, congest.WithSeed(4),
		congest.WithReliable(tr))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMessageBits > res.Bandwidth+tr.HeaderBits() {
		t.Errorf("frame of %d bits exceeds B=%d plus header %d", res.MaxMessageBits, res.Bandwidth, tr.HeaderBits())
	}
}

func benchRun(b *testing.B, opts ...congest.Option) {
	g := testGraph(37)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := congest.Run(g, mis.Luby{}.NewProcess, append([]congest.Option{congest.WithSeed(6)}, opts...)...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlain vs BenchmarkReliableOff pins the zero-cost-when-off
// guarantee: WithReliable(nil) must be indistinguishable from no option.
func BenchmarkPlain(b *testing.B)       { benchRun(b) }
func BenchmarkReliableOff(b *testing.B) { benchRun(b, congest.WithReliable(nil)) }
func BenchmarkReliableOn(b *testing.B) {
	benchRun(b, congest.WithReliable(reliable.New(reliable.Options{})))
}
