package protocol

import (
	"fmt"
	"sort"
	"sync"

	"distmwis/internal/congest"
	"distmwis/internal/graph"
	"distmwis/internal/reliable"
)

// Kind partitions the registry by algorithm role.
type Kind int

const (
	// KindSolver is a full MaxIS approximation pipeline, resolvable via
	// maxis.Solve and the serving API.
	KindSolver Kind = iota + 1
	// KindMIS is an MIS black box (the paper's MIS(n,Δ)), pluggable into
	// any solver via Config.MIS.
	KindMIS
	// KindColoring is a colouring protocol (Section 8 machinery).
	KindColoring
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindSolver:
		return "solver"
	case KindMIS:
		return "mis"
	case KindColoring:
		return "coloring"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Params are the per-request algorithm parameters. Solvers validate and
// default them through Normalize; parameters an algorithm does not consume
// pass through untouched.
type Params struct {
	// Eps is the approximation parameter ε of the boosted pipelines
	// (theorem1/2/3/5); ignored by the rest.
	Eps float64
	// Alpha is the arboricity bound of theorem3 (0 selects the
	// degeneracy-based estimator).
	Alpha int
}

// ParamError reports a parameter rejected by a solver's Normalize. Param
// names the offending parameter ("eps", "alpha") so flag-based frontends
// can map it back to their flag spelling.
type ParamError struct {
	// Param is the parameter name as spelled in Params (lower case).
	Param string
	// Detail completes the sentence "<param> <detail>".
	Detail string
}

func (e *ParamError) Error() string { return e.Param + " " + e.Detail }

// Algorithm is one registered algorithm: the common surface every kind
// shares. Concrete kinds extend it (Solver, Proto).
type Algorithm interface {
	// Name is the registry key, unique within the algorithm's Kind.
	Name() string
	// Kind reports the registry partition the algorithm belongs to.
	Kind() Kind
	// Describe is a one-line human-readable summary used in CLI help text
	// and API error messages.
	Describe() string
}

// Solver is a registered MaxIS approximation pipeline.
type Solver interface {
	Algorithm
	// Normalize validates p and fills algorithm-specific defaults. It must
	// be side-effect free; implementations return *ParamError for
	// parameter-shaped failures.
	Normalize(p Params) (Params, error)
	// Run executes the pipeline. Implementations inherit every
	// cross-cutting seam (faults, tracing, reliable transport,
	// checkpointing, engine selection) from cfg via Config.Opts.
	Run(g *graph.Graph, p Params, cfg Config) (*Result, error)
	// Guarantee renders the human-readable approximation guarantee for the
	// given instance; res is the completed run (some guarantees report
	// run-dependent bounds). May return "" when no closed form applies.
	Guarantee(g *graph.Graph, p Params, res *Result) string
	// Meta reports the solver's cost/guarantee metadata for the planner
	// layer. Returning the zero Meta opts out of planning (the solver stays
	// addressable by name only).
	Meta() Meta
}

// Proto is a registered single-protocol algorithm — one congest process
// per node — such as an MIS black box or a colouring protocol. The
// optional per-process hooks (reliable.Checkpointer for crash recovery,
// congest.PhaseLabeler for tracing) are discovered from the processes the
// factory builds; see Checkpoints and LabelsPhases.
type Proto interface {
	Algorithm
	// NewProcess creates one node's protocol instance.
	NewProcess() congest.Process
}

// Checkpoints reports whether p's processes implement the reliable
// transport's Checkpointer hook (snapshot/restore crash recovery).
func Checkpoints(p Proto) bool {
	_, ok := p.NewProcess().(reliable.Checkpointer)
	return ok
}

// LabelsPhases reports whether p's processes implement the tracer's
// PhaseLabeler hook (per-round phase attribution).
func LabelsPhases(p Proto) bool {
	_, ok := p.NewProcess().(congest.PhaseLabeler)
	return ok
}

// protoEntry adapts a process factory (plus metadata) to Proto; MIS
// entries additionally carry the black-box implementation.
type protoEntry struct {
	name     string
	kind     Kind
	describe string
	factory  func() congest.Process
	mis      MIS
}

func (e *protoEntry) Name() string                { return e.name }
func (e *protoEntry) Kind() Kind                  { return e.kind }
func (e *protoEntry) Describe() string            { return e.describe }
func (e *protoEntry) NewProcess() congest.Process { return e.factory() }

var (
	mu         sync.RWMutex
	algorithms = map[Kind]map[string]Algorithm{}
	defaultMIS string
)

// Register adds a to the registry. It panics on a nil algorithm, an empty
// name, an unknown kind, or a duplicate (kind, name) pair — registration
// happens in package init functions, where failing loudly at first use is
// the only useful behaviour.
func Register(a Algorithm) {
	if a == nil {
		panic("protocol: Register called with nil algorithm")
	}
	name, kind := a.Name(), a.Kind()
	if name == "" {
		panic("protocol: Register called with empty algorithm name")
	}
	switch kind {
	case KindSolver, KindMIS, KindColoring:
	default:
		panic(fmt.Sprintf("protocol: Register %q: unknown kind %v", name, kind))
	}
	if kind == KindSolver {
		if _, ok := a.(Solver); !ok {
			panic(fmt.Sprintf("protocol: Register %q: KindSolver algorithms must implement Solver", name))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if algorithms[kind] == nil {
		algorithms[kind] = map[string]Algorithm{}
	}
	if _, dup := algorithms[kind][name]; dup {
		panic(fmt.Sprintf("protocol: duplicate registration of %v algorithm %q", kind, name))
	}
	algorithms[kind][name] = a
}

// RegisterMIS registers an MIS black box under its own Name. The first
// registered box becomes the Config.MIS default unless SetDefaultMIS
// overrides it.
func RegisterMIS(m MIS, describe string) {
	Register(&protoEntry{name: m.Name(), kind: KindMIS, describe: describe, factory: m.NewProcess, mis: m})
	mu.Lock()
	if defaultMIS == "" {
		defaultMIS = m.Name()
	}
	mu.Unlock()
}

// SetDefaultMIS names the MIS black box Config.MISAlg falls back to. The
// name must already be registered.
func SetDefaultMIS(name string) {
	mu.Lock()
	defer mu.Unlock()
	if algorithms[KindMIS] == nil || algorithms[KindMIS][name] == nil {
		panic(fmt.Sprintf("protocol: SetDefaultMIS(%q): not registered", name))
	}
	defaultMIS = name
}

// DefaultMIS returns the default MIS black box. It panics if no MIS has
// been registered (link internal/mis, whose init registers the standard
// boxes).
func DefaultMIS() MIS {
	mu.RLock()
	defer mu.RUnlock()
	if defaultMIS == "" {
		panic("protocol: no MIS registered (import distmwis/internal/mis)")
	}
	return algorithms[KindMIS][defaultMIS].(*protoEntry).mis
}

// RegisterProcess registers a single-protocol algorithm (KindColoring or
// KindMIS-shaped entries that are not full MIS boxes) by process factory.
func RegisterProcess(kind Kind, name, describe string, factory func() congest.Process) {
	Register(&protoEntry{name: name, kind: kind, describe: describe, factory: factory})
}

// Lookup finds one registered algorithm.
func Lookup(kind Kind, name string) (Algorithm, bool) {
	mu.RLock()
	defer mu.RUnlock()
	a, ok := algorithms[kind][name]
	return a, ok
}

// Names lists the registered names of one kind, sorted.
func Names(kind Kind) []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(algorithms[kind]))
	for name := range algorithms[kind] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SolverByName resolves a registered MaxIS solver.
func SolverByName(name string) (Solver, error) {
	a, ok := Lookup(KindSolver, name)
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q (known: %v)", name, Names(KindSolver))
	}
	return a.(Solver), nil
}

// Solvers returns every registered MaxIS solver, sorted by name.
func Solvers() []Solver {
	out := make([]Solver, 0)
	for _, name := range Names(KindSolver) {
		a, _ := Lookup(KindSolver, name)
		out = append(out, a.(Solver))
	}
	return out
}

// MISByName resolves a registered MIS black box.
func MISByName(name string) (MIS, error) {
	a, ok := Lookup(KindMIS, name)
	if ok {
		if e, isEntry := a.(*protoEntry); isEntry && e.mis != nil {
			return e.mis, nil
		}
	}
	return nil, fmt.Errorf("unknown MIS algorithm %q (known: %v)", name, Names(KindMIS))
}

// Protos returns every registered process-factory algorithm (MIS boxes and
// colouring protocols), sorted by kind then name. The cross-engine parity
// suite iterates it so newly registered protocols are covered without
// editing any test.
func Protos() []Proto {
	out := make([]Proto, 0)
	for _, kind := range []Kind{KindMIS, KindColoring} {
		for _, name := range Names(kind) {
			a, _ := Lookup(kind, name)
			if p, ok := a.(Proto); ok {
				out = append(out, p)
			}
		}
	}
	return out
}
