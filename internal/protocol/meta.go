package protocol

import (
	"math/bits"

	"distmwis/internal/graph"
)

// Profile summarises one problem instance for planning: every input the
// registered cost/guarantee metadata may depend on. It is derived once per
// request (ProfileOf) and shared across all candidate solvers, so the
// planner's comparison is apples-to-apples by construction.
type Profile struct {
	// N and M are the node and edge counts.
	N int
	// M is the undirected edge count.
	M int
	// MaxDegree is Δ.
	MaxDegree int
	// Degeneracy is the graph's degeneracy d — the standard arboricity
	// proxy (α ≤ d ≤ 2α−1) used by the arboricity-parameterised solvers.
	Degeneracy int
	// LogW is ⌈log₂(W+1)⌉ for the maximum node weight W (0 for empty or
	// zero-weight graphs); the scale-based pipelines pay a factor of it.
	LogW int
	// UnitWeights reports every node weight is exactly 1, the precondition
	// of the unweighted-only solvers (theorem5, ranking).
	UnitWeights bool
}

// ProfileOf derives the planning profile of g. Cost is one O(n+m) pass
// (dominated by the degeneracy ordering), comparable to the canonical
// hashing every served request already performs.
func ProfileOf(g *graph.Graph) Profile {
	d, _ := g.Degeneracy()
	maxW := g.MaxWeight()
	if maxW < 0 {
		maxW = 0
	}
	return Profile{
		N:           g.N(),
		M:           g.M(),
		MaxDegree:   g.MaxDegree(),
		Degeneracy:  d,
		LogW:        bits.Len64(uint64(maxW)),
		UnitWeights: g.IsUnitWeight(),
	}
}

// Meta is a solver's cost/guarantee metadata — the contract the planner
// layer (internal/plan) selects algorithms by. Every registered Solver
// carries one; the zero value declares "no prediction available" and makes
// the solver invisible to the planner (still directly addressable by name).
type Meta struct {
	// Ratio names the guarantee family for humans ("Δ", "(1+ε)Δ", …); the
	// per-run rendering stays with Solver.Guarantee.
	Ratio string
	// Score returns the planner's comparable quality score for an
	// instance: approximately the approximation factor, inflated where the
	// guarantee is weaker than w.h.p. (expectation-only, unspecified
	// constants). Lower is better. E21 backs the inflation constants with
	// measured retention numbers.
	Score func(p Profile, params Params) float64
	// Rounds predicts the theory-faithful round budget of one run with MIS
	// black box m — the same a-priori bounds the Budget* helpers compute
	// for the experiment tables, evaluated on the profile. MIS-free
	// algorithms ignore m. Must be positive for planner-visible solvers.
	Rounds func(p Profile, params Params, m MIS) int
	// Deterministic reports the pipeline draws no randomness of its own:
	// paired with a deterministic MIS box (greedy-id) the output is a
	// function of the graph alone, which makes cache keys seed-free and
	// degraded answers reproducible.
	Deterministic bool
	// ExpectationOnly marks guarantees that hold in expectation but not
	// w.h.p. (the paper's Section 1 variance caveat).
	ExpectationOnly bool
	// UnitWeightsOnly restricts the solver to unweighted graphs; the
	// planner skips it when the profile is weighted.
	UnitWeightsOnly bool
	// Local marks LOCAL-model pipelines whose messages exceed CONGEST
	// bandwidth; the planner only considers them when asked to.
	Local bool
}

// Work converts the predicted round count into predicted work units — the
// per-round cost of simulating (or really running) the instance, n message
// handlers plus 2m directed deliveries. The planner's deadline budgets are
// denominated in these units.
func (m Meta) Work(p Profile, params Params, mis MIS) int64 {
	if m.Rounds == nil {
		return 0
	}
	return int64(m.Rounds(p, params, mis)) * int64(p.N+2*p.M+1)
}
