// Package protocol is the runtime contract shared by every distributed
// algorithm in the repository and the registry that binds the stack
// together.
//
// It owns the three types that cross layer boundaries:
//
//   - Config: the execution knobs common to all algorithms (seed, model,
//     bandwidth, faults, reliable transport, checkpointing, repair,
//     tracing, engine selection). Config.Opts compiles a Config into
//     congest options exactly once, so every cross-cutting seam — fault
//     injection, tracing, reliable delivery, checkpoint cadence — is wired
//     in one place instead of per algorithm or per engine.
//   - Params: the per-request algorithm parameters (ε, α) with
//     per-algorithm normalisation via Solver.Normalize.
//   - Result: the normalised outcome (set, weight, aggregated metrics,
//     algorithm-specific extras).
//
// The registry (registry.go) maps names to implementations in three kinds:
// MaxIS solvers (registered by internal/maxis), MIS black boxes
// (internal/mis) and colouring protocols (internal/coloring). Downstream
// consumers — maxis.Solve, the cmd/maxis flag surface, the experiment
// harness and the maxisd JSON API — all derive their algorithm vocabulary
// from the registry, so registering an algorithm once makes it available
// everywhere, with checkpointing, tracing and reliable delivery inherited
// from the shared Config plumbing.
package protocol

import (
	"distmwis/internal/congest"
	"distmwis/internal/dist"
	"distmwis/internal/fault"
	"distmwis/internal/graph"
	"distmwis/internal/reliable"
	"distmwis/internal/trace"
)

// Result is the outcome of one MaxIS approximation run.
type Result struct {
	// Set is the returned independent set, indexed by node.
	Set []bool
	// Weight is the set's total weight under the input graph's weights.
	Weight int64
	// Metrics aggregates rounds/messages/bits over all protocol phases.
	Metrics dist.Accumulator
	// Extra carries algorithm-specific observables (e.g. the sparsifier's
	// max degree, the local-ratio stack value) for the experiment harness.
	Extra map[string]float64
}

// MIS is a distributed MIS black box (the MIS(n,Δ) of the paper). It is
// structurally identical to the implementations in internal/mis; the
// interface lives here so Config can carry one without this package
// importing its own registrants.
type MIS interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// NewProcess creates one node's protocol instance. The process's
	// Output() must be a bool: membership in the computed MIS.
	NewProcess() congest.Process
	// RoundBudget returns the declared with-high-probability round budget
	// MIS(n, Δ) for graphs with ≤ nUpper nodes and maximum degree ≤ maxDeg.
	RoundBudget(nUpper, maxDeg int) int
}

// Config carries the knobs shared by all algorithms. The zero value is
// usable: it selects the registered default MIS, seed 1 and CONGEST
// defaults.
type Config struct {
	// MIS is the black-box MIS algorithm (the MIS(n,Δ) of Theorems 1/8).
	// Defaults to the registry's default (Luby's algorithm).
	MIS MIS
	// Seed is the root randomness seed; every protocol phase derives an
	// independent stream from it.
	Seed uint64
	// BandwidthFactor is c in the CONGEST bound B = c·⌈log₂ n⌉ (default 8).
	BandwidthFactor int
	// NUpper is the polynomial upper bound on n that nodes know; defaults
	// to the input graph's n. Subgraph phases keep the ORIGINAL bound, per
	// the padding argument of Lemma 2.
	NUpper int
	// Lambda is the sparsification oversampling constant λ of Section 4.2
	// (default 2.0; the paper's proof uses a large constant, experiments
	// show small λ already exhibits the Lemma 3/5 behaviour).
	Lambda float64
	// Local switches to the LOCAL model (no bandwidth bound).
	Local bool
	// Workers sets simulator parallelism (default GOMAXPROCS).
	Workers int
	// Engine selects the simulator execution engine for every protocol
	// phase (default congest.EngineAuto). All engines produce bit-identical
	// executions; the knob exists for measurement and for the registry's
	// cross-engine parity suite.
	Engine congest.Engine
	// MaxWeight, when positive, is the nominal weight bound W handed to
	// every protocol phase (congest.WithMaxWeight). Experiments that sweep
	// W set it so wire fields are sized by the swept bound rather than by
	// a graph scan's exact maximum — global knowledge the paper's
	// Section 3 assumptions do not grant.
	MaxWeight int64
	// Faults, when enabled, installs a fault.Injector on every protocol
	// phase (each phase reseeded deterministically from the phase seed) and
	// caps every phase at Faults.HardStop rounds, because faults can block
	// protocols from terminating on their own. Outputs remain independent
	// sets — that invariant survives any schedule — but weight and
	// maximality guarantees degrade with the fault rate.
	Faults fault.Schedule
	// FaultStats, if non-nil, accumulates the injectors' counters across
	// all phases of the run.
	FaultStats *fault.Stats
	// Reliable installs the ARQ transport of internal/reliable on every
	// protocol phase. Under any message-fault schedule with Loss, Dup and
	// Corrupt below 1 the logical execution is then bit-identical to the
	// fault-free run (at the cost of extra physical rounds and header
	// bits); combined with CheckpointEvery it also recovers
	// crash-recovery faults exactly.
	Reliable bool
	// CheckpointEvery, when positive with Reliable, snapshots each
	// process every that-many logical rounds so a crashed-and-recovered
	// node resynchronises by replay instead of staying frozen.
	CheckpointEvery int
	// Repair runs the self-healing monitor (reliable.Repair) on the final
	// set before the independence check: under crash-stop schedules even
	// the reliable transport cannot extract information from a dead
	// neighbour, and passive (non-reliable) fault runs can leave
	// conflicting joins. The monitor deterministically withdraws the
	// lower-weight endpoint of every conflicting edge. Repaired runs
	// report repair_conflicts/repair_withdrawn_weight in Result.Extra.
	Repair bool
	// Tracer, if non-nil, receives per-round records from every protocol
	// phase of the run (see internal/trace). Algorithms label their phases
	// at natural stage boundaries ("goodnodes/mis", "push/...", "scale"),
	// so a Timeline built from the trace attributes rounds and bits to
	// pipeline stages.
	Tracer trace.Tracer
	// TraceLabel prefixes every phase label this config emits; algorithms
	// descend from it via Config.Phase. Ignored without a Tracer.
	TraceLabel string
}

// MISAlg resolves the configured MIS black box, falling back to the
// registry's default (Luby's algorithm, registered by internal/mis).
func (c Config) MISAlg() MIS {
	if c.MIS == nil {
		return DefaultMIS()
	}
	return c.MIS
}

// LambdaOrDefault returns the sparsification constant λ, defaulting to 2.
func (c Config) LambdaOrDefault() float64 {
	if c.Lambda <= 0 {
		return 2.0
	}
	return c.Lambda
}

// Normalized fills defaults that depend on the input graph.
func (c Config) Normalized(g *graph.Graph) Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NUpper < g.N() {
		c.NUpper = g.N()
	}
	return c
}

// SeedSeq derives independent per-phase seeds from the root seed.
type SeedSeq struct {
	base uint64
	ctr  uint64
}

// NewSeedSeq starts a phase-seed sequence rooted at base.
func NewSeedSeq(base uint64) *SeedSeq { return &SeedSeq{base: base} }

// Next returns the next phase seed.
func (s *SeedSeq) Next() uint64 {
	s.ctr++
	return splitmix64(s.base + s.ctr*0x9e3779b97f4a7c15)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Phase returns a copy of c whose trace label descends into label;
// algorithms call it at stage boundaries so trace records attribute rounds
// to pipeline stages. Without a tracer it is the identity.
func (c Config) Phase(label string) Config {
	if c.Tracer == nil {
		return c
	}
	if c.TraceLabel != "" {
		label = c.TraceLabel + "/" + label
	}
	c.TraceLabel = label
	return c
}

// Opts assembles the congest options for one protocol phase. This is the
// single place where the cross-cutting seams — fault injection, tracing,
// reliable delivery, checkpoint cadence, engine selection — are compiled
// into simulator options; algorithms and engines never wire them by hand.
func (c Config) Opts(phaseSeed uint64) []congest.Option {
	out := []congest.Option{
		congest.WithSeed(phaseSeed),
		congest.WithNUpper(c.NUpper),
	}
	if c.Local {
		out = append(out, congest.WithModel(congest.ModelLocal))
	}
	if c.BandwidthFactor > 0 {
		out = append(out, congest.WithBandwidthFactor(c.BandwidthFactor))
	}
	if c.Workers > 0 {
		out = append(out, congest.WithWorkers(c.Workers))
	}
	if c.Engine != congest.EngineAuto {
		out = append(out, congest.WithEngine(c.Engine))
	}
	if c.MaxWeight > 0 {
		out = append(out, congest.WithMaxWeight(c.MaxWeight))
	}
	if c.Tracer != nil {
		out = append(out, congest.WithTracer(c.Tracer), congest.WithTraceLabel(c.TraceLabel))
	}
	if c.Faults.Enabled() {
		inj := fault.NewInjector(c.Faults.WithSeed(phaseSeed))
		if c.FaultStats != nil {
			inj.ShareStats(c.FaultStats)
		}
		out = append(out, congest.WithFaults(inj), congest.WithHardStop(c.Faults.HardStop(c.NUpper)))
	}
	if c.Reliable {
		// Retransmission stretches a logical round over several physical
		// rounds, so the phase budget grows accordingly; the round bound
		// sizes the transport's sequence-number fields and caps runaway
		// inner executions under crash-stop.
		hs := c.Faults.HardStop(c.NUpper)
		out = append(out, congest.WithReliable(reliable.New(reliable.Options{
			RoundBound:      16 * hs,
			CheckpointEvery: c.CheckpointEvery,
		})))
		if c.Faults.Enabled() {
			out = append(out, congest.WithHardStop(16*hs))
		}
	}
	return out
}
