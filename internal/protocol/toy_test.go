package protocol_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/protocol"
	"distmwis/internal/server"
)

// toySolver is a deliberately trivial MaxIS "algorithm": greedy by node
// index, computed host-side with no simulator run. It exists to prove the
// registration contract end to end — one Register call, zero edits to
// internal/maxis, cmd/maxis, or internal/server.
type toySolver struct{}

func (toySolver) Name() string        { return "toy-greedy" }
func (toySolver) Kind() protocol.Kind { return protocol.KindSolver }
func (toySolver) Describe() string    { return "host-side greedy by index (test fixture)" }
func (toySolver) Normalize(p protocol.Params) (protocol.Params, error) {
	return p, nil
}
func (toySolver) Guarantee(*graph.Graph, protocol.Params, *protocol.Result) string {
	return "none (test fixture)"
}

// Meta returns the zero value: the toy solver opts out of the planner and
// stays addressable by name only — the minimal registration contract.
func (toySolver) Meta() protocol.Meta { return protocol.Meta{} }

func (toySolver) Run(g *graph.Graph, _ protocol.Params, _ protocol.Config) (*protocol.Result, error) {
	res := &protocol.Result{Set: make([]bool, g.N())}
	for v := 0; v < g.N(); v++ {
		ok := true
		for _, u := range g.Neighbors(v) {
			if int(u) < v && res.Set[u] {
				ok = false
				break
			}
		}
		if ok {
			res.Set[v] = true
			res.Weight += g.Weight(v)
		}
	}
	return res, nil
}

// registerToy is Once-guarded so the test survives -count=N reruns within
// one binary (Register panics on duplicates by design).
var registerToy sync.Once

// TestToyAlgorithmRegistration is the acceptance test for the registry
// contract: a solver registered in this test binary is resolvable through
// maxis.Solve, listed by maxis.AlgorithmNames, and accepted by the maxisd
// JSON API — none of which have a line of code naming it.
//
// It deliberately runs in its own test binary location (package
// protocol_test) rather than next to the maxis/server golden tests: those
// iterate AlgorithmNames and would see the fixture.
func TestToyAlgorithmRegistration(t *testing.T) {
	registerToy.Do(func() { protocol.Register(toySolver{}) })

	if names := maxis.AlgorithmNames(); !slices.Contains(names, "toy-greedy") {
		t.Fatalf("AlgorithmNames() = %v, missing toy-greedy", names)
	}

	g := gen.Weighted(gen.GNP(32, 0.1, 3), gen.PolyWeights(2), 3)
	res, err := maxis.Solve("toy-greedy", g, 0, 0, maxis.Config{Seed: 1})
	if err != nil {
		t.Fatalf("maxis.Solve: %v", err)
	}
	if res.Weight <= 0 || len(res.Set) != g.N() {
		t.Fatalf("toy solver produced weight %d, set len %d", res.Weight, len(res.Set))
	}

	ts := httptest.NewServer(server.New(server.Options{Workers: 1}).Handler())
	defer ts.Close()
	body, err := json.Marshal(server.SolveRequest{
		Gen: &server.GenSpec{Kind: "gnp", N: 32, P: 0.1, Weights: "poly2", Seed: 3},
		Alg: "toy-greedy", Seed: 1, NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp server.SolveResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("server rejected registered algorithm: status %d, error %q", httpResp.StatusCode, resp.Error)
	}
	if resp.Status != "done" || resp.Weight != res.Weight {
		t.Fatalf("server response %+v does not match direct Solve weight %d", resp, res.Weight)
	}
}
