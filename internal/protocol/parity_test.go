// Cross-engine parity suite, generated from the protocol registry: every
// registered algorithm runs under all three execution engines (plus the
// auto policy) and must produce a bit-identical Result. The table is built
// from protocol.Solvers()/protocol.Protos() at run time, so registering a
// new algorithm automatically extends the suite — no hand-listed
// algorithm × engine matrix to keep in sync.
package protocol_test

import (
	"reflect"
	"slices"
	"testing"

	"distmwis/internal/congest"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/protocol"

	// Registry side effects: these imports populate the solver, MIS and
	// coloring tables the suite iterates over.
	_ "distmwis/internal/coloring"
	_ "distmwis/internal/mis"
)

// engineCases is every non-reference execution mode, each checked against
// the sequential engine. The auto row preserves the coverage of the old
// hand-written TestEnginesAgree: with several workers the policy resolves
// to the pool on large graphs, and must still match bit-for-bit.
var engineCases = []struct {
	name    string
	engine  congest.Engine
	workers int
}{
	{name: "pool", engine: congest.EnginePool, workers: 8},
	{name: "actors", engine: congest.EngineActors},
	{name: "auto", engine: congest.EngineAuto, workers: 8},
}

// TestSolverEngineParity runs every registered MaxIS solver end to end on
// each engine. The unit-weight graph keeps theorem5 in the table (it
// rejects weighted inputs by contract); eps 0.5 satisfies every boosted
// pipeline's Normalize.
func TestSolverEngineParity(t *testing.T) {
	g := gen.GNP(72, 0.08, 7)
	for _, solver := range protocol.Solvers() {
		solver := solver
		t.Run(solver.Name(), func(t *testing.T) {
			t.Parallel()
			params, err := solver.Normalize(protocol.Params{Eps: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			run := func(engine congest.Engine, workers int) *protocol.Result {
				res, err := solver.Run(g, params, protocol.Config{
					Seed: 11, Engine: engine, Workers: workers,
				})
				if err != nil {
					t.Fatalf("engine %v: %v", engine, err)
				}
				return res
			}
			seq := run(congest.EngineSequential, 0)
			for _, tc := range engineCases {
				got := run(tc.engine, tc.workers)
				if !reflect.DeepEqual(seq, got) {
					t.Errorf("%s: Result diverges from sequential:\nseq: %+v\ngot: %+v", tc.name, seq, got)
				}
			}
		})
	}
}

// TestProtoEngineParity runs every registered single-protocol algorithm
// (MIS black boxes and colouring protocols) under congest.Run on each
// engine, comparing the full simulator Result.
func TestProtoEngineParity(t *testing.T) {
	g := gen.GNP(150, 0.04, 5)
	protos := protocol.Protos()
	if len(protos) == 0 {
		t.Fatal("no process-factory algorithms registered")
	}
	for _, p := range protos {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			t.Parallel()
			run := func(opts ...congest.Option) *congest.Result {
				res, err := congest.Run(g, p.NewProcess, append(opts, congest.WithSeed(9))...)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq := run(congest.WithEngine(congest.EngineSequential))
			for _, tc := range engineCases {
				opts := []congest.Option{congest.WithEngine(tc.engine)}
				if tc.workers > 0 {
					opts = append(opts, congest.WithWorkers(tc.workers))
				}
				got := run(opts...)
				if !reflect.DeepEqual(seq.Outputs, got.Outputs) {
					t.Errorf("%s: outputs diverge from sequential", tc.name)
				}
				if seq.Rounds != got.Rounds || seq.Messages != got.Messages ||
					seq.Bits != got.Bits || seq.MaxMessageBits != got.MaxMessageBits {
					t.Errorf("%s: metrics diverge: seq %+v, got %+v", tc.name, seq, got)
				}
			}
		})
	}
}

// TestRegistryCoverage pins the vocabulary each consumer derives from the
// registry, so a dropped registration fails loudly here rather than as a
// silent shrink of the CLI/server surface. Containment rather than exact
// equality: other tests in this binary may register fixtures of their own.
func TestRegistryCoverage(t *testing.T) {
	requireAll := func(kind protocol.Kind, want []string) {
		t.Helper()
		got := protocol.Names(kind)
		for _, name := range want {
			if !slices.Contains(got, name) {
				t.Errorf("%v names = %v, missing %q", kind, got, name)
			}
		}
	}
	requireAll(protocol.KindSolver, []string{
		"baseline", "goodnodes", "oneround", "ranking", "sparsified",
		"theorem1", "theorem2", "theorem3", "theorem5",
	})
	requireAll(protocol.KindMIS, []string{"ghaffari", "greedy-id", "luby", "rank"})
	requireAll(protocol.KindColoring, []string{"randomgreedy"})
	if got, want := maxis.AlgorithmNames(), protocol.Names(protocol.KindSolver); !reflect.DeepEqual(got, want) {
		t.Errorf("maxis.AlgorithmNames() = %v diverges from registry %v", got, want)
	}
	if name := protocol.DefaultMIS().Name(); name != "luby" {
		t.Errorf("default MIS = %q, want luby", name)
	}
}
