// Package server is the MaxIS-as-a-service layer: a long-running daemon
// that turns the single-shot solvers of internal/maxis into a shared,
// observable, overload-safe HTTP service.
//
// The stack has three tiers, crossed in order by every request:
//
//   - admission control (admission.go): a token bucket rejects traffic
//     beyond the configured rate with 429; beyond a queue-depth threshold
//     accepted requests are downgraded to a host-side greedy
//     Δ+1-approximation (the cheap tier of Bar-Yehuda et al. [8]) and
//     marked degraded.
//   - content-addressed cache (cache.go): the canonical graph hash plus a
//     config fingerprint keys an LRU with a byte budget; single-flight
//     collapses concurrent identical requests into one solve.
//   - batching scheduler (scheduler.go): a bounded two-priority queue
//     feeding a worker pool; per-job deadlines via context; graceful
//     shutdown drains in-flight solves.
//
// Determinism is the service's correctness contract: for a given graph,
// algorithm and seed the returned independent set is bit-identical to what
// cmd/maxis computes with the same flags, whether the result came from a
// cold solve, the cache, or a deduplicated concurrent request.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"distmwis/internal/fault"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/plan"
	"distmwis/internal/protocol"

	// Imported for its registry side effects: the MIS black boxes the API
	// accepts are resolved through the protocol registry.
	_ "distmwis/internal/mis"
)

// GenSpec asks the server to build one of the seeded generator graphs
// instead of shipping an explicit edge list. The same (spec) always builds
// the same graph, so repeated specs are cache hits.
type GenSpec struct {
	// Kind is one of cycle|path|clique|star|grid|torus|gnp|tree|forests|
	// apollonian|caterpillar|coc — the cmd/maxis -graph vocabulary.
	Kind string `json:"kind"`
	// N is the node count (or per-dimension size for grid/torus).
	N int `json:"n"`
	// P is the edge probability for gnp.
	P float64 `json:"p,omitempty"`
	// K is the forest count / caterpillar legs / coc clique size.
	K int `json:"k,omitempty"`
	// Weights is unit|uniform|poly2|poly3|expspread|skewed (default unit).
	Weights string `json:"weights,omitempty"`
	// MaxW bounds uniform/skewed weights (default 1000).
	MaxW int64 `json:"maxw,omitempty"`
	// Seed drives the generator (default 1).
	Seed uint64 `json:"seed,omitempty"`
}

// FaultSpec mirrors the cmd/maxis fault flags; see internal/fault.
type FaultSpec struct {
	Loss    float64 `json:"loss,omitempty"`
	Dup     float64 `json:"dup,omitempty"`
	Corrupt float64 `json:"corrupt,omitempty"`
	Crash   float64 `json:"crash,omitempty"`
	Back    int     `json:"back,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

// SolveRequest is the body of POST /v1/solve. Exactly one of Graph and Gen
// must be set.
type SolveRequest struct {
	// Graph is an inline graph in the cmd/graphgen JSON format
	// (graph.ReadJSON): {"n":..., "ids":[...], "weights":[...], "edges":[[u,v],...]}.
	Graph json.RawMessage `json:"graph,omitempty"`
	// Gen builds a generator graph server-side.
	Gen *GenSpec `json:"gen,omitempty"`
	// GraphRef solves a stored dynamic graph by content hash (any hash the
	// handle has ever had resolves to its current state; see PUT/PATCH
	// /v1/graph). Ref solves run component-wise so mutations re-solve only
	// the affected subgraphs, and are synchronous only.
	GraphRef string `json:"graph_ref,omitempty"`
	// Alg selects the algorithm (maxis.AlgorithmNames; default theorem2).
	Alg string `json:"alg,omitempty"`
	// Eps is the boosting parameter (default 0.5).
	Eps float64 `json:"eps,omitempty"`
	// Alpha is the theorem3 arboricity bound (0 = degeneracy).
	Alpha int `json:"alpha,omitempty"`
	// Seed is the root randomness seed (default 1). Identical requests with
	// identical seeds return bit-identical sets.
	Seed uint64 `json:"seed,omitempty"`
	// MIS selects the MIS black box by protocol-registry name (default
	// luby); "greedyid" is accepted as a legacy alias for greedy-id.
	MIS string `json:"mis,omitempty"`
	// Priority is interactive (default) or batch; interactive jobs are
	// scheduled strictly first.
	Priority string `json:"priority,omitempty"`
	// DeadlineMS bounds queue wait plus solve time; expired jobs fail with
	// status "deadline" (HTTP 504 on the sync path).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Async enqueues and returns a job id immediately; poll GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
	// NoCache bypasses the result cache (still deduplicated in flight).
	NoCache bool `json:"no_cache,omitempty"`
	// Degraded asks for the host-side greedy Δ+1 tier directly: answered
	// synchronously, no scheduler, no cache. It is the circuit-breaker
	// fallback of internal/server/client — when the full tier looks down,
	// the client trades approximation quality for availability explicitly.
	Degraded bool `json:"degraded,omitempty"`

	// Reliable, CheckpointEvery, Repair and Fault pass through to
	// maxis.Config exactly as the cmd/maxis flags of the same names.
	Reliable        bool       `json:"reliable,omitempty"`
	CheckpointEvery int        `json:"checkpoint_every,omitempty"`
	Repair          bool       `json:"repair,omitempty"`
	Fault           *FaultSpec `json:"fault,omitempty"`
}

// SolveResponse is the body returned by POST /v1/solve and GET /v1/jobs/{id}.
type SolveResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"` // queued|running|done|failed|deadline
	// Set lists the members of the independent set as ascending node
	// indices (present when Status == done).
	Set    []int32 `json:"set,omitempty"`
	Size   int     `json:"size,omitempty"`
	Weight int64   `json:"weight,omitempty"`
	// GraphHash is the canonical content hash of the solved graph.
	GraphHash string `json:"graph_hash,omitempty"`
	Rounds    int    `json:"rounds,omitempty"`
	Messages  int64  `json:"messages,omitempty"`
	Bits      int64  `json:"bits,omitempty"`
	// Cached reports the result came from the content-addressed cache;
	// Shared reports it was computed once for several concurrent requests.
	Cached bool `json:"cached,omitempty"`
	Shared bool `json:"shared,omitempty"`
	// Degraded reports the admission layer downgraded this request to the
	// greedy Δ+1-approximation instead of the requested algorithm.
	Degraded bool `json:"degraded,omitempty"`
	// Alg is the algorithm that actually produced the set — the planner's
	// choice when the request said "auto", "greedy-degraded" on the shed
	// tier. Guarantee renders its approximation bound for this instance.
	Alg       string `json:"alg,omitempty"`
	Guarantee string `json:"guarantee,omitempty"`
	// Quality tags graph_ref answers: "degraded" answers are queued for the
	// background repair tier, which republishes them as "improved" then
	// "full"; poll GET /v1/answers/{answer_key} to watch the upgrade.
	Quality   string  `json:"quality,omitempty"`
	AnswerKey string  `json:"answer_key,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Normalize fills defaults and validates the request shape.
func (r *SolveRequest) Normalize() error {
	sources := 0
	if r.Graph != nil {
		sources++
	}
	if r.Gen != nil {
		sources++
	}
	if r.GraphRef != "" {
		sources++
	}
	if sources != 1 {
		return fmt.Errorf("exactly one of graph, gen and graph_ref must be set")
	}
	if r.GraphRef != "" && r.Async {
		// A journaled async job must replay bit-identically, but a graph_ref
		// resolves to whatever the handle holds at replay time — a moving
		// target. Ref solves therefore stay synchronous.
		return fmt.Errorf("graph_ref solves are synchronous; async is not supported")
	}
	if r.Alg == "" {
		r.Alg = "theorem2"
	}
	if r.Eps == 0 {
		r.Eps = 0.5
	}
	if r.Eps < 0 {
		return fmt.Errorf("eps must be positive, got %g", r.Eps)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.MIS == "" {
		r.MIS = "luby"
	}
	if r.MIS == "greedyid" {
		// Legacy spelling from before the protocol registry; the canonical
		// registry name is the algorithm's own Name().
		r.MIS = "greedy-id"
	}
	if _, err := protocol.MISByName(r.MIS); err != nil {
		return err
	}
	switch r.Priority {
	case "":
		r.Priority = "interactive"
	case "interactive", "batch":
	default:
		return fmt.Errorf("priority must be interactive or batch, got %q", r.Priority)
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms must be non-negative")
	}
	if r.CheckpointEvery < 0 {
		return fmt.Errorf("checkpoint_every must be non-negative")
	}
	if r.CheckpointEvery > 0 && !r.Reliable {
		return fmt.Errorf("checkpoint_every requires reliable")
	}
	// Algorithm vocabulary comes from the protocol registry: any solver
	// registered there — including ones from outside internal/maxis — is
	// accepted here without edits. "auto" is the planner's name, not a
	// solver's: prepare() resolves it to a concrete registry entry before
	// any cache key is computed.
	if r.Alg != plan.Auto {
		if _, err := protocol.SolverByName(r.Alg); err != nil {
			return err
		}
	}
	return nil
}

// BuildGraph materialises the request's graph. The generator vocabulary is
// deliberately identical to cmd/maxis so loadgen mixes and CLI runs agree.
func (r *SolveRequest) BuildGraph() (*graph.Graph, error) {
	if r.Graph != nil {
		g, err := graph.ReadJSON(bytes.NewReader(r.Graph))
		if err != nil {
			return nil, err
		}
		return g, nil
	}
	s := *r.Gen
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.N <= 0 {
		return nil, fmt.Errorf("gen.n must be positive, got %d", s.N)
	}
	var g *graph.Graph
	switch s.Kind {
	case "cycle":
		g = gen.Cycle(s.N)
	case "path":
		g = gen.Path(s.N)
	case "clique":
		g = gen.Clique(s.N)
	case "star":
		g = gen.Star(s.N)
	case "grid":
		g = gen.Grid(s.N, s.N)
	case "torus":
		g = gen.Torus(s.N, s.N)
	case "gnp":
		g = gen.GNP(s.N, s.P, s.Seed)
	case "tree":
		g = gen.RandomTree(s.N, s.Seed)
	case "forests":
		g = gen.UnionOfForests(s.N, s.K, s.Seed)
	case "apollonian":
		g = gen.Apollonian(s.N, s.Seed)
	case "caterpillar":
		g = gen.Caterpillar(s.N, s.K)
	case "coc":
		g = gen.CycleOfCliques(s.N, s.K)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", s.Kind)
	}
	maxW := s.MaxW
	if maxW <= 0 {
		maxW = 1000
	}
	switch s.Weights {
	case "", "unit":
	case "uniform":
		g = gen.Weighted(g, gen.UniformWeights(maxW), s.Seed)
	case "poly2":
		g = gen.Weighted(g, gen.PolyWeights(2), s.Seed)
	case "poly3":
		g = gen.Weighted(g, gen.PolyWeights(3), s.Seed)
	case "expspread":
		g = gen.Weighted(g, gen.ExponentialSpreadWeights(24), s.Seed)
	case "skewed":
		g = gen.Weighted(g, gen.SkewedWeights(0.05, maxW), s.Seed)
	default:
		return nil, fmt.Errorf("unknown weight kind %q", s.Weights)
	}
	return g, nil
}

// maxisConfig assembles the maxis.Config for this request, mirroring the
// cmd/maxis flag wiring (including the seed+77 fault-seed derivation) so
// service results are bit-identical to CLI runs.
func (r *SolveRequest) maxisConfig(solveWorkers int) (maxis.Config, error) {
	misAlg, err := protocol.MISByName(r.MIS)
	if err != nil {
		return maxis.Config{}, err
	}
	cfg := maxis.Config{
		Seed:            r.Seed,
		MIS:             misAlg,
		Workers:         solveWorkers,
		Reliable:        r.Reliable,
		CheckpointEvery: r.CheckpointEvery,
		Repair:          r.Repair,
	}
	if f := r.Fault; f != nil {
		sched := fault.Schedule{
			Seed:      f.Seed,
			Loss:      f.Loss,
			Dup:       f.Dup,
			Corrupt:   f.Corrupt,
			CrashFrac: f.Crash,
			CrashAt:   3,
			CrashBack: f.Back,
		}
		if sched.Seed == 0 {
			sched.Seed = r.Seed + 77
		}
		if sched.Enabled() {
			cfg.Faults = sched
		}
	}
	return cfg, nil
}

// Fingerprint is the config part of the cache key: every field that can
// change the output set must appear here. The graph itself is covered by
// its canonical hash.
func (r *SolveRequest) Fingerprint() string {
	var f FaultSpec
	if r.Fault != nil {
		f = *r.Fault
	}
	return fmt.Sprintf("v1|alg=%s|eps=%g|alpha=%d|seed=%d|mis=%s|rel=%t|cp=%d|rep=%t|fault=%g,%g,%g,%g,%d,%d",
		r.Alg, r.Eps, r.Alpha, r.Seed, r.MIS, r.Reliable, r.CheckpointEvery, r.Repair,
		f.Loss, f.Dup, f.Corrupt, f.Crash, f.Back, f.Seed)
}

// specFingerprint identifies a generator-spec request up to everything that
// affects its output: two requests with equal spec fingerprints build
// identical graphs and solve them under identical configs. Only defined for
// requests with a Gen spec.
func (r *SolveRequest) specFingerprint() string {
	g := r.Gen
	return fmt.Sprintf("gen|kind=%s|n=%d|p=%g|k=%d|w=%s|maxw=%d|gseed=%d|%s",
		g.Kind, g.N, g.P, g.K, g.Weights, g.MaxW, g.Seed, r.Fingerprint())
}
