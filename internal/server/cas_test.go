package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"distmwis/internal/graph"
)

// patchGraphCAS issues a conditional PATCH over raw HTTP.
func patchGraphCAS(t *testing.T, ts *httptest.Server, hash, prevHash string, edit graph.Edit) (int, PatchGraphResponse) {
	t.Helper()
	body, err := json.Marshal(struct {
		graph.Edit
		PrevHash string `json:"prev_hash"`
	}{Edit: edit, PrevHash: prevHash})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/graph/"+hash, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp PatchGraphResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return httpResp.StatusCode, resp
}

// TestPatchCAS: a conditional PATCH applies when prev_hash names the
// current state and fails with 409 + the current hash when it does not.
func TestPatchCAS(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); _ = s.Close() }()

	put := putGraph(t, ts, twoIslandGraph(t, 3, 6))

	// CAS against the current hash applies.
	code, ok1 := patchGraphCAS(t, ts, put.Hash, put.Hash, graph.Edit{AddEdges: [][2]int32{{0, 2}}})
	if code != http.StatusOK || ok1.Conflict {
		t.Fatalf("matching CAS: %d %+v", code, ok1)
	}
	if ok1.Hash == put.Hash {
		t.Fatal("hash did not advance")
	}

	// CAS against the now-stale hash conflicts, reporting the current one.
	code, conflict := patchGraphCAS(t, ts, put.Hash, put.Hash, graph.Edit{AddEdges: [][2]int32{{0, 4}}})
	if code != http.StatusConflict || !conflict.Conflict {
		t.Fatalf("stale CAS: %d %+v", code, conflict)
	}
	if conflict.Hash != ok1.Hash {
		t.Fatalf("conflict reports hash %s, current is %s", conflict.Hash, ok1.Hash)
	}
	if conflict.PrevHash != put.Hash {
		t.Fatalf("conflict echoes prev_hash %s, sent %s", conflict.PrevHash, put.Hash)
	}

	// Rebasing onto the reported hash succeeds — the retry loop clients run.
	code, ok2 := patchGraphCAS(t, ts, conflict.Hash, conflict.Hash, graph.Edit{AddEdges: [][2]int32{{0, 4}}})
	if code != http.StatusOK || ok2.Conflict {
		t.Fatalf("rebased CAS: %d %+v", code, ok2)
	}

	// An unconditional PATCH through a stale alias still works (last write
	// wins), so CAS is opt-in per request, not a mode switch.
	code, resp := patchGraph(t, ts, put.Hash, graph.Edit{Weights: []graph.WeightUpdate{{V: 1, W: 9}}})
	if code != http.StatusOK {
		t.Fatalf("unconditional PATCH via alias: %d %s", code, resp.Error)
	}
}

// TestPatchCASSerialisesWriters: N writers racing CAS PATCHes from the
// same base hash — exactly one wins, the rest observe a conflict. The
// winner count is the mutation count.
func TestPatchCASSerialisesWriters(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); _ = s.Close() }()

	put := putGraph(t, ts, twoIslandGraph(t, 4, 8))
	const writers = 8
	codes := make([]int, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = patchGraphCAS(t, ts, put.Hash, put.Hash,
				graph.Edit{AddEdges: [][2]int32{{0, int32(2 + i%5)}}})
		}(i)
	}
	wg.Wait()
	wins, conflicts := 0, 0
	for _, code := range codes {
		switch code {
		case http.StatusOK:
			wins++
		case http.StatusConflict:
			conflicts++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if wins != 1 || conflicts != writers-1 {
		t.Fatalf("%d wins, %d conflicts; want exactly 1 winner", wins, conflicts)
	}
	if got := s.graphs.casConflicts; got != int64(conflicts) {
		t.Fatalf("casConflicts counter = %d, want %d", got, conflicts)
	}
}
