package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/maxis"
)

// Options configures a Server. The zero value is usable; every field has a
// sane default.
type Options struct {
	// Workers is the scheduler worker pool size (default 4).
	Workers int
	// SolveWorkers is the congest engine parallelism per solve (default 1:
	// the service parallelises across requests, not within one).
	SolveWorkers int
	// QueueDepth bounds each priority queue (default 256).
	QueueDepth int
	// CacheBytes is the result cache byte budget (default 64 MiB; negative
	// disables the cache).
	CacheBytes int64
	// Rate and Burst configure the admission token bucket in requests per
	// second (Rate <= 0 disables rate limiting; Burst defaults to 2×Rate).
	Rate  float64
	Burst int
	// ShedDepth is the queued-job count beyond which new requests are
	// downgraded to the degraded greedy tier (default QueueDepth/2).
	ShedDepth int
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration
	// JobHistory bounds the GET /v1/jobs records kept (default 4096).
	JobHistory int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.SolveWorkers <= 0 {
		o.SolveWorkers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 64 << 20
	}
	if o.Burst <= 0 {
		o.Burst = int(2 * o.Rate)
	}
	if o.ShedDepth <= 0 {
		o.ShedDepth = o.QueueDepth / 2
		if o.ShedDepth < 1 {
			o.ShedDepth = 1
		}
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 4096
	}
	return o
}

// Server is the MaxIS service: scheduler + cache + admission + HTTP API.
type Server struct {
	opts    Options
	sched   *scheduler
	cache   *resultCache
	specs   *specMemo
	bucket  *tokenBucket
	metrics *metrics

	jobs     *jobStore
	jobSeq   atomic.Int64
	shutdown atomic.Bool
}

// New assembles a Server; Handler exposes it over HTTP.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		opts:    opts,
		sched:   newScheduler(opts.Workers, opts.QueueDepth),
		cache:   newResultCache(opts.CacheBytes),
		specs:   newSpecMemo(1 << 16),
		bucket:  newTokenBucket(opts.Rate, opts.Burst),
		metrics: newMetrics(),
		jobs:    newJobStore(opts.JobHistory),
	}
}

// Handler returns the HTTP API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.shutdown.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.metrics.write(w, s)
	})
	return mux
}

// BeginShutdown flips the server to draining: /readyz turns 503 and new
// solve submissions are rejected. Idempotent.
func (s *Server) BeginShutdown() { s.shutdown.Store(true) }

// Drain completes graceful shutdown: stops the worker pool after every
// accepted job finished, or errors after the configured drain timeout.
func (s *Server) Drain() error {
	s.BeginShutdown()
	return s.sched.drain(s.opts.DrainTimeout)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func errorResponse(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, SolveResponse{Status: "failed", Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.shutdown.Load() {
		errorResponse(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !s.bucket.allow() {
		s.metrics.rejected.Add(1)
		errorResponse(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorResponse(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.normalize(); err != nil {
		errorResponse(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Fast path: a repeat generator-spec request whose result is still
	// cached is answered without rebuilding the graph — the spec memo
	// resolves the request fingerprint straight to the cache line. The memo
	// is advisory: on any miss (either level) we fall through to the full
	// build-hash-lookup path below.
	var specKey string
	if req.Gen != nil && !req.NoCache {
		specKey = req.specFingerprint()
		if !req.Async {
			if t, ok := s.specs.get(specKey); ok {
				if e, ok := s.cache.get(t.key); ok {
					s.metrics.requests.Add(1)
					s.metrics.latency.observe("cache_hit", time.Since(start).Seconds())
					resp := entryResponse(e, true, false)
					resp.ID = fmt.Sprintf("job-%d", s.jobSeq.Add(1))
					resp.GraphHash = t.hash
					resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
					writeJSON(w, http.StatusOK, resp)
					return
				}
			}
		}
	}
	g, err := req.buildGraph()
	if err != nil {
		errorResponse(w, http.StatusBadRequest, "graph: %v", err)
		return
	}
	cfg, err := req.maxisConfig(s.opts.SolveWorkers)
	if err != nil {
		errorResponse(w, http.StatusBadRequest, "%v", err)
		return
	}
	if cfg.Faults.Enabled() {
		if err := cfg.Faults.ValidateFor(g.N()); err != nil {
			errorResponse(w, http.StatusBadRequest, "fault schedule: %v", err)
			return
		}
	}
	// Mirror the cmd/maxis wiring: generator specs with bounded weight
	// families hand the nominal bound W to the engine instead of letting it
	// scan the graph.
	if req.Gen != nil && (req.Gen.Weights == "uniform" || req.Gen.Weights == "skewed") {
		cfg.MaxWeight = req.Gen.MaxW
		if cfg.MaxWeight <= 0 {
			cfg.MaxWeight = 1000
		}
	}
	s.metrics.requests.Add(1)

	key := cacheKey(g.Canonical(), req.fingerprint()+fmt.Sprintf("|W=%d", cfg.MaxWeight))
	id := fmt.Sprintf("job-%d", s.jobSeq.Add(1))
	hash := g.HashString()
	if specKey != "" {
		s.specs.put(specKey, specTarget{key: key, hash: hash})
	}

	if req.Async {
		rec := s.jobs.create(id)
		ctx := context.Background()
		var cancel context.CancelFunc = func() {}
		if req.DeadlineMS > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		}
		go func() {
			defer cancel()
			resp := s.execute(ctx, &req, g, cfg, key, id, hash, start)
			rec.store(resp)
		}()
		writeJSON(w, http.StatusAccepted, SolveResponse{ID: id, Status: "queued", GraphHash: hash})
		return
	}

	ctx := r.Context()
	var cancel context.CancelFunc = func() {}
	if req.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
	}
	defer cancel()
	resp := s.execute(ctx, &req, g, cfg, key, id, hash, start)
	writeJSON(w, statusCode(&resp), resp)
}

// statusCode maps a terminal SolveResponse to its HTTP status.
func statusCode(resp *SolveResponse) int {
	switch resp.Status {
	case "done":
		return http.StatusOK
	case "deadline":
		return http.StatusGatewayTimeout
	default:
		if resp.Error == errQueueFull.Error() || resp.Error == errDraining.Error() {
			return http.StatusServiceUnavailable
		}
		return http.StatusInternalServerError
	}
}

// execute runs the full pipeline for one request: cache lookup, shed
// decision, single-flight, scheduling, solve. It always returns a terminal
// response.
func (s *Server) execute(ctx context.Context, req *SolveRequest, g *graph.Graph, cfg maxis.Config, key, id, hash string, start time.Time) SolveResponse {
	finish := func(resp SolveResponse) SolveResponse {
		resp.ID = id
		resp.GraphHash = hash
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		return resp
	}

	if !req.NoCache {
		if e, ok := s.cache.get(key); ok {
			s.metrics.latency.observe("cache_hit", time.Since(start).Seconds())
			return finish(entryResponse(e, true, false))
		}
	}

	// Load shedding: past the queue-depth threshold, answer with the cheap
	// deterministic greedy tier instead of queueing a full solve.
	if s.sched.depth() >= s.opts.ShedDepth {
		set, weight := greedyDegraded(g)
		s.metrics.shed.Add(1)
		s.metrics.latency.observe("degraded", time.Since(start).Seconds())
		return finish(SolveResponse{
			Status:   "done",
			Set:      setIndices(set),
			Size:     graph.SetSize(set),
			Weight:   weight,
			Degraded: true,
		})
	}

	entry, shared, err := s.cache.do(ctx, key, func() (*cacheEntry, error) {
		return s.runScheduled(ctx, req, g, cfg, key)
	})
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.metrics.deadlines.Add(1)
			return finish(SolveResponse{Status: "deadline", Error: err.Error()})
		default:
			s.metrics.failures.Add(1)
			return finish(SolveResponse{Status: "failed", Error: err.Error()})
		}
	}
	s.metrics.latency.observe(req.Alg, time.Since(start).Seconds())
	return finish(entryResponse(entry, false, shared))
}

// runScheduled enqueues the solve on the worker pool and waits for it (or
// for ctx). The solve result is cached worker-side, so even if this waiter
// times out the completed work is kept.
func (s *Server) runScheduled(ctx context.Context, req *SolveRequest, g *graph.Graph, cfg maxis.Config, key string) (*cacheEntry, error) {
	type outcome struct {
		entry *cacheEntry
		err   error
	}
	ch := make(chan outcome, 1)
	j := &job{
		id:       key,
		priority: req.Priority,
		ctx:      ctx,
		skipped:  make(chan struct{}),
		run: func(context.Context) {
			entry, err := s.solve(req, g, cfg, key)
			if err == nil && !req.NoCache {
				s.cache.put(entry)
			}
			ch <- outcome{entry, err}
		},
	}
	if err := s.sched.submit(j); err != nil {
		return nil, err
	}
	select {
	case out := <-ch:
		return out.entry, out.err
	case <-j.skipped:
		return nil, context.DeadlineExceeded
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// solve performs the actual algorithm run; it executes on a scheduler
// worker.
func (s *Server) solve(req *SolveRequest, g *graph.Graph, cfg maxis.Config, key string) (*cacheEntry, error) {
	cfg.Tracer = s.metrics.engine
	cfg.TraceLabel = req.Alg
	res, err := maxis.Solve(req.Alg, g, req.Eps, req.Alpha, cfg)
	if err != nil {
		return nil, err
	}
	return &cacheEntry{
		key:      key,
		set:      boolsToIndices(res.Set),
		weight:   res.Weight,
		rounds:   res.Metrics.Rounds,
		messages: res.Metrics.Messages,
		bits:     res.Metrics.Bits,
	}, nil
}

func entryResponse(e *cacheEntry, cached, shared bool) SolveResponse {
	return SolveResponse{
		Status:   "done",
		Set:      e.set,
		Size:     len(e.set),
		Weight:   e.weight,
		Rounds:   e.rounds,
		Messages: e.messages,
		Bits:     e.bits,
		Cached:   cached,
		Shared:   shared,
		Degraded: e.degraded,
	}
}

func boolsToIndices(set []bool) []int32 {
	var out []int32
	for v, in := range set {
		if in {
			out = append(out, int32(v))
		}
	}
	return out
}

func setIndices(set []bool) []int32 { return boolsToIndices(set) }

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.jobs.get(id)
	if !ok {
		errorResponse(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	resp := rec.load()
	status := http.StatusOK
	if resp.Status == "queued" || resp.Status == "running" {
		status = http.StatusAccepted
	}
	writeJSON(w, status, resp)
}

// jobStore keeps the last JobHistory async job records with FIFO eviction.
type jobStore struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*jobRecord
	order *list.List // front = newest
}

type jobRecord struct {
	mu   sync.Mutex
	resp SolveResponse
}

func (r *jobRecord) store(resp SolveResponse) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resp = resp
}

func (r *jobRecord) load() SolveResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resp
}

func newJobStore(capacity int) *jobStore {
	return &jobStore{cap: capacity, byID: make(map[string]*jobRecord), order: list.New()}
}

func (s *jobStore) create(id string) *jobRecord {
	rec := &jobRecord{resp: SolveResponse{ID: id, Status: "queued"}}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[id] = rec
	s.order.PushFront(id)
	for s.order.Len() > s.cap {
		back := s.order.Back()
		delete(s.byID, back.Value.(string))
		s.order.Remove(back)
	}
	return rec
}

func (s *jobStore) get(id string) (*jobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byID[id]
	return rec, ok
}
