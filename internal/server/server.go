package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"distmwis/internal/chaos"
	"distmwis/internal/graph"
	"distmwis/internal/maxis"
	"distmwis/internal/plan"
	"distmwis/internal/protocol"
	"distmwis/internal/reliable"
	"distmwis/internal/repair"
)

// Options configures a Server. The zero value is usable; every field has a
// sane default.
type Options struct {
	// Workers is the scheduler worker pool size (default 4).
	Workers int
	// SolveWorkers is the congest engine parallelism per solve (default 1:
	// the service parallelises across requests, not within one).
	SolveWorkers int
	// QueueDepth bounds each priority queue (default 256).
	QueueDepth int
	// CacheBytes is the result cache byte budget (default 64 MiB; negative
	// disables the cache).
	CacheBytes int64
	// Rate and Burst configure the admission token bucket in requests per
	// second (Rate <= 0 disables rate limiting; Burst defaults to 2×Rate).
	Rate  float64
	Burst int
	// ShedDepth is the queued-job count beyond which new requests are
	// downgraded to the degraded greedy tier (default QueueDepth/2).
	ShedDepth int
	// PlannerOpsPerMS calibrates the planner's deadline→work conversion for
	// alg=auto requests: how many work units (one unit ≈ one message handler
	// or delivery) this host sustains per millisecond (default
	// plan.DefaultOpsPerMS; see cmd/maxisd -plan-ops-per-ms).
	PlannerOpsPerMS int64
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration
	// JobHistory bounds the GET /v1/jobs records kept (default 4096).
	JobHistory int
	// RestartBudget is the worker-restart count beyond which /readyz
	// reports 503 (default 32; negative disables the check). Worker panics
	// are isolated and the pool self-heals, but a process that keeps
	// panicking is telling its load balancer something.
	RestartBudget int
	// Chaos, when non-nil, installs the fault injector: its middleware
	// wraps the HTTP API and its job hook runs before every scheduled
	// solve (see internal/chaos). Nil means no injection.
	Chaos *chaos.Injector
	// RepairInterval, RepairBudget and RepairQueueDepth configure the
	// background repair tier that upgrades degraded graph_ref answers
	// (defaults 50ms, 4096 admit-examinations per tick, 256 queued tasks;
	// see internal/repair).
	RepairInterval   time.Duration
	RepairBudget     int
	RepairQueueDepth int
	// AnswerHistory bounds the GET /v1/answers registry (default 4096).
	AnswerHistory int
	// Cluster, when non-nil, mounts a cluster coordinator's handler at
	// POST /v1/cluster/solve — the front-tier composition: this node keeps
	// its full single-node API and additionally fans solves out over a
	// backend fleet (see internal/cluster; wired by cmd/maxisd -cluster).
	// The server takes an http.Handler rather than a coordinator to keep
	// the dependency arrow pointing cluster→server.
	Cluster http.Handler
	// ClusterMetrics, when non-nil, is appended to the /metrics exposition
	// so the coordinator's counters share the node's scrape endpoint.
	ClusterMetrics func(io.Writer)
	// GraphJournalGroupWindow and GraphJournalGroupBatch configure
	// group-commit fsync batching on the graph mutation journal opened by
	// OpenGraphJournal: an fsync is issued when the oldest unsynced record
	// has waited GroupWindow, or when GroupBatch records are pending,
	// whichever comes first. Every PATCH still blocks until its record is
	// synced — fsync-before-ack is preserved, the syncs are just shared.
	// Zero values select 2ms and 32; negative GroupWindow disables
	// batching (every record syncs individually, the pre-batching
	// behaviour).
	GraphJournalGroupWindow time.Duration
	GraphJournalGroupBatch  int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.SolveWorkers <= 0 {
		o.SolveWorkers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 64 << 20
	}
	if o.Burst <= 0 {
		o.Burst = int(2 * o.Rate)
	}
	if o.ShedDepth <= 0 {
		o.ShedDepth = o.QueueDepth / 2
		if o.ShedDepth < 1 {
			o.ShedDepth = 1
		}
	}
	if o.PlannerOpsPerMS <= 0 {
		o.PlannerOpsPerMS = plan.DefaultOpsPerMS
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 4096
	}
	if o.RestartBudget == 0 {
		o.RestartBudget = 32
	}
	if o.AnswerHistory <= 0 {
		o.AnswerHistory = 4096
	}
	return o
}

// Server is the MaxIS service: scheduler + cache + admission + HTTP API,
// with optional chaos injection and a write-ahead request journal.
type Server struct {
	opts    Options
	sched   *scheduler
	cache   *resultCache
	specs   *specMemo
	bucket  *tokenBucket
	metrics *metrics

	jobs     *jobStore
	jobSeq   atomic.Int64
	shutdown atomic.Bool

	// The dynamic-graph subsystem: mutable graph handles (graphstore.go),
	// the published-answer registry and the background repair tier that
	// upgrades degraded answers (answers.go, internal/repair).
	graphs     *graphStore
	answers    *answerRegistry
	repairTier *repair.Tier

	// wal, when set via OpenJournal, durably records every accepted async
	// job before the 202 is written and retires it when it reaches a
	// terminal state; see journal.go.
	wal       *reliable.WAL
	recovered atomic.Int64
}

// New assembles a Server; Handler exposes it over HTTP.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		sched:   newScheduler(opts.Workers, opts.QueueDepth),
		cache:   newResultCache(opts.CacheBytes),
		specs:   newSpecMemo(1 << 16),
		bucket:  newTokenBucket(opts.Rate, opts.Burst),
		metrics: newMetrics(),
		jobs:    newJobStore(opts.JobHistory),
		graphs:  newGraphStore(),
		answers: newAnswerRegistry(opts.AnswerHistory),
	}
	s.repairTier = repair.New(repair.Options{
		Budget:     opts.RepairBudget,
		Interval:   opts.RepairInterval,
		QueueDepth: opts.RepairQueueDepth,
		Publish:    s.publishUpgrade,
	})
	if opts.Chaos != nil {
		s.sched.hook = opts.Chaos.JobHook()
	}
	return s
}

// Handler returns the HTTP API mux, wrapped in the chaos middleware when
// an injector is configured.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("PUT /v1/graph", s.handlePutGraph)
	mux.HandleFunc("GET /v1/graph/{hash}", s.handleGetGraph)
	mux.HandleFunc("PATCH /v1/graph/{hash}", s.handlePatchGraph)
	mux.HandleFunc("GET /v1/answers/{key}", s.handleGetAnswer)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.metrics.write(w, s)
		if s.opts.ClusterMetrics != nil {
			s.opts.ClusterMetrics(w)
		}
	})
	if s.opts.Cluster != nil {
		mux.Handle("POST /v1/cluster/solve", s.opts.Cluster)
	}
	if s.opts.Chaos != nil {
		return s.opts.Chaos.Middleware(mux)
	}
	return mux
}

// handleReady is the load-balancer signal. Beyond draining, readiness
// degrades when the node is visibly unhealthy: the worker pool has
// restarted past its budget (persistent panics) or the scheduler backlog
// has crossed the shed threshold (new work is being answered by the
// degraded tier anyway, so better routed elsewhere). Liveness (/healthz)
// stays green in both cases — the process is functioning, just impaired.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.shutdown.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if b := s.opts.RestartBudget; b >= 0 {
		if restarts := s.sched.restarts.Load(); restarts > int64(b) {
			http.Error(w, fmt.Sprintf("degraded: %d worker restarts exceed budget %d", restarts, b),
				http.StatusServiceUnavailable)
			return
		}
	}
	if depth := s.sched.depth(); depth >= s.opts.ShedDepth {
		http.Error(w, fmt.Sprintf("saturated: %d jobs queued (shed threshold %d)", depth, s.opts.ShedDepth),
			http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// BeginShutdown flips the server to draining: /readyz turns 503 and new
// solve submissions are rejected. Idempotent.
func (s *Server) BeginShutdown() { s.shutdown.Store(true) }

// Drain completes graceful shutdown: stops the worker pool after every
// accepted job finished, or errors after the configured drain timeout.
// The repair tier stops first — abandoning queued upgrades is safe (the
// degraded answers stay served, and a future boot's solves re-derive the
// full ones) while leaking its goroutine is not.
func (s *Server) Drain() error {
	s.BeginShutdown()
	s.repairTier.Stop()
	return s.sched.drain(s.opts.DrainTimeout)
}

// Close releases the journals (if open). Call after Drain; jobs completing
// later will fail to commit and simply be re-run on the next boot, which
// determinism makes harmless.
func (s *Server) Close() error {
	var err error
	if s.wal != nil {
		err = s.wal.Close()
	}
	s.graphs.mu.Lock()
	gwal := s.graphs.wal
	s.graphs.mu.Unlock()
	if gwal != nil {
		if gerr := gwal.Close(); err == nil {
			err = gerr
		}
	}
	return err
}

// ServiceStats is a point-in-time snapshot of the scheduler and journal
// counters, for drain-outcome logging and tests.
type ServiceStats struct {
	JobsDone         int64 // jobs completed by the worker pool
	JobsExpired      int64 // jobs skipped because their deadline passed in queue
	JobsInFlight     int64 // jobs being solved right now
	QueueDepth       int64 // jobs queued and not yet started
	WorkerPanics     int64 // jobs failed by a worker panic
	WorkerRestarts   int64 // worker goroutines replaced after a panic
	JournalRecovered int64 // jobs re-enqueued from the journal at boot

	Mutations             int64 // graph PATCHes applied
	InvalidatedComponents int64 // cached components evicted by mutations
	RepairQueueDepth      int64 // degraded answers awaiting upgrade
	RepairImproved        int64 // answers upgraded to improved quality
	RepairUpgrades        int64 // answers upgraded to full quality
}

// Stats snapshots the service counters.
func (s *Server) Stats() ServiceStats {
	s.graphs.mu.Lock()
	mutations, invalidated := s.graphs.mutations, s.graphs.invalidated
	s.graphs.mu.Unlock()
	rep := s.repairTier.Stats()
	return ServiceStats{
		JobsDone:         s.sched.done.Load(),
		JobsExpired:      s.sched.expired.Load(),
		JobsInFlight:     s.sched.inflight.Load(),
		QueueDepth:       int64(s.sched.depth()),
		WorkerPanics:     s.sched.panics.Load(),
		WorkerRestarts:   s.sched.restarts.Load(),
		JournalRecovered: s.recovered.Load(),

		Mutations:             mutations,
		InvalidatedComponents: invalidated,
		RepairQueueDepth:      int64(rep.QueueDepth),
		RepairImproved:        rep.Improved,
		RepairUpgrades:        rep.Upgraded,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func errorResponse(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, SolveResponse{Status: "failed", Error: fmt.Sprintf(format, args...)})
}

// prepared is everything handleSolve derives from a normalized request
// before executing it; recovery re-derives the identical values from the
// journaled request, which is what makes replayed solves bit-identical.
type prepared struct {
	g    *graph.Graph
	cfg  maxis.Config
	key  string
	hash string
}

// prepare materialises the graph, assembles the solve config and computes
// the cache key for a normalized request.
func (s *Server) prepare(req *SolveRequest) (prepared, error) {
	g, err := req.BuildGraph()
	if err != nil {
		return prepared{}, fmt.Errorf("graph: %w", err)
	}
	cfg, err := req.maxisConfig(s.opts.SolveWorkers)
	if err != nil {
		return prepared{}, err
	}
	if cfg.Faults.Enabled() {
		if err := cfg.Faults.ValidateFor(g.N()); err != nil {
			return prepared{}, fmt.Errorf("fault schedule: %w", err)
		}
	}
	// Mirror the cmd/maxis wiring: generator specs with bounded weight
	// families hand the nominal bound W to the engine instead of letting it
	// scan the graph.
	if req.Gen != nil && (req.Gen.Weights == "uniform" || req.Gen.Weights == "skewed") {
		cfg.MaxWeight = req.Gen.MaxW
		if cfg.MaxWeight <= 0 {
			cfg.MaxWeight = 1000
		}
	}
	// "auto" resolves through the planner here — before the cache key is
	// computed and before async journalling — so the key and the journal
	// always name a concrete algorithm: two auto requests with different
	// deadlines can cache distinct answers, and replay is bit-identical.
	if req.Alg == plan.Auto {
		d, err := plan.For(g, protocol.Params{Eps: req.Eps, Alpha: req.Alpha},
			plan.ForDeadline(req.DeadlineMS, s.opts.PlannerOpsPerMS), cfg.MIS)
		if err != nil {
			return prepared{}, fmt.Errorf("plan: %w", err)
		}
		req.Alg = d.Alg
		s.metrics.planned.Add(1)
	}
	key := cacheKey(g.Canonical(), req.Fingerprint()+fmt.Sprintf("|W=%d", cfg.MaxWeight))
	return prepared{g: g, cfg: cfg, key: key, hash: g.HashString()}, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.shutdown.Load() {
		errorResponse(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !s.bucket.allow() {
		s.metrics.rejected.Add(1)
		errorResponse(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorResponse(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.Normalize(); err != nil {
		errorResponse(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Dynamic-graph solves take the component-wise incremental path.
	if req.GraphRef != "" {
		s.handleRefSolve(w, r, &req, start)
		return
	}
	// Fast path: a repeat generator-spec request whose result is still
	// cached is answered without rebuilding the graph — the spec memo
	// resolves the request fingerprint straight to the cache line. The memo
	// is advisory: on any miss (either level) we fall through to the full
	// build-hash-lookup path below.
	var specKey string
	if req.Gen != nil && !req.NoCache && !req.Degraded && req.Alg != plan.Auto {
		specKey = req.specFingerprint()
		if !req.Async {
			if t, ok := s.specs.get(specKey); ok {
				if e, ok := s.cache.get(t.key); ok {
					s.metrics.requests.Add(1)
					s.metrics.latency.observe("cache_hit", time.Since(start).Seconds())
					resp := entryResponse(e, true, false)
					resp.ID = fmt.Sprintf("job-%d", s.jobSeq.Add(1))
					resp.GraphHash = t.hash
					resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
					writeJSON(w, http.StatusOK, resp)
					return
				}
			}
		}
	}
	p, err := s.prepare(&req)
	if err != nil {
		errorResponse(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.requests.Add(1)

	id := fmt.Sprintf("job-%d", s.jobSeq.Add(1))
	if specKey != "" {
		s.specs.put(specKey, specTarget{key: p.key, hash: p.hash})
	}

	// Explicitly degraded requests — the circuit-breaker fallback tier of
	// internal/server/client — are answered host-side immediately: no
	// scheduler, no cache, no simulator, deterministic. Always synchronous,
	// even with Async set: the answer is cheaper than the bookkeeping.
	if req.Degraded {
		set, weight := GreedyDegraded(p.g)
		s.metrics.shed.Add(1)
		s.metrics.latency.observe("degraded", time.Since(start).Seconds())
		writeJSON(w, http.StatusOK, SolveResponse{
			ID:        id,
			Status:    "done",
			Set:       setIndices(set),
			Size:      graph.SetSize(set),
			Weight:    weight,
			GraphHash: p.hash,
			Degraded:  true,
			Alg:       "greedy-degraded",
			Guarantee: greedyGuarantee(p.g),
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		})
		return
	}

	if req.Async {
		rec := s.jobs.create(id)
		// The write-ahead contract: the begin record is durable before the
		// 202 acknowledgement, so a crash after this point cannot lose the
		// job — boot-time recovery re-enqueues and re-solves it.
		if err := s.journalBegin(id, &req); err != nil {
			s.metrics.failures.Add(1)
			rec.store(SolveResponse{ID: id, Status: "failed", Error: err.Error()})
			errorResponse(w, http.StatusInternalServerError, "journal: %v", err)
			return
		}
		ctx := context.Background()
		var cancel context.CancelFunc = func() {}
		if req.DeadlineMS > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		}
		go func() {
			defer cancel()
			resp := s.execute(ctx, &req, p, id, start, true)
			rec.store(resp)
			s.journalCommit(id)
		}()
		writeJSON(w, http.StatusAccepted, SolveResponse{ID: id, Status: "queued", GraphHash: p.hash})
		return
	}

	ctx := r.Context()
	var cancel context.CancelFunc = func() {}
	if req.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
	}
	defer cancel()
	resp := s.execute(ctx, &req, p, id, start, true)
	writeJSON(w, statusCode(&resp), resp)
}

// statusCode maps a terminal SolveResponse to its HTTP status.
func statusCode(resp *SolveResponse) int {
	switch resp.Status {
	case "done":
		return http.StatusOK
	case "deadline":
		return http.StatusGatewayTimeout
	default:
		if resp.Error == errQueueFull.Error() || resp.Error == errDraining.Error() {
			return http.StatusServiceUnavailable
		}
		return http.StatusInternalServerError
	}
}

// execute runs the full pipeline for one request: cache lookup, shed
// decision, single-flight, scheduling, solve. It always returns a terminal
// response. allowShed is false for journal-recovered jobs: they were
// accepted with full-solve semantics and must be replayed bit-identically,
// never downgraded by present-day load.
func (s *Server) execute(ctx context.Context, req *SolveRequest, p prepared, id string, start time.Time, allowShed bool) SolveResponse {
	finish := func(resp SolveResponse) SolveResponse {
		resp.ID = id
		resp.GraphHash = p.hash
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		return resp
	}

	if !req.NoCache {
		if e, ok := s.cache.get(p.key); ok {
			s.metrics.latency.observe("cache_hit", time.Since(start).Seconds())
			return finish(entryResponse(e, true, false))
		}
	}

	// Load shedding: past the queue-depth threshold, answer with the cheap
	// deterministic greedy tier instead of queueing a full solve.
	if allowShed && s.sched.depth() >= s.opts.ShedDepth {
		set, weight := GreedyDegraded(p.g)
		s.metrics.shed.Add(1)
		s.metrics.latency.observe("degraded", time.Since(start).Seconds())
		return finish(SolveResponse{
			Status:    "done",
			Set:       setIndices(set),
			Size:      graph.SetSize(set),
			Weight:    weight,
			Degraded:  true,
			Alg:       "greedy-degraded",
			Guarantee: greedyGuarantee(p.g),
		})
	}

	for {
		entry, shared, err := s.cache.do(ctx, p.key, func() (*cacheEntry, error) {
			return s.runScheduled(ctx, req, p.g, p.cfg, p.key)
		})
		if err != nil {
			isCtxErr := errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
			if isCtxErr && shared && ctx.Err() == nil {
				// The single-flight leader died of its own deadline or
				// disconnect — not ours. The worker-side solve still
				// completes and lands in the cache, so check it, then retry
				// with this request as (or following) a fresh leader rather
				// than failing a healthy request with someone else's error.
				if e, ok := s.cache.get(p.key); ok {
					s.metrics.latency.observe("cache_hit", time.Since(start).Seconds())
					return finish(entryResponse(e, true, false))
				}
				continue
			}
			switch {
			case isCtxErr:
				s.metrics.deadlines.Add(1)
				return finish(SolveResponse{Status: "deadline", Error: err.Error()})
			default:
				s.metrics.failures.Add(1)
				return finish(SolveResponse{Status: "failed", Error: err.Error()})
			}
		}
		s.metrics.latency.observe(req.Alg, time.Since(start).Seconds())
		return finish(entryResponse(entry, false, shared))
	}
}

// runScheduled enqueues the solve on the worker pool and waits for it (or
// for ctx). The solve result is cached worker-side, so even if this waiter
// times out the completed work is kept. A worker panic fails this job only:
// the typed error surfaces here while the worker restarts.
func (s *Server) runScheduled(ctx context.Context, req *SolveRequest, g *graph.Graph, cfg maxis.Config, key string) (*cacheEntry, error) {
	return s.runScheduledFn(ctx, req.Priority, key, func() (*cacheEntry, error) {
		return s.solve(req, g, cfg, key)
	}, !req.NoCache)
}

// runScheduledFn is the scheduling core shared by the static and dynamic
// solve paths: enqueue solve as one worker-pool job under key, cache its
// entry on success when cacheResult is set, and wait.
func (s *Server) runScheduledFn(ctx context.Context, priority, key string, solve func() (*cacheEntry, error), cacheResult bool) (*cacheEntry, error) {
	type outcome struct {
		entry *cacheEntry
		err   error
	}
	ch := make(chan outcome, 1)
	j := &job{
		id:       key,
		priority: priority,
		ctx:      ctx,
		skipped:  make(chan struct{}),
		failed:   make(chan error, 1),
		run: func(context.Context) {
			entry, err := solve()
			if err == nil && cacheResult {
				s.cache.put(entry)
			}
			ch <- outcome{entry, err}
		},
	}
	if err := s.sched.submit(j); err != nil {
		return nil, err
	}
	select {
	case out := <-ch:
		return out.entry, out.err
	case err := <-j.failed:
		return nil, err
	case <-j.skipped:
		return nil, context.DeadlineExceeded
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// solve performs the actual algorithm run; it executes on a scheduler
// worker.
func (s *Server) solve(req *SolveRequest, g *graph.Graph, cfg maxis.Config, key string) (*cacheEntry, error) {
	cfg.Tracer = s.metrics.engine
	cfg.TraceLabel = req.Alg
	res, err := maxis.Solve(req.Alg, g, req.Eps, req.Alpha, cfg)
	if err != nil {
		return nil, err
	}
	return &cacheEntry{
		key:       key,
		set:       boolsToIndices(res.Set),
		weight:    res.Weight,
		rounds:    res.Metrics.Rounds,
		messages:  res.Metrics.Messages,
		bits:      res.Metrics.Bits,
		alg:       req.Alg,
		guarantee: maxis.GuaranteeString(req.Alg, g, req.Eps, req.Alpha, res),
	}, nil
}

func entryResponse(e *cacheEntry, cached, shared bool) SolveResponse {
	return SolveResponse{
		Status:    "done",
		Set:       e.set,
		Size:      len(e.set),
		Weight:    e.weight,
		Rounds:    e.rounds,
		Messages:  e.messages,
		Bits:      e.bits,
		Cached:    cached,
		Shared:    shared,
		Degraded:  e.degraded,
		Alg:       e.alg,
		Guarantee: e.guarantee,
	}
}

// greedyGuarantee renders the degraded tier's bound: the host-side greedy
// pass is the sequential (Δ+1)-approximation of the Bar-Yehuda et al.
// cheap tier.
func greedyGuarantee(g *graph.Graph) string {
	return fmt.Sprintf("(Δ+1)-approximation = %d (host-side greedy, degraded tier)", g.MaxDegree()+1)
}

func boolsToIndices(set []bool) []int32 {
	var out []int32
	for v, in := range set {
		if in {
			out = append(out, int32(v))
		}
	}
	return out
}

func setIndices(set []bool) []int32 { return boolsToIndices(set) }

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.jobs.get(id)
	if !ok {
		errorResponse(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	resp := rec.load()
	status := http.StatusOK
	if resp.Status == "queued" || resp.Status == "running" {
		status = http.StatusAccepted
	}
	writeJSON(w, status, resp)
}

// jobStore keeps the last JobHistory async job records with FIFO eviction.
type jobStore struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*jobRecord
	order *list.List // front = newest
}

type jobRecord struct {
	mu   sync.Mutex
	resp SolveResponse
}

func (r *jobRecord) store(resp SolveResponse) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resp = resp
}

func (r *jobRecord) load() SolveResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resp
}

func newJobStore(capacity int) *jobStore {
	return &jobStore{cap: capacity, byID: make(map[string]*jobRecord), order: list.New()}
}

func (s *jobStore) create(id string) *jobRecord {
	rec := &jobRecord{resp: SolveResponse{ID: id, Status: "queued"}}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[id] = rec
	s.order.PushFront(id)
	for s.order.Len() > s.cap {
		back := s.order.Back()
		delete(s.byID, back.Value.(string))
		s.order.Remove(back)
	}
	return rec
}

func (s *jobStore) get(id string) (*jobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byID[id]
	return rec, ok
}
