package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/maxis"
	"distmwis/internal/plan"
	"distmwis/internal/protocol"
	"distmwis/internal/repair"
)

// Quality vocabulary of published answers, worst to best. The repair tier
// owns the two upgrade tags; the serving tier only ever publishes degraded
// or full directly.
const (
	qualityDegraded = "degraded"
	qualityFull     = repair.QualityFull
)

// qualityRank orders tags so out-of-order publishes never downgrade a
// registry entry for the same key (same key ⇒ same graph content and
// config, so a higher-quality answer is strictly better).
func qualityRank(q string) int {
	switch q {
	case qualityDegraded:
		return 1
	case repair.QualityImproved:
		return 2
	case qualityFull:
		return 3
	}
	return 0
}

// storedAnswer is one published answer; GET /v1/answers/{key} returns it.
type storedAnswer struct {
	Key       string  `json:"key"`
	GraphHash string  `json:"graph_hash"`
	Set       []int32 `json:"set"`
	Size      int     `json:"size"`
	Weight    int64   `json:"weight"`
	// Quality is degraded|improved|full; degraded and improved answers are
	// upgraded in place by the background repair tier.
	Quality string `json:"quality"`
	// Alg names the algorithm that produced the current set — the repair
	// ladder rewrites it as the answer climbs rungs.
	Alg     string    `json:"alg,omitempty"`
	Updated time.Time `json:"updated"`
	Error   string    `json:"error,omitempty"`
}

// answerRegistry keeps the last N published answers keyed by answer key,
// FIFO-evicted. It is the observation surface for self-healing: clients
// watch an answer's quality climb without re-posting the solve.
type answerRegistry struct {
	mu    sync.Mutex
	cap   int
	byKey map[string]*list.Element
	order *list.List // front = newest inserted
}

func newAnswerRegistry(capacity int) *answerRegistry {
	return &answerRegistry{cap: capacity, byKey: make(map[string]*list.Element), order: list.New()}
}

// put inserts or upgrades an answer. Publishes that would lower the
// quality of an existing entry are dropped.
func (ar *answerRegistry) put(a *storedAnswer) {
	a.Size = len(a.Set)
	ar.mu.Lock()
	defer ar.mu.Unlock()
	if el, ok := ar.byKey[a.Key]; ok {
		if qualityRank(a.Quality) < qualityRank(el.Value.(*storedAnswer).Quality) {
			return
		}
		el.Value = a
		return
	}
	ar.byKey[a.Key] = ar.order.PushFront(a)
	for ar.order.Len() > ar.cap {
		back := ar.order.Back()
		delete(ar.byKey, back.Value.(*storedAnswer).Key)
		ar.order.Remove(back)
	}
}

func (ar *answerRegistry) get(key string) (*storedAnswer, bool) {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	el, ok := ar.byKey[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*storedAnswer), true
}

func (s *Server) handleGetAnswer(w http.ResponseWriter, r *http.Request) {
	a, ok := s.answers.get(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, storedAnswer{Error: "unknown answer key"})
		return
	}
	writeJSON(w, http.StatusOK, *a)
}

// publishUpgrade is the repair tier's publish callback: it upgrades the
// registry entry in place and, once the answer is full quality, promotes
// it into the result cache so foreground solves of the same content hit.
func (s *Server) publishUpgrade(key string, a repair.Answer) {
	hash := ""
	if prev, ok := s.answers.get(key); ok {
		hash = prev.GraphHash
	}
	set := boolsToIndices(a.Set)
	s.answers.put(&storedAnswer{
		Key:       key,
		GraphHash: hash,
		Set:       set,
		Weight:    a.Weight,
		Quality:   a.Quality,
		Alg:       a.Alg,
		Updated:   time.Now().UTC(),
	})
	if a.Quality == qualityFull {
		s.cache.put(&cacheEntry{key: key, set: set, weight: a.Weight, alg: a.Alg, tag: hash})
	}
}

// refCacheKey is the content-addressed key of a graph_ref solve. The
// fingerprint namespace is "inc|": component-wise answers may legitimately
// differ bitwise from whole-graph solves of the same content (per-component
// node renumbering changes the randomness), so the two worlds never share
// cache lines.
func (s *Server) refCacheKey(g *graph.Graph, req *SolveRequest) string {
	return cacheKey(g.Canonical(), "inc|"+req.Fingerprint())
}

// componentCache adapts the result cache to maxis.SolveByComponent for one
// request fingerprint: per-component answers are ordinary cache entries,
// keyed by component content hash + fingerprint and tagged with the
// component hash so a mutation can invalidate exactly the components it
// destroyed.
func (s *Server) componentCache(fp string) maxis.ComponentCache {
	return maxis.ComponentCache{
		Lookup: func(hash string) ([]int32, bool) {
			e, ok := s.cache.get("comp|" + fp + "|" + hash)
			if !ok {
				return nil, false
			}
			return e.set, true
		},
		Store: func(hash string, set []int32, weight int64) {
			s.cache.put(&cacheEntry{key: "comp|" + fp + "|" + hash, set: set, weight: weight, tag: hash})
		},
	}
}

// solveComponents runs the component-wise solve for a graph_ref request.
func (s *Server) solveComponents(req *SolveRequest, g *graph.Graph, cfg maxis.Config) (*maxis.Result, maxis.ComponentStats, error) {
	return maxis.SolveByComponent(req.Alg, g, req.Eps, req.Alpha, cfg, s.componentCache("inc|"+req.Fingerprint()))
}

// handleRefSolve is the graph_ref branch of POST /v1/solve: resolve the
// handle to its current snapshot, then cache → shed → scheduled
// component-wise solve, mirroring execute(). Every degraded answer is
// published in the registry and queued for background upgrade, so shedding
// under load is a promise deferred, not broken.
func (s *Server) handleRefSolve(w http.ResponseWriter, r *http.Request, req *SolveRequest, start time.Time) {
	g, hash, ok := s.graphs.snapshot(req.GraphRef)
	if !ok {
		errorResponse(w, http.StatusNotFound, "unknown graph %q", req.GraphRef)
		return
	}
	cfg, err := req.maxisConfig(s.opts.SolveWorkers)
	if err != nil {
		errorResponse(w, http.StatusBadRequest, "%v", err)
		return
	}
	if cfg.Faults.Enabled() {
		if err := cfg.Faults.ValidateFor(g.N()); err != nil {
			errorResponse(w, http.StatusBadRequest, "fault schedule: %v", err)
			return
		}
	}
	// Planner resolution happens before refCacheKey for the same reason as
	// prepare(): the answer key must name the concrete algorithm, so a tight
	// deadline and a loose one address different answers.
	if req.Alg == plan.Auto {
		d, derr := plan.For(g, protocol.Params{Eps: req.Eps, Alpha: req.Alpha},
			plan.ForDeadline(req.DeadlineMS, s.opts.PlannerOpsPerMS), cfg.MIS)
		if derr != nil {
			errorResponse(w, http.StatusBadRequest, "plan: %v", derr)
			return
		}
		req.Alg = d.Alg
		s.metrics.planned.Add(1)
	}
	cfg.Tracer = s.metrics.engine
	cfg.TraceLabel = req.Alg
	s.metrics.requests.Add(1)
	id := fmt.Sprintf("job-%d", s.jobSeq.Add(1))
	key := s.refCacheKey(g, req)

	finish := func(resp SolveResponse) SolveResponse {
		resp.ID = id
		resp.GraphHash = hash
		resp.AnswerKey = key
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		return resp
	}

	if !req.NoCache && !req.Degraded {
		if e, ok := s.cache.get(key); ok {
			s.metrics.latency.observe("cache_hit", time.Since(start).Seconds())
			resp := entryResponse(e, true, false)
			resp.Quality = qualityFull
			writeJSON(w, http.StatusOK, finish(resp))
			return
		}
	}

	// Degraded tier — explicit request or load shedding. Unlike the
	// anonymous-graph path, a ref answer has an address, so the downgrade
	// is recoverable: publish it, queue the upgrade, tell the client where
	// to watch.
	if req.Degraded || s.sched.depth() >= s.opts.ShedDepth {
		set, weight := GreedyDegraded(g)
		s.metrics.shed.Add(1)
		s.answers.put(&storedAnswer{
			Key:       key,
			GraphHash: hash,
			Set:       boolsToIndices(set),
			Weight:    weight,
			Quality:   qualityDegraded,
			Alg:       "greedy-degraded",
			Updated:   time.Now().UTC(),
		})
		s.enqueueUpgrade(key, hash, g, set, req)
		s.metrics.latency.observe("degraded", time.Since(start).Seconds())
		writeJSON(w, http.StatusOK, finish(SolveResponse{
			Status:    "done",
			Set:       setIndices(set),
			Size:      graph.SetSize(set),
			Weight:    weight,
			Degraded:  true,
			Quality:   qualityDegraded,
			Alg:       "greedy-degraded",
			Guarantee: greedyGuarantee(g),
		}))
		return
	}

	ctx := r.Context()
	var cancel context.CancelFunc = func() {}
	if req.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
	}
	defer cancel()

	entry, shared, err := s.cache.do(ctx, key, func() (*cacheEntry, error) {
		return s.runScheduledFn(ctx, req.Priority, key, func() (*cacheEntry, error) {
			res, _, err := s.solveComponents(req, g, cfg)
			if err != nil {
				return nil, err
			}
			return &cacheEntry{
				key:       key,
				set:       boolsToIndices(res.Set),
				weight:    res.Weight,
				rounds:    res.Metrics.Rounds,
				messages:  res.Metrics.Messages,
				bits:      res.Metrics.Bits,
				alg:       req.Alg,
				guarantee: maxis.GuaranteeString(req.Alg, g, req.Eps, req.Alpha, res),
				tag:       hash,
			}, nil
		}, !req.NoCache)
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.metrics.deadlines.Add(1)
			resp := finish(SolveResponse{Status: "deadline", Error: err.Error()})
			writeJSON(w, statusCode(&resp), resp)
			return
		}
		s.metrics.failures.Add(1)
		resp := finish(SolveResponse{Status: "failed", Error: err.Error()})
		writeJSON(w, statusCode(&resp), resp)
		return
	}
	s.metrics.latency.observe(req.Alg, time.Since(start).Seconds())
	s.answers.put(&storedAnswer{
		Key:       key,
		GraphHash: hash,
		Set:       entry.set,
		Weight:    entry.weight,
		Quality:   qualityFull,
		Alg:       entry.alg,
		Updated:   time.Now().UTC(),
	})
	s.graphs.recordFull(hash, req, entry.set, g.N())
	resp := entryResponse(entry, false, shared)
	resp.Quality = qualityFull
	writeJSON(w, http.StatusOK, finish(resp))
}

// recordFull remembers a handle's latest full answer and the request that
// produced it — the seed the next PATCH heals onto its new version. Skipped
// if the handle moved on while the solve ran: healing an older version's
// answer would be wrong by one more mutation than necessary.
func (gs *graphStore) recordFull(hash string, req *SolveRequest, set []int32, n int) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	h, ok := gs.byHash[hash]
	if !ok || h.hash != hash {
		return
	}
	bools := make([]bool, n)
	for _, v := range set {
		bools[v] = true
	}
	reqCopy := *req
	h.lastReq = &reqCopy
	h.lastSet = bools
}
