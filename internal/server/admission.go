package server

import (
	"sort"
	"sync"
	"time"

	"distmwis/internal/graph"
)

// tokenBucket is a classic rate limiter: capacity burst tokens, refilled at
// rate tokens/second. A zero rate disables limiting (allow always).
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	b := &tokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
	}
	b.last = b.now()
	return b
}

// allow consumes one token if available.
func (b *tokenBucket) allow() bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// GreedyDegraded is the load-shedding tier: a host-side weight-ordered
// greedy (heaviest node first, identifier ascending as the tie break). It
// is the classic Δ+1-approximation — every rejected node charges its weight
// to a heavier chosen neighbour, and a node has at most Δ neighbours — and
// costs O(n log n + m) with no CONGEST simulation at all, so a saturated
// server can still answer every request with a valid independent set. The
// order is deterministic, keeping even degraded responses reproducible.
func GreedyDegraded(g *graph.Graph) ([]bool, int64) {
	n := g.N()
	order := make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		u, v := order[i], order[j]
		wu, wv := g.Weight(int(u)), g.Weight(int(v))
		if wu != wv {
			return wu > wv
		}
		return g.ID(int(u)) < g.ID(int(v))
	})
	set := make([]bool, n)
	blocked := make([]bool, n)
	var weight int64
	for _, v := range order {
		if blocked[v] {
			continue
		}
		set[v] = true
		weight += g.Weight(int(v))
		blocked[v] = true
		for _, u := range g.Neighbors(int(v)) {
			blocked[u] = true
		}
	}
	return set, weight
}
