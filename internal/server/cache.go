package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// cacheEntry is one stored solve outcome. Entries store the member indices
// rather than the full bool vector: independent sets returned by the Δ-ish
// approximations are small, and the byte budget should reflect reality.
type cacheEntry struct {
	key      string
	set      []int32
	weight   int64
	rounds   int
	messages int64
	bits     int64
	degraded bool
	// alg is the registry name of the solver that produced the set (the
	// planner's concrete choice, never "auto"); guarantee is its rendered
	// approximation bound for this instance.
	alg       string
	guarantee string
	// tag groups entries for bulk invalidation: dynamic-graph entries carry
	// the content hash of the graph (or connected component) they answer
	// for, so a mutation can evict exactly the subgraphs it changed.
	tag string
}

// bytes approximates the resident cost of the entry for budgeting. The
// "sets are small" assumption above holds for the approximation tiers but
// NOT for the degraded tier: greedy answers on sparse graphs have Θ(n)
// members, so the accounting must charge the real backing array — cap, not
// len, since put keeps whatever the solver allocated — plus the headers and
// bookkeeping a resident entry drags along (string header 16 B, slice
// header 24 B, the remaining fixed fields, the map cell and the LRU
// list.Element ≈ 96 B). Undercounting here let used drift past budget
// exactly when entries were largest.
func (e *cacheEntry) bytes() int64 {
	const fixed = 16 + 16 + 16 + 16 + 24 + // key, tag, alg, guarantee and set headers
		8 + 8 + 8 + 8 + 8 + // weight, rounds, messages, bits, degraded (padded)
		96 // map entry + list.Element overhead
	return int64(len(e.key)) + int64(len(e.tag)) + int64(len(e.alg)) + int64(len(e.guarantee)) +
		int64(4*cap(e.set)) + fixed
}

// resultCache is a content-addressed LRU with a byte budget and
// single-flight deduplication. The key is sha256(canonical graph bytes ‖
// config fingerprint): two requests share an entry iff they would provably
// compute the identical set.
type resultCache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // key → element holding *cacheEntry
	inflight map[string]*flight

	hits, misses, evictions, dedups, invalidations int64
}

// flight is one in-progress solve other requests can attach to.
type flight struct {
	done chan struct{}
	// entry/err are valid once done is closed.
	entry *cacheEntry
	err   error
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget:   budget,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// cacheKey combines the canonical graph bytes with the config fingerprint.
func cacheKey(canonical []byte, fingerprint string) string {
	h := sha256.New()
	h.Write(canonical)
	h.Write([]byte{0})
	h.Write([]byte(fingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// get returns the cached entry for key, refreshing its recency.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry), true
	}
	c.misses++
	return nil, false
}

// put stores an entry, evicting least-recently-used entries until the byte
// budget holds. Entries larger than the whole budget are not stored.
func (c *resultCache) put(e *cacheEntry) {
	sz := e.bytes()
	if c.budget > 0 && sz > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		c.used -= el.Value.(*cacheEntry).bytes()
		c.order.Remove(el)
		delete(c.entries, e.key)
	}
	for c.budget > 0 && c.used+sz > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.used -= victim.bytes()
		c.order.Remove(back)
		delete(c.entries, victim.key)
		c.evictions++
	}
	c.entries[e.key] = c.order.PushFront(e)
	c.used += sz
}

// invalidateTag evicts every entry whose tag matches, returning the count.
// Content addressing already keeps stale entries unreachable (a mutated
// graph has a new hash, hence new keys); invalidation reclaims the bytes
// of dead subgraph answers instead of waiting for LRU pressure.
func (c *resultCache) invalidateTag(tag string) int {
	if tag == "" {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var victims []*list.Element
	for el := c.order.Front(); el != nil; el = el.Next() {
		if el.Value.(*cacheEntry).tag == tag {
			victims = append(victims, el)
		}
	}
	for _, el := range victims {
		e := el.Value.(*cacheEntry)
		c.used -= e.bytes()
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.invalidations++
	}
	return len(victims)
}

// do runs solve for key exactly once across concurrent callers: the first
// caller becomes the leader and executes solve; followers block until the
// leader finishes (or their own ctx expires) and share its outcome. The
// bool result reports whether this caller was a follower (the solve was
// shared).
func (c *resultCache) do(ctx context.Context, key string, solve func() (*cacheEntry, error)) (*cacheEntry, bool, error) {
	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		c.dedups++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.entry, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.entry, f.err = solve()
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return f.entry, false, f.err
}

// stats returns a snapshot of the counters for /metrics.
func (c *resultCache) stats() (hits, misses, evictions, dedups, invalidations, used int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.dedups, c.invalidations, c.used, len(c.entries)
}

// specTarget is what a generator-spec fingerprint resolves to: the
// content-addressed cache key of the solve and the graph's hash.
type specTarget struct {
	key  string
	hash string
}

// specMemo maps a generator-spec request fingerprint to its specTarget so
// repeat spec requests skip graph construction and canonicalization on the
// hot path. It is a pure accelerator: the result cache stays authoritative
// (a memo hit whose cache line was evicted falls back to the full path),
// so stale entries cost a rebuild, never a wrong answer. Bounded FIFO —
// specs are tiny and uniform, recency tracking isn't worth the churn.
type specMemo struct {
	mu    sync.Mutex
	cap   int
	order *list.List // of string (spec fingerprint), front = oldest
	m     map[string]specTarget
}

func newSpecMemo(capacity int) *specMemo {
	return &specMemo{cap: capacity, order: list.New(), m: make(map[string]specTarget)}
}

func (s *specMemo) get(spec string) (specTarget, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.m[spec]
	return t, ok
}

func (s *specMemo) put(spec string, t specTarget) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[spec]; ok {
		s.m[spec] = t
		return
	}
	s.m[spec] = t
	s.order.PushBack(spec)
	for s.cap > 0 && len(s.m) > s.cap {
		oldest := s.order.Front()
		s.order.Remove(oldest)
		delete(s.m, oldest.Value.(string))
	}
}
