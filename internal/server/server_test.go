package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distmwis/internal/fault"
	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/maxis"
	"distmwis/internal/mis"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Drain()
	})
	return s, ts
}

func postSolve(t *testing.T, ts *httptest.Server, req SolveRequest) (int, SolveResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp SolveResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return httpResp.StatusCode, resp
}

func indicesToSet(n int, idx []int32) []bool {
	set := make([]bool, n)
	for _, v := range idx {
		set[v] = true
	}
	return set
}

func TestSolveDeterminismMatchesCLI(t *testing.T) {
	// The correctness contract: a solve served over HTTP returns the
	// bit-identical independent set the cmd/maxis pipeline computes for the
	// same graph, algorithm and seed.
	_, ts := newTestServer(t, Options{Workers: 2})
	g := gen.Weighted(gen.GNP(150, 0.05, 42), gen.PolyWeights(2), 42)

	code, resp := postSolve(t, ts, SolveRequest{
		Gen:  &GenSpec{Kind: "gnp", N: 150, P: 0.05, Weights: "poly2", Seed: 42},
		Alg:  "theorem2",
		Seed: 42,
	})
	if code != http.StatusOK || resp.Status != "done" {
		t.Fatalf("solve failed: code=%d resp=%+v", code, resp)
	}

	want, err := maxis.Solve("theorem2", g, 0.5, 0, maxis.Config{Seed: 42, MIS: mis.Luby{}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := indicesToSet(g.N(), resp.Set)
	if !graph.SameSet(got, want.Set) {
		t.Fatal("HTTP result differs from the direct library run on the same seed")
	}
	if resp.Weight != want.Weight || resp.Rounds != want.Metrics.Rounds {
		t.Fatalf("metrics drift: weight %d/%d rounds %d/%d",
			resp.Weight, want.Weight, resp.Rounds, want.Metrics.Rounds)
	}
	if resp.GraphHash != g.HashString() {
		t.Fatalf("graph hash mismatch: %s vs %s", resp.GraphHash, g.HashString())
	}
}

func TestSolveDeterminismWithReliableAndFaults(t *testing.T) {
	// Same contract under -reliable with a message-fault schedule: the
	// transport makes the execution bit-identical to fault-free, and the
	// service must reproduce exactly what the CLI wiring computes.
	_, ts := newTestServer(t, Options{Workers: 2})
	g := gen.Weighted(gen.GNP(80, 0.06, 7), gen.UniformWeights(100), 7)

	req := SolveRequest{
		Gen:      &GenSpec{Kind: "gnp", N: 80, P: 0.06, Weights: "uniform", MaxW: 100, Seed: 7},
		Alg:      "goodnodes",
		Seed:     7,
		Reliable: true,
		Fault:    &FaultSpec{Loss: 0.2, Dup: 0.05},
	}
	code, resp := postSolve(t, ts, req)
	if code != http.StatusOK || resp.Status != "done" {
		t.Fatalf("solve failed: code=%d resp=%+v", code, resp)
	}

	sched := fault.Schedule{Seed: 7 + 77, Loss: 0.2, Dup: 0.05, CrashAt: 3}
	cfg := maxis.Config{
		Seed: 7, MIS: mis.Luby{}, Workers: 1,
		Reliable: true, Faults: sched, MaxWeight: 100,
	}
	want, err := maxis.Solve("goodnodes", g, 0.5, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := indicesToSet(g.N(), resp.Set)
	if !graph.SameSet(got, want.Set) {
		t.Fatal("reliable+faults HTTP result differs from the CLI-equivalent run")
	}
	if !g.IsIndependentSet(got) {
		t.Fatal("returned set is not independent")
	}
}

func TestSolveInlineGraphAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	g := gen.Weighted(gen.GNP(100, 0.05, 5), gen.PolyWeights(2), 5)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	req := SolveRequest{Graph: json.RawMessage(buf.Bytes()), Alg: "goodnodes", Seed: 5}

	code, first := postSolve(t, ts, req)
	if code != http.StatusOK || first.Cached {
		t.Fatalf("first solve: code=%d cached=%t", code, first.Cached)
	}
	code, second := postSolve(t, ts, req)
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("second solve should be a cache hit: code=%d cached=%t", code, second.Cached)
	}
	if fmt.Sprint(first.Set) != fmt.Sprint(second.Set) || first.Weight != second.Weight {
		t.Fatal("cached result differs from the original solve")
	}
	hits, _, _, _, _, _, _ := s.cache.stats()
	if hits == 0 {
		t.Fatal("cache hit counter not incremented")
	}

	// The same graph posted as a gen spec hits the same cache line: the key
	// is content-addressed, not request-shaped.
	code, third := postSolve(t, ts, SolveRequest{
		Gen: &GenSpec{Kind: "gnp", N: 100, P: 0.05, Weights: "poly2", Seed: 5}, Alg: "goodnodes", Seed: 5,
	})
	if code != http.StatusOK || !third.Cached {
		t.Fatalf("gen-spec equivalent should hit the cache: cached=%t", third.Cached)
	}
}

func TestSolveAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	code, resp := postSolve(t, ts, SolveRequest{
		Gen:   &GenSpec{Kind: "cycle", N: 64},
		Alg:   "goodnodes",
		Async: true,
	})
	if code != http.StatusAccepted || resp.ID == "" {
		t.Fatalf("async submit: code=%d resp=%+v", code, resp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		httpResp, err := http.Get(ts.URL + "/v1/jobs/" + resp.ID)
		if err != nil {
			t.Fatal(err)
		}
		var jr SolveResponse
		if err := json.NewDecoder(httpResp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		httpResp.Body.Close()
		if jr.Status == "done" {
			if len(jr.Set) == 0 || jr.Weight <= 0 {
				t.Fatalf("done job missing result: %+v", jr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", resp.ID, jr)
		}
		time.Sleep(10 * time.Millisecond)
	}

	httpResp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: code=%d, want 404", httpResp.StatusCode)
	}
}

func TestSolveValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		req  SolveRequest
	}{
		{"no-graph", SolveRequest{Alg: "theorem2"}},
		{"both-graphs", SolveRequest{Graph: json.RawMessage(`{"n":1,"edges":[]}`), Gen: &GenSpec{Kind: "cycle", N: 4}}},
		{"bad-alg", SolveRequest{Gen: &GenSpec{Kind: "cycle", N: 4}, Alg: "nope"}},
		{"bad-kind", SolveRequest{Gen: &GenSpec{Kind: "nope", N: 4}}},
		{"bad-mis", SolveRequest{Gen: &GenSpec{Kind: "cycle", N: 4}, MIS: "nope"}},
		{"bad-priority", SolveRequest{Gen: &GenSpec{Kind: "cycle", N: 4}, Priority: "urgent"}},
		{"checkpoint-without-reliable", SolveRequest{Gen: &GenSpec{Kind: "cycle", N: 4}, CheckpointEvery: 4}},
		{"negative-n", SolveRequest{Gen: &GenSpec{Kind: "cycle", N: -1}}},
		{"bad-fault", SolveRequest{Gen: &GenSpec{Kind: "cycle", N: 4}, Fault: &FaultSpec{Loss: 1.5}}},
	}
	for _, tc := range cases {
		code, resp := postSolve(t, ts, tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: code=%d (resp %+v), want 400", tc.name, code, resp)
		}
		if resp.Error == "" {
			t.Errorf("%s: error message missing", tc.name)
		}
	}
}

func TestRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Rate: 0.0001, Burst: 1})
	req := SolveRequest{Gen: &GenSpec{Kind: "cycle", N: 16}, Alg: "goodnodes"}
	code, _ := postSolve(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("first request should pass: %d", code)
	}
	code, _ = postSolve(t, ts, req)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request should be rate-limited: %d", code)
	}
}

func TestLoadSheddingDegradesButStaysValid(t *testing.T) {
	// One worker, shed threshold 1: hold the worker with a blocker, park one
	// job in the queue; the next request must be answered degraded.
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8, ShedDepth: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	if err := s.sched.submit(newTestJob("interactive", func() { close(started); <-block })); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.sched.submit(newTestJob("interactive", func() {})); err != nil {
		t.Fatal(err)
	}
	defer close(block)
	if s.sched.depth() < 1 {
		t.Fatal("queue should hold one parked job")
	}

	g := gen.Weighted(gen.GNP(200, 0.05, 99), gen.PolyWeights(2), 99)
	code, resp := postSolve(t, ts, SolveRequest{
		Gen: &GenSpec{Kind: "gnp", N: 200, P: 0.05, Weights: "poly2", Seed: 99}, Alg: "theorem2", Seed: 99,
	})
	if code != http.StatusOK || !resp.Degraded {
		t.Fatalf("expected degraded response: code=%d degraded=%t", code, resp.Degraded)
	}
	set := indicesToSet(g.N(), resp.Set)
	if !g.IsIndependentSet(set) {
		t.Fatal("degraded response is not an independent set")
	}
	if resp.Weight != g.SetWeight(set) {
		t.Fatal("degraded weight mismatch")
	}
}

func TestGracefulShutdown(t *testing.T) {
	// SIGTERM semantics: in-flight jobs complete, new submissions get 503,
	// drain returns within the timeout.
	s, ts := newTestServer(t, Options{Workers: 1, DrainTimeout: 10 * time.Second})
	// Hold the only worker so the HTTP job below stays in flight (queued)
	// across the shutdown sequence.
	block := make(chan struct{})
	started := make(chan struct{})
	if err := s.sched.submit(newTestJob("interactive", func() { close(started); <-block })); err != nil {
		t.Fatal(err)
	}
	<-started
	inflight := SolveRequest{
		Gen: &GenSpec{Kind: "gnp", N: 300, P: 0.04, Weights: "poly2", Seed: 3}, Alg: "goodnodes", NoCache: true,
	}
	type outcome struct {
		code int
		resp SolveResponse
	}
	ch := make(chan outcome, 1)
	go func() {
		code, resp := postSolve(t, ts, inflight)
		ch <- outcome{code, resp}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.depth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.sched.depth() == 0 {
		t.Fatal("solve never queued")
	}

	s.BeginShutdown()

	// New work is rejected with 503 while draining.
	code, _ := postSolve(t, ts, SolveRequest{Gen: &GenSpec{Kind: "cycle", N: 8}, Alg: "goodnodes"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: code=%d, want 503", code)
	}
	// /readyz flips to 503; /healthz stays 200.
	if r, err := http.Get(ts.URL + "/readyz"); err != nil || r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %v %d", err, r.StatusCode)
	} else {
		r.Body.Close()
	}
	if r, err := http.Get(ts.URL + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %v %d", err, r.StatusCode)
	} else {
		r.Body.Close()
	}

	close(block) // release the worker; drain must now finish the queued job
	start := time.Now()
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain exceeded timeout: %v", elapsed)
	}
	out := <-ch
	if out.code != http.StatusOK || out.resp.Status != "done" {
		t.Fatalf("in-flight job did not complete cleanly: code=%d resp=%+v", out.code, out.resp)
	}
}

func TestDeadlineExpiredInQueue(t *testing.T) {
	// ShedDepth high enough that the deadline, not shedding, decides.
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8, ShedDepth: 100})
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the only worker outside the HTTP path.
	if err := s.sched.submit(newTestJob("interactive", func() { close(started); <-block })); err != nil {
		t.Fatal(err)
	}
	<-started
	defer close(block)

	code, resp := postSolve(t, ts, SolveRequest{
		Gen:        &GenSpec{Kind: "cycle", N: 32},
		Alg:        "goodnodes",
		DeadlineMS: 50,
		NoCache:    true,
	})
	if code != http.StatusGatewayTimeout || resp.Status != "deadline" {
		t.Fatalf("queued-past-deadline job: code=%d resp=%+v, want 504/deadline", code, resp)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := SolveRequest{Gen: &GenSpec{Kind: "gnp", N: 60, P: 0.1, Seed: 2}, Alg: "goodnodes", Seed: 2}
	postSolve(t, ts, req)
	postSolve(t, ts, req) // cache hit

	httpResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, httpResp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"maxisd_requests_total 2",
		"maxisd_cache_hits_total 1",
		"maxisd_cache_misses_total 1",
		"maxisd_engine_rounds_total",
		"maxisd_queue_depth",
		`maxisd_solve_latency_seconds{alg="goodnodes",quantile="0.99"}`,
		`maxisd_solve_latency_seconds{alg="cache_hit",quantile="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
