package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func entryOf(key string, n int) *cacheEntry {
	e := &cacheEntry{key: key}
	for i := 0; i < n; i++ {
		e.set = append(e.set, int32(i))
	}
	return e
}

func TestCacheLRUEvictionByBytes(t *testing.T) {
	// All entries are the same shape, so size them once and budget for
	// exactly three.
	size := entryOf("k000", 10).bytes()
	c := newResultCache(3 * size)
	for i := 0; i < 4; i++ {
		c.put(entryOf(fmt.Sprintf("k%03d", i), 10))
	}
	if _, ok := c.get("k000"); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.get(fmt.Sprintf("k%03d", i)); !ok {
			t.Fatalf("entry k%03d missing", i)
		}
	}
	_, _, evictions, _, _, used, entries := c.stats()
	if evictions != 1 || entries != 3 {
		t.Fatalf("evictions=%d entries=%d, want 1 and 3", evictions, entries)
	}
	if used != 3*size {
		t.Fatalf("used=%d, want %d", used, 3*size)
	}
}

func TestCacheLRURecencyOrder(t *testing.T) {
	c := newResultCache(3 * entryOf("k000", 10).bytes())
	c.put(entryOf("k000", 10))
	c.put(entryOf("k001", 10))
	c.put(entryOf("k002", 10))
	// Touch k000 so k001 becomes the LRU victim.
	if _, ok := c.get("k000"); !ok {
		t.Fatal("k000 should be present")
	}
	c.put(entryOf("k003", 10))
	if _, ok := c.get("k001"); ok {
		t.Fatal("k001 should have been evicted (least recently used)")
	}
	if _, ok := c.get("k000"); !ok {
		t.Fatal("recently used k000 should survive")
	}
}

func TestCacheRejectsOversizedEntry(t *testing.T) {
	c := newResultCache(100)
	c.put(entryOf("big0", 1000))
	if _, ok := c.get("big0"); ok {
		t.Fatal("entry larger than the whole budget must not be stored")
	}
}

// TestCacheBudgetHoldsUnderDegradedEntries is the regression test for the
// old "independent sets are small" accounting: degraded-tier greedy answers
// on sparse graphs have Θ(n) members, and their slices arrive with whatever
// capacity the solver's append-doubling left behind. The old bytes()
// charged 4·len + 64 flat, so a stream of such entries drove used past the
// budget by orders of magnitude. This pins the two halves of the fix: cap
// is charged (not len) and used never exceeds budget at any point of an
// adversarial insertion stream.
func TestCacheBudgetHoldsUnderDegradedEntries(t *testing.T) {
	// A degraded-tier-shaped entry: Θ(n) members, slack capacity from
	// append growth, sha256-hex-length key.
	degraded := func(i, members int) *cacheEntry {
		set := make([]int32, members, 2*members) // adversarial slack: cap = 2·len
		for j := range set {
			set[j] = int32(j)
		}
		return &cacheEntry{
			key:      fmt.Sprintf("%064d", i),
			set:      set,
			degraded: true,
		}
	}
	if small, big := degraded(0, 100).bytes(), degraded(0, 100); small < int64(4*cap(big.set)) {
		t.Fatalf("bytes()=%d does not cover the %d-byte backing array (len-based undercount)", small, 4*cap(big.set))
	}

	const budget = 1 << 16 // 64 KiB: a handful of large entries
	c := newResultCache(budget)
	for i := 0; i < 200; i++ {
		c.put(degraded(i, 1000+13*i))
		_, _, _, _, _, used, entries := c.stats()
		if used > budget {
			t.Fatalf("after put %d: used=%d exceeds budget=%d (entries=%d)", i, used, budget, entries)
		}
	}
	// The budget must hold because entries were evicted, not because
	// nothing fit: the cache should still be serving recent entries.
	_, _, evictions, _, _, used, entries := c.stats()
	if entries == 0 || evictions == 0 {
		t.Fatalf("vacuous run: entries=%d evictions=%d", entries, evictions)
	}
	if used > budget {
		t.Fatalf("final used=%d exceeds budget=%d", used, budget)
	}
	// And the accounting must be exact: used equals the sum over resident
	// entries of bytes(), so drift cannot accumulate across evictions.
	var sum int64
	for i := 0; i < 200; i++ {
		if e, ok := c.get(fmt.Sprintf("%064d", i)); ok {
			sum += e.bytes()
		}
	}
	if sum != used {
		t.Fatalf("used=%d but resident entries sum to %d (accounting drift)", used, sum)
	}
}

func TestCacheOverwriteSameKey(t *testing.T) {
	c := newResultCache(1 << 20)
	c.put(entryOf("same", 10))
	c.put(entryOf("same", 20))
	e, ok := c.get("same")
	if !ok || len(e.set) != 20 {
		t.Fatalf("overwrite failed: ok=%t len=%d", ok, len(e.set))
	}
	_, _, _, _, _, used, entries := c.stats()
	if entries != 1 {
		t.Fatalf("entries=%d, want 1", entries)
	}
	want := entryOf("same", 20).bytes()
	if used != want {
		t.Fatalf("used=%d, want %d (stale size leaked)", used, want)
	}
}

func TestSingleFlightDeduplicates(t *testing.T) {
	c := newResultCache(1 << 20)
	var solves atomic.Int64
	release := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	leaders := int64(0)
	var mu sync.Mutex
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, shared, err := c.do(context.Background(), "dup", func() (*cacheEntry, error) {
				solves.Add(1)
				<-release
				return entryOf("dup", 5), nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
				return
			}
			if len(e.set) != 5 {
				t.Errorf("wrong entry shared")
			}
			if !shared {
				mu.Lock()
				leaders++
				mu.Unlock()
			}
		}()
	}
	// Give followers time to attach before releasing the leader.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := solves.Load(); got != 1 {
		t.Fatalf("%d solves for %d concurrent identical requests, want 1", got, callers)
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders)
	}
}

func TestSingleFlightFollowerDeadline(t *testing.T) {
	c := newResultCache(1 << 20)
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go func() {
		_, _, _ = c.do(context.Background(), "slow", func() (*cacheEntry, error) {
			close(started)
			<-release
			return entryOf("slow", 1), nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, shared, err := c.do(ctx, "slow", func() (*cacheEntry, error) {
		t.Error("follower must not start its own solve")
		return nil, nil
	})
	if !shared || err == nil {
		t.Fatalf("follower should time out waiting: shared=%t err=%v", shared, err)
	}
}

func TestSpecMemoBoundedFIFO(t *testing.T) {
	m := newSpecMemo(2)
	m.put("a", specTarget{key: "k1", hash: "h1"})
	m.put("b", specTarget{key: "k2", hash: "h2"})
	if got, ok := m.get("a"); !ok || got.key != "k1" || got.hash != "h1" {
		t.Fatalf("get(a) = %+v, %v", got, ok)
	}
	// Update in place must not grow the memo or change eviction order.
	m.put("a", specTarget{key: "k1b", hash: "h1b"})
	if got, _ := m.get("a"); got.key != "k1b" {
		t.Fatalf("update lost: %+v", got)
	}
	// Third insert evicts the oldest ("a": FIFO, recency is not tracked).
	m.put("c", specTarget{key: "k3", hash: "h3"})
	if _, ok := m.get("a"); ok {
		t.Error("oldest entry not evicted at capacity")
	}
	for _, want := range []string{"b", "c"} {
		if _, ok := m.get(want); !ok {
			t.Errorf("entry %q missing after eviction", want)
		}
	}
}
