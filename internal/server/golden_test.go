package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"distmwis/internal/maxis"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata golden files")

// TestGoldenSolveResponses pins the POST /v1/solve response body for every
// algorithm across the protocol-registry refactor. The volatile fields
// (id, elapsed_ms) are normalised before comparison; everything else —
// set, weight, graph hash, counters, status — must be byte-identical to
// the goldens generated from the pre-refactor tree.
func TestGoldenSolveResponses(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	algs := maxis.AlgorithmNames()
	got := make(map[string]json.RawMessage, len(algs))
	for _, alg := range algs {
		spec := &GenSpec{Kind: "gnp", N: 40, P: 0.1, Weights: "poly2", Seed: 7}
		if alg == "theorem5" {
			spec.Weights = "" // theorem5 rejects weighted inputs by contract
		}
		body, err := json.Marshal(SolveRequest{Gen: spec, Alg: alg, Seed: 3, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		httpResp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := normalizeResponseBody(httpResp.Body)
		httpResp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if httpResp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", alg, httpResp.StatusCode, raw)
		}
		got[alg] = raw
	}

	path := filepath.Join("testdata", "golden_responses.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d responses to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for alg, wantBody := range want {
		// The golden file stores each body indented; compact before the
		// byte comparison so only real content drift fails the test.
		var buf bytes.Buffer
		if err := json.Compact(&buf, wantBody); err != nil {
			t.Fatalf("%s: bad golden body: %v", alg, err)
		}
		if !bytes.Equal(got[alg], buf.Bytes()) {
			t.Errorf("response drift for %s:\n got  %s\n want %s", alg, got[alg], buf.Bytes())
		}
	}
	for alg := range got {
		if _, ok := want[alg]; !ok {
			t.Errorf("algorithm %s missing from golden file (regenerate with -update-golden)", alg)
		}
	}
}

// normalizeResponseBody re-marshals a SolveResponse with the per-request
// volatile fields cleared, yielding a canonical byte form.
func normalizeResponseBody(r interface{ Read([]byte) (int, error) }) ([]byte, error) {
	var resp SolveResponse
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		return nil, err
	}
	resp.ID = ""
	resp.ElapsedMS = 0
	return json.Marshal(resp)
}
