package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/maxis"
	"distmwis/internal/plan"
	"distmwis/internal/protocol"
	"distmwis/internal/reliable"
	"distmwis/internal/repair"
)

// This file is the dynamic-graph subsystem: named graph handles that
// clients create with PUT /v1/graph and mutate with PATCH /v1/graph/{hash}.
//
// A handle is identified by content hash, and every hash it has ever had
// keeps resolving to it — clients can hold an old hash across someone
// else's PATCH and still reach the current state (last write wins). Graphs
// themselves stay immutable: a PATCH rebuilds a new *graph.Graph, so
// in-flight solves and queued repair tasks holding the old snapshot remain
// sound.
//
// Durability mirrors the request journal (journal.go) but records state
// changes, not pending work: every accepted PUT and PATCH is an apply
// record in its own reliable.WAL, fsynced before the acknowledgement.
// PATCH records carry the expected resulting hash, so boot-time replay
// verifies bit-identical reconstruction — ApplyEdit is deterministic, so a
// hash mismatch can only mean a corrupt journal, which is refused loudly
// rather than served quietly. After replay the journal is snapshot-
// compacted (Rewrite): one put record per live handle, so it is bounded by
// live state, not mutation history.
//
// Each mutation also drives the self-healing pipeline:
//
//  1. connected components whose content vanished are invalidated from the
//     result cache at component granularity (the metric counts them);
//  2. the handle's last full answer, if any, is carried onto the new graph
//     and healed with reliable.Repair — independence restored immediately,
//     optimality degraded — and published in the answers registry;
//  3. a repair-tier task is enqueued to upgrade that degraded answer to
//     "improved" (budgeted greedy re-admission) and then "full" (a real
//     component-wise re-solve), republishing at each step.

// dynGraph is one mutable graph handle. All fields are guarded by the
// owning graphStore's mutex; g itself is immutable and may be snapshotted
// out under the lock and used freely after.
type dynGraph struct {
	id      string // journal identity, stable across hash changes
	g       *graph.Graph
	hash    string
	aliases []string // prior hashes, oldest first
	version int      // PATCHes applied since PUT

	// compHashes is the content-hash set of the current components — the
	// diff base for component-granular invalidation.
	compHashes map[string]bool

	// The last full-quality answer served for this handle, with the
	// normalized request that produced it: the seed the healing pipeline
	// repairs onto the next version.
	lastReq *SolveRequest
	lastSet []bool
}

// graphStore holds every dynamic graph handle, indexed by all their hashes.
type graphStore struct {
	mu     sync.Mutex
	byHash map[string]*dynGraph
	order  []*dynGraph // insertion order, for deterministic snapshots
	seq    int
	wal    *reliable.WAL

	mutations    int64
	invalidated  int64
	healed       int64
	casConflicts int64
}

// short abbreviates a content hash for error messages.
func short(h string) string {
	if len(h) > 19 {
		return h[:19] + "…"
	}
	return h
}

func newGraphStore() *graphStore {
	return &graphStore{byHash: make(map[string]*dynGraph)}
}

// graphWALData is the payload of one graph-journal apply record.
type graphWALData struct {
	Kind string `json:"kind"` // "put" or "patch"
	// Graph is the jsonDoc bytes of a put (or snapshot) record.
	Graph json.RawMessage `json:"graph,omitempty"`
	// Aliases restores prior hashes on snapshot records so stale client
	// handles survive restarts.
	Aliases []string `json:"aliases,omitempty"`
	Version int      `json:"version,omitempty"`
	// Prev/Next frame a patch record: the edit applies to the graph whose
	// hash is Prev and must yield the graph whose hash is Next.
	Prev string      `json:"prev,omitempty"`
	Next string      `json:"next,omitempty"`
	Edit *graph.Edit `json:"edit,omitempty"`
}

// componentHashes computes the content-hash set of g's components.
func componentHashes(g *graph.Graph) map[string]bool {
	comp, count := g.Components()
	out := make(map[string]bool, count)
	keep := make([]bool, g.N())
	for c := 0; c < count; c++ {
		for v := range keep {
			keep[v] = comp[v] == int32(c)
		}
		out[g.Induce(keep).G.HashString()] = true
	}
	return out
}

// register creates a handle for g under the store lock.
func (gs *graphStore) register(id string, g *graph.Graph, aliases []string, version int) *dynGraph {
	h := &dynGraph{
		id:         id,
		g:          g,
		hash:       g.HashString(),
		aliases:    aliases,
		version:    version,
		compHashes: componentHashes(g),
	}
	gs.byHash[h.hash] = h
	for _, a := range aliases {
		gs.byHash[a] = h
	}
	gs.order = append(gs.order, h)
	return h
}

// snapshot returns the handle's current graph and hash (immutable values,
// safe to use unlocked).
func (gs *graphStore) snapshot(hash string) (*graph.Graph, string, bool) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	h, ok := gs.byHash[hash]
	if !ok {
		return nil, "", false
	}
	return h.g, h.hash, true
}

// OpenGraphJournal attaches the graph write-ahead journal at path and
// replays it: put records re-register handles, patch records re-apply
// their edits and are verified against the journaled resulting hash.
// After replay the journal is snapshot-compacted to one record per live
// handle. Must be called before traffic, at most once. Returns the number
// of records replayed.
func (s *Server) OpenGraphJournal(path string) (int, error) {
	gs := s.graphs
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.wal != nil {
		return 0, fmt.Errorf("server: graph journal already open at %s", gs.wal.Path())
	}
	wal, retained, err := reliable.OpenWAL(path)
	if err != nil {
		return 0, err
	}
	// Mutation storms ack at fsync cadence, so the graph WAL group-commits:
	// appends landing within the window share one sync, still blocking the
	// acknowledgement until their record is durable.
	window := s.opts.GraphJournalGroupWindow
	if window == 0 {
		window = 2 * time.Millisecond
	}
	if window > 0 {
		batch := s.opts.GraphJournalGroupBatch
		if batch <= 0 {
			batch = 32
		}
		wal.SetGroupCommit(window, batch)
	}
	replayed := 0
	for _, rec := range reliable.ApplyWAL(retained) {
		var d graphWALData
		if err := json.Unmarshal(rec.Data, &d); err != nil {
			wal.Close()
			return 0, fmt.Errorf("server: graph journal %s: %w", rec.ID, err)
		}
		switch d.Kind {
		case "put":
			g, err := graph.ReadJSON(bytes.NewReader(d.Graph))
			if err != nil {
				wal.Close()
				return 0, fmt.Errorf("server: graph journal %s: %w", rec.ID, err)
			}
			gs.register(rec.ID, g, d.Aliases, d.Version)
			gs.seq++
		case "patch":
			h, ok := gs.byHash[d.Prev]
			if !ok || h.hash != d.Prev || d.Edit == nil {
				wal.Close()
				return 0, fmt.Errorf("server: graph journal %s: patch against unknown state %s", rec.ID, d.Prev)
			}
			ng, _, err := h.g.ApplyEdit(*d.Edit)
			if err != nil {
				wal.Close()
				return 0, fmt.Errorf("server: graph journal %s: %w", rec.ID, err)
			}
			if got := ng.HashString(); got != d.Next {
				// Deterministic replay means this is impossible on an intact
				// journal; refusing to boot beats serving forked state.
				wal.Close()
				return 0, fmt.Errorf("server: graph journal %s: replay hash %s != journaled %s", rec.ID, got, d.Next)
			}
			gs.advance(h, ng)
		default:
			wal.Close()
			return 0, fmt.Errorf("server: graph journal %s: unknown kind %q", rec.ID, d.Kind)
		}
		replayed++
	}
	// Snapshot-compact: mutation history collapses to one put per handle.
	snap := make([]reliable.WALRecord, 0, len(gs.order))
	for _, h := range gs.order {
		data, err := putRecord(h)
		if err != nil {
			wal.Close()
			return 0, err
		}
		snap = append(snap, reliable.WALRecord{Op: reliable.WALApply, ID: h.id, Data: data})
	}
	if err := wal.Rewrite(snap); err != nil {
		wal.Close()
		return 0, err
	}
	gs.wal = wal
	return replayed, nil
}

func putRecord(h *dynGraph) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := h.g.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("server: graph journal snapshot %s: %w", h.id, err)
	}
	return json.Marshal(graphWALData{
		Kind:    "put",
		Graph:   buf.Bytes(),
		Aliases: h.aliases,
		Version: h.version,
	})
}

// advance moves a handle to a new graph version under the store lock: the
// old hash becomes an alias and the component diff base updates.
func (gs *graphStore) advance(h *dynGraph, ng *graph.Graph) (invalidated []string) {
	newComps := componentHashes(ng)
	for old := range h.compHashes {
		if !newComps[old] {
			invalidated = append(invalidated, old)
		}
	}
	sort.Strings(invalidated)
	if nh := ng.HashString(); nh != h.hash {
		h.aliases = append(h.aliases, h.hash)
		h.hash = nh
		gs.byHash[nh] = h
	}
	h.g = ng
	h.version++
	h.compHashes = newComps
	return invalidated
}

// PutGraphResponse is the body of PUT /v1/graph and GET /v1/graph/{hash}.
type PutGraphResponse struct {
	// Hash is the graph's current content hash — the handle name for
	// PATCH and for graph_ref solves.
	Hash string `json:"hash"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// Components is the connected-component count, the granularity of
	// cache invalidation.
	Components int `json:"components"`
	// Version counts PATCHes applied since PUT.
	Version int    `json:"version"`
	Error   string `json:"error,omitempty"`
}

// PatchGraphResponse is the body of PATCH /v1/graph/{hash}.
type PatchGraphResponse struct {
	// PrevHash/Hash are the content hashes before and after the edit. The
	// previous hash keeps resolving to this handle.
	PrevHash string `json:"prev_hash"`
	Hash     string `json:"hash"`
	Version  int    `json:"version"`
	// EdgesAdded/EdgesRemoved/WeightsSet/Noops echo the graph.EditReport.
	EdgesAdded   int `json:"edges_added"`
	EdgesRemoved int `json:"edges_removed"`
	WeightsSet   int `json:"weights_set"`
	Noops        int `json:"noops"`
	Components   int `json:"components"`
	// Conflict reports a compare-and-swap failure: the request named a
	// prev_hash that is not the handle's current hash. Hash carries the
	// current hash so the caller can re-read, rebase and retry.
	Conflict bool `json:"conflict,omitempty"`
	// InvalidatedComponents counts components of the previous version whose
	// cached answers were evicted because their content no longer exists.
	InvalidatedComponents int `json:"invalidated_components"`
	// Healed reports that the handle's last full answer was repaired onto
	// the new version and queued for background upgrade; AnswerKey is where
	// GET /v1/answers observes the degraded→improved→full progression.
	Healed    bool   `json:"healed,omitempty"`
	AnswerKey string `json:"answer_key,omitempty"`
	Error     string `json:"error,omitempty"`
}

func (s *Server) handlePutGraph(w http.ResponseWriter, r *http.Request) {
	if s.shutdown.Load() {
		writeJSON(w, http.StatusServiceUnavailable, PutGraphResponse{Error: "server is draining"})
		return
	}
	var raw json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		writeJSON(w, http.StatusBadRequest, PutGraphResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	g, err := graph.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, PutGraphResponse{Error: err.Error()})
		return
	}
	hash := g.HashString()

	gs := s.graphs
	gs.mu.Lock()
	if h, ok := gs.byHash[hash]; ok {
		// Idempotent PUT: the content already has a handle (possibly as a
		// prior version of one). Re-putting bytes that exist is a no-op.
		resp := putResponse(h)
		gs.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	gs.seq++
	id := fmt.Sprintf("g-%d", gs.seq)
	if gs.wal != nil {
		data, err := json.Marshal(graphWALData{Kind: "put", Graph: raw})
		if err == nil {
			err = gs.wal.Apply(id, json.RawMessage(data))
		}
		if err != nil {
			gs.mu.Unlock()
			writeJSON(w, http.StatusInternalServerError, PutGraphResponse{Error: fmt.Sprintf("journal: %v", err)})
			return
		}
	}
	h := gs.register(id, g, nil, 0)
	resp := putResponse(h)
	gs.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func putResponse(h *dynGraph) PutGraphResponse {
	return PutGraphResponse{
		Hash:       h.hash,
		N:          h.g.N(),
		M:          h.g.M(),
		Components: len(h.compHashes),
		Version:    h.version,
	}
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	gs := s.graphs
	gs.mu.Lock()
	h, ok := gs.byHash[r.PathValue("hash")]
	if !ok {
		gs.mu.Unlock()
		writeJSON(w, http.StatusNotFound, PutGraphResponse{Error: "unknown graph"})
		return
	}
	resp := putResponse(h)
	gs.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePatchGraph(w http.ResponseWriter, r *http.Request) {
	if s.shutdown.Load() {
		writeJSON(w, http.StatusServiceUnavailable, PatchGraphResponse{Error: "server is draining"})
		return
	}
	var body struct {
		graph.Edit
		// PrevHash, when set, makes the PATCH conditional: it applies only
		// if the handle's current hash equals PrevHash (compare-and-swap).
		PrevHash string `json:"prev_hash,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, PatchGraphResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	edit := body.Edit
	if edit.Empty() {
		writeJSON(w, http.StatusBadRequest, PatchGraphResponse{Error: "empty edit"})
		return
	}

	gs := s.graphs
	gs.mu.Lock()
	h, ok := gs.byHash[r.PathValue("hash")]
	if !ok {
		gs.mu.Unlock()
		writeJSON(w, http.StatusNotFound, PatchGraphResponse{Error: "unknown graph"})
		return
	}
	// The edit always applies to the handle's CURRENT state, whatever hash
	// named it: concurrent mutators serialize here, last write wins, and
	// each acknowledgement returns the hash its writer actually produced.
	// A prev_hash makes the write conditional instead: it must name the
	// current state exactly (an alias is not enough — an alias by
	// definition means someone else wrote in between), or the PATCH fails
	// with 409 and the current hash to rebase onto.
	prev := h.hash
	if body.PrevHash != "" && body.PrevHash != prev {
		version := h.version
		gs.casConflicts++
		gs.mu.Unlock()
		writeJSON(w, http.StatusConflict, PatchGraphResponse{
			PrevHash: body.PrevHash,
			Hash:     prev,
			Version:  version,
			Conflict: true,
			Error:    fmt.Sprintf("prev_hash %s is not the current state %s", short(body.PrevHash), short(prev)),
		})
		return
	}
	ng, rep, err := h.g.ApplyEdit(edit)
	if err != nil {
		gs.mu.Unlock()
		writeJSON(w, http.StatusBadRequest, PatchGraphResponse{Error: err.Error()})
		return
	}
	next := ng.HashString()
	// The write-ahead contract, same as for async jobs: the apply record —
	// with the expected resulting hash, for verified replay — is durable
	// before the mutation is acknowledged or even visible in memory.
	if gs.wal != nil {
		data, jerr := json.Marshal(graphWALData{Kind: "patch", Prev: prev, Next: next, Edit: &edit})
		if jerr == nil {
			jerr = gs.wal.Apply(h.id, json.RawMessage(data))
		}
		if jerr != nil {
			gs.mu.Unlock()
			writeJSON(w, http.StatusInternalServerError, PatchGraphResponse{Error: fmt.Sprintf("journal: %v", jerr)})
			return
		}
	}
	invalidated := gs.advance(h, ng)
	gs.mutations++
	gs.invalidated += int64(len(invalidated))
	// Snapshot what healing needs before releasing the lock.
	lastReq, lastSet := h.lastReq, h.lastSet
	version := h.version
	comps := len(h.compHashes)
	if lastSet != nil {
		gs.healed++
	}
	gs.mu.Unlock()

	for _, tag := range invalidated {
		s.cache.invalidateTag(tag)
	}
	s.cache.invalidateTag(prev)

	resp := PatchGraphResponse{
		PrevHash:              prev,
		Hash:                  next,
		Version:               version,
		EdgesAdded:            rep.EdgesAdded,
		EdgesRemoved:          rep.EdgesRemoved,
		WeightsSet:            rep.WeightsSet,
		Noops:                 rep.Noops,
		Components:            comps,
		InvalidatedComponents: len(invalidated),
	}
	if lastSet != nil {
		resp.Healed = true
		resp.AnswerKey = s.healAnswer(ng, next, lastReq, lastSet)
	}
	writeJSON(w, http.StatusOK, resp)
}

// healAnswer carries a full answer from the previous graph version onto the
// new one: node indices are stable across versions, so the old set is a
// valid candidate that at worst conflicts on freshly added edges.
// reliable.Repair withdraws the cheaper endpoint of each conflict, giving
// an immediately-publishable independent answer tagged degraded, and a
// repair-tier task upgrades it in the background. Returns the answer key.
func (s *Server) healAnswer(ng *graph.Graph, hash string, req *SolveRequest, prevSet []bool) string {
	set := append([]bool(nil), prevSet...)
	reliable.Repair(ng, set)
	key := s.refCacheKey(ng, req)
	s.answers.put(&storedAnswer{
		Key:       key,
		GraphHash: hash,
		Set:       boolsToIndices(set),
		Weight:    ng.SetWeight(set),
		Quality:   qualityDegraded,
		Alg:       "healed",
		Updated:   time.Now().UTC(),
	})
	s.enqueueUpgrade(key, hash, ng, set, req)
	return key
}

// enqueueUpgrade hands a degraded answer to the repair tier. The task
// snapshots the graph version it answers for; the Full callback re-solves
// component-wise through the same cache adapters as foreground ref solves,
// so the final answer is bit-identical to an unshedded solve.
//
// Between the greedy improved answer and the full solve the task climbs the
// planner's promotion ladder: one cheap whole-graph solve per budget step
// (16 then 256 rounds' worth of work), each published only if it beats the
// best weight so far. The ladder turns the degraded→full cliff into a
// staircase — clients polling the answer key see quality climb in steps
// whose cost the planner chose, not one long silence.
func (s *Server) enqueueUpgrade(key, hash string, g *graph.Graph, set []bool, req *SolveRequest) {
	cfg, err := req.maxisConfig(s.opts.SolveWorkers)
	if err != nil {
		return
	}
	cfg.Tracer = s.metrics.engine
	cfg.TraceLabel = req.Alg
	prof := protocol.ProfileOf(g)
	unit := int64(prof.N + 2*prof.M + 1)
	ladder := plan.Ladder(plan.Request{
		Profile: prof,
		Params:  protocol.Params{Eps: req.Eps, Alpha: req.Alpha},
		MIS:     cfg.MIS,
	}, []int64{16 * unit, 256 * unit})
	var rungs []repair.Rung
	for _, d := range ladder {
		if d.Alg == req.Alg {
			continue // the Full callback already computes exactly this
		}
		alg := d.Alg
		rungs = append(rungs, repair.Rung{Name: alg, Run: func() ([]bool, int64, error) {
			res, rerr := maxis.Solve(alg, g, req.Eps, req.Alpha, cfg)
			if rerr != nil {
				return nil, 0, rerr
			}
			return res.Set, res.Weight, nil
		}})
	}
	s.repairTier.Enqueue(repair.Task{
		Key:     key,
		G:       g,
		Start:   append([]bool(nil), set...),
		Rungs:   rungs,
		FullAlg: req.Alg,
		Full: func() ([]bool, int64, error) {
			res, _, err := s.solveComponents(req, g, cfg)
			if err != nil {
				return nil, 0, err
			}
			return res.Set, res.Weight, nil
		},
	})
}
