package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestJob(priority string, run func()) *job {
	return &job{
		id:       "t",
		priority: priority,
		ctx:      context.Background(),
		skipped:  make(chan struct{}),
		run:      func(context.Context) { run() },
	}
}

func TestSchedulerRunsJobs(t *testing.T) {
	s := newScheduler(2, 8)
	var done sync.WaitGroup
	var count atomic.Int64
	for i := 0; i < 6; i++ {
		done.Add(1)
		j := newTestJob("interactive", func() {
			count.Add(1)
			done.Done()
		})
		if err := s.submit(j); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	done.Wait()
	if count.Load() != 6 {
		t.Fatalf("ran %d jobs, want 6", count.Load())
	}
	if err := s.drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerQueueBound(t *testing.T) {
	s := newScheduler(1, 2)
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := s.submit(newTestJob("interactive", func() { <-block; wg.Done() })); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	// Wait until the worker picked up the blocker so the queue is empty.
	deadline := time.Now().Add(time.Second)
	for s.inflight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	accepted := 0
	for i := 0; i < 5; i++ {
		wg.Add(1)
		if err := s.submit(newTestJob("interactive", func() { wg.Done() })); err != nil {
			wg.Done()
			if err != errQueueFull {
				t.Fatalf("unexpected submit error: %v", err)
			}
			continue
		}
		accepted++
	}
	if accepted != 2 {
		t.Fatalf("accepted %d jobs beyond in-flight, want queue depth 2", accepted)
	}
	close(block)
	wg.Wait()
	if err := s.drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerStrictPriority(t *testing.T) {
	s := newScheduler(1, 16)
	block := make(chan struct{})
	started := make(chan struct{})
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	if err := s.submit(newTestJob("interactive", func() { close(started); <-block; wg.Done() })); err != nil {
		t.Fatal(err)
	}
	<-started // worker is busy; everything below queues up
	record := func(class string) func() {
		return func() {
			mu.Lock()
			order = append(order, class)
			mu.Unlock()
			wg.Done()
		}
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		if err := s.submit(newTestJob("batch", record("batch"))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		if err := s.submit(newTestJob("interactive", record("interactive"))); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	// All interactive jobs must run before any batch job even though the
	// batch jobs were enqueued first.
	for i, class := range order {
		if class == "interactive" && i >= 3 {
			t.Fatalf("interactive job ran at position %d: order %v", i, order)
		}
	}
	_ = s.drain(time.Second)
}

func TestSchedulerSkipsExpiredJobs(t *testing.T) {
	s := newScheduler(1, 8)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := s.submit(newTestJob("interactive", func() { close(started); <-block })); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:       "expired",
		priority: "interactive",
		ctx:      ctx,
		skipped:  make(chan struct{}),
		run: func(context.Context) {
			t.Error("expired job must not run")
		},
	}
	if err := s.submit(j); err != nil {
		t.Fatal(err)
	}
	cancel() // expire while queued
	close(block)
	select {
	case <-j.skipped:
	case <-time.After(time.Second):
		t.Fatal("expired job was not skipped")
	}
	if s.expired.Load() != 1 {
		t.Fatalf("expired counter = %d, want 1", s.expired.Load())
	}
	_ = s.drain(time.Second)
}

func TestSchedulerDrainCompletesQueuedJobs(t *testing.T) {
	s := newScheduler(1, 8)
	var count atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{})
	if err := s.submit(newTestJob("interactive", func() { close(started); <-block; count.Add(1) })); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 4; i++ {
		if err := s.submit(newTestJob("batch", func() { count.Add(1) })); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(block)
	}()
	if err := s.drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 5 {
		t.Fatalf("drain completed %d jobs, want all 5", count.Load())
	}
	if err := s.submit(newTestJob("interactive", func() {})); err != errDraining {
		t.Fatalf("submit after drain: %v, want errDraining", err)
	}
}

func TestSchedulerDrainTimeout(t *testing.T) {
	s := newScheduler(1, 2)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := s.submit(newTestJob("interactive", func() { close(started); <-block })); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.drain(30 * time.Millisecond); err == nil {
		t.Fatal("drain should time out while a job is stuck")
	}
	close(block)
}

func newPanicJob(msg string) *job {
	return &job{
		id:       "p",
		priority: "interactive",
		ctx:      context.Background(),
		skipped:  make(chan struct{}),
		failed:   make(chan error, 1),
		run:      func(context.Context) { panic(msg) },
	}
}

// TestSchedulerPanicIsolation pins the recovery contract: a panicking job
// fails with the typed error, the worker restarts, and the pool keeps
// serving.
func TestSchedulerPanicIsolation(t *testing.T) {
	s := newScheduler(1, 8)
	j := newPanicJob("boom")
	if err := s.submit(j); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-j.failed:
		if !errors.Is(err, errWorkerPanic) {
			t.Fatalf("failure error = %v, want errWorkerPanic", err)
		}
	case <-time.After(time.Second):
		t.Fatal("panicking job never reported failure")
	}
	// The replacement worker must pick up new jobs.
	done := make(chan struct{})
	if err := s.submit(newTestJob("interactive", func() { close(done) })); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("worker pool did not survive the panic")
	}
	if s.panics.Load() != 1 || s.restarts.Load() != 1 {
		t.Fatalf("panics=%d restarts=%d, want 1/1", s.panics.Load(), s.restarts.Load())
	}
	if err := s.drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerQueuedJobsSurviveWorkerCrash submits a panicking job ahead
// of queued batch work on a single-worker pool: everything queued behind
// the crash must still complete.
func TestSchedulerQueuedJobsSurviveWorkerCrash(t *testing.T) {
	s := newScheduler(1, 16)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := s.submit(newTestJob("interactive", func() { close(started); <-block })); err != nil {
		t.Fatal(err)
	}
	<-started
	bomb := newPanicJob("crash with a backlog")
	if err := s.submit(bomb); err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		if err := s.submit(newTestJob("batch", func() { count.Add(1); wg.Done() })); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	wg.Wait()
	if count.Load() != 5 {
		t.Fatalf("completed %d queued jobs after the crash, want 5", count.Load())
	}
	select {
	case err := <-bomb.failed:
		if !errors.Is(err, errWorkerPanic) {
			t.Fatalf("bomb error = %v", err)
		}
	default:
		t.Fatal("bomb never failed")
	}
	if err := s.drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerDrainDuringPanicRestart drains while panicking jobs are
// still being executed: the replacement workers inherit the WaitGroup
// slots, so drain accounting stays exact and every queued job resolves.
func TestSchedulerDrainDuringPanicRestart(t *testing.T) {
	s := newScheduler(2, 64)
	var completed atomic.Int64
	bombs := make([]*job, 0, 8)
	for i := 0; i < 24; i++ {
		if i%3 == 0 {
			b := newPanicJob("mid-drain crash")
			bombs = append(bombs, b)
			if err := s.submit(b); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := s.submit(newTestJob("batch", func() { completed.Add(1) })); err != nil {
			t.Fatal(err)
		}
	}
	// Drain immediately: restarts happen while the drain is in progress.
	if err := s.drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if completed.Load() != 16 {
		t.Fatalf("drain completed %d jobs, want 16", completed.Load())
	}
	for i, b := range bombs {
		select {
		case err := <-b.failed:
			if !errors.Is(err, errWorkerPanic) {
				t.Fatalf("bomb %d error = %v", i, err)
			}
		default:
			t.Fatalf("bomb %d never failed", i)
		}
	}
	if got := s.restarts.Load(); got != int64(len(bombs)) {
		t.Fatalf("restarts = %d, want %d", got, len(bombs))
	}
}

// TestSchedulerChaosHookPanicIsolated routes a panic through the chaos
// hook seam instead of the job body: same typed failure, same restart.
func TestSchedulerChaosHookPanicIsolated(t *testing.T) {
	s := newScheduler(1, 8)
	s.hook = func(seq int64, id string) {
		if seq == 1 {
			panic("chaos: scheduled worker panic")
		}
	}
	j := newPanicJob("unused") // run never executes; the hook panics first
	j.run = func(context.Context) { t.Error("run must not execute when the hook panics") }
	if err := s.submit(j); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-j.failed:
		if !errors.Is(err, errWorkerPanic) {
			t.Fatalf("hook panic error = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("hook panic was not delivered")
	}
	done := make(chan struct{})
	if err := s.submit(newTestJob("interactive", func() { close(done) })); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("pool dead after hook panic")
	}
	_ = s.drain(time.Second)
}
