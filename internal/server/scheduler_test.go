package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestJob(priority string, run func()) *job {
	return &job{
		id:       "t",
		priority: priority,
		ctx:      context.Background(),
		skipped:  make(chan struct{}),
		run:      func(context.Context) { run() },
	}
}

func TestSchedulerRunsJobs(t *testing.T) {
	s := newScheduler(2, 8)
	var done sync.WaitGroup
	var count atomic.Int64
	for i := 0; i < 6; i++ {
		done.Add(1)
		j := newTestJob("interactive", func() {
			count.Add(1)
			done.Done()
		})
		if err := s.submit(j); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	done.Wait()
	if count.Load() != 6 {
		t.Fatalf("ran %d jobs, want 6", count.Load())
	}
	if err := s.drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerQueueBound(t *testing.T) {
	s := newScheduler(1, 2)
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := s.submit(newTestJob("interactive", func() { <-block; wg.Done() })); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	// Wait until the worker picked up the blocker so the queue is empty.
	deadline := time.Now().Add(time.Second)
	for s.inflight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	accepted := 0
	for i := 0; i < 5; i++ {
		wg.Add(1)
		if err := s.submit(newTestJob("interactive", func() { wg.Done() })); err != nil {
			wg.Done()
			if err != errQueueFull {
				t.Fatalf("unexpected submit error: %v", err)
			}
			continue
		}
		accepted++
	}
	if accepted != 2 {
		t.Fatalf("accepted %d jobs beyond in-flight, want queue depth 2", accepted)
	}
	close(block)
	wg.Wait()
	if err := s.drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerStrictPriority(t *testing.T) {
	s := newScheduler(1, 16)
	block := make(chan struct{})
	started := make(chan struct{})
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	if err := s.submit(newTestJob("interactive", func() { close(started); <-block; wg.Done() })); err != nil {
		t.Fatal(err)
	}
	<-started // worker is busy; everything below queues up
	record := func(class string) func() {
		return func() {
			mu.Lock()
			order = append(order, class)
			mu.Unlock()
			wg.Done()
		}
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		if err := s.submit(newTestJob("batch", record("batch"))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		if err := s.submit(newTestJob("interactive", record("interactive"))); err != nil {
			t.Fatal(err)
		}
	}
	close(block)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	// All interactive jobs must run before any batch job even though the
	// batch jobs were enqueued first.
	for i, class := range order {
		if class == "interactive" && i >= 3 {
			t.Fatalf("interactive job ran at position %d: order %v", i, order)
		}
	}
	_ = s.drain(time.Second)
}

func TestSchedulerSkipsExpiredJobs(t *testing.T) {
	s := newScheduler(1, 8)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := s.submit(newTestJob("interactive", func() { close(started); <-block })); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:       "expired",
		priority: "interactive",
		ctx:      ctx,
		skipped:  make(chan struct{}),
		run: func(context.Context) {
			t.Error("expired job must not run")
		},
	}
	if err := s.submit(j); err != nil {
		t.Fatal(err)
	}
	cancel() // expire while queued
	close(block)
	select {
	case <-j.skipped:
	case <-time.After(time.Second):
		t.Fatal("expired job was not skipped")
	}
	if s.expired.Load() != 1 {
		t.Fatalf("expired counter = %d, want 1", s.expired.Load())
	}
	_ = s.drain(time.Second)
}

func TestSchedulerDrainCompletesQueuedJobs(t *testing.T) {
	s := newScheduler(1, 8)
	var count atomic.Int64
	block := make(chan struct{})
	started := make(chan struct{})
	if err := s.submit(newTestJob("interactive", func() { close(started); <-block; count.Add(1) })); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 4; i++ {
		if err := s.submit(newTestJob("batch", func() { count.Add(1) })); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(block)
	}()
	if err := s.drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 5 {
		t.Fatalf("drain completed %d jobs, want all 5", count.Load())
	}
	if err := s.submit(newTestJob("interactive", func() {})); err != errDraining {
		t.Fatalf("submit after drain: %v, want errDraining", err)
	}
}

func TestSchedulerDrainTimeout(t *testing.T) {
	s := newScheduler(1, 2)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := s.submit(newTestJob("interactive", func() { close(started); <-block })); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.drain(30 * time.Millisecond); err == nil {
		t.Fatal("drain should time out while a job is stuck")
	}
	close(block)
}
