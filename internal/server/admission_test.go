package server

import (
	"testing"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
)

func TestTokenBucketRefill(t *testing.T) {
	b := newTokenBucket(10, 2) // 10 tokens/s, burst 2
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	b.last = now
	if !b.allow() || !b.allow() {
		t.Fatal("burst of 2 should be allowed")
	}
	if b.allow() {
		t.Fatal("third immediate request should be rejected")
	}
	now = now.Add(100 * time.Millisecond) // refills exactly one token
	if !b.allow() {
		t.Fatal("token should have refilled after 100ms at 10/s")
	}
	if b.allow() {
		t.Fatal("bucket should be empty again")
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	b := newTokenBucket(10, 2)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	b.last = now
	now = now.Add(time.Hour) // long idle must not accumulate beyond burst
	allowed := 0
	for i := 0; i < 10; i++ {
		if b.allow() {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("allowed %d after long idle, want burst cap 2", allowed)
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	b := newTokenBucket(0, 1)
	for i := 0; i < 1000; i++ {
		if !b.allow() {
			t.Fatal("rate 0 must disable limiting")
		}
	}
}

func TestGreedyDegradedIsIndependentAndMaximal(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := gen.Weighted(gen.GNP(300, 0.05, seed), gen.PolyWeights(2), seed)
		set, weight := GreedyDegraded(g)
		if !g.IsIndependentSet(set) {
			t.Fatalf("seed %d: degraded set not independent", seed)
		}
		if !g.IsMaximalIS(set) {
			t.Fatalf("seed %d: greedy set should be maximal", seed)
		}
		if weight != g.SetWeight(set) {
			t.Fatalf("seed %d: reported weight %d != actual %d", seed, weight, g.SetWeight(set))
		}
	}
}

func TestGreedyDegradedGuarantee(t *testing.T) {
	// Weight-ordered greedy is a (Δ+1)-approximation; since OPT ≤ w(V),
	// w(greedy) ≥ w(V)/(Δ+1) is the checkable relaxation.
	g := gen.Weighted(gen.GNP(500, 0.02, 3), gen.UniformWeights(1000), 3)
	_, weight := GreedyDegraded(g)
	bound := float64(g.TotalWeight()) / float64(g.MaxDegree()+1)
	if float64(weight) < bound {
		t.Fatalf("greedy weight %d below w(V)/(Δ+1) = %.1f", weight, bound)
	}
}

func TestGreedyDegradedDeterministic(t *testing.T) {
	g := gen.Weighted(gen.GNP(200, 0.05, 9), gen.UniformWeights(50), 9)
	a, _ := GreedyDegraded(g)
	b, _ := GreedyDegraded(g)
	if !graph.SameSet(a, b) {
		t.Fatal("degraded greedy must be deterministic")
	}
}
