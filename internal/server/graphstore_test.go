package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/graph/gen"
	"distmwis/internal/reliable"
)

func graphJSON(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func putGraph(t *testing.T, ts *httptest.Server, g *graph.Graph) PutGraphResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/graph", bytes.NewReader(graphJSON(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp PutGraphResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /v1/graph: %d %s", httpResp.StatusCode, resp.Error)
	}
	return resp
}

func patchGraph(t *testing.T, ts *httptest.Server, hash string, edit graph.Edit) (int, PatchGraphResponse) {
	t.Helper()
	body, err := json.Marshal(edit)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/graph/"+hash, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp PatchGraphResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return httpResp.StatusCode, resp
}

func getAnswer(t *testing.T, ts *httptest.Server, key string) (int, storedAnswer) {
	t.Helper()
	httpResp, err := http.Get(ts.URL + "/v1/answers/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var a storedAnswer
	if err := json.NewDecoder(httpResp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	return httpResp.StatusCode, a
}

// waitQuality polls the answers registry until key reaches quality, the
// self-healing observation loop of the soak test in miniature.
func waitQuality(t *testing.T, ts *httptest.Server, key, quality string) storedAnswer {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, a := getAnswer(t, ts, key)
		if code == http.StatusOK && qualityRank(a.Quality) >= qualityRank(quality) {
			return a
		}
		if time.Now().After(deadline) {
			t.Fatalf("answer %s never reached quality %s (last: %d %+v)", key, quality, code, a)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// twoIslandGraph returns two disjoint weighted paths: 0..k-1 and k..n-1.
func twoIslandGraph(t *testing.T, k, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < k-1; v++ {
		b.AddEdge(v, v+1)
	}
	for v := k; v < n-1; v++ {
		b.AddEdge(v, v+1)
	}
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+(v*7)%23))
	}
	return b.MustBuild()
}

// The full dynamic-graph round trip: PUT names a graph by content, a
// graph_ref solve answers component-wise at full quality, a PATCH moves
// the handle to a new hash that old hashes still resolve to, and the
// post-PATCH solve reflects the mutation.
func TestGraphPutPatchSolve(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	g := twoIslandGraph(t, 8, 20)

	put := putGraph(t, ts, g)
	if put.Hash != g.HashString() || put.N != 20 || put.Components != 2 {
		t.Fatalf("put = %+v", put)
	}
	// Idempotent re-PUT resolves to the same handle.
	if again := putGraph(t, ts, g); again.Hash != put.Hash {
		t.Fatalf("re-put changed hash: %+v", again)
	}

	code, resp := postSolve(t, ts, SolveRequest{GraphRef: put.Hash, Alg: "goodnodes", Seed: 3})
	if code != http.StatusOK || resp.Status != "done" {
		t.Fatalf("ref solve failed: %d %+v", code, resp)
	}
	if resp.Quality != "full" || resp.AnswerKey == "" || resp.GraphHash != put.Hash {
		t.Fatalf("ref solve response: %+v", resp)
	}
	if !g.IsIndependentSet(indicesToSet(g.N(), resp.Set)) {
		t.Fatal("ref answer is not independent")
	}

	code, patch := patchGraph(t, ts, put.Hash, graph.Edit{AddEdges: [][2]int32{{0, 19}}})
	if code != http.StatusOK {
		t.Fatalf("patch failed: %d %+v", code, patch)
	}
	if patch.PrevHash != put.Hash || patch.Hash == put.Hash || patch.Components != 1 {
		t.Fatalf("patch = %+v", patch)
	}
	// Bridging the islands destroyed both old components.
	if patch.InvalidatedComponents != 2 {
		t.Fatalf("invalidated %d components, want 2", patch.InvalidatedComponents)
	}
	if !patch.Healed || patch.AnswerKey == "" {
		t.Fatalf("patch should heal the prior full answer: %+v", patch)
	}

	// The old hash keeps resolving — to the CURRENT state.
	code, resp2 := postSolve(t, ts, SolveRequest{GraphRef: put.Hash, Alg: "goodnodes", Seed: 3})
	if code != http.StatusOK || resp2.GraphHash != patch.Hash {
		t.Fatalf("stale-hash solve: %d %+v", code, resp2)
	}
	ng, _, err := g.ApplyEdit(graph.Edit{AddEdges: [][2]int32{{0, 19}}})
	if err != nil {
		t.Fatal(err)
	}
	if !ng.IsIndependentSet(indicesToSet(ng.N(), resp2.Set)) {
		t.Fatal("post-patch answer not independent on the new graph")
	}
}

// Self-healing end to end: the healed answer published by a PATCH starts
// degraded and is republished by the repair tier as improved and then full
// — each step independent, the final step bit-identical to a foreground
// solve of the new version.
func TestPatchHealsAndRepairTierUpgrades(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, RepairInterval: time.Millisecond})
	g := twoIslandGraph(t, 8, 20)
	put := putGraph(t, ts, g)

	if _, resp := postSolve(t, ts, SolveRequest{GraphRef: put.Hash, Alg: "goodnodes", Seed: 3}); resp.Status != "done" {
		t.Fatalf("seed solve failed: %+v", resp)
	}
	_, patch := patchGraph(t, ts, put.Hash, graph.Edit{AddEdges: [][2]int32{{2, 13}}, Weights: []graph.WeightUpdate{{V: 5, W: 100}}})
	if !patch.Healed {
		t.Fatalf("expected heal: %+v", patch)
	}
	ng, _, err := g.ApplyEdit(graph.Edit{AddEdges: [][2]int32{{2, 13}}, Weights: []graph.WeightUpdate{{V: 5, W: 100}}})
	if err != nil {
		t.Fatal(err)
	}

	// The healed answer is available immediately at degraded-or-better
	// quality and is always independent on the new version.
	_, healed := getAnswer(t, ts, patch.AnswerKey)
	if healed.Quality == "" {
		t.Fatalf("healed answer missing: %+v", healed)
	}
	if !ng.IsIndependentSet(indicesToSet(ng.N(), healed.Set)) {
		t.Fatal("healed answer not independent")
	}

	full := waitQuality(t, ts, patch.AnswerKey, "full")
	if !ng.IsIndependentSet(indicesToSet(ng.N(), full.Set)) {
		t.Fatal("full upgrade not independent")
	}
	if full.GraphHash != patch.Hash {
		t.Fatalf("full answer hash %s, want %s", full.GraphHash, patch.Hash)
	}
	// Bit-identical to the foreground component-wise solve of the same
	// content: solving now must hit the cache entry the upgrade promoted.
	code, resp := postSolve(t, ts, SolveRequest{GraphRef: patch.Hash, Alg: "goodnodes", Seed: 3})
	if code != http.StatusOK {
		t.Fatalf("post-upgrade solve: %d %+v", code, resp)
	}
	if !resp.Cached {
		t.Fatalf("upgrade should have promoted the full answer into the cache: %+v", resp)
	}
	if resp.Weight != full.Weight || len(resp.Set) != len(full.Set) {
		t.Fatalf("cache-promoted answer differs: %+v vs %+v", resp, full)
	}
	for i := range resp.Set {
		if resp.Set[i] != full.Set[i] {
			t.Fatal("cache-promoted set not bit-identical to the published upgrade")
		}
	}
}

// Degraded graph_ref solves are a deferred promise: the response carries
// the answer key, and the repair tier upgrades the published answer to
// full quality in the background.
func TestDegradedRefSolveSelfHeals(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, RepairInterval: time.Millisecond})
	g := gen.Weighted(gen.GNP(60, 0.08, 9), gen.PolyWeights(2), 9)
	put := putGraph(t, ts, g)

	code, resp := postSolve(t, ts, SolveRequest{GraphRef: put.Hash, Alg: "goodnodes", Seed: 5, Degraded: true})
	if code != http.StatusOK || !resp.Degraded || resp.Quality != "degraded" || resp.AnswerKey == "" {
		t.Fatalf("degraded ref solve: %d %+v", code, resp)
	}
	full := waitQuality(t, ts, resp.AnswerKey, "full")
	if !g.IsIndependentSet(indicesToSet(g.N(), full.Set)) {
		t.Fatal("upgraded answer not independent")
	}
	// "full" is a provenance tag, not a weight claim: it promises the
	// answer the requested algorithm would have computed without shedding.
	// A later foreground solve must therefore agree bit for bit.
	code, again := postSolve(t, ts, SolveRequest{GraphRef: put.Hash, Alg: "goodnodes", Seed: 5})
	if code != http.StatusOK || again.Weight != full.Weight || len(again.Set) != len(full.Set) {
		t.Fatalf("foreground solve disagrees with upgrade: %d %+v vs %+v", code, again, full)
	}
	for i := range again.Set {
		if again.Set[i] != full.Set[i] {
			t.Fatal("upgraded answer not bit-identical to the foreground solve")
		}
	}
}

// A PATCH confined to one component invalidates exactly that component,
// and the untouched component's cached answer is reused by the next solve.
func TestComponentGranularInvalidation(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	g := twoIslandGraph(t, 8, 20)
	put := putGraph(t, ts, g)

	if _, resp := postSolve(t, ts, SolveRequest{GraphRef: put.Hash, Alg: "goodnodes", Seed: 3}); resp.Status != "done" {
		t.Fatalf("seed solve failed: %+v", resp)
	}
	// Edit inside the second island only.
	code, patch := patchGraph(t, ts, put.Hash, graph.Edit{AddEdges: [][2]int32{{9, 18}}})
	if code != http.StatusOK || patch.InvalidatedComponents != 1 {
		t.Fatalf("one-island patch: %d %+v", code, patch)
	}
	_, _, _, _, invalidations, _, _ := s.cache.stats()
	if invalidations == 0 {
		t.Fatal("invalidation evicted no cache entries")
	}
	if _, resp := postSolve(t, ts, SolveRequest{GraphRef: patch.Hash, Alg: "goodnodes", Seed: 3}); resp.Status != "done" {
		t.Fatalf("post-patch solve failed: %+v", resp)
	}
}

// The graph journal: every PUT and PATCH is durable before its ack, a
// restart replays them bit-identically (verified against the journaled
// hashes), aliases survive, and the journal is snapshot-compacted to put
// records only.
func TestGraphJournalReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graphs.wal")
	g := twoIslandGraph(t, 8, 20)
	edit := graph.Edit{AddEdges: [][2]int32{{0, 19}}, Weights: []graph.WeightUpdate{{V: 1, W: 50}}}

	s1 := New(Options{Workers: 2})
	if n, err := s1.OpenGraphJournal(path); err != nil || n != 0 {
		t.Fatalf("first open: n=%d err=%v", n, err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	put := putGraph(t, ts1, g)
	code, patch := patchGraph(t, ts1, put.Hash, edit)
	if code != http.StatusOK {
		t.Fatalf("patch: %d %+v", code, patch)
	}
	ts1.Close()
	if err := s1.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := New(Options{Workers: 2})
	replayed, err := s2.OpenGraphJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 2 {
		t.Fatalf("replayed %d records, want 2 (put + patch)", replayed)
	}
	t.Cleanup(func() { _ = s2.Drain(); _ = s2.Close() })

	// Both the current hash and the pre-patch alias resolve to the state
	// the dead process acknowledged.
	for _, h := range []string{patch.Hash, put.Hash} {
		rg, hash, ok := s2.graphs.snapshot(h)
		if !ok {
			t.Fatalf("hash %s lost across restart", h)
		}
		if hash != patch.Hash || rg.HashString() != patch.Hash {
			t.Fatalf("replayed state %s, want %s", hash, patch.Hash)
		}
		if rg.Weight(1) != 50 || !rg.HasEdge(0, 19) {
			t.Fatal("replayed graph missing the journaled mutation")
		}
	}

	// Compaction: the rewritten journal holds one put snapshot, no patches.
	f, err := reliable.ReadWAL(bytes.NewReader(readFile(t, path)))
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 1 {
		t.Fatalf("compacted journal has %d records, want 1 snapshot", len(f))
	}
	var d graphWALData
	if err := json.Unmarshal(f[0].Data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Kind != "put" || len(d.Aliases) != 1 || d.Aliases[0] != put.Hash {
		t.Fatalf("snapshot record = kind %s aliases %v", d.Kind, d.Aliases)
	}
}

// Crash-mid-PATCH simulation: a journaled-but-unacknowledged mutation is
// exactly as durable as an acknowledged one. Writing the apply record by
// hand and booting replays it.
func TestGraphJournalRecoversUnackedPatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "graphs.wal")
	g := twoIslandGraph(t, 8, 20)
	edit := graph.Edit{AddEdges: [][2]int32{{3, 15}}}
	ng, _, err := g.ApplyEdit(edit)
	if err != nil {
		t.Fatal(err)
	}

	wal, _, err := reliable.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	putData, _ := json.Marshal(graphWALData{Kind: "put", Graph: buf.Bytes()})
	if err := wal.Apply("g-1", json.RawMessage(putData)); err != nil {
		t.Fatal(err)
	}
	patchData, _ := json.Marshal(graphWALData{Kind: "patch", Prev: g.HashString(), Next: ng.HashString(), Edit: &edit})
	if err := wal.Apply("g-1", json.RawMessage(patchData)); err != nil {
		t.Fatal(err)
	}
	wal.Close() // the crash: no ack ever left the process

	s := New(Options{Workers: 1})
	if _, err := s.OpenGraphJournal(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Drain(); _ = s.Close() })
	rg, _, ok := s.graphs.snapshot(ng.HashString())
	if !ok || !rg.HasEdge(3, 15) {
		t.Fatal("journaled-but-unacked mutation lost")
	}
}

// PATCH error surface: unknown handles 404, malformed edits 400, and a
// failed edit moves nothing.
func TestPatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	g := twoIslandGraph(t, 4, 8)
	put := putGraph(t, ts, g)

	if code, _ := patchGraph(t, ts, "deadbeef", graph.Edit{AddEdges: [][2]int32{{0, 1}}}); code != http.StatusNotFound {
		t.Fatalf("unknown hash: %d", code)
	}
	if code, _ := patchGraph(t, ts, put.Hash, graph.Edit{}); code != http.StatusBadRequest {
		t.Fatalf("empty edit: %d", code)
	}
	if code, _ := patchGraph(t, ts, put.Hash, graph.Edit{AddEdges: [][2]int32{{0, 99}}}); code != http.StatusBadRequest {
		t.Fatalf("out-of-range edit: %d", code)
	}
	if code, resp := patchGraph(t, ts, put.Hash, graph.Edit{Weights: []graph.WeightUpdate{{V: 0, W: -1}}}); code != http.StatusBadRequest || resp.Error == "" {
		t.Fatalf("negative weight: %d %+v", code, resp)
	}
	// The handle is untouched by the failures.
	httpResp, err := http.Get(ts.URL + "/v1/graph/" + put.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var info PutGraphResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Hash != put.Hash || info.Version != 0 {
		t.Fatalf("failed patches moved the handle: %+v", info)
	}
}

// graph_ref request-shape validation: async is rejected, unknown refs 404.
func TestRefSolveValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if code, _ := postSolve(t, ts, SolveRequest{GraphRef: "abc", Async: true}); code != http.StatusBadRequest {
		t.Fatalf("async ref solve: %d", code)
	}
	if code, _ := postSolve(t, ts, SolveRequest{GraphRef: "abc"}); code != http.StatusNotFound {
		t.Fatalf("unknown ref: %d", code)
	}
	if code, _ := postSolve(t, ts, SolveRequest{}); code != http.StatusBadRequest {
		t.Fatalf("no source: %d", code)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
