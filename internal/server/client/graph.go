package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"distmwis/internal/graph"
	"distmwis/internal/server"
)

// ErrCASConflict reports a conditional PATCH that lost its race: the
// prev_hash it named is no longer the handle's current state. The returned
// PatchGraphResponse carries the current hash to rebase onto.
var ErrCASConflict = errors.New("client: graph state changed since prev_hash (CAS conflict)")

// PutGraph uploads a graph document (the graph JSON wire format) and
// returns its handle. PUT is idempotent on the server — re-uploading bytes
// that already have a handle is a no-op — so the full retry policy applies.
func (c *Client) PutGraph(ctx context.Context, graphJSON []byte) (server.PutGraphResponse, error) {
	var resp server.PutGraphResponse
	err := c.doJSON(ctx, http.MethodPut, "/v1/graph", graphJSON, &resp)
	return resp, err
}

// PatchGraph applies edit to the handle named by hash (any hash the handle
// has ever had). Retries are safe for a single writer: an edit re-applied
// to the state it already produced is all no-ops (adds exist, removes are
// gone, weights match), so a lost acknowledgement converges rather than
// double-mutating. Concurrent writers racing retries get last-write-wins
// semantics, same as racing first attempts.
func (c *Client) PatchGraph(ctx context.Context, hash string, edit graph.Edit) (server.PatchGraphResponse, error) {
	body, err := json.Marshal(edit)
	if err != nil {
		return server.PatchGraphResponse{}, fmt.Errorf("client: encode edit: %w", err)
	}
	var resp server.PatchGraphResponse
	err = c.doJSON(ctx, http.MethodPatch, "/v1/graph/"+hash, body, &resp)
	return resp, err
}

// PatchGraphCAS applies edit only if the handle's current hash is still
// prevHash — optimistic concurrency for multi-writer mutation. On a lost
// race it returns ErrCASConflict with the current hash in resp.Hash; the
// caller re-reads, rebases its edit and retries with the new hash. Unlike
// PatchGraph, a CAS retry after a lost acknowledgement is self-fencing:
// if the first attempt actually applied, the handle's hash moved and the
// retry conflicts instead of double-applying.
func (c *Client) PatchGraphCAS(ctx context.Context, hash, prevHash string, edit graph.Edit) (server.PatchGraphResponse, error) {
	body, err := json.Marshal(struct {
		graph.Edit
		PrevHash string `json:"prev_hash"`
	}{Edit: edit, PrevHash: prevHash})
	if err != nil {
		return server.PatchGraphResponse{}, fmt.Errorf("client: encode edit: %w", err)
	}
	var resp server.PatchGraphResponse
	err = c.doJSON(ctx, http.MethodPatch, "/v1/graph/"+hash, body, &resp)
	if err != nil && resp.Conflict {
		return resp, fmt.Errorf("%w: current hash %s", ErrCASConflict, resp.Hash)
	}
	return resp, err
}

// doJSON is the retry loop for the graph-handle endpoints: same backoff
// and retryability classification as solves, without the solve-specific
// breaker and hedging (mutations must not be hedged — two identical
// in-flight PATCHes are not one mutation).
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			select {
			case <-time.After(c.backoff(attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err := c.onceJSON(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

func (c *Client) onceJSON(ctx context.Context, method, path string, body []byte, out any) error {
	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	c.attempts.Add(1)
	hreq, err := http.NewRequestWithContext(actx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hr, err := c.opts.HTTPClient.Do(hreq)
	if err != nil {
		return errRetryable{fmt.Errorf("client: %w", err)}
	}
	defer hr.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(hr.Body).Decode(&raw); err != nil {
		return errRetryable{fmt.Errorf("client: decode response (status %d): %w", hr.StatusCode, err)}
	}
	// The body's error field rides along in the returned struct; the status
	// code alone classifies the outcome.
	var msg struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(raw, &msg)
	switch {
	case hr.StatusCode == http.StatusOK || hr.StatusCode == http.StatusAccepted:
		return json.Unmarshal(raw, out)
	case hr.StatusCode == http.StatusTooManyRequests || hr.StatusCode >= 500:
		return errRetryable{fmt.Errorf("client: server status %d: %s", hr.StatusCode, msg.Error)}
	default:
		// Terminal responses still decode into out where possible: a CAS
		// conflict's 409 body carries the current hash the caller rebases
		// onto.
		_ = json.Unmarshal(raw, out)
		return fmt.Errorf("client: server status %d: %s", hr.StatusCode, msg.Error)
	}
}
